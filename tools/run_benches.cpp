// run_benches — the standing benchmark driver behind the repo's perf
// trajectory. Runs every bench binary with --json, validates each per-suite
// document against the ampc-cut-bench-v1 schema, and merges them into the
// two top-level trajectory files:
//
//   BENCH_ampc.json   model-priced results (AMPC simulator + MPC baseline)
//   BENCH_exact.json  wall-clock results of the sequential engines
//
// Usage (from the repo root, after building into build/):
//   ./build/tools/run_benches [--smoke|--full] [--bench-dir build/bench]
//                             [--out-dir .] [--only <suite-substring>]
//                             [--threads N] [--transport local|shm]
//                             [--procs N]
//
// --threads is forwarded to every bench (recursion-driver parallelism;
// 0/absent = hardware concurrency, 1 = the sequential path). Thread count
// changes only ns_per_op, never results.
//
// --transport (and its companion --procs, the shm worker count) is forwarded
// the same way: it selects the AMPC round execution strategy (DESIGN.md
// "Transport layer & multi-process execution"). Like --threads it changes
// only ns_per_op and wire traffic — results and model metrics are
// bit-identical across transports, which is exactly why forwarding it is
// safe for the trajectory files. A worker process dying unrecovered surfaces
// as a named exit code (86/87/88, transport/wire.h), not a silent retry.
//
// --only runs and validates the matching suites but never rewrites the
// trajectory files (a partial run must not clobber the other suites' data).
//
// Each bench runs under a per-binary timeout (--timeout <secs>, default 900,
// 0 disables) via timeout(1) and gets exactly one retry on any failure —
// a transient wedge (loaded CI host, kernel hiccup) should not scrap an
// hour-long trajectory run, but a reproducible failure must still fail.
//
// Exit is non-zero when a bench fails to run twice, emits malformed or
// schema-violating JSON, or a trajectory file fails to re-parse after
// writing — CI's bench-smoke job relies on that contract.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifdef __unix__
#include <sys/wait.h>
#endif

#include "support/bench_report.h"
#include "support/json.h"
#include "transport/wire.h"

namespace fs = std::filesystem;
using ampccut::json::Value;

namespace {

const char* kBenches[] = {
    "bench_micro_primitives",
    "bench_e1_mincut_rounds",
    "bench_e2_decomposition",
    "bench_e3_singleton",
    "bench_e4_kcut",
    "bench_e5_contraction_probability",
    "bench_e6_structure",
    "bench_e7_one_vs_two_cycles",
    "bench_e8_mpc_kcut",
    "bench_a1_ablation",
    "bench_serve_queries",
};

// Single-quote a path for the shell (embedded quotes become '\'').
std::string sh_quote(const fs::path& p) {
  std::string out = "'";
  for (const char c : p.string()) {
    if (c == '\'') out += "'\\''";
    else out += c;
  }
  out += "'";
  return out;
}

// Value of "--opt value", or `fallback` when absent. A flag given as the
// last token (no value to read) is an argument error: exit loudly instead of
// silently using the fallback — a typo'd invocation must not overwrite the
// trajectory files with an unintended configuration.
const char* arg_value(int argc, char** argv, const char* opt,
                      const char* fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], opt) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "run_benches: %s given without a value\n", opt);
        std::exit(1);
      }
      return argv[i + 1];
    }
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// Run one bench command, decoding std::system's waitpid-style status into a
// human-readable failure description. Returns true on exit status 0.
// timeout(1) exits 124 when it had to kill the bench — call that out
// explicitly so a hung bench reads differently from a crashed one.
bool run_bench_cmd(const std::string& cmd, const char* name,
                   std::string* failure) {
  std::printf("=== %s ===\n", cmd.c_str());
  std::fflush(stdout);
  const int rc = std::system(cmd.c_str());
  if (rc == 0) return true;
  char buf[256];
#ifdef __unix__
  if (WIFEXITED(rc) && WEXITSTATUS(rc) == 124) {
    std::snprintf(buf, sizeof(buf), "%s timed out (timeout(1) exit 124)",
                  name);
  } else if (WIFSIGNALED(rc)) {
    std::snprintf(buf, sizeof(buf), "%s killed by signal %d", name,
                  WTERMSIG(rc));
  } else if (WIFEXITED(rc) &&
             (WEXITSTATUS(rc) == ampccut::transport::kWorkerExitMachineFailed ||
              WEXITSTATUS(rc) == ampccut::transport::kWorkerExitBudget ||
              WEXITSTATUS(rc) == ampccut::transport::kWorkerExitInternal)) {
    // The shm transport's worker exit codes (transport/wire.h). Seeing one
    // HERE means a transport worker died and its driver propagated the code
    // instead of recovering — name the failure class so the trajectory run's
    // log reads as "worker died", not a mystery status.
    const int code = WEXITSTATUS(rc);
    const char* what =
        code == ampccut::transport::kWorkerExitMachineFailed
            ? "machine failure"
            : (code == ampccut::transport::kWorkerExitBudget
                   ? "strict-budget violation"
                   : "internal error");
    std::snprintf(buf, sizeof(buf),
                  "%s: shm transport worker process died with exit code %d "
                  "(%s) and the failure was not recovered",
                  name, code, what);
  } else {
    std::snprintf(buf, sizeof(buf), "%s exited with status %d", name,
                  WIFEXITED(rc) ? WEXITSTATUS(rc) : rc);
  }
#else
  std::snprintf(buf, sizeof(buf), "%s exited with status %d", name, rc);
#endif
  *failure = buf;
  return false;
}

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Parse + schema-validate one document; exits the process on violation.
Value load_validated(const fs::path& path, const std::string& origin) {
  const auto text = read_file(path);
  if (!text) {
    std::fprintf(stderr, "run_benches: cannot read %s (from %s)\n",
                 path.c_str(), origin.c_str());
    std::exit(1);
  }
  std::string parse_err;
  std::optional<Value> doc = Value::parse(*text, &parse_err);
  if (!doc) {
    std::fprintf(stderr, "run_benches: malformed JSON in %s: %s\n",
                 path.c_str(), parse_err.c_str());
    std::exit(1);
  }
  const std::string schema_err = ampccut::bench::validate_bench_json(*doc);
  if (!schema_err.empty()) {
    std::fprintf(stderr, "run_benches: schema violation in %s: %s\n",
                 path.c_str(), schema_err.c_str());
    std::exit(1);
  }
  return std::move(*doc);
}

std::size_t count_results(const Value& merged) {
  std::size_t n = 0;
  if (const Value* suites = merged.find("suites")) {
    for (const Value& s : suites->as_array()) {
      n += s.find("results")->as_array().size();
    }
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path bench_dir = arg_value(argc, argv, "--bench-dir", "build/bench");
  const fs::path out_dir = arg_value(argc, argv, "--out-dir", ".");
  const char* only = arg_value(argc, argv, "--only", nullptr);
  const char* threads = arg_value(argc, argv, "--threads", nullptr);
  const char* transport = arg_value(argc, argv, "--transport", nullptr);
  const char* procs = arg_value(argc, argv, "--procs", nullptr);
  if (transport != nullptr && std::strcmp(transport, "local") != 0 &&
      std::strcmp(transport, "shm") != 0) {
    std::fprintf(stderr,
                 "run_benches: unknown transport '%s' (expected local|shm)\n",
                 transport);
    return 1;
  }
  const long timeout_secs =
      std::strtol(arg_value(argc, argv, "--timeout", "900"), nullptr, 10);
  const bool smoke = has_flag(argc, argv, "--smoke");
  const bool full = has_flag(argc, argv, "--full");
  const fs::path tmp_dir = out_dir / ".bench_tmp";

  std::error_code ec;
  fs::create_directories(tmp_dir, ec);
  if (ec) {
    std::fprintf(stderr, "run_benches: cannot create %s: %s\n",
                 tmp_dir.c_str(), ec.message().c_str());
    return 1;
  }

  std::vector<Value> suite_docs;
  for (const char* name : kBenches) {
    if (only && std::strstr(name, only) == nullptr) continue;
    const fs::path bin = bench_dir / name;
    if (!fs::exists(bin)) {
      std::fprintf(stderr, "run_benches: missing bench binary %s\n",
                   bin.c_str());
      return 1;
    }
    const fs::path json_path = tmp_dir / (std::string(name) + ".json");
    std::string cmd = sh_quote(bin) + " --json " + sh_quote(json_path);
    if (smoke) cmd += " --smoke";
    if (full) cmd += " --full";
    if (threads != nullptr) {
      cmd += " --threads ";
      cmd += threads;
    }
    if (transport != nullptr) {
      cmd += " --transport ";
      cmd += transport;
    }
    if (procs != nullptr) {
      cmd += " --procs ";
      cmd += procs;
    }
#ifdef __unix__
    if (timeout_secs > 0) {
      cmd = "timeout " + std::to_string(timeout_secs) + " " + cmd;
    }
#endif
    std::string failure;
    if (!run_bench_cmd(cmd, name, &failure)) {
      // One retry: a wedged or flaky bench gets a second chance, loudly.
      // The bench rewrites its JSON from scratch, so a half-written file
      // from the killed first attempt cannot leak into the merge.
      std::fprintf(stderr,
                   "run_benches: WARNING: %s -- retrying once (a second "
                   "failure is fatal)\n",
                   failure.c_str());
      if (!run_bench_cmd(cmd, name, &failure)) {
        std::fprintf(stderr, "run_benches: %s (retry also failed)\n",
                     failure.c_str());
        return 1;
      }
    }
    suite_docs.push_back(load_validated(json_path, name));
  }

  if (suite_docs.empty()) {
    std::fprintf(stderr, "run_benches: no suites selected\n");
    return 1;
  }

  if (only) {
    // A filtered run covers only part of the trajectory; rewriting the
    // BENCH_*.json files with it would silently discard every other
    // suite's data. Validation already happened above — stop here.
    std::error_code cleanup;
    fs::remove_all(tmp_dir, cleanup);
    std::printf("\n--only run: suites validated, trajectory files left "
                "untouched\n");
    return 0;
  }

  std::printf("\n");
  for (const char* group : {"ampc", "exact"}) {
    Value merged = ampccut::bench::merge_suites(suite_docs, group);
    merged["mode"] = smoke ? "smoke" : (full ? "full" : "default");
    const std::string err = ampccut::bench::validate_bench_json(merged);
    if (!err.empty()) {
      std::fprintf(stderr, "run_benches: merged %s document invalid: %s\n",
                   group, err.c_str());
      return 1;
    }
    const fs::path out = out_dir / ("BENCH_" + std::string(group) + ".json");
    std::ofstream f(out, std::ios::binary | std::ios::trunc);
    f << merged.dump() << "\n";
    if (!f.good()) {
      std::fprintf(stderr, "run_benches: failed to write %s\n", out.c_str());
      return 1;
    }
    f.close();
    // Trust nothing: the trajectory file on disk must itself re-parse.
    (void)load_validated(out, "merged output");
    std::printf("wrote %s (%zu results across %zu suites)\n", out.c_str(),
                count_results(merged), merged.find("suites")->as_array().size());
  }
  fs::remove_all(tmp_dir, ec);
  return 0;
}
