// repro_lint — the repo's determinism & cost-accounting static-analysis pass
// (DESIGN.md "Static analysis & invariant enforcement").
//
// A dependency-free token/regex-level scanner over the project sources that
// mechanizes the invariants the determinism contract rests on. It is not a
// compiler: it strips comments and string literals, then pattern-matches the
// remaining code text. Each check errs on the side of flagging; the inline
// escape hatch
//
//     // repro-lint: allow(<check>) <justification>
//
// suppresses a finding on the same line (trailing comment) or, when the
// directive line holds no code, on the next line that does. The
// justification is mandatory — an empty one is itself a finding — and a
// directive that suppresses nothing is reported too, so the allowlist can
// never silently rot.
//
// Checks (ids are what allow(...) takes):
//   raw-sort            std::sort / std::stable_sort / std::partial_sort /
//                       std::ranges::sort / qsort outside src/support/psort.*
//                       — every host-side sort must go through the psort
//                       layer, whose stability supplies the id tie-break the
//                       determinism contract requires.
//   iteration-order     range-for over a std::unordered_map/unordered_set in
//                       src/ — hash iteration order is
//                       implementation-defined; only commutative
//                       accumulations may be allowlisted.
//   rng-discipline      rand()/srand(), std::random_device, std::mt19937 &
//                       friends, or time-derived seeding outside
//                       src/support/rng.h — all randomness flows from the
//                       explicit-seed Rng.
//   comparator-tiebreak two-argument comparator lambdas whose body compares
//                       a single projected field (`a.w < b.w`,
//                       `clock[a] < clock[b]`) — the (weight,id)/(time,id)
//                       fragility class; safe only under a stable sort, which
//                       is what the allowlist justification must say.
//   dcheck-side-effect  REPRO_DCHECK whose argument mutates state (++/--,
//                       assignment, known-mutating calls) — NDEBUG compiles
//                       the expression out, silently changing behavior.
//   bad-allow           malformed directive: unknown check id or missing
//                       justification.
//   unused-allow        well-formed directive that suppressed nothing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/json.h"

namespace ampccut::lint {

// Check ids, in report order. bad-allow/unused-allow are meta-checks emitted
// by the directive machinery rather than source scans.
inline constexpr std::string_view kRawSort = "raw-sort";
inline constexpr std::string_view kIterationOrder = "iteration-order";
inline constexpr std::string_view kRngDiscipline = "rng-discipline";
inline constexpr std::string_view kComparatorTiebreak = "comparator-tiebreak";
inline constexpr std::string_view kDcheckSideEffect = "dcheck-side-effect";
inline constexpr std::string_view kBadAllow = "bad-allow";
inline constexpr std::string_view kUnusedAllow = "unused-allow";

inline constexpr std::string_view kAllChecks[] = {
    kRawSort,         kIterationOrder,    kRngDiscipline,
    kComparatorTiebreak, kDcheckSideEffect, kBadAllow,
    kUnusedAllow,
};

struct Finding {
  std::string check;    // one of kAllChecks
  std::string file;     // path as passed to scan_file (root-relative in walks)
  int line = 0;         // 1-based line of the offending construct's start
  std::string message;  // human-readable explanation
  std::string snippet;  // the offending source line, whitespace-trimmed
};

struct AllowEntry {
  std::string check;
  std::string file;
  int line = 0;  // line of the suppressed construct, not of the directive
  std::string justification;
};

struct Report {
  std::vector<Finding> findings;    // non-allowlisted: each one fails the lint
  std::vector<AllowEntry> allowed;  // suppressed findings, with justification
  int files_scanned = 0;

  // repro-lint-v1 document: schema/files_scanned/finding_count/allowed_count,
  // per-check counts (every check id present, zeros included), findings[],
  // allowed[].
  [[nodiscard]] json::Value to_json() const;
};

// Strips //, /* */ (multi-line), string/char literals, and raw strings from
// `source`, replacing them with spaces so byte offsets and line numbers are
// preserved. Exposed for tests.
[[nodiscard]] std::string strip_comments_and_strings(std::string_view source);

// Scans one file's contents. `path` drives per-path exemptions (psort.* for
// raw-sort, rng.h for rng-discipline, src/-scoping for iteration-order) and
// is copied into findings verbatim; use '/' separators.
void scan_file(const std::string& path, std::string_view contents,
               Report& report);

// Walks `subdirs` (those that exist) under `root`, scanning every
// .h/.hpp/.cpp/.cc file, skipping any directory named "lint_fixtures".
// Paths in the report are root-relative. Returns false (with *error set)
// when root or every listed subdir is missing, or on filesystem errors.
bool scan_tree(const std::string& root, const std::vector<std::string>& subdirs,
               Report& report, std::string* error);

// The default scan roots: src, tests, bench, examples.
[[nodiscard]] std::vector<std::string> default_subdirs();

}  // namespace ampccut::lint
