// repro_lint CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
//   repro_lint [--root DIR] [--paths a,b,c] [--json OUT] [--quiet]
//
// Scans src/, tests/, bench/, examples/ under --root (default ".") and
// prints findings as file:line: [check] message. --json writes the
// repro-lint-v1 report (the CI artifact). --paths overrides the scan roots
// (comma-separated, relative to --root).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "repro_lint/lint.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--paths a,b,c] [--json OUT] "
               "[--quiet]\n",
               argv0);
  return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i == csv.size() || csv[i] == ',') {
      if (i > start) out.push_back(csv.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_out;
  std::vector<std::string> paths = ampccut::lint::default_subdirs();
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(a, "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(a, "--paths") == 0 && i + 1 < argc) {
      paths = split_csv(argv[++i]);
      if (paths.empty()) return usage(argv[0]);
    } else if (std::strcmp(a, "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  ampccut::lint::Report report;
  std::string error;
  if (!ampccut::lint::scan_tree(root, paths, report, &error)) {
    std::fprintf(stderr, "repro_lint: %s\n", error.c_str());
    return 2;
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    out << report.to_json().dump(2) << '\n';
    if (!out.good()) {
      std::fprintf(stderr, "repro_lint: failed to write %s\n",
                   json_out.c_str());
      return 2;
    }
  }

  if (!quiet) {
    for (const auto& f : report.findings) {
      std::fprintf(stderr, "%s:%d: [%s] %s\n    %s\n", f.file.c_str(), f.line,
                   f.check.c_str(), f.message.c_str(), f.snippet.c_str());
    }
    std::fprintf(stderr,
                 "repro_lint: %zu finding(s), %zu allowlisted, %d file(s) "
                 "scanned\n",
                 report.findings.size(), report.allowed.size(),
                 report.files_scanned);
  }
  return report.findings.empty() ? 0 : 1;
}
