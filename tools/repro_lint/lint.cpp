#include "repro_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ampccut::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

std::string remove_spaces(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out.push_back(c);
  }
  return out;
}

// Word-boundary occurrence of `word` in `text` at or after `from`;
// std::string::npos when absent.
std::size_t find_word(std::string_view text, std::string_view word,
                      std::size_t from = 0) {
  for (std::size_t p = text.find(word, from); p != std::string_view::npos;
       p = text.find(word, p + 1)) {
    const bool left_ok = p == 0 || !is_ident_char(text[p - 1]);
    const std::size_t after = p + word.size();
    const bool right_ok = after >= text.size() || !is_ident_char(text[after]);
    if (left_ok && right_ok) return p;
  }
  return std::string_view::npos;
}

bool contains_word(std::string_view text, std::string_view word) {
  return find_word(text, word) != std::string_view::npos;
}

// True when `path` (with '/' separators) ends in `suffix` on a path-segment
// boundary, e.g. suffix "src/support/psort.h" matches both the bare relative
// path and any absolute prefix of it.
bool path_ends_with(std::string_view path, std::string_view suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.substr(path.size() - suffix.size()) != suffix) return false;
  return path.size() == suffix.size() ||
         path[path.size() - suffix.size() - 1] == '/';
}

// True when `path` contains "src" as a path segment (root-relative paths in
// tree scans start with "src/"; tests may pass synthetic "src/..." paths).
bool in_src(std::string_view path) {
  for (std::size_t p = 0; p + 3 <= path.size(); ++p) {
    if (path.compare(p, 3, "src") != 0) continue;
    const bool left_ok = p == 0 || path[p - 1] == '/';
    const bool right_ok = p + 3 == path.size() || path[p + 3] == '/';
    if (left_ok && right_ok) return true;
  }
  return false;
}

// Per-file scan state shared by the checks.
struct FileScan {
  std::string path;
  std::vector<std::string> raw_lines;   // verbatim source lines
  std::vector<std::string> code_lines;  // comments/strings blanked
  std::vector<std::string> comment_lines;  // comment text only
  std::string blob;                     // code_lines joined with '\n'
  std::vector<std::size_t> line_start;  // blob offset of each line

  [[nodiscard]] int line_of(std::size_t blob_pos) const {
    const auto it = std::upper_bound(line_start.begin(), line_start.end(),
                                     blob_pos);
    return static_cast<int>(it - line_start.begin());  // 1-based
  }
};

// A parsed allow directive, pinned to the code line it governs.
struct Directive {
  std::string check;
  int directive_line = 0;  // where the comment sits (for unused reporting)
  int target_line = 0;     // the code line it suppresses findings on
  std::string justification;
  bool used = false;
};

struct Scanner {
  FileScan f;
  Report* report;
  std::vector<Directive> directives;

  void emit(std::string_view check, int line, std::string message) {
    for (auto& d : directives) {
      if (d.target_line == line && d.check == check) {
        d.used = true;
        report->allowed.push_back(
            {std::string(check), f.path, line, d.justification});
        return;
      }
    }
    Finding fd;
    fd.check = std::string(check);
    fd.file = f.path;
    fd.line = line;
    fd.message = std::move(message);
    if (line >= 1 && line <= static_cast<int>(f.raw_lines.size())) {
      fd.snippet = trim(f.raw_lines[line - 1]);
    }
    report->findings.push_back(std::move(fd));
  }
};

// ---------------------------------------------------------------------------
// Directive parsing

void collect_directives(Scanner& s) {
  constexpr std::string_view kTag = "repro-lint:";
  const auto& comments = s.f.comment_lines;
  for (std::size_t i = 0; i < comments.size(); ++i) {
    const std::string& c = comments[i];
    std::size_t pos = c.find(kTag);
    if (pos == std::string::npos) continue;
    pos += kTag.size();
    const std::string rest = trim(std::string_view(c).substr(pos));
    const int here = static_cast<int>(i) + 1;
    if (rest.compare(0, 6, "allow(") != 0) {
      s.report->findings.push_back(
          {std::string(kBadAllow), s.f.path, here,
           "malformed repro-lint directive: expected 'allow(<check>)'",
           trim(s.f.raw_lines[i])});
      continue;
    }
    const std::size_t close = rest.find(')', 6);
    if (close == std::string::npos) {
      s.report->findings.push_back(
          {std::string(kBadAllow), s.f.path, here,
           "malformed repro-lint directive: missing ')'",
           trim(s.f.raw_lines[i])});
      continue;
    }
    const std::string check = trim(std::string_view(rest).substr(6, close - 6));
    const std::string justification =
        trim(std::string_view(rest).substr(close + 1));
    const bool known =
        std::find(std::begin(kAllChecks), std::end(kAllChecks), check) !=
        std::end(kAllChecks);
    if (!known) {
      s.report->findings.push_back(
          {std::string(kBadAllow), s.f.path, here,
           "unknown check '" + check + "' in repro-lint allow directive",
           trim(s.f.raw_lines[i])});
      continue;
    }
    if (justification.empty()) {
      s.report->findings.push_back(
          {std::string(kBadAllow), s.f.path, here,
           "repro-lint allow(" + check +
               ") needs a justification after the ')'",
           trim(s.f.raw_lines[i])});
      continue;
    }
    // Trailing directive governs its own line; a directive-only line governs
    // the next line that holds code.
    int target = here;
    if (trim(s.f.code_lines[i]).empty()) {
      target = 0;
      for (std::size_t j = i + 1; j < s.f.code_lines.size(); ++j) {
        if (!trim(s.f.code_lines[j]).empty()) {
          target = static_cast<int>(j) + 1;
          break;
        }
      }
    }
    s.directives.push_back({check, here, target, justification, false});
  }
}

// ---------------------------------------------------------------------------
// Check 1: raw-sort

void check_raw_sort(Scanner& s) {
  if (path_ends_with(s.f.path, "src/support/psort.h") ||
      path_ends_with(s.f.path, "src/support/psort.cpp")) {
    return;  // the psort layer is where the sequential fallbacks live
  }
  constexpr std::string_view kCalls[] = {"sort", "stable_sort",
                                         "partial_sort", "qsort"};
  for (std::size_t i = 0; i < s.f.code_lines.size(); ++i) {
    const std::string& line = s.f.code_lines[i];
    for (const std::string_view name : kCalls) {
      for (std::size_t p = find_word(line, name); p != std::string_view::npos;
           p = find_word(line, name, p + 1)) {
        // Qualified std:: / std::ranges:: (or C qsort) immediately invoked.
        std::size_t q = p + name.size();
        while (q < line.size() &&
               std::isspace(static_cast<unsigned char>(line[q])) != 0) {
          ++q;
        }
        if (q >= line.size() || line[q] != '(') continue;
        const bool qualified =
            p >= 2 && line.compare(p - 2, 2, "::") == 0;
        if (name != "qsort" && !qualified) continue;
        s.emit(kRawSort, static_cast<int>(i) + 1,
               "raw " + std::string(name) +
                   " outside src/support/psort.* — route host-side sorts "
                   "through psort::stable_sort_keys (stability is the id "
                   "tie-break the determinism contract requires)");
        break;  // one finding per (line, call name)
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 2: iteration-order (src/ only)

// Collects identifiers declared with std::unordered_map/unordered_set
// anywhere in the type (members, locals, params, vectors of unordered).
std::vector<std::string> unordered_names(const std::string& blob) {
  std::vector<std::string> names;
  constexpr std::string_view kTypes[] = {"unordered_map", "unordered_set"};
  for (const std::string_view t : kTypes) {
    for (std::size_t p = find_word(blob, t); p != std::string::npos;
         p = find_word(blob, t, p + 1)) {
      std::size_t q = p + t.size();
      while (q < blob.size() &&
             std::isspace(static_cast<unsigned char>(blob[q])) != 0) {
        ++q;
      }
      if (q >= blob.size() || blob[q] != '<') continue;
      // Skip the balanced template argument list.
      int depth = 0;
      while (q < blob.size()) {
        if (blob[q] == '<') ++depth;
        if (blob[q] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++q;
      }
      if (q >= blob.size()) continue;
      ++q;  // past the closing '>'
      // Skip outer-template closers and declarator decoration.
      while (q < blob.size() &&
             (std::isspace(static_cast<unsigned char>(blob[q])) != 0 ||
              blob[q] == '>' || blob[q] == '&' || blob[q] == '*')) {
        ++q;
      }
      std::size_t e = q;
      while (e < blob.size() && is_ident_char(blob[e])) ++e;
      if (e == q) continue;
      const std::string name = blob.substr(q, e - q);
      if (name == "const") continue;
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void check_iteration_order(Scanner& s) {
  if (!in_src(s.f.path)) return;
  const std::vector<std::string> names = unordered_names(s.f.blob);
  if (names.empty()) return;
  for (std::size_t i = 0; i < s.f.code_lines.size(); ++i) {
    const std::string& line = s.f.code_lines[i];
    for (std::size_t p = find_word(line, "for"); p != std::string_view::npos;
         p = find_word(line, "for", p + 1)) {
      const std::size_t open = line.find('(', p);
      if (open == std::string::npos) break;
      const std::size_t colon = line.find(':', open);
      if (colon == std::string::npos) break;
      const std::size_t close = line.find(')', colon);
      if (close == std::string::npos) break;
      std::string range = trim(line.substr(colon + 1, close - colon - 1));
      if (range.empty() || range.find('(') != std::string::npos) continue;
      // Last member-access component, sans any subscript.
      std::size_t start = 0;
      for (std::size_t d = range.rfind('.'); d != std::string::npos;) {
        start = d + 1;
        break;
      }
      if (const std::size_t a = range.rfind("->"); a != std::string::npos) {
        start = std::max(start, a + 2);
      }
      std::string base = range.substr(start);
      if (const std::size_t b = base.find('['); b != std::string::npos) {
        base = base.substr(0, b);
      }
      base = trim(base);
      if (std::find(names.begin(), names.end(), base) != names.end()) {
        s.emit(kIterationOrder, static_cast<int>(i) + 1,
               "range-for over unordered container '" + base +
                   "' — hash iteration order is implementation-defined; "
                   "allowlist only commutative accumulation");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 3: rng-discipline

void check_rng_discipline(Scanner& s) {
  if (path_ends_with(s.f.path, "src/support/rng.h")) return;
  constexpr std::string_view kBanned[] = {
      "rand",       "srand",        "random_device",
      "mt19937",    "mt19937_64",   "minstd_rand",
      "minstd_rand0", "default_random_engine", "knuth_b",
      "ranlux24",   "ranlux48",
  };
  for (std::size_t i = 0; i < s.f.code_lines.size(); ++i) {
    const std::string& line = s.f.code_lines[i];
    for (const std::string_view name : kBanned) {
      if (!contains_word(line, name)) continue;
      // rand/srand must look like calls; the std engine type names are
      // banned as bare tokens.
      if (name == "rand" || name == "srand") {
        const std::size_t p = find_word(line, name);
        std::size_t q = p + name.size();
        while (q < line.size() &&
               std::isspace(static_cast<unsigned char>(line[q])) != 0) {
          ++q;
        }
        if (q >= line.size() || line[q] != '(') continue;
      }
      std::string msg = "'";
      msg += name;
      msg +=
          "' outside src/support/rng.h — all randomness must flow from the "
          "explicit-seed ampccut::Rng";
      s.emit(kRngDiscipline, static_cast<int>(i) + 1, std::move(msg));
      break;
    }
    // Time-derived seeding: a now()/time() call on a line that also touches
    // seed/rng state. Timing code (bench wall clocks) has no seed on the
    // line and stays clean.
    bool timey = line.find("::now") != std::string::npos;
    if (!timey) {
      // C time(...) — call-shaped and not a member (.time / ->time / a
      // struct field read like order.time[e]).
      for (std::size_t p = find_word(line, "time"); p != std::string_view::npos;
           p = find_word(line, "time", p + 1)) {
        const char prev = p > 0 ? line[p - 1] : '\0';
        if (prev == '.' || prev == '>') continue;
        std::size_t q = p + 4;
        while (q < line.size() &&
               std::isspace(static_cast<unsigned char>(line[q])) != 0) {
          ++q;
        }
        if (q < line.size() && line[q] == '(') {
          timey = true;
          break;
        }
      }
    }
    if (!timey) continue;
    std::string lower = line;
    std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
      return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    });
    if (lower.find("seed") != std::string::npos ||
        contains_word(lower, "rng")) {
      s.emit(kRngDiscipline, static_cast<int>(i) + 1,
             "time-derived seed — seeds must be explicit so every run is "
             "reproducible");
    }
  }
}

// ---------------------------------------------------------------------------
// Check 4: comparator-tiebreak

// Last identifier in a parameter declaration ("const WEdge& x" -> "x").
std::string param_name(std::string_view decl) {
  std::size_t e = decl.size();
  while (e > 0 && !is_ident_char(decl[e - 1])) --e;
  std::size_t b = e;
  while (b > 0 && is_ident_char(decl[b - 1])) --b;
  return std::string(decl.substr(b, e - b));
}

// Replaces word-boundary occurrences of `a`<->`b` in space-free `expr`.
std::string swap_params(const std::string& expr, const std::string& a,
                        const std::string& b) {
  std::string out;
  std::size_t i = 0;
  while (i < expr.size()) {
    const bool boundary = i == 0 || !is_ident_char(expr[i - 1]);
    if (boundary && expr.compare(i, a.size(), a) == 0 &&
        (i + a.size() >= expr.size() || !is_ident_char(expr[i + a.size()]))) {
      out += b;
      i += a.size();
    } else if (boundary && expr.compare(i, b.size(), b) == 0 &&
               (i + b.size() >= expr.size() ||
                !is_ident_char(expr[i + b.size()]))) {
      out += a;
      i += b.size();
    } else {
      out.push_back(expr[i]);
      ++i;
    }
  }
  return out;
}

void check_comparator_tiebreak(Scanner& s) {
  const std::string& blob = s.f.blob;
  for (std::size_t p = blob.find('['); p != std::string::npos;
       p = blob.find('[', p + 1)) {
    // Lambda introducer: '[' whose matching ']' is directly followed by '('.
    const std::size_t close_b = blob.find(']', p);
    if (close_b == std::string::npos) break;
    std::size_t q = close_b + 1;
    while (q < blob.size() &&
           std::isspace(static_cast<unsigned char>(blob[q])) != 0) {
      ++q;
    }
    if (q >= blob.size() || blob[q] != '(') continue;
    // Parameter list up to the balanced ')'.
    int depth = 0;
    std::size_t r = q;
    while (r < blob.size()) {
      if (blob[r] == '(') ++depth;
      if (blob[r] == ')') {
        --depth;
        if (depth == 0) break;
      }
      ++r;
    }
    if (r >= blob.size()) break;
    const std::string params = blob.substr(q + 1, r - q - 1);
    // Exactly two top-level parameters.
    std::vector<std::string> parts;
    {
      int d = 0;
      std::size_t start = 0;
      for (std::size_t i = 0; i <= params.size(); ++i) {
        if (i == params.size() || (params[i] == ',' && d == 0)) {
          parts.push_back(params.substr(start, i - start));
          start = i + 1;
        } else if (params[i] == '<' || params[i] == '(') {
          ++d;
        } else if (params[i] == '>' || params[i] == ')') {
          --d;
        }
      }
    }
    if (parts.size() != 2) continue;
    const std::string pa = param_name(parts[0]);
    const std::string pb = param_name(parts[1]);
    if (pa.empty() || pb.empty() || pa == pb) continue;
    // Body must be exactly `{ return EXPR; }`.
    std::size_t t = r + 1;
    while (t < blob.size() &&
           std::isspace(static_cast<unsigned char>(blob[t])) != 0) {
      ++t;
    }
    if (t >= blob.size() || blob[t] != '{') continue;
    std::size_t u = t + 1;
    while (u < blob.size() &&
           std::isspace(static_cast<unsigned char>(blob[u])) != 0) {
      ++u;
    }
    if (blob.compare(u, 6, "return") != 0) continue;
    const std::size_t semi = blob.find(';', u);
    if (semi == std::string::npos) continue;
    std::size_t w = semi + 1;
    while (w < blob.size() &&
           std::isspace(static_cast<unsigned char>(blob[w])) != 0) {
      ++w;
    }
    if (w >= blob.size() || blob[w] != '}') continue;
    const std::string expr = remove_spaces(blob.substr(u + 6, semi - u - 6));
    // A comma means a composite key (std::tie / make_pair) — that IS the
    // tie-break this check wants, so only single-expression bodies qualify.
    if (expr.find(',') != std::string::npos) continue;
    // Exactly one bare < or > (not <=, >=, <<, >>, ->, != , ==).
    std::vector<std::size_t> cmp;
    for (std::size_t i = 0; i < expr.size(); ++i) {
      if (expr[i] != '<' && expr[i] != '>') continue;
      const char prev = i > 0 ? expr[i - 1] : '\0';
      const char next = i + 1 < expr.size() ? expr[i + 1] : '\0';
      if (next == '=' || prev == expr[i] || next == expr[i]) {
        ++i;  // skip the operator pair
        continue;
      }
      if (expr[i] == '>' && prev == '-') continue;  // ->
      cmp.push_back(i);
    }
    if (cmp.size() != 1) continue;
    const std::string lhs = expr.substr(0, cmp[0]);
    const std::string rhs = expr.substr(cmp[0] + 1);
    if (lhs.empty() || rhs.empty()) continue;
    // Projection required: a plain `a < b` orders by the value itself and
    // cannot tie two distinct elements' identities.
    const bool projected = lhs.find('.') != std::string::npos ||
                           lhs.find("->") != std::string::npos ||
                           lhs.find('[') != std::string::npos;
    if (!projected) continue;
    if (swap_params(lhs, pa, pb) != rhs) continue;
    s.emit(kComparatorTiebreak, s.f.line_of(p),
           "comparator orders by a single projected key with no tie-break — "
           "ties fall to container order; pair the key with an id "
           "(std::tie) or justify that a stable sort supplies the "
           "tie-break");
  }
}

// ---------------------------------------------------------------------------
// Check 5: dcheck-side-effect

void check_dcheck_side_effect(Scanner& s) {
  const std::string& blob = s.f.blob;
  constexpr std::string_view kMutating[] = {
      ".push_back(", ".pop_back(",  ".insert(",   ".erase(",
      ".emplace",    ".clear(",     ".resize(",   ".reserve(",
      ".unite(",     ".fetch_add(", ".fetch_sub(", ".exchange(",
      ".store(",     "next_u64(",   "next_below(", "next_double(",
      "next_double_open(", "next_exponential(", "next_bernoulli(",
  };
  for (std::size_t p = find_word(blob, "REPRO_DCHECK");
       p != std::string::npos; p = find_word(blob, "REPRO_DCHECK", p + 1)) {
    std::size_t q = p + 12;
    while (q < blob.size() &&
           std::isspace(static_cast<unsigned char>(blob[q])) != 0) {
      ++q;
    }
    if (q >= blob.size() || blob[q] != '(') continue;
    int depth = 0;
    std::size_t r = q;
    while (r < blob.size()) {
      if (blob[r] == '(') ++depth;
      if (blob[r] == ')') {
        --depth;
        if (depth == 0) break;
      }
      ++r;
    }
    if (r >= blob.size()) break;
    const std::string arg = remove_spaces(blob.substr(q + 1, r - q - 1));
    bool dirty = arg.find("++") != std::string::npos ||
                 arg.find("--") != std::string::npos;
    if (!dirty) {
      for (std::size_t i = 0; i < arg.size() && !dirty; ++i) {
        if (arg[i] != '=') continue;
        const char prev = i > 0 ? arg[i - 1] : '\0';
        const char next = i + 1 < arg.size() ? arg[i + 1] : '\0';
        if (next == '=') {
          ++i;  // ==
          continue;
        }
        if (prev == '=' || prev == '!' || prev == '<' || prev == '>') continue;
        dirty = true;  // plain or compound assignment
      }
    }
    if (!dirty) {
      for (const std::string_view m : kMutating) {
        if (arg.find(m) != std::string::npos) {
          dirty = true;
          break;
        }
      }
    }
    if (dirty) {
      s.emit(kDcheckSideEffect, s.f.line_of(p),
             "REPRO_DCHECK argument has side effects — NDEBUG builds never "
             "evaluate it (the sizeof trick), silently changing behavior; "
             "hoist the mutation out of the macro");
    }
  }
}

void report_unused_directives(Scanner& s) {
  for (const Directive& d : s.directives) {
    if (d.used) continue;
    s.report->findings.push_back(
        {std::string(kUnusedAllow), s.f.path, d.directive_line,
         "allow(" + d.check +
             ") suppressed nothing — remove it or fix its placement "
             "(trailing comment on the construct's first line, or a "
             "directive-only line directly above it)",
         trim(s.f.raw_lines[d.directive_line - 1])});
  }
}

}  // namespace

std::string strip_comments_and_strings(std::string_view src) {
  std::string out(src.size(), ' ');
  enum class St { Code, Line, Block, Str, Chr, Raw };
  St st = St::Code;
  std::string raw_delim;  // for raw strings: )delim"
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    if (c == '\n') {
      out[i] = '\n';
      if (st == St::Line) st = St::Code;
      continue;
    }
    switch (st) {
      case St::Code:
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
          st = St::Line;
        } else if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
          st = St::Block;
          ++i;
        } else if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"' &&
                   (i == 0 || !is_ident_char(src[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          while (j < src.size() && src[j] != '(') ++j;
          // Built with += to dodge GCC 12's -Wrestrict false positive on
          // small-string operator+ chains (same workaround as test_psort).
          raw_delim = ")";
          raw_delim += src.substr(i + 2, j - i - 2);
          raw_delim += '"';
          out[i] = 'R';
          st = St::Raw;
          i = j;  // positions i+1..j blanked (already spaces)
        } else if (c == '"') {
          st = St::Str;
        } else if (c == '\'') {
          st = St::Chr;
        } else {
          out[i] = c;
        }
        break;
      case St::Line:
      case St::Block:
        if (st == St::Block && c == '*' && i + 1 < src.size() &&
            src[i + 1] == '/') {
          st = St::Code;
          ++i;
        }
        break;
      case St::Str:
      case St::Chr:
        if (c == '\\') {
          ++i;
          if (i < src.size() && src[i] == '\n') out[i] = '\n';
        } else if ((st == St::Str && c == '"') ||
                   (st == St::Chr && c == '\'')) {
          st = St::Code;
        }
        break;
      case St::Raw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = St::Code;
        }
        break;
    }
  }
  return out;
}

namespace {

// Comment text with code/strings blanked — the directive channel. Same state
// machine, opposite projection.
std::string extract_comments(std::string_view src) {
  std::string code = strip_comments_and_strings(src);
  std::string out(src.size(), ' ');
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\n') {
      out[i] = '\n';
    } else if (code[i] == ' ' && src[i] != ' ') {
      out[i] = src[i];  // blanked by the stripper: comment or literal text
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      lines.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

}  // namespace

void scan_file(const std::string& path, std::string_view contents,
               Report& report) {
  Scanner s;
  s.f.path = path;
  s.report = &report;
  s.f.raw_lines = split_lines(contents);
  const std::string code = strip_comments_and_strings(contents);
  s.f.code_lines = split_lines(code);
  s.f.comment_lines = split_lines(extract_comments(contents));
  s.f.blob = code;
  s.f.line_start.clear();
  s.f.line_start.push_back(0);
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '\n') s.f.line_start.push_back(i + 1);
  }
  ++report.files_scanned;

  collect_directives(s);
  check_raw_sort(s);
  check_iteration_order(s);
  check_rng_discipline(s);
  check_comparator_tiebreak(s);
  check_dcheck_side_effect(s);
  report_unused_directives(s);
}

std::vector<std::string> default_subdirs() {
  return {"src", "tests", "bench", "examples"};
}

bool scan_tree(const std::string& root, const std::vector<std::string>& subdirs,
               Report& report, std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    if (error != nullptr) *error = "not a directory: " + root;
    return false;
  }
  std::vector<std::string> files;
  bool any = false;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::is_directory(dir, ec)) continue;
    any = true;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        if (error != nullptr) *error = "walk failed under " + dir.string();
        return false;
      }
      if (it->is_directory() && it->path().filename() == "lint_fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cpp" && ext != ".cc") {
        continue;
      }
      files.push_back(fs::relative(it->path(), root, ec).generic_string());
    }
  }
  if (!any) {
    if (error != nullptr) {
      *error = "none of the scan roots exist under " + root;
    }
    return false;
  }
  // Deterministic report order regardless of directory enumeration order.
  std::sort(files.begin(), files.end());
  for (const std::string& rel : files) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof()) {
      if (error != nullptr) *error = "read failed: " + rel;
      return false;
    }
    scan_file(rel, buf.str(), report);
  }
  return true;
}

json::Value Report::to_json() const {
  json::Value doc = json::Value::object();
  doc["schema"] = "repro-lint-v1";
  doc["files_scanned"] = static_cast<std::int64_t>(files_scanned);
  doc["finding_count"] = static_cast<std::int64_t>(findings.size());
  doc["allowed_count"] = static_cast<std::int64_t>(allowed.size());
  json::Value counts = json::Value::object();
  for (const std::string_view check : kAllChecks) {
    std::int64_t n = 0;
    for (const Finding& f : findings) {
      if (f.check == check) ++n;
    }
    counts[check] = n;
  }
  doc["counts"] = std::move(counts);
  json::Value fs = json::Value::array();
  for (const Finding& f : findings) {
    json::Value v = json::Value::object();
    v["check"] = f.check;
    v["file"] = f.file;
    v["line"] = static_cast<std::int64_t>(f.line);
    v["message"] = f.message;
    v["snippet"] = f.snippet;
    fs.push_back(std::move(v));
  }
  doc["findings"] = std::move(fs);
  json::Value as = json::Value::array();
  for (const AllowEntry& a : allowed) {
    json::Value v = json::Value::object();
    v["check"] = a.check;
    v["file"] = a.file;
    v["line"] = static_cast<std::int64_t>(a.line);
    v["justification"] = a.justification;
    as.push_back(std::move(v));
  }
  doc["allowed"] = std::move(as);
  return doc;
}

}  // namespace ampccut::lint
