// ampc_worker — exec'd wire-protocol conformance harness for the transport
// layer (DESIGN.md "Transport layer & multi-process execution").
//
// The production ShmTransport FORKS its workers (round bodies are closures;
// the COW snapshot is the round's frozen H_{i-1}), so its two sides always
// share one binary image. This tool is the missing severity: a worker that
// attaches to the rings by NAME from a freshly exec'd process, with no
// inherited memory, and speaks the full frame vocabulary — including
// kReadRequest/kReadReply, the request/reply pair the fork launcher never
// needs (forked children read committed tables through their snapshot). If
// the ring layout or wire format ever drifted into accidentally depending on
// shared process state, this harness is what breaks.
//
//   ampc_worker --serve <in-shm> <out-shm> <capacity> <worker-id>
//       Protocol server: attach to the named rings, announce readiness with
//       a kMachineDone hello, then serve kPutBatch (store), kReadRequest
//       (reply kReadReply) until a kRoundBarrier arrives, which is echoed
//       back with the number of requests served before exiting 0. Malformed
//       input sends kWorkerError and exits 88 (kWorkerExitInternal).
//
//   ampc_worker --self-test
//       Driver side: create the rings, exec a --serve child of this same
//       binary, unlink the names once the hello arrives, then run a scripted
//       exchange (stores, hits, misses, zero-length values, barrier) and
//       verify every reply byte. Exits 0 iff the whole script matched; this
//       mode is registered as the ctest Transport.worker_protocol.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "support/errors.h"
#include "transport/transport.h"
#include "transport/wire.h"

namespace ampccut::transport {
namespace {

void sleep_100us() {
  timespec ts{0, 100'000};
  nanosleep(&ts, nullptr);
}

// The typed append_* helpers emit payload bytes only; everything on a ring
// travels framed.
void send_frame(ShmRing& ring, FrameKind kind,
                const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  append_frame(&frame, kind, payload.data(), payload.size());
  ring.write(frame.data(), frame.size());
}

// Pull frames out of a streaming buffer: calls fn(view) for each complete
// frame, then compacts. Returns bytes consumed this call.
template <class Fn>
void drain_frames(std::vector<std::uint8_t>* buf, const Fn& fn) {
  std::size_t at = 0;
  for (;;) {
    FrameView view;
    const std::size_t used =
        decode_frame(buf->data() + at, buf->size() - at, &view);
    if (used == 0) break;
    fn(view);
    at += used;
  }
  if (at != 0) buf->erase(buf->begin(), buf->begin() + static_cast<long>(at));
}

// --- --serve ----------------------------------------------------------------

[[noreturn]] void serve(const std::string& in_name, const std::string& out_name,
                        std::size_t capacity, std::uint64_t worker_id) {
  ShmRegion in_region =
      ShmRegion::open_named(in_name, ShmRing::region_bytes(capacity));
  ShmRegion out_region =
      ShmRegion::open_named(out_name, ShmRing::region_bytes(capacity));
  ShmRing in(in_region.data(), in_region.size(), /*init=*/false);
  ShmRing out(out_region.data(), out_region.size(), /*init=*/false);
  try {
    // Hello: proves both rings are attached, so the driver may unlink.
    {
      std::vector<std::uint8_t> hello;
      append_machine_done(&hello, MachineDone{worker_id, 0, 0, 0});
      send_frame(out, FrameKind::kMachineDone, hello);
    }
    // table -> key bytes -> value bytes; last write wins (protocol harness —
    // combiner/merge semantics are the runtime's job and tested there).
    std::map<std::uint32_t, std::map<std::string, std::vector<std::uint8_t>>>
        store;
    std::uint64_t served = 0;
    bool done = false;
    std::vector<std::uint8_t> buf;
    std::vector<std::uint8_t> reply;
    while (!done) {
      if (in.read_some(&buf) == 0) {
        sleep_100us();
        continue;
      }
      drain_frames(&buf, [&](const FrameView& view) {
        switch (view.kind) {
          case FrameKind::kPutBatch: {
            const PutBatch b = decode_put_batch(view.payload, view.size);
            const std::size_t entry = b.key_size + b.value_size;
            for (std::uint32_t i = 0; i < b.count; ++i) {
              const std::uint8_t* p = b.entries + i * entry;
              std::string key(reinterpret_cast<const char*>(p), b.key_size);
              store[b.table][std::move(key)] = {p + b.key_size, p + entry};
            }
            break;
          }
          case FrameKind::kReadRequest: {
            const ReadRequest r = decode_read_request(view.payload, view.size);
            ++served;
            reply.clear();
            const std::string key(reinterpret_cast<const char*>(r.key),
                                  r.key_size);
            const auto table = store.find(r.table);
            bool found = false;
            if (table != store.end()) {
              const auto hit = table->second.find(key);
              if (hit != table->second.end()) {
                found = true;
                append_read_reply(
                    &reply, true, hit->second.data(),
                    static_cast<std::uint32_t>(hit->second.size()));
              }
            }
            if (!found) append_read_reply(&reply, false, nullptr, 0);
            send_frame(out, FrameKind::kReadReply, reply);
            break;
          }
          case FrameKind::kRoundBarrier: {
            (void)decode_round_barrier(view.payload, view.size);
            reply.clear();
            append_round_barrier(&reply, RoundBarrier{worker_id, served});
            send_frame(out, FrameKind::kRoundBarrier, reply);
            done = true;
            break;
          }
          default:
            throw TransportError(
                "ampc_worker: unexpected frame kind " +
                std::to_string(static_cast<unsigned>(view.kind)));
        }
      });
    }
    _exit(0);
  } catch (const std::exception& e) {
    try {
      WorkerError err;
      err.code = kWorkerExitInternal;
      err.message = e.what();
      std::vector<std::uint8_t> frame;
      append_worker_error(&frame, err);
      send_frame(out, FrameKind::kWorkerError, frame);
    } catch (...) {
      // The error path must not mask the exit code.
    }
    _exit(kWorkerExitInternal);
  }
}

// --- --self-test ------------------------------------------------------------

#define HARNESS_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "ampc_worker self-test FAILED at %s:%d: %s\n", \
                   __FILE__, __LINE__, #cond);                           \
      return 1;                                                          \
    }                                                                    \
  } while (false)

// Blocks until `buf` holds at least one whole frame, draining `ring`.
FrameView next_frame(ShmRing& ring, std::vector<std::uint8_t>* buf,
                     std::size_t* consumed) {
  if (*consumed != 0) {
    buf->erase(buf->begin(), buf->begin() + static_cast<long>(*consumed));
    *consumed = 0;
  }
  for (;;) {
    FrameView view;
    const std::size_t used = decode_frame(buf->data(), buf->size(), &view);
    if (used != 0) {
      *consumed = used;
      return view;
    }
    if (ring.read_some(buf) == 0) sleep_100us();
  }
}

int self_test(const char* argv0) {
  constexpr std::size_t kCapacity = 1 << 14;
  ShmRegion to_worker = ShmRegion::create(ShmRing::region_bytes(kCapacity));
  ShmRegion from_worker = ShmRegion::create(ShmRing::region_bytes(kCapacity));
  ShmRing out(to_worker.data(), to_worker.size(), /*init=*/true);
  ShmRing in(from_worker.data(), from_worker.size(), /*init=*/true);

  const std::string cap = std::to_string(kCapacity);
  const pid_t pid = fork();
  HARNESS_CHECK(pid >= 0);
  if (pid == 0) {
    execl(argv0, argv0, "--serve", to_worker.name().c_str(),
          from_worker.name().c_str(), cap.c_str(), "7",
          static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }

  std::vector<std::uint8_t> buf;
  std::size_t consumed = 0;

  // Hello first; only then is unlinking the names safe.
  {
    const FrameView view = next_frame(in, &buf, &consumed);
    HARNESS_CHECK(view.kind == FrameKind::kMachineDone);
    HARNESS_CHECK(decode_machine_done(view.payload, view.size).machine == 7);
  }
  to_worker.unlink();
  from_worker.unlink();

  // Store: table 1 gets {i -> i*i} for i in 0..9 as u64/u64 pairs, table 2
  // gets three bare keys (zero-length values).
  {
    std::vector<std::uint8_t> frame;
    std::vector<std::uint8_t> entries;
    for (std::uint64_t i = 0; i < 10; ++i) {
      const std::uint64_t v = i * i;
      append_u64(&entries, i);
      append_u64(&entries, v);
    }
    append_put_batch_prefix(&frame, 1, 0, 10, 8, 8);
    append_bytes(&frame, entries.data(), entries.size());
    std::vector<std::uint8_t> batch;
    append_frame(&batch, FrameKind::kPutBatch, frame.data(), frame.size());

    frame.clear();
    entries.clear();
    for (std::uint64_t i = 100; i < 103; ++i) append_u64(&entries, i);
    append_put_batch_prefix(&frame, 2, 0, 3, 8, 0);
    append_bytes(&frame, entries.data(), entries.size());
    append_frame(&batch, FrameKind::kPutBatch, frame.data(), frame.size());
    out.write(batch.data(), batch.size());
  }

  // Reads: hits on both tables, a key miss and a table miss.
  for (std::uint64_t i = 0; i < 10; ++i) {
    std::vector<std::uint8_t> req;
    append_read_request(&req, 1, 0, reinterpret_cast<const std::uint8_t*>(&i),
                        8);
    send_frame(out, FrameKind::kReadRequest, req);
    const FrameView view = next_frame(in, &buf, &consumed);
    HARNESS_CHECK(view.kind == FrameKind::kReadReply);
    const ReadReply rep = decode_read_reply(view.payload, view.size);
    HARNESS_CHECK(rep.found);
    HARNESS_CHECK(rep.value_size == 8);
    std::uint64_t v = 0;
    std::memcpy(&v, rep.value, 8);
    HARNESS_CHECK(v == i * i);
  }
  {
    const std::uint64_t key = 101;  // stored with a zero-length value
    std::vector<std::uint8_t> req;
    append_read_request(&req, 2, 0,
                        reinterpret_cast<const std::uint8_t*>(&key), 8);
    send_frame(out, FrameKind::kReadRequest, req);
    const FrameView view = next_frame(in, &buf, &consumed);
    const ReadReply rep = decode_read_reply(view.payload, view.size);
    HARNESS_CHECK(rep.found);
    HARNESS_CHECK(rep.value_size == 0);
  }
  for (const std::uint32_t table : {1u, 9u}) {  // key miss, then table miss
    const std::uint64_t key = 9999;
    std::vector<std::uint8_t> req;
    append_read_request(&req, table, 0,
                        reinterpret_cast<const std::uint8_t*>(&key), 8);
    send_frame(out, FrameKind::kReadRequest, req);
    const FrameView view = next_frame(in, &buf, &consumed);
    const ReadReply rep = decode_read_reply(view.payload, view.size);
    HARNESS_CHECK(!rep.found);
    HARNESS_CHECK(rep.value_size == 0);
  }

  // Barrier: echoed with the served-request count, then exit 0.
  {
    std::vector<std::uint8_t> req;
    append_round_barrier(&req, RoundBarrier{0, 0});
    send_frame(out, FrameKind::kRoundBarrier, req);
    const FrameView view = next_frame(in, &buf, &consumed);
    HARNESS_CHECK(view.kind == FrameKind::kRoundBarrier);
    const RoundBarrier b = decode_round_barrier(view.payload, view.size);
    HARNESS_CHECK(b.worker == 7);
    HARNESS_CHECK(b.machines_run == 13);  // 10 + 1 + 2 read requests
  }
  int status = 0;
  HARNESS_CHECK(waitpid(pid, &status, 0) == pid);
  HARNESS_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  std::printf("ampc_worker self-test passed\n");
  return 0;
}

}  // namespace
}  // namespace ampccut::transport

int main(int argc, char** argv) {
  using namespace ampccut::transport;
  if (argc == 2 && std::strcmp(argv[1], "--self-test") == 0) {
    return self_test(argv[0]);
  }
  if (argc == 6 && std::strcmp(argv[1], "--serve") == 0) {
    serve(argv[2], argv[3],
          static_cast<std::size_t>(std::strtoull(argv[4], nullptr, 10)),
          std::strtoull(argv[5], nullptr, 10));
  }
  std::fprintf(stderr,
               "usage: ampc_worker --self-test\n"
               "       ampc_worker --serve <in-shm> <out-shm> <capacity> "
               "<worker-id>\n");
  return 2;
}
