// E1 (Theorem 1): AMPC (2+eps)-approximate Min Cut in O(log log n) rounds vs
// the Ghaffari–Nowicki-shaped MPC baseline at O(log n log log n), plus the
// approximation ratio against Stoer–Wagner.
//
// Expected shape: the AMPC model-round column grows like the `loglog`
// reference column; the MPC column grows like `log*loglog`; ratios stay
// within 2+eps (empirically they hug 1.0).
#include <cmath>

#include "ampc_algo/mincut_ampc.h"
#include "bench_util.h"
#include "exact/stoer_wagner.h"
#include "graph/generators.h"
#include "kernel/kernel.h"
#include "mpc/gn_baseline.h"

using namespace ampccut;
using namespace ampccut::bench;

int main(int argc, char** argv) {
  const Mode mode = mode_of(argc, argv);
  const std::uint32_t threads = threads_of(argc, argv);
  // Round execution strategy, forwarded by tools/run_benches. Bit-identical
  // results and model metrics across transports; only wall time may move.
  const transport::TransportKind transport_kind = transport_of(argc, argv);
  const std::uint32_t num_processes = procs_of(argc, argv);
  BenchReporter rep("e1_mincut_rounds");
  std::printf("E1 / Theorem 1 — AMPC min cut rounds vs n (family: random "
              "connected, m = 4n)\n\n");
  TablePrinter t({"n", "exact", "ampc_w", "ratio", "ampc_rounds(meas+cited)",
                  "mpc_rounds", "loglog(n)", "log*loglog"});
  std::vector<VertexId> sizes{256, 512, 1024, 2048};
  if (mode == Mode::kSmoke) sizes = {256, 512};
  if (mode == Mode::kFull) sizes = {256, 512, 1024, 2048, 4096, 8192, 16384};
  for (const VertexId n : sizes) {
    const WGraph g = gen_random_connected(n, 4ull * n, 1000 + n);

    ampc::AmpcMinCutOptions aopt;
    aopt.recursion.seed = 7;
    aopt.recursion.trials = 1;
    aopt.recursion.threads = threads;
    aopt.transport = transport_kind;
    aopt.num_processes = num_processes;
    ampc::AmpcMinCutReport ampc_r;
    const double ampc_ns =
        time_once_ns([&] { ampc_r = ampc::ampc_approx_min_cut(g, aopt); });

    mpc::MpcMinCutOptions mopt;
    mopt.recursion.seed = 7;
    mopt.recursion.trials = 1;
    mopt.recursion.threads = threads;
    mpc::MpcMinCutReport mpc_r;
    const double mpc_ns =
        time_once_ns([&] { mpc_r = mpc::mpc_gn_min_cut(g, mopt); });

    const Weight exact =
        n <= 4096 ? stoer_wagner_min_cut(g).weight : ampc_r.weight;
    const double ratio = static_cast<double>(ampc_r.weight) /
                         static_cast<double>(std::max<Weight>(1, exact));
    const double lg = std::log2(static_cast<double>(n));
    const double ll = std::log2(lg);
    t.add_row({fmt_u(n), fmt_u(exact), fmt_u(ampc_r.weight), fmt(ratio),
               fmt_u(ampc_r.measured_rounds) + "+" +
                   fmt_u(ampc_r.charged_rounds),
               fmt_u(mpc_r.rounds), fmt(ll), fmt(lg * ll, 1)});

    BenchResult ra;
    ra.name = "ampc_min_cut";
    ra.params["n"] = n;
    ra.ns_per_op = ampc_ns;
    ra.iterations = 1;
    ra.measured_rounds = ampc_r.measured_rounds;
    ra.charged_rounds = ampc_r.charged_rounds;
    ra.model_rounds = ampc_r.model_rounds();
    ra.dht_read_words = ampc_r.dht_reads;
    ra.dht_write_words = ampc_r.dht_writes;
    ra.max_machine_traffic = ampc_r.max_machine_traffic;
    ra.peak_table_words = ampc_r.peak_table_words;
    ra.budget_violations = ampc_r.budget_violations;
    ra.extra["weight"] = static_cast<double>(ampc_r.weight);
    ra.extra["ratio_vs_exact"] = ratio;
    rep.add(std::move(ra));

    BenchResult rm;
    rm.name = "mpc_gn_min_cut";
    rm.params["n"] = n;
    rm.ns_per_op = mpc_ns;
    rm.iterations = 1;
    rm.measured_rounds = mpc_r.rounds;
    rm.model_rounds = mpc_r.rounds;
    rm.dht_write_words = mpc_r.messages;
    rm.extra["weight"] = static_cast<double>(mpc_r.weight);
    rep.add(std::move(rm));
  }
  t.print();

  // E1k — the kernelization front-end on the family it is built for: sparse
  // planted-cut graphs (avg degree ~3), where degree-based peeling collapses
  // most of the graph before the AMPC recursion ever runs. The kernel is
  // exact, so the kernelized run must report the SAME weight; the bench
  // aborts on divergence rather than logging a wrong trajectory point.
  std::printf("\nE1k — kernelized AMPC min cut (sparse planted cut, kernel "
              "off vs on)\n\n");
  TablePrinter tk({"n", "kernel_n", "kernel_m", "w", "ms_off", "ms_on",
                   "speedup"});
  std::vector<VertexId> ksizes{2048, 4096};
  if (mode == Mode::kSmoke) ksizes = {1024};
  if (mode == Mode::kFull) ksizes = {4096, 8192, 16384};
  for (const VertexId n : ksizes) {
    const WGraph g = gen_planted_cut(n, 2.0 / n, 3, 500 + n);

    ampc::AmpcMinCutOptions off;
    off.recursion.seed = 7;
    off.recursion.trials = 1;
    off.recursion.threads = threads;
    off.transport = transport_kind;
    off.num_processes = num_processes;
    ampc::AmpcMinCutReport r_off;
    const double ns_off =
        time_once_ns([&] { r_off = ampc::ampc_approx_min_cut(g, off); });

    ampc::AmpcMinCutOptions on = off;
    on.recursion.kernel = kernel::enabled_defaults();
    ampc::AmpcMinCutReport r_on;
    const double ns_on =
        time_once_ns([&] { r_on = ampc::ampc_approx_min_cut(g, on); });
    if (r_on.weight != r_off.weight) {
      std::printf("FATAL: kernelized weight %llu != unkernelized %llu at "
                  "n=%u\n",
                  static_cast<unsigned long long>(r_on.weight),
                  static_cast<unsigned long long>(r_off.weight), n);
      return 1;
    }

    const kernel::KernelResult kk =
        kernel::kernelize(g, kernel::enabled_defaults());
    const double speedup = ns_off / std::max(1.0, ns_on);
    tk.add_row({fmt_u(n), fmt_u(kk.stats.kernel_n), fmt_u(kk.stats.kernel_m),
                fmt_u(r_on.weight), fmt(ns_off / 1e6, 1), fmt(ns_on / 1e6, 1),
                fmt(speedup)});

    BenchResult rk;
    rk.name = "ampc_min_cut_kernelized";
    rk.params["n"] = n;
    rk.ns_per_op = ns_on;
    rk.iterations = 1;
    rk.measured_rounds = r_on.measured_rounds;
    rk.charged_rounds = r_on.charged_rounds;
    rk.model_rounds = r_on.model_rounds();
    rk.extra["weight"] = static_cast<double>(r_on.weight);
    rk.extra["kernel_n"] = static_cast<double>(kk.stats.kernel_n);
    rk.extra["kernel_m"] = static_cast<double>(kk.stats.kernel_m);
    rk.extra["n_reduction_ratio"] =
        static_cast<double>(kk.stats.kernel_n) / static_cast<double>(g.n);
    rk.extra["m_reduction_ratio"] =
        static_cast<double>(kk.stats.kernel_m) / static_cast<double>(g.m());
    rk.extra["ns_base"] = ns_off;
    rk.extra["speedup_vs_unkernelized"] = speedup;
    rep.add(std::move(rk));
  }
  tk.print();
  std::printf(
      "\nShape check: ampc_rounds tracks loglog(n) via the level count "
      "(levels x O(1/eps) rounds);\nmpc_rounds tracks log(n)*loglog(n) via "
      "pointer doubling inside each level. Ratios stay <= 2+eps.\nE1k: the "
      "kernel shrinks sparse planted cuts by >2x in n and the kernelized "
      "run reports the identical weight.\n");
  return finish(argc, argv, rep);
}
