// E6 (Observations 1/6, Lemma 10): structural guarantees of the
// decomposition — O(log n) light edges on any root path, expanded meta-tree
// depth O(log^2 n), and at most 2 boundary edges per level component.
// Exercises the Figure 1/2 structures across tree families.
#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "tree/low_depth.h"

using namespace ampccut;
using namespace ampccut::bench;

int main(int argc, char** argv) {
  const Mode mode = mode_of(argc, argv);
  BenchReporter rep("e6_structure");
  const VertexId n = mode == Mode::kSmoke
                         ? 1 << 10
                         : (mode == Mode::kFull ? 1 << 15 : 1 << 12);
  std::printf("E6 / Obs. 1+6, Lemma 10 — structural stats (n=%u)\n\n", n);

  TablePrinter t({"family", "heavy_paths", "max_light_on_path", "log2(n)",
                  "height", "log2(n)^2", "max_boundary", "sum_level_vertices",
                  "n*height"});
  struct Family {
    const char* name;
    WGraph g;
  };
  std::vector<Family> families;
  families.push_back({"path", gen_path(n)});
  families.push_back({"star", gen_star(n)});
  families.push_back({"broom", gen_broom(n)});
  families.push_back({"caterpillar", gen_caterpillar(n / 4, 3)});
  families.push_back({"binary", gen_binary_tree(n)});
  families.push_back({"random", gen_random_tree(n, 5)});

  for (auto& [name, g] : families) {
    std::vector<TimeStep> times(g.edges.size());
    for (std::size_t i = 0; i < times.size(); ++i)
      times[i] = static_cast<TimeStep>(i + 1);
    Rng rng(11);
    std::shuffle(times.begin(), times.end(), rng);
    const RootedTree rt = build_rooted_tree(g.n, g.edges, times, 0);
    const HeavyLight hl = build_heavy_light(rt);
    DecompositionStats s{};
    const double ns = time_once_ns([&] {
      const auto d = build_low_depth_decomposition(rt, hl);
      s = decomposition_stats(rt, hl, d);
    });
    const double lg = std::log2(static_cast<double>(g.n));
    t.add_row({name, fmt_u(s.num_paths), fmt_u(s.max_light_on_root_path),
               fmt(lg, 1), fmt_u(s.height), fmt(lg * lg, 0),
               fmt_u(s.max_boundary_edges), fmt_u(s.sum_level_vertices),
               fmt_u(static_cast<std::uint64_t>(g.n) * s.height)});

    BenchResult r;
    r.name = std::string("structure_") + name;
    r.group = "exact";
    r.params["n"] = g.n;
    r.ns_per_op = ns;
    r.iterations = 1;
    r.extra["height"] = static_cast<double>(s.height);
    r.extra["max_light_on_root_path"] =
        static_cast<double>(s.max_light_on_root_path);
    r.extra["max_boundary_edges"] = static_cast<double>(s.max_boundary_edges);
    r.extra["sum_level_vertices"] = static_cast<double>(s.sum_level_vertices);
    rep.add(std::move(r));
  }
  t.print();
  std::printf("\nShape check: max_light_on_path <= log2(n)+1 (Obs. 1); "
              "height <= c*log2(n)^2 (Obs. 6); max_boundary <= 2 "
              "(Lemma 10).\n");
  return finish(argc, argv, rep);
}
