// E3 (Theorem 3): smallest singleton cut in O(1/eps) AMPC rounds with
// O((n+m) log^2 n) total memory — measured rounds, interval counts (the
// memory blowup of Lemma 9), and exactness against the oracle.
#include <cmath>

#include "ampc_algo/singleton_ampc.h"
#include "bench_util.h"
#include "graph/generators.h"

using namespace ampccut;
using namespace ampccut::bench;

int main(int argc, char** argv) {
  const Mode mode = mode_of(argc, argv);
  BenchReporter rep("e3_singleton");
  std::printf("E3 / Theorem 3 — AMPC singleton-cut tracker (random "
              "connected graphs)\n\n");
  TablePrinter t({"n", "m", "rounds(meas+cited)", "intervals",
                  "(n+m)log2^2", "peak_words", "== oracle"});
  struct Case {
    VertexId n;
    std::size_t m;
  };
  std::vector<Case> cases{{512, 2048}, {1024, 4096}, {2048, 8192},
                          {4096, 16384}};
  if (mode == Mode::kSmoke) cases = {{512, 2048}, {1024, 4096}};
  if (mode == Mode::kFull) cases.push_back({8192, 32768});
  // One runtime for the whole sweep: reset_for_subproblem gives each case
  // fresh config/metrics while the table pool persists across cases.
  ampc::Runtime rt(ampc::Config::for_problem(cases[0].n + cases[0].m, 0.5));
  for (const auto& c : cases) {
    const WGraph g = gen_random_connected(c.n, c.m, 17 + c.n);
    const ContractionOrder o = make_contraction_order(g, 3);

    // Sequential interval stats give the Lemma 9 memory proxy.
    IntervalTrackerStats stats;
    const auto seq = min_singleton_cut_interval(g, o, &stats);

    rt.reset_for_subproblem(ampc::Config::for_problem(c.n + c.m, 0.5));
    SingletonCutResult got;
    const double ns =
        time_once_ns([&] { got = ampc::ampc_min_singleton_cut(rt, g, o); });
    const auto oracle = min_singleton_cut_oracle(g, o);

    const double budget =
        static_cast<double>(c.n + c.m) *
        std::pow(std::log2(static_cast<double>(c.n)), 2);
    const bool exact =
        got.weight == oracle.weight && seq.weight == oracle.weight;
    t.add_row({fmt_u(c.n), fmt_u(c.m),
               fmt_u(rt.metrics().rounds) + "+" +
                   fmt_u(rt.metrics().charged_rounds),
               fmt_u(stats.total_intervals), fmt(budget, 0),
               fmt_u(rt.metrics().peak_table_words), exact ? "yes" : "NO"});

    BenchResult r;
    r.name = "ampc_singleton_tracker";
    r.params["n"] = c.n;
    r.params["m"] = static_cast<std::int64_t>(c.m);
    r.ns_per_op = ns;
    r.iterations = 1;
    fill_model_metrics(r, rt.metrics());
    r.extra["intervals"] = static_cast<double>(stats.total_intervals);
    r.extra["interval_budget"] = budget;
    r.extra["matches_oracle"] = exact ? 1.0 : 0.0;
    rep.add(std::move(r));
  }
  t.print();
  std::printf("\nShape check: rounds flat in n (Theorem 3's O(1/eps)); "
              "intervals well under the (n+m) log^2 n budget; both trackers "
              "equal the oracle exactly.\n");
  return finish(argc, argv, rep);
}
