// E2 (Lemma 3): generalized low-depth decomposition — height O(log^2 n),
// computed in O(1/eps) AMPC rounds.
//
// Part A sweeps n over tree families and reports measured height against the
// log^2 n budget. Part B sweeps eps and reports measured rounds, which
// should scale like 1/eps and stay flat in n.
#include <cmath>

#include "ampc_algo/low_depth_ampc.h"
#include "bench_util.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "tree/low_depth.h"

using namespace ampccut;
using namespace ampccut::bench;

namespace {

WGraph make_tree(const std::string& family, VertexId n, std::uint64_t seed) {
  if (family == "path") return gen_path(n);
  if (family == "star") return gen_star(n);
  if (family == "broom") return gen_broom(n);
  if (family == "caterpillar") return gen_caterpillar(n / 4, 3);
  if (family == "binary") return gen_binary_tree(n);
  return gen_random_tree(n, seed);
}

std::vector<TimeStep> unit_times(const WGraph& g, std::uint64_t seed) {
  std::vector<TimeStep> t(g.edges.size());
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<TimeStep>(i + 1);
  Rng rng(seed);
  std::shuffle(t.begin(), t.end(), rng);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = has_flag(argc, argv, "--full");

  std::printf("E2a / Lemma 3 — decomposition height vs log^2 n\n\n");
  TablePrinter ta({"family", "n", "height", "log2(n)^2", "height/log2^2",
                   "valid"});
  std::vector<VertexId> sizes{1 << 10, 1 << 12, 1 << 14};
  if (full) sizes.push_back(1 << 16);
  for (const std::string family :
       {"path", "star", "broom", "caterpillar", "binary", "random"}) {
    for (const VertexId n : sizes) {
      const WGraph g = make_tree(family, n, n);
      const auto times = unit_times(g, 5);
      const RootedTree rt = build_rooted_tree(g.n, g.edges, times, 0);
      const HeavyLight hl = build_heavy_light(rt);
      const auto d = build_low_depth_decomposition(rt, hl);
      const double lg2 = std::pow(std::log2(static_cast<double>(g.n)), 2);
      ta.add_row({family, fmt_u(g.n), fmt_u(d.height), fmt(lg2, 1),
                  fmt(d.height / lg2),
                  validate_low_depth_decomposition(rt, d) ? "yes" : "NO"});
    }
  }
  ta.print();

  std::printf("\nE2b — AMPC rounds vs eps (random tree), flat in n\n\n");
  TablePrinter tb({"eps", "n", "measured_rounds", "charged_rounds",
                   "max_machine_traffic"});
  for (const double eps : {0.3, 0.5, 0.7, 0.9}) {
    for (const VertexId n : {VertexId(1 << 12), VertexId(1 << 14)}) {
      const WGraph g = gen_random_tree(n, 3);
      const auto times = unit_times(g, 7);
      ampc::Runtime rt(ampc::Config::for_problem(n, eps));
      const auto at = ampc::ampc_root_tree(rt, g.n, g.edges, times, 0);
      (void)ampc::ampc_low_depth_decomposition(rt, at);
      tb.add_row({fmt(eps, 1), fmt_u(n), fmt_u(rt.metrics().rounds),
                  fmt_u(rt.metrics().charged_rounds),
                  fmt_u(rt.metrics().max_machine_traffic)});
    }
  }
  tb.print();
  std::printf("\nShape check: height/log2^2 bounded by a small constant; "
              "rounds shrink as eps grows and do not grow with n.\n");
  return 0;
}
