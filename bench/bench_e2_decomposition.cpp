// E2 (Lemma 3): generalized low-depth decomposition — height O(log^2 n),
// computed in O(1/eps) AMPC rounds.
//
// Part A sweeps n over tree families and reports measured height against the
// log^2 n budget. Part B sweeps eps and reports measured rounds, which
// should scale like 1/eps and stay flat in n.
#include <cmath>

#include "ampc_algo/low_depth_ampc.h"
#include "bench_util.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "tree/low_depth.h"

using namespace ampccut;
using namespace ampccut::bench;

namespace {

WGraph make_tree(const std::string& family, VertexId n, std::uint64_t seed) {
  if (family == "path") return gen_path(n);
  if (family == "star") return gen_star(n);
  if (family == "broom") return gen_broom(n);
  if (family == "caterpillar") return gen_caterpillar(n / 4, 3);
  if (family == "binary") return gen_binary_tree(n);
  return gen_random_tree(n, seed);
}

std::vector<TimeStep> unit_times(const WGraph& g, std::uint64_t seed) {
  std::vector<TimeStep> t(g.edges.size());
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<TimeStep>(i + 1);
  Rng rng(seed);
  std::shuffle(t.begin(), t.end(), rng);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const Mode mode = mode_of(argc, argv);
  BenchReporter rep("e2_decomposition");

  std::printf("E2a / Lemma 3 — decomposition height vs log^2 n\n\n");
  TablePrinter ta({"family", "n", "height", "log2(n)^2", "height/log2^2",
                   "valid"});
  std::vector<VertexId> sizes{1 << 10, 1 << 12, 1 << 14};
  if (mode == Mode::kSmoke) sizes = {1 << 10, 1 << 12};
  if (mode == Mode::kFull) sizes.push_back(1 << 16);
  for (const std::string family :
       {"path", "star", "broom", "caterpillar", "binary", "random"}) {
    for (const VertexId n : sizes) {
      const WGraph g = make_tree(family, n, n);
      const auto times = unit_times(g, 5);
      const RootedTree rt = build_rooted_tree(g.n, g.edges, times, 0);
      const HeavyLight hl = build_heavy_light(rt);
      LowDepthDecomposition d;
      const double ns =
          time_once_ns([&] { d = build_low_depth_decomposition(rt, hl); });
      const double lg2 = std::pow(std::log2(static_cast<double>(g.n)), 2);
      const bool valid = validate_low_depth_decomposition(rt, d);
      ta.add_row({family, fmt_u(g.n), fmt_u(d.height), fmt(lg2, 1),
                  fmt(d.height / lg2), valid ? "yes" : "NO"});

      BenchResult r;
      r.name = "low_depth_build_" + family;
      r.group = "exact";  // sequential builder: wall clock, no model costs
      r.params["n"] = g.n;
      r.ns_per_op = ns;
      r.iterations = 1;
      r.extra["height"] = d.height;
      r.extra["height_over_log2_sq"] = d.height / lg2;
      r.extra["valid"] = valid ? 1.0 : 0.0;
      rep.add(std::move(r));
    }
  }
  ta.print();

  std::printf("\nE2b — AMPC rounds vs eps (random tree), flat in n\n\n");
  TablePrinter tb({"eps", "n", "measured_rounds", "charged_rounds",
                   "max_machine_traffic"});
  const std::vector<VertexId> bsizes =
      mode == Mode::kSmoke ? std::vector<VertexId>{VertexId(1 << 12)}
                           : std::vector<VertexId>{VertexId(1 << 12),
                                                   VertexId(1 << 14)};
  for (const double eps : {0.3, 0.5, 0.7, 0.9}) {
    for (const VertexId n : bsizes) {
      const WGraph g = gen_random_tree(n, 3);
      const auto times = unit_times(g, 7);
      ampc::Runtime rt(ampc::Config::for_problem(n, eps));
      const double ns = time_once_ns([&] {
        const auto at = ampc::ampc_root_tree(rt, g.n, g.edges, times, 0);
        (void)ampc::ampc_low_depth_decomposition(rt, at);
      });
      tb.add_row({fmt(eps, 1), fmt_u(n), fmt_u(rt.metrics().rounds),
                  fmt_u(rt.metrics().charged_rounds),
                  fmt_u(rt.metrics().max_machine_traffic)});

      BenchResult r;
      r.name = "ampc_low_depth";
      r.params["n"] = n;
      r.params["eps_x10"] = static_cast<std::int64_t>(eps * 10 + 0.5);
      r.ns_per_op = ns;
      r.iterations = 1;
      fill_model_metrics(r, rt.metrics());
      rep.add(std::move(r));
    }
  }
  tb.print();
  std::printf("\nShape check: height/log2^2 bounded by a small constant; "
              "rounds shrink as eps grows and do not grow with n.\n");
  return finish(argc, argv, rep);
}
