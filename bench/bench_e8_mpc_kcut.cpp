// E8 (Corollary 1): the MPC k-cut wrapper — (4+eps)-approximate Min k-Cut in
// O(k log n log log n) MPC rounds. Complements E4's AMPC table; the paper's
// point is the log n gap between the two columns at every k.
#include <cmath>

#include "ampc_algo/kcut_ampc.h"
#include "bench_util.h"
#include "graph/generators.h"
#include "mpc/gn_baseline.h"

using namespace ampccut;
using namespace ampccut::bench;

int main(int argc, char** argv) {
  const bool full = has_flag(argc, argv, "--full");
  const VertexId size = full ? 512 : 256;
  std::printf("E8 / Corollary 1 — MPC k-cut rounds vs k (community graphs, "
              "n=%u)\n\n", size);
  TablePrinter t({"k", "mpc_w", "mpc_rounds", "ampc_w", "ampc_rounds",
                  "k*log2(n)*loglog"});
  for (std::uint32_t k = 2; k <= (full ? 6u : 5u); ++k) {
    const WGraph g = gen_communities(size, k, 8.0 / size, 2, 41 + k);
    mpc::MpcMinCutOptions mo;
    mo.recursion.seed = 5;
    mo.recursion.trials = 1;
    const auto mpc_r = mpc::mpc_gn_k_cut(g, k, mo);
    ampc::AmpcMinCutOptions ao;
    ao.recursion.seed = 5;
    ao.recursion.trials = 1;
    const auto ampc_r = ampc::ampc_apx_split_k_cut(g, k, ao);
    const double lg = std::log2(static_cast<double>(g.n));
    t.add_row({fmt_u(k), fmt_u(mpc_r.result.weight), fmt_u(mpc_r.rounds),
               fmt_u(ampc_r.result.weight), fmt_u(ampc_r.model_rounds()),
               fmt(k * lg * std::log2(lg), 0)});
  }
  t.print();
  std::printf("\nShape check: both columns grow linearly in k; the MPC "
              "column carries the extra log n factor (Corollary 1 vs "
              "Theorem 2).\n");
  return 0;
}
