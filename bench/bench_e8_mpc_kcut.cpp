// E8 (Corollary 1): the MPC k-cut wrapper — (4+eps)-approximate Min k-Cut in
// O(k log n log log n) MPC rounds. Complements E4's AMPC table; the paper's
// point is the log n gap between the two columns at every k.
#include <cmath>

#include "ampc_algo/kcut_ampc.h"
#include "bench_util.h"
#include "graph/generators.h"
#include "mpc/gn_baseline.h"

using namespace ampccut;
using namespace ampccut::bench;

int main(int argc, char** argv) {
  const Mode mode = mode_of(argc, argv);
  const std::uint32_t threads = threads_of(argc, argv);
  BenchReporter rep("e8_mpc_kcut");
  // AMPC tracker runtimes + table pools persist across the k sweep.
  ampc::RuntimeArena arena;
  const VertexId size = mode == Mode::kFull ? 512 : 256;
  const std::uint32_t kmax =
      mode == Mode::kSmoke ? 3u : (mode == Mode::kFull ? 6u : 5u);
  std::printf("E8 / Corollary 1 — MPC k-cut rounds vs k (community graphs, "
              "n=%u)\n\n", size);
  TablePrinter t({"k", "mpc_w", "mpc_rounds", "ampc_w", "ampc_rounds",
                  "k*log2(n)*loglog"});
  for (std::uint32_t k = 2; k <= kmax; ++k) {
    const WGraph g = gen_communities(size, k, 8.0 / size, 2, 41 + k);
    mpc::MpcMinCutOptions mo;
    mo.recursion.seed = 5;
    mo.recursion.trials = 1;
    mo.recursion.threads = threads;
    mpc::MpcKCutReport mpc_r;
    const double mpc_ns =
        time_once_ns([&] { mpc_r = mpc::mpc_gn_k_cut(g, k, mo); });
    ampc::AmpcMinCutOptions ao;
    ao.recursion.seed = 5;
    ao.recursion.trials = 1;
    ao.recursion.threads = threads;
    ao.arena = &arena;
    ampc::AmpcKCutReport ampc_r;
    const double ampc_ns =
        time_once_ns([&] { ampc_r = ampc::ampc_apx_split_k_cut(g, k, ao); });
    const double lg = std::log2(static_cast<double>(g.n));
    t.add_row({fmt_u(k), fmt_u(mpc_r.result.weight), fmt_u(mpc_r.rounds),
               fmt_u(ampc_r.result.weight), fmt_u(ampc_r.model_rounds()),
               fmt(k * lg * std::log2(lg), 0)});

    BenchResult rm;
    rm.name = "mpc_gn_k_cut";
    rm.params["k"] = k;
    rm.params["n"] = g.n;
    rm.ns_per_op = mpc_ns;
    rm.iterations = 1;
    rm.measured_rounds = mpc_r.rounds;
    rm.model_rounds = mpc_r.rounds;
    rm.extra["weight"] = static_cast<double>(mpc_r.result.weight);
    rep.add(std::move(rm));

    BenchResult ra;
    ra.name = "ampc_apx_split_k_cut";
    ra.params["k"] = k;
    ra.params["n"] = g.n;
    ra.ns_per_op = ampc_ns;
    ra.iterations = 1;
    ra.measured_rounds = ampc_r.measured_rounds;
    ra.charged_rounds = ampc_r.charged_rounds;
    ra.model_rounds = ampc_r.model_rounds();
    ra.extra["weight"] = static_cast<double>(ampc_r.result.weight);
    rep.add(std::move(ra));
  }
  t.print();
  std::printf("\nShape check: both columns grow linearly in k; the MPC "
              "column carries the extra log n factor (Corollary 1 vs "
              "Theorem 2).\n");
  return finish(argc, argv, rep);
}
