// E10 — ablations of the design choices DESIGN.md calls out:
//  (a) binarized paths vs naive per-vertex splitting: the decomposition
//      height on a path graph is O(log n) with binarization and Theta(n)
//      without (one split per level), which is what makes the interval
//      machinery's level parallelism affordable;
//  (b) MSF round accounting: measured Boruvka phases vs the cited O(1/eps)
//      charge of Behnezhad et al. [4];
//  (c) eps sweep: machine memory vs rounds vs max per-machine traffic for
//      the full singleton tracker.
#include <cmath>

#include "ampc_algo/msf.h"
#include "ampc_algo/singleton_ampc.h"
#include "bench_util.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "tree/low_depth.h"

using namespace ampccut;
using namespace ampccut::bench;

int main(int argc, char** argv) {
  const bool full = has_flag(argc, argv, "--full");

  std::printf("A1a — binarized paths vs naive chain splitting (path graph)\n\n");
  TablePrinter ta({"n", "binarized_height", "naive_height(=n)", "log2(n)"});
  for (const VertexId n : {VertexId(1 << 8), VertexId(1 << 10),
                           VertexId(1 << 12)}) {
    const WGraph g = gen_path(n);
    std::vector<TimeStep> times(g.edges.size());
    for (std::size_t i = 0; i < times.size(); ++i)
      times[i] = static_cast<TimeStep>(i + 1);
    const RootedTree rt = build_rooted_tree(g.n, g.edges, times, 0);
    const HeavyLight hl = build_heavy_light(rt);
    const auto d = build_low_depth_decomposition(rt, hl);
    // Naive splitting peels one end of the chain per level: height n.
    ta.add_row({fmt_u(n), fmt_u(d.height), fmt_u(n),
                fmt(std::log2(static_cast<double>(n)), 1)});
  }
  ta.print();

  std::printf("\nA1b — MSF rounds: measured Boruvka vs cited O(1/eps)\n\n");
  TablePrinter tb({"n", "m", "boruvka_measured", "cited_charge", "log2(n)"});
  std::vector<VertexId> sizes{512, 2048, 8192};
  if (full) sizes.push_back(32768);
  for (const VertexId n : sizes) {
    const WGraph g = gen_random_connected(n, 3ull * n, 7 + n);
    const ContractionOrder o = make_contraction_order(g, 3);
    ampc::Runtime rt1(ampc::Config::for_problem(n + g.m(), 0.5));
    (void)ampc::ampc_msf_boruvka(rt1, g, o);
    ampc::Runtime rt2(ampc::Config::for_problem(n + g.m(), 0.5));
    (void)ampc::ampc_msf_cited(rt2, g, o);
    tb.add_row({fmt_u(n), fmt_u(g.m()), fmt_u(rt1.metrics().rounds),
                fmt_u(rt2.metrics().charged_rounds),
                fmt(std::log2(static_cast<double>(n)), 1)});
  }
  tb.print();

  std::printf("\nA1c — eps sweep on the singleton tracker (n=1024, m=4096)\n\n");
  TablePrinter tc({"eps", "machine_words", "rounds(meas+cited)",
                   "max_machine_traffic", "budget_violations"});
  const WGraph g = gen_random_connected(1024, 4096, 9);
  const ContractionOrder o = make_contraction_order(g, 2);
  for (const double eps : {0.3, 0.5, 0.7, 0.9}) {
    ampc::Runtime rt(ampc::Config::for_problem(g.n + g.m(), eps));
    (void)ampc::ampc_min_singleton_cut(rt, g, o);
    tc.add_row({fmt(eps, 1), fmt_u(rt.config().machine_memory_words),
                fmt_u(rt.metrics().rounds) + "+" +
                    fmt_u(rt.metrics().charged_rounds),
                fmt_u(rt.metrics().max_machine_traffic),
                fmt_u(rt.metrics().budget_violations.load())});
  }
  tc.print();
  std::printf("\nShape check: (a) log vs linear height; (b) Boruvka's "
              "measured phases grow with log n — the cited charge is what "
              "the paper's bound relies on; (c) larger eps => more machine "
              "memory => fewer rounds.\n");
  return 0;
}
