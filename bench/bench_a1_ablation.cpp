// E10 — ablations of the design choices DESIGN.md calls out:
//  (a) binarized paths vs naive per-vertex splitting: the decomposition
//      height on a path graph is O(log n) with binarization and Theta(n)
//      without (one split per level), which is what makes the interval
//      machinery's level parallelism affordable;
//  (b) MSF round accounting: measured Boruvka phases vs the cited O(1/eps)
//      charge of Behnezhad et al. [4];
//  (c) eps sweep: machine memory vs rounds vs max per-machine traffic for
//      the full singleton tracker.
#include <cmath>

#include "ampc_algo/msf.h"
#include "ampc_algo/singleton_ampc.h"
#include "bench_util.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "tree/low_depth.h"

using namespace ampccut;
using namespace ampccut::bench;

int main(int argc, char** argv) {
  const Mode mode = mode_of(argc, argv);
  BenchReporter rep("a1_ablation");

  std::printf("A1a — binarized paths vs naive chain splitting (path graph)\n\n");
  TablePrinter ta({"n", "binarized_height", "naive_height(=n)", "log2(n)"});
  for (const VertexId n : {VertexId(1 << 8), VertexId(1 << 10),
                           VertexId(1 << 12)}) {
    const WGraph g = gen_path(n);
    std::vector<TimeStep> times(g.edges.size());
    for (std::size_t i = 0; i < times.size(); ++i)
      times[i] = static_cast<TimeStep>(i + 1);
    const RootedTree rt = build_rooted_tree(g.n, g.edges, times, 0);
    const HeavyLight hl = build_heavy_light(rt);
    const auto d = build_low_depth_decomposition(rt, hl);
    // Naive splitting peels one end of the chain per level: height n.
    ta.add_row({fmt_u(n), fmt_u(d.height), fmt_u(n),
                fmt(std::log2(static_cast<double>(n)), 1)});

    BenchResult r;
    r.name = "binarized_height_path";
    r.group = "exact";
    r.params["n"] = n;
    r.iterations = 1;
    r.extra["binarized_height"] = static_cast<double>(d.height);
    r.extra["naive_height"] = static_cast<double>(n);
    rep.add(std::move(r));
  }
  ta.print();

  std::printf("\nA1b — MSF rounds: measured Boruvka vs cited O(1/eps)\n\n");
  TablePrinter tb({"n", "m", "boruvka_measured", "cited_charge", "log2(n)"});
  std::vector<VertexId> sizes{512, 2048, 8192};
  if (mode == Mode::kSmoke) sizes = {512, 2048};
  if (mode == Mode::kFull) sizes.push_back(32768);
  for (const VertexId n : sizes) {
    const WGraph g = gen_random_connected(n, 3ull * n, 7 + n);
    const ContractionOrder o = make_contraction_order(g, 3);
    ampc::Runtime rt1(ampc::Config::for_problem(n + g.m(), 0.5));
    const double boruvka_ns =
        time_once_ns([&] { (void)ampc::ampc_msf_boruvka(rt1, g, o); });
    ampc::Runtime rt2(ampc::Config::for_problem(n + g.m(), 0.5));
    const double cited_ns =
        time_once_ns([&] { (void)ampc::ampc_msf_cited(rt2, g, o); });
    tb.add_row({fmt_u(n), fmt_u(g.m()), fmt_u(rt1.metrics().rounds),
                fmt_u(rt2.metrics().charged_rounds),
                fmt(std::log2(static_cast<double>(n)), 1)});

    BenchResult rb;
    rb.name = "msf_boruvka";
    rb.params["n"] = n;
    rb.params["m"] = static_cast<std::int64_t>(g.m());
    rb.ns_per_op = boruvka_ns;
    rb.iterations = 1;
    fill_model_metrics(rb, rt1.metrics());
    rep.add(std::move(rb));

    BenchResult rc;
    rc.name = "msf_cited";
    rc.params["n"] = n;
    rc.params["m"] = static_cast<std::int64_t>(g.m());
    rc.ns_per_op = cited_ns;
    rc.iterations = 1;
    fill_model_metrics(rc, rt2.metrics());
    rep.add(std::move(rc));
  }
  tb.print();

  std::printf("\nA1c — eps sweep on the singleton tracker (n=1024, m=4096)\n\n");
  TablePrinter tc({"eps", "machine_words", "rounds(meas+cited)",
                   "max_machine_traffic", "budget_violations"});
  const WGraph g = gen_random_connected(1024, 4096, 9);
  const ContractionOrder o = make_contraction_order(g, 2);
  for (const double eps : {0.3, 0.5, 0.7, 0.9}) {
    ampc::Runtime rt(ampc::Config::for_problem(g.n + g.m(), eps));
    const double ns =
        time_once_ns([&] { (void)ampc::ampc_min_singleton_cut(rt, g, o); });
    tc.add_row({fmt(eps, 1), fmt_u(rt.config().machine_memory_words),
                fmt_u(rt.metrics().rounds) + "+" +
                    fmt_u(rt.metrics().charged_rounds),
                fmt_u(rt.metrics().max_machine_traffic),
                fmt_u(rt.metrics().budget_violations.load())});

    BenchResult r;
    r.name = "singleton_eps_sweep";
    r.params["n"] = g.n;
    r.params["eps_x10"] = static_cast<std::int64_t>(eps * 10 + 0.5);
    r.ns_per_op = ns;
    r.iterations = 1;
    fill_model_metrics(r, rt.metrics());
    r.extra["machine_memory_words"] =
        static_cast<double>(rt.config().machine_memory_words);
    rep.add(std::move(r));
  }
  tc.print();
  std::printf("\nShape check: (a) log vs linear height; (b) Boruvka's "
              "measured phases grow with log n — the cited charge is what "
              "the paper's bound relies on; (c) larger eps => more machine "
              "memory => fewer rounds.\n");
  return finish(argc, argv, rep);
}
