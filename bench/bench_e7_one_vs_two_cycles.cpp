// E7 (Section 1 motivation): the 1-vs-2-Cycle regime. MPC needs Theta(log n)
// rounds of pointer doubling to decide one cycle vs two; AMPC's adaptive
// walks finish in O(1/eps) rounds regardless of n — the gap that motivates
// the entire model.
#include <cmath>
#include <set>

#include "ampc_algo/tree_ops.h"
#include "bench_util.h"
#include "graph/generators.h"
#include "mpc/primitives.h"

using namespace ampccut;
using namespace ampccut::bench;

namespace {

template <class Labels>
int components_of(const Labels& label) {
  std::set<std::uint64_t> uniq(label.begin(), label.end());
  return static_cast<int>(uniq.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = has_flag(argc, argv, "--full");
  std::printf("E7 — 1-vs-2 cycles: connectivity rounds, AMPC vs MPC\n\n");
  TablePrinter t({"n", "graph", "ampc_rounds", "mpc_rounds", "log2(n)",
                  "components"});
  std::vector<VertexId> sizes{1 << 8, 1 << 10, 1 << 12};
  if (full) sizes.push_back(1 << 14);
  for (const VertexId n : sizes) {
    for (const bool two : {false, true}) {
      const WGraph g = two ? gen_two_cycles(n) : gen_cycle(n);
      ampc::Runtime art(ampc::Config::for_problem(n, 0.5));
      const auto alabel = ampc::ampc_components(art, g);
      mpc::Runtime mrt(mpc::Config{}, 32);
      const auto mlabel = mpc::mpc_components(mrt, g);
      REPRO_CHECK(components_of(alabel) == components_of(mlabel));
      t.add_row({fmt_u(n), two ? "two cycles" : "one cycle",
                 fmt_u(art.metrics().rounds), fmt_u(mrt.metrics().rounds),
                 fmt(std::log2(static_cast<double>(n)), 1),
                 fmt_u(components_of(alabel))});
    }
  }
  t.print();
  std::printf("\nShape check: ampc_rounds flat in n; mpc_rounds grows with "
              "log2(n) (the 1-vs-2-Cycle conjecture's lower bound in "
              "action).\n");
  return 0;
}
