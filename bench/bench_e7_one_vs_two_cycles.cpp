// E7 (Section 1 motivation): the 1-vs-2-Cycle regime. MPC needs Theta(log n)
// rounds of pointer doubling to decide one cycle vs two; AMPC's adaptive
// walks finish in O(1/eps) rounds regardless of n — the gap that motivates
// the entire model.
#include <cmath>
#include <set>

#include "ampc_algo/tree_ops.h"
#include "bench_util.h"
#include "graph/generators.h"
#include "mpc/primitives.h"

using namespace ampccut;
using namespace ampccut::bench;

namespace {

template <class Labels>
int components_of(const Labels& label) {
  std::set<std::uint64_t> uniq(label.begin(), label.end());
  return static_cast<int>(uniq.size());
}

}  // namespace

int main(int argc, char** argv) {
  const Mode mode = mode_of(argc, argv);
  BenchReporter rep("e7_one_vs_two_cycles");
  std::printf("E7 — 1-vs-2 cycles: connectivity rounds, AMPC vs MPC\n\n");
  TablePrinter t({"n", "graph", "ampc_rounds", "mpc_rounds", "log2(n)",
                  "components"});
  std::vector<VertexId> sizes{1 << 8, 1 << 10, 1 << 12};
  if (mode == Mode::kSmoke) sizes = {1 << 8, 1 << 10};
  if (mode == Mode::kFull) sizes.push_back(1 << 14);
  for (const VertexId n : sizes) {
    for (const bool two : {false, true}) {
      const WGraph g = two ? gen_two_cycles(n) : gen_cycle(n);
      ampc::Runtime art(ampc::Config::for_problem(n, 0.5));
      std::vector<VertexId> alabel;
      const double ampc_ns =
          time_once_ns([&] { alabel = ampc::ampc_components(art, g); });
      mpc::Runtime mrt(mpc::Config{}, 32);
      std::vector<VertexId> mlabel;
      const double mpc_ns =
          time_once_ns([&] { mlabel = mpc::mpc_components(mrt, g); });
      REPRO_CHECK(components_of(alabel) == components_of(mlabel));
      t.add_row({fmt_u(n), two ? "two cycles" : "one cycle",
                 fmt_u(art.metrics().rounds), fmt_u(mrt.metrics().rounds),
                 fmt(std::log2(static_cast<double>(n)), 1),
                 fmt_u(components_of(alabel))});

      BenchResult ra;
      ra.name = two ? "ampc_components_two_cycles" : "ampc_components_cycle";
      ra.params["n"] = n;
      ra.ns_per_op = ampc_ns;
      ra.iterations = 1;
      fill_model_metrics(ra, art.metrics());
      rep.add(std::move(ra));

      BenchResult rm;
      rm.name = two ? "mpc_components_two_cycles" : "mpc_components_cycle";
      rm.params["n"] = n;
      rm.ns_per_op = mpc_ns;
      rm.iterations = 1;
      fill_model_metrics(rm, mrt.metrics());
      rep.add(std::move(rm));
    }
  }
  t.print();
  std::printf("\nShape check: ampc_rounds flat in n; mpc_rounds grows with "
              "log2(n) (the 1-vs-2-Cycle conjecture's lower bound in "
              "action).\n");
  return finish(argc, argv, rep);
}
