// E4 (Theorem 2): APX-SPLIT — (4+eps)-approximate Min k-Cut in
// O(k log log n) AMPC rounds. Sweeps k on community graphs; quality against
// exact brute force (small n) and the Gomory–Hu (2-2/k) baseline; rounds
// against the k * loglog n reference.
#include <cmath>

#include "ampc_algo/kcut_ampc.h"
#include "bench_util.h"
#include "exact/brute_force.h"
#include "flow/gomory_hu.h"
#include "graph/generators.h"
#include "kernel/kernel.h"

using namespace ampccut;
using namespace ampccut::bench;

int main(int argc, char** argv) {
  const Mode mode = mode_of(argc, argv);
  const std::uint32_t threads = threads_of(argc, argv);
  // Round execution strategy, forwarded by tools/run_benches. Bit-identical
  // results and model metrics across transports; only wall time may move.
  const transport::TransportKind transport_kind = transport_of(argc, argv);
  const std::uint32_t num_processes = procs_of(argc, argv);
  BenchReporter rep("e4_kcut");
  // Shared across every solve of the sweep: tracker runtimes and their table
  // pools persist between k values (results/metrics unaffected — DESIGN.md
  // "Table and runtime pooling").
  ampc::RuntimeArena arena;

  std::printf("E4a / Theorem 2 — quality vs exact k-cut (n=10 ER graphs, 3 "
              "seeds averaged)\n\n");
  TablePrinter ta({"k", "avg_ratio_exact", "max_ratio", "bound(4+eps)"});
  const std::uint32_t quality_kmax = mode == Mode::kSmoke ? 3u : 5u;
  for (std::uint32_t k = 2; k <= quality_kmax; ++k) {
    double sum = 0, worst = 0;
    const int seeds = 3;
    for (int s = 0; s < seeds; ++s) {
      const WGraph g = gen_erdos_renyi(10, 0.5, 77 + s);
      ampc::AmpcMinCutOptions o;
      o.recursion.seed = s;
      o.recursion.trials = 2;
      o.recursion.threads = threads;
    o.transport = transport_kind;
    o.num_processes = num_processes;
      o.transport = transport_kind;
      o.num_processes = num_processes;
      o.arena = &arena;
      const auto got = ampc::ampc_apx_split_k_cut(g, k, o);
      const auto exact = brute_force_min_k_cut(g, k);
      const double ratio = static_cast<double>(got.result.weight) /
                           static_cast<double>(std::max<Weight>(1, exact.weight));
      sum += ratio;
      worst = std::max(worst, ratio);
    }
    ta.add_row({fmt_u(k), fmt(sum / seeds), fmt(worst), "4.9"});

    BenchResult r;
    r.name = "apx_split_quality";
    r.group = "exact";  // tiny instances; only the ratio matters here
    r.params["k"] = k;
    r.params["n"] = 10;
    r.iterations = seeds;
    r.extra["avg_ratio_exact"] = sum / seeds;
    r.extra["max_ratio"] = worst;
    rep.add(std::move(r));
  }
  ta.print();

  std::printf("\nE4b — rounds vs k (community graphs, bridges are the "
              "optimal cuts)\n\n");
  TablePrinter tb({"k", "n", "kcut_w", "gh_baseline_w", "rounds(meas+cited)",
                   "k*loglog(n)"});
  const VertexId size = mode == Mode::kFull ? 1024 : 512;
  const std::uint32_t kmax =
      mode == Mode::kSmoke ? 3u : (mode == Mode::kFull ? 8u : 6u);
  for (std::uint32_t k = 2; k <= kmax; ++k) {
    const WGraph g = gen_communities(size, k, 8.0 / size, 2, 31 + k);
    ampc::AmpcMinCutOptions o;
    o.recursion.seed = 5;
    o.recursion.trials = 1;
    o.recursion.threads = threads;
    o.transport = transport_kind;
    o.num_processes = num_processes;
    o.arena = &arena;
    ampc::AmpcKCutReport got;
    const double ns =
        time_once_ns([&] { got = ampc::ampc_apx_split_k_cut(g, k, o); });
    const auto gh = gomory_hu_k_cut(g, k);
    const double ll = std::log2(std::log2(static_cast<double>(g.n)));
    tb.add_row({fmt_u(k), fmt_u(g.n), fmt_u(got.result.weight),
                fmt_u(gh.weight),
                fmt_u(got.measured_rounds) + "+" + fmt_u(got.charged_rounds),
                fmt(k * ll, 1)});

    BenchResult r;
    r.name = "ampc_apx_split_k_cut";
    r.params["k"] = k;
    r.params["n"] = g.n;
    r.ns_per_op = ns;
    r.iterations = 1;
    r.measured_rounds = got.measured_rounds;
    r.charged_rounds = got.charged_rounds;
    r.model_rounds = got.model_rounds();
    r.extra["weight"] = static_cast<double>(got.result.weight);
    r.extra["gomory_hu_weight"] = static_cast<double>(gh.weight);
    rep.add(std::move(r));
  }
  tb.print();

  // E4k — kernelized APX-SPLIT on SPARSE community graphs (avg in-community
  // degree ~3): every split's exact/recursive solve runs on the kernel of
  // its component, compounding the reduction across the k-1 splits. The
  // kernel is exact, so the kernelized sweep must report the same k-cut
  // weight; divergence aborts the bench.
  std::printf("\nE4k — kernelized APX-SPLIT (sparse communities, kernel off "
              "vs on)\n\n");
  TablePrinter tc({"k", "n", "kernel_n", "kernel_m", "w", "ms_off", "ms_on",
                   "speedup"});
  const VertexId kern_n = mode == Mode::kFull ? 2048 : 512;
  const std::uint32_t kern_kmax = mode == Mode::kSmoke ? 3u : 4u;
  for (std::uint32_t k = 2; k <= kern_kmax; ++k) {
    const WGraph g =
        gen_communities(kern_n, k, 1.0 * k / kern_n, 2, 91 + k);
    ampc::AmpcMinCutOptions o;
    o.recursion.seed = 5;
    o.recursion.trials = 1;
    o.recursion.threads = threads;
    o.transport = transport_kind;
    o.num_processes = num_processes;
    o.arena = &arena;
    ampc::AmpcKCutReport off;
    const double ns_off =
        time_once_ns([&] { off = ampc::ampc_apx_split_k_cut(g, k, o); });
    o.recursion.kernel = kernel::enabled_defaults();
    ampc::AmpcKCutReport on;
    const double ns_on =
        time_once_ns([&] { on = ampc::ampc_apx_split_k_cut(g, k, o); });
    if (on.result.weight != off.result.weight) {
      std::printf("FATAL: kernelized k-cut weight %llu != unkernelized %llu "
                  "at k=%u\n",
                  static_cast<unsigned long long>(on.result.weight),
                  static_cast<unsigned long long>(off.result.weight), k);
      return 1;
    }

    const kernel::KernelResult kk =
        kernel::kernelize(g, kernel::enabled_defaults());
    const double speedup = ns_off / std::max(1.0, ns_on);
    tc.add_row({fmt_u(k), fmt_u(g.n), fmt_u(kk.stats.kernel_n),
                fmt_u(kk.stats.kernel_m), fmt_u(on.result.weight),
                fmt(ns_off / 1e6, 1), fmt(ns_on / 1e6, 1), fmt(speedup)});

    BenchResult r;
    r.name = "ampc_apx_split_k_cut_kernelized";
    r.params["k"] = k;
    r.params["n"] = g.n;
    r.ns_per_op = ns_on;
    r.iterations = 1;
    r.measured_rounds = on.measured_rounds;
    r.charged_rounds = on.charged_rounds;
    r.model_rounds = on.model_rounds();
    r.extra["weight"] = static_cast<double>(on.result.weight);
    r.extra["kernel_n"] = static_cast<double>(kk.stats.kernel_n);
    r.extra["kernel_m"] = static_cast<double>(kk.stats.kernel_m);
    r.extra["n_reduction_ratio"] =
        static_cast<double>(kk.stats.kernel_n) / static_cast<double>(g.n);
    r.extra["m_reduction_ratio"] =
        static_cast<double>(kk.stats.kernel_m) / static_cast<double>(g.m());
    r.extra["ns_base"] = ns_off;
    r.extra["speedup_vs_unkernelized"] = speedup;
    rep.add(std::move(r));
  }
  tc.print();
  std::printf("\nShape check: ratios <= 4+eps (usually ~1); rounds grow "
              "linearly in k (Theorem 2's O(k loglog n)).\nE4k: the kernel "
              "shrinks sparse communities and the kernelized sweep reports "
              "the identical weight.\n");
  return finish(argc, argv, rep);
}
