// E4 (Theorem 2): APX-SPLIT — (4+eps)-approximate Min k-Cut in
// O(k log log n) AMPC rounds. Sweeps k on community graphs; quality against
// exact brute force (small n) and the Gomory–Hu (2-2/k) baseline; rounds
// against the k * loglog n reference.
#include <cmath>

#include "ampc_algo/kcut_ampc.h"
#include "bench_util.h"
#include "exact/brute_force.h"
#include "flow/gomory_hu.h"
#include "graph/generators.h"

using namespace ampccut;
using namespace ampccut::bench;

int main(int argc, char** argv) {
  const bool full = has_flag(argc, argv, "--full");

  std::printf("E4a / Theorem 2 — quality vs exact k-cut (n=10 ER graphs, 3 "
              "seeds averaged)\n\n");
  TablePrinter ta({"k", "avg_ratio_exact", "max_ratio", "bound(4+eps)"});
  for (std::uint32_t k = 2; k <= 5; ++k) {
    double sum = 0, worst = 0;
    const int seeds = 3;
    for (int s = 0; s < seeds; ++s) {
      const WGraph g = gen_erdos_renyi(10, 0.5, 77 + s);
      ampc::AmpcMinCutOptions o;
      o.recursion.seed = s;
      o.recursion.trials = 2;
      const auto got = ampc::ampc_apx_split_k_cut(g, k, o);
      const auto exact = brute_force_min_k_cut(g, k);
      const double ratio = static_cast<double>(got.result.weight) /
                           static_cast<double>(std::max<Weight>(1, exact.weight));
      sum += ratio;
      worst = std::max(worst, ratio);
    }
    ta.add_row({fmt_u(k), fmt(sum / seeds), fmt(worst), "4.9"});
  }
  ta.print();

  std::printf("\nE4b — rounds vs k (community graphs, bridges are the "
              "optimal cuts)\n\n");
  TablePrinter tb({"k", "n", "kcut_w", "gh_baseline_w", "rounds(meas+cited)",
                   "k*loglog(n)"});
  const VertexId size = full ? 1024 : 512;
  for (std::uint32_t k = 2; k <= (full ? 8u : 6u); ++k) {
    const WGraph g = gen_communities(size, k, 8.0 / size, 2, 31 + k);
    ampc::AmpcMinCutOptions o;
    o.recursion.seed = 5;
    o.recursion.trials = 1;
    const auto got = ampc::ampc_apx_split_k_cut(g, k, o);
    const auto gh = gomory_hu_k_cut(g, k);
    const double ll = std::log2(std::log2(static_cast<double>(g.n)));
    tb.add_row({fmt_u(k), fmt_u(g.n), fmt_u(got.result.weight),
                fmt_u(gh.weight),
                fmt_u(got.measured_rounds) + "+" + fmt_u(got.charged_rounds),
                fmt(k * ll, 1)});
  }
  tb.print();
  std::printf("\nShape check: ratios <= 4+eps (usually ~1); rounds grow "
              "linearly in k (Theorem 2's O(k loglog n)).\n");
  return 0;
}
