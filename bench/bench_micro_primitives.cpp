// E11 — wall-clock microbenches of the primitive layer, on the repo's own
// timing harness (bench_util.h) so the suite always builds and always feeds
// the BENCH_*.json trajectory (the old google-benchmark dependency made the
// suite optional and its JSON schema foreign).
//
// Two groups, routed into separate trajectory files by tools/run_benches:
//  * "ampc"  — simulator hot paths. The table_put_commit / dense_put_commit
//    pair is THE write-path benchmark: one round staging n puts across the
//    machines of Config::for_problem(n, 0.5) plus the barrier commit, in
//    steady state (keys overwrite, no map growth after warmup).
//  * "exact" — the sequential engines a downstream user runs first.
#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "ampc_algo/list_ranking.h"
#include "ampc_algo/prefix_min.h"
#include "bench_util.h"
#include "exact/karger.h"
#include "exact/stoer_wagner.h"
#include "graph/generators.h"
#include "kernel/kernel.h"
#include "mincut/singleton.h"
#include "support/psort.h"
#include "support/rng.h"
#include "support/threadpool.h"
#include "tree/hld.h"

using namespace ampccut;
using namespace ampccut::bench;

namespace {

struct Harness {
  TimingOptions topt;
  BenchReporter reporter{"micro_primitives"};
  TablePrinter table{{"bench", "group", "n", "ns/op", "Mop/s", "model_rounds",
                      "dht_write_words"}};

  void record(BenchResult r, std::uint64_t n) {
    r.params["n"] = static_cast<std::int64_t>(n);
    table.add_row({r.name, r.group, fmt_u(n), fmt(r.ns_per_op, 1),
                   fmt(1e3 / std::max(1e-9, r.ns_per_op)), fmt_u(r.model_rounds),
                   fmt_u(r.dht_write_words)});
    reporter.add(std::move(r));
  }
};

// One round of n staged puts (distinct keys, machine-partitioned) plus the
// barrier commit. Steady state: every timed round overwrites the same keys.
void bench_table_put_commit(Harness& h, std::uint64_t n) {
  ampc::Runtime rt(ampc::Config::for_problem(n, 0.5));
  ampc::Table<std::uint64_t, std::uint64_t> t(rt, "bench.table");
  std::uint64_t salt = 0;
  const auto body = [&] {
    ++salt;
    rt.round_over_items("bench.put", n,
                        [&](ampc::MachineContext&, std::uint64_t i) {
                          t.put(i, i + salt);
                        });
  };
  BenchResult r;
  r.name = "table_put_commit";
  const Timed timed = run_timed(n, h.topt, body);
  r.ns_per_op = timed.ns_per_op;
  r.iterations = timed.iterations;
  // Model costs of one round, from a fresh instrumented runtime.
  ampc::Runtime mrt(ampc::Config::for_problem(n, 0.5));
  ampc::Table<std::uint64_t, std::uint64_t> mt(mrt, "bench.table");
  mrt.round_over_items("bench.put", n,
                       [&](ampc::MachineContext&, std::uint64_t i) {
                         mt.put(i, i);
                       });
  fill_model_metrics(r, mrt.metrics());
  h.record(std::move(r), n);
}

void bench_dense_put_commit(Harness& h, std::uint64_t n) {
  ampc::Runtime rt(ampc::Config::for_problem(n, 0.5));
  ampc::DenseTable<std::uint64_t> t(rt, "bench.dense", n);
  std::uint64_t salt = 0;
  const auto body = [&] {
    ++salt;
    rt.round_over_items("bench.put", n,
                        [&](ampc::MachineContext&, std::uint64_t i) {
                          t.put(i, i + salt);
                        });
  };
  BenchResult r;
  r.name = "dense_put_commit";
  const Timed timed = run_timed(n, h.topt, body);
  r.ns_per_op = timed.ns_per_op;
  r.iterations = timed.iterations;
  ampc::Runtime mrt(ampc::Config::for_problem(n, 0.5));
  ampc::DenseTable<std::uint64_t> mt(mrt, "bench.dense", n);
  mrt.round_over_items("bench.put", n,
                       [&](ampc::MachineContext&, std::uint64_t i) {
                         mt.put(i, i);
                       });
  fill_model_metrics(r, mrt.metrics());
  h.record(std::move(r), n);
}

// Transport-seam overhead (DESIGN.md "Transport layer & multi-process
// execution"): the dense_put_commit round executed by the shm transport —
// fork workers, encode staged writes as kPutBatch frames, drain the rings,
// reconstruct staging, commit — against the local transport's direct path.
// ns_per_op is the SHM round; extra carries the local baseline, the
// fork+wire overhead ratio, and one round's wire traffic
// (wire_bytes_sent/flush_batches). Model metrics come from a local run —
// the transport invariant keeps them identical, so the trajectory's
// non-timing fields stay transport-free.
void bench_transport_put_commit(Harness& h, std::uint64_t n,
                                std::uint32_t procs) {
  constexpr std::uint64_t kMachines = 8;
  const std::uint64_t per = n / kMachines;
  const auto round_body = [per](ampc::Runtime& rt,
                                ampc::DenseTable<std::uint64_t>& t,
                                std::uint64_t salt) {
    rt.round("bench.transport", kMachines, [&](ampc::MachineContext& ctx) {
      const std::uint64_t base = ctx.machine_id() * per;
      for (std::uint64_t i = 0; i < per; ++i) t.put(base + i, base + i + salt);
    });
  };
  ampc::Runtime local_rt(ampc::Config::for_problem(n, 0.5));
  ampc::DenseTable<std::uint64_t> local_t(local_rt, "bench.transport", n);
  std::uint64_t salt = 0;
  const Timed local = run_timed(n, h.topt, [&] {
    round_body(local_rt, local_t, ++salt);
  });

  ampc::Config scfg = ampc::Config::for_problem(n, 0.5);
  scfg.transport = transport::TransportKind::kShm;
  scfg.num_processes = procs;
  ampc::Runtime shm_rt(scfg);
  ampc::DenseTable<std::uint64_t> shm_t(shm_rt, "bench.transport", n);
  salt = 0;
  const std::uint64_t wire_before = shm_rt.metrics().wire_bytes_sent;
  const std::uint64_t batches_before = shm_rt.metrics().flush_batches;
  std::uint64_t shm_rounds = 0;
  const Timed shm = run_timed(n, h.topt, [&] {
    round_body(shm_rt, shm_t, ++salt);
    ++shm_rounds;
  });

  BenchResult r;
  r.name = "transport_put_commit";
  r.ns_per_op = shm.ns_per_op;
  r.iterations = shm.iterations;
  r.params["procs"] = static_cast<std::int64_t>(procs);
  r.extra["local_ns_per_op"] = local.ns_per_op;
  r.extra["shm_overhead_ratio"] =
      shm.ns_per_op / std::max(1e-9, local.ns_per_op);
  // Per-round wire traffic, exact: total bytes moved over the rings divided
  // by rounds executed while timed.
  r.extra["wire_bytes_sent"] = static_cast<double>(
      (shm_rt.metrics().wire_bytes_sent - wire_before) /
      std::max<std::uint64_t>(1, shm_rounds));
  r.extra["flush_batches"] = static_cast<double>(
      (shm_rt.metrics().flush_batches - batches_before) /
      std::max<std::uint64_t>(1, shm_rounds));
  ampc::Runtime mrt(ampc::Config::for_problem(n, 0.5));
  ampc::DenseTable<std::uint64_t> mt(mrt, "bench.transport", n);
  round_body(mrt, mt, 1);
  fill_model_metrics(r, mrt.metrics());
  h.record(std::move(r), n);
}

// Adaptive reads of committed keys (the frozen-read fast path). The lookup
// cannot be elided — get() counts words into the machine context — and the
// miss check consumes the value without a shared accumulator (machines run
// concurrently; a shared sink would race).
void bench_table_get(Harness& h, std::uint64_t n) {
  ampc::Runtime rt(ampc::Config::for_problem(n, 0.5));
  ampc::Table<std::uint64_t, std::uint64_t> t(rt, "bench.table");
  for (std::uint64_t i = 0; i < n; ++i) t.seed(i, i * 3);
  const auto body = [&] {
    rt.round_over_items("bench.get", n,
                        [&](ampc::MachineContext&, std::uint64_t i) {
                          if (!t.get((i * 0x9e3779b9ull) % n)) std::abort();
                        });
  };
  BenchResult r;
  r.name = "table_get";
  const Timed timed = run_timed(n, h.topt, body);
  r.ns_per_op = timed.ns_per_op;
  r.iterations = timed.iterations;
  ampc::Runtime mrt(ampc::Config::for_problem(n, 0.5));
  ampc::Table<std::uint64_t, std::uint64_t> mt(mrt, "bench.table");
  for (std::uint64_t i = 0; i < n; ++i) mt.seed(i, i * 3);
  mrt.round_over_items("bench.get", n,
                       [&](ampc::MachineContext&, std::uint64_t i) {
                         if (!mt.get(i % n)) std::abort();
                       });
  fill_model_metrics(r, mrt.metrics());
  h.record(std::move(r), n);
}

// The fixed-cost path the table pool exists for (ISSUE: per-round simulator
// fixed costs on small components): one op is a full table lifecycle —
// construct/lease, seed one entry, stage one put, commit, destroy/release.
// ns_per_op is the POOLED lease-reset cycle; extra carries the fresh
// construct/destroy cycle and the resulting speedup, so the trajectory
// catches regressions in either path.
void bench_table_lease_reuse(Harness& h, std::uint64_t n) {
  constexpr std::uint64_t kCycles = 64;
  ampc::Runtime rt(ampc::Config::for_problem(n, 0.5));
  const auto cycle_dense = [&](auto&& make) {
    for (std::uint64_t c = 0; c < kCycles; ++c) {
      auto&& t = make();
      t->seed(0, 7);
      rt.round("lease.bench", 1, [&](ampc::MachineContext&) { t->put(1, 9); });
    }
  };
  const Timed fresh = run_timed(kCycles, h.topt, [&] {
    cycle_dense([&] {
      // Owning wrapper so fresh and pooled cycles share the loop body.
      struct Fresh {
        ampc::DenseTable<std::uint64_t> t;
        ampc::DenseTable<std::uint64_t>* operator->() { return &t; }
      };
      return Fresh{{rt, "bench.fresh", n, 0}};
    });
  });
  const Timed pooled = run_timed(kCycles, h.topt, [&] {
    cycle_dense([&] { return rt.lease_dense<std::uint64_t>("bench.lease", n, 0); });
  });
  BenchResult r;
  r.name = "table_lease_reuse";
  r.ns_per_op = pooled.ns_per_op;
  r.iterations = pooled.iterations;
  r.extra["fresh_ns_per_op"] = fresh.ns_per_op;
  r.extra["reuse_speedup"] = fresh.ns_per_op / std::max(1e-9, pooled.ns_per_op);
  h.record(std::move(r), n);
}

// Recovery-overhead pricing (DESIGN.md "Fault injection & round-level
// recovery"): one op is a full round staging n/8 puts per machine across 8
// machines plus the barrier commit, normalized per put. ns_per_op is the
// 5%-crash-rate run (discard + replay on every injected failure, fixed
// seed); extra carries the fault-free ns/op and retry_overhead_ratio =
// faulted/clean, the trajectory's headline number for what recovery costs
// when the failure path actually executes. 8 machines at 5% gives ~34% of
// rounds at least one crash (expected attempts ~1.5), so the ratio prices
// real replays, not an idle injector.
void bench_fault_recovery(Harness& h, std::uint64_t n) {
  constexpr std::uint64_t kMachines = 8;
  const std::uint64_t per = n / kMachines;
  const auto round_body = [per](ampc::Runtime& rt,
                                ampc::DenseTable<std::uint64_t>& t,
                                std::uint64_t salt) {
    rt.round("bench.fault", kMachines, [&](ampc::MachineContext& ctx) {
      const std::uint64_t base = ctx.machine_id() * per;
      for (std::uint64_t i = 0; i < per; ++i) t.put(base + i, base + i + salt);
    });
  };
  ampc::Runtime clean_rt(ampc::Config::for_problem(n, 0.5));
  ampc::DenseTable<std::uint64_t> clean_t(clean_rt, "bench.fault", n);
  std::uint64_t salt = 0;
  const Timed clean = run_timed(n, h.topt, [&] {
    round_body(clean_rt, clean_t, ++salt);
  });

  ampc::Config fcfg = ampc::Config::for_problem(n, 0.5);
  fcfg.fault.seed = 31;
  fcfg.fault.crash_rate = 0.05;
  fcfg.retry.max_attempts = 20;  // 0.34^20: exhaustion never trips the timer
  ampc::Runtime fault_rt(fcfg);
  ampc::DenseTable<std::uint64_t> fault_t(fault_rt, "bench.fault", n);
  salt = 0;
  const Timed faulted = run_timed(n, h.topt, [&] {
    round_body(fault_rt, fault_t, ++salt);
  });

  BenchResult r;
  r.name = "fault_recovery";
  r.ns_per_op = faulted.ns_per_op;
  r.iterations = faulted.iterations;
  r.extra["clean_ns_per_op"] = clean.ns_per_op;
  r.extra["retry_overhead_ratio"] =
      faulted.ns_per_op / std::max(1e-9, clean.ns_per_op);
  // Model costs of one fault-free round (the contract: recovery never
  // changes them), from a fresh instrumented runtime.
  ampc::Runtime mrt(ampc::Config::for_problem(n, 0.5));
  ampc::DenseTable<std::uint64_t> mt(mrt, "bench.fault", n);
  round_body(mrt, mt, 1);
  fill_model_metrics(r, mrt.metrics());
  h.record(std::move(r), n);
}

void bench_list_rank(Harness& h, std::uint64_t n) {
  std::vector<std::uint64_t> next(n, ampc::kNoNext);
  std::vector<std::uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(1);
  std::shuffle(order.begin(), order.end(), rng);
  for (std::uint64_t k = 0; k + 1 < n; ++k) next[order[k]] = order[k + 1];
  const std::vector<std::int64_t> ones(n, 1);
  BenchResult r;
  r.name = "list_rank";
  const Timed timed = run_timed(n, h.topt, [&] {
    ampc::Runtime rt(ampc::Config::for_problem(n, 0.5));
    (void)ampc::list_rank(rt, next, ones);
  });
  r.ns_per_op = timed.ns_per_op;
  r.iterations = timed.iterations;
  ampc::Runtime mrt(ampc::Config::for_problem(n, 0.5));
  (void)ampc::list_rank(mrt, next, ones);
  fill_model_metrics(r, mrt.metrics());
  h.record(std::move(r), n);
}

void bench_segmented_min_prefix(Harness& h, std::uint64_t n) {
  Rng rng(2);
  std::vector<std::int64_t> vals(n);
  for (auto& v : vals) v = static_cast<std::int64_t>(rng.next_below(9)) - 4;
  std::vector<std::uint64_t> offsets{0};
  for (std::uint64_t i = 64; i < n; i += 64) offsets.push_back(i);
  offsets.push_back(n);
  BenchResult r;
  r.name = "segmented_min_prefix";
  const Timed timed = run_timed(n, h.topt, [&] {
    ampc::Runtime rt(ampc::Config::for_problem(n, 0.5));
    (void)ampc::segmented_min_prefix_sum(rt, vals, offsets);
  });
  r.ns_per_op = timed.ns_per_op;
  r.iterations = timed.iterations;
  ampc::Runtime mrt(ampc::Config::for_problem(n, 0.5));
  (void)ampc::segmented_min_prefix_sum(mrt, vals, offsets);
  fill_model_metrics(r, mrt.metrics());
  h.record(std::move(r), n);
}

void bench_path_max_query(Harness& h, std::uint64_t n) {
  const WGraph g = gen_random_tree(static_cast<VertexId>(n), 3);
  std::vector<TimeStep> times(g.edges.size());
  for (std::size_t i = 0; i < times.size(); ++i)
    times[i] = static_cast<TimeStep>(i + 1);
  const RootedTree rt = build_rooted_tree(static_cast<VertexId>(n), g.edges,
                                          times, 0);
  const HeavyLight hl = build_heavy_light(rt);
  const PathMax pm(rt, hl);
  constexpr std::uint64_t kQueries = 1 << 12;
  std::uint64_t sink = 0;
  BenchResult r;
  r.name = "path_max_query";
  r.group = "exact";
  const Timed timed = run_timed(kQueries, h.topt, [&] {
    Rng rng(7);
    for (std::uint64_t q = 0; q < kQueries; ++q) {
      const auto u = static_cast<VertexId>(rng.next_below(n));
      const auto v = static_cast<VertexId>(rng.next_below(n));
      sink += pm.query(u, v);
    }
  });
  r.ns_per_op = timed.ns_per_op;
  r.iterations = timed.iterations;
  r.extra["sink"] = static_cast<double>(sink % 1024);
  h.record(std::move(r), n);
}

// Deterministic parallel sort/partition primitives (support/psort.h), the
// host-side layer under the clock ranking / CSR grouping / interval sweeps.
// ns_per_op is the shared-pool (hardware-thread) run; extra carries the
// 1-thread sequential-fallback ns/op and the resulting speedup, so the
// trajectory quotes 1-vs-N for every primitive. The sort needs a fresh
// unsorted input every rep; that copy-in is measured separately and
// subtracted from both paths, so the ratio prices the primitive alone
// rather than being diluted toward 1 by a fixed sequential memcpy.
// Sized pointer copy of equal-length vectors. GCC 12's -Warray-bounds sees
// an impossible offset through the inlined vector copy-assignment in the
// timed lambdas below (PR105705-class false positive); copying through raw
// pointers keeps the measured memcpy while compiling clean under -Werror.
template <class T>
void copy_in(const std::vector<T>& from, std::vector<T>& to) {
  std::copy_n(from.data(), from.size(), to.data());
}

void bench_psort_stable_sort(Harness& h, std::uint64_t n) {
  Rng rng(11);
  std::vector<std::uint64_t> base(n);
  for (auto& v : base) v = rng.next_u64();
  std::vector<std::uint64_t> work(n);
  ThreadPool seq(1);
  const auto less = [](std::uint64_t a, std::uint64_t b) { return a < b; };
  const Timed copy = run_timed(n, h.topt, [&] { copy_in(base, work); });
  const Timed par = run_timed(n, h.topt, [&] {
    copy_in(base, work);
    psort::stable_sort_keys(&ThreadPool::shared(), work, less);
  });
  const Timed one = run_timed(n, h.topt, [&] {
    copy_in(base, work);
    psort::stable_sort_keys(&seq, work, less);
  });
  const double par_ns = std::max(1e-9, par.ns_per_op - copy.ns_per_op);
  const double one_ns = std::max(1e-9, one.ns_per_op - copy.ns_per_op);
  BenchResult r;
  r.name = "psort_stable_sort";
  r.group = "exact";
  r.ns_per_op = par_ns;
  r.iterations = par.iterations;
  r.extra["t1_ns_per_op"] = one_ns;
  r.extra["speedup_vs_t1"] = one_ns / par_ns;
  h.record(std::move(r), n);
}

void bench_psort_radix_rank(Harness& h, std::uint64_t n) {
  Rng rng(12);
  const std::uint64_t num_keys = std::max<std::uint64_t>(1, n / 16);
  std::vector<std::uint32_t> base(n);
  for (auto& v : base) v = static_cast<std::uint32_t>(rng.next_below(num_keys));
  std::vector<std::uint32_t> out(n);
  ThreadPool seq(1);
  const auto key_of = [](std::uint32_t v) {
    return static_cast<std::size_t>(v);
  };
  const Timed par = run_timed(n, h.topt, [&] {
    psort::radix_rank(&ThreadPool::shared(), base.data(), out.data(), n,
                      num_keys, key_of);
  });
  const Timed one = run_timed(n, h.topt, [&] {
    psort::radix_rank(&seq, base.data(), out.data(), n, num_keys, key_of);
  });
  BenchResult r;
  r.name = "psort_radix_rank";
  r.group = "exact";
  r.ns_per_op = par.ns_per_op;
  r.iterations = par.iterations;
  r.extra["t1_ns_per_op"] = one.ns_per_op;
  r.extra["speedup_vs_t1"] = one.ns_per_op / std::max(1e-9, par.ns_per_op);
  h.record(std::move(r), n);
}

// The scan mutates in place, but its cost is value-independent (unsigned
// adds), so timed reps just re-scan the evolving buffer — no copy-in to
// pollute the per-op estimate.
void bench_psort_exclusive_scan(Harness& h, std::uint64_t n) {
  Rng rng(13);
  std::vector<std::uint64_t> work(n);
  for (auto& v : work) v = rng.next_below(1 << 10);
  ThreadPool seq(1);
  const Timed par = run_timed(n, h.topt, [&] {
    (void)psort::exclusive_scan(&ThreadPool::shared(), work);
  });
  const Timed one = run_timed(n, h.topt, [&] {
    (void)psort::exclusive_scan(&seq, work);
  });
  BenchResult r;
  r.name = "psort_exclusive_scan";
  r.group = "exact";
  r.ns_per_op = par.ns_per_op;
  r.iterations = par.iterations;
  r.extra["t1_ns_per_op"] = one.ns_per_op;
  r.extra["speedup_vs_t1"] = one.ns_per_op / std::max(1e-9, par.ns_per_op);
  h.record(std::move(r), n);
}

// Kernelization pass (src/kernel): one op is a full kernelize() of a sparse
// connected graph (avg degree 3, the regime where the peel cascades bite),
// normalized per vertex. extras record the kernel size and reduction ratios
// so the trajectory tracks reduction STRENGTH alongside speed — a rule
// regression that leaves the kernel big shows up here even if it gets faster.
void bench_kernelize(Harness& h, std::uint64_t n) {
  WGraph g = gen_random_connected(static_cast<VertexId>(n), (3 * n) / 2, 21);
  randomize_weights(g, 7, 22);
  const kernel::KernelOptions opt = kernel::enabled_defaults();
  BenchResult r;
  r.name = "kernelize_sparse";
  r.group = "exact";
  const Timed timed = run_timed(n, h.topt, [&] { (void)kernel::kernelize(g, opt); });
  r.ns_per_op = timed.ns_per_op;
  r.iterations = timed.iterations;
  const kernel::KernelResult kr = kernel::kernelize(g, opt);
  r.extra["kernel_n"] = static_cast<double>(kr.stats.kernel_n);
  r.extra["kernel_m"] = static_cast<double>(kr.stats.kernel_m);
  r.extra["n_reduction_ratio"] =
      static_cast<double>(kr.stats.kernel_n) / static_cast<double>(g.n);
  r.extra["m_reduction_ratio"] =
      static_cast<double>(kr.stats.kernel_m) / static_cast<double>(g.m());
  r.extra["passes"] = static_cast<double>(kr.stats.passes);
  h.record(std::move(r), n);
}

template <class F>
void bench_exact(Harness& h, const char* name, std::uint64_t n, F&& run) {
  BenchResult r;
  r.name = name;
  r.group = "exact";
  const Timed timed = run_timed(1, h.topt, run);
  r.ns_per_op = timed.ns_per_op;
  r.iterations = timed.iterations;
  h.record(std::move(r), n);
}

}  // namespace

int main(int argc, char** argv) {
  const Mode mode = mode_of(argc, argv);
  Harness h;
  h.topt = timing_for(mode);
  std::printf("E11 — primitive-layer microbenches (mode: %s)\n\n",
              mode == Mode::kSmoke ? "smoke"
                                   : (mode == Mode::kFull ? "full" : "default"));

  const std::vector<std::uint64_t> put_sizes =
      mode == Mode::kSmoke ? std::vector<std::uint64_t>{1 << 14}
      : mode == Mode::kFull
          ? std::vector<std::uint64_t>{1 << 14, 1 << 16, 1 << 18}
          : std::vector<std::uint64_t>{1 << 14, 1 << 16};
  for (const std::uint64_t n : put_sizes) {
    bench_table_put_commit(h, n);
    bench_dense_put_commit(h, n);
    bench_table_get(h, n);
  }
  // Recovery overhead at a nonzero injected crash rate (BENCHMARKS.md
  // "fault recovery").
  for (const std::uint64_t n : mode == Mode::kSmoke
                                   ? std::vector<std::uint64_t>{1 << 14}
                                   : std::vector<std::uint64_t>{1 << 14,
                                                                1 << 16}) {
    bench_fault_recovery(h, n);
  }
  // Transport-seam overhead: the same machine-partitioned put/commit round
  // under the forked shm transport (--procs selects the worker count).
  for (const std::uint64_t n : mode == Mode::kSmoke
                                   ? std::vector<std::uint64_t>{1 << 14}
                                   : std::vector<std::uint64_t>{1 << 14,
                                                                1 << 16}) {
    bench_transport_put_commit(h, n, procs_of(argc, argv));
  }
  // Table-lifecycle fixed costs (the pool's target regime is small tables:
  // k-cut components, list-ranking levels).
  for (const std::uint64_t n : mode == Mode::kSmoke
                                   ? std::vector<std::uint64_t>{1 << 8}
                                   : std::vector<std::uint64_t>{1 << 8,
                                                                1 << 12}) {
    bench_table_lease_reuse(h, n);
  }

  // Parallel sort/partition primitives, 1-vs-N-thread (the hot host-side
  // layer after the psort migration — BENCHMARKS.md "psort microbenches").
  for (const std::uint64_t n : mode == Mode::kSmoke
                                   ? std::vector<std::uint64_t>{1 << 16}
                                   : std::vector<std::uint64_t>{1 << 16,
                                                                1 << 19}) {
    bench_psort_stable_sort(h, n);
    bench_psort_radix_rank(h, n);
    bench_psort_exclusive_scan(h, n);
  }

  const bool smoke = mode == Mode::kSmoke;
  for (const std::uint64_t n : smoke ? std::vector<std::uint64_t>{1 << 10}
                                     : std::vector<std::uint64_t>{1 << 10,
                                                                  1 << 14}) {
    bench_list_rank(h, n);
  }
  for (const std::uint64_t n : smoke ? std::vector<std::uint64_t>{1 << 12}
                                     : std::vector<std::uint64_t>{1 << 12,
                                                                  1 << 16}) {
    bench_segmented_min_prefix(h, n);
  }
  for (const std::uint64_t n : smoke ? std::vector<std::uint64_t>{1 << 12}
                                     : std::vector<std::uint64_t>{1 << 12,
                                                                  1 << 16}) {
    bench_path_max_query(h, n);
  }
  for (const std::uint64_t n : smoke ? std::vector<std::uint64_t>{1 << 10}
                                     : std::vector<std::uint64_t>{1 << 10,
                                                                  1 << 13}) {
    const WGraph g = gen_random_connected(static_cast<VertexId>(n), 4 * n, 5);
    const ContractionOrder o = make_contraction_order(g, 1);
    bench_exact(h, "singleton_oracle", n,
                [&] { (void)min_singleton_cut_oracle(g, o); });
    bench_exact(h, "singleton_interval", n,
                [&] { (void)min_singleton_cut_interval(g, o); });
  }
  // Kernelization pass on sparse graphs (BENCHMARKS.md "kernelization").
  for (const std::uint64_t n : smoke ? std::vector<std::uint64_t>{1 << 12}
                                     : std::vector<std::uint64_t>{1 << 12,
                                                                  1 << 15}) {
    bench_kernelize(h, n);
  }
  // n = 1024 costs seconds per rep for both engines; full sweeps only.
  for (const std::uint64_t n : mode == Mode::kFull
                                   ? std::vector<std::uint64_t>{1 << 8, 1 << 10}
                                   : std::vector<std::uint64_t>{1 << 8}) {
    const WGraph g = gen_random_connected(static_cast<VertexId>(n), 4 * n, 5);
    bench_exact(h, "stoer_wagner", n, [&] { (void)stoer_wagner_min_cut(g); });
    bench_exact(h, "karger_stein", n, [&] { (void)karger_stein(g, 1, 9); });
  }

  h.table.print();
  std::printf("\nShape check: put/commit and get stay O(1) ns/op across n "
              "(hash-map constants, no round-count growth); the exact "
              "engines grow super-linearly as their complexity predicts.\n");
  return finish(argc, argv, h.reporter);
}
