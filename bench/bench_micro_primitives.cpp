// E11 — google-benchmark microbenches for the primitive layer: wall-clock
// sanity of the simulator and the sequential engines (not a paper claim,
// but what a downstream user of the library cares about first).
#include <benchmark/benchmark.h>

#include <numeric>

#include "ampc_algo/list_ranking.h"
#include "ampc_algo/prefix_min.h"
#include "exact/karger.h"
#include "exact/stoer_wagner.h"
#include "graph/generators.h"
#include "mincut/singleton.h"
#include "support/rng.h"
#include "tree/hld.h"

namespace ampccut {
namespace {

void BM_ListRank(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::vector<std::uint64_t> next(n, ampc::kNoNext);
  std::vector<std::uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(1);
  std::shuffle(order.begin(), order.end(), rng);
  for (std::uint64_t k = 0; k + 1 < n; ++k) next[order[k]] = order[k + 1];
  const std::vector<std::int64_t> ones(n, 1);
  for (auto _ : state) {
    ampc::Runtime rt(ampc::Config::for_problem(n, 0.5));
    benchmark::DoNotOptimize(ampc::list_rank(rt, next, ones));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ListRank)->Arg(1 << 10)->Arg(1 << 14);

void BM_SegmentedMinPrefix(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(2);
  std::vector<std::int64_t> vals(n);
  for (auto& v : vals) v = static_cast<std::int64_t>(rng.next_below(9)) - 4;
  std::vector<std::uint64_t> offsets{0};
  for (std::uint64_t i = 64; i < n; i += 64) offsets.push_back(i);
  offsets.push_back(n);
  for (auto _ : state) {
    ampc::Runtime rt(ampc::Config::for_problem(n, 0.5));
    benchmark::DoNotOptimize(ampc::segmented_min_prefix_sum(rt, vals, offsets));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SegmentedMinPrefix)->Arg(1 << 12)->Arg(1 << 16);

void BM_PathMaxQuery(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const WGraph g = gen_random_tree(n, 3);
  std::vector<TimeStep> times(g.edges.size());
  for (std::size_t i = 0; i < times.size(); ++i)
    times[i] = static_cast<TimeStep>(i + 1);
  const RootedTree rt = build_rooted_tree(n, g.edges, times, 0);
  const HeavyLight hl = build_heavy_light(rt);
  const PathMax pm(rt, hl);
  Rng rng(7);
  for (auto _ : state) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    benchmark::DoNotOptimize(pm.query(u, v));
  }
}
BENCHMARK(BM_PathMaxQuery)->Arg(1 << 12)->Arg(1 << 16);

void BM_SingletonOracle(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const WGraph g = gen_random_connected(n, 4ull * n, 5);
  const ContractionOrder o = make_contraction_order(g, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_singleton_cut_oracle(g, o));
  }
}
BENCHMARK(BM_SingletonOracle)->Arg(1 << 10)->Arg(1 << 13);

void BM_SingletonInterval(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const WGraph g = gen_random_connected(n, 4ull * n, 5);
  const ContractionOrder o = make_contraction_order(g, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_singleton_cut_interval(g, o));
  }
}
BENCHMARK(BM_SingletonInterval)->Arg(1 << 10)->Arg(1 << 13);

void BM_StoerWagner(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const WGraph g = gen_random_connected(n, 4ull * n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stoer_wagner_min_cut(g));
  }
}
BENCHMARK(BM_StoerWagner)->Arg(1 << 8)->Arg(1 << 10);

void BM_KargerStein(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const WGraph g = gen_random_connected(n, 4ull * n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(karger_stein(g, 1, 9));
  }
}
BENCHMARK(BM_KargerStein)->Arg(1 << 8)->Arg(1 << 10);

}  // namespace
}  // namespace ampccut

BENCHMARK_MAIN();
