// Serving-tier throughput (DESIGN.md "Cut-query serving tier"): what one
// CutServer sustains on this box. Five measurements per graph size:
//
//   serve_build        — CutServer construction (kernel merge + Gusfield's
//                        n-1 max-flows + snapshot indexing), ns per build.
//   serve_query        — single-shot query() with the cache DISABLED: the
//                        raw O(tree path) hot path. extra.queries_per_sec is
//                        the headline serving number.
//   serve_query_cache  — the same pair list with the sharded LRU on; after
//                        the first rep every lookup hits, so the minimum-
//                        over-reps estimator reports the hit path.
//                        extra.hit_rate is measured, not assumed.
//   serve_query_batch  — query_batch() fan-out on the pool (--threads, 0 =
//                        hardware concurrency). Answers are bit-identical to
//                        sequential; only wall time may move.
//   serve_rebuild      — update_graph(): full rebuild + atomic swap, the
//                        cost of freshness while readers keep answering.
//
// Queries/sec numbers are wall-clock on one box (BENCHMARKS.md caveats) and
// ride in `extra` so the ns/op trajectory stays comparable across benches.
#include <vector>

#include "bench_util.h"
#include "graph/generators.h"
#include "serve/cut_server.h"
#include "support/rng.h"

using namespace ampccut;
using namespace ampccut::bench;

namespace {

std::vector<serve::QueryPair> make_pairs(VertexId n, std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<serve::QueryPair> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    const auto s = static_cast<VertexId>(rng.next_below(n));
    const auto t = static_cast<VertexId>(rng.next_below(n));
    if (s != t) pairs.push_back({s, t});
  }
  return pairs;
}

}  // namespace

int main(int argc, char** argv) {
  const Mode mode = mode_of(argc, argv);
  const std::uint32_t threads = threads_of(argc, argv);
  const TimingOptions topt = timing_for(mode);
  BenchReporter rep("serve_queries");

  ThreadPool pool(threads);

  std::vector<VertexId> sizes;
  if (mode == Mode::kSmoke) {
    sizes = {96};
  } else if (mode == Mode::kFull) {
    sizes = {256, 512, 1024};
  } else {
    sizes = {128, 256};
  }
  const std::size_t num_pairs = mode == Mode::kSmoke ? 1024 : 4096;

  std::printf("Serving tier — queries/sec off one Gomory–Hu snapshot "
              "(threads=%zu)\n\n", pool.num_threads());
  TablePrinter table({"n", "m", "build_ms", "query_qps", "cached_qps",
                      "batch_qps", "rebuild_ms", "hit_rate"});

  for (const VertexId n : sizes) {
    const WGraph g = gen_random_connected(n, 4 * static_cast<std::size_t>(n),
                                          1000 + n);
    const auto pairs = make_pairs(n, num_pairs, 77 + n);

    // serve_build: construction through to the published snapshot.
    serve::CutServerOptions build_opt;
    build_opt.pool = &pool;
    build_opt.kernel = kernel::enabled_defaults();
    build_opt.cache_capacity = 0;
    const Timed built = run_timed(1, topt, [&] {
      serve::CutServer one_shot(g, build_opt);
      (void)one_shot.snapshot();
    });
    {
      BenchResult r;
      r.name = "serve_build";
      r.group = "exact";
      r.params["n"] = n;
      r.params["m"] = static_cast<std::int64_t>(g.m());
      r.ns_per_op = built.ns_per_op;
      r.iterations = built.iterations;
      rep.add(std::move(r));
    }

    // Long-lived servers for the query-path measurements.
    serve::CutServerOptions nocache_opt = build_opt;
    serve::CutServer nocache(g, nocache_opt);
    serve::CutServerOptions cache_opt = build_opt;
    cache_opt.cache_capacity = 2 * num_pairs;  // the working set fits
    serve::CutServer cached(g, cache_opt);

    const Timed plain = run_timed(pairs.size(), topt, [&] {
      Weight sink = 0;
      for (const auto& p : pairs) sink ^= nocache.query(p.s, p.t);
      if (sink == static_cast<Weight>(-2)) std::printf("impossible\n");
    });
    const Timed hit = run_timed(pairs.size(), topt, [&] {
      Weight sink = 0;
      for (const auto& p : pairs) sink ^= cached.query(p.s, p.t);
      if (sink == static_cast<Weight>(-2)) std::printf("impossible\n");
    });
    const auto cache_stats = cached.stats();
    const double hit_rate =
        static_cast<double>(cache_stats.cache_hits) /
        static_cast<double>(cache_stats.cache_hits + cache_stats.cache_misses);
    const Timed batch = run_timed(pairs.size(), topt, [&] {
      const auto answers = nocache.query_batch(pairs);
      if (answers.size() != pairs.size()) std::printf("impossible\n");
    });
    const Timed rebuild = run_timed(1, topt, [&] { nocache.update_graph(g); });

    const double query_qps = 1e9 / plain.ns_per_op;
    const double cached_qps = 1e9 / hit.ns_per_op;
    const double batch_qps = 1e9 / batch.ns_per_op;
    table.add_row({fmt_u(n), fmt_u(g.m()), fmt(built.ns_per_op / 1e6),
                   fmt(query_qps, 0), fmt(cached_qps, 0), fmt(batch_qps, 0),
                   fmt(rebuild.ns_per_op / 1e6), fmt(hit_rate, 3)});

    const auto add_query_result = [&](const char* name, const Timed& t,
                                      double qps) {
      BenchResult r;
      r.name = name;
      r.group = "exact";
      r.params["n"] = n;
      r.params["m"] = static_cast<std::int64_t>(g.m());
      r.params["pairs"] = static_cast<std::int64_t>(pairs.size());
      r.ns_per_op = t.ns_per_op;
      r.iterations = t.iterations;
      r.extra["queries_per_sec"] = qps;
      return r;
    };
    rep.add(add_query_result("serve_query", plain, query_qps));
    {
      BenchResult r = add_query_result("serve_query_cache", hit, cached_qps);
      r.extra["hit_rate"] = hit_rate;
      rep.add(std::move(r));
    }
    {
      BenchResult r = add_query_result("serve_query_batch", batch, batch_qps);
      r.params["threads"] = static_cast<std::int64_t>(pool.num_threads());
      rep.add(std::move(r));
    }
    {
      BenchResult r;
      r.name = "serve_rebuild";
      r.group = "exact";
      r.params["n"] = n;
      r.params["m"] = static_cast<std::int64_t>(g.m());
      r.ns_per_op = rebuild.ns_per_op;
      r.iterations = rebuild.iterations;
      rep.add(std::move(r));
    }
  }
  table.print();

  return finish(argc, argv, rep);
}
