// E5 (Lemma 2, Karger/GN): contracting an n-vertex graph down to n/t
// vertices either surfaces a small singleton cut (<= (2+eps) * mincut) or
// preserves a fixed min cut, with probability >= 1/t^(1-eps/3).
//
// Monte Carlo on planted-cut graphs (the planted bridge is the unique min
// cut): for each t we estimate P[success] and compare with the bound.
#include <cmath>

#include "bench_util.h"
#include "exact/stoer_wagner.h"
#include "graph/generators.h"
#include "graph/union_find.h"
#include "mincut/contraction.h"
#include "mincut/singleton.h"

using namespace ampccut;
using namespace ampccut::bench;

int main(int argc, char** argv) {
  const Mode mode = mode_of(argc, argv);
  BenchReporter rep("e5_contraction_probability");
  const VertexId n = mode == Mode::kFull ? 512 : 256;
  const int trials =
      mode == Mode::kSmoke ? 40 : (mode == Mode::kFull ? 400 : 150);
  const double eps = 0.9;

  const WGraph g = gen_planted_cut(n, 12.0 / n, 2, 99);
  const Weight lambda = stoer_wagner_min_cut(g).weight;
  std::printf("E5 / Lemma 2 — contraction success probability "
              "(planted-cut graph, n=%u, mincut=%llu, eps=%.1f)\n\n",
              n, static_cast<unsigned long long>(lambda), eps);

  TablePrinter t({"t", "P[preserved]", "P[small singleton]", "P[either]",
                  "bound 1/t^(1-eps/3)"});
  for (const double tf : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    int preserved = 0, small_singleton = 0, either = 0;
    const double ns = time_once_ns([&] {
      for (int trial = 0; trial < trials; ++trial) {
        const ContractionOrder o = make_contraction_order(g, 1000 + trial);
        const auto target = static_cast<VertexId>(
            std::max(2.0, static_cast<double>(n) / tf));
        const ContractedGraph c = contract_to_size(g, o, target);
        // Preserved: no planted-bridge edge was contracted (the two halves
        // stay in different supervertices is necessary; sufficient is that no
        // min-cut edge is internal — with bridge edges that is the same).
        bool cut_alive = true;
        for (const auto& e : g.edges) {
          const bool crosses = (e.u < n / 2) != (e.v < n / 2);
          if (crosses && c.origin[e.u] == c.origin[e.v]) cut_alive = false;
        }
        // Small singleton: the tracker saw a bag within (2+eps) * lambda over
        // the prefix of the process that reaches the target size.
        const auto s = min_singleton_cut_oracle(g, o);
        const bool small = static_cast<double>(s.weight) <=
                           (2.0 + eps) * static_cast<double>(lambda);
        preserved += cut_alive;
        small_singleton += small;
        either += (cut_alive || small);
      }
    });
    const double bound = 1.0 / std::pow(tf, 1.0 - eps / 3.0);
    t.add_row({fmt(tf, 0), fmt(double(preserved) / trials),
               fmt(double(small_singleton) / trials),
               fmt(double(either) / trials), fmt(bound)});

    BenchResult r;
    r.name = "contraction_success";
    r.group = "exact";  // Monte Carlo over the sequential machinery
    r.params["n"] = n;
    r.params["t"] = static_cast<std::int64_t>(tf);
    r.ns_per_op = ns / trials;  // one trial is the op
    r.iterations = static_cast<std::uint64_t>(trials);
    r.extra["p_preserved"] = double(preserved) / trials;
    r.extra["p_small_singleton"] = double(small_singleton) / trials;
    r.extra["p_either"] = double(either) / trials;
    r.extra["bound"] = bound;
    rep.add(std::move(r));
  }
  t.print();
  std::printf("\nShape check: P[either] dominates the 1/t^(1-eps/3) bound "
              "at every t (Lemma 2).\n");
  return finish(argc, argv, rep);
}
