// Shared table-printing and CLI helpers for the experiment binaries.
//
// Every bench prints aligned columns (one table per experiment, mirroring
// the claims indexed in DESIGN.md section 3) and accepts --full for the
// larger sweeps recorded in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace ampccut::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) widths_.push_back(h.size());
  }

  void add_row(const std::vector<std::string>& cells) {
    rows_.push_back(cells);
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
  }

  void print() const {
    print_row(headers_);
    std::string sep;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      sep += std::string(widths_[i], '-');
      if (i + 1 < headers_.size()) sep += "-+-";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  void print_row(const std::vector<std::string>& cells) const {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::string c = cells[i];
      c.resize(widths_[i], ' ');
      line += c;
      if (i + 1 < cells.size()) line += " | ";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

}  // namespace ampccut::bench
