// Shared helpers for the experiment binaries: aligned-table printing, CLI
// flags, a small wall-clock timing harness, and the glue that turns runtime
// metrics into the machine-readable BENCH_*.json trajectory entries
// (support/bench_report.h; schema documented in BENCHMARKS.md).
//
// Every bench prints its human-readable tables (one per experiment, each
// header citing the paper claim it exercises) AND appends one
// BenchResult per sweep point to a BenchReporter; `--json <path>` writes the
// suite document, `--smoke` shrinks sweeps for CI, `--full` grows them for
// the recorded experiments.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ampc/runtime.h"
#include "mpc/runtime.h"
#include "support/bench_report.h"

namespace ampccut::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// Value of "--opt value"; nullptr when the flag is absent OR present as the
// last token with no value to read (never index past argv). Callers that
// must distinguish "absent" from "valueless" pair this with has_flag and
// fail with a usage message — see threads_of and finish below.
inline const char* arg_value(int argc, char** argv, const char* opt) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], opt) == 0) {
      return i + 1 < argc ? argv[i + 1] : nullptr;
    }
  }
  return nullptr;
}

// The three sweep sizes every bench understands. --smoke wins over --full.
enum class Mode { kSmoke, kDefault, kFull };

inline Mode mode_of(int argc, char** argv) {
  if (has_flag(argc, argv, "--smoke")) return Mode::kSmoke;
  if (has_flag(argc, argv, "--full")) return Mode::kFull;
  return Mode::kDefault;
}

// "--threads N" for the solver benches: recursion-driver parallelism
// (ApproxMinCutOptions::threads). Absent = 0 = hardware concurrency;
// 1 recovers the exact sequential execution path. Thread count never
// changes results, only wall time.
inline std::uint32_t threads_of(int argc, char** argv) {
  const char* v = arg_value(argc, argv, "--threads");
  if (v == nullptr) {
    if (has_flag(argc, argv, "--threads")) {
      std::fprintf(stderr,
                   "bench_util: --threads given without a value; usage: "
                   "--threads N (falling back to 0 = hardware concurrency)\n");
    }
    return 0;
  }
  return static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
}

// "--transport local|shm" for benches that run the AMPC runtime: selects the
// round execution strategy (Config::transport; DESIGN.md "Transport layer &
// multi-process execution"). Absent = local. The transport never changes
// results or model metrics, only wall time and wire traffic.
inline transport::TransportKind transport_of(int argc, char** argv) {
  const char* v = arg_value(argc, argv, "--transport");
  if (v == nullptr) {
    if (has_flag(argc, argv, "--transport")) {
      std::fprintf(stderr,
                   "bench_util: --transport given without a value; usage: "
                   "--transport local|shm (falling back to local)\n");
    }
    return transport::TransportKind::kLocal;
  }
  const auto kind = transport::parse_transport_kind(v);
  if (!kind.has_value()) {
    std::fprintf(stderr,
                 "bench_util: unknown transport '%s'; usage: --transport "
                 "local|shm (falling back to local)\n",
                 v);
    return transport::TransportKind::kLocal;
  }
  return *kind;
}

// "--procs N" companion to --transport shm: worker-process count per round
// (Config::num_processes). Absent = 2.
inline std::uint32_t procs_of(int argc, char** argv) {
  const char* v = arg_value(argc, argv, "--procs");
  if (v == nullptr) return 2;
  const auto n = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
  return n == 0 ? 1 : n;
}

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) widths_.push_back(h.size());
  }

  void add_row(const std::vector<std::string>& cells) {
    rows_.push_back(cells);
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
  }

  void print() const {
    print_row(headers_);
    std::string sep;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      sep += std::string(widths_[i], '-');
      if (i + 1 < headers_.size()) sep += "-+-";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  void print_row(const std::vector<std::string>& cells) const {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::string c = cells[i];
      c.resize(widths_[i], ' ');
      line += c;
      if (i + 1 < cells.size()) line += " | ";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

// ---------------------------------------------------------------------------
// Timing harness. Deliberately simple: `warmup` untimed runs, `reps` timed
// runs, report the MINIMUM per-op time (the standard microbench estimator —
// noise on a shared machine is strictly additive). BENCHMARKS.md discusses
// the caveats (no pinning, wall clock, single box).

struct TimingOptions {
  int warmup = 1;
  int reps = 5;
};

inline TimingOptions timing_for(Mode mode) {
  TimingOptions t;
  if (mode == Mode::kSmoke) {
    t.warmup = 1;
    t.reps = 2;
  } else if (mode == Mode::kFull) {
    t.warmup = 2;
    t.reps = 9;
  }
  return t;
}

struct Timed {
  double ns_per_op = 0.0;      // min over reps, divided by ops_per_rep
  std::uint64_t iterations = 0;  // timed reps behind the estimate
};

// Single coarse measurement for the macro benches (one solver run is the
// op; repetition would multiply already-long experiment sweeps).
template <class F>
double time_once_ns(F&& body) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  body();
  const auto t1 = clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

template <class F>
Timed run_timed(std::uint64_t ops_per_rep, const TimingOptions& opt, F&& body) {
  using clock = std::chrono::steady_clock;
  for (int i = 0; i < opt.warmup; ++i) body();
  double best_ns = 0.0;
  for (int i = 0; i < opt.reps; ++i) {
    const auto t0 = clock::now();
    body();
    const auto t1 = clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    if (i == 0 || ns < best_ns) best_ns = ns;
  }
  Timed out;
  out.iterations = static_cast<std::uint64_t>(opt.reps);
  out.ns_per_op =
      best_ns / static_cast<double>(std::max<std::uint64_t>(1, ops_per_rep));
  return out;
}

// ---------------------------------------------------------------------------
// Metric glue: copy model costs out of a runtime into a trajectory entry.

inline void fill_model_metrics(BenchResult& r, const ampc::Metrics& m) {
  r.measured_rounds = m.rounds;
  r.charged_rounds = m.charged_rounds;
  r.model_rounds = m.model_rounds();
  r.dht_read_words = m.dht_reads;
  r.dht_write_words = m.dht_writes;
  r.max_machine_traffic = m.max_machine_traffic;
  r.peak_table_words = m.peak_table_words;
  r.budget_violations = m.budget_violations.load();
}

// The MPC baseline prices communication in shipped message words; they land
// in the write column (a message is a remote write) so the two models stay
// comparable in one schema.
inline void fill_model_metrics(BenchResult& r, const mpc::Metrics& m) {
  r.measured_rounds = m.rounds;
  r.model_rounds = m.model_rounds();
  r.dht_write_words = m.messages;
  r.max_machine_traffic = m.max_machine_recv;
}

// Writes the suite document when --json <path> was given. Returns the exit
// code for main(): IO failure is a bench failure, and so is a --json flag
// with no path (the caller asked for output we cannot deliver).
inline int finish(int argc, char** argv, const BenchReporter& reporter) {
  const char* path = arg_value(argc, argv, "--json");
  if (!path) {
    if (has_flag(argc, argv, "--json")) {
      std::fprintf(stderr,
                   "bench_util: --json given without a path; usage: "
                   "--json <file>\n");
      return 1;
    }
    return 0;
  }
  if (!reporter.write_file(path)) {
    std::fprintf(stderr, "bench_util: failed to write %s\n", path);
    return 1;
  }
  std::printf("\n[%s] wrote %zu results to %s\n", reporter.suite().c_str(),
              reporter.results().size(), path);
  return 0;
}

}  // namespace ampccut::bench
