// Weighted undirected multigraph and its CSR adjacency view.
//
// WGraph is the canonical interchange format: a vertex count plus an edge
// list. Parallel edges and isolated vertices are allowed (contractions create
// both); self-loops are not stored (contraction drops them). Adjacency is a
// separately built CSR snapshot so the edge list stays the source of truth.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.h"
#include "support/check.h"

namespace ampccut {

struct WEdge {
  VertexId u = 0;
  VertexId v = 0;
  Weight w = 1;

  friend bool operator==(const WEdge&, const WEdge&) = default;
};

struct WGraph {
  VertexId n = 0;
  std::vector<WEdge> edges;

  [[nodiscard]] std::size_t m() const { return edges.size(); }

  void add_edge(VertexId u, VertexId v, Weight w = 1) {
    REPRO_CHECK_MSG(u < n && v < n, "edge endpoint out of range");
    REPRO_CHECK_MSG(u != v, "self-loops are not representable");
    edges.push_back({u, v, w});
  }

  // Total edge weight; useful as a trivial upper bound for cuts.
  [[nodiscard]] Weight total_weight() const;

  // Sum of weights of edges incident to each vertex (the t=0 singleton cuts).
  [[nodiscard]] std::vector<Weight> weighted_degrees() const;

  // Structural validation (ranges, no loops). Throws on violation.
  void validate() const;
};

// Half-edge CSR adjacency: for vertex v, neighbors(v) yields {to, w, edge id}.
class Adjacency {
 public:
  struct Arc {
    VertexId to;
    Weight w;
    EdgeId edge;
  };

  Adjacency() = default;
  explicit Adjacency(const WGraph& g);

  [[nodiscard]] std::span<const Arc> neighbors(VertexId v) const {
    REPRO_DCHECK(v + 1 < offsets_.size());
    return {arcs_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  [[nodiscard]] VertexId n() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  [[nodiscard]] std::size_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<Arc> arcs_;
};

// Number of connected components (sequential reference).
VertexId count_components(const WGraph& g);

// Component label per vertex (labels are the smallest vertex id in the
// component, so they are stable and comparable across calls).
std::vector<VertexId> component_labels(const WGraph& g);

bool is_connected(const WGraph& g);

// The weight of the cut induced by `side` (side[v] in {0,1}). Both sides must
// be non-empty to be a valid cut; this only sums crossing weights.
Weight cut_weight(const WGraph& g, const std::vector<std::uint8_t>& side);

}  // namespace ampccut
