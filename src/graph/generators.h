// Workload generators.
//
// The paper motivates Min Cut on massive graphs from MapReduce-style
// pipelines; it evaluates nothing empirically, so these families are chosen to
// exercise the algorithms' interesting regimes:
//   * Erdős–Rényi G(n,p)          — generic dense-ish cuts,
//   * planted-cut / barbell       — a known small min cut to approximate,
//   * community (caveman) graphs  — natural Min k-Cut instances,
//   * cycles (one vs two)         — the 1-vs-2-Cycle conjecture workload,
//   * trees (path/star/caterpillar/random/broom) — decomposition stressors,
//   * grids, cliques, wheels      — structured controls.
// All generators are deterministic in (params, seed).
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "support/rng.h"

namespace ampccut {

// G(n, p) with unit weights; optionally force connectivity by threading a
// random spanning path through the vertices first.
WGraph gen_erdos_renyi(VertexId n, double p, std::uint64_t seed,
                       bool force_connected = true);

// Random connected graph with exactly m edges (n-1 <= m): random spanning
// tree plus distinct random non-tree edges.
WGraph gen_random_connected(VertexId n, std::size_t m, std::uint64_t seed);

// Random weights in [1, max_w] assigned to an unweighted graph.
void randomize_weights(WGraph& g, Weight max_w, std::uint64_t seed);

// Two G(half, p_in) blobs joined by `bridge_edges` unit edges: the planted min
// cut is (usually) the bridge. Returns the graph; the planted cut value is
// bridge_edges when p_in is large enough.
WGraph gen_planted_cut(VertexId n, double p_in, VertexId bridge_edges,
                       std::uint64_t seed);

// k communities of size n/k, each an ER blob with p_in, joined in a ring by
// `bridge_edges` edges between consecutive communities. Natural k-cut
// instance: cutting all k bridges separates the communities.
WGraph gen_communities(VertexId n, VertexId k, double p_in,
                       VertexId bridge_edges, std::uint64_t seed);

// Barbell: two cliques of size n/2 connected by a single edge (min cut 1).
WGraph gen_barbell(VertexId n);

// Single cycle on n vertices.
WGraph gen_cycle(VertexId n);

// Two disjoint cycles on n/2 vertices each (the 1-vs-2 cycle instance).
WGraph gen_two_cycles(VertexId n);

// sqrt(n) x sqrt(n) grid.
WGraph gen_grid(VertexId rows, VertexId cols);

WGraph gen_complete(VertexId n);

// Trees (returned as graphs with n-1 edges).
WGraph gen_path(VertexId n);
WGraph gen_star(VertexId n);
WGraph gen_random_tree(VertexId n, std::uint64_t seed);  // random attachment
// Caterpillar: a spine of length `spine` with `legs` leaves per spine vertex.
WGraph gen_caterpillar(VertexId spine, VertexId legs);
// Broom: a path of length n/2 ending in a star of n/2 leaves. Worst-case-ish
// mix of long heavy path and high degree.
WGraph gen_broom(VertexId n);
// Complete binary tree with n vertices.
WGraph gen_binary_tree(VertexId n);

// Preferential-attachment (Barabási–Albert-ish) with out-degree d.
WGraph gen_preferential_attachment(VertexId n, VertexId d, std::uint64_t seed);

}  // namespace ampccut
