// Plain-text edge-list IO.
//
// Format: first line "n m", then m lines "u v w". Comments start with '#'.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace ampccut {

void write_edge_list(std::ostream& os, const WGraph& g);
WGraph read_edge_list(std::istream& is);

void save_edge_list(const std::string& path, const WGraph& g);
WGraph load_edge_list(const std::string& path);

}  // namespace ampccut
