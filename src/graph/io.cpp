#include "graph/io.h"

#include <fstream>
#include <sstream>

#include "support/check.h"

namespace ampccut {

void write_edge_list(std::ostream& os, const WGraph& g) {
  os << g.n << ' ' << g.edges.size() << '\n';
  for (const auto& e : g.edges) {
    os << e.u << ' ' << e.v << ' ' << e.w << '\n';
  }
}

WGraph read_edge_list(std::istream& is) {
  WGraph g;
  std::string line;
  std::size_t m = 0;
  bool header_seen = false;
  std::size_t edges_seen = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    if (!header_seen) {
      ls >> g.n >> m;
      REPRO_CHECK_MSG(!ls.fail(), "malformed header line");
      g.edges.reserve(m);
      header_seen = true;
      continue;
    }
    VertexId u = 0, v = 0;
    Weight w = 1;
    ls >> u >> v;
    REPRO_CHECK_MSG(!ls.fail(), "malformed edge line");
    if (!(ls >> w)) w = 1;
    g.add_edge(u, v, w);
    ++edges_seen;
  }
  REPRO_CHECK_MSG(header_seen, "missing header line");
  REPRO_CHECK_MSG(edges_seen == m, "edge count does not match header");
  return g;
}

void save_edge_list(const std::string& path, const WGraph& g) {
  std::ofstream os(path);
  REPRO_CHECK_MSG(os.good(), "cannot open file for writing: " + path);
  write_edge_list(os, g);
}

WGraph load_edge_list(const std::string& path) {
  std::ifstream is(path);
  REPRO_CHECK_MSG(is.good(), "cannot open file for reading: " + path);
  return read_edge_list(is);
}

}  // namespace ampccut
