#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/errors.h"

namespace ampccut {

namespace {

// Malformed bytes on disk are a runtime condition, not a programming bug:
// IO failure paths throw the typed GraphIoError (support/errors.h) instead
// of REPRO_CHECK's logic_error, so tools can catch exactly the IO surface.
void io_check(bool ok, const std::string& msg) {
  if (!ok) throw GraphIoError(msg);
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream ls(line);
  std::string t;
  while (ls >> t) toks.push_back(t);
  return toks;
}

// Strict decimal parse: digits only (no sign, no base prefix, no trailing
// junk) and value <= max. istream's operator>> silently wraps negative
// input into unsigned types and saturates on overflow depending on the
// library — parsing the raw token closes both holes loudly.
std::uint64_t parse_u64(const std::string& tok, std::uint64_t max,
                        const char* what) {
  io_check(!tok.empty(), std::string("empty ") + what + " token");
  std::uint64_t value = 0;
  for (const char c : tok) {
    io_check(c >= '0' && c <= '9',
             std::string("non-numeric ") + what + " token: " + tok);
    const auto digit = static_cast<std::uint64_t>(c - '0');
    io_check(digit <= max && value <= (max - digit) / 10,
             std::string(what) + " out of range: " + tok);
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

void write_edge_list(std::ostream& os, const WGraph& g) {
  os << g.n << ' ' << g.edges.size() << '\n';
  for (const auto& e : g.edges) {
    os << e.u << ' ' << e.v << ' ' << e.w << '\n';
  }
}

WGraph read_edge_list(std::istream& is) {
  WGraph g;
  std::string line;
  std::uint64_t m = 0;
  bool header_seen = false;
  std::uint64_t edges_seen = 0;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> toks = tokens_of(line);
    if (toks.empty()) continue;  // whitespace-only line
    if (!header_seen) {
      // A truncated ("3") or over-long ("3 5 7") header fails here rather
      // than being half-consumed.
      io_check(toks.size() == 2,
               "malformed header line (want \"n m\"): " + line);
      g.n = static_cast<VertexId>(
          parse_u64(toks[0], kInvalidVertex - 1, "vertex count"));
      m = parse_u64(toks[1], kInvalidEdge - 1, "edge count");
      // The count still gets verified line by line; cap the reservation so
      // a huge header cannot allocate unboundedly before that.
      g.edges.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(m, std::uint64_t{1} << 20)));
      header_seen = true;
      continue;
    }
    io_check(toks.size() == 2 || toks.size() == 3,
             "malformed edge line (want \"u v [w]\"): " + line);
    ++edges_seen;
    io_check(edges_seen <= m,
             "more edge lines than the header promised");
    const auto u = static_cast<VertexId>(
        parse_u64(toks[0], kInvalidVertex - 1, "endpoint"));
    const auto v = static_cast<VertexId>(
        parse_u64(toks[1], kInvalidVertex - 1, "endpoint"));
    Weight w = 1;
    if (toks.size() == 3) {
      w = parse_u64(toks[2], kInfiniteWeight - 1, "weight");
    }
    // add_edge rejects out-of-range endpoints and self-loops loudly.
    g.add_edge(u, v, w);
  }
  io_check(header_seen, "missing header line");
  io_check(edges_seen == m, "edge count does not match header");
  return g;
}

void save_edge_list(const std::string& path, const WGraph& g) {
  std::ofstream os(path);
  io_check(os.good(), "cannot open file for writing: " + path);
  write_edge_list(os, g);
}

WGraph load_edge_list(const std::string& path) {
  std::ifstream is(path);
  io_check(is.good(), "cannot open file for reading: " + path);
  return read_edge_list(is);
}

}  // namespace ampccut
