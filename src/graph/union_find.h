// Union-find with union by size and path halving.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.h"
#include "support/check.h"

namespace ampccut {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1), components_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<VertexId>(i);
  }

  VertexId find(VertexId x) {
    REPRO_DCHECK(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  // Returns true if the two elements were in different components.
  bool unite(VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --components_;
    return true;
  }

  bool same(VertexId a, VertexId b) { return find(a) == find(b); }

  [[nodiscard]] std::size_t num_components() const { return components_; }
  [[nodiscard]] std::size_t component_size(VertexId root) const {
    return size_[root];
  }
  [[nodiscard]] std::size_t size() const { return parent_.size(); }

 private:
  std::vector<VertexId> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t components_;
};

}  // namespace ampccut
