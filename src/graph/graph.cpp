#include "graph/graph.h"

#include <numeric>

#include "graph/union_find.h"

namespace ampccut {

Weight WGraph::total_weight() const {
  Weight total = 0;
  for (const auto& e : edges) total += e.w;
  return total;
}

std::vector<Weight> WGraph::weighted_degrees() const {
  std::vector<Weight> deg(n, 0);
  for (const auto& e : edges) {
    deg[e.u] = sat_add(deg[e.u], e.w);
    deg[e.v] = sat_add(deg[e.v], e.w);
  }
  return deg;
}

void WGraph::validate() const {
  for (const auto& e : edges) {
    REPRO_CHECK_MSG(e.u < n && e.v < n, "edge endpoint out of range");
    REPRO_CHECK_MSG(e.u != e.v, "self-loop present");
  }
}

Adjacency::Adjacency(const WGraph& g) {
  offsets_.assign(static_cast<std::size_t>(g.n) + 1, 0);
  for (const auto& e : g.edges) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
  arcs_.resize(2 * g.edges.size());
  std::vector<std::size_t> fill(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    const auto& e = g.edges[i];
    arcs_[fill[e.u]++] = {e.v, e.w, i};
    arcs_[fill[e.v]++] = {e.u, e.w, i};
  }
}

std::vector<VertexId> component_labels(const WGraph& g) {
  UnionFind uf(g.n);
  for (const auto& e : g.edges) uf.unite(e.u, e.v);
  // Relabel roots to the minimum vertex id in each component.
  std::vector<VertexId> label(g.n, kInvalidVertex);
  for (VertexId v = 0; v < g.n; ++v) {
    const VertexId r = uf.find(v);
    if (label[r] == kInvalidVertex) label[r] = v;  // v ascending => min id
  }
  std::vector<VertexId> out(g.n);
  for (VertexId v = 0; v < g.n; ++v) out[v] = label[uf.find(v)];
  return out;
}

VertexId count_components(const WGraph& g) {
  UnionFind uf(g.n);
  for (const auto& e : g.edges) uf.unite(e.u, e.v);
  return static_cast<VertexId>(uf.num_components());
}

bool is_connected(const WGraph& g) {
  if (g.n == 0) return true;
  return count_components(g) == 1;
}

Weight cut_weight(const WGraph& g, const std::vector<std::uint8_t>& side) {
  REPRO_CHECK(side.size() == g.n);
  // Saturating: cuts through kInfiniteWeight edges clamp at the ceiling
  // instead of wrapping (graph/types.h), matching Dinic's flow accounting.
  Weight total = 0;
  for (const auto& e : g.edges) {
    if (side[e.u] != side[e.v]) total = sat_add(total, e.w);
  }
  return total;
}

}  // namespace ampccut
