// Core value types shared by every module.
#pragma once

#include <cstdint>

namespace ampccut {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

// Cut weights are integral: exact equality between independently implemented
// trackers is part of the test contract, which floating point would ruin.
using Weight = std::uint64_t;

// Contraction times are dense ranks 1..m of the (unique) random edge weights;
// the paper's w : E -> [n^3] only needs a unique total order.
using TimeStep = std::uint32_t;

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);
inline constexpr Weight kInfiniteWeight = static_cast<Weight>(-1);

// Saturating addition on the Weight domain: kInfiniteWeight is a sticky
// ceiling, so sums that would wrap (flows across kInfiniteWeight edges, cut
// weights involving them) clamp there instead of silently overflowing.
// Finite weights are expected to stay below 2^62 so that no realistic sum of
// finite terms reaches the ceiling by accident.
[[nodiscard]] inline constexpr Weight sat_add(Weight a, Weight b) {
  return a > kInfiniteWeight - b ? kInfiniteWeight : a + b;
}

}  // namespace ampccut
