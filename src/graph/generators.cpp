#include "graph/generators.h"

#include <algorithm>
#include <set>
#include <utility>

#include "support/check.h"

namespace ampccut {

namespace {

// Threads a random Hamiltonian path through the vertices; guarantees
// connectivity without biasing the cut structure much at moderate p.
void add_random_spanning_path(WGraph& g, Rng& rng) {
  std::vector<VertexId> order(g.n);
  for (VertexId i = 0; i < g.n; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);
  for (VertexId i = 0; i + 1 < g.n; ++i) g.add_edge(order[i], order[i + 1]);
}

}  // namespace

WGraph gen_erdos_renyi(VertexId n, double p, std::uint64_t seed,
                       bool force_connected) {
  REPRO_CHECK(n >= 1);
  WGraph g;
  g.n = n;
  Rng rng(seed);
  std::set<std::pair<VertexId, VertexId>> used;
  if (force_connected && n >= 2) {
    add_random_spanning_path(g, rng);
    for (const auto& e : g.edges) used.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  // Geometric skipping for sparse graphs would be faster, but n is moderate
  // in tests/benches and the direct loop keeps the distribution transparent.
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.next_bernoulli(p) && !used.count({u, v})) {
        g.add_edge(u, v);
      }
    }
  }
  return g;
}

WGraph gen_random_connected(VertexId n, std::size_t m, std::uint64_t seed) {
  REPRO_CHECK(n >= 1);
  REPRO_CHECK_MSG(m + 1 >= n, "need at least n-1 edges for connectivity");
  const std::size_t max_m =
      static_cast<std::size_t>(n) * (n - 1) / 2;
  REPRO_CHECK_MSG(m <= max_m, "more edges than a simple graph admits");
  WGraph g;
  g.n = n;
  Rng rng(seed);
  std::set<std::pair<VertexId, VertexId>> used;
  // Random attachment tree: v attaches to a uniform earlier vertex, after a
  // random relabeling so the root is not special.
  std::vector<VertexId> order(n);
  for (VertexId i = 0; i < n; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);
  for (VertexId i = 1; i < n; ++i) {
    const VertexId j = static_cast<VertexId>(rng.next_below(i));
    const VertexId u = order[i], v = order[j];
    g.add_edge(u, v);
    used.insert({std::min(u, v), std::max(u, v)});
  }
  while (g.edges.size() < m) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    if (u == v) continue;
    const auto key = std::make_pair(std::min(u, v), std::max(u, v));
    if (used.insert(key).second) g.add_edge(u, v);
  }
  return g;
}

void randomize_weights(WGraph& g, Weight max_w, std::uint64_t seed) {
  REPRO_CHECK(max_w >= 1);
  Rng rng(seed);
  for (auto& e : g.edges) e.w = 1 + rng.next_below(max_w);
}

WGraph gen_planted_cut(VertexId n, double p_in, VertexId bridge_edges,
                       std::uint64_t seed) {
  REPRO_CHECK(n >= 4);
  const VertexId half = n / 2;
  Rng rng(seed);
  WGraph g;
  g.n = n;
  auto blob = [&](VertexId lo, VertexId hi) {
    // Connected ER blob on [lo, hi).
    std::vector<VertexId> order;
    for (VertexId v = lo; v < hi; ++v) order.push_back(v);
    std::shuffle(order.begin(), order.end(), rng);
    std::set<std::pair<VertexId, VertexId>> used;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      g.add_edge(order[i], order[i + 1]);
      used.insert({std::min(order[i], order[i + 1]),
                   std::max(order[i], order[i + 1])});
    }
    for (VertexId u = lo; u < hi; ++u)
      for (VertexId v = u + 1; v < hi; ++v)
        if (rng.next_bernoulli(p_in) && !used.count({u, v})) g.add_edge(u, v);
  };
  blob(0, half);
  blob(half, n);
  // The rejection loop below draws distinct cross pairs; asking for more
  // than exist would spin forever.
  REPRO_CHECK_MSG(static_cast<std::uint64_t>(bridge_edges) <=
                      static_cast<std::uint64_t>(half) * (n - half),
                  "bridge_edges exceeds the number of cross pairs");
  std::set<std::pair<VertexId, VertexId>> bridges;
  while (bridges.size() < bridge_edges) {
    const auto u = static_cast<VertexId>(rng.next_below(half));
    const auto v = static_cast<VertexId>(half + rng.next_below(n - half));
    if (bridges.insert({u, v}).second) g.add_edge(u, v);
  }
  return g;
}

WGraph gen_communities(VertexId n, VertexId k, double p_in,
                       VertexId bridge_edges, std::uint64_t seed) {
  REPRO_CHECK(k >= 2 && n >= 2 * k);
  const VertexId size = n / k;
  // Same termination concern as gen_planted_cut: each ring link draws
  // distinct pairs from a size*size pool.
  REPRO_CHECK_MSG(static_cast<std::uint64_t>(bridge_edges) <=
                      static_cast<std::uint64_t>(size) * size,
                  "bridge_edges exceeds the number of cross pairs");
  Rng rng(seed);
  WGraph g;
  g.n = size * k;
  auto lo_of = [&](VertexId c) { return c * size; };
  for (VertexId c = 0; c < k; ++c) {
    const VertexId lo = lo_of(c), hi = lo + size;
    std::vector<VertexId> order;
    for (VertexId v = lo; v < hi; ++v) order.push_back(v);
    std::shuffle(order.begin(), order.end(), rng);
    std::set<std::pair<VertexId, VertexId>> used;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      g.add_edge(order[i], order[i + 1]);
      used.insert({std::min(order[i], order[i + 1]),
                   std::max(order[i], order[i + 1])});
    }
    for (VertexId u = lo; u < hi; ++u)
      for (VertexId v = u + 1; v < hi; ++v)
        if (rng.next_bernoulli(p_in) && !used.count({u, v})) g.add_edge(u, v);
  }
  for (VertexId c = 0; c < k; ++c) {
    const VertexId next = (c + 1) % k;
    std::set<std::pair<VertexId, VertexId>> used;
    while (used.size() < bridge_edges) {
      const auto u = static_cast<VertexId>(lo_of(c) + rng.next_below(size));
      const auto v = static_cast<VertexId>(lo_of(next) + rng.next_below(size));
      if (used.insert({u, v}).second) g.add_edge(u, v);
    }
  }
  return g;
}

WGraph gen_barbell(VertexId n) {
  REPRO_CHECK(n >= 4);
  const VertexId half = n / 2;
  WGraph g;
  g.n = n;
  for (VertexId u = 0; u < half; ++u)
    for (VertexId v = u + 1; v < half; ++v) g.add_edge(u, v);
  for (VertexId u = half; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) g.add_edge(u, v);
  g.add_edge(0, half);
  return g;
}

WGraph gen_cycle(VertexId n) {
  REPRO_CHECK(n >= 3);
  WGraph g;
  g.n = n;
  for (VertexId i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

WGraph gen_two_cycles(VertexId n) {
  REPRO_CHECK(n >= 6);
  const VertexId half = n / 2;
  WGraph g;
  g.n = half * 2;
  for (VertexId i = 0; i < half; ++i) g.add_edge(i, (i + 1) % half);
  for (VertexId i = 0; i < half; ++i)
    g.add_edge(half + i, half + (i + 1) % half);
  return g;
}

WGraph gen_grid(VertexId rows, VertexId cols) {
  REPRO_CHECK(rows >= 1 && cols >= 1);
  WGraph g;
  g.n = rows * cols;
  auto id = [&](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

WGraph gen_complete(VertexId n) {
  REPRO_CHECK(n >= 2);
  WGraph g;
  g.n = n;
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

WGraph gen_path(VertexId n) {
  REPRO_CHECK(n >= 1);
  WGraph g;
  g.n = n;
  for (VertexId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

WGraph gen_star(VertexId n) {
  REPRO_CHECK(n >= 1);
  WGraph g;
  g.n = n;
  for (VertexId i = 1; i < n; ++i) g.add_edge(0, i);
  return g;
}

WGraph gen_random_tree(VertexId n, std::uint64_t seed) {
  REPRO_CHECK(n >= 1);
  WGraph g;
  g.n = n;
  Rng rng(seed);
  for (VertexId i = 1; i < n; ++i) {
    g.add_edge(i, static_cast<VertexId>(rng.next_below(i)));
  }
  return g;
}

WGraph gen_caterpillar(VertexId spine, VertexId legs) {
  REPRO_CHECK(spine >= 1);
  WGraph g;
  g.n = spine * (1 + legs);
  for (VertexId i = 0; i + 1 < spine; ++i) g.add_edge(i, i + 1);
  VertexId next = spine;
  for (VertexId i = 0; i < spine; ++i)
    for (VertexId j = 0; j < legs; ++j) g.add_edge(i, next++);
  return g;
}

WGraph gen_broom(VertexId n) {
  REPRO_CHECK(n >= 3);
  const VertexId handle = n / 2;
  WGraph g;
  g.n = n;
  for (VertexId i = 0; i + 1 < handle; ++i) g.add_edge(i, i + 1);
  for (VertexId i = handle; i < n; ++i) g.add_edge(handle - 1, i);
  return g;
}

WGraph gen_binary_tree(VertexId n) {
  REPRO_CHECK(n >= 1);
  WGraph g;
  g.n = n;
  for (VertexId i = 1; i < n; ++i) g.add_edge(i, (i - 1) / 2);
  return g;
}

WGraph gen_preferential_attachment(VertexId n, VertexId d, std::uint64_t seed) {
  REPRO_CHECK(n >= d + 1 && d >= 1);
  WGraph g;
  g.n = n;
  Rng rng(seed);
  // Endpoint pool: each insertion makes future attachment proportional to
  // degree (the classic Barabási–Albert trick).
  std::vector<VertexId> pool;
  for (VertexId v = 0; v <= d; ++v)
    for (VertexId u = 0; u < v; ++u) {
      g.add_edge(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  for (VertexId v = d + 1; v < n; ++v) {
    std::set<VertexId> targets;
    while (targets.size() < d) {
      targets.insert(pool[rng.next_below(pool.size())]);
    }
    for (VertexId t : targets) {
      g.add_edge(v, t);
      pool.push_back(v);
      pool.push_back(t);
    }
  }
  return g;
}

}  // namespace ampccut
