#include "transport/wire.h"

namespace ampccut::transport {

namespace {

bool valid_kind(std::uint8_t k) {
  return k >= static_cast<std::uint8_t>(FrameKind::kPutBatch) &&
         k <= static_cast<std::uint8_t>(FrameKind::kReadReply);
}

}  // namespace

void append_frame(std::vector<std::uint8_t>* out, FrameKind kind,
                  const std::uint8_t* payload, std::size_t size) {
  if (size > kMaxFramePayload) {
    throw TransportError("wire: frame payload of " + std::to_string(size) +
                         " bytes exceeds the " +
                         std::to_string(kMaxFramePayload) + "-byte ceiling");
  }
  append_u32(out, static_cast<std::uint32_t>(size));
  append_u8(out, static_cast<std::uint8_t>(kind));
  append_bytes(out, payload, size);
}

std::size_t decode_frame(const std::uint8_t* data, std::size_t size,
                         FrameView* out) {
  if (size < kFrameHeaderBytes) return 0;
  std::uint32_t len;
  std::memcpy(&len, data, sizeof(len));
  if (len > kMaxFramePayload) {
    throw TransportError("wire: frame declares " + std::to_string(len) +
                         "-byte payload above the " +
                         std::to_string(kMaxFramePayload) + "-byte ceiling");
  }
  const std::uint8_t kind = data[4];
  if (!valid_kind(kind)) {
    throw TransportError("wire: unknown frame kind " + std::to_string(kind));
  }
  if (size - kFrameHeaderBytes < len) return 0;  // wait for the rest
  out->kind = static_cast<FrameKind>(kind);
  out->payload = data + kFrameHeaderBytes;
  out->size = len;
  return kFrameHeaderBytes + len;
}

void append_put_batch_prefix(std::vector<std::uint8_t>* out,
                             std::uint32_t table, std::uint64_t machine,
                             std::uint32_t count, std::uint8_t key_size,
                             std::uint8_t value_size) {
  append_u32(out, table);
  append_u64(out, machine);
  append_u32(out, count);
  append_u8(out, key_size);
  append_u8(out, value_size);
  append_u16(out, 0);  // reserved
}

PutBatch decode_put_batch(const std::uint8_t* payload, std::size_t size) {
  WireCursor c(payload, size);
  PutBatch b;
  b.table = c.u32();
  b.machine = c.u64();
  b.count = c.u32();
  b.key_size = c.u8();
  b.value_size = c.u8();
  (void)c.u16();  // reserved
  if (b.key_size + b.value_size == 0 && b.count != 0) {
    throw TransportError("wire: put batch with zero-size entries");
  }
  b.entries = c.bytes(b.entry_bytes());
  c.expect_exhausted("put batch");
  return b;
}

void append_machine_done(std::vector<std::uint8_t>* out,
                         const MachineDone& d) {
  append_u64(out, d.machine);
  append_u64(out, d.reads);
  append_u64(out, d.writes);
  append_u64(out, d.faults_delta);
}

MachineDone decode_machine_done(const std::uint8_t* payload,
                                std::size_t size) {
  WireCursor c(payload, size);
  MachineDone d;
  d.machine = c.u64();
  d.reads = c.u64();
  d.writes = c.u64();
  d.faults_delta = c.u64();
  c.expect_exhausted("machine-done");
  return d;
}

void append_driver_blob(std::vector<std::uint8_t>* out, std::uint64_t machine,
                        const std::uint8_t* data, std::uint64_t size) {
  append_u64(out, machine);
  append_u64(out, size);
  append_bytes(out, data, static_cast<std::size_t>(size));
}

DriverBlob decode_driver_blob(const std::uint8_t* payload, std::size_t size) {
  WireCursor c(payload, size);
  DriverBlob b;
  b.machine = c.u64();
  b.size = c.u64();
  b.data = c.bytes(static_cast<std::size_t>(b.size));
  c.expect_exhausted("driver blob");
  return b;
}

void append_round_barrier(std::vector<std::uint8_t>* out,
                          const RoundBarrier& b) {
  append_u64(out, b.worker);
  append_u64(out, b.machines_run);
}

RoundBarrier decode_round_barrier(const std::uint8_t* payload,
                                  std::size_t size) {
  WireCursor c(payload, size);
  RoundBarrier b;
  b.worker = c.u64();
  b.machines_run = c.u64();
  c.expect_exhausted("round barrier");
  return b;
}

void append_worker_error(std::vector<std::uint8_t>* out,
                         const WorkerError& e) {
  append_u64(out, e.machine);
  append_u64(out, e.faults_delta);
  append_u32(out, e.code);
  append_u32(out, static_cast<std::uint32_t>(e.message.size()));
  append_bytes(out, e.message.data(), e.message.size());
}

WorkerError decode_worker_error(const std::uint8_t* payload,
                                std::size_t size) {
  WireCursor c(payload, size);
  WorkerError e;
  e.machine = c.u64();
  e.faults_delta = c.u64();
  e.code = c.u32();
  const std::uint32_t msg_len = c.u32();
  const std::uint8_t* msg = c.bytes(msg_len);
  e.message.assign(reinterpret_cast<const char*>(msg), msg_len);
  c.expect_exhausted("worker error");
  return e;
}

void append_read_request(std::vector<std::uint8_t>* out, std::uint32_t table,
                         std::uint64_t machine, const std::uint8_t* key,
                         std::uint32_t key_size) {
  append_u32(out, table);
  append_u64(out, machine);
  append_u32(out, key_size);
  append_bytes(out, key, key_size);
}

ReadRequest decode_read_request(const std::uint8_t* payload,
                                std::size_t size) {
  WireCursor c(payload, size);
  ReadRequest r;
  r.table = c.u32();
  r.machine = c.u64();
  r.key_size = c.u32();
  r.key = c.bytes(r.key_size);
  c.expect_exhausted("read request");
  return r;
}

void append_read_reply(std::vector<std::uint8_t>* out, bool found,
                       const std::uint8_t* value, std::uint32_t value_size) {
  append_u32(out, found ? 1 : 0);
  append_u32(out, value_size);
  append_bytes(out, value, value_size);
}

ReadReply decode_read_reply(const std::uint8_t* payload, std::size_t size) {
  WireCursor c(payload, size);
  ReadReply r;
  r.found = c.u32() != 0;
  r.value_size = c.u32();
  r.value = c.bytes(r.value_size);
  c.expect_exhausted("read reply");
  return r;
}

}  // namespace ampccut::transport
