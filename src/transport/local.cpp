// LocalTransport: the original in-process execution strategy, now behind the
// Transport seam. One thread-pool task per virtual machine; staged writes
// land directly in the tables' per-machine buffers, so encode/stage/wire
// callbacks are never touched. The wrapper ordering — context install, entry
// faults, body, failure count, traffic record — reproduces the pre-seam
// Runtime::round() machine lambda exactly, which is the "zero behavior
// change" half of the transport invariant.
#include "transport/transport.h"

#include "support/errors.h"

namespace ampccut::transport {

namespace {

class LocalTransport final : public Transport {
 public:
  explicit LocalTransport(ThreadPool& pool) : pool_(pool) {}

  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kLocal;
  }

  void run_round(const RoundWork& work) override {
    pool_.parallel_for(work.num_machines, [&](std::size_t machine) {
      // run_machine installs the context, fires the entry fault hooks, runs
      // the body and counts a MachineFailedError before rethrowing;
      // record() then folds traffic and enforces the budget on this same
      // thread — the exact pre-seam program points, so fault schedules,
      // budget escalation and metrics are unchanged.
      const MachineTraffic traffic = work.run_machine(machine);
      work.record(machine, traffic);
    });
  }

 private:
  ThreadPool& pool_;
};

}  // namespace

std::optional<TransportKind> parse_transport_kind(std::string_view name) {
  if (name == "local") return TransportKind::kLocal;
  if (name == "shm") return TransportKind::kShm;
  return std::nullopt;
}

const char* transport_kind_name(TransportKind kind) {
  return kind == TransportKind::kShm ? "shm" : "local";
}

std::unique_ptr<Transport> make_shm_transport(std::uint32_t num_processes);

std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          std::uint32_t num_processes,
                                          ThreadPool* pool) {
  if (kind == TransportKind::kShm) return make_shm_transport(num_processes);
  if (pool == nullptr) {
    throw TransportError("LocalTransport requires a thread pool");
  }
  return std::make_unique<LocalTransport>(*pool);
}

}  // namespace ampccut::transport
