// The transport seam between the AMPC runtime's round barrier and the
// machinery that actually executes virtual machines and moves their staged
// DHT writes (DESIGN.md "Transport layer & multi-process execution").
//
// Runtime::round() builds one RoundWork — a bundle of callbacks that close
// over the runtime's tables, metrics and fault hooks — and hands it to its
// Transport. Two implementations:
//
//   LocalTransport (local.cpp)  the original single-process execution: one
//       thread-pool task per virtual machine, staged writes land directly in
//       the tables' per-machine staging buffers. Zero behavior change from
//       the pre-seam runtime — same thread, same program point for every
//       fault hook, traffic fold and budget check.
//
//   ShmTransport (shm.cpp)  machine-per-process execution: a fork-based
//       launcher runs contiguous machine ranges in worker processes, whose
//       staged writes travel back to the driver as length-prefixed wire
//       frames (wire.h) over POSIX shared-memory rings. The driver
//       reconstructs the same per-machine staging buffers and the barrier
//       commit that follows is the identical two-phase machine-id-ordered
//       commit — which is why every committed value is bit-identical to
//       LocalTransport by construction. Forking (rather than exec'ing) the
//       workers is load-bearing twice over: round bodies are C++ closures
//       that cannot cross an exec boundary, and the child's copy-on-write
//       snapshot of the committed tables IS the round's frozen H_{i-1}.
//
// The seam deliberately speaks only in callbacks and opaque table indices:
// this library depends on cut_support alone, and the runtime's templates
// (Table<K,V>, DenseTable<V>) stay on the other side of the boundary.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/threadpool.h"
#include "transport/wire.h"

namespace ampccut::transport {

enum class TransportKind : std::uint8_t {
  kLocal = 0,  // in-process: machines are thread-pool tasks
  kShm = 1,    // machine-per-process over shared-memory rings
};

// "local" / "shm" (Config::transport, bench --transport flags).
std::optional<TransportKind> parse_transport_kind(std::string_view name);
const char* transport_kind_name(TransportKind kind);

struct MachineTraffic {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

// One round's execution contract, built fresh by Runtime::round() per
// attempt. All callbacks are non-null when handed to run_round().
struct RoundWork {
  const char* label = "";
  std::uint64_t round_index = 0;
  std::size_t num_machines = 0;
  std::size_t num_tables = 0;

  // Execute machine m's body with its MachineContext installed (entry fault
  // hooks included). Throws MachineFailedError on machine failure. Under
  // ShmTransport this runs inside the forked worker process.
  std::function<MachineTraffic(std::size_t)> run_machine;

  // Fold machine m's traffic into the round accumulators and enforce the
  // local-memory budget; throws BudgetExceededError under strict budget.
  // LocalTransport calls it on the machine's own thread immediately after
  // run_machine (the pre-seam program point); ShmTransport calls it on the
  // driver as the machine's done-frame drains.
  std::function<void(std::size_t, const MachineTraffic&)> record;

  // Count one machine failure (driver side under ShmTransport — the worker
  // that counted it in its own address space is dead).
  std::function<void()> on_machine_failure;

  // Serialize table `t`'s staged writes from machine m as complete
  // kPutBatch frames appended to `out` (combiner-aggregated for commutative
  // merge policies); the staged buffer is left in place — the worker
  // process exits right after encoding. Returns frames appended.
  std::function<std::uint64_t(std::size_t t, std::size_t m,
                              std::vector<std::uint8_t>* out)>
      encode_machine;

  // Apply one decoded kPutBatch on the driver: reconstruct machine
  // b.machine's staging entries for table b.table.
  std::function<void(const PutBatch& b)> stage_batch;

  // Driver-return channel (MachineContext::driver_return): move machine m's
  // blob out of the worker-side slot / store it into the driver-side slot.
  std::function<std::vector<std::uint8_t>(std::size_t m)> take_blob;
  std::function<void(std::size_t m, const std::uint8_t* data,
                     std::size_t size)>
      put_blob;

  // Metrics::faults_injected bridge: a worker reports the delta its
  // machines injected (its own counter dies with it); the driver re-applies.
  std::function<std::uint64_t()> faults_injected_now;
  std::function<void(std::uint64_t)> add_faults_injected;

  // Fold wire traffic (Metrics::wire_bytes_sent / flush_batches). Called
  // once per successful round attempt by ShmTransport; never by Local.
  std::function<void(std::uint64_t bytes, std::uint64_t batches)> add_wire;

  // Mark the runtime as executing inside a forked worker (arms the guard
  // against cross-process table registration mid-round).
  std::function<void()> enter_worker;
};

class Transport {
 public:
  virtual ~Transport() = default;
  [[nodiscard]] virtual TransportKind kind() const = 0;
  // Runs every machine and delivers all staged writes into the tables'
  // per-machine buffers; the caller commits at the barrier. Throws
  // MachineFailedError (retryable), BudgetExceededError (strict budget) or
  // TransportError (protocol/launcher failure).
  virtual void run_round(const RoundWork& work) = 0;
};

// Factory (Config::transport): `pool` backs LocalTransport's machine
// fan-out; `num_processes` caps ShmTransport's worker count (>= 1).
std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          std::uint32_t num_processes,
                                          ThreadPool* pool);

// ---------------------------------------------------------------------------
// POSIX shared-memory plumbing, exposed so tools/ampc_worker (the exec'd
// wire-protocol harness) and the transport tests can speak the same ring
// format as the fork launcher. Implemented in shm.cpp.

// A shm_open + mmap'd segment. Move-only; unmaps on destruction. The name
// can be unlinked as soon as every process that needs the segment has
// mapped (fork launcher) or opened (exec'd worker) it.
class ShmRegion {
 public:
  // Creates a fresh segment under a generated unique name.
  static ShmRegion create(std::size_t size);
  // Attaches to an existing segment by name (exec'd workers).
  static ShmRegion open_named(const std::string& name, std::size_t size);

  ShmRegion() = default;
  ShmRegion(ShmRegion&& other) noexcept;
  ShmRegion& operator=(ShmRegion&& other) noexcept;
  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;
  ~ShmRegion();

  [[nodiscard]] void* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool valid() const { return data_ != nullptr; }

  // Removes the name from the shm namespace; existing mappings live on.
  void unlink();

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
  std::string name_;
  bool owns_name_ = false;  // created (not opened) and not yet unlinked
};

// Single-producer single-consumer byte ring over a shared-memory segment.
// The producer (worker) appends whole frames; the consumer (driver) drains
// concurrently, so a ring smaller than a round's total traffic never
// deadlocks — the producer spins (bounded, with yields) only while the ring
// is momentarily full.
class ShmRing {
 public:
  // Lays a ring over `region` (init=true zeroes the cursors — exactly one
  // side initializes, before the other attaches).
  ShmRing(void* mem, std::size_t bytes, bool init);

  // Smallest region that gives the ring `capacity` usable bytes.
  static std::size_t region_bytes(std::size_t capacity);

  // Producer: append `n` bytes, spinning while full. Throws TransportError
  // if the consumer stops draining for implausibly long (dead driver).
  void write(const std::uint8_t* data, std::size_t n);

  // Consumer: move every currently-available byte to the back of `out`.
  // Returns the number of bytes drained (0 = nothing new).
  std::size_t read_some(std::vector<std::uint8_t>* out);

  // Driver-side reset between rounds (no producer may be alive).
  void reset();

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Header {
    std::atomic<std::uint64_t> head;  // consumer cursor (bytes read)
    std::atomic<std::uint64_t> tail;  // producer cursor (bytes written)
  };
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
                "shared-memory ring cursors must be lock-free");

  Header* header_;
  std::uint8_t* buf_;
  std::size_t capacity_;
};

}  // namespace ampccut::transport
