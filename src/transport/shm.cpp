// ShmTransport: machine-per-process execution over POSIX shared-memory
// rings (DESIGN.md "Transport layer & multi-process execution").
//
// Topology per round attempt:
//
//   driver ── fork ──> worker 0  runs machines [0, c)      ─┐
//          ── fork ──> worker 1  runs machines [c, 2c)      ├─ SPSC ring each
//          ── ...                                           ┘
//
// Each worker executes its contiguous machine range *sequentially* (the
// model's parallelism is across processes now, not threads — a forked child
// of a multi-threaded parent must never touch the thread pool), staging
// puts into its copy-on-write table buffers exactly as LocalTransport
// would. At machine end the staged writes are combiner-aggregated and
// serialized as kPutBatch frames, followed by any kDriverBlob and the
// machine's kMachineDone, and flushed to the worker's ring. The driver
// drains all rings concurrently with execution — a ring smaller than the
// round's traffic therefore never deadlocks — and reconstructs each
// machine's staging buffers via RoundWork::stage_batch. The barrier commit
// that follows in the runtime is the unchanged two-phase machine-id-ordered
// commit, so committed contents are bit-identical to LocalTransport no
// matter how worker frames interleaved: entries land in per-machine buffers
// (one producer each, in program order) and commit order is sealed by
// machine id, not arrival.
//
// Failure mapping: a machine failure inside a worker — injected crash, body
// throw — emits a kWorkerError frame and then kills the worker process for
// real (_exit with a distinct code). The driver counts the failure, folds
// the worker's reported fault delta, reaps every remaining worker (they run
// to their own barriers, mirroring parallel_for's run-to-barrier
// semantics), and rethrows MachineFailedError — handing recovery to the
// round barrier's existing discard-and-replay path, which re-forks a fresh
// attempt against the untouched committed state. A worker that dies
// without a frame (segfault, kill -9) surfaces the same way, with its wait
// status in the message.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>

#include <fcntl.h>
#include <sched.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <exception>
#include <new>

#include "support/bits.h"
#include "support/errors.h"
#include "transport/transport.h"

namespace ampccut::transport {

namespace {

// Ring sized to hold several put-batch chunks; the concurrent drain keeps it
// from ever needing to hold a whole round.
constexpr std::size_t kRingCapacity = std::size_t{1} << 20;
// Producer-side full-ring spin budget (sched_yield per iteration). The
// consumer drains every ~100us, so hitting this means the driver is gone.
constexpr std::uint64_t kMaxWriteSpins = std::uint64_t{1} << 24;
constexpr std::size_t kRingHeaderBytes = 128;  // cursor cacheline separation

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

// --- ShmRegion --------------------------------------------------------------

ShmRegion ShmRegion::create(std::size_t size) {
  // Unique-name generation: pid + a process-local counter. No randomness —
  // collisions are impossible within a process and O_EXCL rejects the
  // stale-name case across processes (retry with the next counter value).
  static std::atomic<std::uint64_t> counter{0};
  for (int tries = 0; tries < 64; ++tries) {
    const std::uint64_t c = counter.fetch_add(1, std::memory_order_relaxed);
    std::string name = "/ampccut-" + std::to_string(::getpid()) + "-" +
                       std::to_string(c);
    const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) {
      if (errno == EEXIST) continue;
      throw TransportError(errno_text("shm_open failed"));
    }
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      const std::string err = errno_text("ftruncate on shm segment failed");
      ::close(fd);
      ::shm_unlink(name.c_str());
      throw TransportError(err);
    }
    void* mem = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                       0);
    ::close(fd);
    if (mem == MAP_FAILED) {
      ::shm_unlink(name.c_str());
      throw TransportError(errno_text("mmap of shm segment failed"));
    }
    ShmRegion r;
    r.data_ = mem;
    r.size_ = size;
    r.name_ = std::move(name);
    r.owns_name_ = true;
    return r;
  }
  throw TransportError("shm_open: could not find a free segment name");
}

ShmRegion ShmRegion::open_named(const std::string& name, std::size_t size) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) {
    throw TransportError(errno_text("shm_open of '" + name + "' failed"));
  }
  void* mem =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (mem == MAP_FAILED) {
    throw TransportError(errno_text("mmap of '" + name + "' failed"));
  }
  ShmRegion r;
  r.data_ = mem;
  r.size_ = size;
  r.name_ = name;
  r.owns_name_ = false;
  return r;
}

ShmRegion::ShmRegion(ShmRegion&& other) noexcept
    : data_(other.data_), size_(other.size_), name_(std::move(other.name_)),
      owns_name_(other.owns_name_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.owns_name_ = false;
}

ShmRegion& ShmRegion::operator=(ShmRegion&& other) noexcept {
  if (this != &other) {
    this->~ShmRegion();
    new (this) ShmRegion(std::move(other));
  }
  return *this;
}

ShmRegion::~ShmRegion() {
  if (data_ != nullptr) ::munmap(data_, size_);
  if (owns_name_) ::shm_unlink(name_.c_str());
}

void ShmRegion::unlink() {
  if (owns_name_) {
    ::shm_unlink(name_.c_str());
    owns_name_ = false;
  }
}

// --- ShmRing ----------------------------------------------------------------

std::size_t ShmRing::region_bytes(std::size_t capacity) {
  return kRingHeaderBytes + capacity;
}

ShmRing::ShmRing(void* mem, std::size_t bytes, bool init)
    : header_(static_cast<Header*>(mem)),
      buf_(static_cast<std::uint8_t*>(mem) + kRingHeaderBytes),
      capacity_(bytes - kRingHeaderBytes) {
  if (bytes <= kRingHeaderBytes) {
    throw TransportError("shm ring region too small for its header");
  }
  if (init) {
    header_->head.store(0, std::memory_order_relaxed);
    header_->tail.store(0, std::memory_order_release);
  }
}

void ShmRing::write(const std::uint8_t* data, std::size_t n) {
  if (n > capacity_) {
    throw TransportError("shm ring write of " + std::to_string(n) +
                         " bytes exceeds ring capacity " +
                         std::to_string(capacity_));
  }
  std::size_t written = 0;
  std::uint64_t spins = 0;
  while (written < n) {
    const std::uint64_t head = header_->head.load(std::memory_order_acquire);
    const std::uint64_t tail = header_->tail.load(std::memory_order_relaxed);
    const std::size_t free = capacity_ - static_cast<std::size_t>(tail - head);
    if (free == 0) {
      if (++spins > kMaxWriteSpins) {
        throw TransportError(
            "shm ring stayed full too long — consumer stopped draining");
      }
      ::sched_yield();
      continue;
    }
    spins = 0;
    const std::size_t chunk = std::min(free, n - written);
    const std::size_t pos = static_cast<std::size_t>(tail % capacity_);
    const std::size_t first = std::min(chunk, capacity_ - pos);
    std::memcpy(buf_ + pos, data + written, first);
    std::memcpy(buf_, data + written + first, chunk - first);
    header_->tail.store(tail + chunk, std::memory_order_release);
    written += chunk;
  }
}

std::size_t ShmRing::read_some(std::vector<std::uint8_t>* out) {
  const std::uint64_t head = header_->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = header_->tail.load(std::memory_order_acquire);
  const std::size_t avail = static_cast<std::size_t>(tail - head);
  if (avail == 0) return 0;
  const std::size_t pos = static_cast<std::size_t>(head % capacity_);
  const std::size_t first = std::min(avail, capacity_ - pos);
  const std::size_t at = out->size();
  out->resize(at + avail);
  std::memcpy(out->data() + at, buf_ + pos, first);
  std::memcpy(out->data() + at + first, buf_, avail - first);
  header_->head.store(head + avail, std::memory_order_release);
  return avail;
}

void ShmRing::reset() {
  header_->head.store(0, std::memory_order_relaxed);
  header_->tail.store(0, std::memory_order_release);
}

// --- ShmTransport -----------------------------------------------------------

namespace {

class ShmTransport final : public Transport {
 public:
  explicit ShmTransport(std::uint32_t num_processes)
      : num_processes_(std::max<std::uint32_t>(1, num_processes)) {}

  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kShm;
  }

  void run_round(const RoundWork& work) override {
    if (work.num_machines == 0) return;
    const std::size_t procs = static_cast<std::size_t>(
        std::min<std::uint64_t>(num_processes_, work.num_machines));
    const std::size_t chunk = ceil_div(work.num_machines, procs);
    ensure_rings(procs);

    struct Worker {
      pid_t pid = -1;
      ShmRing* ring = nullptr;
      std::vector<std::uint8_t> buf;  // undecoded stream prefix
      std::size_t decoded = 0;        // bytes of buf already consumed
      std::size_t first_machine = 0;
      std::size_t expected = 0;  // machines in this worker's range
      bool barrier = false;
      bool reaped = false;
      int status = 0;
      bool error_frame = false;
    };
    std::vector<Worker> workers;

    // Rings must be quiescent before children attach as producers.
    for (std::size_t w = 0; w * chunk < work.num_machines; ++w) {
      rings_[w].reset();
    }
    // Child processes inherit stdio buffers; flush so error prints cannot
    // duplicate buffered driver output.
    std::fflush(stdout);
    std::fflush(stderr);

    for (std::size_t w = 0; w * chunk < work.num_machines; ++w) {
      const std::size_t lo = w * chunk;
      const std::size_t hi = std::min(work.num_machines, lo + chunk);
      const pid_t pid = ::fork();
      if (pid < 0) {
        const std::string err = errno_text("fork of shm worker failed");
        for (Worker& alive : workers) {
          ::kill(alive.pid, SIGKILL);
          ::waitpid(alive.pid, nullptr, 0);
        }
        throw TransportError(err);
      }
      if (pid == 0) {
        run_worker(work, rings_[w], w, lo, hi);  // never returns
      }
      Worker wk;
      wk.pid = pid;
      wk.ring = &rings_[w];
      wk.first_machine = lo;
      wk.expected = hi - lo;
      workers.push_back(std::move(wk));
    }

    drain(work, &workers);
  }

 private:
  // ---- Worker (forked child) side. Single-threaded by construction: it
  // must never touch the thread pool or any driver mutex — malloc, the COW
  // tables, splitmix64 and this ring are its whole world. Exits only via
  // _exit (no static destructors, no stdio flush of inherited buffers).
  [[noreturn]] void run_worker(const RoundWork& work, ShmRing& ring,
                               std::size_t worker_index, std::size_t lo,
                               std::size_t hi) {
    work.enter_worker();
    std::vector<std::uint8_t> frames;
    std::uint64_t faults_base = work.faults_injected_now();
    std::size_t machine = lo;
    int exit_code = 0;
    try {
      for (; machine < hi; ++machine) {
        const MachineTraffic traffic = work.run_machine(machine);
        frames.clear();
        for (std::size_t t = 0; t < work.num_tables; ++t) {
          (void)work.encode_machine(t, machine, &frames);
        }
        const std::vector<std::uint8_t> blob = work.take_blob(machine);
        if (!blob.empty()) {
          std::vector<std::uint8_t> payload;
          append_driver_blob(&payload, machine, blob.data(), blob.size());
          append_frame(&frames, FrameKind::kDriverBlob, payload.data(),
                       payload.size());
        }
        const std::uint64_t faults_now = work.faults_injected_now();
        MachineDone done;
        done.machine = machine;
        done.reads = traffic.reads;
        done.writes = traffic.writes;
        done.faults_delta = faults_now - faults_base;
        faults_base = faults_now;
        std::vector<std::uint8_t> payload;
        append_machine_done(&payload, done);
        append_frame(&frames, FrameKind::kMachineDone, payload.data(),
                     payload.size());
        ring.write(frames.data(), frames.size());
      }
      frames.clear();
      std::vector<std::uint8_t> payload;
      append_round_barrier(&payload, {worker_index, hi - lo});
      append_frame(&frames, FrameKind::kRoundBarrier, payload.data(),
                   payload.size());
      ring.write(frames.data(), frames.size());
      ::_exit(0);
    } catch (const MachineFailedError& e) {
      exit_code = kWorkerExitMachineFailed;
      send_worker_error(work, ring, machine, faults_base, exit_code,
                        e.what());
    } catch (const std::exception& e) {
      exit_code = kWorkerExitInternal;
      send_worker_error(work, ring, machine, faults_base, exit_code,
                        e.what());
    } catch (...) {
      exit_code = kWorkerExitInternal;
      send_worker_error(work, ring, machine, faults_base, exit_code,
                        "unknown exception in worker");
    }
    ::_exit(exit_code);
  }

  static void send_worker_error(const RoundWork& work, ShmRing& ring,
                                std::size_t machine,
                                std::uint64_t faults_base, int code,
                                const char* what) {
    try {
      WorkerError e;
      e.machine = machine;
      e.faults_delta = work.faults_injected_now() - faults_base;
      e.code = static_cast<std::uint32_t>(code);
      e.message = what;
      std::vector<std::uint8_t> payload;
      append_worker_error(&payload, e);
      std::vector<std::uint8_t> frame;
      append_frame(&frame, FrameKind::kWorkerError, payload.data(),
                   payload.size());
      ring.write(frame.data(), frame.size());
    } catch (...) {
      // The ring is wedged or the message malformed; the exit status alone
      // still tells the driver this machine range failed.
    }
  }

  // ---- Driver side: drain every ring until all workers are reaped, then
  // validate the protocol. `failed_` mode keeps draining (children must
  // reach their own barriers, as parallel_for iterations do) but stops
  // staging, recording, and blob delivery.
  template <class Worker>
  void drain(const RoundWork& work, std::vector<Worker>* workers) {
    std::uint64_t wire_bytes = 0;
    std::uint64_t flush_batches = 0;
    std::exception_ptr failure;
    std::uint64_t machine_failures = 0;

    auto handle_frame = [&](Worker& w, const FrameView& f) {
      switch (f.kind) {
        case FrameKind::kPutBatch: {
          if (failure) return;
          const PutBatch b = decode_put_batch(f.payload, f.size);
          if (b.table >= work.num_tables || b.machine >= work.num_machines) {
            throw TransportError("wire: put batch addresses table " +
                                 std::to_string(b.table) + ", machine " +
                                 std::to_string(b.machine) +
                                 " outside the round");
          }
          ++flush_batches;
          work.stage_batch(b);
          return;
        }
        case FrameKind::kDriverBlob: {
          if (failure) return;
          const DriverBlob b = decode_driver_blob(f.payload, f.size);
          if (b.machine >= work.num_machines) {
            throw TransportError("wire: driver blob for machine " +
                                 std::to_string(b.machine) +
                                 " outside the round");
          }
          work.put_blob(static_cast<std::size_t>(b.machine), b.data,
                        static_cast<std::size_t>(b.size));
          return;
        }
        case FrameKind::kMachineDone: {
          if (failure) return;
          const MachineDone d = decode_machine_done(f.payload, f.size);
          if (d.faults_delta != 0) work.add_faults_injected(d.faults_delta);
          MachineTraffic traffic;
          traffic.reads = d.reads;
          traffic.writes = d.writes;
          try {
            work.record(static_cast<std::size_t>(d.machine), traffic);
          } catch (...) {
            failure = std::current_exception();  // strict-budget escalation
          }
          return;
        }
        case FrameKind::kRoundBarrier: {
          const RoundBarrier b = decode_round_barrier(f.payload, f.size);
          if (b.machines_run != w.expected) {
            throw TransportError(
                "wire: worker barrier reports " +
                std::to_string(b.machines_run) + " machines, expected " +
                std::to_string(w.expected));
          }
          w.barrier = true;
          return;
        }
        case FrameKind::kWorkerError: {
          const WorkerError e = decode_worker_error(f.payload, f.size);
          w.error_frame = true;
          if (e.faults_delta != 0) work.add_faults_injected(e.faults_delta);
          ++machine_failures;
          work.on_machine_failure();
          if (!failure) {
            if (e.code == kWorkerExitMachineFailed) {
              failure = std::make_exception_ptr(MachineFailedError(
                  work.round_index, e.machine,
                  "worker process died: " + e.message));
            } else {
              failure = std::make_exception_ptr(TransportError(
                  "worker process failed (exit code " +
                  std::to_string(e.code) + "): " + e.message));
            }
          }
          return;
        }
        case FrameKind::kReadRequest:
        case FrameKind::kReadReply:
          throw TransportError(
              "wire: read frames are not part of the fork-launcher protocol");
      }
      throw TransportError("wire: unhandled frame kind");
    };

    auto drain_worker = [&](Worker& w) -> bool {
      bool progress = w.ring->read_some(&w.buf) > 0;
      for (;;) {
        FrameView f;
        const std::size_t used = decode_frame(w.buf.data() + w.decoded,
                                              w.buf.size() - w.decoded, &f);
        if (used == 0) break;
        wire_bytes += used;
        handle_frame(w, f);
        w.decoded += used;
        progress = true;
      }
      if (w.decoded == w.buf.size() && w.decoded != 0) {
        w.buf.clear();
        w.decoded = 0;
      }
      return progress;
    };

    auto drain_all = [&]() {
      bool progress = false;
      for (Worker& w : *workers) progress = drain_worker(w) || progress;
      return progress;
    };

    std::size_t reaped = 0;
    try {
      while (reaped < workers->size()) {
        const bool progress = drain_all();
        for (Worker& w : *workers) {
          if (w.reaped) continue;
          int status = 0;
          const pid_t got = ::waitpid(w.pid, &status, WNOHANG);
          if (got == w.pid) {
            w.reaped = true;
            w.status = status;
            ++reaped;
          } else if (got < 0 && errno != EINTR) {
            throw TransportError(errno_text("waitpid on shm worker failed"));
          }
        }
        if (!progress && reaped < workers->size()) {
          const timespec ts{0, 100'000};  // 100us
          ::nanosleep(&ts, nullptr);
        }
      }
      while (drain_all()) {
      }
    } catch (...) {
      // Protocol failure mid-drain: do not leave children writing into a
      // ring nobody reads — kill and reap them all before surfacing.
      for (Worker& w : *workers) {
        if (!w.reaped) {
          ::kill(w.pid, SIGKILL);
          ::waitpid(w.pid, nullptr, 0);
          w.reaped = true;
        }
      }
      throw;
    }

    // Post-drain protocol validation.
    for (Worker& w : *workers) {
      const int st = w.status;
      const bool exited_zero = WIFEXITED(st) && WEXITSTATUS(st) == 0;
      if (exited_zero && !w.barrier) {
        throw TransportError(
            "shm worker exited 0 without sending its round barrier");
      }
      if (!exited_zero && !w.error_frame) {
        // Died without a protocol frame: a real crash (signal, OOM kill,
        // _exit from a code path we do not own). Retryable like any other
        // machine failure — replay re-forks against untouched state.
        ++machine_failures;
        work.on_machine_failure();
        if (!failure) {
          std::string how;
          if (WIFSIGNALED(st)) {
            how = "killed by signal " + std::to_string(WTERMSIG(st));
          } else {
            how = "exit status " +
                  std::to_string(WIFEXITED(st) ? WEXITSTATUS(st) : st);
          }
          failure = std::make_exception_ptr(MachineFailedError(
              work.round_index, w.first_machine,
              "worker process for machines [" +
                  std::to_string(w.first_machine) + ", " +
                  std::to_string(w.first_machine + w.expected) + ") died (" +
                  how + ")"));
        }
      }
      if (!failure && w.buf.size() != w.decoded) {
        throw TransportError("shm worker stream ended mid-frame (" +
                             std::to_string(w.buf.size() - w.decoded) +
                             " trailing bytes)");
      }
    }
    (void)machine_failures;
    if (failure) std::rethrow_exception(failure);
    work.add_wire(wire_bytes, flush_batches);
  }

  void ensure_rings(std::size_t procs) {
    while (rings_.size() < procs) {
      ShmRegion region =
          ShmRegion::create(ShmRing::region_bytes(kRingCapacity));
      // Children inherit the mapping through fork; nobody ever needs the
      // name again, so drop it now — no stale /dev/shm entries on crash.
      region.unlink();
      rings_.emplace_back(region.data(), region.size(), /*init=*/true);
      regions_.push_back(std::move(region));
    }
  }

  std::uint32_t num_processes_;
  std::vector<ShmRegion> regions_;
  std::vector<ShmRing> rings_;  // parallel to regions_
};

}  // namespace

std::unique_ptr<Transport> make_shm_transport(std::uint32_t num_processes) {
  return std::make_unique<ShmTransport>(num_processes);
}

}  // namespace ampccut::transport
