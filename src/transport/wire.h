// Length-prefixed wire format for the cross-process AMPC transport
// (DESIGN.md "Transport layer & multi-process execution").
//
// Every message a worker process sends to the driver is one frame:
//
//   [u32 payload_len][u8 kind][payload_len bytes of payload]
//
// with all integers in host byte order — the wire never leaves one box (a
// POSIX shared-memory ring between processes of one machine), so the format
// trades portability for memcpy-speed encode/decode. Payloads are packed
// field by field (no struct punning), so the layout is identical across
// translation units regardless of padding rules.
//
// Frame kinds and payloads:
//
//   kPutBatch      u32 table  u64 machine  u32 count  u8 ksize  u8 vsize
//                  u16 reserved, then count * (ksize + vsize) bytes of
//                  key/value pairs. One machine's staged writes to one
//                  table, already combiner-aggregated for commutative merge
//                  policies (runtime.h wire_encode_machine); large batches
//                  split into multiple frames, applied in arrival order.
//   kMachineDone   u64 machine  u64 reads  u64 writes  u64 faults_delta —
//                  the machine finished; its traffic plus any slow-machine
//                  faults injected while it ran.
//   kDriverBlob    u64 machine  u64 size, then size bytes — an opaque
//                  MachineContext::driver_return payload for the driver.
//   kRoundBarrier  u64 worker  u64 machines_run — the worker completed its
//                  whole machine range and is about to exit 0.
//   kWorkerError   u64 machine  u64 faults_delta  u32 code  u32 msg_len,
//                  then msg_len bytes — sent immediately before the worker
//                  process exits non-zero (machine failure, budget, bug).
//   kReadRequest   u32 table  u64 machine  u32 ksize, then key bytes.
//   kReadReply     u32 found  u32 vsize, then value bytes.
//
// kReadRequest/kReadReply are exercised by tools/ampc_worker (the exec'd
// protocol harness): under the fork launcher adaptive reads never traverse
// the wire — the forked child reads the committed tables through its
// copy-on-write snapshot, which IS the round's frozen H_{i-1}.
//
// Malformed input (truncated buffer, unknown kind, length overflow,
// inconsistent batch sizes) throws TransportError (support/errors.h) — the
// decoder never trusts a byte it has not bounds-checked.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/errors.h"

namespace ampccut::transport {

enum class FrameKind : std::uint8_t {
  kPutBatch = 1,
  kMachineDone = 2,
  kDriverBlob = 3,
  kRoundBarrier = 4,
  kWorkerError = 5,
  kReadRequest = 6,
  kReadReply = 7,
};

// Frame header: u32 length + u8 kind.
inline constexpr std::size_t kFrameHeaderBytes = 5;
// Hard ceiling on one frame's payload. Large put batches are chunked below
// this by the encoder; the decoder rejects anything above it as corrupt
// before trusting the length to index memory.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

// Decoded view into a frame inside a caller-owned buffer (no copy).
struct FrameView {
  FrameKind kind = FrameKind::kRoundBarrier;
  const std::uint8_t* payload = nullptr;
  std::uint32_t size = 0;
};

// --- Primitive writers ------------------------------------------------------

inline void append_u8(std::vector<std::uint8_t>* out, std::uint8_t v) {
  out->push_back(v);
}
inline void append_u16(std::vector<std::uint8_t>* out, std::uint16_t v) {
  const std::size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}
inline void append_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  const std::size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}
inline void append_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  const std::size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}
inline void append_bytes(std::vector<std::uint8_t>* out, const void* data,
                         std::size_t n) {
  const std::size_t at = out->size();
  out->resize(at + n);
  if (n != 0) std::memcpy(out->data() + at, data, n);
}

// --- Bounds-checked cursor reader ------------------------------------------

class WireCursor {
 public:
  WireCursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t remaining() const { return size_ - at_; }

  std::uint8_t u8() { return *take(1); }
  std::uint16_t u16() {
    std::uint16_t v;
    std::memcpy(&v, take(sizeof(v)), sizeof(v));
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    std::memcpy(&v, take(sizeof(v)), sizeof(v));
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    std::memcpy(&v, take(sizeof(v)), sizeof(v));
    return v;
  }
  const std::uint8_t* bytes(std::size_t n) { return take(n); }

  void expect_exhausted(const char* what) const {
    if (at_ != size_) {
      throw TransportError(std::string("wire: trailing bytes after ") + what);
    }
  }

 private:
  const std::uint8_t* take(std::size_t n) {
    if (size_ - at_ < n) {
      throw TransportError("wire: truncated frame payload (needed " +
                           std::to_string(n) + " bytes, " +
                           std::to_string(size_ - at_) + " left)");
    }
    const std::uint8_t* p = data_ + at_;
    at_ += n;
    return p;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t at_ = 0;
};

// --- Frame encode / decode --------------------------------------------------

// Appends one complete frame (header + payload) to `out`.
void append_frame(std::vector<std::uint8_t>* out, FrameKind kind,
                  const std::uint8_t* payload, std::size_t size);

// Decodes the frame starting at data[0]. Returns the bytes consumed
// (header + payload) and fills `*out` with a view into `data`. Returns 0 if
// fewer than a whole frame's bytes are available (callers stream from a
// ring, so a short read means "wait for more"), but throws TransportError
// for anything structurally invalid: unknown kind, length above
// kMaxFramePayload.
std::size_t decode_frame(const std::uint8_t* data, std::size_t size,
                         FrameView* out);

// --- Typed payloads ---------------------------------------------------------

struct PutBatch {
  std::uint32_t table = 0;
  std::uint64_t machine = 0;
  std::uint32_t count = 0;
  std::uint8_t key_size = 0;
  std::uint8_t value_size = 0;
  const std::uint8_t* entries = nullptr;  // count * (key_size + value_size)

  [[nodiscard]] std::size_t entry_bytes() const {
    return static_cast<std::size_t>(count) * (key_size + value_size);
  }
};

// Fixed prefix of a kPutBatch payload (everything before the entry bytes).
inline constexpr std::size_t kPutBatchPrefixBytes = 4 + 8 + 4 + 1 + 1 + 2;

void append_put_batch_prefix(std::vector<std::uint8_t>* out,
                             std::uint32_t table, std::uint64_t machine,
                             std::uint32_t count, std::uint8_t key_size,
                             std::uint8_t value_size);
PutBatch decode_put_batch(const std::uint8_t* payload, std::size_t size);

struct MachineDone {
  std::uint64_t machine = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t faults_delta = 0;
};

void append_machine_done(std::vector<std::uint8_t>* out, const MachineDone& d);
MachineDone decode_machine_done(const std::uint8_t* payload, std::size_t size);

struct DriverBlob {
  std::uint64_t machine = 0;
  const std::uint8_t* data = nullptr;
  std::uint64_t size = 0;
};

void append_driver_blob(std::vector<std::uint8_t>* out, std::uint64_t machine,
                        const std::uint8_t* data, std::uint64_t size);
DriverBlob decode_driver_blob(const std::uint8_t* payload, std::size_t size);

struct RoundBarrier {
  std::uint64_t worker = 0;
  std::uint64_t machines_run = 0;
};

void append_round_barrier(std::vector<std::uint8_t>* out,
                          const RoundBarrier& b);
RoundBarrier decode_round_barrier(const std::uint8_t* payload,
                                  std::size_t size);

// Worker exit codes paired with kWorkerError frames. Values stay clear of
// 0 (success), 124 (timeout(1)) and shell conventions so run_benches and the
// launcher can decode a dead worker's status loudly.
inline constexpr int kWorkerExitMachineFailed = 86;  // MachineFailedError
inline constexpr int kWorkerExitBudget = 87;         // BudgetExceededError
inline constexpr int kWorkerExitInternal = 88;       // any other exception

struct WorkerError {
  std::uint64_t machine = 0;
  std::uint64_t faults_delta = 0;
  std::uint32_t code = 0;  // the exit code the worker is about to die with
  std::string message;
};

void append_worker_error(std::vector<std::uint8_t>* out, const WorkerError& e);
WorkerError decode_worker_error(const std::uint8_t* payload, std::size_t size);

struct ReadRequest {
  std::uint32_t table = 0;
  std::uint64_t machine = 0;
  const std::uint8_t* key = nullptr;
  std::uint32_t key_size = 0;
};

void append_read_request(std::vector<std::uint8_t>* out, std::uint32_t table,
                         std::uint64_t machine, const std::uint8_t* key,
                         std::uint32_t key_size);
ReadRequest decode_read_request(const std::uint8_t* payload, std::size_t size);

struct ReadReply {
  bool found = false;
  const std::uint8_t* value = nullptr;
  std::uint32_t value_size = 0;
};

void append_read_reply(std::vector<std::uint8_t>* out, bool found,
                       const std::uint8_t* value, std::uint32_t value_size);
ReadReply decode_read_reply(const std::uint8_t* payload, std::size_t size);

}  // namespace ampccut::transport
