#include "support/psort.h"

namespace ampccut::psort {

namespace {

// Minimum elements per block: below this, a block is too small for the
// per-task overhead to pay for itself.
constexpr std::size_t kGrain = 1 << 12;

// Cap on the block count. 64 blocks keep every pool width the containers
// target busy through the merge tree while bounding the slice bookkeeping;
// raising it changes no result (determinism is by fixed splits + stability),
// only constants.
constexpr std::size_t kMaxBlocks = 64;

}  // namespace

std::size_t plan_blocks(std::size_t n) {
  std::size_t blocks = 1;
  while (blocks < kMaxBlocks && blocks * kGrain < n) blocks <<= 1;
  return blocks;
}

std::size_t plan_radix_blocks(std::size_t n, std::size_t num_keys) {
  if (n < kSeqCutoff) return 1;
  std::size_t blocks = plan_blocks(n);
  // The histogram matrix is blocks x num_keys words; keep it within a small
  // constant of the O(n) payload so wide key spaces (num_keys ~ n) do not
  // blow up scratch memory. Pure function of (n, num_keys).
  while (blocks > 1 && blocks * num_keys > 4 * n) blocks >>= 1;
  return blocks;
}

}  // namespace ampccut::psort
