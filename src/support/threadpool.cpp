#include "support/threadpool.h"

#include <exception>
#include <memory>
#include <utility>

namespace ampccut {

struct ThreadPool::Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv_done;
  std::exception_ptr error;  // first exception, guarded by mu

  // Runs chunks until the index space is exhausted. Returns the number of
  // iterations executed by this participant.
  std::size_t drain(const std::function<void(std::size_t)>& fn) {
    constexpr std::size_t kChunk = 16;
    std::size_t executed = 0;
    for (;;) {
      const std::size_t begin = next.fetch_add(kChunk);
      if (begin >= count) break;
      const std::size_t end = std::min(begin + kChunk, count);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (!error) error = std::current_exception();
        }
      }
      executed += end - begin;
      const std::size_t finished = done.fetch_add(end - begin) + (end - begin);
      if (finished == count) {
        std::lock_guard<std::mutex> lock(mu);
        cv_done.notify_all();
      }
    }
    return executed;
  }
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    Work work{nullptr, nullptr};
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {
        return shutdown_ || !queue_.empty() ||
               (current_ && generation_ != seen_generation);
      });
      if (shutdown_) return;
      if (current_ && generation_ != seen_generation) {
        seen_generation = generation_;
        batch = current_;  // shared ownership keeps the batch alive past the
                           // caller's return, killing the use-after-free race
      } else {
        work = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (batch) {
      batch->drain(*batch->body);
    } else if (work.fn) {
      execute(std::move(work));
    }
  }
}

void ThreadPool::execute(Work work) {
  TaskGroup* group = work.group;
  try {
    work.fn();
  } catch (...) {
    group->record_error(std::current_exception());
  }
  // The owner may be asleep in wait() with an empty queue; completion is the
  // only event that can unblock it, so it must be broadcast. Touching mu_
  // between the decrement and the notify serializes with the waiter's
  // predicate check — without it the wakeup can land in the window between
  // the waiter reading pending_ and actually blocking, and be lost.
  if (group->pending_.fetch_sub(1) == 1) {
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_work_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (threads_.size() <= 1 || count == 1) {
    // Inline: with at most one worker the caller would drain the whole batch
    // anyway, so skip the posting/notify round trip. Same iterations, same
    // thread-visible semantics, first exception propagates identically.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->body = &body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = batch;
    ++generation_;
  }
  cv_work_.notify_all();
  batch->drain(body);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv_done.wait(lock,
                        [&] { return batch->done.load() == batch->count; });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Concurrent parallel_for calls are allowed (recursion tasks issue them
    // independently); only clear the slot if a newer batch hasn't replaced
    // this one, so that batch stays visible to late-waking workers.
    if (current_ == batch) current_.reset();
  }
  // Move the error OUT of the batch before rethrowing: workers drop their
  // shared_ptr<Batch> asynchronously after the barrier, and if the batch
  // still owned the exception_ptr, the exception object's final release
  // could run on a worker thread while the caller is still examining the
  // caught exception. Taking ownership here pins the object's entire
  // lifetime to the calling thread.
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(batch->mu);
    error = std::move(batch->error);
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool::TaskGroup::~TaskGroup() {
  // Defensive: a correctly used group was waited on already (wait() rethrows
  // task exceptions; the destructor cannot). Never destroy tasks that are
  // still running.
  if (pending_.load() != 0) wait();
}

void ThreadPool::TaskGroup::record_error(std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (!error_) error_ = std::move(e);
}

void ThreadPool::TaskGroup::run(std::function<void()> fn) {
  if (pool_.threads_.size() <= 1) {
    // Single-threaded pool: queued execution could only ever run on this
    // thread anyway; run inline and keep the error contract.
    try {
      fn();
    } catch (...) {
      record_error(std::current_exception());
    }
    return;
  }
  pending_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(pool_.mu_);
    pool_.queue_.push_back({std::move(fn), this});
  }
  pool_.cv_work_.notify_all();
}

void ThreadPool::TaskGroup::wait() {
  if (pool_.threads_.size() > 1) {
    std::unique_lock<std::mutex> lock(pool_.mu_);
    for (;;) {
      // Own completion first: once this group's tasks are done, return to
      // the caller's reduce instead of draining unrelated queued work (which
      // would also grow the help-recursion stack for no progress gain).
      if (pending_.load() == 0) break;
      if (!pool_.queue_.empty()) {
        // Help: run any queued task (ours or another group's). Progress is
        // guaranteed — a sleeping waiter implies an empty queue, so every
        // pending task is running on some thread and will settle its group.
        Work work = std::move(pool_.queue_.front());
        pool_.queue_.pop_front();
        lock.unlock();
        pool_.execute(std::move(work));
        lock.lock();
        continue;
      }
      pool_.cv_work_.wait(lock, [&] {
        return !pool_.queue_.empty() || pending_.load() == 0;
      });
    }
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    error = std::exchange(error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ampccut
