#include "support/threadpool.h"

#include <exception>
#include <memory>

namespace ampccut {

struct ThreadPool::Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv_done;
  std::exception_ptr error;  // first exception, guarded by mu

  // Runs chunks until the index space is exhausted. Returns the number of
  // iterations executed by this participant.
  std::size_t drain(const std::function<void(std::size_t)>& fn) {
    constexpr std::size_t kChunk = 16;
    std::size_t executed = 0;
    for (;;) {
      const std::size_t begin = next.fetch_add(kChunk);
      if (begin >= count) break;
      const std::size_t end = std::min(begin + kChunk, count);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (!error) error = std::current_exception();
        }
      }
      executed += end - begin;
      const std::size_t finished = done.fetch_add(end - begin) + (end - begin);
      if (finished == count) {
        std::lock_guard<std::mutex> lock(mu);
        cv_done.notify_all();
      }
    }
    return executed;
  }
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {
        return shutdown_ || (current_ && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      batch = current_;  // shared ownership keeps the batch alive past the
                         // caller's return, killing the use-after-free race
    }
    if (batch) batch->drain(*batch->body);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->body = &body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = batch;
    ++generation_;
  }
  cv_work_.notify_all();
  batch->drain(body);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv_done.wait(lock,
                        [&] { return batch->done.load() == batch->count; });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_.reset();
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ampccut
