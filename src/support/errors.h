// Typed failure taxonomy (DESIGN.md "Fault injection & round-level
// recovery").
//
// Two disjoint error surfaces:
//   * programming-invariant violations keep throwing REPRO_CHECK's
//     std::logic_error (support/check.h) — they indicate a bug and are never
//     caught by recovery code;
//   * runtime conditions — machine failures, exhausted retries, budget
//     escalation, malformed input — derive from Error below (a
//     std::runtime_error), so callers can catch exactly the class they can
//     handle: the round barrier retries MachineFailedError, the algorithm
//     layer degrades on BudgetExceededError, tools report GraphIoError.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ampccut {

// Root of the taxonomy. Catching `Error` means "any recoverable runtime
// condition"; REPRO_CHECK failures deliberately do not pass through it.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// A machine's per-round DHT traffic exceeded its O(n^eps) budget under
// Config::strict_budget (the default mode only counts the violation in
// Metrics::budget_violations). Deterministic for a given schedule, so the
// barrier never retries it — the algorithm layer degrades instead (larger
// eps => bigger machines => fewer of them).
class BudgetExceededError : public Error {
 public:
  BudgetExceededError(const std::string& label, std::uint64_t machine,
                      std::uint64_t traffic, std::uint64_t budget)
      : Error("machine budget exceeded in round '" + label + "': machine " +
              std::to_string(machine) + " moved " + std::to_string(traffic) +
              " words against a budget of " + std::to_string(budget)),
        machine_(machine),
        traffic_(traffic),
        budget_(budget) {}

  [[nodiscard]] std::uint64_t machine() const { return machine_; }
  [[nodiscard]] std::uint64_t traffic() const { return traffic_; }
  [[nodiscard]] std::uint64_t budget() const { return budget_; }

 private:
  std::uint64_t machine_;
  std::uint64_t traffic_;
  std::uint64_t budget_;
};

// A virtual machine failed mid-round — injected by a FaultPlan or thrown by
// a machine body. The runtime treats it as transient: the round's staged
// writes are discarded (committed H_{i-1} state is untouched by
// construction) and the round replays under RetryPolicy.
class MachineFailedError : public Error {
 public:
  MachineFailedError(std::uint64_t round, std::uint64_t machine,
                     const std::string& cause)
      : Error("machine " + std::to_string(machine) + " failed in round " +
              std::to_string(round) + ": " + cause),
        round_(round),
        machine_(machine) {}

  [[nodiscard]] std::uint64_t round() const { return round_; }
  [[nodiscard]] std::uint64_t machine() const { return machine_; }

 private:
  std::uint64_t round_;
  std::uint64_t machine_;
};

// A round kept failing past RetryPolicy::max_attempts. The last attempt's
// failure message rides along as the cause (which machine surfaced first is
// schedule-dependent, so only label/round/attempts are load-bearing).
class RetriesExhaustedError : public Error {
 public:
  RetriesExhaustedError(const std::string& label, std::uint64_t round,
                        std::uint32_t attempts, const std::string& cause)
      : Error("round '" + label + "' (index " + std::to_string(round) +
              ") failed all " + std::to_string(attempts) +
              " attempts: " + cause),
        round_(round),
        attempts_(attempts) {}

  [[nodiscard]] std::uint64_t round() const { return round_; }
  [[nodiscard]] std::uint32_t attempts() const { return attempts_; }

 private:
  std::uint64_t round_;
  std::uint32_t attempts_;
};

// A cut query that cannot be answered: an endpoint outside the structure's
// vertex range, or s == t (no separating cut exists). Thrown by
// GomoryHuTree::min_cut and the serving tier (src/serve/) instead of a
// REPRO_CHECK abort: query arguments arrive from callers outside the library
// (ultimately from users of a serving deployment), so a bad pair is a runtime
// condition to report, not a programming-invariant violation.
class InvalidQueryError : public Error {
 public:
  InvalidQueryError(const std::string& what, std::uint64_t s, std::uint64_t t)
      : Error("invalid cut query (" + std::to_string(s) + ", " +
              std::to_string(t) + "): " + what),
        s_(s),
        t_(t) {}

  [[nodiscard]] std::uint64_t s() const { return s_; }
  [[nodiscard]] std::uint64_t t() const { return t_; }

 private:
  std::uint64_t s_;
  std::uint64_t t_;
};

// Malformed or unreadable graph input (graph/io.h). Distinct from the
// logic_error that Graph::add_edge raises for range/self-loop violations:
// bad bytes on disk are a runtime condition, not a caller bug.
class GraphIoError : public Error {
 public:
  using Error::Error;
};

// Transport-layer failure (src/transport/): a malformed or truncated wire
// frame, a shared-memory ring that cannot be created or attached, or a
// worker process that exited outside the protocol. Machine-level failures a
// worker reports through the wire (injected crashes, body throws) are NOT
// TransportError — they surface as MachineFailedError so the round barrier's
// discard-and-replay recovery treats a dead worker process exactly like a
// dead in-process machine.
class TransportError : public Error {
 public:
  using Error::Error;
};

}  // namespace ampccut
