#include "support/bench_report.h"

#include <cstdio>

namespace ampccut::bench {

namespace {

json::Value result_to_json(const BenchResult& r) {
  json::Value o = json::Value::object();
  o["name"] = r.name;
  o["group"] = r.group;
  json::Value params = json::Value::object();
  for (const auto& [k, v] : r.params) params[k] = v;
  o["params"] = std::move(params);
  o["ns_per_op"] = r.ns_per_op;
  o["iterations"] = r.iterations;
  o["model_rounds"] = r.model_rounds;
  o["measured_rounds"] = r.measured_rounds;
  o["charged_rounds"] = r.charged_rounds;
  o["dht_read_words"] = r.dht_read_words;
  o["dht_write_words"] = r.dht_write_words;
  o["max_machine_traffic"] = r.max_machine_traffic;
  o["peak_table_words"] = r.peak_table_words;
  o["budget_violations"] = r.budget_violations;
  json::Value extra = json::Value::object();
  for (const auto& [k, v] : r.extra) extra[k] = v;
  o["extra"] = std::move(extra);
  return o;
}

// The numeric result fields, shared by writer, parser, and validator.
constexpr const char* kUintFields[] = {
    "iterations",          "model_rounds",     "measured_rounds",
    "charged_rounds",      "dht_read_words",   "dht_write_words",
    "max_machine_traffic", "peak_table_words", "budget_violations"};

std::string validate_result(const json::Value& r, const std::string& where) {
  if (!r.is_object()) return where + ": result is not an object";
  const json::Value* name = r.find("name");
  if (!name || !name->is_string() || name->as_string().empty()) {
    return where + ": missing or empty \"name\"";
  }
  const json::Value* group = r.find("group");
  if (!group || !group->is_string()) return where + ": missing \"group\"";
  const json::Value* ns = r.find("ns_per_op");
  if (!ns || !ns->is_number() || ns->as_double() < 0) {
    return where + ": missing or negative \"ns_per_op\"";
  }
  for (const char* f : kUintFields) {
    const json::Value* v = r.find(f);
    if (!v || !v->is_number()) {
      return where + ": missing numeric \"" + f + "\"";
    }
  }
  for (const char* map_field : {"params", "extra"}) {
    const json::Value* m = r.find(map_field);
    if (!m || !m->is_object()) {
      return where + ": missing object \"" + map_field + "\"";
    }
    for (const auto& [k, v] : m->as_object()) {
      if (!v.is_number()) {
        return where + ": non-numeric entry \"" + k + "\" in \"" + map_field +
               "\"";
      }
    }
  }
  return {};
}

std::string validate_suite_doc(const json::Value& doc) {
  const json::Value* suite = doc.find("suite");
  if (!suite || !suite->is_string() || suite->as_string().empty()) {
    return "missing or empty \"suite\"";
  }
  const json::Value* results = doc.find("results");
  if (!results || !results->is_array()) return "missing \"results\" array";
  for (std::size_t i = 0; i < results->as_array().size(); ++i) {
    std::string err = validate_result(
        results->as_array()[i],
        suite->as_string() + ".results[" + std::to_string(i) + "]");
    if (!err.empty()) return err;
  }
  return {};
}

}  // namespace

json::Value BenchReporter::to_json() const {
  json::Value doc = json::Value::object();
  doc["schema"] = kBenchSchema;
  doc["suite"] = suite_;
  json::Value arr = json::Value::array();
  for (const BenchResult& r : results_) arr.push_back(result_to_json(r));
  doc["results"] = std::move(arr);
  return doc;
}

bool BenchReporter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string text = to_json().dump() + "\n";
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

bool parse_suite(const json::Value& doc, std::string* suite,
                 std::vector<BenchResult>* results, std::string* error) {
  std::string err = validate_bench_json(doc);
  if (err.empty() && doc.find("suite") == nullptr) {
    err = "expected a per-suite document, got a merged trajectory";
  }
  if (!err.empty()) {
    if (error) *error = err;
    return false;
  }
  *suite = doc.find("suite")->as_string();
  results->clear();
  for (const json::Value& jr : doc.find("results")->as_array()) {
    BenchResult r;
    r.name = jr.find("name")->as_string();
    r.group = jr.find("group")->as_string();
    r.ns_per_op = jr.find("ns_per_op")->as_double();
    r.iterations = jr.find("iterations")->as_uint();
    r.model_rounds = jr.find("model_rounds")->as_uint();
    r.measured_rounds = jr.find("measured_rounds")->as_uint();
    r.charged_rounds = jr.find("charged_rounds")->as_uint();
    r.dht_read_words = jr.find("dht_read_words")->as_uint();
    r.dht_write_words = jr.find("dht_write_words")->as_uint();
    r.max_machine_traffic = jr.find("max_machine_traffic")->as_uint();
    r.peak_table_words = jr.find("peak_table_words")->as_uint();
    r.budget_violations = jr.find("budget_violations")->as_uint();
    for (const auto& [k, v] : jr.find("params")->as_object()) {
      r.params[k] = v.as_int();
    }
    for (const auto& [k, v] : jr.find("extra")->as_object()) {
      r.extra[k] = v.as_double();
    }
    results->push_back(std::move(r));
  }
  return true;
}

json::Value merge_suites(const std::vector<json::Value>& suite_docs,
                         const std::string& group) {
  json::Value out = json::Value::object();
  out["schema"] = kBenchSchema;
  out["generated_by"] = "tools/run_benches";
  out["group"] = group;
  json::Value suites = json::Value::array();
  for (const json::Value& doc : suite_docs) {
    const json::Value* results = doc.find("results");
    const json::Value* suite = doc.find("suite");
    if (!results || !suite) continue;
    json::Value filtered = json::Value::array();
    for (const json::Value& r : results->as_array()) {
      const json::Value* g = r.find("group");
      if (g && g->is_string() && g->as_string() == group) {
        filtered.push_back(r);
      }
    }
    if (filtered.as_array().empty()) continue;
    json::Value entry = json::Value::object();
    entry["suite"] = *suite;
    entry["results"] = std::move(filtered);
    suites.push_back(std::move(entry));
  }
  out["suites"] = std::move(suites);
  return out;
}

std::string validate_bench_json(const json::Value& doc) {
  if (!doc.is_object()) return "document is not an object";
  const json::Value* schema = doc.find("schema");
  if (!schema || !schema->is_string() || schema->as_string() != kBenchSchema) {
    return std::string("missing or unknown \"schema\" (want ") + kBenchSchema +
           ")";
  }
  if (doc.find("suite") != nullptr) return validate_suite_doc(doc);
  // Merged trajectory shape.
  const json::Value* group = doc.find("group");
  if (!group || !group->is_string()) return "missing \"group\"";
  const json::Value* suites = doc.find("suites");
  if (!suites || !suites->is_array()) {
    return "missing \"suite\" or \"suites\"";
  }
  for (const json::Value& s : suites->as_array()) {
    std::string err = validate_suite_doc(s);
    if (!err.empty()) return err;
    for (const json::Value& r : s.find("results")->as_array()) {
      if (r.find("group")->as_string() != group->as_string()) {
        return "result group does not match trajectory group \"" +
               group->as_string() + "\"";
      }
    }
  }
  return {};
}

}  // namespace ampccut::bench
