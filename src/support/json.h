// Minimal JSON document model used by the benchmark trajectory
// (BENCH_*.json) and its tooling: an order-preserving value type, a writer,
// and a strict recursive-descent parser. Deliberately tiny — no external
// dependency, no DOM sharing, no SAX — because the schema it carries
// (support/bench_report.h) is small and machine-written.
//
// Integers are kept exact: numbers parse to Int/Uint when they have no
// fraction/exponent and fit, Double otherwise, so round/word counters
// round-trip bit-for-bit through dump() -> parse().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace ampccut::json {

class Value;
using Array = std::vector<Value>;
// Insertion-ordered object: stable, diffable output and no hash overhead at
// this scale. Lookup is linear; documents here have < 20 keys per object.
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  Value() = default;  // null
  Value(bool b) : v_(b) {}
  Value(std::int64_t i) : v_(i) {}
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}
  Value(std::uint64_t u) : v_(u) {}
  Value(double d) : v_(d) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  static Value array() { return Value(Array{}); }
  static Value object() { return Value(Object{}); }

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  [[nodiscard]] bool is_uint() const { return std::holds_alternative<std::uint64_t>(v_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_uint() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(v_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(v_); }
  [[nodiscard]] Object& as_object() { return std::get<Object>(v_); }

  // Numeric reads with the usual widening; call only when is_number().
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;

  // Object access. operator[] inserts a null member when absent (writer
  // ergonomics); find returns nullptr when absent (reader ergonomics).
  Value& operator[](std::string_view key);
  [[nodiscard]] const Value* find(std::string_view key) const;

  void push_back(Value v) { std::get<Array>(v_).push_back(std::move(v)); }

  // Serializes with 2-space indentation when indent > 0, compact otherwise.
  [[nodiscard]] std::string dump(int indent = 2) const;

  // Strict parse of a complete document (trailing garbage is an error).
  // Returns nullopt and fills *error (if given) with "offset N: message".
  static std::optional<Value> parse(std::string_view text,
                                    std::string* error = nullptr);

 private:
  std::variant<std::monostate, bool, std::int64_t, std::uint64_t, double,
               std::string, Array, Object>
      v_;
};

}  // namespace ampccut::json
