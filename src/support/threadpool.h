// A minimal work-sharing thread pool used by the AMPC/MPC simulators and the
// parallel recursion driver.
//
// Two execution shapes coexist:
//   * parallel_for — one batch of independent iterations with a barrier at
//     the end. This mirrors the synchronous-round semantics of the models
//     (fork, block-partitioned execution, join) and is what the simulators
//     use for a round's virtual machines.
//   * TaskGroup — an explicit task API for irregular fan-out (the
//     Karger–Stein recursion tree). Tasks may submit further tasks and wait
//     on their own groups from inside a pool task: wait() *helps* — it drains
//     queued tasks while its own are outstanding — so nested submission can
//     never deadlock and idle workers steal whatever work exists, regardless
//     of which level of the recursion produced it.
//
// Determinism contract: the pool never influences results. parallel_for
// bodies write to disjoint slots; TaskGroup users store per-task results in
// pre-sized slots and reduce sequentially after wait(). Scheduling order is
// arbitrary, completion is not — see DESIGN.md "Parallel recursion
// scheduling".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ampccut {

class ThreadPool {
 public:
  // num_threads == 0 selects hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  // Runs body(i) for i in [0, count) across the pool and blocks until all
  // iterations complete. Exceptions from tasks are rethrown on the caller
  // thread (first one wins). Safe to call with count == 0, and safe to call
  // from inside a pool task or another parallel_for body: the caller always
  // participates and drains the whole batch itself if no worker is free.
  // With a single-threaded pool the batch runs inline (no posting overhead).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

  // A set of tasks submitted to the pool and awaited together. Nested use is
  // the intended pattern: a task may create its own TaskGroup, submit
  // subtasks, and wait() — the waiting thread executes queued tasks (its own
  // or anyone else's) instead of blocking, so the pool's workers are never
  // parked behind a waiting parent. Exceptions thrown by tasks are captured
  // (first one wins) and rethrown by wait().
  //
  // A TaskGroup is owned by one logical caller: run() and wait() may not be
  // invoked concurrently on the same group. wait() must be called (or the
  // group destroyed only after all its tasks finished); the destructor waits
  // defensively but swallows nothing — a pending exception terminates.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    // Submits fn to the pool. With a single-threaded pool (or none), runs fn
    // inline — same results, no queueing overhead.
    void run(std::function<void()> fn);

    // Blocks until every task submitted via run() has finished, executing
    // queued pool tasks while waiting. Rethrows the first captured exception.
    void wait();

   private:
    friend class ThreadPool;
    ThreadPool& pool_;
    std::atomic<std::size_t> pending_{0};
    std::mutex error_mu_;
    std::exception_ptr error_;  // first exception, guarded by error_mu_

    void record_error(std::exception_ptr e);
  };

  // Global pool shared by the simulators and the recursion drivers (sized to
  // hardware concurrency).
  static ThreadPool& shared();

 private:
  struct Batch;
  struct Work {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void worker_loop();
  void execute(Work work);  // runs one queued task, settles its group

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::deque<Work> queue_;          // guarded by mu_
  std::shared_ptr<Batch> current_;  // guarded by mu_
  std::uint64_t generation_ = 0;    // guarded by mu_
  bool shutdown_ = false;           // guarded by mu_
};

}  // namespace ampccut
