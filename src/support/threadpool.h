// A minimal work-sharing thread pool used by the AMPC/MPC simulators.
//
// The simulators execute one *round* at a time: a round is a batch of
// independent virtual-machine tasks with a barrier at the end. parallel_for
// provides exactly that structure (fork, block-partitioned execution, join),
// which mirrors the synchronous-round semantics of the models.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace ampccut {

class ThreadPool {
 public:
  // num_threads == 0 selects hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  // Runs body(i) for i in [0, count) across the pool and blocks until all
  // iterations complete. Exceptions from tasks are rethrown on the caller
  // thread (first one wins). Safe to call with count == 0.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

  // Global pool shared by the simulators (sized to hardware concurrency).
  static ThreadPool& shared();

 private:
  struct Batch;

  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::shared_ptr<Batch> current_;  // guarded by mu_
  std::uint64_t generation_ = 0;    // guarded by mu_
  bool shutdown_ = false;           // guarded by mu_
};

}  // namespace ampccut
