// Deterministic, splittable pseudo-random generation.
//
// All randomized algorithms in the library take an explicit seed so every
// experiment is reproducible. SplitMix64 is used for cheap stateless splitting
// (per edge / per machine substreams); Xoshiro256** is the workhorse stream
// generator. Both are public-domain algorithms (Vigna / Steele et al.).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace ampccut {

// One SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value.
// Useful as a stateless hash for deriving independent substreams.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    // Seed the four xoshiro words from splitmix64, per the author guidance.
    std::uint64_t s = seed;
    for (auto& w : state_) {
      s = splitmix64(s);
      w = s;
    }
  }

  // Derive an independent generator for substream `tag` (e.g. edge id,
  // machine id). Streams derived with different tags are de-correlated.
  [[nodiscard]] Rng split(std::uint64_t tag) const {
    return Rng(splitmix64(state_[0] ^ splitmix64(tag ^ 0xd1b54a32d192ed03ULL)));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be nonzero. Uses rejection to kill bias.
  std::uint64_t next_below(std::uint64_t bound) {
    const std::uint64_t threshold = -bound % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in (0, 1] — safe as a log() argument.
  double next_double_open() {
    return (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
  }

  // Exponential with rate `rate` (mean 1/rate). Used for Karger clocks:
  // contracting edges in increasing Exp(w_e) order picks each next edge with
  // probability proportional to its weight.
  double next_exponential(double rate) {
    return -std::log(next_double_open()) / rate;
  }

  bool next_bernoulli(double p) { return next_double() < p; }

  // UniformRandomBitGenerator interface so <algorithm> shuffles accept Rng.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ampccut
