// Deterministic parallel sort/partition primitives (DESIGN.md "Parallel sort
// & counting primitives").
//
// Three primitives, all running on a caller-supplied ThreadPool and all
// bit-identical to their sequential counterparts at every thread count:
//
//  * stable_sort_keys — stable parallel merge sort. The input is cut at
//    fixed split points derived from the input size alone (never from the
//    pool width or scheduling), blocks are pre-sorted independently, and
//    runs are merged along a fixed binary tree. Large merges are themselves
//    partitioned at fixed *output* positions via a stable co-rank search, so
//    every level is fully parallel. A stable sort's output is unique for a
//    given strict weak order, so every schedule — and the sequential
//    std::stable_sort fallback — produces the same bytes.
//  * radix_rank — stable parallel counting sort ("rank by bounded integer
//    key"): per-block histograms, one key-major offset scan, per-block
//    stable scatter. Optionally reports the per-key group offsets, which is
//    what callers grouping items by key (singleton_interval) need anyway.
//  * exclusive_scan — parallel exclusive prefix sum over unsigned integers
//    (block sums, sequential block-sum scan, parallel rewrite). Unsigned
//    addition is associative mod 2^w, so the parallel decomposition is
//    bit-identical to the sequential running sum.
//
// Sequential fallback: pool == nullptr, a 1-thread pool, or inputs below
// kSeqCutoff run the plain sequential algorithm inline on the caller —
// the same contract as ThreadPool::parallel_for. The primitives may be
// called from inside pool tasks (nested parallel_for is part of the pool's
// contract); they never take locks of their own.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "support/check.h"
#include "support/threadpool.h"

namespace ampccut::psort {

// Inputs below this size always take the sequential path: at ~8k elements
// the parallel_for posting overhead is on the order of the sort itself.
inline constexpr std::size_t kSeqCutoff = 1 << 13;

// Number of blocks the primitives cut an input of n elements into. A pure
// function of n (power of two, capped), NEVER of the pool width: the block
// structure — and with it every intermediate buffer — is identical no
// matter how many threads execute it.
std::size_t plan_blocks(std::size_t n);

// Blocks for a counting pass over n items with `num_keys` distinct keys.
// Pure function of (n, num_keys): shrinks the block count when the
// per-block histogram matrix (blocks x num_keys) would dominate memory.
std::size_t plan_radix_blocks(std::size_t n, std::size_t num_keys);

// Boundary `part` of a balanced split of [0, n) into `parts` pieces
// (piece sizes differ by at most one). split_point(n, parts, 0) == 0 and
// split_point(n, parts, parts) == n.
inline std::size_t split_point(std::size_t n, std::size_t parts,
                               std::size_t part) {
  return n / parts * part + std::min(part, n % parts);
}

namespace detail {

// Stable co-rank: for output position k of merging sorted runs a[0..la) and
// b[0..lb) with ties taken from `a` first (the std::merge convention),
// returns how many elements of `a` land strictly before position k. The
// split depends only on the data, so cutting a merge at fixed output
// positions yields scheduling-independent slices.
template <class T, class Less>
std::size_t stable_corank(std::size_t k, const T* a, std::size_t la,
                          const T* b, std::size_t lb, const Less& less) {
  std::size_t lo = k > lb ? k - lb : 0;
  std::size_t hi = std::min(k, la);
  while (lo < hi) {
    const std::size_t i = lo + (hi - lo) / 2;  // i < hi <= la
    const std::size_t j = k - i;
    // !less(b[j-1], a[i]) means a[i] precedes-or-ties b[j-1]; the tie-favored
    // a[i] must then be consumed before b[j-1], so the split needs more of a.
    if (j > 0 && !less(b[j - 1], a[i])) {
      lo = i + 1;
    } else {
      hi = i;
    }
  }
  return lo;
}

// One parallel merge task: src[a0,a1) merged with src[b0,b1) into dst[out..).
struct MergeSlice {
  std::size_t a0, a1, b0, b1, out;
};

}  // namespace detail

// Stable parallel sort of data[0..n) by `less`. Bit-identical to
// std::stable_sort(data, data + n, less) for every pool and thread count
// (stability makes the output unique). Callers sorting an ascending index
// vector get the (key, index) order for free — stability IS the index
// tie-break, matching the documented contraction.cpp comparator contract.
template <class T, class Less>
void stable_sort_keys(ThreadPool* pool, T* data, std::size_t n, Less less) {
  if (pool == nullptr || pool->num_threads() <= 1 || n < kSeqCutoff) {
    std::stable_sort(data, data + n, less);
    return;
  }
  const std::size_t blocks = plan_blocks(n);
  std::vector<std::size_t> bounds(blocks + 1);
  for (std::size_t b = 0; b <= blocks; ++b) {
    bounds[b] = split_point(n, blocks, b);
  }
  pool->parallel_for(blocks, [&](std::size_t b) {
    std::stable_sort(data + bounds[b], data + bounds[b + 1], less);
  });

  std::vector<T> scratch(n);
  T* src = data;
  T* dst = scratch.data();
  std::vector<detail::MergeSlice> slices;
  for (std::size_t width = 1; width < blocks; width *= 2) {
    slices.clear();
    for (std::size_t r = 0; r < blocks; r += 2 * width) {
      const std::size_t lo = bounds[r];
      const std::size_t mid = bounds[std::min(blocks, r + width)];
      const std::size_t hi = bounds[std::min(blocks, r + 2 * width)];
      const std::size_t total = hi - lo;
      const std::size_t chunks = total >= kSeqCutoff ? plan_blocks(total) : 1;
      std::size_t prev_k = 0;
      std::size_t prev_i = 0;
      for (std::size_t c = 1; c <= chunks; ++c) {
        const std::size_t k = split_point(total, chunks, c);
        const std::size_t i =
            c == chunks ? mid - lo
                        : detail::stable_corank(k, src + lo, mid - lo,
                                                src + mid, hi - mid, less);
        slices.push_back({lo + prev_i, lo + i, mid + (prev_k - prev_i),
                          mid + (k - i), lo + prev_k});
        prev_k = k;
        prev_i = i;
      }
    }
    pool->parallel_for(slices.size(), [&](std::size_t s) {
      const detail::MergeSlice& t = slices[s];
      std::merge(src + t.a0, src + t.a1, src + t.b0, src + t.b1, dst + t.out,
                 less);
    });
    std::swap(src, dst);
  }
  if (src != data) {
    pool->parallel_for(blocks, [&](std::size_t b) {
      std::copy(src + bounds[b], src + bounds[b + 1], data + bounds[b]);
    });
  }
}

template <class T, class Less>
void stable_sort_keys(ThreadPool* pool, std::vector<T>& v, Less less) {
  stable_sort_keys(pool, v.data(), v.size(), std::move(less));
}

// Stable parallel counting sort: permutes in[0..n) into out[0..n) ascending
// by key_of(item) in [0, num_keys), equal keys in input order. out must not
// alias in. If group_offsets is non-null it receives num_keys + 1 entries
// with (*group_offsets)[k] = first output slot of key k (and [num_keys] = n),
// i.e. the rank of each key group. Bit-identical to the sequential two-pass
// counting sort for every pool: the per-block decomposition only reorders
// *additions* into the histogram, and the scatter writes each stable slot
// exactly once.
template <class T, class KeyFn>
void radix_rank(ThreadPool* pool, const T* in, T* out, std::size_t n,
                std::size_t num_keys, KeyFn key_of,
                std::vector<std::size_t>* group_offsets = nullptr) {
  REPRO_CHECK(num_keys >= 1);
  const std::size_t blocks = plan_radix_blocks(n, num_keys);
  if (pool == nullptr || pool->num_threads() <= 1 || blocks <= 1) {
    std::vector<std::size_t> counts(num_keys + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      REPRO_DCHECK(key_of(in[i]) < num_keys);
      ++counts[key_of(in[i]) + 1];
    }
    for (std::size_t k = 0; k < num_keys; ++k) counts[k + 1] += counts[k];
    if (group_offsets != nullptr) *group_offsets = counts;
    for (std::size_t i = 0; i < n; ++i) out[counts[key_of(in[i])]++] = in[i];
    return;
  }
  std::vector<std::size_t> bounds(blocks + 1);
  for (std::size_t b = 0; b <= blocks; ++b) {
    bounds[b] = split_point(n, blocks, b);
  }
  std::vector<std::size_t> counts(blocks * num_keys, 0);
  pool->parallel_for(blocks, [&](std::size_t b) {
    std::size_t* c = counts.data() + b * num_keys;
    for (std::size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
      // An out-of-range key would corrupt the histogram matrix silently;
      // debug builds trip here instead (release keeps the loop tight).
      REPRO_DCHECK(key_of(in[i]) < num_keys);
      ++c[key_of(in[i])];
    }
  });
  // Key-major exclusive scan turns counts into start offsets per (key,
  // block): all of key k's slots precede key k+1's, and within a key the
  // blocks land in block order — which is input order, hence stability.
  std::size_t running = 0;
  if (group_offsets != nullptr) group_offsets->assign(num_keys + 1, 0);
  for (std::size_t k = 0; k < num_keys; ++k) {
    if (group_offsets != nullptr) (*group_offsets)[k] = running;
    for (std::size_t b = 0; b < blocks; ++b) {
      std::size_t& slot = counts[b * num_keys + k];
      const std::size_t c = slot;
      slot = running;
      running += c;
    }
  }
  REPRO_CHECK(running == n);
  if (group_offsets != nullptr) (*group_offsets)[num_keys] = n;
  pool->parallel_for(blocks, [&](std::size_t b) {
    std::size_t* c = counts.data() + b * num_keys;
    for (std::size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
      out[c[key_of(in[i])]++] = in[i];
    }
  });
}

// In-place exclusive prefix sum: data[i] becomes the sum of data[0..i);
// returns the total. Unsigned arithmetic, so overflow wraps identically in
// the sequential and block-decomposed orders (associativity mod 2^w).
template <class UInt>
UInt exclusive_scan(ThreadPool* pool, UInt* data, std::size_t n) {
  static_assert(std::is_unsigned_v<UInt>,
                "exclusive_scan requires an unsigned accumulator: signed "
                "overflow would be UB and break the bit-identity contract");
  if (pool == nullptr || pool->num_threads() <= 1 || n < kSeqCutoff) {
    UInt running = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const UInt v = data[i];
      data[i] = running;
      running += v;
    }
    return running;
  }
  const std::size_t blocks = plan_blocks(n);
  std::vector<std::size_t> bounds(blocks + 1);
  for (std::size_t b = 0; b <= blocks; ++b) {
    bounds[b] = split_point(n, blocks, b);
  }
  std::vector<UInt> sums(blocks, 0);
  pool->parallel_for(blocks, [&](std::size_t b) {
    UInt s = 0;
    for (std::size_t i = bounds[b]; i < bounds[b + 1]; ++i) s += data[i];
    sums[b] = s;
  });
  UInt running = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const UInt s = sums[b];
    sums[b] = running;
    running += s;
  }
  pool->parallel_for(blocks, [&](std::size_t b) {
    UInt r = sums[b];
    for (std::size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
      const UInt v = data[i];
      data[i] = r;
      r += v;
    }
  });
  return running;
}

template <class UInt>
UInt exclusive_scan(ThreadPool* pool, std::vector<UInt>& v) {
  return exclusive_scan(pool, v.data(), v.size());
}

}  // namespace ampccut::psort
