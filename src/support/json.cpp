#include "support/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace ampccut::json {

double Value::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
  if (is_uint()) return static_cast<double>(std::get<std::uint64_t>(v_));
  return std::get<double>(v_);
}

std::int64_t Value::as_int() const {
  if (is_int()) return std::get<std::int64_t>(v_);
  if (is_uint()) return static_cast<std::int64_t>(std::get<std::uint64_t>(v_));
  return static_cast<std::int64_t>(std::get<double>(v_));
}

std::uint64_t Value::as_uint() const {
  if (is_uint()) return std::get<std::uint64_t>(v_);
  if (is_int()) return static_cast<std::uint64_t>(std::get<std::int64_t>(v_));
  return static_cast<std::uint64_t>(std::get<double>(v_));
}

Value& Value::operator[](std::string_view key) {
  Object& o = std::get<Object>(v_);
  for (auto& [k, v] : o) {
    if (k == key) return v;
  }
  o.emplace_back(std::string(key), Value());
  return o.back().second;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN; null is the standard dodge
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, d);
    double back = 0;
    std::sscanf(probe, "%lf", &back);
    if (back == d) {
      std::memcpy(buf, probe, sizeof(probe));
      break;
    }
  }
  out += buf;
  // Keep a numeric marker so integers-by-value stay doubles on re-parse.
  if (!std::strpbrk(buf, ".eE")) out += ".0";
}

void dump_rec(const Value& v, int indent, int depth, std::string& out) {
  const auto pad = [&](int d) {
    if (indent > 0) out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  const char* nl = indent > 0 ? "\n" : "";
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    out += std::to_string(v.as_int());
  } else if (v.is_uint()) {
    out += std::to_string(v.as_uint());
  } else if (v.is_double()) {
    append_double(out, v.as_double());
  } else if (v.is_string()) {
    append_escaped(out, v.as_string());
  } else if (v.is_array()) {
    const Array& a = v.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < a.size(); ++i) {
      pad(depth + 1);
      dump_rec(a[i], indent, depth + 1, out);
      if (i + 1 < a.size()) out += ',';
      out += nl;
    }
    pad(depth);
    out += ']';
  } else {
    const Object& o = v.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    for (std::size_t i = 0; i < o.size(); ++i) {
      pad(depth + 1);
      append_escaped(out, o[i].first);
      out += indent > 0 ? ": " : ":";
      dump_rec(o[i].second, indent, depth + 1, out);
      if (i + 1 < o.size()) out += ',';
      out += nl;
    }
    pad(depth);
    out += '}';
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    std::optional<Value> v = parse_value();
    if (v) {
      skip_ws();
      if (pos_ != text_.size()) {
        v.reset();
        err_ = "trailing characters after document";
      }
    }
    if (!v && error) {
      *error = "offset " + std::to_string(pos_) + ": " + err_;
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Value> fail(std::string msg) {
    if (err_.empty()) err_ = std::move(msg);
    return std::nullopt;
  }

  std::optional<Value> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      std::optional<std::string> s = parse_string();
      if (!s) return std::nullopt;
      return Value(std::move(*s));
    }
    if (literal("true")) return Value(true);
    if (literal("false")) return Value(false);
    if (literal("null")) return Value();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    return fail(std::string("unexpected character '") + c + "'");
  }

  std::optional<Value> parse_object() {
    ++pos_;  // '{'
    Value out = Value::object();
    skip_ws();
    if (consume('}')) return out;
    for (;;) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key) return fail("expected object key string");
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      std::optional<Value> v = parse_value();
      if (!v) return std::nullopt;
      out.as_object().emplace_back(std::move(*key), std::move(*v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return out;
      return fail("expected ',' or '}' in object");
    }
  }

  std::optional<Value> parse_array() {
    ++pos_;  // '['
    Value out = Value::array();
    skip_ws();
    if (consume(']')) return out;
    for (;;) {
      std::optional<Value> v = parse_value();
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return out;
      return fail("expected ',' or ']' in array");
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      err_ = "expected '\"'";
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        err_ = "unescaped control character in string";
        return std::nullopt;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            err_ = "truncated \\u escape";
            return std::nullopt;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else {
              err_ = "bad hex digit in \\u escape";
              return std::nullopt;
            }
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs unsupported;
          // the writer never emits them).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          err_ = "unknown escape sequence";
          return std::nullopt;
      }
    }
    err_ = "unterminated string";
    return std::nullopt;
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool integral = true;
    if (consume('.')) {
      integral = false;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return fail("malformed number");
    if (integral) {
      if (tok[0] == '-') {
        std::int64_t i = 0;
        const auto [p, ec] = std::from_chars(tok.begin(), tok.end(), i);
        if (ec == std::errc() && p == tok.end()) return Value(i);
      } else {
        std::uint64_t u = 0;
        const auto [p, ec] = std::from_chars(tok.begin(), tok.end(), u);
        if (ec == std::errc() && p == tok.end()) {
          if (u <= static_cast<std::uint64_t>(INT64_MAX)) {
            return Value(static_cast<std::int64_t>(u));
          }
          return Value(u);
        }
      }
      // Integral but out of 64-bit range: fall through to double.
    }
    double d = 0;
    const auto [p, ec] = std::from_chars(tok.begin(), tok.end(), d);
    if (ec != std::errc() || p != tok.end()) return fail("malformed number");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_rec(*this, indent, 0, out);
  return out;
}

std::optional<Value> Value::parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace ampccut::json
