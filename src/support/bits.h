// Small bit-manipulation helpers shared across modules.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "support/check.h"

namespace ampccut {

// floor(log2(x)) for x >= 1.
inline std::uint32_t floor_log2(std::uint64_t x) {
  REPRO_DCHECK(x >= 1);
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x));
}

// ceil(log2(x)) for x >= 1 (0 for x == 1).
inline std::uint32_t ceil_log2(std::uint64_t x) {
  REPRO_DCHECK(x >= 1);
  return x == 1 ? 0u : floor_log2(x - 1) + 1u;
}

// Natural-log based sizes used in round-bound reporting.
inline double log2d(double x) { return std::log2(x); }

inline std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  REPRO_DCHECK(b > 0);
  return (a + b - 1) / b;
}

}  // namespace ampccut
