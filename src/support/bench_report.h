// Machine-readable benchmark reporting: the schema behind the repo-level
// perf trajectory files BENCH_ampc.json / BENCH_exact.json.
//
// Every bench binary owns one BenchReporter per suite and appends one
// BenchResult per measured configuration; `tools/run_benches` collects the
// per-suite documents and merges them per group into the trajectory files.
// The schema ("ampc-cut-bench-v1") is documented in BENCHMARKS.md; change it
// only by bumping the version string, the trajectory is diffed across PRs.
//
// Lives in support (not bench/) so the gtest suite test_bench_json.cpp and
// the tools/ layer can link it; the model-metric fill helpers that need the
// ampc/mpc runtimes stay in bench/bench_util.h to keep support at the bottom
// of the layer DAG.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/json.h"

namespace ampccut::bench {

inline constexpr const char* kBenchSchema = "ampc-cut-bench-v1";

// One measured configuration of one benchmark.
//
// `group` routes the result into a trajectory file: "ampc" for anything
// priced in model rounds / DHT words (AMPC and the MPC baseline), "exact"
// for the sequential engines (Stoer-Wagner, Karger-Stein, oracle trackers).
// Model counters are zero for exact-group results.
struct BenchResult {
  std::string name;
  std::string group = "ampc";
  std::map<std::string, std::int64_t> params;  // sweep point, e.g. {n: 1024}

  // Wall clock.
  double ns_per_op = 0.0;
  std::uint64_t iterations = 0;  // timed repetitions behind ns_per_op

  // Model costs (see DESIGN.md round-accounting policy).
  std::uint64_t model_rounds = 0;  // measured + charged
  std::uint64_t measured_rounds = 0;
  std::uint64_t charged_rounds = 0;
  std::uint64_t dht_read_words = 0;
  std::uint64_t dht_write_words = 0;
  std::uint64_t max_machine_traffic = 0;
  std::uint64_t peak_table_words = 0;
  std::uint64_t budget_violations = 0;

  // Bench-specific scalars (approximation ratios, heights, probabilities...).
  std::map<std::string, double> extra;
};

class BenchReporter {
 public:
  explicit BenchReporter(std::string suite) : suite_(std::move(suite)) {}

  [[nodiscard]] const std::string& suite() const { return suite_; }
  [[nodiscard]] const std::vector<BenchResult>& results() const {
    return results_;
  }

  void add(BenchResult r) { results_.push_back(std::move(r)); }

  // The per-suite document: {schema, suite, results: [...]}.
  [[nodiscard]] json::Value to_json() const;

  // Writes to_json() to `path` (2-space indent, trailing newline). Returns
  // false on IO failure.
  bool write_file(const std::string& path) const;

 private:
  std::string suite_;
  std::vector<BenchResult> results_;
};

// Parses a per-suite document back into results. Returns false and fills
// *error when the document does not conform to the schema.
bool parse_suite(const json::Value& doc, std::string* suite,
                 std::vector<BenchResult>* results, std::string* error);

// Merges per-suite documents into one trajectory document for `group`,
// keeping only results of that group and dropping suites left empty:
// {schema, generated_by, group, suites: [...]}.
json::Value merge_suites(const std::vector<json::Value>& suite_docs,
                         const std::string& group);

// Validates either document shape (per-suite or merged trajectory).
// Returns an empty string when valid, else a description of the first
// violation.
std::string validate_bench_json(const json::Value& doc);

}  // namespace ampccut::bench
