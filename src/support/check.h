// Lightweight always-on invariant checks.
//
// The library is a research reproduction: internal invariants are cheap
// relative to the algorithms and catching a violated invariant early is worth
// far more than the branch. REPRO_CHECK stays on in release builds;
// REPRO_DCHECK compiles out in NDEBUG builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ampccut {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace ampccut

#define REPRO_CHECK(expr)                                                 \
  do {                                                                    \
    if (!(expr)) ::ampccut::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define REPRO_CHECK_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) ::ampccut::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
// sizeof keeps the expression unevaluated while still "using" its operands,
// so release builds get zero cost without unused-parameter warnings.
#define REPRO_DCHECK(expr) ((void)sizeof(!(expr)))
#else
#define REPRO_DCHECK(expr) REPRO_CHECK(expr)
#endif
