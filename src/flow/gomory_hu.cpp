#include "flow/gomory_hu.h"

#include <algorithm>
#include <numeric>

#include "flow/dinic.h"
#include "graph/union_find.h"
#include "support/check.h"
#include "support/errors.h"
#include "support/psort.h"

namespace ampccut {

Weight GomoryHuTree::min_cut(VertexId s, VertexId t) const {
  if (s >= parent.size() || t >= parent.size()) {
    throw InvalidQueryError("vertex out of range (n = " +
                                std::to_string(parent.size()) + ")",
                            s, t);
  }
  if (s == t) throw InvalidQueryError("s == t has no separating cut", s, t);
  // Walk both vertices to the root, recording path minima. Depths are not
  // stored, so climb by marking: collect s's ancestry then walk t upward
  // until it meets a marked vertex (at worst the root).
  std::vector<std::uint8_t> on_s_path(parent.size(), 0);
  std::vector<Weight> min_to_s(parent.size(), kInfiniteWeight);
  VertexId v = s;
  Weight acc = kInfiniteWeight;
  on_s_path[v] = 1;
  min_to_s[v] = acc;
  while (parent[v] != kInvalidVertex) {
    acc = std::min(acc, parent_cut_weight[v]);
    v = parent[v];
    on_s_path[v] = 1;
    min_to_s[v] = acc;
  }
  Weight t_acc = kInfiniteWeight;
  v = t;
  while (!on_s_path[v]) {
    REPRO_CHECK(parent[v] != kInvalidVertex);
    t_acc = std::min(t_acc, parent_cut_weight[v]);
    v = parent[v];
  }
  return std::min(t_acc, min_to_s[v]);
}

GomoryHuTree build_gomory_hu(const WGraph& g) {
  return build_gomory_hu(g, GomoryHuStepHook{});
}

GomoryHuTree build_gomory_hu(const WGraph& g,
                             const GomoryHuStepHook& step_hook) {
  REPRO_CHECK_MSG(g.n >= 1, "Gomory-Hu needs at least one vertex");
  GomoryHuTree tree;
  tree.parent.assign(g.n, 0);
  tree.parent.at(0) = kInvalidVertex;
  tree.parent_cut_weight.assign(g.n, 0);

  Dinic dinic(g.n);
  for (const auto& e : g.edges) dinic.add_undirected_edge(e.u, e.v, e.w);

  // Gusfield: all flows run on the ORIGINAL graph; the tree is rewired based
  // on which side of the cut the current parent falls (Gusfield 1990,
  // "Very simple methods for all pairs network flow analysis"). A
  // disconnected graph needs no special case: a cross-component pair has
  // flow 0 and a side covering i's whole component, which leaves the
  // 0-weight tree edge exactly where the path-minimum query needs it.
  for (VertexId i = 1; i < g.n; ++i) {
    if (step_hook) step_hook(i);
    const VertexId p = tree.parent[i];
    const Weight f = dinic.max_flow(i, p);
    const auto side = dinic.min_cut_side();  // 1 == i's side
    tree.parent_cut_weight[i] = f;
    for (VertexId j = 0; j < g.n; ++j) {
      if (j != i && side[j] && tree.parent[j] == p) tree.parent[j] = i;
    }
    // If p's own parent landed on i's side, i takes p's place in the tree.
    const VertexId pp = tree.parent[p];
    if (pp != kInvalidVertex && side[pp]) {
      tree.parent[i] = pp;
      tree.parent[p] = i;
      tree.parent_cut_weight[i] = tree.parent_cut_weight[p];
      tree.parent_cut_weight[p] = f;
    }
  }
  return tree;
}

GHKCut gomory_hu_k_cut(const WGraph& g, std::uint32_t k) {
  const GomoryHuTree tree = build_gomory_hu(g);
  return gomory_hu_k_cut_from_tree(tree, g, k, &ThreadPool::shared());
}

GHKCut gomory_hu_k_cut_from_tree(const GomoryHuTree& tree, const WGraph& g,
                                 std::uint32_t k, ThreadPool* pool) {
  REPRO_CHECK(k >= 1 && k <= g.n);
  REPRO_CHECK_MSG(tree.parent.size() == g.n, "tree does not match graph");
  // Sort the n-1 tree edges by cut weight ascending; removing the k-1
  // lightest splits the tree into k parts (each removal adds exactly one
  // component since tree edges are independent).
  std::vector<VertexId> order;
  for (VertexId v = 1; v < g.n; ++v) order.push_back(v);
  // (weight, id): equal cut weights are common (unweighted graphs), and
  // without the id tie-break the removed edge set — and hence the partition —
  // depended on the sort implementation's handling of ties.
  psort::stable_sort_keys(pool, order, [&](VertexId a, VertexId b) {
    return tree.parent_cut_weight[a] != tree.parent_cut_weight[b]
               ? tree.parent_cut_weight[a] < tree.parent_cut_weight[b]
               : a < b;
  });
  std::vector<std::uint8_t> removed(g.n, 0);
  for (std::uint32_t i = 0; i + 1 < k; ++i) removed[order[i]] = 1;

  UnionFind uf(g.n);
  for (VertexId v = 1; v < g.n; ++v) {
    if (!removed[v]) uf.unite(v, tree.parent[v]);
  }
  GHKCut out;
  out.part.assign(g.n, 0);
  std::vector<std::uint32_t> label(g.n, static_cast<std::uint32_t>(-1));
  std::uint32_t next = 0;
  for (VertexId v = 0; v < g.n; ++v) {
    const VertexId r = uf.find(v);
    if (label[r] == static_cast<std::uint32_t>(-1)) label[r] = next++;
    out.part[v] = label[r];
  }
  for (const auto& e : g.edges) {
    // Saturating: a partition can cut kInfiniteWeight edges, and the summed
    // price must clamp at the ceiling rather than wrap (graph/types.h).
    if (out.part[e.u] != out.part[e.v]) out.weight = sat_add(out.weight, e.w);
  }
  return out;
}

}  // namespace ampccut
