#include "flow/gomory_hu.h"

#include <algorithm>
#include <numeric>

#include "flow/dinic.h"
#include "graph/union_find.h"
#include "support/check.h"
#include "support/psort.h"

namespace ampccut {

Weight GomoryHuTree::min_cut(VertexId s, VertexId t) const {
  REPRO_CHECK(s != t && s < parent.size() && t < parent.size());
  // Walk both vertices to the root, recording path minima. Depths are not
  // stored, so climb by marking: collect s's ancestry then walk t upward
  // until it meets a marked vertex (at worst the root).
  std::vector<std::uint8_t> on_s_path(parent.size(), 0);
  std::vector<Weight> min_to_s(parent.size(), kInfiniteWeight);
  VertexId v = s;
  Weight acc = kInfiniteWeight;
  on_s_path[v] = 1;
  min_to_s[v] = acc;
  while (parent[v] != kInvalidVertex) {
    acc = std::min(acc, parent_cut_weight[v]);
    v = parent[v];
    on_s_path[v] = 1;
    min_to_s[v] = acc;
  }
  Weight t_acc = kInfiniteWeight;
  v = t;
  while (!on_s_path[v]) {
    REPRO_CHECK(parent[v] != kInvalidVertex);
    t_acc = std::min(t_acc, parent_cut_weight[v]);
    v = parent[v];
  }
  return std::min(t_acc, min_to_s[v]);
}

GomoryHuTree build_gomory_hu(const WGraph& g) {
  REPRO_CHECK(g.n >= 2);
  REPRO_CHECK_MSG(is_connected(g), "Gomory-Hu requires a connected graph");
  GomoryHuTree tree;
  tree.parent.assign(g.n, 0);
  tree.parent.at(0) = kInvalidVertex;
  tree.parent_cut_weight.assign(g.n, 0);

  Dinic dinic(g.n);
  for (const auto& e : g.edges) dinic.add_undirected_edge(e.u, e.v, e.w);

  // Gusfield: all flows run on the ORIGINAL graph; the tree is rewired based
  // on which side of the cut the current parent falls (Gusfield 1990,
  // "Very simple methods for all pairs network flow analysis").
  for (VertexId i = 1; i < g.n; ++i) {
    const VertexId p = tree.parent[i];
    const Weight f = dinic.max_flow(i, p);
    const auto side = dinic.min_cut_side();  // 1 == i's side
    tree.parent_cut_weight[i] = f;
    for (VertexId j = 0; j < g.n; ++j) {
      if (j != i && side[j] && tree.parent[j] == p) tree.parent[j] = i;
    }
    // If p's own parent landed on i's side, i takes p's place in the tree.
    const VertexId pp = tree.parent[p];
    if (pp != kInvalidVertex && side[pp]) {
      tree.parent[i] = pp;
      tree.parent[p] = i;
      tree.parent_cut_weight[i] = tree.parent_cut_weight[p];
      tree.parent_cut_weight[p] = f;
    }
  }
  return tree;
}

GHKCut gomory_hu_k_cut(const WGraph& g, std::uint32_t k) {
  REPRO_CHECK(k >= 1 && k <= g.n);
  const GomoryHuTree tree = build_gomory_hu(g);
  // Sort the n-1 tree edges by cut weight ascending; removing the k-1
  // lightest splits the tree into k parts (each removal adds exactly one
  // component since tree edges are independent).
  std::vector<VertexId> order;
  for (VertexId v = 1; v < g.n; ++v) order.push_back(v);
  // (weight, id): equal cut weights are common (unweighted graphs), and
  // without the id tie-break the removed edge set — and hence the partition —
  // depended on the sort implementation's handling of ties.
  psort::stable_sort_keys(&ThreadPool::shared(), order,
                          [&](VertexId a, VertexId b) {
                            return tree.parent_cut_weight[a] !=
                                           tree.parent_cut_weight[b]
                                       ? tree.parent_cut_weight[a] <
                                             tree.parent_cut_weight[b]
                                       : a < b;
                          });
  std::vector<std::uint8_t> removed(g.n, 0);
  for (std::uint32_t i = 0; i + 1 < k; ++i) removed[order[i]] = 1;

  UnionFind uf(g.n);
  for (VertexId v = 1; v < g.n; ++v) {
    if (!removed[v]) uf.unite(v, tree.parent[v]);
  }
  GHKCut out;
  out.part.assign(g.n, 0);
  std::vector<std::uint32_t> label(g.n, static_cast<std::uint32_t>(-1));
  std::uint32_t next = 0;
  for (VertexId v = 0; v < g.n; ++v) {
    const VertexId r = uf.find(v);
    if (label[r] == static_cast<std::uint32_t>(-1)) label[r] = next++;
    out.part[v] = label[r];
  }
  for (const auto& e : g.edges) {
    if (out.part[e.u] != out.part[e.v]) out.weight += e.w;
  }
  return out;
}

}  // namespace ampccut
