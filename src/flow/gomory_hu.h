// Gomory–Hu tree (Definition 8) via Gusfield's simplification.
//
// The tree encodes all-pairs s-t min cuts: the minimum edge weight on the
// tree path between s and t equals their min cut in G. Section 5 of the paper
// uses it both in the APX-SPLIT analysis and (Observation 10 / Theorem 6) as
// the (2 - 2/k)-approximate k-cut construction we baseline against; the
// serving tier (src/serve/) publishes one per snapshot and answers every
// query off it.
#pragma once

#include <functional>
#include <vector>

#include "graph/graph.h"

namespace ampccut {

class ThreadPool;

struct GomoryHuTree {
  // parent[v] and parent_cut_weight[v] define the tree edge v -> parent[v]
  // for v != root (vertex 0). parent[0] == kInvalidVertex. On a disconnected
  // graph the construction still yields one tree rooted at 0: a pair in
  // different components has max flow 0, so the tree edge linking their
  // components carries weight 0 and path minima stay exact.
  std::vector<VertexId> parent;
  std::vector<Weight> parent_cut_weight;

  // Min s-t cut value per the tree (minimum weight on the s..t path).
  // Throws InvalidQueryError (support/errors.h) on an out-of-range endpoint
  // or s == t — query pairs come from outside the library, so a bad pair is
  // a runtime condition, not a REPRO_CHECK-able caller bug.
  [[nodiscard]] Weight min_cut(VertexId s, VertexId t) const;
};

// Requires n >= 1; the graph may be disconnected (see GomoryHuTree::parent).
GomoryHuTree build_gomory_hu(const WGraph& g);

// Hook variant: `step_hook(i)` runs before Gusfield step i (the max-flow for
// vertex i, i in 1..n-1). The serving tier's rebuild path injects
// deterministic faults through it — a throwing hook aborts the build with
// nothing published. An empty function is equivalent to the overload above.
using GomoryHuStepHook = std::function<void(VertexId)>;
GomoryHuTree build_gomory_hu(const WGraph& g, const GomoryHuStepHook& step_hook);

// The Saran–Vazirani / Observation 10 k-cut: take Gomory–Hu cuts in
// non-decreasing weight order until the graph splits into >= k components;
// returns the union of those cuts as a partition. (2 - 2/k)-approximate.
struct GHKCut {
  Weight weight = 0;
  std::vector<std::uint32_t> part;  // component id per vertex
};
GHKCut gomory_hu_k_cut(const WGraph& g, std::uint32_t k);

// Same partition from an already-built tree of `g` — the serving tier reuses
// the published snapshot's tree instead of paying n-1 max-flows per request.
// `pool` feeds the psort tie-broken edge ordering (nullptr = sequential);
// the partition is bit-identical at every pool width.
GHKCut gomory_hu_k_cut_from_tree(const GomoryHuTree& tree, const WGraph& g,
                                 std::uint32_t k, ThreadPool* pool = nullptr);

}  // namespace ampccut
