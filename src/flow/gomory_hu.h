// Gomory–Hu tree (Definition 8) via Gusfield's simplification.
//
// The tree encodes all-pairs s-t min cuts: the minimum edge weight on the
// tree path between s and t equals their min cut in G. Section 5 of the paper
// uses it both in the APX-SPLIT analysis and (Observation 10 / Theorem 6) as
// the (2 - 2/k)-approximate k-cut construction we baseline against.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ampccut {

struct GomoryHuTree {
  // parent[v] and parent_cut_weight[v] define the tree edge v -> parent[v]
  // for v != root (vertex 0). parent[0] == kInvalidVertex.
  std::vector<VertexId> parent;
  std::vector<Weight> parent_cut_weight;

  // Min s-t cut value per the tree (minimum weight on the s..t path).
  [[nodiscard]] Weight min_cut(VertexId s, VertexId t) const;
};

// Requires a connected graph with n >= 2.
GomoryHuTree build_gomory_hu(const WGraph& g);

// The Saran–Vazirani / Observation 10 k-cut: take Gomory–Hu cuts in
// non-decreasing weight order until the graph splits into >= k components;
// returns the union of those cuts as a partition. (2 - 2/k)-approximate.
struct GHKCut {
  Weight weight = 0;
  std::vector<std::uint32_t> part;  // component id per vertex
};
GHKCut gomory_hu_k_cut(const WGraph& g, std::uint32_t k);

}  // namespace ampccut
