// Dinic max-flow on undirected capacitated graphs.
//
// Substrate for the Gomory–Hu tree (Definition 8) used by the k-cut analysis
// and the serving tier's snapshots.
//
// Weight-domain semantics (graph/types.h): kInfiniteWeight capacities are a
// sticky ceiling, not a 2^64-1 integer — arcs carrying it never gain or lose
// capacity, and flow accumulates with sat_add, so a source-to-sink path of
// infinite edges yields max_flow == kInfiniteWeight instead of wrapping.
// Finite capacities are expected below 2^62 (the arc-pair rebalancing
// invariant cap_fwd + cap_rev == 2w must not wrap either).
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ampccut {

class Dinic {
 public:
  explicit Dinic(VertexId n);

  // Undirected edge: capacity w in both directions.
  void add_undirected_edge(VertexId u, VertexId v, Weight w);

  // Computes the s-t max flow. Resets previous flow first, so the solver is
  // reusable across (s, t) pairs on the same capacities — including after a
  // saturated (kInfiniteWeight) run, whose infinite arcs were never mutated.
  Weight max_flow(VertexId s, VertexId t);

  // After max_flow: vertices reachable from s in the residual graph
  // (the s-side of a minimum s-t cut). After a saturated run the residual
  // graph still reaches t through the intact infinite path, so the side
  // degrades to {s} alone — a valid minimum cut, since wdeg(s) saturates to
  // kInfiniteWeight exactly when an all-infinite s-t path exists.
  [[nodiscard]] std::vector<std::uint8_t> min_cut_side() const;

 private:
  struct Arc {
    VertexId to;
    Weight cap;   // remaining capacity; kInfiniteWeight is immutable
    std::size_t rev;  // index of the reverse arc in adj_[to]
  };

  bool bfs(VertexId s, VertexId t);
  Weight dfs(VertexId v, VertexId t, Weight pushed);

  VertexId n_;
  std::vector<std::vector<Arc>> adj_;
  std::vector<std::pair<VertexId, std::size_t>> touched_;  // arcs with flow
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  VertexId last_source_ = kInvalidVertex;
  bool saturated_ = false;  // last run hit the kInfiniteWeight ceiling
};

// Convenience: s-t min cut value on a WGraph.
Weight st_min_cut(const WGraph& g, VertexId s, VertexId t);

}  // namespace ampccut
