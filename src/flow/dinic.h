// Dinic max-flow on undirected capacitated graphs.
//
// Substrate for the Gomory–Hu tree (Definition 8) used by the k-cut analysis.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ampccut {

class Dinic {
 public:
  explicit Dinic(VertexId n);

  // Undirected edge: capacity w in both directions.
  void add_undirected_edge(VertexId u, VertexId v, Weight w);

  // Computes the s-t max flow. Resets previous flow first, so the solver is
  // reusable across (s, t) pairs on the same capacities.
  Weight max_flow(VertexId s, VertexId t);

  // After max_flow: vertices reachable from s in the residual graph
  // (the s-side of a minimum s-t cut).
  [[nodiscard]] std::vector<std::uint8_t> min_cut_side() const;

 private:
  struct Arc {
    VertexId to;
    Weight cap;   // remaining capacity
    std::size_t rev;  // index of the reverse arc in adj_[to]
  };

  bool bfs(VertexId s, VertexId t);
  Weight dfs(VertexId v, VertexId t, Weight pushed);

  VertexId n_;
  std::vector<std::vector<Arc>> adj_;
  std::vector<std::pair<VertexId, std::size_t>> touched_;  // arcs with flow
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  VertexId last_source_ = kInvalidVertex;
};

// Convenience: s-t min cut value on a WGraph.
Weight st_min_cut(const WGraph& g, VertexId s, VertexId t);

}  // namespace ampccut
