#include "flow/dinic.h"

#include <algorithm>
#include <queue>

#include "support/check.h"

namespace ampccut {

Dinic::Dinic(VertexId n) : n_(n), adj_(n), level_(n), iter_(n) {}

void Dinic::add_undirected_edge(VertexId u, VertexId v, Weight w) {
  REPRO_CHECK(u < n_ && v < n_ && u != v);
  // For an undirected edge both arcs carry capacity w and act as each other's
  // reverse: pushing along one frees the other, which models undirected flow.
  adj_[u].push_back({v, w, adj_[v].size()});
  adj_[v].push_back({u, w, adj_[u].size() - 1});
  // Remember original capacity in the arc pair implicitly: cap_u + cap_v = 2w.
}

bool Dinic::bfs(VertexId s, VertexId t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<VertexId> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (const Arc& a : adj_[v]) {
      if (a.cap > 0 && level_[a.to] < 0) {
        level_[a.to] = level_[v] + 1;
        q.push(a.to);
      }
    }
  }
  return level_[t] >= 0;
}

Weight Dinic::dfs(VertexId v, VertexId t, Weight pushed) {
  if (v == t) return pushed;
  for (std::size_t& i = iter_[v]; i < adj_[v].size(); ++i) {
    Arc& a = adj_[v][i];
    if (a.cap == 0 || level_[a.to] != level_[v] + 1) continue;
    const Weight got = dfs(a.to, t, std::min(pushed, a.cap));
    if (got > 0) {
      // Infinite arcs are immutable (header comment): inf - got == inf, and
      // their reverse is the other half of an infinite undirected pair, so
      // neither side moves and the pair stays rebalance-exempt.
      if (a.cap != kInfiniteWeight) a.cap -= got;
      Arc& r = adj_[a.to][a.rev];
      if (r.cap != kInfiniteWeight) r.cap = sat_add(r.cap, got);
      touched_.push_back({v, i});
      return got;
    }
  }
  return 0;
}

Weight Dinic::max_flow(VertexId s, VertexId t) {
  REPRO_CHECK(s < n_ && t < n_ && s != t);
  // Restore capacities from the previous run: for an undirected pair the
  // invariant cap_fwd + cap_rev == 2w lets us rebalance to w/w exactly.
  // Infinite pairs were never mutated, so they are skipped (their "total"
  // would wrap, and there is nothing to restore).
  if (last_source_ != kInvalidVertex) {
    for (VertexId v = 0; v < n_; ++v) {
      for (Arc& a : adj_[v]) {
        if (a.to > v) continue;  // visit each pair once (from higher id)
        if (a.cap == kInfiniteWeight) continue;
        Arc& r = adj_[a.to][a.rev];
        const Weight total = a.cap + r.cap;
        a.cap = total / 2;
        r.cap = total - a.cap;
      }
    }
  }
  touched_.clear();
  last_source_ = s;
  saturated_ = false;
  Weight flow = 0;
  while (bfs(s, t)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    for (;;) {
      const Weight got = dfs(s, t, kInfiniteWeight);
      if (got == 0) break;
      flow = sat_add(flow, got);
      // Ceiling reached: an all-infinite augmenting path (or a saturating sum
      // of finite ones) pins the answer at kInfiniteWeight, and the intact
      // infinite path would keep yielding forever — stop here.
      if (flow == kInfiniteWeight) {
        saturated_ = true;
        return flow;
      }
    }
  }
  return flow;
}

std::vector<std::uint8_t> Dinic::min_cut_side() const {
  REPRO_CHECK_MSG(last_source_ != kInvalidVertex, "run max_flow first");
  std::vector<std::uint8_t> side(n_, 0);
  side[last_source_] = 1;
  // Saturated run: the residual graph still reaches t (header comment), so
  // the only certifiable minimum cut is the singleton source side.
  if (saturated_) return side;
  std::queue<VertexId> q;
  q.push(last_source_);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (const Arc& a : adj_[v]) {
      if (a.cap > 0 && !side[a.to]) {
        side[a.to] = 1;
        q.push(a.to);
      }
    }
  }
  return side;
}

Weight st_min_cut(const WGraph& g, VertexId s, VertexId t) {
  Dinic d(g.n);
  for (const auto& e : g.edges) d.add_undirected_edge(e.u, e.v, e.w);
  return d.max_flow(s, t);
}

}  // namespace ampccut
