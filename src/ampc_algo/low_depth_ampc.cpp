#include "ampc_algo/low_depth_ampc.h"

#include <algorithm>

#include "ampc_algo/list_ranking.h"
#include "support/check.h"
#include "tree/binarized_path.h"

namespace ampccut::ampc {

AmpcDecomposition ampc_low_depth_decomposition(Runtime& rt,
                                               const AmpcRootedTree& tree) {
  const VertexId n = tree.n;
  AmpcDecomposition d;
  d.label.assign(n, 0);
  d.head.assign(n, kInvalidVertex);
  d.pos.assign(n, 0);
  d.len.assign(n, 0);
  d.base_depth.assign(n, 0);
  d.leaf_depth.assign(n, 0);

  // --- Heavy children (Definition 2): one merge-reduction round. ----------
  // Encoded proposal (subtree << 32) | (~child) under kMax picks the largest
  // subtree, breaking ties toward the smaller child id (matches seq).
  auto t_subtree = rt.lease_dense<std::uint64_t>("ldd.subtree", n);
  for (VertexId v = 0; v < n; ++v) t_subtree->seed(v, tree.subtree[v]);
  auto t_heavy_prop = rt.lease_table<std::uint64_t, std::uint64_t>(
      "ldd.heavyprop", Merge::kMax);
  rt.round_over_items("low_depth.heavy", n, [&](MachineContext&, std::uint64_t v) {
    const VertexId p = tree.parent[v];
    if (p == kInvalidVertex) return;
    const std::uint64_t enc =
        (t_subtree->get(v) << 32) | (0xffffffffull - v);
    t_heavy_prop->put(p, enc);
  });
  std::vector<VertexId> heavy(n, kInvalidVertex);
  for (const auto& [p, enc] : t_heavy_prop->snapshot()) {
    heavy[p] = static_cast<VertexId>(0xffffffffull - (enc & 0xffffffffull));
  }

  // --- Heavy-path geometry via three chain rankings. ----------------------
  // Chains run bottom-up through next_up = parent-if-heavy (heads are chain
  // tails), so suffix sums aggregate toward the head.
  std::vector<std::uint64_t> next_up(n, kNoNext);
  std::vector<std::uint64_t> next_down(n, kNoNext);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId p = tree.parent[v];
    if (p != kInvalidVertex && heavy[p] == v) next_up[v] = p;
    if (heavy[v] != kInvalidVertex) next_down[v] = heavy[v];
  }
  const std::vector<std::int64_t> ones(n, 1);
  std::vector<std::int64_t> head_val(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (next_up[v] == kNoNext) head_val[v] = v;  // only heads contribute
  }
  // Position and head id ride the same upward ranking; the downward ranking
  // (chain length below) runs over the reversed pointers.
  const auto up_ranks = list_rank_multi(rt, next_up, {ones, head_val});
  const auto& rank_up = up_ranks[0];    // pos + 1
  const auto& rank_head = up_ranks[1];  // head vertex id
  const auto rank_down = list_rank(rt, next_down, ones);  // len - pos
  for (VertexId v = 0; v < n; ++v) {
    d.pos[v] = static_cast<std::uint32_t>(rank_up[v] - 1);
    d.len[v] = static_cast<std::uint32_t>(rank_up[v] - 1 + rank_down[v]);
    d.head[v] = static_cast<VertexId>(rank_head[v]);
  }

  // --- Base depths: adaptive walk up the meta tree (one round). -----------
  // Each head reads the (pos, len) geometry of its chain of attachment
  // vertices up to the root path — O(log n) hops (Observation 1) — and
  // resolves the expanded depths locally (Observation 6 bounds them).
  auto t_pos = rt.lease_dense<std::uint64_t>("ldd.pos", n);
  auto t_len = rt.lease_dense<std::uint64_t>("ldd.len", n);
  auto t_head = rt.lease_dense<std::uint64_t>("ldd.head", n);
  for (VertexId v = 0; v < n; ++v) {
    t_pos->seed(v, d.pos[v]);
    t_len->seed(v, d.len[v]);
    t_head->seed(v, d.head[v]);
  }
  auto t_base = rt.lease_dense<std::uint64_t>("ldd.base", n, 0);  // per head
  rt.round_over_items("low_depth.base_depth", n,
                      [&](MachineContext&, std::uint64_t v) {
    if (d.head[v] != v) return;  // one machine task per head
    // Collect attachment vertices bottom-up.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> geom;  // (pos, len)
    VertexId cur = static_cast<VertexId>(v);
    for (;;) {
      const VertexId attach = tree.parent[cur];
      if (attach == kInvalidVertex) break;
      geom.emplace_back(t_pos->get(attach), t_len->get(attach));
      cur = static_cast<VertexId>(t_head->get(attach));
    }
    // Resolve top-down: base(root path) = 1; each hop adds the attachment
    // leaf's depth within its binarized path.
    std::uint64_t base = 1;
    for (std::size_t k = geom.size(); k-- > 0;) {
      const auto [pp, ll] = geom[k];
      const std::uint64_t leaf_d =
          base + binpath::depth(binpath::leaf_index(ll, pp)) - 1;
      base = leaf_d + 1;
    }
    t_base->put(v, base);
  });

  // --- Labels: pure local arithmetic per vertex (one round). --------------
  auto t_label = rt.lease_dense<std::uint64_t>("ldd.label", n, 0);
  auto t_leafd = rt.lease_dense<std::uint64_t>("ldd.leafd", n, 0);
  rt.round_over_items("low_depth.label", n, [&](MachineContext&, std::uint64_t v) {
    const std::uint64_t h = t_head->get(v);
    const std::uint64_t base = t_base->get(h);
    const std::uint64_t L = t_len->get(v);
    const std::uint64_t j = t_pos->get(v);
    const auto leaf = binpath::leaf_index(L, j);
    t_label->put(v, base + binpath::leaf_label(L, leaf) - 1);
    t_leafd->put(v, base + binpath::depth(leaf) - 1);
  });
  for (VertexId v = 0; v < n; ++v) {
    d.base_depth[v] = static_cast<std::uint32_t>(t_base->raw(d.head[v]));
    d.label[v] = static_cast<std::uint32_t>(t_label->raw(v));
    d.leaf_depth[v] = static_cast<std::uint32_t>(t_leafd->raw(v));
    REPRO_CHECK(d.label[v] >= 1);
    d.height = std::max(d.height, d.label[v]);
  }
  return d;
}

}  // namespace ampccut::ampc
