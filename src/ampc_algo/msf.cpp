#include "ampc_algo/msf.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ampc_algo/list_ranking.h"
#include "support/check.h"
#include "support/psort.h"

namespace ampccut::ampc {

std::vector<EdgeId> ampc_msf_boruvka(Runtime& rt, const WGraph& g,
                                     const ContractionOrder& order) {
  REPRO_CHECK(order.time.size() == g.edges.size());
  const VertexId n = g.n;
  std::vector<VertexId> comp(n);
  std::iota(comp.begin(), comp.end(), 0);
  std::vector<std::uint8_t> in_forest(g.edges.size(), 0);
  const Adjacency adj(g);
  const std::uint64_t budget =
      std::max<std::uint64_t>(8, rt.config().machine_memory_words);

  VertexId num_comps = n;
  for (;;) {
    // Phase round 1: every vertex proposes its component's cheapest incident
    // edge leaving the component (min by contraction time). Tables are
    // leased so each Boruvka phase reuses the previous phase's storage.
    auto t_comp = rt.lease_dense<std::uint64_t>("msf.comp", n);
    for (VertexId v = 0; v < n; ++v) t_comp->seed(v, comp[v]);
    auto t_min_edge =
        rt.lease_table<std::uint64_t, std::uint64_t>("msf.minedge", Merge::kMin);
    rt.round_over_items("msf.propose", n, [&](MachineContext& ctx, std::uint64_t v) {
      const std::uint64_t cv = t_comp->get(v);
      ctx.count_read(adj.degree(static_cast<VertexId>(v)));
      std::uint64_t best = kNoNext;
      for (const auto& arc : adj.neighbors(static_cast<VertexId>(v))) {
        if (t_comp->get(arc.to) == cv) continue;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(order.time[arc.edge]) << 32) | arc.edge;
        best = std::min(best, key);
      }
      if (best != kNoNext) t_min_edge->put(cv, best);
    });

    const auto proposals = t_min_edge->snapshot();
    if (proposals.empty()) break;  // spanning forest complete

    // Phase round 2: contract along the hook pointers. With unique times the
    // hook graph is a functional pseudoforest whose only cycles are 2-cycles
    // sharing one edge; each walk follows hooks (times strictly decrease
    // along a chain) and roots itself at the smaller label of its 2-cycle.
    // Walks may exceed the per-machine budget on adversarial chains — the
    // runtime records the violation; [4]'s full algorithm avoids it.
    auto t_hook = rt.lease_dense<std::uint64_t>("msf.hook", n, kNoNext);
    for (const auto& [c, key] : proposals) {
      const EdgeId e = static_cast<EdgeId>(key & 0xffffffffull);
      if (!in_forest[e]) in_forest[e] = 1;
      const VertexId cu = comp[g.edges[e].u];
      const VertexId cv2 = comp[g.edges[e].v];
      const VertexId other = (cu == c) ? cv2 : cu;
      t_hook->seed(c, other);
    }
    (void)budget;
    auto t_new = rt.lease_dense<std::uint64_t>("msf.newlabel", n);
    rt.round_over_items("msf.contract", n, [&](MachineContext&, std::uint64_t v) {
      std::uint64_t cur = t_comp->get(v);
      for (std::uint64_t hops = 0; hops <= n; ++hops) {
        const std::uint64_t h = t_hook->get(cur);
        if (h == kNoNext) break;  // root: component proposed nothing
        const std::uint64_t hh = t_hook->get(h);
        if (hh == cur) {  // 2-cycle: smaller label wins
          cur = std::min(cur, h);
          break;
        }
        cur = h;
      }
      t_new->put(v, cur);
    });
    VertexId fresh_comps = 0;
    {
      std::vector<std::uint8_t> seen(n, 0);
      for (VertexId v = 0; v < n; ++v) {
        comp[v] = static_cast<VertexId>(t_new->raw(v));
        if (!seen[comp[v]]) {
          seen[comp[v]] = 1;
          ++fresh_comps;
        }
      }
    }
    REPRO_CHECK_MSG(fresh_comps < num_comps, "Boruvka phase made no progress");
    num_comps = fresh_comps;
    if (num_comps == 1) break;
  }

  std::vector<EdgeId> forest;
  for (EdgeId e = 0; e < g.edges.size(); ++e) {
    if (in_forest[e]) forest.push_back(e);
  }
  // (time, id): generated orders have unique times, but hand-built orders
  // may tie — the id tie-break keeps the forest order deterministic either
  // way (same contract as contraction.cpp).
  psort::stable_sort_keys(&ThreadPool::shared(), forest,
                          [&](EdgeId a, EdgeId b) {
                            return order.time[a] != order.time[b]
                                       ? order.time[a] < order.time[b]
                                       : a < b;
                          });
  return forest;
}

std::vector<EdgeId> ampc_msf_cited(Runtime& rt, const WGraph& g,
                                   const ContractionOrder& order) {
  const auto cited = static_cast<std::uint64_t>(
      std::ceil(1.0 / std::max(0.1, rt.config().eps)));
  rt.charge_rounds("msf[cited Behnezhad et al. 2020]", cited);
  return msf_edges_by_time(g, order);
}

}  // namespace ampccut::ampc
