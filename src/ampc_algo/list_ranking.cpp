#include "ampc_algo/list_ranking.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.h"
#include "support/rng.h"

namespace ampccut::ampc {

namespace {

// One contraction level: successor pointers plus k value columns, and the
// mapping of this level's dense ids back to the previous level's ids.
struct Level {
  std::vector<std::uint64_t> next;
  std::vector<std::vector<std::int64_t>> value;  // [column][element]
  std::vector<std::uint64_t> to_prev;
};

// Per-column dense tables bundled for one level (leased, so the column
// storage recycles across contraction levels).
struct ValueTables {
  std::vector<TableLease<DenseTable<std::int64_t>>> cols;

  ValueTables(Runtime& rt, const char* name,
              const std::vector<std::vector<std::int64_t>>& value) {
    for (const auto& col : value) {
      cols.push_back(rt.lease_dense<std::int64_t>(name, col.size()));
      for (std::uint64_t i = 0; i < col.size(); ++i) {
        cols.back()->seed(i, col[i]);
      }
    }
  }
};

}  // namespace

std::vector<std::vector<std::int64_t>> list_rank_multi(
    Runtime& rt, const std::vector<std::uint64_t>& next,
    const std::vector<std::vector<std::int64_t>>& value_columns,
    std::uint64_t seed) {
  const std::uint64_t n0 = next.size();
  const std::size_t k = value_columns.size();
  REPRO_CHECK(k >= 1);
  for (const auto& col : value_columns) REPRO_CHECK(col.size() == n0);
  if (n0 == 0) return std::vector<std::vector<std::int64_t>>(k);
  const std::uint64_t mem = rt.config().machine_memory_words;

  // ---- Contraction phase: sample, walk, build the contracted list. -------
  std::vector<Level> levels;
  levels.push_back({next, value_columns, {}});
  Rng level_rng(seed);
  bool resolved_by_walk = false;

  while (levels.back().next.size() > mem) {
    const Level& cur = levels.back();
    const std::uint64_t n = cur.next.size();
    // Sampling probability ~ 1/sqrt(M): walks stay ~sqrt(M) whp while the
    // list shrinks by a sqrt(M) factor per level.
    const double q = std::min(
        0.5,
        1.0 / std::sqrt(static_cast<double>(std::max<std::uint64_t>(4, mem))));

    auto t_next = rt.lease_dense<std::uint64_t>("lr.next", n);
    ValueTables t_val(rt, "lr.val", cur.value);
    auto t_sampled = rt.lease_dense<std::uint8_t>("lr.sampled", n, 0);
    for (std::uint64_t i = 0; i < n; ++i) t_next->seed(i, cur.next[i]);
    const std::uint64_t lvl_seed = level_rng.next_u64();

    // Round 1: every element flips its sampling coin; tails always sample
    // (the recursion must retain every list's anchor).
    rt.round_over_items("list_rank.sample", n,
                        [&](MachineContext&, std::uint64_t i) {
      const bool tail = t_next->get(i) == kNoNext;
      const bool coin = Rng(splitmix64(lvl_seed ^ i)).next_bernoulli(q);
      if (tail || coin) t_sampled->put(i, 1);
    });

    // Round 2: sampled elements walk to the next sampled element, summing
    // skipped values per column — the adaptive step MPC cannot do in O(1).
    auto t_succ = rt.lease_dense<std::uint64_t>("lr.succ", n, kNoNext);
    std::vector<TableLease<DenseTable<std::int64_t>>> t_segsum;
    for (std::size_t c = 0; c < k; ++c) {
      t_segsum.push_back(rt.lease_dense<std::int64_t>("lr.segsum", n, 0));
    }
    rt.round_over_items("list_rank.walk", n,
                        [&](MachineContext&, std::uint64_t i) {
      if (!t_sampled->get(i)) return;
      std::vector<std::int64_t> acc(k);
      for (std::size_t c = 0; c < k; ++c) acc[c] = t_val.cols[c]->get(i);
      std::uint64_t j = t_next->get(i);
      while (j != kNoNext && !t_sampled->get(j)) {
        for (std::size_t c = 0; c < k; ++c) acc[c] += t_val.cols[c]->get(j);
        j = t_next->get(j);
      }
      t_succ->put(i, j);
      for (std::size_t c = 0; c < k; ++c) t_segsum[c]->put(i, acc[c]);
    });

    // Driver-side compaction of the sampled ids into dense ids. (In the
    // model this is a stable prefix-sum compaction, O(1/eps) rounds; we run
    // the arithmetic directly and charge the published cost.)
    rt.charge_rounds("list_rank.compact[cited]", 1);
    Level nxt;
    std::vector<std::uint64_t> dense(n, kNoNext);
    for (std::uint64_t i = 0; i < n; ++i) {
      if (t_sampled->raw(i)) {
        dense[i] = nxt.to_prev.size();
        nxt.to_prev.push_back(i);
      }
    }
    if (nxt.to_prev.size() > n - n / 10) {
      // Barely any contraction: the input is dominated by tiny chains whose
      // tails were force-sampled. Rank the level directly — every element
      // walks to its tail; walks are short exactly in this regime (a long
      // all-sampled chain has probability q^len).
      Level& cur_level = levels.back();
      std::vector<TableLease<DenseTable<std::int64_t>>> t_rank;
      for (std::size_t c = 0; c < k; ++c) {
        t_rank.push_back(rt.lease_dense<std::int64_t>("lr.walkout", n, 0));
      }
      rt.round_over_items("list_rank.direct_walk", n,
                          [&](MachineContext&, std::uint64_t i) {
        std::vector<std::int64_t> acc(k);
        for (std::size_t c = 0; c < k; ++c) acc[c] = t_val.cols[c]->get(i);
        for (std::uint64_t j = t_next->get(i); j != kNoNext;
             j = t_next->get(j)) {
          for (std::size_t c = 0; c < k; ++c) acc[c] += t_val.cols[c]->get(j);
        }
        for (std::size_t c = 0; c < k; ++c) t_rank[c]->put(i, acc[c]);
      });
      for (std::size_t c = 0; c < k; ++c) {
        for (std::uint64_t i = 0; i < n; ++i) {
          cur_level.value[c][i] = t_rank[c]->raw(i);
        }
      }
      resolved_by_walk = true;
      break;
    }
    nxt.next.resize(nxt.to_prev.size());
    nxt.value.assign(k, std::vector<std::int64_t>(nxt.to_prev.size()));
    for (std::uint64_t d = 0; d < nxt.to_prev.size(); ++d) {
      const std::uint64_t i = nxt.to_prev[d];
      const std::uint64_t s = t_succ->raw(i);
      nxt.next[d] = (s == kNoNext) ? kNoNext : dense[s];
      for (std::size_t c = 0; c < k; ++c) nxt.value[c][d] = t_segsum[c]->raw(i);
    }
    levels.push_back(std::move(nxt));
  }

  // ---- Base case: the whole (contracted) list fits on one machine. -------
  if (!resolved_by_walk) {
    Level& base = levels.back();
    const std::uint64_t n = base.next.size();
    auto t_next = rt.lease_dense<std::uint64_t>("lr.base.next", n);
    ValueTables t_val(rt, "lr.base.val", base.value);
    std::vector<TableLease<DenseTable<std::int64_t>>> t_rank;
    for (std::size_t c = 0; c < k; ++c) {
      t_rank.push_back(rt.lease_dense<std::int64_t>("lr.base.rank", n, 0));
    }
    for (std::uint64_t i = 0; i < n; ++i) t_next->seed(i, base.next[i]);
    rt.round("list_rank.base", 1, [&](MachineContext&) {
      // One machine ranks all chains locally: find heads (elements nobody
      // points to), then suffix-sum each chain back to front.
      std::vector<std::uint64_t> nxt(n);
      std::vector<std::vector<std::int64_t>> val(k,
                                                 std::vector<std::int64_t>(n));
      std::vector<std::uint8_t> has_pred(n, 0);
      for (std::uint64_t i = 0; i < n; ++i) {
        nxt[i] = t_next->get(i);
        for (std::size_t c = 0; c < k; ++c) val[c][i] = t_val.cols[c]->get(i);
        if (nxt[i] != kNoNext) has_pred[nxt[i]] = 1;
      }
      for (std::uint64_t h = 0; h < n; ++h) {
        if (has_pred[h]) continue;
        std::vector<std::uint64_t> chain;
        for (std::uint64_t j = h; j != kNoNext; j = nxt[j]) chain.push_back(j);
        std::vector<std::int64_t> acc(k, 0);
        for (std::size_t idx = chain.size(); idx-- > 0;) {
          for (std::size_t c = 0; c < k; ++c) {
            acc[c] += val[c][chain[idx]];
            t_rank[c]->put(chain[idx], acc[c]);
          }
        }
      }
    });
    for (std::size_t c = 0; c < k; ++c) {
      for (std::uint64_t i = 0; i < n; ++i) {
        base.value[c][i] = t_rank[c]->raw(i);
      }
    }
  }

  // ---- Expansion phase: push ranks back down level by level. -------------
  for (std::size_t li = levels.size() - 1; li-- > 0;) {
    Level& fine = levels[li];
    const Level& coarse = levels[li + 1];
    const std::uint64_t n = fine.next.size();
    constexpr std::int64_t kUnset = std::numeric_limits<std::int64_t>::min();
    auto t_next = rt.lease_dense<std::uint64_t>("lr.x.next", n);
    ValueTables t_val(rt, "lr.x.val", fine.value);
    auto t_known = rt.lease_dense<std::uint8_t>("lr.x.known", n, 0);
    std::vector<TableLease<DenseTable<std::int64_t>>> t_rank_s, t_rank;
    for (std::size_t c = 0; c < k; ++c) {
      t_rank_s.push_back(rt.lease_dense<std::int64_t>("lr.x.ranks", n, kUnset));
      t_rank.push_back(rt.lease_dense<std::int64_t>("lr.x.rank", n, 0));
    }
    for (std::uint64_t i = 0; i < n; ++i) t_next->seed(i, fine.next[i]);
    for (std::uint64_t d = 0; d < coarse.to_prev.size(); ++d) {
      t_known->seed(coarse.to_prev[d], 1);
      for (std::size_t c = 0; c < k; ++c) {
        t_rank_s[c]->seed(coarse.to_prev[d], coarse.value[c][d]);
      }
    }
    rt.round_over_items("list_rank.expand", n,
                        [&](MachineContext&, std::uint64_t i) {
      // rank(i) = values i..pred(s) + rank(s) for the next sampled s.
      if (t_known->get(i)) {
        for (std::size_t c = 0; c < k; ++c) {
          t_rank[c]->put(i, t_rank_s[c]->get(i));
        }
        return;
      }
      std::vector<std::int64_t> acc(k);
      for (std::size_t c = 0; c < k; ++c) acc[c] = t_val.cols[c]->get(i);
      std::uint64_t j = t_next->get(i);
      while (j != kNoNext) {
        if (t_known->get(j)) {
          for (std::size_t c = 0; c < k; ++c) acc[c] += t_rank_s[c]->get(j);
          break;
        }
        for (std::size_t c = 0; c < k; ++c) acc[c] += t_val.cols[c]->get(j);
        j = t_next->get(j);
      }
      for (std::size_t c = 0; c < k; ++c) t_rank[c]->put(i, acc[c]);
    });
    for (std::size_t c = 0; c < k; ++c) {
      for (std::uint64_t i = 0; i < n; ++i) {
        fine.value[c][i] = t_rank[c]->raw(i);
      }
    }
  }

  return levels.front().value;
}

std::vector<std::int64_t> list_rank(Runtime& rt,
                                    const std::vector<std::uint64_t>& next,
                                    const std::vector<std::int64_t>& value,
                                    std::uint64_t seed) {
  auto cols = list_rank_multi(rt, next, {value}, seed);
  return std::move(cols[0]);
}

}  // namespace ampccut::ampc
