#include "ampc_algo/prefix_min.h"

#include <algorithm>
#include <limits>

#include "support/bits.h"
#include "support/check.h"

namespace ampccut::ampc {

namespace {

struct Summary {
  std::int64_t sum = 0;
  std::int64_t min_prefix = std::numeric_limits<std::int64_t>::max();
  std::uint64_t argmin = 0;  // absolute index into the original sequence
};

// Combine left-to-right: the right block's prefixes are offset by the left
// block's total sum. Ties keep the leftmost witness.
Summary combine(const Summary& l, const Summary& r) {
  Summary out;
  out.sum = l.sum + r.sum;
  out.min_prefix = l.min_prefix;
  out.argmin = l.argmin;
  if (r.min_prefix != std::numeric_limits<std::int64_t>::max()) {
    const std::int64_t shifted = l.sum + r.min_prefix;
    if (shifted < out.min_prefix) {
      out.min_prefix = shifted;
      out.argmin = r.argmin;
    }
  }
  return out;
}

}  // namespace

std::vector<std::int64_t> prefix_sums(Runtime& rt,
                                      const std::vector<std::int64_t>& values) {
  const std::uint64_t n = values.size();
  if (n == 0) return {};
  const std::uint64_t B = std::max<std::uint64_t>(2, rt.config().machine_memory_words);

  // Up-sweep: tier t holds block sums of tier t-1 (blocks of size B).
  std::vector<std::vector<std::int64_t>> tiers{values};
  while (tiers.back().size() > 1) {
    const auto& cur = tiers.back();
    const std::uint64_t blocks = ceil_div(cur.size(), B);
    auto t_in = rt.lease_dense<std::int64_t>("psum.in", cur.size());
    auto t_out = rt.lease_dense<std::int64_t>("psum.out", blocks, 0);
    for (std::uint64_t i = 0; i < cur.size(); ++i) t_in->seed(i, cur[i]);
    rt.round("prefix_sums.up", blocks, [&](MachineContext& ctx) {
      const std::uint64_t b = ctx.machine_id();
      const std::uint64_t lo = b * B, hi = std::min<std::uint64_t>(cur.size(), lo + B);
      std::int64_t s = 0;
      for (std::uint64_t i = lo; i < hi; ++i) s += t_in->get(i);
      t_out->put(b, s);
    });
    std::vector<std::int64_t> nxt(blocks);
    for (std::uint64_t b = 0; b < blocks; ++b) nxt[b] = t_out->raw(b);
    tiers.push_back(std::move(nxt));
    if (blocks == 1) break;
  }

  // Down-sweep: carry the exclusive prefix of each block downward.
  std::vector<std::int64_t> carry{0};  // exclusive prefix per top-tier block
  for (std::size_t t = tiers.size(); t-- > 0;) {
    const auto& cur = tiers[t];
    auto t_in = rt.lease_dense<std::int64_t>("psum.d.in", cur.size());
    auto t_carry = rt.lease_dense<std::int64_t>("psum.d.carry", carry.size());
    auto t_out = rt.lease_dense<std::int64_t>("psum.d.out", cur.size(), 0);
    for (std::uint64_t i = 0; i < cur.size(); ++i) t_in->seed(i, cur[i]);
    for (std::uint64_t i = 0; i < carry.size(); ++i) t_carry->seed(i, carry[i]);
    const std::uint64_t blocks = ceil_div(cur.size(), B);
    rt.round("prefix_sums.down", blocks, [&](MachineContext& ctx) {
      const std::uint64_t b = ctx.machine_id();
      const std::uint64_t lo = b * B, hi = std::min<std::uint64_t>(cur.size(), lo + B);
      std::int64_t acc = t_carry->get(b);
      for (std::uint64_t i = lo; i < hi; ++i) {
        acc += t_in->get(i);
        t_out->put(i, acc);  // inclusive prefix
      }
    });
    if (t == 0) {
      std::vector<std::int64_t> out(cur.size());
      for (std::uint64_t i = 0; i < cur.size(); ++i) out[i] = t_out->raw(i);
      return out;
    }
    // Exclusive prefixes for the tier below = inclusive prefix minus own sum.
    std::vector<std::int64_t> next_carry(cur.size());
    for (std::uint64_t i = 0; i < cur.size(); ++i) {
      next_carry[i] = t_out->raw(i) - cur[i];
    }
    carry = std::move(next_carry);
  }
  return {};
}

std::vector<MinPrefixResult> segmented_min_prefix_sum(
    Runtime& rt, const std::vector<std::int64_t>& values,
    const std::vector<std::uint64_t>& offsets) {
  REPRO_CHECK(!offsets.empty());
  REPRO_CHECK(offsets.back() == values.size());
  const std::uint64_t num_segs = offsets.size() - 1;
  const std::uint64_t B = std::max<std::uint64_t>(2, rt.config().machine_memory_words);

  // Unit = (segment, block range). Tier 0 units cover raw values; each later
  // tier combines up to B summaries of the same segment. Units of all
  // segments at a tier execute in the same round.
  struct Unit {
    std::uint64_t seg;
    std::uint64_t lo, hi;  // range in the previous tier's array
  };

  // Tier 0: summaries of value blocks.
  std::vector<Summary> cur;    // per-unit summaries after each tier
  std::vector<std::uint64_t> cur_seg;
  {
    std::vector<Unit> units;
    for (std::uint64_t s = 0; s < num_segs; ++s) {
      for (std::uint64_t lo = offsets[s]; lo < offsets[s + 1]; lo += B) {
        units.push_back({s, lo, std::min(offsets[s + 1], lo + B)});
      }
      if (offsets[s] == offsets[s + 1]) {
        units.push_back({s, offsets[s], offsets[s]});  // empty segment marker
      }
    }
    auto t_vals = rt.lease_dense<std::int64_t>("smp.vals", values.size());
    for (std::uint64_t i = 0; i < values.size(); ++i) t_vals->seed(i, values[i]);
    auto t_out = rt.lease_dense<Summary>("smp.t0", units.size());
    rt.round("segmented_min_prefix.leaf", units.size(), [&](MachineContext& ctx) {
      const Unit& u = units[ctx.machine_id()];
      Summary s;
      std::int64_t acc = 0;
      for (std::uint64_t i = u.lo; i < u.hi; ++i) {
        acc += t_vals->get(i);
        if (acc < s.min_prefix) {
          s.min_prefix = acc;
          s.argmin = i - offsets[u.seg];
        }
      }
      s.sum = acc;
      t_out->put(ctx.machine_id(), s);
    });
    cur.resize(units.size());
    cur_seg.resize(units.size());
    for (std::uint64_t i = 0; i < units.size(); ++i) {
      cur[i] = t_out->raw(i);
      cur_seg[i] = units[i].seg;
    }
  }

  // Combine tiers until one summary per segment remains.
  while (cur.size() > num_segs) {
    // Group consecutive units of the same segment into runs; chunk runs by B.
    std::vector<Unit> units;
    std::uint64_t i = 0;
    while (i < cur.size()) {
      std::uint64_t j = i;
      while (j < cur.size() && cur_seg[j] == cur_seg[i]) ++j;
      for (std::uint64_t lo = i; lo < j; lo += B) {
        units.push_back({cur_seg[i], lo, std::min(j, lo + B)});
      }
      i = j;
    }
    auto t_in = rt.lease_dense<Summary>("smp.in", cur.size());
    for (std::uint64_t k = 0; k < cur.size(); ++k) t_in->seed(k, cur[k]);
    auto t_out = rt.lease_dense<Summary>("smp.out", units.size());
    rt.round("segmented_min_prefix.combine", units.size(),
             [&](MachineContext& ctx) {
               const Unit& u = units[ctx.machine_id()];
               Summary acc;  // empty-identity
               acc.min_prefix = std::numeric_limits<std::int64_t>::max();
               bool first = true;
               for (std::uint64_t k = u.lo; k < u.hi; ++k) {
                 const Summary s = t_in->get(k);
                 acc = first ? s : combine(acc, s);
                 first = false;
               }
               t_out->put(ctx.machine_id(), acc);
             });
    std::vector<Summary> nxt(units.size());
    std::vector<std::uint64_t> nxt_seg(units.size());
    for (std::uint64_t k = 0; k < units.size(); ++k) {
      nxt[k] = t_out->raw(k);
      nxt_seg[k] = units[k].seg;
    }
    if (nxt.size() == cur.size()) break;  // nothing left to combine
    cur = std::move(nxt);
    cur_seg = std::move(nxt_seg);
  }

  std::vector<MinPrefixResult> out(num_segs,
                                   {std::numeric_limits<std::int64_t>::max(), 0});
  for (std::uint64_t k = 0; k < cur.size(); ++k) {
    out[cur_seg[k]] = {cur[k].min_prefix, cur[k].argmin};
  }
  return out;
}

MinPrefixResult min_prefix_sum(Runtime& rt,
                               const std::vector<std::int64_t>& values) {
  REPRO_CHECK(!values.empty());
  const auto r = segmented_min_prefix_sum(
      rt, values, {0, static_cast<std::uint64_t>(values.size())});
  return r[0];
}

}  // namespace ampccut::ampc
