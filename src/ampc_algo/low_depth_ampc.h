// LowDepthDecomp (Algorithm 2) on the AMPC runtime, in O(1/eps) measured
// rounds on top of the Euler-tour toolkit:
//   1. root + orient (Lemma 4)                 — ampc_root_tree;
//   2. heavy children / heavy paths (Def. 2-4) — one kMax-merge reduction
//      round plus three chain list-rankings (position, length, head id);
//   3. binarized paths (Def. 5)                — implicit: pure heap index
//      arithmetic from (position, length), never materialized;
//   4. labels (Sec. 3.4)                       — one adaptive-walk round up
//      the meta tree for base depths (O(log n) reads per head), then one
//      local-arithmetic round for every vertex's label.
//
// Tie-breaking matches the sequential implementation exactly (larger
// subtree, then smaller vertex id), so tests can assert label-for-label
// equality with tree/low_depth.h.
//
// Cost: steps 2-4 are measured (a constant number of rounds plus three list
// rankings at O(1/eps) each); the only charged rounds are those inherited
// from the tour/ranking subroutines (`euler.sort[cited]`,
// `list_rank.compact[cited]`). DHT traffic is O(n) words per round — one
// O(1)-word record per vertex or per heavy-path head — except the
// base-depth walk, whose adaptive reads are O(log n) words per head and
// O(n^eps) per machine (E2b sweeps eps to confirm rounds scale as 1/eps and
// stay flat in n).
#pragma once

#include <cstdint>
#include <vector>

#include "ampc/runtime.h"
#include "ampc_algo/tree_ops.h"

namespace ampccut::ampc {

struct AmpcDecomposition {
  std::vector<std::uint32_t> label;      // the decomposition labeling
  std::uint32_t height = 0;
  std::vector<VertexId> head;            // head of v's heavy path
  std::vector<std::uint32_t> pos;        // position within the path (head=0)
  std::vector<std::uint32_t> len;        // length of v's heavy path
  std::vector<std::uint32_t> base_depth; // expanded depth of v's path's root
  std::vector<std::uint32_t> leaf_depth; // expanded depth of v's own leaf
};

AmpcDecomposition ampc_low_depth_decomposition(Runtime& rt,
                                               const AmpcRootedTree& tree);

}  // namespace ampccut::ampc
