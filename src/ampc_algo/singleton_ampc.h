// SmallestSingletonCut (Algorithm 3 / Theorem 3) on the AMPC runtime.
//
// Round structure (measured unless marked cited):
//   1. MSF of the contraction order            — cited O(1/eps) [4], or the
//      measured Boruvka variant (ablation);
//   2. root/orient + low-depth decomposition   — Euler tours, list rankings,
//      label arithmetic (Lemmas 3-7), measured;
//   3. HLD + path-max RMQ build                — cited O(1/eps) (Theorem 4);
//      queries are measured reads (O(log n) per query, as Theorem 4 states);
//   4. leader resolution for every (vertex, level) pair — ONE adaptive-walk
//      round navigating components arithmetically through the binarized-path
//      geometry (this is where Definition 1 + Lemma 10's "positions are
//      functions of path length and position" pay off; levels processed in
//      parallel with the O(log^2 n) memory blowup of Lemma 9);
//   5. ldr_time per leader (Lemma 11)          — one round, <= 2 boundary
//      candidates each;
//   6. edge time intervals (Lemmas 12/13)      — one round over
//      (edge, level) pairs;
//   7. group intervals by leader               — cited sort;
//   8. minimum coverage per leader (Lemma 14)  — segmented min-prefix-sum
//      (Theorem 5), measured.
//
// Exactness contract: identical output (including a reconstructable witness)
// to mincut/singleton.h's oracle on every graph — enforced by tests.
//
// Cost summary: steps 2, 4, 5, 6 and 8 are measured; steps 1, 3 and 7 are
// charged (`msf[cited Behnezhad et al. 2020]`, `hld_rmq.build[cited Thm 4]`,
// `singleton.group_sort[cited]`). DHT traffic is dominated by the
// (vertex, level) and (edge, level) rounds: O((n+m) log n) word writes in
// total with the O(log^2 n) interval blowup bounded by Lemma 9 (E3 reports
// peak_table_words against that budget); leader-resolution walks and
// path-max queries are adaptive reads of O(log n) words each, keeping
// per-machine traffic within O(n^eps) up to the violations A1c measures.
#pragma once

#include "ampc/runtime.h"
#include "graph/graph.h"
#include "mincut/singleton.h"

namespace ampccut::ampc {

struct AmpcSingletonOptions {
  bool use_boruvka_msf = false;  // measured MSF instead of cited
};

// Requires a connected graph with n >= 2 (the min-cut driver guards
// disconnected inputs). Rounds/reads/memory accumulate into rt.metrics().
SingletonCutResult ampc_min_singleton_cut(Runtime& rt, const WGraph& g,
                                          const ContractionOrder& order,
                                          const AmpcSingletonOptions& opt = {});

}  // namespace ampccut::ampc
