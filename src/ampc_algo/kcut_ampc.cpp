#include "ampc_algo/kcut_ampc.h"

#include <algorithm>

#include "support/check.h"
#include "support/rng.h"

namespace ampccut::ampc {

AmpcKCutReport ampc_apx_split_k_cut(const WGraph& g, std::uint32_t k,
                                    const AmpcMinCutOptions& opt) {
  AmpcKCutReport report;
  // Per-iteration round maxima: the greedy loop calls the splitter once per
  // component per iteration; components are model-parallel. Iterations are
  // delimited by watching the iteration counter grow.
  std::uint64_t iter_measured = 0;
  std::uint64_t iter_charged = 0;
  std::uint64_t salt = 0;
  std::uint32_t calls_this_iter = 0;

  auto flush_iteration = [&]() {
    report.measured_rounds += iter_measured;
    report.charged_rounds += iter_charged + 1;  // +1: component count [4]
    iter_measured = 0;
    iter_charged = 0;
    calls_this_iter = 0;
  };

  // apx_split_k_cut solves all components, picks the cheapest cut, then
  // recomputes components — one pass per greedy iteration; on_iteration
  // fires at each pass boundary and flushes the parallel round-group.
  const ApproxKCutResult r = apx_split_k_cut(
      g, k,
      [&](const WGraph& component) {
        AmpcMinCutOptions o = opt;
        o.recursion.seed = splitmix64(opt.recursion.seed ^ ++salt);
        const AmpcMinCutReport sub = ampc_approx_min_cut(component, o);
        iter_measured = std::max(iter_measured, sub.measured_rounds);
        iter_charged = std::max(iter_charged, sub.charged_rounds);
        ++calls_this_iter;
        return MinCutResult{sub.weight, sub.side};
      },
      [&](std::uint32_t) { flush_iteration(); });
  if (calls_this_iter > 0) flush_iteration();
  report.result = r;
  return report;
}

}  // namespace ampccut::ampc
