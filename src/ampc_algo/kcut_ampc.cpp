#include "ampc_algo/kcut_ampc.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "support/check.h"
#include "support/rng.h"
#include "support/threadpool.h"

namespace ampccut::ampc {

AmpcKCutReport ampc_apx_split_k_cut(const WGraph& g, std::uint32_t k,
                                    const AmpcMinCutOptions& opt) {
  AmpcKCutReport report;
  // Per-iteration round maxima: the greedy loop calls the splitter once per
  // component per iteration; components are model-parallel (and, with a
  // pool, actually parallel — the max/sum accumulation below is commutative,
  // so the report is thread-count independent). on_iteration runs on the
  // driving thread between fan-outs and flushes the parallel round-group.
  std::mutex mu;
  std::uint64_t iter_measured = 0;
  std::uint64_t iter_charged = 0;
  std::uint32_t calls_this_iter = 0;

  // Caller must hold `mu`: the iteration counters are written by concurrent
  // component tasks, so even the post-join "anything left?" check reads them
  // under the lock (the lone unlocked read here was the repo's one TSan gap).
  auto flush_iteration_locked = [&]() {
    report.measured_rounds += iter_measured;
    report.charged_rounds += iter_charged + 1;  // +1: component count [4]
    iter_measured = 0;
    iter_charged = 0;
    calls_this_iter = 0;
  };

  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = resolve_recursion_pool(opt.recursion.threads, owned);
  AmpcMinCutOptions base = opt;
  if (owned != nullptr) base.recursion.threads = 1;  // see kcut.cpp

  // One runtime arena for the whole k-cut run: every component of every
  // greedy iteration leases tracker runtimes (and their pooled tables) from
  // it, instead of constructing a fresh Runtime per min-cut call.
  RuntimeArena arena;
  if (base.arena == nullptr) base.arena = &arena;

  const ApproxKCutResult r = apx_split_k_cut(
      g, k,
      [&, base](const WGraph& component, std::uint64_t call_seq) {
        AmpcMinCutOptions o = base;
        o.recursion.seed = splitmix64(base.recursion.seed ^ call_seq);
        const AmpcMinCutReport sub = ampc_approx_min_cut(component, o);
        {
          std::lock_guard<std::mutex> lock(mu);
          iter_measured = std::max(iter_measured, sub.measured_rounds);
          iter_charged = std::max(iter_charged, sub.charged_rounds);
          report.faults_injected += sub.faults_injected;
          report.machine_failures += sub.machine_failures;
          report.rounds_retried += sub.rounds_retried;
          report.budget_degradations += sub.budget_degradations;
          ++calls_this_iter;
        }
        return MinCutResult{sub.weight, sub.side};
      },
      [&](std::uint32_t) {
        std::lock_guard<std::mutex> lock(mu);
        flush_iteration_locked();
      },
      pool);
  {
    std::lock_guard<std::mutex> lock(mu);
    if (calls_this_iter > 0) flush_iteration_locked();
  }
  report.result = r;
  return report;
}

}  // namespace ampccut::ampc
