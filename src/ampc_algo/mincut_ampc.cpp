#include "ampc_algo/mincut_ampc.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "ampc_algo/singleton_ampc.h"
#include "exact/stoer_wagner.h"
#include "support/check.h"

namespace ampccut::ampc {

AmpcMinCutReport ampc_approx_min_cut(const WGraph& g,
                                     const AmpcMinCutOptions& opt) {
  AmpcMinCutReport report;

  // Per-level maxima (instances of one level are model-parallel). The
  // recursion driver invokes the hooks concurrently; every accumulation is a
  // commutative max/sum, so the mutex only guards the containers — the
  // totals are the same for every thread count.
  std::mutex mu;
  std::map<std::uint32_t, std::uint64_t> level_measured;
  std::map<std::uint32_t, std::uint64_t> level_charged;
  bool any_local = false;

  // Tracker runs lease runtimes from the caller's arena (or a local one):
  // concurrent recursion branches get distinct runtimes, sequential reruns
  // reuse one runtime's pooled tables instead of reallocating them.
  RuntimeArena local_arena;
  RuntimeArena* arena = opt.arena != nullptr ? opt.arena : &local_arena;

  MinCutBackend backend;
  backend.track_singleton = [&, arena](const WGraph& inst,
                                       const ContractionOrder& o,
                                       std::uint32_t level) {
    AmpcSingletonOptions sopt;
    sopt.use_boruvka_msf = opt.use_boruvka_msf;
    // Graceful degradation under strict budgets: BudgetExceededError is
    // deterministic (the barrier never retries it), so rerun the instance
    // with a coarser model — larger eps means bigger machines and fewer of
    // them. Once eps tops out at 1 the last resort is rerunning with
    // enforcement relaxed to counting (still recorded as a degradation), so
    // the solve always completes and the stats say exactly what it cost. A
    // failed run's lease unwinds before the next acquire, so its metrics
    // are never counted; the tracker result itself is model-eps-independent.
    double eps = opt.model_eps;
    bool strict = opt.strict_budget;
    for (;;) {
      Config cfg = Config::for_problem(inst.n + inst.m(), eps);
      cfg.strict_budget = strict;
      cfg.transport = opt.transport;
      cfg.num_processes = opt.num_processes;
      cfg.fault = opt.fault;
      cfg.retry = opt.retry;
      RuntimeArena::Lease rt = arena->acquire(cfg);
      SingletonCutResult r;
      try {
        r = ampc_min_singleton_cut(*rt, inst, o, sopt);
      } catch (const BudgetExceededError&) {
        if (eps < 1.0) {
          eps = std::min(1.0, eps + std::max(0.01, opt.degrade_eps_step));
        } else {
          strict = false;  // terminal fallback: count instead of throwing
        }
        std::lock_guard<std::mutex> lock(mu);
        ++report.budget_degradations;
        continue;
      }
      const Metrics& m = rt->metrics();
      std::lock_guard<std::mutex> lock(mu);
      level_measured[level] = std::max(level_measured[level], m.rounds);
      level_charged[level] = std::max(level_charged[level], m.charged_rounds);
      report.dht_reads += m.dht_reads;
      report.dht_writes += m.dht_writes;
      report.max_machine_traffic =
          std::max(report.max_machine_traffic, m.max_machine_traffic);
      report.peak_table_words =
          std::max(report.peak_table_words, m.peak_table_words);
      report.budget_violations += m.budget_violations.load();
      report.faults_injected += m.faults_injected.load();
      report.machine_failures += m.machine_failures.load();
      report.rounds_retried += m.rounds_retried;
      return r;
    }
  };
  backend.solve_local = [&](const WGraph& inst, std::uint32_t) {
    {
      // Leaf instances fit one machine: one parallel round, counted once.
      std::lock_guard<std::mutex> lock(mu);
      any_local = true;
    }
    return stoer_wagner_min_cut(inst);
  };
  backend.on_level = [](std::uint32_t, std::uint64_t) {};

  const ApproxMinCutResult r =
      approx_min_cut_with_backend(g, opt.recursion, backend);
  report.weight = r.weight;
  report.side = r.side;
  report.stats = r.stats;

  const auto per_level_overhead = static_cast<std::uint64_t>(
      std::ceil(1.0 / std::max(0.1, opt.model_eps)));
  for (const auto& [level, rounds] : level_measured) {
    report.measured_rounds += rounds;
    report.charged_rounds += level_charged[level];
    // Copy + contract-to-target per level (Algorithm 1 lines 4/6): the
    // contraction is an O(1/eps)-round relabeling, charged as cited [4].
    report.charged_rounds += per_level_overhead;
    ++report.levels_used;
  }
  if (any_local) report.measured_rounds += 1;
  return report;
}

}  // namespace ampccut::ampc
