#include "ampc_algo/tree_ops.h"

#include <algorithm>
#include <numeric>

#include "ampc_algo/list_ranking.h"
#include "support/check.h"
#include "support/psort.h"

namespace ampccut::ampc {

AmpcRootedTree ampc_root_tree(Runtime& rt, VertexId n,
                              const std::vector<WEdge>& edges,
                              const std::vector<TimeStep>& times,
                              VertexId root) {
  REPRO_CHECK(n >= 1 && root < n);
  REPRO_CHECK(edges.size() + 1 == n);
  REPRO_CHECK(times.size() == edges.size());
  AmpcRootedTree out;
  out.n = n;
  out.root = root;
  out.parent.assign(n, kInvalidVertex);
  out.parent_time.assign(n, 0);
  out.depth.assign(n, 0);
  out.subtree.assign(n, 1);
  out.preorder.assign(n, 0);
  if (n == 1) return out;

  const std::uint64_t num_arcs = 2 * edges.size();
  // Arc 2e = (u->v), arc 2e+1 = (v->u). CSR of arcs grouped by tail. The
  // grouping is a sort by tail — a standard O(1/eps) AMPC sample sort, run
  // driver-side and charged (DESIGN.md round-accounting policy).
  rt.charge_rounds("euler.sort[cited]", 2);
  std::vector<std::uint64_t> arc_order(num_arcs);
  std::iota(arc_order.begin(), arc_order.end(), 0);
  auto tail_of = [&](std::uint64_t a) {
    const WEdge& e = edges[a / 2];
    return (a % 2 == 0) ? e.u : e.v;
  };
  auto head_of = [&](std::uint64_t a) {
    const WEdge& e = edges[a / 2];
    return (a % 2 == 0) ? e.v : e.u;
  };
  // Stable by tail + ascending arc ids = the (tail, arc) order the old
  // comparison sort produced.
  psort::stable_sort_keys(&ThreadPool::shared(), arc_order,
                          [&](std::uint64_t a, std::uint64_t b) {
                            return tail_of(a) < tail_of(b);
                          });
  std::vector<std::uint64_t> arc_pos(num_arcs);      // arc -> CSR slot
  std::vector<std::uint64_t> csr_arc(num_arcs);      // CSR slot -> arc
  std::vector<std::uint64_t> first_slot(n + 1, 0);
  for (std::uint64_t s = 0; s < num_arcs; ++s) {
    const std::uint64_t a = arc_order[s];
    arc_pos[a] = s;
    csr_arc[s] = a;
    ++first_slot[tail_of(a)];
  }
  // Exclusive scan of per-tail degrees gives the CSR offsets; the trailing
  // zero slot picks up the total, matching the old shifted partial_sum.
  (void)psort::exclusive_scan(&ThreadPool::shared(), first_slot);

  auto t_arc_pos = rt.lease_dense<std::uint64_t>("euler.arc_pos", num_arcs);
  auto t_csr = rt.lease_dense<std::uint64_t>("euler.csr", num_arcs);
  auto t_first = rt.lease_dense<std::uint64_t>("euler.first", n + 1);
  for (std::uint64_t a = 0; a < num_arcs; ++a) {
    t_arc_pos->seed(a, arc_pos[a]);
    t_csr->seed(a, csr_arc[a]);
  }
  for (std::uint64_t v = 0; v <= n; ++v) t_first->seed(v, first_slot[v]);

  // One round: each arc computes its Euler successor locally. succ((u,v)) is
  // the arc after (v,u) in v's circular out-list; the tour is cut at the
  // root's first outgoing arc to turn the cycle into a list.
  auto t_next = rt.lease_dense<std::uint64_t>("euler.next", num_arcs, kNoNext);
  const std::uint64_t root_first_arc = csr_arc[first_slot[root]];
  rt.round_over_items("euler.successors", num_arcs,
                      [&](MachineContext&, std::uint64_t a) {
    const VertexId v = head_of(a);
    const std::uint64_t rev = a ^ 1ull;  // (v -> u)
    const std::uint64_t rev_slot = t_arc_pos->get(rev);
    const std::uint64_t lo = t_first->get(v);
    const std::uint64_t hi = t_first->get(v + 1);
    std::uint64_t succ_slot = rev_slot + 1;
    if (succ_slot == hi) succ_slot = lo;  // wrap the circular order
    const std::uint64_t succ = t_csr->get(succ_slot);
    if (succ != root_first_arc) t_next->put(a, succ);
  });
  std::vector<std::uint64_t> next(num_arcs);
  for (std::uint64_t a = 0; a < num_arcs; ++a) next[a] = t_next->raw(a);

  // Rank 1: tour positions (suffix counts). pos = num_arcs - rank.
  const std::vector<std::int64_t> ones(num_arcs, 1);
  const auto rank1 = list_rank(rt, next, ones);
  std::vector<std::uint64_t> pos(num_arcs);
  for (std::uint64_t a = 0; a < num_arcs; ++a) {
    pos[a] = num_arcs - static_cast<std::uint64_t>(rank1[a]);
  }

  // One round: orientation. The earlier-positioned arc of each edge is the
  // downward (parent->child) arc.
  auto t_pos = rt.lease_dense<std::uint64_t>("euler.pos", num_arcs);
  for (std::uint64_t a = 0; a < num_arcs; ++a) t_pos->seed(a, pos[a]);
  auto t_parent = rt.lease_dense<std::uint64_t>("euler.parent", n, kNoNext);
  auto t_ptime = rt.lease_dense<std::uint64_t>("euler.ptime", n, 0);
  rt.round_over_items("euler.orient", edges.size(),
                      [&](MachineContext&, std::uint64_t e) {
    const std::uint64_t down = t_pos->get(2 * e) < t_pos->get(2 * e + 1)
                                   ? 2 * e
                                   : 2 * e + 1;
    const VertexId child = head_of(down);
    const VertexId par = tail_of(down);
    t_parent->put(child, par);
    t_ptime->put(child, times[e]);
  });
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t p = t_parent->raw(v);
    if (p != kNoNext) {
      out.parent[v] = static_cast<VertexId>(p);
      out.parent_time[v] = static_cast<TimeStep>(t_ptime->raw(v));
    }
  }
  REPRO_CHECK(out.parent[root] == kInvalidVertex);

  // Helper: down-arc of each non-root vertex (the arc entering it first).
  std::vector<std::uint64_t> down_arc(n, kNoNext);
  std::vector<std::uint64_t> up_arc(n, kNoNext);
  for (std::uint64_t e = 0; e < edges.size(); ++e) {
    const std::uint64_t d = pos[2 * e] < pos[2 * e + 1] ? 2 * e : 2 * e + 1;
    down_arc[head_of(d)] = d;
    up_arc[head_of(d)] = d ^ 1ull;
  }

  // Rank 2 (two columns in the same rounds): depth via signed deltas (+1
  // down, -1 up) and preorder via down-arc flags. The prefix sum at a
  // down-arc equals the depth of the vertex it enters; with total sum 0,
  // prefix(a) = delta(a) - suffix(a).
  std::vector<std::int64_t> deltas(num_arcs);
  std::vector<std::int64_t> down_flags(num_arcs, 0);
  for (std::uint64_t e = 0; e < edges.size(); ++e) {
    const std::uint64_t d = pos[2 * e] < pos[2 * e + 1] ? 2 * e : 2 * e + 1;
    deltas[d] = 1;
    deltas[d ^ 1ull] = -1;
  }
  for (VertexId v = 0; v < n; ++v) {
    if (v != root) down_flags[down_arc[v]] = 1;
  }
  const auto ranks2 = list_rank_multi(rt, next, {deltas, down_flags});
  const auto& rank_depth = ranks2[0];
  const auto& rank_down = ranks2[1];
  for (VertexId v = 0; v < n; ++v) {
    if (v == root) continue;
    const std::uint64_t d = down_arc[v];
    out.depth[v] = static_cast<std::uint32_t>(deltas[d] - rank_depth[d]);
  }
  out.subtree[root] = n;
  out.preorder[root] = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (v == root) continue;
    out.subtree[v] = static_cast<std::uint32_t>(
        (pos[up_arc[v]] - pos[down_arc[v]] + 1) / 2);
    // Number of down-arcs at or before v's down arc = preorder index.
    out.preorder[v] = static_cast<std::uint32_t>(
        (n - 1) - rank_down[down_arc[v]] + down_flags[down_arc[v]]);
  }
  return out;
}

std::vector<VertexId> ampc_components(Runtime& rt, const WGraph& g) {
  const VertexId n = g.n;
  std::vector<VertexId> label(n);
  std::iota(label.begin(), label.end(), 0);
  if (n == 0) return label;
  const Adjacency adj(g);
  const std::uint64_t budget =
      std::max<std::uint64_t>(8, rt.config().machine_memory_words);

  // Phase loop: every vertex walks its current-label pointer graph
  // adaptively (up to `budget` hops) toward smaller labels, then adopts the
  // smallest label seen among neighbors' leaders. Labels only shrink;
  // when a pass changes nothing, components are exact.
  for (;;) {
    auto t_label = rt.lease_dense<std::uint64_t>("cc.label", n);
    for (VertexId v = 0; v < n; ++v) t_label->seed(v, label[v]);
    auto t_next = rt.lease_dense<std::uint64_t>("cc.next", n);
    bool changed = false;

    rt.round_over_items("components.hook", n, [&](MachineContext& ctx, std::uint64_t v) {
      // Smallest label among self and neighbors. The CSR adjacency lives in
      // the DHT; charge one read per scanned arc.
      std::uint64_t best = t_label->get(v);
      ctx.count_read(adj.degree(static_cast<VertexId>(v)));
      for (const auto& arc : adj.neighbors(static_cast<VertexId>(v))) {
        best = std::min(best, t_label->get(arc.to));
      }
      t_next->put(v, best);
    });
    rt.round_over_items("components.jump", n, [&](MachineContext&, std::uint64_t v) {
      // Adaptive pointer chase: follow label links until a fixpoint or the
      // per-machine budget is exhausted.
      std::uint64_t cur = t_next->get(v);
      for (std::uint64_t hops = 0; hops < budget; ++hops) {
        const std::uint64_t nxt = t_next->get(cur);
        if (nxt == cur) break;
        cur = nxt;
      }
      t_label->put(v, cur);
    });
    for (VertexId v = 0; v < n; ++v) {
      const auto fresh = static_cast<VertexId>(t_label->raw(v));
      if (fresh != label[v]) {
        label[v] = fresh;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return label;
}

}  // namespace ampccut::ampc
