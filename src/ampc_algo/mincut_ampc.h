// AMPC-MinCut (Algorithm 1 / Theorem 1): the boosted recursion skeleton with
// the AMPC singleton tracker, plus model round accounting.
//
// Accounting model: all instances of a recursion level run in parallel, so
// the level's round cost is the MAXIMUM over its tracker runs; the total is
// the sum over levels plus O(1) per level for the copy/contract step and one
// round for the leaf-level local solves (an instance at or below the local
// threshold fits in one machine's O(n^eps) memory — Algorithm 1 line 1).
// Measured rounds (executed on the simulator) and charged rounds (cited
// primitives: MSF, sorts, RMQ build — see DESIGN.md) are reported separately.
//
// DHT-traffic shape: the report SUMS reads/writes over every tracker run
// (unlike rounds, which take per-level maxima) — total words are what a
// deployment pays, parallel or not. Each tracker run contributes the
// singleton tracker's O((n_i + m_i) log n_i) words on its instance
// (singleton_ampc.h); instance sizes shrink geometrically down the
// recursion, so the top level dominates. max_machine_traffic /
// peak_table_words / budget_violations are maxima (resp. sums) over runs,
// E1 tracks them against n.
#pragma once

#include <cstdint>

#include "ampc/runtime.h"
#include "graph/graph.h"
#include "mincut/mincut_recursive.h"

namespace ampccut::ampc {

struct AmpcMinCutOptions {
  ApproxMinCutOptions recursion;  // schedule (eps, trials, threshold, seed)
  double model_eps = 0.5;         // machine memory exponent N^eps
  bool use_boruvka_msf = false;   // measured MSF instead of cited (E10)
  // Borrowed runtime arena: tracker runs lease runtimes (and their table
  // pools) from here instead of constructing one per call. nullptr = a
  // per-call local arena. k-cut shares one arena across all components and
  // iterations; benches can share one across sweep points. Never affects
  // results or metrics (DESIGN.md "Table and runtime pooling").
  RuntimeArena* arena = nullptr;
  // Robustness (DESIGN.md "Fault injection & round-level recovery"):
  // forwarded into every tracker runtime's Config. With a plan whose retries
  // succeed, results and all non-fault metrics are bit-identical to the
  // fault-free run — recovery replays rounds against untouched committed
  // state.
  FaultPlan fault;
  RetryPolicy retry;
  // Round execution strategy (src/transport/), forwarded into every tracker
  // runtime's Config: kLocal runs machines as thread-pool tasks, kShm forks
  // num_processes worker processes per round and ships staged writes over
  // shared-memory rings. Results, stats and all pre-existing non-traffic
  // metrics are bit-identical across transports and process counts.
  transport::TransportKind transport = transport::TransportKind::kLocal;
  std::uint32_t num_processes = 2;
  // Escalate budget violations to BudgetExceededError inside the tracker;
  // the tracker hook then degrades gracefully: rerun the instance with
  // model_eps bumped by degrade_eps_step (bigger machines, fewer of them)
  // until it fits or eps reaches 1. Each rerun is surfaced in the report's
  // budget_degradations.
  bool strict_budget = false;
  double degrade_eps_step = 0.25;
};

struct AmpcMinCutReport {
  Weight weight = kInfiniteWeight;
  std::vector<std::uint8_t> side;
  RecursionStats stats;

  // Model-level costs (see header comment).
  std::uint64_t measured_rounds = 0;
  std::uint64_t charged_rounds = 0;
  std::uint32_t levels_used = 0;   // recursion levels with tracker activity
  std::uint64_t dht_reads = 0;
  std::uint64_t dht_writes = 0;
  std::uint64_t max_machine_traffic = 0;
  std::uint64_t peak_table_words = 0;
  std::uint64_t budget_violations = 0;

  // Robustness counters, summed over tracker runs. Excluded from the
  // bit-identity contract (they describe the failures, not the computation);
  // every other field above matches the fault-free run exactly.
  std::uint64_t faults_injected = 0;
  std::uint64_t machine_failures = 0;
  std::uint64_t rounds_retried = 0;
  std::uint64_t budget_degradations = 0;

  [[nodiscard]] std::uint64_t model_rounds() const {
    return measured_rounds + charged_rounds;
  }
};

AmpcMinCutReport ampc_approx_min_cut(const WGraph& g,
                                     const AmpcMinCutOptions& opt = {});

}  // namespace ampccut::ampc
