// Minimum spanning forest (by contraction times) in AMPC.
//
// Two variants, per the DESIGN.md round-accounting policy:
//  * ampc_msf_boruvka — honest Boruvka-with-adaptive-contraction: each phase
//    hooks every component on its minimum-time incident edge and contracts
//    the hook forest with adaptive walks; phases are measured rounds
//    (O(log n) worst case, usually far fewer).
//  * ampc_msf_cited — charges the published O(1/eps) rounds of Behnezhad et
//    al. [4]'s MSF (whose full machinery is out of reproduction scope) and
//    computes the identical output via Kruskal. This is the only cited-cost
//    primitive with no measured implementation of the same bound; benches
//    report both variants (ablation E10).
//
// DHT-traffic shape (Boruvka variant): each phase reads O(m) words total
// (every vertex scans its incident arcs: degree-many reads, counted against
// its machine) and writes O(n) words (one kMin proposal per component, one
// relabel per vertex); contraction walks are adaptive reads that can exceed
// the O(n^eps) budget on adversarial hook chains — recorded as budget
// violations, never fatal. The cited variant stages no DHT traffic at all;
// it only books charged rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "ampc/runtime.h"
#include "graph/graph.h"
#include "mincut/contraction.h"

namespace ampccut::ampc {

// Edge ids of the minimum spanning forest under `order` times, in increasing
// time order.
std::vector<EdgeId> ampc_msf_boruvka(Runtime& rt, const WGraph& g,
                                     const ContractionOrder& order);

std::vector<EdgeId> ampc_msf_cited(Runtime& rt, const WGraph& g,
                                   const ContractionOrder& order);

}  // namespace ampccut::ampc
