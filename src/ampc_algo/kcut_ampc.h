// APX-SPLIT in AMPC (Algorithm 4 / Theorem 2): O(k log log n) rounds.
//
// Each greedy iteration recomputes a (2+eps)-approximate min cut inside every
// current component — in the model these run in parallel, so an iteration
// costs the MAXIMUM model rounds over its components plus O(1) rounds for
// counting components (cited from Behnezhad et al. [4], as the paper does in
// the proof of Theorem 2).
//
// Cost: k-1 iterations of the Theorem 1 min-cut report (mincut_ampc.h:
// measured tracker rounds + charged MSF/sort/RMQ rounds), so
// O(k log log n) model rounds total. DHT traffic per iteration is the sum
// of the min-cut traffic over that iteration's components — components
// partition the vertex set, so an iteration's total stays
// O((n + m) log n) words and shrinks as cuts split the graph.
#pragma once

#include <cstdint>

#include "ampc_algo/mincut_ampc.h"
#include "mincut/kcut.h"

namespace ampccut::ampc {

struct AmpcKCutReport {
  ApproxKCutResult result;
  std::uint64_t measured_rounds = 0;
  std::uint64_t charged_rounds = 0;

  // Robustness counters summed over every component min-cut call
  // (mincut_ampc.h); excluded from the bit-identity contract.
  std::uint64_t faults_injected = 0;
  std::uint64_t machine_failures = 0;
  std::uint64_t rounds_retried = 0;
  std::uint64_t budget_degradations = 0;

  [[nodiscard]] std::uint64_t model_rounds() const {
    return measured_rounds + charged_rounds;
  }
};

AmpcKCutReport ampc_apx_split_k_cut(const WGraph& g, std::uint32_t k,
                                    const AmpcMinCutOptions& opt = {});

}  // namespace ampccut::ampc
