// AMPC list ranking in O(1/eps) measured rounds (Behnezhad et al. [3] style).
//
// Given successor pointers next[] (kNoNext for tails) and per-element values,
// computes rank(e) = sum of values from e to its list's tail, inclusive —
// the suffix-sum generalization that all Euler-tour tree operations reduce
// to. The algorithm samples each element with probability ~ 1/sqrt(M)
// (M = machine memory), lets every element walk adaptively to the next
// sampled element (expected walk sqrt(M); machines own sqrt(M) elements, so
// per-machine traffic stays ~M), recurses on the sampled sublist, and expands
// ranks back. Recursion depth is O(log N / log M) = O(1/eps); every level is
// O(1) rounds. Handles multiple disjoint lists simultaneously.
//
// Cost: sample/walk/expand rounds are measured (O(1) per level, O(1/eps)
// levels); compacting the sampled sublist is charged 1 round per level as
// `list_rank.compact[cited]` (an AMPC sort, DESIGN.md round-accounting
// policy). DHT traffic: O(N) words per level in total — each element's walk
// touches expected sqrt(M) successors but walks are what the adaptive model
// prices as reads, so per-machine traffic stays ~M = O(n^eps) w.h.p.
#pragma once

#include <cstdint>
#include <vector>

#include "ampc/runtime.h"

namespace ampccut::ampc {

inline constexpr std::uint64_t kNoNext = static_cast<std::uint64_t>(-1);

// rank[e] = value[e] + value[next[e]] + ... + value[tail]. Values may be
// negative (depth computations need signed deltas).
std::vector<std::int64_t> list_rank(Runtime& rt,
                                    const std::vector<std::uint64_t>& next,
                                    const std::vector<std::int64_t>& value,
                                    std::uint64_t seed = 0x11aa22bb);

// Multi-column variant: ranks several value columns over the SAME successor
// structure in the SAME rounds (the walks are identical; only the carried
// accumulators differ). The tree pipeline leans on this — e.g. depth deltas
// and preorder flags ride one ranking instead of paying the round cost
// twice. Returns one rank vector per input column.
std::vector<std::vector<std::int64_t>> list_rank_multi(
    Runtime& rt, const std::vector<std::uint64_t>& next,
    const std::vector<std::vector<std::int64_t>>& value_columns,
    std::uint64_t seed = 0x11aa22bb);

}  // namespace ampccut::ampc
