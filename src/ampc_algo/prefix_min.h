// Prefix sums and minimum prefix sums in O(1/eps) AMPC rounds (Theorem 5,
// Behnezhad et al. [2]), including the segmented variant Lemma 14 needs:
// many independent sequences (one per bag leader) swept in the same rounds.
//
// Structure: a B-ary reduction tree with B = machine memory. Each tier is one
// round; tiers = ceil(log_B N) = O(1/eps). Summaries carry (sum, min-prefix,
// argmin) so the final answer locates the witness timestamp.
//
// Cost: all rounds measured (2 * ceil(log_B N): up-sweep + down-sweep),
// nothing charged. DHT traffic per tier is O(N) words total — every element
// read once, one summary written per block — and O(B) = O(n^eps) per
// machine, tight against the budget by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "ampc/runtime.h"

namespace ampccut::ampc {

// Inclusive prefix sums of a single sequence.
std::vector<std::int64_t> prefix_sums(Runtime& rt,
                                      const std::vector<std::int64_t>& values);

struct MinPrefixResult {
  std::int64_t min_prefix = 0;  // min over non-empty prefixes
  std::uint64_t argmin = 0;     // index attaining it (first one)
};

// Minimum over all non-empty prefix sums of one sequence. Requires size >= 1.
MinPrefixResult min_prefix_sum(Runtime& rt,
                               const std::vector<std::int64_t>& values);

// Segmented variant: `values` is the concatenation of independent sequences;
// segment s spans [offsets[s], offsets[s+1]). Returns one MinPrefixResult per
// segment (argmin is relative to the segment start). Empty segments yield
// {INT64_MAX, 0}. All segments are processed in the same O(1/eps) rounds.
std::vector<MinPrefixResult> segmented_min_prefix_sum(
    Runtime& rt, const std::vector<std::int64_t>& values,
    const std::vector<std::uint64_t>& offsets);

}  // namespace ampccut::ampc
