#include "ampc_algo/singleton_ampc.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "ampc_algo/list_ranking.h"
#include "ampc_algo/low_depth_ampc.h"
#include "ampc_algo/msf.h"
#include "ampc_algo/prefix_min.h"
#include "ampc_algo/tree_ops.h"
#include "support/check.h"
#include "tree/binarized_path.h"

namespace ampccut::ampc {

namespace {

namespace bp = binpath;

// Path-max over MST contraction times: HLD + sparse tables stored in dense
// DHT tables (build cost charged per Theorem 4 [5]; queries are measured
// adaptive reads, O(log n) of them per query).
class AmpcPathMax {
 public:
  AmpcPathMax(Runtime& rt, const AmpcRootedTree& tree,
              const AmpcDecomposition& d)
      : n_(tree.n) {
    rt.charge_rounds("hld_rmq.build[cited Thm 4]",
                     static_cast<std::uint64_t>(
                         std::ceil(1.0 / std::max(0.1, rt.config().eps))));
    // Global positions: paths laid out contiguously, head first.
    std::vector<std::uint32_t> gpos(n_);
    {
      std::vector<std::uint32_t> offset_of_head(n_, 0);
      std::uint32_t off = 0;
      for (VertexId v = 0; v < n_; ++v) {
        if (d.head[v] == v) {
          offset_of_head[v] = off;
          off += d.len[v];
        }
      }
      for (VertexId v = 0; v < n_; ++v) {
        gpos[v] = offset_of_head[d.head[v]] + d.pos[v];
      }
    }
    std::vector<TimeStep> base(n_, 0);
    for (VertexId v = 0; v < n_; ++v) base[gpos[v]] = tree.parent_time[v];

    t_head_ = rt.lease_dense<std::uint64_t>("pm.head", n_);
    t_parent_ = rt.lease_dense<std::uint64_t>("pm.par", n_);
    t_depth_ = rt.lease_dense<std::uint64_t>("pm.dep", n_);
    t_ptime_ = rt.lease_dense<std::uint64_t>("pm.pt", n_);
    t_gpos_ = rt.lease_dense<std::uint64_t>("pm.gpos", n_);
    for (VertexId v = 0; v < n_; ++v) {
      t_head_->seed(v, d.head[v]);
      t_parent_->seed(v, tree.parent[v] == kInvalidVertex
                             ? kNoNext
                             : tree.parent[v]);
      t_depth_->seed(v, tree.depth[v]);
      t_ptime_->seed(v, tree.parent_time[v]);
      t_gpos_->seed(v, gpos[v]);
    }
    // All sparse levels live in ONE dense table (level k at
    // [level_off_[k], ...)): same stored words, same counted reads, but one
    // table registration instead of log n per tracker call — table churn
    // dominated the small-instance (k-cut component) regime.
    const std::uint32_t levels = n_ >= 2 ? floor_log2(n_) + 1 : 1;
    level_off_.assign(levels + 1, 0);
    for (std::uint32_t k = 0; k < levels; ++k) {
      const std::uint32_t len = (1u << k) <= n_ ? n_ - (1u << k) + 1 : 0;
      level_off_[k + 1] = level_off_[k] + len;
    }
    sparse_ = rt.lease_dense<std::uint64_t>("pm.sparse", level_off_[levels]);
    std::vector<TimeStep> cur = base;
    for (std::uint32_t k = 0; k < levels; ++k) {
      const std::uint32_t span = 1u << k;
      if (span > n_) break;
      if (k > 0) {
        std::vector<TimeStep> nxt(n_ - span + 1);
        for (std::uint32_t i = 0; i + span <= n_; ++i) {
          nxt[i] = std::max(cur[i], cur[i + span / 2]);
        }
        cur = std::move(nxt);
      }
      for (std::uint32_t i = 0; i < cur.size(); ++i) {
        sparse_->seed(level_off_[k] + i, cur[i]);
      }
    }
  }

  // The hottest measured read path of the whole AMPC pipeline (one query per
  // edge endpoint per level). Reads go through raw() with a local counter
  // that is flushed to the caller's machine context once per query — the
  // counted word totals are exactly what per-access get() would have
  // produced, without a thread-local lookup per word.
  TimeStep query(MachineContext* ctx, VertexId u, VertexId v) const {
    if (u == v) return 0;
    std::uint64_t reads = 0;
    const auto rd = [&reads](const DenseTable<std::uint64_t>& t,
                             std::uint64_t i) {
      ++reads;  // words_per_v() == 1 for uint64 values
      return t.raw(i);
    };
    TimeStep best = 0;
    std::uint64_t hu = rd(*t_head_, u);
    std::uint64_t hv = rd(*t_head_, v);
    while (hu != hv) {
      // Climb the side whose head is deeper.
      if (rd(*t_depth_, hu) < rd(*t_depth_, hv)) {
        std::swap(u, v);
        std::swap(hu, hv);
      }
      best = std::max(best, range_max(rd(*t_gpos_, hu), rd(*t_gpos_, u), reads));
      best = std::max(best, static_cast<TimeStep>(rd(*t_ptime_, hu)));
      u = static_cast<VertexId>(rd(*t_parent_, hu));
      hu = rd(*t_head_, u);
    }
    if (u != v) {
      const bool u_higher = rd(*t_depth_, u) < rd(*t_depth_, v);
      const VertexId hi = u_higher ? u : v;
      const VertexId lo = u_higher ? v : u;
      best = std::max(best,
                      range_max(rd(*t_gpos_, hi) + 1, rd(*t_gpos_, lo), reads));
    }
    if (ctx != nullptr) ctx->count_read(reads);
    return best;
  }

 private:
  TimeStep range_max(std::uint64_t lo, std::uint64_t hi,
                     std::uint64_t& reads) const {
    REPRO_DCHECK(lo <= hi);
    const auto len = static_cast<std::uint32_t>(hi - lo + 1);
    const std::uint32_t k = floor_log2(len);
    reads += 2;
    const std::uint64_t off = level_off_[k];
    return static_cast<TimeStep>(std::max(
        sparse_->raw(off + lo), sparse_->raw(off + hi + 1 - (1ull << k))));
  }

  VertexId n_;
  TableLease<DenseTable<std::uint64_t>> t_head_, t_parent_, t_depth_,
      t_ptime_, t_gpos_;
  TableLease<DenseTable<std::uint64_t>> sparse_;  // levels concatenated
  std::vector<std::uint32_t> level_off_;
};

// Outcome of the arithmetic component walk for (x, level): the component's
// top path, its interval, and the unique label-`level` leader if one exists.
struct ClimbResult {
  VertexId leader = kInvalidVertex;
  VertexId top = kInvalidVertex;        // some vertex on the top path
  std::uint64_t a = bp::kNoPosition;    // nearest smaller position left
  std::uint64_t b = bp::kNoPosition;    // nearest smaller position right
  VertexId attach = kInvalidVertex;     // low-label attach above (a==none)
};

}  // namespace

SingletonCutResult ampc_min_singleton_cut(Runtime& rt, const WGraph& g,
                                          const ContractionOrder& order,
                                          const AmpcSingletonOptions& opt) {
  REPRO_CHECK(g.n >= 2);
  REPRO_CHECK(order.time.size() == g.edges.size());
  const VertexId n = g.n;

  // 1. MSF (the only edges whose contraction changes topology).
  const std::vector<EdgeId> msf = opt.use_boruvka_msf
                                      ? ampc_msf_boruvka(rt, g, order)
                                      : ampc_msf_cited(rt, g, order);
  REPRO_CHECK_MSG(msf.size() + 1 == n,
                  "AMPC tracker requires a connected graph");
  std::vector<WEdge> tree_edges;
  std::vector<TimeStep> tree_times;
  TimeStep t_full = 0;
  for (const EdgeId e : msf) {
    tree_edges.push_back(g.edges[e]);
    tree_times.push_back(order.time[e]);
    t_full = std::max(t_full, order.time[e]);
  }

  // 2. Root + decompose.
  const AmpcRootedTree tree = ampc_root_tree(rt, n, tree_edges, tree_times, 0);
  const AmpcDecomposition d = ampc_low_depth_decomposition(rt, tree);
  const std::uint32_t h = d.height;

  // 3. Path-max structure.
  const AmpcPathMax pm(rt, tree, d);

  // Geometry tables for the walks.
  auto t_label = rt.lease_dense<std::uint64_t>("sc.label", n);
  auto t_head = rt.lease_dense<std::uint64_t>("sc.head", n);
  auto t_pos = rt.lease_dense<std::uint64_t>("sc.pos", n);
  auto t_len = rt.lease_dense<std::uint64_t>("sc.len", n);
  auto t_base = rt.lease_dense<std::uint64_t>("sc.base", n);
  auto t_parent = rt.lease_dense<std::uint64_t>("sc.parent", n);
  // Vertex at a global (path, position) slot — heads own contiguous ranges.
  auto t_vertex_at = rt.lease_dense<std::uint64_t>("sc.vat", n);
  auto t_path_off = rt.lease_dense<std::uint64_t>("sc.poff", n, 0);
  {
    std::uint64_t off = 0;
    std::vector<std::uint64_t> offset_of_head(n, 0);
    for (VertexId v = 0; v < n; ++v) {
      if (d.head[v] == v) {
        offset_of_head[v] = off;
        t_path_off->seed(v, off);
        off += d.len[v];
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      t_label->seed(v, d.label[v]);
      t_head->seed(v, d.head[v]);
      t_pos->seed(v, d.pos[v]);
      t_len->seed(v, d.len[v]);
      t_base->seed(v, d.base_depth[v]);
      t_parent->seed(v, tree.parent[v] == kInvalidVertex ? kNoNext
                                                        : tree.parent[v]);
      t_vertex_at->seed(offset_of_head[d.head[v]] + d.pos[v], v);
    }
  }

  // Counted read through the caller's machine context: one word per access,
  // exactly what get() counts via the thread-local lookup, minus the lookup.
  // The round bodies below are the measured hot loops of the tracker, so
  // their reads all go through this.
  const auto rd = [](MachineContext& ctx,
                     const TableLease<DenseTable<std::uint64_t>>& t,
                     std::uint64_t i) {
    ctx.count_read(1);  // words_per_v() == 1 for uint64 values
    return t->raw(i);
  };

  // The arithmetic component walk (proof of Lemma 10): from x at level i,
  // hop path-by-path toward the component's top path. Labels on a path are
  // base_depth + binlabel - 1, so "global label < i" is a pure binarized-
  // path query with bound i - base_depth + 1.
  auto climb = [&](MachineContext& ctx, VertexId x, std::uint32_t i) {
    ClimbResult r;
    VertexId cur = x;
    for (;;) {
      const std::uint64_t hd = rd(ctx, t_head, cur);
      const std::uint64_t L = rd(ctx, t_len, cur);
      const std::uint64_t j = rd(ctx, t_pos, cur);
      const std::uint64_t base = rd(ctx, t_base, cur);
      std::uint64_t a = bp::kNoPosition, b = bp::kNoPosition;
      if (i > base) {
        const auto bound = static_cast<std::uint32_t>(i - base + 1);
        a = bp::nearest_smaller_left(L, j, bound);
        b = bp::nearest_smaller_right(L, j, bound);
      }
      if (a == bp::kNoPosition) {
        const std::uint64_t attach = rd(ctx, t_parent, hd);
        if (attach != kNoNext &&
            rd(ctx, t_label, attach) >= i) {  // component extends upward
          cur = static_cast<VertexId>(attach);
          continue;
        }
        r.attach = attach == kNoNext ? kInvalidVertex
                                     : static_cast<VertexId>(attach);
      }
      r.top = cur;
      r.a = a;
      r.b = b;
      const std::uint64_t lo = (a == bp::kNoPosition) ? 0 : a + 1;
      const std::uint64_t hi = (b == bp::kNoPosition) ? L - 1 : b - 1;
      const auto m = bp::min_label_in_range(L, lo, hi);
      if (base + m.label - 1 == i) {
        const std::uint64_t poff = rd(ctx, t_path_off, hd);
        r.leader = static_cast<VertexId>(rd(ctx, t_vertex_at, poff + m.pos));
      }
      return r;
    }
  };
  auto vertex_on_top_path = [&](MachineContext& ctx, VertexId top,
                                std::uint64_t position) {
    const std::uint64_t poff = rd(ctx, t_path_off, rd(ctx, t_head, top));
    return static_cast<VertexId>(rd(ctx, t_vertex_at, poff + position));
  };

  // 4. Leader of every (vertex, level) pair, levels in parallel (Lemma 9's
  // O(log^2 n) memory blowup). Index = v * h + (i - 1).
  auto t_leader = rt.lease_dense<std::uint64_t>(
      "sc.leader", static_cast<std::uint64_t>(n) * h, kNoNext);
  rt.round_over_items("singleton.leaders",
                      static_cast<std::uint64_t>(n) * h,
                      [&](MachineContext& ctx, std::uint64_t item) {
    const auto v = static_cast<VertexId>(item / h);
    const auto i = static_cast<std::uint32_t>(item % h) + 1;
    if (rd(ctx, t_label, v) < i) return;  // v not alive at this level
    const ClimbResult r = climb(ctx, v, i);
    if (r.leader != kInvalidVertex) t_leader->put(item, r.leader);
  });

  // 5. ldr_time per leader (Lemma 11): at most two boundary candidates — up
  // through the interval's left end (or the attach vertex), down through its
  // right end. No boundary => the component is the whole tree; cap at
  // t_full - 1 (the complete bag is not a cut).
  auto t_ldr = rt.lease_dense<std::uint64_t>("sc.ldr", n, 0);
  rt.round_over_items("singleton.ldr_time", n,
                      [&](MachineContext& ctx, std::uint64_t v) {
    const auto i = static_cast<std::uint32_t>(rd(ctx, t_label, v));
    const ClimbResult r = climb(ctx, static_cast<VertexId>(v), i);
    REPRO_CHECK_MSG(r.leader == static_cast<VertexId>(v),
                    "leader must resolve to itself at its own level");
    TimeStep first_absorb = std::numeric_limits<TimeStep>::max();
    if (r.a != bp::kNoPosition) {
      first_absorb = std::min(
          first_absorb, pm.query(&ctx, static_cast<VertexId>(v),
                                 vertex_on_top_path(ctx, r.top, r.a)));
    } else if (r.attach != kInvalidVertex) {
      first_absorb = std::min(
          first_absorb, pm.query(&ctx, static_cast<VertexId>(v), r.attach));
    }
    if (r.b != bp::kNoPosition) {
      first_absorb = std::min(
          first_absorb, pm.query(&ctx, static_cast<VertexId>(v),
                                 vertex_on_top_path(ctx, r.top, r.b)));
    }
    if (first_absorb == std::numeric_limits<TimeStep>::max()) {
      t_ldr->put(v, t_full - 1);
    } else {
      REPRO_CHECK(first_absorb >= 1);
      t_ldr->put(v, first_absorb - 1);
    }
  });

  // 6. Edge time intervals (Lemmas 12/13) over (edge, level) pairs.
  struct Interval {
    VertexId leader;
    TimeStep lo, hi;
    Weight w;
  };
  const std::uint64_t items = static_cast<std::uint64_t>(g.m()) * h;
  const std::uint64_t per =
      std::max<std::uint64_t>(1, rt.config().machine_memory_words);
  // Each machine ships its interval chunk through the driver-return channel
  // (one blob per machine per attempt, so a replayed round overwrites its
  // own attempt's output and recovery stays exact). A captured host-side
  // slot would break under the shm transport — the body runs in a forked
  // worker whose memory dies with it. Concatenating the blobs in machine-id
  // order below fixes the interval order independent of thread schedule.
  const std::uint64_t interval_machines = ceil_div(items, per);
  rt.round("singleton.intervals", interval_machines,
           [&](MachineContext& ctx) {
    const std::uint64_t lo_item = ctx.machine_id() * per;
    const std::uint64_t hi_item = std::min(items, lo_item + per);
    std::vector<Interval> local;
    for (std::uint64_t item = lo_item; item < hi_item; ++item) {
      const auto e = static_cast<EdgeId>(item / h);
      const auto i = static_cast<std::uint32_t>(item % h) + 1;
      const VertexId x = g.edges[e].u;
      const VertexId y = g.edges[e].v;
      const Weight w = g.edges[e].w;
      const bool xa = rd(ctx, t_label, x) >= i;
      const bool ya = rd(ctx, t_label, y) >= i;
      if (!xa && !ya) continue;
      const std::uint64_t lx =
          xa ? rd(ctx, t_leader, static_cast<std::uint64_t>(x) * h + (i - 1))
             : kNoNext;
      const std::uint64_t ly =
          ya ? rd(ctx, t_leader, static_cast<std::uint64_t>(y) * h + (i - 1))
             : kNoNext;
      if (lx != kNoNext && lx == ly) {
        // Same component & leader (Case 3b): crosses between joining times.
        const auto leader = static_cast<VertexId>(lx);
        const TimeStep jx = pm.query(&ctx, leader, x);
        const TimeStep jy = pm.query(&ctx, leader, y);
        if (jx == jy) continue;  // joined simultaneously, never crosses
        const auto ldr = static_cast<TimeStep>(rd(ctx, t_ldr, leader));
        const TimeStep a = std::min(jx, jy);
        const TimeStep b = std::min<TimeStep>(std::max(jx, jy) - 1, ldr);
        if (a <= b) {
          local.push_back({leader, a, b, w});
          ctx.count_write(2);
        }
      } else {
        // Cases 2/3a: each alive side contributes until its leader falls.
        for (const auto& [alive, lv, z] :
             {std::tuple{xa, lx, x}, std::tuple{ya, ly, y}}) {
          if (!alive || lv == kNoNext) continue;
          const auto leader = static_cast<VertexId>(lv);
          const TimeStep j = pm.query(&ctx, leader, z);
          const auto ldr = static_cast<TimeStep>(rd(ctx, t_ldr, leader));
          if (j <= ldr) {
            local.push_back({leader, j, ldr, w});
            ctx.count_write(2);
          }
        }
      }
    }
    std::vector<std::uint8_t> blob(local.size() * sizeof(Interval));
    if (!blob.empty()) {
      std::memcpy(blob.data(), local.data(), blob.size());
    }
    ctx.driver_return(std::move(blob));
  });
  std::vector<Interval> intervals;
  for (const std::vector<std::uint8_t>& blob : rt.take_round_returns()) {
    REPRO_CHECK(blob.size() % sizeof(Interval) == 0);
    const std::size_t at = intervals.size();
    intervals.resize(at + blob.size() / sizeof(Interval));
    if (!blob.empty()) {
      std::memcpy(intervals.data() + at, blob.data(), blob.size());
    }
  }

  // 7. Group by leader and compress same-timestamp deltas (the S'' sequence
  // of Lemma 14) — a standard O(1/eps) AMPC sort, charged.
  rt.charge_rounds("singleton.group_sort[cited]", 2);
  struct Event {
    VertexId leader;
    TimeStep t;
    std::int64_t delta;
  };
  std::vector<Event> events;
  events.reserve(2 * intervals.size());
  for (const auto& iv : intervals) {
    const auto ldr = static_cast<TimeStep>(t_ldr->raw(iv.leader));
    events.push_back({iv.leader, iv.lo, static_cast<std::int64_t>(iv.w)});
    if (iv.hi + 1 <= ldr) {  // closes beyond ldr cannot affect [0, ldr]
      events.push_back({iv.leader, static_cast<TimeStep>(iv.hi + 1),
                        -static_cast<std::int64_t>(iv.w)});
    }
  }
  // Group by (leader, t) with two stable counting passes — the model cost of
  // this sort is the charged AMPC group sort above; host-side it is linear.
  // Tie order within a (leader, t) pair is irrelevant: the compression below
  // sums those deltas.
  {
    std::vector<Event> tmp(events.size());
    std::vector<std::uint32_t> count(
        std::max<std::size_t>(t_full + 2, n) + 1, 0);
    for (const Event& e : events) ++count[e.t + 1];
    for (std::size_t t = 0; t + 2 < count.size(); ++t) count[t + 1] += count[t];
    for (const Event& e : events) tmp[count[e.t]++] = e;
    std::fill(count.begin(), count.end(), 0);
    for (const Event& e : tmp) ++count[e.leader + 1];
    for (VertexId v = 0; v < n; ++v) count[v + 1] += count[v];
    for (const Event& e : tmp) events[count[e.leader]++] = e;
  }
  std::vector<std::int64_t> deltas;
  std::vector<TimeStep> times_at;
  std::vector<VertexId> seg_leader;
  std::vector<std::uint64_t> offsets{0};
  for (std::size_t i = 0; i < events.size();) {
    const VertexId leader = events[i].leader;
    if (seg_leader.empty() || seg_leader.back() != leader) {
      if (!seg_leader.empty()) offsets.push_back(deltas.size());
      seg_leader.push_back(leader);
    }
    std::size_t j = i;
    std::int64_t sum = 0;
    while (j < events.size() && events[j].leader == leader &&
           events[j].t == events[i].t) {
      sum += events[j].delta;
      ++j;
    }
    deltas.push_back(sum);
    times_at.push_back(events[i].t);
    i = j;
  }
  offsets.push_back(deltas.size());

  // 8. Minimum coverage per leader via the segmented Theorem 5 machinery.
  const auto mins = segmented_min_prefix_sum(rt, deltas, offsets);
  SingletonCutResult best;
  for (std::size_t s = 0; s < seg_leader.size(); ++s) {
    const std::int64_t mp = mins[s].min_prefix;
    REPRO_CHECK_MSG(mp >= 0, "negative interval coverage");
    if (static_cast<Weight>(mp) < best.weight) {
      best.weight = static_cast<Weight>(mp);
      best.rep = seg_leader[s];
      best.time = times_at[offsets[s] + mins[s].argmin];
    }
  }
  REPRO_CHECK_MSG(best.weight != kInfiniteWeight,
                  "no proper bag found on a connected graph");
  return best;
}

}  // namespace ampccut::ampc
