// AMPC tree operations via Euler tours + list ranking (Lemma 4 / Behnezhad
// et al. [3] Theorem 7): rooting/orientation, depth, subtree size, preorder —
// each an O(1)-round derivation on top of the O(1/eps)-round list ranking.
//
// The Euler tour of a tree is built locally: arc (u,v)'s successor is the
// arc (v, w) where w follows u in v's circular adjacency order — pure index
// arithmetic over a CSR layout, no iteration. Rooting at r cuts the cycle at
// r's first outgoing arc.
//
// Cost: successor construction and orientation are measured O(1) rounds of
// O(m) total DHT words (O(1) words per arc, machine-partitioned, so
// per-machine traffic is O(n^eps)); building the CSR adjacency order is
// charged 2 rounds as `euler.sort[cited]`; the depth/subtree/preorder
// derivations ride list ranking and inherit its measured-plus-charged cost
// (list_ranking.h). ampc_components is fully measured: O(1/eps) hook+jump
// phases w.h.p., each O(1) rounds; jump walks are adaptive reads whose
// per-machine traffic stays within O(n^eps) except on adversarial chains
// (the runtime records, never throws — A1c measures the violations).
#pragma once

#include <cstdint>
#include <vector>

#include "ampc/runtime.h"
#include "graph/graph.h"

namespace ampccut::ampc {

struct AmpcRootedTree {
  VertexId n = 0;
  VertexId root = 0;
  std::vector<VertexId> parent;        // kInvalidVertex at the root
  std::vector<TimeStep> parent_time;   // weight of the parent edge
  std::vector<std::uint32_t> depth;    // root = 0
  std::vector<std::uint32_t> subtree;  // sizes incl. self
  std::vector<std::uint32_t> preorder; // root = 0
};

// `edges`/`times` must form a spanning tree on n vertices.
AmpcRootedTree ampc_root_tree(Runtime& rt, VertexId n,
                              const std::vector<WEdge>& edges,
                              const std::vector<TimeStep>& times,
                              VertexId root);

// Connected components of a forest/graph by adaptive leader walks
// (Behnezhad et al. [4]): each vertex repeatedly hops to the
// minimum-labeled vertex in its adaptive neighborhood until labels
// stabilize; every phase is O(1) rounds and the number of phases is
// O(1/eps) w.h.p. for forests (E7 measures it on cycles). Returns the
// minimum vertex id of each vertex's component.
std::vector<VertexId> ampc_components(Runtime& rt, const WGraph& g);

}  // namespace ampccut::ampc
