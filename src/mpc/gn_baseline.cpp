#include "mpc/gn_baseline.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "exact/stoer_wagner.h"
#include "mpc/primitives.h"
#include "support/check.h"
#include "support/rng.h"
#include "support/threadpool.h"

namespace ampccut::mpc {

MpcMinCutReport mpc_gn_min_cut(const WGraph& g, const MpcMinCutOptions& opt) {
  MpcMinCutReport report;
  // Hooks run concurrently under a multi-threaded recursion driver; the
  // accumulations are commutative (max/sum), so the mutex only guards the
  // containers and the totals stay thread-count independent.
  std::mutex mu;
  std::map<std::uint32_t, std::uint64_t> level_rounds;
  bool any_local = false;

  MinCutBackend backend;
  backend.track_singleton = [&](const WGraph& inst, const ContractionOrder& o,
                                std::uint32_t level) {
    // Execute the MPC-priced tree pipeline for its measured round count:
    // Boruvka MST, then tour positions via pointer doubling over the MST's
    // heavy-chain successor lists (the dominant log-n steps of GN's
    // decomposition). Cut values come from the shared interval machinery.
    Runtime rt(Config{}, opt.num_machines);
    const auto forest = mpc_msf_boruvka(rt, inst, o);
    if (forest.size() + 1 == inst.n && inst.n >= 2) {
      // Rank the tree's parent pointers (a stand-in list for the Euler tour;
      // same pointer-doubling round count).
      std::vector<std::uint64_t> next(inst.n, kNoNext);
      for (const EdgeId e : forest) {
        // Orient arbitrarily: each edge links the larger id to the smaller;
        // chains of length Theta(n) arise on paths, which is the point.
        const VertexId a = std::max(inst.edges[e].u, inst.edges[e].v);
        const VertexId b = std::min(inst.edges[e].u, inst.edges[e].v);
        if (next[a] == kNoNext) next[a] = b;
      }
      const std::vector<std::int64_t> ones(inst.n, 1);
      (void)mpc_list_rank(rt, next, ones);
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      level_rounds[level] =
          std::max(level_rounds[level], rt.metrics().rounds);
      report.messages += rt.metrics().messages;
    }
    return min_singleton_cut_interval(inst, o);
  };
  backend.solve_local = [&](const WGraph& inst, std::uint32_t) {
    {
      std::lock_guard<std::mutex> lock(mu);
      any_local = true;
    }
    return stoer_wagner_min_cut(inst);
  };
  backend.on_level = [](std::uint32_t, std::uint64_t) {};

  const ApproxMinCutResult r =
      approx_min_cut_with_backend(g, opt.recursion, backend);
  report.weight = r.weight;
  report.side = r.side;
  report.stats = r.stats;
  for (const auto& [level, rounds] : level_rounds) {
    report.rounds += rounds + 2;  // +O(1): per-level copy/contract messaging
    ++report.levels_used;
  }
  if (any_local) report.rounds += 1;
  return report;
}

MpcKCutReport mpc_gn_k_cut(const WGraph& g, std::uint32_t k,
                           const MpcMinCutOptions& opt) {
  MpcKCutReport report;
  std::mutex mu;
  std::uint64_t iter_rounds = 0;
  std::uint32_t calls_this_iter = 0;
  // Caller must hold `mu` — like kcut_ampc.cpp, even the post-join
  // "anything left?" check reads the counters under the lock.
  auto flush_locked = [&]() {
    report.rounds += iter_rounds + 1;  // +1: component counting
    iter_rounds = 0;
    calls_this_iter = 0;
  };
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = resolve_recursion_pool(opt.recursion.threads, owned);
  MpcMinCutOptions base = opt;
  if (owned != nullptr) base.recursion.threads = 1;  // see kcut.cpp
  report.result = apx_split_k_cut(
      g, k,
      [&, base](const WGraph& component, std::uint64_t call_seq) {
        MpcMinCutOptions o = base;
        o.recursion.seed = splitmix64(base.recursion.seed ^ call_seq);
        const MpcMinCutReport sub = mpc_gn_min_cut(component, o);
        {
          std::lock_guard<std::mutex> lock(mu);
          iter_rounds = std::max(iter_rounds, sub.rounds);
          ++calls_this_iter;
        }
        return MinCutResult{sub.weight, sub.side};
      },
      [&](std::uint32_t) {
        std::lock_guard<std::mutex> lock(mu);
        flush_locked();
      },
      pool);
  {
    std::lock_guard<std::mutex> lock(mu);
    if (calls_this_iter > 0) flush_locked();
  }
  return report;
}

}  // namespace ampccut::mpc
