// Ghaffari–Nowicki-shaped MPC baseline: the same boosted recursion as
// Algorithm 1, with per-level tracker work costed at MPC prices.
//
// GN [11] run the identical structure (random weights -> MST -> low-depth
// decomposition -> singleton tracking) but every tree-structured step costs
// Theta(log n) MPC rounds: MST via Boruvka and tour positions via pointer
// doubling. We execute those two primitives for real on the MPC simulator
// (their measured rounds carry the log n factor the paper's Theorem 1
// removes) and reuse the exact sequential interval machinery for the cut
// values, so quality matches and only the model cost differs. Corollary 1's
// k-cut wrapper composes it with APX-SPLIT.
#pragma once

#include <cstdint>

#include "mincut/kcut.h"
#include "mincut/mincut_recursive.h"
#include "mpc/runtime.h"

namespace ampccut::mpc {

struct MpcMinCutOptions {
  ApproxMinCutOptions recursion;
  std::size_t num_machines = 64;
};

struct MpcMinCutReport {
  Weight weight = kInfiniteWeight;
  std::vector<std::uint8_t> side;
  RecursionStats stats;
  std::uint64_t rounds = 0;     // sum over levels of per-level max
  std::uint64_t messages = 0;   // total communication words
  std::uint32_t levels_used = 0;
};

// (2+eps)-approximate min cut, O(log n log log n) measured MPC rounds.
MpcMinCutReport mpc_gn_min_cut(const WGraph& g,
                               const MpcMinCutOptions& opt = {});

struct MpcKCutReport {
  ApproxKCutResult result;
  std::uint64_t rounds = 0;
};

// Corollary 1: (4+eps)-approximate k-cut in O(k log n log log n) MPC rounds.
MpcKCutReport mpc_gn_k_cut(const WGraph& g, std::uint32_t k,
                           const MpcMinCutOptions& opt = {});

}  // namespace ampccut::mpc
