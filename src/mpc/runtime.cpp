// Intentionally header-only runtime; this TU anchors the library target.
#include "mpc/runtime.h"
