#include "mpc/primitives.h"

#include <algorithm>
#include <numeric>

#include "support/bits.h"
#include "support/check.h"
#include "support/psort.h"

namespace ampccut::mpc {

namespace {

std::size_t machines_for(const Runtime& rt, std::uint64_t items) {
  (void)items;
  return rt.num_machines();
}

}  // namespace

std::vector<std::int64_t> mpc_list_rank(Runtime& rt,
                                        const std::vector<std::uint64_t>& next,
                                        const std::vector<std::int64_t>& value) {
  const std::uint64_t n = next.size();
  REPRO_CHECK(value.size() == n);
  if (n == 0) return {};
  const std::size_t P = machines_for(rt, n);
  auto owner = [&](std::uint64_t e) { return e % P; };

  // State lives "on the machines" — modeled as shared arrays the rounds
  // partition by ownership; only message rounds advance knowledge.
  std::vector<std::uint64_t> ptr = next;
  std::vector<std::int64_t> acc = value;

  const std::uint32_t steps = n >= 2 ? ceil_log2(n) : 1;
  for (std::uint32_t s = 0; s < steps; ++s) {
    // Round 1: request successor state.
    // Round 2: responses arrive; apply the doubling.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> queries;  // (e, tgt)
    rt.round("mpc.list_rank.request", [&](std::uint64_t m,
                                          const std::vector<Message>&,
                                          const std::function<void(Message)>& send) {
      for (std::uint64_t e = m; e < n; e += P) {
        if (ptr[e] == kNoNext) continue;
        send({owner(ptr[e]), {e, ptr[e]}});
      }
    });
    rt.round("mpc.list_rank.respond", [&](std::uint64_t m,
                                          const std::vector<Message>& inbox,
                                          const std::function<void(Message)>& send) {
      for (const auto& msg : inbox) {
        const std::uint64_t e = msg.payload[0];
        const std::uint64_t tgt = msg.payload[1];
        REPRO_CHECK(owner(tgt) == m);
        send({owner(e),
              {e, ptr[tgt], static_cast<std::uint64_t>(acc[tgt])}});
      }
    });
    // Apply responses (driver-side application of machine-local updates; the
    // inbox of the *next* round would carry them — fold immediately).
    std::vector<std::uint64_t> new_ptr = ptr;
    std::vector<std::int64_t> new_acc = acc;
    rt.round("mpc.list_rank.apply", [&](std::uint64_t m,
                                        const std::vector<Message>& inbox,
                                        const std::function<void(Message)>&) {
      (void)m;
      for (const auto& msg : inbox) {
        const std::uint64_t e = msg.payload[0];
        new_ptr[e] = msg.payload[1];
        new_acc[e] = acc[e] + static_cast<std::int64_t>(msg.payload[2]);
      }
    });
    ptr = std::move(new_ptr);
    acc = std::move(new_acc);
  }
  return acc;
}

std::vector<VertexId> mpc_components(Runtime& rt, const WGraph& g) {
  const VertexId n = g.n;
  std::vector<std::uint64_t> label(n);
  std::iota(label.begin(), label.end(), 0);
  if (n == 0) return {};
  const Adjacency adj(g);
  const std::size_t P = machines_for(rt, n);

  for (;;) {
    bool changed = false;
    // Hook: adopt the minimum label in the closed neighborhood.
    std::vector<std::uint64_t> hooked = label;
    rt.round("mpc.cc.hook", [&](std::uint64_t m, const std::vector<Message>&,
                                const std::function<void(Message)>&) {
      for (std::uint64_t v = m; v < n; v += P) {
        std::uint64_t best = label[v];
        for (const auto& arc : adj.neighbors(static_cast<VertexId>(v))) {
          best = std::min(best, label[arc.to]);
        }
        hooked[v] = best;
      }
    });
    // Jump: label <- label of label (request + reply = 2 rounds).
    std::vector<std::uint64_t> jumped = hooked;
    rt.round("mpc.cc.jump.request", [&](std::uint64_t m,
                                        const std::vector<Message>&,
                                        const std::function<void(Message)>& send) {
      for (std::uint64_t v = m; v < n; v += P) {
        send({hooked[v] % P, {v, hooked[v]}});
      }
    });
    rt.round("mpc.cc.jump.reply", [&](std::uint64_t,
                                      const std::vector<Message>& inbox,
                                      const std::function<void(Message)>&) {
      for (const auto& msg : inbox) {
        jumped[msg.payload[0]] = hooked[msg.payload[1]];
      }
    });
    for (VertexId v = 0; v < n; ++v) {
      if (jumped[v] != label[v]) {
        label[v] = jumped[v];
        changed = true;
      }
    }
    if (!changed) break;
  }
  std::vector<VertexId> out(n);
  for (VertexId v = 0; v < n; ++v) out[v] = static_cast<VertexId>(label[v]);
  return out;
}

std::vector<EdgeId> mpc_msf_boruvka(Runtime& rt, const WGraph& g,
                                    const ContractionOrder& order) {
  const VertexId n = g.n;
  std::vector<VertexId> comp(n);
  std::iota(comp.begin(), comp.end(), 0);
  std::vector<std::uint8_t> in_forest(g.edges.size(), 0);
  const Adjacency adj(g);
  const std::size_t P = machines_for(rt, n);

  for (;;) {
    // Proposal round: vertices ship their cheapest crossing edge to the
    // machine owning their component label; owners aggregate the minimum.
    std::vector<std::uint64_t> best_of_comp(n, kNoNext);
    rt.round("mpc.msf.propose", [&](std::uint64_t m, const std::vector<Message>&,
                                    const std::function<void(Message)>& send) {
      for (std::uint64_t v = m; v < n; v += P) {
        std::uint64_t best = kNoNext;
        for (const auto& arc : adj.neighbors(static_cast<VertexId>(v))) {
          if (comp[arc.to] == comp[v]) continue;
          const std::uint64_t key =
              (static_cast<std::uint64_t>(order.time[arc.edge]) << 32) |
              arc.edge;
          best = std::min(best, key);
        }
        if (best != kNoNext) send({comp[v] % P, {comp[v], best}});
      }
    });
    rt.round("mpc.msf.aggregate", [&](std::uint64_t,
                                      const std::vector<Message>& inbox,
                                      const std::function<void(Message)>&) {
      for (const auto& msg : inbox) {
        auto& slot = best_of_comp[msg.payload[0]];
        slot = std::min(slot, msg.payload[1]);
      }
    });
    bool any = false;
    std::vector<std::uint64_t> hook(n, kNoNext);
    for (VertexId c = 0; c < n; ++c) {
      if (best_of_comp[c] == kNoNext) continue;
      any = true;
      const EdgeId e = static_cast<EdgeId>(best_of_comp[c] & 0xffffffffull);
      in_forest[e] = 1;
      const VertexId cu = comp[g.edges[e].u];
      const VertexId cv = comp[g.edges[e].v];
      hook[c] = (cu == c) ? cv : cu;
    }
    if (!any) break;
    // Resolve 2-cycles, then flatten by jumping until stable.
    for (VertexId c = 0; c < n; ++c) {
      if (hook[c] != kNoNext && hook[c] < n &&
          hook[hook[c]] == c && c < hook[c]) {
        hook[c] = kNoNext;  // smaller endpoint becomes the root
      }
    }
    std::vector<std::uint64_t> label(n);
    for (VertexId c = 0; c < n; ++c) label[c] = hook[c] == kNoNext ? c : hook[c];
    for (;;) {
      bool changed = false;
      std::vector<std::uint64_t> jumped = label;
      rt.round("mpc.msf.jump.request", [&](std::uint64_t m,
                                           const std::vector<Message>&,
                                           const std::function<void(Message)>& send) {
        for (std::uint64_t c = m; c < n; c += P) {
          send({label[c] % P, {c, label[c]}});
        }
      });
      rt.round("mpc.msf.jump.reply", [&](std::uint64_t,
                                         const std::vector<Message>& inbox,
                                         const std::function<void(Message)>&) {
        for (const auto& msg : inbox) {
          jumped[msg.payload[0]] = label[msg.payload[1]];
        }
      });
      for (VertexId c = 0; c < n; ++c) {
        if (jumped[c] != label[c]) {
          label[c] = jumped[c];
          changed = true;
        }
      }
      if (!changed) break;
    }
    for (VertexId v = 0; v < n; ++v) {
      comp[v] = static_cast<VertexId>(label[comp[v]]);
    }
  }

  std::vector<EdgeId> forest;
  for (EdgeId e = 0; e < g.edges.size(); ++e) {
    if (in_forest[e]) forest.push_back(e);
  }
  // (time, id): generated orders have unique times, but hand-built orders
  // may tie — the id tie-break keeps the forest order deterministic either
  // way (same contract as contraction.cpp).
  psort::stable_sort_keys(&ThreadPool::shared(), forest,
                          [&](EdgeId a, EdgeId b) {
                            return order.time[a] != order.time[b]
                                       ? order.time[a] < order.time[b]
                                       : a < b;
                          });
  return forest;
}

}  // namespace ampccut::mpc
