// A conventional MPC simulator (Karloff et al. [16] style), used for the
// Ghaffari–Nowicki-shaped baseline and the 1-vs-2-cycle motivation bench.
//
// The contrast with ampc::Runtime is the point of the whole paper: machines
// here have NO mid-round access to shared state. A round consists of local
// computation over the machine's inbox followed by message exchange; what a
// machine can learn per round is bounded by its local memory. Pointer
// jumping therefore costs Theta(log n) rounds where AMPC's adaptive walks
// cost O(1/eps).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/check.h"
#include "support/threadpool.h"

namespace ampccut::mpc {

struct Config {
  std::uint64_t machine_memory_words = 1 << 16;
};

struct Metrics {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;       // total words shipped
  std::uint64_t max_machine_recv = 0;  // max words into one machine per round
  // Transparent comparator: per-round bumps look labels up by const char*
  // without materializing a std::string (see ampc::Metrics).
  std::map<std::string, std::uint64_t, std::less<>> rounds_by_label;

  // MPC has no cited-cost charging; the accessor exists so the benchmark
  // reporter (bench/bench_util.h) prices both models through one interface.
  [[nodiscard]] std::uint64_t model_rounds() const { return rounds; }
};

// A message is addressed words; payload layout is algorithm-defined.
struct Message {
  std::uint64_t dst_machine;
  std::vector<std::uint64_t> payload;
};

class Runtime {
 public:
  explicit Runtime(Config cfg, std::size_t num_machines)
      : cfg_(cfg), inboxes_(num_machines) {}

  [[nodiscard]] std::size_t num_machines() const { return inboxes_.size(); }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }

  // Delivers last round's messages as `inbox`; `send` enqueues for the next
  // round. Machines run in parallel on the shared pool.
  using RoundFn = std::function<void(
      std::uint64_t machine, const std::vector<Message>& inbox,
      const std::function<void(Message)>& send)>;

  void round(const char* label, const RoundFn& fn) {
    ++metrics_.rounds;
    if (const auto it = metrics_.rounds_by_label.find(std::string_view(label));
        it != metrics_.rounds_by_label.end()) {
      ++it->second;
    } else {
      metrics_.rounds_by_label.emplace(label, 1);
    }
    std::vector<std::vector<Message>> outboxes(num_machines());
    std::vector<std::mutex> locks(num_machines());
    ThreadPool::shared().parallel_for(num_machines(), [&](std::size_t m) {
      auto send = [&](Message msg) {
        REPRO_CHECK(msg.dst_machine < num_machines());
        std::lock_guard<std::mutex> lock(locks[msg.dst_machine]);
        outboxes[msg.dst_machine].push_back(std::move(msg));
      };
      fn(m, inboxes_[m], send);
    });
    std::uint64_t total = 0;
    std::uint64_t max_recv = 0;
    for (std::size_t m = 0; m < num_machines(); ++m) {
      std::uint64_t words = 0;
      for (const auto& msg : outboxes[m]) words += msg.payload.size() + 1;
      total += words;
      max_recv = std::max(max_recv, words);
    }
    metrics_.messages += total;
    metrics_.max_machine_recv = std::max(metrics_.max_machine_recv, max_recv);
    inboxes_ = std::move(outboxes);
  }

 private:
  Config cfg_;
  Metrics metrics_;
  std::vector<std::vector<Message>> inboxes_;
};

}  // namespace ampccut::mpc
