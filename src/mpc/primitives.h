// MPC primitives with the round complexities the 1-vs-2-Cycle regime forces:
// pointer doubling costs Theta(log n) rounds because every hop of a chain
// needs a communication round — precisely the cost AMPC's adaptive reads
// erase. These are the building blocks of the Ghaffari–Nowicki-shaped
// baseline (gn_baseline.h) and the E7 motivation bench.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "mincut/contraction.h"
#include "mpc/runtime.h"

namespace ampccut::mpc {

inline constexpr std::uint64_t kNoNext = static_cast<std::uint64_t>(-1);

// Suffix sums over successor lists by pointer doubling: 2 rounds
// (request/reply) per doubling step, ceil(log2 n) steps.
std::vector<std::int64_t> mpc_list_rank(Runtime& rt,
                                        const std::vector<std::uint64_t>& next,
                                        const std::vector<std::int64_t>& value);

// Connected components via alternating hook (min over neighbors) and jump
// (label <- label of label) phases; O(log n) alternations. Returns the
// minimum vertex id per component.
std::vector<VertexId> mpc_components(Runtime& rt, const WGraph& g);

// Boruvka MSF: per phase one proposal round plus label flattening by
// jumping; O(log n) phases. Returns forest edges in increasing time order.
std::vector<EdgeId> mpc_msf_boruvka(Runtime& rt, const WGraph& g,
                                    const ContractionOrder& order);

}  // namespace ampccut::mpc
