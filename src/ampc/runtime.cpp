#include "ampc/runtime.h"

#include <string_view>
#include <utility>

#include "support/rng.h"

namespace ampccut::ampc {

thread_local MachineContext* MachineContext::current_ = nullptr;

namespace {
// Below this many staged entries the two-phase commit runs inline on the
// driver thread: fan-out overhead would dominate, and the result is
// identical either way (both paths apply shards in machine-id order).
constexpr std::uint64_t kParallelCommitThreshold = 4096;
}  // namespace

Runtime::Runtime(Config cfg, ThreadPool* pool)
    : cfg_(std::move(cfg)),
      pool_(pool != nullptr ? *pool : ThreadPool::shared()),
      transport_(transport::make_transport(cfg_.transport, cfg_.num_processes,
                                           &pool_)) {
  if (cfg_.fault.enabled()) {
    injector_ = std::make_unique<FaultInjector>(cfg_.fault);
  }
}

void MachineContext::driver_return(std::vector<std::uint8_t> blob) {
  runtime_.round_returns_[machine_] = std::move(blob);
}

namespace {

// Heterogeneous bump: only a label's first occurrence allocates its string.
void bump_label(std::map<std::string, std::uint64_t, std::less<>>& map,
                const char* label, std::uint64_t by) {
  const auto it = map.find(std::string_view(label));
  if (it != map.end()) {
    it->second += by;
  } else {
    map.emplace(label, by);
  }
}

}  // namespace

void Runtime::round(const char* label, std::size_t num_machines,
                    const std::function<void(MachineContext&)>& body) {
  ++metrics_.rounds;
  bump_label(metrics_.rounds_by_label, label, 1);
  {
    // Size every table's machine staging buffers (the overflow buffer for
    // driver-side writes is a separate member of each table); tables
    // registered mid-round are sized by register_table from round_buffers_.
    // The snapshot fixes the wire table indices for this round: index i on
    // the wire is round_tables_[i] on both sides of a fork.
    std::lock_guard<std::mutex> lock(tables_mu_);
    round_buffers_ = num_machines;
    for (auto* t : tables_) t->begin_round(round_buffers_);
    round_tables_.assign(tables_.begin(), tables_.end());
  }
  // Stable round coordinate for fault scheduling: retries of one logical
  // round share it (the attempt index separates their rng draws).
  const std::uint64_t round_index = metrics_.rounds - 1;
  const std::uint32_t max_attempts =
      std::max<std::uint32_t>(1, cfg_.retry.max_attempts);
  for (std::uint32_t attempt = 0;; ++attempt) {
    fault_round_ = round_index;
    fault_attempt_ = attempt;
    // Round-local accumulators, folded into metrics_ only when the attempt
    // succeeds — a replayed round contributes its traffic exactly once, so
    // a recovered run's metrics are bit-identical to the fault-free run.
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
    std::atomic<std::uint64_t> max_machine_traffic{0};
    std::atomic<std::uint64_t> violations{0};
    round_returns_.clear();
    round_returns_.resize(num_machines);

    transport::RoundWork work;
    work.label = label;
    work.round_index = round_index;
    work.num_machines = num_machines;
    work.num_tables = round_tables_.size();
    work.run_machine =
        [&](std::size_t machine) -> transport::MachineTraffic {
      MachineContext ctx(*this, machine);
      MachineContext::ScopedActivation scope(ctx);
      try {
        if (injector_ != nullptr) machine_entry_faults(ctx);
        body(ctx);
      } catch (const MachineFailedError&) {
        // Counted here (not at the throw site) so body-thrown failures
        // count too. Both transports run every machine to the barrier even
        // after a failure, so the tally is schedule-independent. Under shm
        // this bump happens in a process about to die; the driver re-counts
        // from the worker-error frame (on_machine_failure).
        metrics_.machine_failures.fetch_add(1, std::memory_order_relaxed);
        throw;
      }
      return {ctx.reads(), ctx.writes()};
    };
    work.record = [&](std::size_t machine,
                      const transport::MachineTraffic& traffic) {
      reads.fetch_add(traffic.reads, std::memory_order_relaxed);
      writes.fetch_add(traffic.writes, std::memory_order_relaxed);
      const std::uint64_t total = traffic.reads + traffic.writes;
      std::uint64_t seen = max_machine_traffic.load(std::memory_order_relaxed);
      while (seen < total && !max_machine_traffic.compare_exchange_weak(
                                 seen, total, std::memory_order_relaxed)) {
      }
      if (cfg_.enforce_local_memory && total > cfg_.machine_memory_words) {
        if (cfg_.strict_budget) {
          throw BudgetExceededError(label, machine, total,
                                    cfg_.machine_memory_words);
        }
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    };
    work.on_machine_failure = [&]() {
      metrics_.machine_failures.fetch_add(1, std::memory_order_relaxed);
    };
    work.encode_machine = [&](std::size_t t, std::size_t m,
                              std::vector<std::uint8_t>* out) {
      return round_tables_[t]->wire_encode_machine(
          m, static_cast<std::uint32_t>(t), out);
    };
    work.stage_batch = [&](const transport::PutBatch& b) {
      round_tables_[b.table]->wire_stage_machine(b);
    };
    work.take_blob = [&](std::size_t m) {
      return std::move(round_returns_[m]);
    };
    work.put_blob = [&](std::size_t m, const std::uint8_t* data,
                        std::size_t size) {
      round_returns_[m].assign(data, data + size);
    };
    work.faults_injected_now = [&]() {
      return metrics_.faults_injected.load(std::memory_order_relaxed);
    };
    work.add_faults_injected = [&](std::uint64_t delta) {
      metrics_.faults_injected.fetch_add(delta, std::memory_order_relaxed);
    };
    work.add_wire = [&](std::uint64_t bytes, std::uint64_t batches) {
      metrics_.wire_bytes_sent += bytes;
      metrics_.flush_batches += batches;
    };
    work.enter_worker = [&]() { in_worker_ = true; };

    try {
      transport_->run_round(work);
    } catch (const MachineFailedError& e) {
      // Transient failure: committed tables are untouched by construction
      // (frozen reads; writes only staged), so dropping the staging and
      // replaying the round reproduces the unfailed execution exactly.
      discard_machine_staging();
      if (attempt + 1 >= max_attempts) {
        throw RetriesExhaustedError(label, round_index, max_attempts,
                                    e.what());
      }
      ++metrics_.rounds_retried;
      if (cfg_.retry.backoff_spin != 0) {
        fault_delay_spin(splitmix64(round_index ^ (attempt + 1)),
                         cfg_.retry.backoff_spin);
      }
      continue;
    } catch (...) {
      // Non-retryable (BudgetExceededError is deterministic; REPRO_CHECK
      // and user exceptions indicate bugs): clear the staging so the
      // runtime stays reusable, then surface the error unchanged.
      discard_machine_staging();
      throw;
    }
    metrics_.dht_reads += reads.load();
    metrics_.dht_writes += writes.load();
    metrics_.max_machine_traffic =
        std::max(metrics_.max_machine_traffic, max_machine_traffic.load());
    metrics_.budget_violations.fetch_add(violations.load(),
                                         std::memory_order_relaxed);
    // Commit all staged table writes at the round barrier (AMPC semantics:
    // writes become visible in the next round's hash table).
    commit_all();
    return;
  }
}

// The three injection sites. Decisions are pure in (round, machine,
// attempt); a positive one throws MachineFailedError, which the machine
// wrapper counts and the barrier's retry loop recovers from. The injected
// counter bumps even on attempts whose staging is later discarded — faults
// happened, only their effects were rolled back.
void Runtime::machine_entry_faults(MachineContext& ctx) {
  const std::uint64_t machine = ctx.machine_id();
  if (injector_->fires(FaultKind::kSlowMachine, fault_round_, machine,
                       fault_attempt_)) {
    metrics_.faults_injected.fetch_add(1, std::memory_order_relaxed);
    fault_delay_spin(splitmix64(fault_round_ ^ (machine * 2 + 1)),
                     injector_->plan().delay_spin);
  }
  if (injector_->fires(FaultKind::kMachineCrash, fault_round_, machine,
                       fault_attempt_)) {
    metrics_.faults_injected.fetch_add(1, std::memory_order_relaxed);
    throw MachineFailedError(fault_round_, machine, "injected machine crash");
  }
}

void Runtime::fault_read_slow(MachineContext& ctx) {
  if (injector_->fires(FaultKind::kTableReadFail, fault_round_,
                       ctx.machine_id(), fault_attempt_)) {
    metrics_.faults_injected.fetch_add(1, std::memory_order_relaxed);
    throw MachineFailedError(fault_round_, ctx.machine_id(),
                             "injected table-read failure");
  }
}

void Runtime::fault_write_slow(MachineContext& ctx) {
  if (injector_->fires(FaultKind::kStagedWriteLoss, fault_round_,
                       ctx.machine_id(), fault_attempt_)) {
    metrics_.faults_injected.fetch_add(1, std::memory_order_relaxed);
    throw MachineFailedError(fault_round_, ctx.machine_id(),
                             "injected staged-write loss");
  }
}

void Runtime::discard_machine_staging() {
  std::lock_guard<std::mutex> lock(tables_mu_);
  for (auto* t : tables_) t->discard_machine_staged();
}

void Runtime::charge_rounds(const char* label, std::uint64_t rounds) {
  metrics_.charged_rounds += rounds;
  bump_label(metrics_.rounds_by_label, label, 0);  // ensure the label appears
  bump_label(metrics_.charged_by_label, label, rounds);
}

void Runtime::register_table(detail::TableBase* table) {
  // A table created inside a forked shm worker would exist only in that
  // worker's copy-on-write memory — its staged writes could never reach the
  // driver's commit. Fail loudly instead of silently diverging.
  REPRO_CHECK_MSG(!in_worker_,
                  "table registration inside a transport worker process: "
                  "create tables on the driver, before the round");
  std::lock_guard<std::mutex> lock(tables_mu_);
  table->begin_round(round_buffers_);
  tables_.push_back(table);
}

void Runtime::unregister_table(detail::TableBase* table) {
  std::lock_guard<std::mutex> lock(tables_mu_);
  std::erase(tables_, table);
}

void Runtime::release_leased(std::unique_ptr<detail::TableBase> table) {
  // Same program point as a direct table's destructor: the table leaves the
  // commit set now; its storage waits (unregistered, word count excluded)
  // for the next lease of the same concrete type to reset it in place.
  unregister_table(table.get());
  std::lock_guard<std::mutex> lock(pool_mu_);
  table_pool_[std::type_index(typeid(*table))].push_back(std::move(table));
}

Runtime::PoolStats Runtime::pool_stats() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return pool_stats_;
}

void Runtime::reset_for_subproblem(const Config& cfg) {
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    REPRO_CHECK_MSG(tables_.empty(),
                    "reset_for_subproblem with live tables: the previous "
                    "subproblem's leases/tables must be released first");
    round_buffers_ = 0;
  }
  // Rebuild the transport only when its config changed: ShmTransport keeps
  // its rings (and their mappings) across rounds and subproblems.
  if (cfg.transport != cfg_.transport ||
      (cfg.transport == transport::TransportKind::kShm &&
       cfg.num_processes != cfg_.num_processes)) {
    transport_ =
        transport::make_transport(cfg.transport, cfg.num_processes, &pool_);
  }
  cfg_ = cfg;
  metrics_.reset();
  round_returns_.clear();
  // Rebuild the injector from the new plan; the next subproblem's fault
  // schedule restarts at round 0 exactly as a fresh Runtime's would.
  injector_.reset();
  if (cfg_.fault.enabled()) {
    injector_ = std::make_unique<FaultInjector>(cfg_.fault);
  }
}

void Runtime::commit_all() {
  std::lock_guard<std::mutex> lock(tables_mu_);
  // Seal every table's dirty-buffer list (O(buffers actually written), not
  // O(machines)) and gather the ones with staged writes.
  std::vector<detail::TableBase*> staged;
  std::uint64_t staged_total = 0;
  for (auto* t : tables_) {
    const std::uint64_t entries = t->seal_staged();
    if (entries == 0) continue;
    staged_total += entries;
    staged.push_back(t);
  }
  if (staged_total >= kParallelCommitThreshold) {
    // Flatten the two commit phases as task lists (phases fan out from here
    // rather than nesting a parallel_for per table, keeping one barrier per
    // phase across all tables).
    struct Task {
      detail::TableBase* table;
      std::size_t index;
    };
    std::vector<Task> partitions;
    std::vector<Task> shards;
    for (auto* t : staged) {
      for (std::size_t d = 0, nd = t->num_dirty_buffers(); d < nd; ++d) {
        partitions.push_back({t, d});
      }
      for (std::size_t s = 0, ns = t->num_commit_shards(); s < ns; ++s) {
        shards.push_back({t, s});
      }
    }
    // Phase A: partition each dirty staging buffer by destination shard.
    pool_.parallel_for(partitions.size(), [&](std::size_t i) {
      partitions[i].table->partition_staged(partitions[i].index);
    });
    // Phase B: apply each shard's slice of every dirty buffer, machine order.
    pool_.parallel_for(shards.size(), [&](std::size_t i) {
      shards[i].table->commit_shard(shards[i].index);
    });
    for (auto* t : staged) t->finish_commit();
  } else {
    for (auto* t : staged) t->commit_sealed();
  }
  std::uint64_t words = 0;
  for (auto* t : tables_) words += t->size_words();
  metrics_.peak_table_words = std::max(metrics_.peak_table_words, words);
}

}  // namespace ampccut::ampc
