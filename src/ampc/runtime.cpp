#include "ampc/runtime.h"

namespace ampccut::ampc {

thread_local MachineContext* MachineContext::current_ = nullptr;

Runtime::Runtime(Config cfg) : cfg_(cfg), pool_(ThreadPool::shared()) {}

void Runtime::round(const char* label, std::size_t num_machines,
                    const std::function<void(MachineContext&)>& body) {
  ++metrics_.rounds;
  metrics_.rounds_by_label[label] += 1;
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> max_machine_traffic{0};
  pool_.parallel_for(num_machines, [&](std::size_t machine) {
    MachineContext ctx(*this, machine);
    MachineContext::ScopedActivation scope(ctx);
    body(ctx);
    reads.fetch_add(ctx.reads(), std::memory_order_relaxed);
    writes.fetch_add(ctx.writes(), std::memory_order_relaxed);
    const std::uint64_t traffic = ctx.reads() + ctx.writes();
    std::uint64_t seen = max_machine_traffic.load(std::memory_order_relaxed);
    while (seen < traffic && !max_machine_traffic.compare_exchange_weak(
                                 seen, traffic, std::memory_order_relaxed)) {
    }
    if (cfg_.enforce_local_memory && traffic > cfg_.machine_memory_words) {
      metrics_.budget_violations.fetch_add(1, std::memory_order_relaxed);
    }
  });
  metrics_.dht_reads += reads.load();
  metrics_.dht_writes += writes.load();
  metrics_.max_machine_traffic =
      std::max(metrics_.max_machine_traffic, max_machine_traffic.load());
  // Commit all staged table writes at the round barrier (AMPC semantics:
  // writes become visible in the next round's hash table).
  commit_all();
}

void Runtime::charge_rounds(const char* label, std::uint64_t rounds) {
  metrics_.charged_rounds += rounds;
  metrics_.rounds_by_label[label] += 0;  // ensure the label appears
  metrics_.charged_by_label[label] += rounds;
}

void Runtime::register_table(detail::TableBase* table) {
  std::lock_guard<std::mutex> lock(tables_mu_);
  tables_.push_back(table);
}

void Runtime::unregister_table(detail::TableBase* table) {
  std::lock_guard<std::mutex> lock(tables_mu_);
  std::erase(tables_, table);
}

void Runtime::commit_all() {
  std::lock_guard<std::mutex> lock(tables_mu_);
  std::uint64_t words = 0;
  for (auto* t : tables_) {
    t->commit();
    words += t->size_words();
  }
  metrics_.peak_table_words = std::max(metrics_.peak_table_words, words);
}

}  // namespace ampccut::ampc
