// The AMPC model simulator (Section 1.1; Behnezhad et al. [3]).
//
// Model recap: P machines with O(n^eps) local memory run synchronous rounds.
// During a round every machine may *adaptively* read the distributed hash
// table written by previous rounds (H_{i-1}); writes go to the next table
// (H_i) and become visible only after the round barrier. We simulate this
// with:
//   * Runtime::round(label, machines, body) — executes `machines` virtual
//     machines on a thread pool, counts one model round, and commits all
//     staged table writes at the barrier;
//   * Table<K,V> / DenseTable<V> — sharded hash table / dense array with
//     frozen reads (only data committed in earlier rounds is visible) and
//     per-machine staged writes;
//   * MachineContext — tracks per-machine read/write word counts against the
//     O(n^eps) budget (the model bounds a machine's DHT traffic per round by
//     its local memory).
//
// Metrics separate *measured* rounds (what the simulator executed) from
// *charged* rounds (published costs of cited primitives — see DESIGN.md
// round-accounting policy; only the MSF primitive uses charging).
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/bits.h"
#include "support/check.h"
#include "support/threadpool.h"

namespace ampccut::ampc {

struct Config {
  double eps = 0.5;                 // machine memory exponent
  std::uint64_t problem_size = 0;   // N = n + m; machine memory = N^eps
  std::uint64_t machine_memory_words = 0;  // derived if 0
  bool enforce_local_memory = true;        // record violations (never throws)

  static Config for_problem(std::uint64_t n_plus_m, double eps = 0.5) {
    Config c;
    c.eps = eps;
    c.problem_size = n_plus_m;
    c.machine_memory_words = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(
                std::pow(static_cast<double>(n_plus_m), eps)));
    return c;
  }

  [[nodiscard]] std::uint64_t num_machines(std::uint64_t items) const {
    return std::max<std::uint64_t>(
        1, ceil_div(items, std::max<std::uint64_t>(1, machine_memory_words)));
  }
};

struct Metrics {
  std::uint64_t rounds = 0;          // measured (executed) rounds
  std::uint64_t charged_rounds = 0;  // cited-cost rounds (MSF only)
  std::uint64_t dht_reads = 0;       // words read from tables
  std::uint64_t dht_writes = 0;      // words staged into tables
  std::uint64_t max_machine_traffic = 0;  // per machine per round
  std::uint64_t peak_table_words = 0;     // total-memory proxy
  std::atomic<std::uint64_t> budget_violations{0};
  std::map<std::string, std::uint64_t> rounds_by_label;
  std::map<std::string, std::uint64_t> charged_by_label;

  [[nodiscard]] std::uint64_t model_rounds() const {
    return rounds + charged_rounds;
  }
};

namespace detail {
class TableBase {
 public:
  virtual ~TableBase() = default;
  virtual void commit() = 0;
  [[nodiscard]] virtual std::uint64_t size_words() const = 0;
};
}  // namespace detail

class Runtime;

// Per-virtual-machine context; installed thread-locally while the machine's
// task runs so table reads can be accounted to the right machine.
class MachineContext {
 public:
  MachineContext(Runtime& rt, std::size_t machine_id)
      : runtime_(rt), machine_(machine_id) {}

  [[nodiscard]] std::size_t machine_id() const { return machine_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

  void count_read(std::uint64_t words = 1) { reads_ += words; }
  void count_write(std::uint64_t words = 1) { writes_ += words; }

  static MachineContext* current() { return current_; }

  struct ScopedActivation {
    explicit ScopedActivation(MachineContext& ctx) { current_ = &ctx; }
    ~ScopedActivation() { current_ = nullptr; }
  };

 private:
  friend struct ScopedActivation;
  Runtime& runtime_;
  std::size_t machine_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  static thread_local MachineContext* current_;
};

class Runtime {
 public:
  explicit Runtime(Config cfg);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }

  // One synchronous AMPC round: `num_machines` virtual machines execute
  // `body`, then all staged table writes commit.
  void round(const char* label, std::size_t num_machines,
             const std::function<void(MachineContext&)>& body);

  // Round over a flat item domain: machines receive contiguous item chunks
  // of at most machine_memory_words items.
  template <class F>
  void round_over_items(const char* label, std::uint64_t num_items, F&& body) {
    const std::uint64_t per =
        std::max<std::uint64_t>(1, cfg_.machine_memory_words);
    const std::uint64_t machines = cfg_.num_machines(num_items);
    round(label, machines, [&](MachineContext& ctx) {
      const std::uint64_t begin = ctx.machine_id() * per;
      const std::uint64_t end = std::min(num_items, begin + per);
      for (std::uint64_t i = begin; i < end; ++i) body(ctx, i);
    });
  }

  // Account the published round cost of a cited primitive (see DESIGN.md).
  void charge_rounds(const char* label, std::uint64_t rounds);

  void register_table(detail::TableBase* table);
  void unregister_table(detail::TableBase* table);

 private:
  void commit_all();

  Config cfg_;
  Metrics metrics_;
  ThreadPool& pool_;
  std::mutex tables_mu_;
  std::vector<detail::TableBase*> tables_;
};

// Merge policies for writes committed under the same key in one round.
enum class Merge { kOverwrite, kMin, kMax, kSum };

template <class V>
void apply_merge(V& dst, const V& src, Merge policy) {
  if (policy == Merge::kOverwrite) {
    dst = src;
    return;
  }
  if constexpr (requires(V a, V b) { a < b; a += b; }) {
    switch (policy) {
      case Merge::kOverwrite: dst = src; break;
      case Merge::kMin: dst = std::min(dst, src); break;
      case Merge::kMax: dst = std::max(dst, src); break;
      case Merge::kSum: dst += src; break;
    }
  } else {
    REPRO_CHECK_MSG(false, "merge policy needs an ordered/summable value type");
  }
}

// Sharded hash table with AMPC visibility semantics. Reads see only data
// committed at a previous round barrier; put() stages writes shard-locally.
template <class K, class V, class Hash = std::hash<K>>
class Table final : public detail::TableBase {
 public:
  Table(Runtime& rt, std::string name, Merge policy = Merge::kOverwrite,
        std::size_t shards = 64)
      : rt_(rt), name_(std::move(name)), policy_(policy), shards_(shards) {
    rt_.register_table(this);
  }
  ~Table() override { rt_.unregister_table(this); }

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  // Adaptive read during a round (counts against the machine budget).
  std::optional<V> get(const K& key) const {
    if (auto* ctx = MachineContext::current()) ctx->count_read(words_per_kv());
    const Shard& s = shard(key);
    const auto it = s.data.find(key);
    if (it == s.data.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] bool contains(const K& key) const {
    return get(key).has_value();
  }

  V at(const K& key) const {
    auto v = get(key);
    REPRO_CHECK_MSG(v.has_value(), "missing key in table " + name_);
    return *v;
  }

  // Staged write; visible after the enclosing round's barrier.
  void put(const K& key, V value) {
    if (auto* ctx = MachineContext::current())
      ctx->count_write(words_per_kv());
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mu);
    s.staged.emplace_back(key, std::move(value));
  }

  // Immediate insert for round-0 input distribution (counts no traffic).
  void seed(const K& key, V value) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto [it, fresh] = s.data.emplace(key, std::move(value));
    if (!fresh) apply_merge(it->second, value, policy_);
  }

  void commit() override {
    for (auto& s : shards_vec_) {
      std::lock_guard<std::mutex> lock(s.mu);
      for (auto& [k, v] : s.staged) {
        auto [it, fresh] = s.data.emplace(k, v);
        if (!fresh) apply_merge(it->second, v, policy_);
      }
      s.staged.clear();
    }
  }

  [[nodiscard]] std::uint64_t size_words() const override {
    std::uint64_t n = 0;
    for (const auto& s : shards_vec_) n += s.data.size();
    return n * words_per_kv();
  }

  [[nodiscard]] std::uint64_t size() const {
    std::uint64_t n = 0;
    for (const auto& s : shards_vec_) n += s.data.size();
    return n;
  }

  // Snapshot of committed contents (driver-side, between rounds).
  std::vector<std::pair<K, V>> snapshot() const {
    std::vector<std::pair<K, V>> out;
    for (const auto& s : shards_vec_) {
      out.insert(out.end(), s.data.begin(), s.data.end());
    }
    return out;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<K, V, Hash> data;
    std::vector<std::pair<K, V>> staged;
  };

  static constexpr std::uint64_t words_per_kv() {
    return (sizeof(K) + sizeof(V) + 7) / 8;
  }

  Shard& shard(const K& key) {
    return shards_vec_[Hash{}(key) % shards_vec_.size()];
  }
  const Shard& shard(const K& key) const {
    return shards_vec_[Hash{}(key) % shards_vec_.size()];
  }

  Runtime& rt_;
  std::string name_;
  Merge policy_;
  std::size_t shards_;
  std::vector<Shard> shards_vec_{shards_};
};

// Dense uint64-indexed table (a hash table whose keys are 0..size-1): same
// visibility semantics, array-backed for the index-structured data (tree
// arrays, sparse tables) that dominates the algorithms. Reads of
// uncommitted-this-round writes are prevented by staging into a side buffer.
template <class V>
class DenseTable final : public detail::TableBase {
 public:
  DenseTable(Runtime& rt, std::string name, std::size_t size, V init = V{},
             Merge policy = Merge::kOverwrite)
      : rt_(rt), name_(std::move(name)), policy_(policy),
        data_(size, init) {
    rt_.register_table(this);
  }
  ~DenseTable() override { rt_.unregister_table(this); }

  DenseTable(const DenseTable&) = delete;
  DenseTable& operator=(const DenseTable&) = delete;

  V get(std::uint64_t i) const {
    REPRO_DCHECK(i < data_.size());
    if (auto* ctx = MachineContext::current()) ctx->count_read(words_per_v());
    return data_[i];
  }

  void put(std::uint64_t i, V value) {
    REPRO_DCHECK(i < data_.size());
    if (auto* ctx = MachineContext::current()) ctx->count_write(words_per_v());
    std::lock_guard<std::mutex> lock(mu_);
    staged_.emplace_back(i, std::move(value));
  }

  // Round-0 seeding / driver-side access (no traffic accounting).
  void seed(std::uint64_t i, V value) { data_[i] = std::move(value); }
  const V& raw(std::uint64_t i) const { return data_[i]; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  void commit() override {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [i, v] : staged_) {
      apply_merge(data_[i], v, policy_ == Merge::kOverwrite
                                   ? Merge::kOverwrite
                                   : policy_);
    }
    staged_.clear();
  }

  [[nodiscard]] std::uint64_t size_words() const override {
    return data_.size() * words_per_v();
  }

 private:
  static constexpr std::uint64_t words_per_v() {
    return (sizeof(V) + 7) / 8;
  }

  Runtime& rt_;
  std::string name_;
  Merge policy_;
  std::vector<V> data_;
  std::mutex mu_;
  std::vector<std::pair<std::uint64_t, V>> staged_;
};

}  // namespace ampccut::ampc
