// The AMPC model simulator (Section 1.1; Behnezhad et al. [3]).
//
// Model recap: P machines with O(n^eps) local memory run synchronous rounds.
// During a round every machine may *adaptively* read the distributed hash
// table written by previous rounds (H_{i-1}); writes go to the next table
// (H_i) and become visible only after the round barrier. We simulate this
// with:
//   * Runtime::round(label, machines, body) — executes `machines` virtual
//     machines on a thread pool, counts one model round, and commits all
//     staged table writes at the barrier;
//   * Table<K,V> / DenseTable<V> — sharded hash table / dense array with
//     frozen reads (only data committed in earlier rounds is visible) and
//     per-machine staged writes;
//   * MachineContext — tracks per-machine read/write word counts against the
//     O(n^eps) budget (the model bounds a machine's DHT traffic per round by
//     its local memory).
//
// Write path (DESIGN.md "Runtime concurrency & staging"): put() appends to
// the calling machine's private staging buffer — no locks, no sharing. At
// the barrier the runtime commits in two parallel phases: (A) each buffer is
// partitioned by destination shard, (B) each shard applies its slice of
// every buffer in machine-id order. Machine order makes committed contents
// (and hence kOverwrite races) independent of the thread schedule, and the
// frozen-read invariant holds because committed storage is only ever touched
// between rounds.
//
// Failure semantics (DESIGN.md "Fault injection & round-level recovery"): a
// machine that throws MachineFailedError — injected by Config::fault or
// thrown by the body — fails only its round. The barrier discards the
// round's machine staging buffers (committed state is untouched by
// construction) and replays the round under Config::retry; past
// max_attempts, RetriesExhaustedError surfaces. Any other exception also
// leaves the runtime reusable: staging cleared, leases releasable,
// reset_for_subproblem legal.
//
// Metrics separate *measured* rounds (what the simulator executed) from
// *charged* rounds (published costs of cited primitives — see DESIGN.md
// round-accounting policy; only the MSF primitive uses charging).
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "ampc/fault.h"
#include "support/bits.h"
#include "support/check.h"
#include "support/errors.h"
#include "support/psort.h"
#include "support/threadpool.h"
#include "transport/transport.h"

namespace ampccut::ampc {

struct Config {
  double eps = 0.5;                 // machine memory exponent
  std::uint64_t problem_size = 0;   // N = n + m; machine memory = N^eps
  std::uint64_t machine_memory_words = 0;  // derived if 0
  bool enforce_local_memory = true;  // count (or, strict, throw on) violations
  // Strict budget mode: a machine whose round traffic exceeds
  // machine_memory_words throws BudgetExceededError instead of bumping the
  // violation counter. Deterministic, so the barrier never retries it — the
  // algorithm layer catches it and degrades (mincut_ampc.h).
  bool strict_budget = false;
  // Round execution strategy (src/transport/): kLocal runs machines as
  // thread-pool tasks in this process; kShm forks num_processes worker
  // processes per round and ships staged writes back over shared-memory
  // rings. Results, stats and all pre-existing non-traffic metrics are
  // bit-identical across the two — see DESIGN.md "Transport layer &
  // multi-process execution" for the argument.
  transport::TransportKind transport = transport::TransportKind::kLocal;
  std::uint32_t num_processes = 2;  // shm worker processes (>= 1)
  // Deterministic fault injection + bounded round-level recovery (fault.h).
  // Default plan is empty: all hooks compile down to one null check.
  FaultPlan fault;
  RetryPolicy retry;

  static Config for_problem(std::uint64_t n_plus_m, double eps = 0.5) {
    Config c;
    c.eps = eps;
    c.problem_size = n_plus_m;
    c.machine_memory_words = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(
                std::pow(static_cast<double>(n_plus_m), eps)));
    return c;
  }

  [[nodiscard]] std::uint64_t num_machines(std::uint64_t items) const {
    return std::max<std::uint64_t>(
        1, ceil_div(items, std::max<std::uint64_t>(1, machine_memory_words)));
  }
};

struct Metrics {
  std::uint64_t rounds = 0;          // measured (executed) rounds
  std::uint64_t charged_rounds = 0;  // cited-cost rounds (MSF only)
  std::uint64_t dht_reads = 0;       // words read from tables
  std::uint64_t dht_writes = 0;      // words staged into tables
  std::uint64_t max_machine_traffic = 0;  // per machine per round
  std::uint64_t peak_table_words = 0;     // total-memory proxy
  std::atomic<std::uint64_t> budget_violations{0};
  // Robustness counters (fault.h). Injected faults and machine failures are
  // recorded as they happen — including on attempts whose staging is later
  // discarded — while rounds_retried counts the extra (replay) executions.
  // Everything above this comment is bit-identical between a faulted run
  // whose retries succeed and the fault-free run.
  std::uint64_t rounds_retried = 0;
  std::atomic<std::uint64_t> faults_injected{0};
  std::atomic<std::uint64_t> machine_failures{0};
  // Transport wire accounting (driver-only writes, once per round). Nonzero
  // only under ShmTransport — LocalTransport moves no bytes — so these sit
  // below the bit-identity line with the robustness counters.
  std::uint64_t wire_bytes_sent = 0;  // frame bytes drained from worker rings
  std::uint64_t flush_batches = 0;    // kPutBatch frames (combiner flushes)
  // Transparent comparators: the per-round bump looks labels up by const
  // char* without materializing a std::string (rounds are fine-grained
  // enough that the temporary showed up in profiles).
  std::map<std::string, std::uint64_t, std::less<>> rounds_by_label;
  std::map<std::string, std::uint64_t, std::less<>> charged_by_label;

  [[nodiscard]] std::uint64_t model_rounds() const {
    return rounds + charged_rounds;
  }

  // Restore construction state (Runtime::reset_for_subproblem). Metrics is
  // not assignable (the atomic), so reuse resets fields in place.
  void reset() {
    rounds = 0;
    charged_rounds = 0;
    dht_reads = 0;
    dht_writes = 0;
    max_machine_traffic = 0;
    peak_table_words = 0;
    budget_violations.store(0, std::memory_order_relaxed);
    rounds_retried = 0;
    faults_injected.store(0, std::memory_order_relaxed);
    machine_failures.store(0, std::memory_order_relaxed);
    wire_bytes_sent = 0;
    flush_batches = 0;
    rounds_by_label.clear();
    charged_by_label.clear();
  }
};

namespace detail {

// Tracks which staging buffers received entries this round, so the barrier
// commit touches only those instead of scanning one buffer per virtual
// machine per table (the scan dominated commit cost on fine-grained rounds).
// mark() runs at most once per buffer per round — on the buffer's first
// entry — and takes a slot from a relaxed atomic cursor, so writer threads
// only ever contend on the cursor. seal() orders the ids ascending, which is
// machine-id commit order with the overflow sentinel naturally last.
class DirtyBuffers {
 public:
  static constexpr std::uint32_t kOverflow = ~0u;  // the driver-side buffer

  // Never concurrent with mark(); `n` must cover every markable id + 1 slot
  // for the overflow sentinel.
  void ensure_capacity(std::size_t n) {
    if (slots_.size() < n) slots_.resize(n);
  }

  void mark(std::uint32_t id) {
    slots_[count_.fetch_add(1, std::memory_order_relaxed)] = id;
  }

  // Driver thread, after the round barrier (the pool join orders all marks
  // before this). Returns the number of dirty buffers.
  std::size_t seal() {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    // Dirty-buffer lists are tiny (one slot per buffer that wrote this
    // round), so the psort sequential fallback is the right engine; ids are
    // unique (mark() runs once per buffer), so stable == unstable here.
    psort::stable_sort_keys(nullptr, slots_.data(), n,
                            std::less<std::uint32_t>{});
    return n;
  }

  [[nodiscard]] std::size_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t id_at(std::size_t i) const { return slots_[i]; }
  void clear() { count_.store(0, std::memory_order_relaxed); }

 private:
  std::vector<std::uint32_t> slots_;
  std::atomic<std::uint32_t> count_{0};
};

// Commit protocol between Runtime and the tables. Staged writes live in
// per-machine buffers (one per virtual machine plus a mutex-guarded overflow
// slot for driver-side writes outside any machine); each table tracks the
// buffers that actually received writes (DirtyBuffers above). The barrier
// commit seals that list, then runs two phases the runtime can fan out over
// the thread pool:
//   phase A  partition_staged(d)  — group the d-th dirty buffer's entries by
//                                   shard (independent across buffers);
//   phase B  commit_shard(s)      — apply shard s's slice of every dirty
//                                   buffer, in sealed (machine-id) order
//                                   (independent across shards: disjoint key
//                                   ranges).
// finish_commit() clears the dirty buffers (capacity retained).
class TableBase {
 public:
  virtual ~TableBase() = default;

  // Ensures at least `num_buffers` machine staging buffers exist (the
  // overflow buffer is separate and always addressed by the sentinel).
  // Called by the runtime at round start and at registration — never
  // concurrently with put().
  virtual void begin_round(std::size_t num_buffers) = 0;

  // Seals the round's dirty-buffer list for commit (driver thread, between
  // rounds). Returns the number of staged entries; 0 means nothing to do.
  virtual std::uint64_t seal_staged() = 0;
  [[nodiscard]] virtual std::size_t num_dirty_buffers() const = 0;
  [[nodiscard]] virtual std::size_t num_commit_shards() const = 0;
  virtual void partition_staged(std::size_t dirty_index) = 0;
  virtual void commit_shard(std::size_t shard) = 0;
  virtual void finish_commit() = 0;
  [[nodiscard]] virtual std::uint64_t size_words() const = 0;

  // Round-level recovery (driver thread, after a failed round's barrier):
  // drop every machine staging buffer without applying it, leaving committed
  // contents untouched. The driver-side overflow buffer survives — it was
  // staged outside the failed round and must still commit with the retry.
  virtual void discard_machine_staged() = 0;

  // --- Cross-process staging (src/transport/) -----------------------------
  //
  // wire_encode_machine serializes machine `m`'s staged entries as complete
  // kPutBatch frames appended to `out` (worker side; the staging buffer is
  // left untouched — the worker process exits right after). Entries under a
  // commutative merge policy (kSum/kMin/kMax) are combiner-aggregated
  // first: sorted by key and merged, which cannot change the committed
  // value because the policy is associative and commutative. kOverwrite
  // ships verbatim in program order — last-write-wins depends on it.
  // Returns the number of frames appended.
  //
  // wire_stage_machine reconstructs machine staging from a decoded batch
  // (driver side, single-threaded drain): entries land in the same
  // per-machine buffer, in frame-arrival order — which is that machine's
  // program order, the only order commit semantics depend on. Throws
  // TransportError if the batch's key/value sizes do not match this table.
  virtual std::uint64_t wire_encode_machine(
      std::size_t machine, std::uint32_t table_index,
      std::vector<std::uint8_t>* out) = 0;
  virtual void wire_stage_machine(const transport::PutBatch& batch) = 0;

  // Serial commit of an already-sealed table: same phase order as the
  // parallel path, hence bit-identical results.
  void commit_sealed() {
    for (std::size_t d = 0, nd = num_dirty_buffers(); d < nd; ++d) {
      partition_staged(d);
    }
    for (std::size_t s = 0, ns = num_commit_shards(); s < ns; ++s) {
      commit_shard(s);
    }
    finish_commit();
  }

  // Standalone serial commit (tests / driver-side flushes).
  void commit() {
    seal_staged();
    commit_sealed();
  }
};

}  // namespace detail

class Runtime;
template <class T>
class TableLease;
template <class K, class V, class Hash = std::hash<K>>
class Table;
template <class V>
class DenseTable;

// Merge policies for writes committed under the same key in one round.
enum class Merge { kOverwrite, kMin, kMax, kSum };

template <class V>
void apply_merge(V& dst, const V& src, Merge policy) {
  if (policy == Merge::kOverwrite) {
    dst = src;
    return;
  }
  if constexpr (requires(V a, V b) { a < b; a += b; }) {
    switch (policy) {
      case Merge::kOverwrite: dst = src; break;
      case Merge::kMin: dst = std::min(dst, src); break;
      case Merge::kMax: dst = std::max(dst, src); break;
      case Merge::kSum: dst += src; break;
    }
  } else {
    REPRO_CHECK_MSG(false, "merge policy needs an ordered/summable value type");
  }
}

namespace detail {

// --- Wire staging helpers (src/transport/) ---------------------------------

// Per-frame ceiling for encoded put batches: well under kMaxFramePayload so
// ring occupancy (and with it driver drain latency) stays bounded even when
// a machine staged far more than one ring can hold.
inline constexpr std::size_t kPutChunkBytes = 256u * 1024;

// Combiner: fold same-key entries under a commutative merge policy before
// they cross the wire. Sorting by the full (key, value) pair groups equal
// keys with a deterministic total order; within a key group the fold may
// therefore run out of program order, which cannot change the folded value
// — kSum/kMin/kMax are commutative and associative over the integral value
// types the tables hold, and kOverwrite batches are never combined (their
// program order is load-bearing and they ship verbatim).
template <class K, class V>
void combine_staged_pairs(std::vector<std::pair<K, V>>* pairs, Merge policy) {
  psort::stable_sort_keys(nullptr, pairs->data(), pairs->size(),
                          std::less<std::pair<K, V>>{});
  std::size_t w = 0;
  for (std::size_t r = 0; r < pairs->size(); ++r) {
    if (w != 0 && (*pairs)[w - 1].first == (*pairs)[r].first) {
      apply_merge((*pairs)[w - 1].second, (*pairs)[r].second, policy);
    } else {
      (*pairs)[w++] = (*pairs)[r];
    }
  }
  pairs->resize(w);
}

// Serializes key/value pairs as chunked kPutBatch frames appended to `out`.
// Returns the number of frames.
template <class K, class V>
std::uint64_t encode_put_frames(std::uint32_t table_index,
                                std::uint64_t machine,
                                const std::vector<std::pair<K, V>>& pairs,
                                std::vector<std::uint8_t>* out) {
  static_assert(sizeof(K) <= 255 && sizeof(V) <= 255,
                "wire batch entry sizes are u8 fields");
  constexpr std::size_t kEntry = sizeof(K) + sizeof(V);
  constexpr std::size_t kPerFrame =
      (kPutChunkBytes - transport::kPutBatchPrefixBytes) / kEntry;
  static_assert(kPerFrame >= 1);
  std::uint64_t frames = 0;
  std::vector<std::uint8_t> payload;
  for (std::size_t at = 0; at < pairs.size(); at += kPerFrame) {
    const std::size_t n = std::min(kPerFrame, pairs.size() - at);
    payload.clear();
    transport::append_put_batch_prefix(
        &payload, table_index, machine, static_cast<std::uint32_t>(n),
        static_cast<std::uint8_t>(sizeof(K)),
        static_cast<std::uint8_t>(sizeof(V)));
    for (std::size_t i = at; i < at + n; ++i) {
      transport::append_bytes(&payload, &pairs[i].first, sizeof(K));
      transport::append_bytes(&payload, &pairs[i].second, sizeof(V));
    }
    transport::append_frame(out, transport::FrameKind::kPutBatch,
                            payload.data(), payload.size());
    ++frames;
  }
  return frames;
}

}  // namespace detail

// Per-virtual-machine context; installed thread-locally while the machine's
// task runs so table reads can be accounted to the right machine.
class MachineContext {
 public:
  MachineContext(Runtime& rt, std::size_t machine_id)
      : runtime_(rt), machine_(machine_id) {}

  [[nodiscard]] std::size_t machine_id() const { return machine_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

  void count_read(std::uint64_t words = 1) { reads_ += words; }
  void count_write(std::uint64_t words = 1) { writes_ += words; }

  // Driver-return channel: hand an opaque blob to the driver, readable via
  // Runtime::take_round_returns() after the round. This is the only way a
  // machine may move data to the driver besides table writes — capturing
  // driver-side storage in the round body breaks under the shm transport,
  // where the body runs in a forked worker whose memory dies with it
  // (blobs travel back as kDriverBlob wire frames). One call per machine
  // per round; the blob costs no DHT traffic (count separately if the
  // model should charge for it).
  void driver_return(std::vector<std::uint8_t> blob);

  static MachineContext* current() { return current_; }

  struct ScopedActivation {
    explicit ScopedActivation(MachineContext& ctx) { current_ = &ctx; }
    ~ScopedActivation() { current_ = nullptr; }
  };

 private:
  friend struct ScopedActivation;
  Runtime& runtime_;
  std::size_t machine_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  static thread_local MachineContext* current_;
};

class Runtime {
 public:
  // `pool` overrides the shared pool (tests pin thread counts with it);
  // nullptr selects ThreadPool::shared().
  explicit Runtime(Config cfg, ThreadPool* pool = nullptr);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }

  // One synchronous AMPC round: `num_machines` virtual machines execute
  // `body`, then all staged table writes commit.
  void round(const char* label, std::size_t num_machines,
             const std::function<void(MachineContext&)>& body);

  // Round over a flat item domain: machines receive contiguous item chunks
  // of at most machine_memory_words items.
  template <class F>
  void round_over_items(const char* label, std::uint64_t num_items, F&& body) {
    const std::uint64_t per =
        std::max<std::uint64_t>(1, cfg_.machine_memory_words);
    const std::uint64_t machines = cfg_.num_machines(num_items);
    round(label, machines, [&](MachineContext& ctx) {
      const std::uint64_t begin = ctx.machine_id() * per;
      const std::uint64_t end = std::min(num_items, begin + per);
      for (std::uint64_t i = begin; i < end; ++i) body(ctx, i);
    });
  }

  // Account the published round cost of a cited primitive (see DESIGN.md).
  void charge_rounds(const char* label, std::uint64_t rounds);

  // Collects the blobs machines handed to MachineContext::driver_return
  // during the last round, indexed by machine id (empty vector = no call).
  // Driver-side, between rounds; moves the storage out.
  std::vector<std::vector<std::uint8_t>> take_round_returns() {
    return std::move(round_returns_);
  }

  // The transport executing this runtime's rounds (Config::transport).
  [[nodiscard]] transport::TransportKind transport_kind() const {
    return transport_->kind();
  }

  void register_table(detail::TableBase* table);
  void unregister_table(detail::TableBase* table);

  // --- Table pooling (DESIGN.md "Table and runtime pooling") --------------
  //
  // lease_dense / lease_table replace direct Table/DenseTable construction
  // in the algorithm layer: the returned TableLease behaves like the table
  // (operator->), registers it for the barrier commit exactly as the old
  // constructor did, and on destruction returns the object — shard vectors,
  // staging buffers, dirty-slot capacity, hash-map buckets and all — to a
  // per-runtime free list keyed by concrete table type. A pool hit resets
  // the committed contents in place (O(size) value init for dense tables,
  // O(entries previously committed) map clears for sparse ones) with zero
  // heap churn in steady state. Contents, metrics, and traffic are
  // bit-identical to fresh construction: registration happens at the same
  // program points and reset() restores exactly the constructed state.

  template <class V>
  TableLease<DenseTable<V>> lease_dense(std::string name, std::size_t size,
                                        V init = V{},
                                        Merge policy = Merge::kOverwrite);

  template <class K, class V, class Hash = std::hash<K>>
  TableLease<Table<K, V, Hash>> lease_table(std::string name,
                                            Merge policy = Merge::kOverwrite,
                                            std::size_t shards = 64);

  // Reuse this runtime (and its table pool) for the next subproblem of a
  // larger solve: restores config and metrics to construction state. Must be
  // called with no live tables — leases and direct tables of the previous
  // subproblem have to be gone, or their words would leak into the next
  // subproblem's accounting.
  void reset_for_subproblem(const Config& cfg);

  struct PoolStats {
    std::uint64_t leases = 0;  // lease_dense/lease_table calls
    std::uint64_t reuses = 0;  // leases served from the free list
  };
  [[nodiscard]] PoolStats pool_stats() const;

  // --- Fault-injection hooks (fault.h) ------------------------------------
  // Called by Table/DenseTable on the read and put paths while a machine
  // context is active; one predictable null check when no plan is installed.
  void fault_point_read(MachineContext& ctx) {
    if (injector_ != nullptr) fault_read_slow(ctx);
  }
  void fault_point_write(MachineContext& ctx) {
    if (injector_ != nullptr) fault_write_slow(ctx);
  }

 private:
  template <class T>
  friend class TableLease;
  friend class MachineContext;  // driver_return writes round_returns_

  void commit_all();

  // Free-list access for the lease machinery. take_pooled returns nullptr on
  // a pool miss (caller constructs fresh); release_leased unregisters and
  // stashes. Both lock pool_mu_ only — safe from round bodies.
  template <class T>
  std::unique_ptr<T> take_pooled() {
    std::lock_guard<std::mutex> lock(pool_mu_);
    ++pool_stats_.leases;
    const auto it = table_pool_.find(std::type_index(typeid(T)));
    if (it == table_pool_.end() || it->second.empty()) return nullptr;
    std::unique_ptr<detail::TableBase> base = std::move(it->second.back());
    it->second.pop_back();
    ++pool_stats_.reuses;
    return std::unique_ptr<T>(static_cast<T*>(base.release()));
  }

  void release_leased(std::unique_ptr<detail::TableBase> table);

  // Fault slow paths and the recovery helper (runtime.cpp).
  void fault_read_slow(MachineContext& ctx);
  void fault_write_slow(MachineContext& ctx);
  void machine_entry_faults(MachineContext& ctx);
  void discard_machine_staging();

  Config cfg_;
  Metrics metrics_;
  ThreadPool& pool_;
  // Round execution strategy (rebuilt by reset_for_subproblem only when the
  // transport config changes — ShmTransport keeps its rings across rounds).
  std::unique_ptr<transport::Transport> transport_;
  // Snapshot of tables_ taken at round start: the wire table index a worker
  // encodes with must resolve to the same table on the driver even if a
  // machine body registers tables mid-round (which the shm transport
  // rejects via the in_worker_ guard — see register_table).
  std::vector<detail::TableBase*> round_tables_;
  // Per-machine driver_return blobs of the round in flight (each machine
  // writes only its own slot; the driver reads between rounds).
  std::vector<std::vector<std::uint8_t>> round_returns_;
  // Set inside a forked shm worker: operations that cannot cross the
  // process boundary (table registration) fail loudly instead of silently
  // diverging from the driver's view.
  bool in_worker_ = false;
  // Installed when cfg_.fault.enabled(); decisions read fault_round_ /
  // fault_attempt_, which only the driver writes (between pool barriers, so
  // the batch hand-off publishes them to the workers).
  std::unique_ptr<FaultInjector> injector_;
  std::uint64_t fault_round_ = 0;
  std::uint32_t fault_attempt_ = 0;
  std::mutex tables_mu_;
  std::vector<detail::TableBase*> tables_;  // guarded by tables_mu_
  std::size_t round_buffers_ = 0;  // machine buffers of the round in flight
  // Pooled (currently unleased) tables by concrete type. Declared after
  // tables_mu_/tables_ so pooled tables — whose destructors call
  // unregister_table — are destroyed while those members are still alive.
  mutable std::mutex pool_mu_;
  std::unordered_map<std::type_index,
                     std::vector<std::unique_ptr<detail::TableBase>>>
      table_pool_;  // guarded by pool_mu_
  PoolStats pool_stats_;  // guarded by pool_mu_
};

// RAII handle for a pooled table (Runtime::lease_dense / lease_table).
// Move-only; behaves like a pointer to the table. Destruction (or release())
// unregisters the table from the runtime and returns its storage to the
// runtime's pool — the same program point where a directly-constructed
// table's destructor would have run.
template <class T>
class TableLease {
 public:
  TableLease() = default;
  TableLease(Runtime* rt, std::unique_ptr<T> table)
      : rt_(rt), table_(std::move(table)) {}
  TableLease(TableLease&& other) noexcept
      : rt_(other.rt_), table_(std::move(other.table_)) {
    other.rt_ = nullptr;
  }
  TableLease& operator=(TableLease&& other) noexcept {
    if (this != &other) {
      release();
      rt_ = other.rt_;
      table_ = std::move(other.table_);
      other.rt_ = nullptr;
    }
    return *this;
  }
  TableLease(const TableLease&) = delete;
  TableLease& operator=(const TableLease&) = delete;
  ~TableLease() { release(); }

  T* operator->() const { return table_.get(); }
  T& operator*() const { return *table_; }
  explicit operator bool() const { return table_ != nullptr; }

  void release() {
    if (table_ != nullptr) rt_->release_leased(std::move(table_));
    rt_ = nullptr;
  }

 private:
  Runtime* rt_ = nullptr;
  std::unique_ptr<T> table_;
};

// Sharded hash table with AMPC visibility semantics. Reads see only data
// committed at a previous round barrier; put() stages into the writing
// machine's private buffer (lock-free — see the header comment). Commit
// applies buffers in machine-id order, so same-key kOverwrite writes resolve
// deterministically to the highest-machine-id writer.
template <class K, class V, class Hash>
class Table final : public detail::TableBase {
 public:
  Table(Runtime& rt, std::string name, Merge policy = Merge::kOverwrite,
        std::size_t shards = 64)
      : rt_(rt), name_(std::move(name)), policy_(policy),
        shards_vec_(std::max<std::size_t>(1, shards)) {
    rt_.register_table(this);
  }
  ~Table() override { rt_.unregister_table(this); }

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  // Adaptive read during a round (counts against the machine budget).
  // Committed storage is immutable while machines run, so reads take no lock.
  std::optional<V> get(const K& key) const {
    if (auto* ctx = MachineContext::current()) {
      rt_.fault_point_read(*ctx);
      ctx->count_read(words_per_kv());
    }
    const auto& data = shards_vec_[shard_of(key)].data;
    const auto it = data.find(key);
    if (it == data.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] bool contains(const K& key) const {
    return get(key).has_value();
  }

  V at(const K& key) const {
    auto v = get(key);
    REPRO_CHECK_MSG(v.has_value(), "missing key in table " + name_);
    return *v;
  }

  // Staged write; visible after the enclosing round's barrier.
  void put(const K& key, V value) {
    const auto shard = static_cast<std::uint32_t>(shard_of(key));
    if (auto* ctx = MachineContext::current()) {
      rt_.fault_point_write(*ctx);
      ctx->count_write(words_per_kv());
      Buffer& buf = buffers_[ctx->machine_id()];
      if (buf.entries.empty()) {
        dirty_.mark(static_cast<std::uint32_t>(ctx->machine_id()));
      }
      buf.entries.push_back({shard, key, std::move(value)});
      return;
    }
    // Driver-side write outside any machine: the dedicated overflow buffer,
    // committed after every machine's buffer.
    std::lock_guard<std::mutex> lock(overflow_mu_);
    if (overflow_.entries.empty()) {
      dirty_.mark(detail::DirtyBuffers::kOverflow);
    }
    overflow_.entries.push_back({shard, key, std::move(value)});
  }

  // Immediate insert for round-0 input distribution (counts no traffic;
  // driver-side only, never concurrent with a round).
  void seed(const K& key, V value) {
    auto& data = shards_vec_[shard_of(key)].data;
    const auto it = data.find(key);
    if (it == data.end()) {
      data.emplace(key, std::move(value));
    } else {
      apply_merge(it->second, value, policy_);
    }
  }

  [[nodiscard]] std::uint64_t size_words() const override {
    return size() * words_per_kv();
  }

  [[nodiscard]] std::uint64_t size() const {
    std::uint64_t n = 0;
    for (const auto& s : shards_vec_) n += s.data.size();
    return n;
  }

  // Snapshot of committed contents (driver-side, between rounds).
  std::vector<std::pair<K, V>> snapshot() const {
    std::vector<std::pair<K, V>> out;
    for (const auto& s : shards_vec_) {
      out.insert(out.end(), s.data.begin(), s.data.end());
    }
    return out;
  }

  // Pool-reset (Runtime::lease_table): restore constructed state in place.
  // Map clears keep bucket arrays, staging buffers and dirty slots keep
  // their capacity — only entries actually committed since the last reset
  // cost anything.
  void reset(std::string name, Merge policy, std::size_t shards) {
    name_ = std::move(name);
    policy_ = policy;
    shards = std::max<std::size_t>(1, shards);
    if (shards_vec_.size() != shards) shards_vec_.resize(shards);
    for (auto& s : shards_vec_) {
      if (!s.data.empty()) s.data.clear();
    }
    finish_commit();  // drop any staged-but-uncommitted leftovers
  }

  // --- TableBase commit protocol -----------------------------------------

  void begin_round(std::size_t num_buffers) override {
    if (buffers_.size() < num_buffers) buffers_.resize(num_buffers);
    dirty_.ensure_capacity(buffers_.size() + 1);  // + the overflow sentinel
  }

  std::uint64_t seal_staged() override {
    const std::size_t nd = dirty_.seal();
    std::uint64_t n = 0;
    for (std::size_t d = 0; d < nd; ++d) {
      n += buffer_at(dirty_.id_at(d)).entries.size();
    }
    return n;
  }

  [[nodiscard]] std::size_t num_dirty_buffers() const override {
    return dirty_.count();
  }

  [[nodiscard]] std::size_t num_commit_shards() const override {
    return shards_vec_.size();
  }

  void partition_staged(std::size_t dirty_index) override {
    Buffer& buf = buffer_at(dirty_.id_at(dirty_index));
    const std::size_t shards = shards_vec_.size();
    buf.offsets.assign(shards + 1, 0);
    for (const Staged& e : buf.entries) ++buf.offsets[e.shard + 1];
    for (std::size_t s = 0; s < shards; ++s) {
      buf.offsets[s + 1] += buf.offsets[s];
    }
    buf.parted.resize(buf.entries.size());
    std::vector<std::uint32_t> cursor(buf.offsets.begin(),
                                      buf.offsets.end() - 1);
    for (Staged& e : buf.entries) {  // stable: program order within a shard
      buf.parted[cursor[e.shard]++] = std::move(e);
    }
  }

  void commit_shard(std::size_t shard) override {
    auto& data = shards_vec_[shard].data;
    for (std::size_t d = 0, nd = dirty_.count(); d < nd; ++d) {
      Buffer& buf = buffer_at(dirty_.id_at(d));  // sealed machine-id order
      const std::uint32_t begin = buf.offsets[shard];
      const std::uint32_t end = buf.offsets[shard + 1];
      for (std::uint32_t i = begin; i < end; ++i) {
        Staged& e = buf.parted[i];
        const auto it = data.find(e.key);
        if (it == data.end()) {
          data.emplace(std::move(e.key), std::move(e.value));
        } else {
          apply_merge(it->second, e.value, policy_);
        }
      }
    }
  }

  void finish_commit() override {
    for (std::size_t d = 0, nd = dirty_.count(); d < nd; ++d) {
      Buffer& buf = buffer_at(dirty_.id_at(d));
      buf.entries.clear();
      buf.parted.clear();
      buf.offsets.clear();
    }
    dirty_.clear();
  }

  void discard_machine_staged() override {
    bool overflow_dirty = false;
    for (std::size_t d = 0, nd = dirty_.count(); d < nd; ++d) {
      const std::uint32_t id = dirty_.id_at(d);
      if (id == detail::DirtyBuffers::kOverflow) {
        overflow_dirty = true;  // staged outside the round; keep for retry
        continue;
      }
      Buffer& buf = buffers_[id];
      buf.entries.clear();
      buf.parted.clear();
      buf.offsets.clear();
    }
    dirty_.clear();
    if (overflow_dirty) dirty_.mark(detail::DirtyBuffers::kOverflow);
  }

  std::uint64_t wire_encode_machine(std::size_t machine,
                                    std::uint32_t table_index,
                                    std::vector<std::uint8_t>* out) override {
    if constexpr (std::is_trivially_copyable_v<K> &&
                  std::is_trivially_copyable_v<V>) {
      if (machine >= buffers_.size()) return 0;
      const Buffer& buf = buffers_[machine];
      if (buf.entries.empty()) return 0;
      std::vector<std::pair<K, V>> pairs;
      pairs.reserve(buf.entries.size());
      for (const Staged& e : buf.entries) pairs.emplace_back(e.key, e.value);
      if constexpr (requires(K a, K b, V x, V y) {
                      a < b;
                      a == b;
                      x < y;
                    }) {
        if (policy_ != Merge::kOverwrite) {
          detail::combine_staged_pairs(&pairs, policy_);
        }
      }
      return detail::encode_put_frames(table_index, machine, pairs, out);
    } else {
      REPRO_CHECK_MSG(false,
                      "table " + name_ +
                          ": key/value type is not trivially copyable and "
                          "cannot cross the transport wire");
      return 0;
    }
  }

  void wire_stage_machine(const transport::PutBatch& batch) override {
    if constexpr (std::is_trivially_copyable_v<K> &&
                  std::is_trivially_copyable_v<V>) {
      if (batch.key_size != sizeof(K) || batch.value_size != sizeof(V)) {
        throw TransportError("wire: put batch entry sizes (" +
                             std::to_string(batch.key_size) + "+" +
                             std::to_string(batch.value_size) +
                             ") do not match table " + name_);
      }
      REPRO_CHECK(batch.machine < buffers_.size());
      Buffer& buf = buffers_[batch.machine];
      if (batch.count != 0 && buf.entries.empty()) {
        dirty_.mark(static_cast<std::uint32_t>(batch.machine));
      }
      const std::uint8_t* p = batch.entries;
      for (std::uint32_t i = 0; i < batch.count; ++i) {
        K key;
        V value;
        std::memcpy(&key, p, sizeof(K));
        p += sizeof(K);
        std::memcpy(&value, p, sizeof(V));
        p += sizeof(V);
        // Shard recomputed here rather than shipped: shard_of is the same
        // pure function on both sides, and it keeps entries at 100% payload.
        const auto shard = static_cast<std::uint32_t>(shard_of(key));
        buf.entries.push_back({shard, std::move(key), std::move(value)});
      }
    } else {
      REPRO_CHECK_MSG(false, "table " + name_ +
                                 ": key/value type cannot be staged from "
                                 "the transport wire");
    }
  }

 private:
  struct Staged {
    std::uint32_t shard;
    K key;
    V value;
  };
  // One per virtual machine, plus the dedicated overflow buffer. A buffer is
  // only ever appended to by the thread running its machine, partitioned by
  // one phase-A task, and read by phase-B tasks — never concurrently.
  struct Buffer {
    std::vector<Staged> entries;
    std::vector<Staged> parted;            // entries grouped by shard
    std::vector<std::uint32_t> offsets;    // per-shard ranges into parted
  };
  struct Shard {
    std::unordered_map<K, V, Hash> data;
  };

  static constexpr std::uint64_t words_per_kv() {
    return (sizeof(K) + sizeof(V) + 7) / 8;
  }

  [[nodiscard]] std::size_t shard_of(const K& key) const {
    return Hash{}(key) % shards_vec_.size();
  }

  // The overflow buffer is addressed by the dirty sentinel — a member of its
  // own (not a vector slot) so begin_round growth can never repurpose it as
  // a machine buffer, and the sentinel's max value keeps its commit-last
  // position through the sealed ordering.
  [[nodiscard]] Buffer& buffer_at(std::uint32_t id) {
    return id == detail::DirtyBuffers::kOverflow ? overflow_ : buffers_[id];
  }

  Runtime& rt_;
  std::string name_;
  Merge policy_;
  std::vector<Shard> shards_vec_;
  std::vector<Buffer> buffers_;  // grown by begin_round, one per machine
  Buffer overflow_;              // driver-side writes, commits last
  std::mutex overflow_mu_;
  detail::DirtyBuffers dirty_;
};

// Dense uint64-indexed table (a hash table whose keys are 0..size-1): same
// visibility and staging semantics, array-backed for the index-structured
// data (tree arrays, sparse tables) that dominates the algorithms. Commit
// shards are contiguous index ranges, so phase B stays cache-friendly.
template <class V>
class DenseTable final : public detail::TableBase {
 public:
  DenseTable(Runtime& rt, std::string name, std::size_t size, V init = V{},
             Merge policy = Merge::kOverwrite)
      : rt_(rt), name_(std::move(name)), policy_(policy), data_(size, init),
        shard_size_(std::max<std::uint64_t>(
            1, ceil_div(std::max<std::uint64_t>(1, size), kMaxShards))) {
    rt_.register_table(this);
  }
  ~DenseTable() override { rt_.unregister_table(this); }

  DenseTable(const DenseTable&) = delete;
  DenseTable& operator=(const DenseTable&) = delete;

  V get(std::uint64_t i) const {
    REPRO_DCHECK(i < data_.size());
    if (auto* ctx = MachineContext::current()) {
      rt_.fault_point_read(*ctx);
      ctx->count_read(words_per_v());
    }
    return data_[i];
  }

  void put(std::uint64_t i, V value) {
    REPRO_DCHECK(i < data_.size());
    const auto shard = static_cast<std::uint32_t>(i / shard_size_);
    if (auto* ctx = MachineContext::current()) {
      rt_.fault_point_write(*ctx);
      ctx->count_write(words_per_v());
      Buffer& buf = buffers_[ctx->machine_id()];
      if (buf.entries.empty()) {
        dirty_.mark(static_cast<std::uint32_t>(ctx->machine_id()));
      }
      buf.entries.push_back({shard, i, std::move(value)});
      return;
    }
    std::lock_guard<std::mutex> lock(overflow_mu_);
    if (overflow_.entries.empty()) {
      dirty_.mark(detail::DirtyBuffers::kOverflow);
    }
    overflow_.entries.push_back({shard, i, std::move(value)});
  }

  // Round-0 seeding / driver-side access (no traffic accounting).
  void seed(std::uint64_t i, V value) { data_[i] = std::move(value); }
  const V& raw(std::uint64_t i) const { return data_[i]; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  // Pool-reset (Runtime::lease_dense): restore constructed state in place,
  // reusing the heap block whenever capacity suffices (staging buffers and
  // dirty slots always keep theirs). The init fill takes the memset path for
  // uniform byte patterns — 0 and kNoNext (all-0xFF) cover nearly every
  // table in the algorithm layer, and element-wise std::fill measured ~4×
  // slower than memset on the lease microbench.
  void reset(std::string name, std::size_t size, V init, Merge policy) {
    name_ = std::move(name);
    policy_ = policy;
    shard_size_ = std::max<std::uint64_t>(
        1, ceil_div(std::max<std::uint64_t>(1, size), kMaxShards));
    bool filled = false;
    if constexpr (std::is_trivially_copyable_v<V> && sizeof(V) >= 1) {
      unsigned char bytes[sizeof(V)];
      std::memcpy(bytes, &init, sizeof(V));
      bool uniform = true;
      for (std::size_t b = 1; b < sizeof(V); ++b) {
        uniform = uniform && bytes[b] == bytes[0];
      }
      if (uniform) {
        if (data_.size() != size) data_.resize(size);
        if (size != 0) {
          std::memset(static_cast<void*>(data_.data()), bytes[0],
                      size * sizeof(V));
        }
        filled = true;
      }
    }
    if (!filled) data_.assign(size, init);
    finish_commit();  // drop any staged-but-uncommitted leftovers
  }

  [[nodiscard]] std::uint64_t size_words() const override {
    return data_.size() * words_per_v();
  }

  // --- TableBase commit protocol -----------------------------------------

  void begin_round(std::size_t num_buffers) override {
    if (buffers_.size() < num_buffers) buffers_.resize(num_buffers);
    dirty_.ensure_capacity(buffers_.size() + 1);  // + the overflow sentinel
  }

  std::uint64_t seal_staged() override {
    const std::size_t nd = dirty_.seal();
    std::uint64_t n = 0;
    for (std::size_t d = 0; d < nd; ++d) {
      n += buffer_at(dirty_.id_at(d)).entries.size();
    }
    return n;
  }

  [[nodiscard]] std::size_t num_dirty_buffers() const override {
    return dirty_.count();
  }

  [[nodiscard]] std::size_t num_commit_shards() const override {
    return data_.empty() ? 1 : ceil_div(data_.size(), shard_size_);
  }

  void partition_staged(std::size_t dirty_index) override {
    Buffer& buf = buffer_at(dirty_.id_at(dirty_index));
    const std::size_t shards = num_commit_shards();
    buf.offsets.assign(shards + 1, 0);
    for (const Staged& e : buf.entries) ++buf.offsets[e.shard + 1];
    for (std::size_t s = 0; s < shards; ++s) {
      buf.offsets[s + 1] += buf.offsets[s];
    }
    buf.parted.resize(buf.entries.size());
    std::vector<std::uint32_t> cursor(buf.offsets.begin(),
                                      buf.offsets.end() - 1);
    for (Staged& e : buf.entries) {
      buf.parted[cursor[e.shard]++] = std::move(e);
    }
  }

  void commit_shard(std::size_t shard) override {
    for (std::size_t d = 0, nd = dirty_.count(); d < nd; ++d) {
      Buffer& buf = buffer_at(dirty_.id_at(d));  // sealed machine-id order
      const std::uint32_t begin = buf.offsets[shard];
      const std::uint32_t end = buf.offsets[shard + 1];
      for (std::uint32_t i = begin; i < end; ++i) {
        Staged& e = buf.parted[i];
        apply_merge(data_[e.index], e.value, policy_);
      }
    }
  }

  void finish_commit() override {
    for (std::size_t d = 0, nd = dirty_.count(); d < nd; ++d) {
      Buffer& buf = buffer_at(dirty_.id_at(d));
      buf.entries.clear();
      buf.parted.clear();
      buf.offsets.clear();
    }
    dirty_.clear();
  }

  void discard_machine_staged() override {
    bool overflow_dirty = false;
    for (std::size_t d = 0, nd = dirty_.count(); d < nd; ++d) {
      const std::uint32_t id = dirty_.id_at(d);
      if (id == detail::DirtyBuffers::kOverflow) {
        overflow_dirty = true;  // staged outside the round; keep for retry
        continue;
      }
      Buffer& buf = buffers_[id];
      buf.entries.clear();
      buf.parted.clear();
      buf.offsets.clear();
    }
    dirty_.clear();
    if (overflow_dirty) dirty_.mark(detail::DirtyBuffers::kOverflow);
  }

  std::uint64_t wire_encode_machine(std::size_t machine,
                                    std::uint32_t table_index,
                                    std::vector<std::uint8_t>* out) override {
    static_assert(std::is_trivially_copyable_v<V>,
                  "DenseTable values must be trivially copyable to cross "
                  "the transport wire");
    if (machine >= buffers_.size()) return 0;
    const Buffer& buf = buffers_[machine];
    if (buf.entries.empty()) return 0;
    std::vector<std::pair<std::uint64_t, V>> pairs;
    pairs.reserve(buf.entries.size());
    for (const Staged& e : buf.entries) pairs.emplace_back(e.index, e.value);
    if constexpr (requires(V x, V y) { x < y; }) {
      if (policy_ != Merge::kOverwrite) {
        detail::combine_staged_pairs(&pairs, policy_);
      }
    }
    return detail::encode_put_frames(table_index, machine, pairs, out);
  }

  void wire_stage_machine(const transport::PutBatch& batch) override {
    if (batch.key_size != sizeof(std::uint64_t) ||
        batch.value_size != sizeof(V)) {
      throw TransportError("wire: put batch entry sizes (" +
                           std::to_string(batch.key_size) + "+" +
                           std::to_string(batch.value_size) +
                           ") do not match dense table " + name_);
    }
    REPRO_CHECK(batch.machine < buffers_.size());
    Buffer& buf = buffers_[batch.machine];
    if (batch.count != 0 && buf.entries.empty()) {
      dirty_.mark(static_cast<std::uint32_t>(batch.machine));
    }
    const std::uint8_t* p = batch.entries;
    for (std::uint32_t i = 0; i < batch.count; ++i) {
      std::uint64_t index;
      V value;
      std::memcpy(&index, p, sizeof(index));
      p += sizeof(index);
      std::memcpy(&value, p, sizeof(V));
      p += sizeof(V);
      if (index >= data_.size()) {
        throw TransportError("wire: staged index " + std::to_string(index) +
                             " out of range for dense table " + name_);
      }
      const auto shard = static_cast<std::uint32_t>(index / shard_size_);
      buf.entries.push_back({shard, index, std::move(value)});
    }
  }

 private:
  static constexpr std::uint64_t kMaxShards = 64;

  struct Staged {
    std::uint32_t shard;
    std::uint64_t index;
    V value;
  };
  struct Buffer {
    std::vector<Staged> entries;
    std::vector<Staged> parted;
    std::vector<std::uint32_t> offsets;
  };

  static constexpr std::uint64_t words_per_v() {
    return (sizeof(V) + 7) / 8;
  }

  [[nodiscard]] Buffer& buffer_at(std::uint32_t id) {
    return id == detail::DirtyBuffers::kOverflow ? overflow_ : buffers_[id];
  }

  Runtime& rt_;
  std::string name_;
  Merge policy_;
  std::vector<V> data_;
  std::uint64_t shard_size_;  // indices per commit shard
  std::vector<Buffer> buffers_;
  Buffer overflow_;
  std::mutex overflow_mu_;
  detail::DirtyBuffers dirty_;
};

// --- Lease factories (need the table definitions above) --------------------

template <class V>
TableLease<DenseTable<V>> Runtime::lease_dense(std::string name,
                                               std::size_t size, V init,
                                               Merge policy) {
  std::unique_ptr<DenseTable<V>> t = take_pooled<DenseTable<V>>();
  if (t != nullptr) {
    t->reset(std::move(name), size, init, policy);
    register_table(t.get());
  } else {
    // Pool miss: fresh construction registers in the constructor.
    t = std::make_unique<DenseTable<V>>(*this, std::move(name), size, init,
                                        policy);
  }
  return TableLease<DenseTable<V>>(this, std::move(t));
}

template <class K, class V, class Hash>
TableLease<Table<K, V, Hash>> Runtime::lease_table(std::string name,
                                                   Merge policy,
                                                   std::size_t shards) {
  std::unique_ptr<Table<K, V, Hash>> t = take_pooled<Table<K, V, Hash>>();
  if (t != nullptr) {
    t->reset(std::move(name), policy, shards);
    register_table(t.get());
  } else {
    t = std::make_unique<Table<K, V, Hash>>(*this, std::move(name), policy,
                                            shards);
  }
  return TableLease<Table<K, V, Hash>>(this, std::move(t));
}

// Reuses Runtime objects — and their table pools — across the subproblems of
// a larger solve (one min-cut tracker run per component per k-cut iteration,
// in the source paper's terms). acquire() hands out a reset runtime from the
// free list or constructs one; concurrent acquirers always get distinct
// runtimes, so the recursion drivers' parallel fan-out stays data-race-free
// while still amortizing table storage across calls on the same slot.
// Results and metrics are independent of which pooled runtime served a call:
// reset_for_subproblem restores construction state exactly.
class RuntimeArena {
 public:
  // `pool` is forwarded to every Runtime it constructs (nullptr = shared).
  explicit RuntimeArena(ThreadPool* pool = nullptr) : pool_(pool) {}

  // RAII checkout; returns the runtime to the arena on destruction.
  class Lease {
   public:
    Lease(RuntimeArena* arena, std::unique_ptr<Runtime> rt)
        : arena_(arena), rt_(std::move(rt)) {}
    Lease(Lease&& other) noexcept
        : arena_(other.arena_), rt_(std::move(other.rt_)) {
      other.arena_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (rt_ != nullptr) arena_->release(std::move(rt_));
    }

    Runtime* operator->() const { return rt_.get(); }
    Runtime& operator*() const { return *rt_; }

   private:
    RuntimeArena* arena_;
    std::unique_ptr<Runtime> rt_;
  };

  Lease acquire(const Config& cfg) {
    std::unique_ptr<Runtime> rt;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        rt = std::move(free_.back());
        free_.pop_back();
      }
    }
    if (rt != nullptr) {
      rt->reset_for_subproblem(cfg);
    } else {
      rt = std::make_unique<Runtime>(cfg, pool_);
    }
    return Lease(this, std::move(rt));
  }

 private:
  friend class Lease;
  void release(std::unique_ptr<Runtime> rt) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(rt));
  }

  ThreadPool* pool_;
  std::mutex mu_;
  std::vector<std::unique_ptr<Runtime>> free_;  // guarded by mu_
};

}  // namespace ampccut::ampc
