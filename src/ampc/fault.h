// Deterministic fault injection for the AMPC runtime (DESIGN.md "Fault
// injection & round-level recovery").
//
// A FaultPlan describes which failures to inject; the FaultInjector turns it
// into per-(round, machine, attempt) decisions that are pure functions of
// the plan's seed — derived from the same splitmix64 chain support/rng.h
// builds on, never from wall clock or thread schedule. The runtime installs
// one injector per Runtime (Config::fault) and consults it at three hooks:
// machine entry (crash / straggler delay), the table read path, and the
// table put path. An injected failure throws MachineFailedError
// (support/errors.h); the round barrier discards the round's staged writes
// — committed tables are untouched by construction — and replays the round
// under RetryPolicy. Because every decision also hashes the attempt index,
// rate-based faults re-roll on replay and cannot pin a round forever, while
// explicitly scheduled faults fire on attempt 0 only, so their recovery is
// guaranteed to succeed (given max_attempts >= 2).
#pragma once

#include <cstdint>
#include <vector>

namespace ampccut::ampc {

enum class FaultKind : std::uint8_t {
  kMachineCrash = 0,     // machine dies at round entry; round retries
  kTableReadFail = 1,    // machine's first table read fails; round retries
  kStagedWriteLoss = 2,  // machine's staged writes are lost — detected at
                         // the first put (a real transport detects it via
                         // ack mismatch), surfaced as a machine failure so
                         // the discard-and-replay path restores them
  kSlowMachine = 3,      // deterministic straggler spin; never fails
};

// Explicitly scheduled fault: fires when (round_index, machine_id) match, on
// attempt 0 only, regardless of the rates below.
struct ScheduledFault {
  std::uint64_t round = 0;
  std::uint64_t machine = 0;
  FaultKind kind = FaultKind::kMachineCrash;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  // Per-(round, machine, attempt) probabilities, each drawn independently.
  double crash_rate = 0.0;
  double read_fail_rate = 0.0;
  double write_loss_rate = 0.0;
  double delay_rate = 0.0;
  std::uint32_t delay_spin = 256;  // spin iterations per injected delay
  std::vector<ScheduledFault> scheduled;

  // True when any fault can ever fire; Runtime skips all hooks otherwise.
  [[nodiscard]] bool enabled() const;
};

// Bounded round-level recovery: a failed round is replayed up to
// max_attempts total executions before RetriesExhaustedError surfaces.
struct RetryPolicy {
  std::uint32_t max_attempts = 3;  // total attempts per round (>= 1)
  std::uint32_t backoff_spin = 0;  // deterministic spin between attempts
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Whether `kind` fires for machine `machine` of logical round `round` on
  // retry `attempt`. Pure in its arguments: every caller at every thread
  // count sees the same schedule.
  [[nodiscard]] bool fires(FaultKind kind, std::uint64_t round,
                           std::uint64_t machine, std::uint32_t attempt) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
};

// Deterministic busy work (slow-machine injection, retry backoff): a
// splitmix64 chain of `iterations` steps — no clocks, no syscalls, cannot be
// elided by the optimizer.
void fault_delay_spin(std::uint64_t seed, std::uint32_t iterations);

}  // namespace ampccut::ampc
