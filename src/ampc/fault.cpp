#include "ampc/fault.h"

#include <utility>

#include "support/rng.h"

namespace ampccut::ampc {

bool FaultPlan::enabled() const {
  return crash_rate > 0.0 || read_fail_rate > 0.0 || write_loss_rate > 0.0 ||
         delay_rate > 0.0 || !scheduled.empty();
}

namespace {

// One uniform [0,1) draw per (seed, kind, round, machine, attempt): the
// chained-splitmix construction Rng::split uses, finished with
// Rng::next_double's mantissa scaling. Including `attempt` re-rolls every
// decision on replay.
double fault_draw(std::uint64_t seed, FaultKind kind, std::uint64_t round,
                  std::uint64_t machine, std::uint32_t attempt) {
  std::uint64_t h = splitmix64(
      seed ^ (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(kind) + 1)));
  h = splitmix64(h ^ round);
  h = splitmix64(h ^ machine);
  h = splitmix64(h ^ attempt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double rate_of(const FaultPlan& plan, FaultKind kind) {
  switch (kind) {
    case FaultKind::kMachineCrash: return plan.crash_rate;
    case FaultKind::kTableReadFail: return plan.read_fail_rate;
    case FaultKind::kStagedWriteLoss: return plan.write_loss_rate;
    case FaultKind::kSlowMachine: return plan.delay_rate;
  }
  return 0.0;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

bool FaultInjector::fires(FaultKind kind, std::uint64_t round,
                          std::uint64_t machine,
                          std::uint32_t attempt) const {
  if (attempt == 0) {
    for (const ScheduledFault& f : plan_.scheduled) {
      if (f.kind == kind && f.round == round && f.machine == machine) {
        return true;
      }
    }
  }
  const double rate = rate_of(plan_, kind);
  return rate > 0.0 &&
         fault_draw(plan_.seed, kind, round, machine, attempt) < rate;
}

void fault_delay_spin(std::uint64_t seed, std::uint32_t iterations) {
  volatile std::uint64_t sink = 0;
  std::uint64_t x = seed;
  for (std::uint32_t i = 0; i < iterations; ++i) {
    x = splitmix64(x);
    sink = x;
  }
  (void)sink;
}

}  // namespace ampccut::ampc
