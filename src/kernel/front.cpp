#include "kernel/front.h"

#include "exact/karger.h"
#include "support/check.h"
#include "support/threadpool.h"

namespace ampccut::kernel {

namespace {

template <class Solve>
MinCutResult solve_kernelized(const WGraph& g, const KernelOptions& opt,
                              const Solve& solve) {
  REPRO_CHECK(g.n >= 2);
  const KernelResult kr = kernelize(g, opt, &ThreadPool::shared());
  if (kr.solved()) return kr.resolved_cut();
  return kr.map.unpack(solve(kr.kernel));
}

}  // namespace

MinCutResult stoer_wagner_min_cut_kernelized(const WGraph& g,
                                             const KernelOptions& opt) {
  if (!opt.enabled) return stoer_wagner_min_cut(g);
  return solve_kernelized(
      g, opt, [](const WGraph& k) { return stoer_wagner_min_cut(k); });
}

MinCutResult karger_stein_kernelized(const WGraph& g, std::uint32_t trials,
                                     std::uint64_t seed,
                                     const KernelOptions& opt) {
  if (!opt.enabled) return karger_stein(g, trials, seed);
  return solve_kernelized(g, opt, [trials, seed](const WGraph& k) {
    return karger_stein(k, trials, seed);
  });
}

}  // namespace ampccut::kernel
