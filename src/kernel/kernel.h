// Exact kernelization front-end (VieCut / Padberg–Rinaldi line; PAPERS.md:
// Henzinger et al., "Practical Minimum Cut Algorithms").
//
// `kernelize` rewrites a WGraph into a smaller kernel whose min cut, combined
// with a running upper-bound candidate cut discovered along the way, equals
// the min cut of the original graph exactly:
//
//     mincut(G) == min(candidate_weight, mincut(kernel))
//
// and the candidate side / kernel-side cut both lift back to original vertex
// sets through the `KernelMap` lineage. The rules (safety arguments in
// DESIGN.md "Kernelization front-end"):
//
//  * connected-component splitting — a disconnected input has a zero cut
//    along any component; the kernel is empty and the candidate is exact.
//  * parallel-edge merging — identical endpoint pairs sum their weights.
//  * degree-1 removal — a pendant vertex v with incident weight w yields the
//    candidate cut ({v}, rest) of weight w; mincut(G) = min(w, mincut(G-v)).
//  * degree-2 path contraction — v with neighbors a != b (weights w1, w2)
//    yields candidate w1+w2 and is replaced by an edge (a, b, min(w1, w2));
//    v's originals ride with the heavier-edge neighbor so lifted cut weights
//    are exact. (a == b collapses to a plain removal with candidate w1+w2.)
//  * certified heavy-edge contraction — with the running upper bound
//    lambda = best candidate so far (seeded each pass by the minimum weighted
//    degree), an edge (u, v) is contracted when no min cut can separate u
//    from v: W_uv >= lambda, or W_uv >= wdeg(u) - W_uv (the singleton {u}
//    would be no worse moved across), or the connectivity certificate
//    W_uv + sum_t min(W_ut, W_vt) >= lambda (that many edge-disjoint u-v
//    paths exist). Contractions are batched one-touch-per-pass with all
//    conditions evaluated on the pass-start snapshot, so the batch is as
//    safe as a sequence of single contractions.
//
// Every sort/scan the passes perform runs on the psort layer, so the kernel
// (graph, lineage, stats — every byte) is identical at every thread count.
// The control loop itself is sequential; the pool only accelerates the
// sort/scan passes.
#pragma once

#include <cstdint>
#include <vector>

#include "exact/stoer_wagner.h"
#include "graph/graph.h"

namespace ampccut {
class ThreadPool;
}

namespace ampccut::kernel {

struct KernelOptions {
  // Master switch consulted by the integration points (the recursion
  // drivers, the k-cut splitters, the exact front-ends). `kernelize` itself
  // ignores it: calling kernelize means kernelizing.
  bool enabled = false;
  // Rule passes iterate until a fixed point or this many rounds.
  std::uint32_t max_passes = 16;
  // Per-rule toggles, mainly for tests that pin one rule in isolation.
  bool merge_parallel_edges = true;
  bool remove_low_degree = true;     // degree-0/1/2 rules
  bool contract_heavy_edges = true;  // certified contraction rules
};

// The options benches and front-ends use when they opt in.
inline KernelOptions enabled_defaults() {
  KernelOptions o;
  o.enabled = true;
  return o;
}

struct KernelStats {
  VertexId original_n = 0;
  VertexId kernel_n = 0;
  std::uint64_t original_m = 0;
  std::uint64_t kernel_m = 0;
  VertexId components = 1;  // > 1 means the split rule resolved the input
  std::uint32_t passes = 0;
  std::uint64_t merged_parallel = 0;    // edges removed by merging
  std::uint64_t removed_degree_one = 0;
  std::uint64_t removed_degree_two = 0;
  std::uint64_t contracted_certified = 0;  // heavy-edge contractions

  friend bool operator==(const KernelStats&, const KernelStats&) = default;
};

// Lineage from kernel back to the original graph. `kernel_of[v]` maps every
// original vertex to its kernel supervertex (kInvalidVertex only when the
// disconnected split resolved the input without building a kernel). The
// candidate is the best exactness-certified cut the rules discovered:
// `candidate_members` is one side, as original vertex ids, and its weight in
// the ORIGINAL graph is exactly `candidate_weight`.
struct KernelMap {
  VertexId original_n = 0;
  std::vector<VertexId> kernel_of;
  Weight candidate_weight = kInfiniteWeight;
  std::vector<VertexId> candidate_members;

  // The candidate as a MinCutResult over original vertex ids. Requires a
  // finite candidate.
  [[nodiscard]] MinCutResult candidate_cut() const;

  // Lifts a cut of the kernel back to the original graph and returns the
  // better of it and the candidate (ties prefer the kernel cut). The lifted
  // weight is exactly `kernel_cut.weight`; with an exact kernel_cut the
  // result is the exact min cut of the original graph.
  [[nodiscard]] MinCutResult unpack(const MinCutResult& kernel_cut) const;
};

struct KernelResult {
  WGraph kernel;
  KernelMap map;
  KernelStats stats;

  // Fewer than 2 kernel vertices: nothing left to cut, the candidate (when
  // the original had n >= 2) IS the exact min cut.
  [[nodiscard]] bool solved() const { return kernel.n < 2; }

  // The final answer for a solved kernel. Requires solved(); the weight is
  // kInfiniteWeight only when the original graph had n < 2.
  [[nodiscard]] MinCutResult resolved_cut() const;
};

// Runs the reduction pipeline. The pool (nullable: sequential) only feeds
// the psort primitives — output is bit-identical for every pool width.
KernelResult kernelize(const WGraph& g, const KernelOptions& opt = {},
                       ThreadPool* pool = nullptr);

}  // namespace ampccut::kernel
