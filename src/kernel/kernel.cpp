#include "kernel/kernel.h"

#include <algorithm>
#include <utility>

#include "graph/union_find.h"
#include "support/check.h"
#include "support/psort.h"
#include "support/threadpool.h"

namespace ampccut::kernel {

namespace {

// Undirected key of a normalized (u <= v) edge. A free-function projection:
// the stable sort below supplies the tie-break, and equal-key edges merge
// into one anyway.
inline std::uint64_t edge_key(const WEdge& e) {
  return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
}

// Half-edge used to build the merged CSR the certificate pass runs on.
struct HalfArc {
  VertexId v = 0;   // owning endpoint
  VertexId to = 0;  // other endpoint
  Weight w = 0;
};

inline std::uint64_t arc_key(const HalfArc& a) {
  return (static_cast<std::uint64_t>(a.v) << 32) | a.to;
}

// Runs the rule passes over one CONNECTED graph with n >= 2. The control
// loop is sequential; every sort goes through psort on the caller's pool, so
// the result is bit-identical at every thread count.
class Reducer {
 public:
  Reducer(const WGraph& g, const KernelOptions& opt, ThreadPool* pool)
      : opt_(opt), pool_(pool) {
    cur_.n = g.n;
    cur_.edges = g.edges;
    members_.resize(g.n);
    for (VertexId v = 0; v < g.n; ++v) members_[v] = {v};
    stats_.original_n = g.n;
    stats_.original_m = g.edges.size();
    map_.original_n = g.n;
  }

  KernelResult run() {
    for (std::uint32_t pass = 0; pass < opt_.max_passes; ++pass) {
      bool changed = false;
      if (opt_.merge_parallel_edges) changed |= merge_parallel();
      if (opt_.remove_low_degree) changed |= peel_low_degree();
      if (cur_.n >= 2 && opt_.contract_heavy_edges) {
        changed |= contract_certified();
      }
      if (!changed || cur_.n < 2) break;
      ++stats_.passes;  // counts passes that made progress
    }
    // Leave a clean (parallel-edge-free) kernel even when the loop exited
    // mid-pass via the pass cap or full reduction.
    if (opt_.merge_parallel_edges) merge_parallel();

    stats_.kernel_n = cur_.n;
    stats_.kernel_m = cur_.edges.size();
    map_.kernel_of.assign(map_.original_n, kInvalidVertex);
    for (VertexId kv = 0; kv < cur_.n; ++kv) {
      for (const VertexId orig : members_[kv]) map_.kernel_of[orig] = kv;
    }
    KernelResult out;
    out.kernel = std::move(cur_);
    out.map = std::move(map_);
    out.stats = stats_;
    return out;
  }

 private:
  // Records ({side}, rest) as a candidate cut; `side` lists original ids and
  // must be copied before any member splice. Strict improvement keeps the
  // first-found candidate on ties — deterministic.
  void record_candidate(Weight w, const std::vector<VertexId>& side) {
    if (w < map_.candidate_weight) {
      map_.candidate_weight = w;
      map_.candidate_members = side;
    }
  }

  // Splices the members of a removed vertex into its attach target.
  void attach(VertexId removed, VertexId host) {
    auto& src = members_[removed];
    auto& dst = members_[host];
    dst.insert(dst.end(), src.begin(), src.end());
    src.clear();
    src.shrink_to_fit();
  }

  // Sums the weights of identical endpoint pairs. Also canonicalizes the
  // edge list (u <= v, sorted by (u, v)) as a side effect.
  bool merge_parallel() {
    auto& edges = cur_.edges;
    if (edges.size() < 2) return false;
    for (auto& e : edges) {
      if (e.u > e.v) std::swap(e.u, e.v);
    }
    psort::stable_sort_keys(pool_, edges, [](const WEdge& a, const WEdge& b) {
      return edge_key(a) < edge_key(b);
    });
    std::size_t out = 0;
    for (std::size_t i = 0; i < edges.size();) {
      WEdge merged = edges[i];
      std::size_t j = i + 1;
      while (j < edges.size() && edges[j].u == merged.u &&
             edges[j].v == merged.v) {
        merged.w += edges[j].w;
        ++j;
      }
      edges[out++] = merged;
      i = j;
    }
    const bool any = out != edges.size();
    stats_.merged_parallel += edges.size() - out;
    edges.resize(out);
    return any;
  }

  // Cascading degree-1 removal and degree-2 path contraction. Sequential
  // worklist in a fixed order; each removal records its candidate cut before
  // splicing the vertex's members into the attach target.
  bool peel_low_degree() {
    const VertexId n = cur_.n;
    if (n == 0) return false;
    std::vector<std::vector<EdgeId>> inc(n);
    for (EdgeId e = 0; e < cur_.edges.size(); ++e) {
      inc[cur_.edges[e].u].push_back(e);
      inc[cur_.edges[e].v].push_back(e);
    }
    std::vector<std::uint8_t> edge_alive(cur_.edges.size(), 1);
    std::vector<std::uint8_t> vert_alive(n, 1);
    std::vector<std::uint8_t> queued(n, 0);
    std::vector<std::uint32_t> deg(n, 0);
    std::vector<VertexId> work;
    for (VertexId v = 0; v < n; ++v) {
      deg[v] = static_cast<std::uint32_t>(inc[v].size());
      if (deg[v] <= 2) {
        work.push_back(v);
        queued[v] = 1;
      }
    }
    const auto push_if_low = [&](VertexId v) {
      if (vert_alive[v] != 0 && deg[v] <= 2 && queued[v] == 0) {
        work.push_back(v);
        queued[v] = 1;
      }
    };

    VertexId alive_n = n;
    bool changed = false;
    while (!work.empty()) {
      const VertexId v = work.back();
      work.pop_back();
      queued[v] = 0;
      if (vert_alive[v] == 0 || alive_n <= 1) continue;
      auto& iv = inc[v];
      iv.erase(std::remove_if(
                   iv.begin(), iv.end(),
                   [&edge_alive](EdgeId e) { return edge_alive[e] == 0; }),
               iv.end());
      REPRO_DCHECK(iv.size() == deg[v]);
      if (deg[v] > 2) continue;
      // A connected current graph has a degree-0 vertex only when it is the
      // last one standing, which the alive_n guard already handled.
      REPRO_CHECK_MSG(deg[v] >= 1, "degree-0 vertex in connected reduction");

      if (deg[v] == 1) {
        const EdgeId e = iv[0];
        const WEdge ed = cur_.edges[e];
        const VertexId u = ed.u == v ? ed.v : ed.u;
        record_candidate(ed.w, members_[v]);
        attach(v, u);
        edge_alive[e] = 0;
        vert_alive[v] = 0;
        --alive_n;
        --deg[u];
        ++stats_.removed_degree_one;
        changed = true;
        push_if_low(u);
        continue;
      }

      // deg[v] == 2: contract the path a - v - b to an edge (a, b) of the
      // smaller weight; v's originals ride with the heavier-edge neighbor so
      // the lifted weight of any later cut is exact.
      const EdgeId e1 = iv[0];
      const EdgeId e2 = iv[1];
      const WEdge ed1 = cur_.edges[e1];
      const WEdge ed2 = cur_.edges[e2];
      const VertexId a = ed1.u == v ? ed1.v : ed1.u;
      const VertexId b = ed2.u == v ? ed2.v : ed2.u;
      record_candidate(ed1.w + ed2.w, members_[v]);
      edge_alive[e1] = 0;
      edge_alive[e2] = 0;
      vert_alive[v] = 0;
      --alive_n;
      ++stats_.removed_degree_two;
      changed = true;
      if (a == b) {
        // Two parallel edges: a plain removal, no replacement edge.
        attach(v, a);
        deg[a] -= 2;
        push_if_low(a);
      } else {
        attach(v, ed1.w >= ed2.w ? a : b);
        const auto ne = static_cast<EdgeId>(cur_.edges.size());
        cur_.edges.push_back({a, b, std::min(ed1.w, ed2.w)});
        edge_alive.push_back(1);
        inc[a].push_back(ne);
        inc[b].push_back(ne);
        // deg[a] and deg[b] are net unchanged: each swapped one incident
        // edge for the replacement.
      }
    }
    if (!changed) return false;

    // Compact: relabel alive vertices in ascending id order.
    std::vector<VertexId> newid(n, kInvalidVertex);
    VertexId next = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (vert_alive[v] != 0) newid[v] = next++;
    }
    std::vector<std::vector<VertexId>> new_members(next);
    for (VertexId v = 0; v < n; ++v) {
      if (vert_alive[v] != 0) new_members[newid[v]] = std::move(members_[v]);
    }
    members_ = std::move(new_members);
    std::vector<WEdge> new_edges;
    new_edges.reserve(cur_.edges.size());
    for (EdgeId e = 0; e < cur_.edges.size(); ++e) {
      if (edge_alive[e] == 0) continue;
      const WEdge& ed = cur_.edges[e];
      new_edges.push_back({newid[ed.u], newid[ed.v], ed.w});
    }
    cur_.edges = std::move(new_edges);
    cur_.n = next;
    return true;
  }

  // One batch of certified heavy-edge contractions. All conditions are
  // evaluated against the pass-start snapshot and contracted pairs form a
  // matching (one touch per vertex per pass), which makes the batch as safe
  // as a sequence of single certified contractions (DESIGN.md).
  bool contract_certified() {
    const VertexId n = cur_.n;
    const std::size_t m = cur_.edges.size();
    if (n < 2 || m == 0) return false;

    // Merged CSR sorted by (vertex, neighbor): arcs with equal endpoints sum
    // their weights, so pair weights are true totals even when the peel pass
    // left parallel edges behind.
    std::vector<HalfArc> arcs;
    arcs.reserve(2 * m);
    for (const WEdge& e : cur_.edges) {
      arcs.push_back({e.u, e.v, e.w});
      arcs.push_back({e.v, e.u, e.w});
    }
    psort::stable_sort_keys(pool_, arcs,
                            [](const HalfArc& x, const HalfArc& y) {
                              return arc_key(x) < arc_key(y);
                            });
    std::vector<std::size_t> start(static_cast<std::size_t>(n) + 1, 0);
    std::vector<VertexId> nbr;
    std::vector<Weight> nw;
    nbr.reserve(arcs.size());
    nw.reserve(arcs.size());
    {
      std::size_t i = 0;
      for (VertexId v = 0; v < n; ++v) {
        start[v] = nbr.size();
        while (i < arcs.size() && arcs[i].v == v) {
          const VertexId t = arcs[i].to;
          Weight sum = 0;
          while (i < arcs.size() && arcs[i].v == v && arcs[i].to == t) {
            sum += arcs[i].w;
            ++i;
          }
          nbr.push_back(t);
          nw.push_back(sum);
        }
      }
      start[n] = nbr.size();
    }
    std::vector<Weight> wdeg(n, 0);
    for (VertexId v = 0; v < n; ++v) {
      for (std::size_t i = start[v]; i < start[v + 1]; ++i) wdeg[v] += nw[i];
    }

    // Seed the upper bound with the minimum weighted degree (smallest id on
    // ties) — a genuine singleton cut, so recording it is always safe.
    VertexId vmin = 0;
    for (VertexId v = 1; v < n; ++v) {
      if (wdeg[v] < wdeg[vmin]) vmin = v;
    }
    record_candidate(wdeg[vmin], members_[vmin]);
    const Weight lambda = map_.candidate_weight;

    UnionFind uf(n);
    std::vector<std::uint8_t> touched(n, 0);
    std::uint64_t fired = 0;
    for (VertexId u = 0; u < n; ++u) {
      for (std::size_t i = start[u]; i < start[u + 1] && touched[u] == 0;
           ++i) {
        const VertexId v = nbr[i];
        if (v < u || touched[v] != 0) continue;
        const Weight wuv = nw[i];
        // Rule 1: no cut separating u, v can beat the recorded candidate.
        // Rule 2: the singleton side of u (or v) is no worse merged across
        // (W >= wdeg - W avoids the 2W overflow).
        bool fire = wuv >= lambda || wuv >= wdeg[u] - wuv ||
                    wuv >= wdeg[v] - wuv;
        if (!fire) {
          // Rule 3: W_uv + sum_t min(W_ut, W_vt) edge-disjoint u-v paths —
          // a cut separating u, v must pay for all of them.
          Weight cert = wuv;
          std::size_t iu = start[u];
          std::size_t jv = start[v];
          while (iu < start[u + 1] && jv < start[v + 1] && cert < lambda) {
            const VertexId tu = nbr[iu];
            const VertexId tv = nbr[jv];
            if (tu == v) {
              ++iu;
            } else if (tv == u) {
              ++jv;
            } else if (tu < tv) {
              ++iu;
            } else if (tv < tu) {
              ++jv;
            } else {
              cert += std::min(nw[iu], nw[jv]);
              ++iu;
              ++jv;
            }
          }
          fire = cert >= lambda;
        }
        if (fire) {
          uf.unite(u, v);
          touched[u] = 1;
          touched[v] = 1;
          ++fired;
        }
      }
    }
    if (fired == 0) return false;
    stats_.contracted_certified += fired;

    // Rebuild: relabel union-find roots in ascending id order, splice member
    // lists into their roots, drop edges that became self-loops.
    std::vector<VertexId> newid(n, kInvalidVertex);
    VertexId next = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (uf.find(v) == v) newid[v] = next++;
    }
    std::vector<std::vector<VertexId>> new_members(next);
    for (VertexId v = 0; v < n; ++v) {
      const VertexId r = newid[uf.find(v)];
      auto& dst = new_members[r];
      if (dst.empty()) {
        dst = std::move(members_[v]);
      } else {
        dst.insert(dst.end(), members_[v].begin(), members_[v].end());
      }
    }
    members_ = std::move(new_members);
    std::vector<WEdge> new_edges;
    new_edges.reserve(m);
    for (const WEdge& e : cur_.edges) {
      const VertexId ru = newid[uf.find(e.u)];
      const VertexId rv = newid[uf.find(e.v)];
      if (ru == rv) continue;
      new_edges.push_back({ru, rv, e.w});
    }
    cur_.edges = std::move(new_edges);
    cur_.n = next;
    return true;
  }

  KernelOptions opt_;
  ThreadPool* pool_;
  WGraph cur_;
  std::vector<std::vector<VertexId>> members_;  // per current vertex
  KernelMap map_;
  KernelStats stats_;
};

}  // namespace

MinCutResult KernelMap::candidate_cut() const {
  REPRO_CHECK_MSG(candidate_weight != kInfiniteWeight,
                  "no candidate cut recorded");
  REPRO_DCHECK(!candidate_members.empty() &&
               candidate_members.size() < original_n);
  MinCutResult r;
  r.weight = candidate_weight;
  r.side.assign(original_n, 0);
  for (const VertexId v : candidate_members) {
    REPRO_DCHECK(v < original_n);
    r.side[v] = 1;
  }
  return r;
}

MinCutResult KernelMap::unpack(const MinCutResult& kernel_cut) const {
  if (kernel_cut.weight <= candidate_weight) {
    REPRO_CHECK_MSG(!kernel_cut.side.empty(),
                    "kernel cut has no side to lift");
    MinCutResult r;
    r.weight = kernel_cut.weight;
    r.side.assign(original_n, 0);
    for (VertexId v = 0; v < original_n; ++v) {
      REPRO_DCHECK(kernel_of[v] != kInvalidVertex);
      r.side[v] = kernel_cut.side[kernel_of[v]];
    }
    return r;
  }
  return candidate_cut();
}

MinCutResult KernelResult::resolved_cut() const {
  REPRO_CHECK_MSG(solved(), "kernel is not solved; call unpack instead");
  if (map.candidate_weight == kInfiniteWeight) return {};  // original n < 2
  return map.candidate_cut();
}

KernelResult kernelize(const WGraph& g, const KernelOptions& opt,
                       ThreadPool* pool) {
  KernelResult out;
  out.stats.original_n = g.n;
  out.stats.original_m = g.edges.size();
  out.map.original_n = g.n;
  if (g.n < 2) {
    out.kernel = g;
    out.map.kernel_of.assign(g.n, 0);
    out.stats.kernel_n = g.n;
    out.stats.kernel_m = g.edges.size();
    return out;
  }
  // Connected-component splitting: a disconnected input has an exact zero
  // cut along any component — the kernel is empty and the candidate is the
  // answer. (component_labels uses the smallest vertex id per component, so
  // `label == v` identifies exactly one vertex per component.)
  const auto comp = component_labels(g);
  VertexId num_components = 0;
  for (VertexId v = 0; v < g.n; ++v) num_components += (comp[v] == v) ? 1 : 0;
  out.stats.components = num_components;
  if (num_components > 1) {
    out.map.candidate_weight = 0;
    for (VertexId v = 0; v < g.n; ++v) {
      if (comp[v] == comp[0]) out.map.candidate_members.push_back(v);
    }
    out.map.kernel_of.assign(g.n, kInvalidVertex);
    out.kernel.n = 0;
    out.stats.kernel_n = 0;
    out.stats.kernel_m = 0;
    return out;
  }
  Reducer reducer(g, opt, pool);
  KernelResult res = reducer.run();
  res.stats.components = 1;
  return res;
}

}  // namespace ampccut::kernel
