// Kernelize-then-solve front-ends for the exact drivers. Each reduces the
// input, solves the (smaller) kernel with the wrapped solver, and unpacks
// the certificate through the lineage — exact whenever the wrapped solver
// is. With opt.enabled == false they defer to the plain solver, so call
// sites can thread one KernelOptions knob through unconditionally.
//
// The recursion drivers (mincut_recursive / kcut / AMPC / MPC) get the same
// treatment through ApproxMinCutOptions::kernel rather than wrappers here.
#pragma once

#include <cstdint>

#include "exact/stoer_wagner.h"
#include "kernel/kernel.h"

namespace ampccut::kernel {

MinCutResult stoer_wagner_min_cut_kernelized(
    const WGraph& g, const KernelOptions& opt = enabled_defaults());

// Karger–Stein on the kernel; `trials` and `seed` as in karger_stein. Note
// the kernel changes the contraction trajectory for a given seed — the
// result is still an (exact-whp) min cut, just a possibly different witness.
MinCutResult karger_stein_kernelized(
    const WGraph& g, std::uint32_t trials, std::uint64_t seed,
    const KernelOptions& opt = enabled_defaults());

}  // namespace ampccut::kernel
