// Karger and Karger–Stein randomized contraction baselines.
//
// These are the sequential ancestors of the paper's machinery (Lemma 1) and
// serve as quality/round baselines in the benches: Karger's single run
// succeeds with probability Omega(1/n^2); Karger–Stein's recursive schedule
// boosts one run to Omega(1/log n).
#pragma once

#include <cstdint>

#include "exact/stoer_wagner.h"
#include "graph/graph.h"

namespace ampccut {

// One full random contraction down to 2 supervertices; returns the resulting
// cut. Weighted: edges are picked proportionally to weight.
MinCutResult karger_single_run(const WGraph& g, std::uint64_t seed);

// Best of `trials` independent single runs.
MinCutResult karger_repeated(const WGraph& g, std::uint32_t trials,
                             std::uint64_t seed);

// Karger–Stein: contract to n/sqrt(2), recurse twice, take the better cut.
// `trials` independent instances are run and the best is returned.
MinCutResult karger_stein(const WGraph& g, std::uint32_t trials,
                          std::uint64_t seed);

}  // namespace ampccut
