#include "exact/stoer_wagner.h"

#include <algorithm>

#include "support/check.h"

namespace ampccut {

MinCutResult stoer_wagner_min_cut(const WGraph& g) {
  REPRO_CHECK_MSG(g.n >= 2, "min cut needs at least two vertices");
  const std::size_t n = g.n;
  // Dense weight matrix; parallel edges merge by summation.
  std::vector<std::vector<Weight>> w(n, std::vector<Weight>(n, 0));
  for (const auto& e : g.edges) {
    w[e.u][e.v] += e.w;
    w[e.v][e.u] += e.w;
  }

  // merged[v] = original vertices currently fused into supervertex v.
  std::vector<std::vector<VertexId>> merged(n);
  for (std::size_t v = 0; v < n; ++v) merged[v] = {static_cast<VertexId>(v)};

  std::vector<std::uint8_t> active(n, 1);
  std::size_t active_count = n;

  MinCutResult best;
  best.side.assign(n, 0);

  std::vector<Weight> conn(n);     // connectivity to the growing set A
  std::vector<std::uint8_t> in_a(n);

  while (active_count > 1) {
    // Maximum-adjacency search from an arbitrary active start vertex.
    std::fill(conn.begin(), conn.end(), 0);
    std::fill(in_a.begin(), in_a.end(), 0);
    VertexId prev = kInvalidVertex;
    VertexId last = kInvalidVertex;
    Weight last_conn = 0;
    for (std::size_t step = 0; step < active_count; ++step) {
      VertexId pick = kInvalidVertex;
      Weight pick_conn = 0;
      for (std::size_t v = 0; v < n; ++v) {
        if (!active[v] || in_a[v]) continue;
        if (pick == kInvalidVertex || conn[v] > pick_conn) {
          pick = static_cast<VertexId>(v);
          pick_conn = conn[v];
        }
      }
      in_a[pick] = 1;
      prev = last;
      last = pick;
      last_conn = pick_conn;
      for (std::size_t v = 0; v < n; ++v) {
        if (active[v] && !in_a[v]) conn[v] += w[pick][v];
      }
    }
    // Cut-of-the-phase: the last added supervertex vs the rest.
    if (last_conn < best.weight) {
      best.weight = last_conn;
      std::fill(best.side.begin(), best.side.end(), 0);
      for (VertexId orig : merged[last]) best.side[orig] = 1;
    }
    // Merge `last` into `prev`.
    REPRO_CHECK(prev != kInvalidVertex);
    active[last] = 0;
    --active_count;
    for (std::size_t v = 0; v < n; ++v) {
      if (!active[v] || v == prev) continue;
      w[prev][v] += w[last][v];
      w[v][prev] = w[prev][v];
    }
    merged[prev].insert(merged[prev].end(), merged[last].begin(),
                        merged[last].end());
  }
  return best;
}

}  // namespace ampccut
