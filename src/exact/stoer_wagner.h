// Exact global weighted Min Cut (Stoer–Wagner, 1997).
//
// O(n^3) adjacency-matrix implementation: the exact solver is only used as
// ground truth for graphs up to a few thousand vertices, where clarity beats
// asymptotics. Returns the cut value and one side of an optimal cut.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ampccut {

struct MinCutResult {
  Weight weight = kInfiniteWeight;
  // side[v] == 1 for vertices on the (smaller, by convention of discovery)
  // side of the cut. Empty when the graph has < 2 vertices.
  std::vector<std::uint8_t> side;
};

// Requires n >= 2. Disconnected graphs yield weight 0 with a component as one
// side. Parallel edges are merged internally.
MinCutResult stoer_wagner_min_cut(const WGraph& g);

}  // namespace ampccut
