#include "exact/karger.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>

#include "graph/union_find.h"
#include "support/check.h"
#include "support/psort.h"
#include "support/rng.h"

namespace ampccut {

namespace {

// Contracted multigraph state for the recursive algorithm: vertices carry the
// set of original vertices they represent via a union-find over original ids.
struct ContractState {
  WGraph g;                    // current multigraph (parallel edges merged)
  std::vector<std::vector<VertexId>> members;  // original vertices per node
};

// Contract g down to `target` vertices by repeatedly fusing a random edge
// chosen proportionally to weight (exponential-clock order gives exactly that
// distribution, so we draw clocks once and contract in order).
ContractState contract_to(const ContractState& in, VertexId target, Rng& rng) {
  const WGraph& g = in.g;
  REPRO_CHECK(target >= 2);
  if (g.n <= target) return in;
  std::vector<double> clock(g.edges.size());
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    clock[i] = rng.next_exponential(static_cast<double>(g.edges[i].w));
  }
  std::vector<EdgeId> order(g.edges.size());
  std::iota(order.begin(), order.end(), 0);
  // Stable + ascending ids = deterministic (clock, id) rank even in the
  // measure-zero event of a clock collision.
  psort::stable_sort_keys(
      &ThreadPool::shared(), order,
      // repro-lint: allow(comparator-tiebreak) stable sort over the ascending
      // id vector supplies the (clock, id) tie-break
      [&](EdgeId a, EdgeId b) { return clock[a] < clock[b]; });

  UnionFind uf(g.n);
  VertexId remaining = g.n;
  for (EdgeId id : order) {
    if (remaining == target) break;
    if (uf.unite(g.edges[id].u, g.edges[id].v)) --remaining;
  }
  // Graphs that are disconnected can stall above target; accept whatever
  // component structure remains (the cut value 0 will surface naturally).
  std::vector<VertexId> new_id(g.n, kInvalidVertex);
  ContractState out;
  VertexId next = 0;
  for (VertexId v = 0; v < g.n; ++v) {
    const VertexId r = uf.find(v);
    if (new_id[r] == kInvalidVertex) new_id[r] = next++;
  }
  out.g.n = next;
  out.members.assign(next, {});
  for (VertexId v = 0; v < g.n; ++v) {
    const VertexId nv = new_id[uf.find(v)];
    out.members[nv].insert(out.members[nv].end(), in.members[v].begin(),
                           in.members[v].end());
  }
  // Merge parallel edges with a hash-free sort pass.
  std::vector<WEdge> scratch;
  scratch.reserve(g.edges.size());
  for (const auto& e : g.edges) {
    VertexId a = new_id[uf.find(e.u)];
    VertexId b = new_id[uf.find(e.v)];
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    scratch.push_back({a, b, e.w});
  }
  // Parallel edges with equal (u, v) are summed below — order within a run
  // cannot matter, and the stable sort keeps the run order deterministic.
  psort::stable_sort_keys(&ThreadPool::shared(), scratch,
                          [](const WEdge& x, const WEdge& y) {
                            return std::tie(x.u, x.v) < std::tie(y.u, y.v);
                          });
  for (const auto& e : scratch) {
    if (!out.g.edges.empty() && out.g.edges.back().u == e.u &&
        out.g.edges.back().v == e.v) {
      out.g.edges.back().w += e.w;
    } else {
      out.g.edges.push_back(e);
    }
  }
  return out;
}

MinCutResult cut_from_two(const ContractState& st, VertexId total_n) {
  REPRO_CHECK(st.g.n >= 2);
  MinCutResult r;
  r.weight = 0;
  for (const auto& e : st.g.edges) r.weight += e.w;
  r.side.assign(total_n, 0);
  for (VertexId orig : st.members[0]) r.side[orig] = 1;
  return r;
}

MinCutResult karger_stein_rec(const ContractState& st, VertexId total_n,
                              Rng& rng) {
  const VertexId n = st.g.n;
  if (n <= 6) {
    // Base case: finish the contraction to 2 vertices a few times and keep
    // the best — cheap and keeps the implementation self-contained.
    MinCutResult best;
    for (int rep = 0; rep < 8; ++rep) {
      const ContractState two = contract_to(st, 2, rng);
      if (two.g.n < 2) continue;  // disconnected remainder
      const MinCutResult r = cut_from_two(two, total_n);
      if (r.weight < best.weight) best = r;
    }
    if (best.side.empty()) {
      // Disconnected graph: any whole component is a zero cut.
      best.weight = 0;
      best.side.assign(total_n, 0);
      for (VertexId orig : st.members[0]) best.side[orig] = 1;
    }
    return best;
  }
  const auto target = static_cast<VertexId>(
      std::max<double>(2.0, std::ceil(n / std::sqrt(2.0) + 1)));
  MinCutResult best;
  for (int branch = 0; branch < 2; ++branch) {
    const ContractState sub = contract_to(st, target, rng);
    const MinCutResult r = karger_stein_rec(sub, total_n, rng);
    if (r.weight < best.weight) best = r;
  }
  return best;
}

ContractState initial_state(const WGraph& g) {
  ContractState st;
  st.g = g;
  st.members.assign(g.n, {});
  for (VertexId v = 0; v < g.n; ++v) st.members[v] = {v};
  return st;
}

}  // namespace

MinCutResult karger_single_run(const WGraph& g, std::uint64_t seed) {
  REPRO_CHECK(g.n >= 2);
  Rng rng(seed);
  const ContractState two = contract_to(initial_state(g), 2, rng);
  if (two.g.n < 2) {
    MinCutResult r;
    r.weight = 0;
    r.side.assign(g.n, 0);
    for (VertexId orig : two.members[0]) r.side[orig] = 1;
    return r;
  }
  return cut_from_two(two, g.n);
}

MinCutResult karger_repeated(const WGraph& g, std::uint32_t trials,
                             std::uint64_t seed) {
  MinCutResult best;
  Rng rng(seed);
  for (std::uint32_t t = 0; t < trials; ++t) {
    const MinCutResult r = karger_single_run(g, rng.next_u64());
    if (r.weight < best.weight) best = r;
  }
  return best;
}

MinCutResult karger_stein(const WGraph& g, std::uint32_t trials,
                          std::uint64_t seed) {
  REPRO_CHECK(g.n >= 2);
  MinCutResult best;
  Rng rng(seed);
  for (std::uint32_t t = 0; t < trials; ++t) {
    Rng sub = rng.split(t);
    const MinCutResult r = karger_stein_rec(initial_state(g), g.n, sub);
    if (r.weight < best.weight) best = r;
  }
  return best;
}

}  // namespace ampccut
