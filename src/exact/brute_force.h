// Exhaustive baselines for tiny instances — the final word in tests.
#pragma once

#include <vector>

#include "exact/stoer_wagner.h"
#include "graph/graph.h"

namespace ampccut {

// Min cut by enumerating all 2^(n-1) - 1 proper subsets containing vertex 0's
// complement classes. Requires 2 <= n <= 24.
MinCutResult brute_force_min_cut(const WGraph& g);

struct KCutResult {
  Weight weight = kInfiniteWeight;
  // part[v] in [0, k): the partition class of each vertex.
  std::vector<std::uint32_t> part;
};

// Min k-cut by enumerating assignments V -> [k] where every class is
// non-empty. Requires k <= n and k^n manageable (tests keep n <= 10).
KCutResult brute_force_min_k_cut(const WGraph& g, std::uint32_t k);

// Sum of weights of edges whose endpoints lie in different classes.
Weight k_cut_weight(const WGraph& g, const std::vector<std::uint32_t>& part);

// Smallest weighted singleton cut delta({v}) — handy test oracle.
Weight min_singleton_degree(const WGraph& g);

}  // namespace ampccut
