#include "exact/brute_force.h"

#include <algorithm>

#include "support/check.h"

namespace ampccut {

MinCutResult brute_force_min_cut(const WGraph& g) {
  REPRO_CHECK(g.n >= 2 && g.n <= 24);
  const std::uint32_t n = g.n;
  MinCutResult best;
  best.side.assign(n, 0);
  // Fix vertex n-1 on side 0 to halve the enumeration; every proper cut has a
  // representative with that vertex on side 0.
  const std::uint64_t limit = 1ull << (n - 1);
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    Weight cut = 0;
    for (const auto& e : g.edges) {
      const bool su = (mask >> e.u) & 1ull;
      const bool sv = (mask >> e.v) & 1ull;
      if (su != sv) cut += e.w;
    }
    if (cut < best.weight) {
      best.weight = cut;
      for (std::uint32_t v = 0; v < n; ++v)
        best.side[v] = static_cast<std::uint8_t>((mask >> v) & 1ull);
    }
  }
  return best;
}

Weight k_cut_weight(const WGraph& g, const std::vector<std::uint32_t>& part) {
  REPRO_CHECK(part.size() == g.n);
  Weight total = 0;
  for (const auto& e : g.edges)
    if (part[e.u] != part[e.v]) total += e.w;
  return total;
}

KCutResult brute_force_min_k_cut(const WGraph& g, std::uint32_t k) {
  REPRO_CHECK(k >= 1 && k <= g.n);
  REPRO_CHECK_MSG(g.n <= 12, "brute-force k-cut is exponential; keep n small");
  const std::uint32_t n = g.n;
  KCutResult best;
  std::vector<std::uint32_t> part(n, 0);
  // Enumerate assignments with the canonical-form pruning that class labels
  // appear in first-use order (kills the k! symmetry).
  std::vector<std::uint32_t> stack{0};
  // Simple recursive enumeration via explicit lambda recursion.
  auto rec = [&](auto&& self, std::uint32_t v, std::uint32_t used) -> void {
    if (v == n) {
      if (used != k) return;
      const Weight wgt = k_cut_weight(g, part);
      if (wgt < best.weight) {
        best.weight = wgt;
        best.part = part;
      }
      return;
    }
    // Prune: remaining vertices must be able to open the missing classes.
    if (used + (n - v) < k) return;
    const std::uint32_t open_limit = std::min(used + 1, k);
    for (std::uint32_t c = 0; c < open_limit; ++c) {
      part[v] = c;
      self(self, v + 1, std::max(used, c + 1));
    }
  };
  rec(rec, 0, 0);
  REPRO_CHECK(best.weight != kInfiniteWeight);
  return best;
}

Weight min_singleton_degree(const WGraph& g) {
  const auto deg = g.weighted_degrees();
  Weight best = kInfiniteWeight;
  for (Weight d : deg) best = std::min(best, d);
  return best;
}

}  // namespace ampccut
