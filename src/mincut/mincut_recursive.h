// AMPC-MinCut recursion skeleton (Algorithm 1, Section 2).
//
// The boosted Karger–Stein schedule: an instance that has been contracted by
// a total factor t branches into ceil(x^(1-eps/3)) copies, each with fresh
// random contraction times; each copy's full contraction process is scanned
// for its smallest singleton cut (Lemma 2's witness), then contracted by a
// further factor x and recursed on. x = max(x_min, t^c) with
// c = (eps/3)/(1-eps/3), so t grows doubly exponentially and the recursion
// depth is O(log log n). Instances at or below the local threshold (the
// "fits in one machine's O(n^eps) memory" case, Algorithm 1 line 1) are
// solved exactly by Stoer–Wagner.
//
// Algorithm 1's defining property — all instances of a recursion level run
// in parallel — is realized literally: the driver fans trials and branches
// out as tasks on a ThreadPool (ThreadPool::TaskGroup supports the nested
// submission this recursion shape needs), stores every branch's outcome in a
// per-slot buffer, and reduces the slots sequentially in (trial, branch)
// order. Results — weight, witness side, and RecursionStats — are therefore
// bit-identical to the single-threaded run for every thread count (DESIGN.md
// "Parallel recursion scheduling"). `threads == 1` executes the historical
// depth-first path with zero task machinery.
//
// The skeleton is backend-parameterized: the sequential backend plugs in the
// interval tracker of Section 4; the AMPC/MPC backends plug in trackers that
// run on their runtimes and account rounds. All share this file's schedule,
// so round-complexity comparisons isolate the models, not the recursion.
// Backends must be thread-safe: hooks are invoked concurrently from branch
// tasks (all in-repo backends accumulate their metrics under a mutex or in
// per-call runtimes).
//
// Practical deviation (DESIGN.md): x_min defaults to 4 rather than 2. With
// x = 2 the early levels duplicate whole near-full-size instances (work
// doubles per level — fine on paper where "space" counts vertices, ruinous
// for multigraphs whose edge counts shrink sublinearly). x_min = 4 keeps
// per-level total work geometrically decreasing while preserving the
// doubly-exponential schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "exact/stoer_wagner.h"
#include "graph/graph.h"
#include "kernel/kernel.h"
#include "mincut/contraction.h"
#include "mincut/singleton.h"

namespace ampccut {

class ThreadPool;

// Resolves the `threads` knob shared by the recursion drivers: nullptr means
// the exact sequential path (threads == 1, or a shared pool that could not
// run anything concurrently anyway), otherwise the shared pool (threads ==
// 0) or a dedicated pool handed back through `owned` (threads == N > 1).
ThreadPool* resolve_recursion_pool(std::uint32_t threads,
                                   std::unique_ptr<ThreadPool>& owned);

struct ApproxMinCutOptions {
  double eps = 0.9;                // schedule parameter (paper's epsilon)
  double x_min = 4.0;              // minimum per-level contraction factor
  std::uint32_t max_branch = 8;    // practical cap on copies per level
  VertexId local_threshold = 32;   // solve exactly at or below this size
  std::uint32_t trials = 2;        // independent runs of the whole recursion
  std::uint64_t seed = 1;
  bool use_oracle_tracker = false;  // reference tracker instead of Section 4
  // Recursion parallelism: 0 = the shared pool (hardware concurrency),
  // 1 = the exact historical sequential execution path, N > 1 = a dedicated
  // N-thread pool for this call. Thread count never changes any result.
  std::uint32_t threads = 0;
  // Exact kernelization front-end (src/kernel): when kernel.enabled, the
  // input is reduced before the recursion runs and the kernel-side witness
  // is unpacked through the lineage; a fully reduced input skips the
  // recursion entirely. RecursionStats then describe the run on the KERNEL
  // (a solved kernel reports zero stats). Off by default so existing results
  // stay bit-identical. The AMPC/MPC drivers and the k-cut splitters embed
  // these options, so the knob reaches every backend from here.
  kernel::KernelOptions kernel;
};

struct RecursionStats {
  std::uint32_t depth = 0;            // deepest level reached (root = 0)
  std::uint64_t instances = 0;        // recursive instances processed
  std::uint64_t tracker_calls = 0;
  std::uint64_t local_solves = 0;
  std::uint64_t peak_level_edges = 0;  // max total edges across one level

  friend bool operator==(const RecursionStats&, const RecursionStats&) =
      default;
};

struct ApproxMinCutResult {
  Weight weight = kInfiniteWeight;
  std::vector<std::uint8_t> side;  // witness cut (original vertex ids)
  RecursionStats stats;
};

// Hooks that let the AMPC/MPC backends reuse the recursion skeleton. The
// `level` argument identifies the recursion depth of the call: in the model,
// all instances of one level execute in parallel, so backends account rounds
// per level as the maximum over that level's calls. With a multi-threaded
// driver the hooks of one level (and of independent subtrees) run
// concurrently — implementations must synchronize any shared accumulation
// (commutative reductions like max/sum keep the totals deterministic).
struct MinCutBackend {
  // Smallest singleton cut over the full contraction process of (g, order).
  std::function<SingletonCutResult(const WGraph&, const ContractionOrder&,
                                   std::uint32_t level)>
      track_singleton;
  // Exact min cut of a small instance (fits one machine's memory).
  std::function<MinCutResult(const WGraph&, std::uint32_t level)> solve_local;
  // Called once per branching step with the instances spawned at `level`.
  std::function<void(std::uint32_t level, std::uint64_t instances)> on_level;
};

// Sequential backend: interval (or oracle) tracker + Stoer–Wagner.
MinCutBackend make_sequential_backend(bool use_oracle_tracker);

// Runs the recursion with the given backend. Handles disconnected inputs
// (returns a zero cut along a component). Requires n >= 2.
ApproxMinCutResult approx_min_cut_with_backend(const WGraph& g,
                                               const ApproxMinCutOptions& opt,
                                               const MinCutBackend& backend);

// Convenience: sequential backend per `opt.use_oracle_tracker`.
ApproxMinCutResult approx_min_cut(const WGraph& g,
                                  const ApproxMinCutOptions& opt = {});

}  // namespace ampccut
