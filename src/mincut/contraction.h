// The random contraction process (Section 4.1).
//
// Edges receive unique integer times 1..m; contracting edges in increasing
// time order is Karger's process. For *weighted* contraction (pick an edge
// with probability proportional to its weight) we draw exponential clocks
// Exp(w_e) and rank them — identical in distribution, and ranks satisfy the
// paper's unique-weight requirement (w : E -> [n^3] only needs a total
// order). Only MST edges (w.r.t. the times) change the partition; everything
// downstream (bags, singleton cuts) is a function of the MST + times, exactly
// as the paper argues via Kruskal.
//
// Hot-path note: ranking the clocks already produces the time-sorted edge-id
// permutation, so make_contraction_order stores it alongside the times.
// Every downstream consumer (MSF derivation, contraction, the oracle
// tracker) scans that permutation linearly instead of re-sorting the edge
// list — the clock sort is the only comparison sort in the whole contraction
// pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "support/threadpool.h"

namespace ampccut {

struct ContractionOrder {
  // time[e] in [1, m], all distinct; index parallel to g.edges.
  std::vector<TimeStep> time;
  // Edge ids in increasing time order: time[perm[r]] == r + 1. Filled by
  // make_contraction_order; callers that build orders by hand may leave it
  // empty, in which case consumers fall back to sorting by time.
  std::vector<EdgeId> perm;
};

// Weighted Karger order via exponential clocks (uniform order when all
// weights are equal). The clock ranking runs on `pool` via
// psort::stable_sort_keys — bit-identical for every pool and thread count
// (DESIGN.md "Parallel sort & counting primitives"); tests pass dedicated
// pools to pin that contract.
ContractionOrder make_contraction_order(const WGraph& g, std::uint64_t seed,
                                        ThreadPool* pool = &ThreadPool::shared());

// Kruskal by time. Returns edge ids of the minimum spanning forest, in
// increasing time order. Linear over order.perm when present; sorts only for
// hand-built orders without a permutation.
std::vector<EdgeId> msf_edges_by_time(const WGraph& g,
                                      const ContractionOrder& order);

// Reusable buffers for contract_to_size. One instance per thread of control
// (the recursion driver owns one per branch chain and reuses it across
// levels); never shared concurrently. All buffers are resized on demand and
// keep their capacity across calls, so steady-state contractions allocate
// nothing.
struct ContractionScratch {
  std::vector<VertexId> uf_parent;     // union-find storage
  std::vector<VertexId> uf_size;
  std::vector<WEdge> edges_a;          // radix ping-pong buffers
  std::vector<WEdge> edges_b;
  std::vector<std::uint32_t> counts;   // counting-sort histogram
};

// The graph after running the contraction process until `target` components
// remain (or the process is exhausted, for disconnected inputs). Parallel
// edges are merged; self-loops dropped. `origin[v]` maps each original
// vertex to its supervertex id.
struct ContractedGraph {
  WGraph g;
  std::vector<VertexId> origin;
};

// `scratch` (optional) supplies reusable buffers; results are identical with
// or without it.
ContractedGraph contract_to_size(const WGraph& g, const ContractionOrder& order,
                                 VertexId target,
                                 ContractionScratch* scratch = nullptr);

}  // namespace ampccut
