// The random contraction process (Section 4.1).
//
// Edges receive unique integer times 1..m; contracting edges in increasing
// time order is Karger's process. For *weighted* contraction (pick an edge
// with probability proportional to its weight) we draw exponential clocks
// Exp(w_e) and rank them — identical in distribution, and ranks satisfy the
// paper's unique-weight requirement (w : E -> [n^3] only needs a total
// order). Only MST edges (w.r.t. the times) change the partition; everything
// downstream (bags, singleton cuts) is a function of the MST + times, exactly
// as the paper argues via Kruskal.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ampccut {

struct ContractionOrder {
  // time[e] in [1, m], all distinct; index parallel to g.edges.
  std::vector<TimeStep> time;
};

// Weighted Karger order via exponential clocks (uniform order when all
// weights are equal).
ContractionOrder make_contraction_order(const WGraph& g, std::uint64_t seed);

// Kruskal by time. Returns edge ids of the minimum spanning forest, in
// increasing time order.
std::vector<EdgeId> msf_edges_by_time(const WGraph& g,
                                      const ContractionOrder& order);

// The graph after running the contraction process until `target` components
// remain (or the process is exhausted, for disconnected inputs). Parallel
// edges are merged; self-loops dropped. `origin[v]` maps each original
// vertex to its supervertex id.
struct ContractedGraph {
  WGraph g;
  std::vector<VertexId> origin;
};

ContractedGraph contract_to_size(const WGraph& g, const ContractionOrder& order,
                                 VertexId target);

}  // namespace ampccut
