// APX-SPLIT: greedy (4+eps)-approximate Min k-Cut (Algorithm 4, Section 5).
//
// Repeatedly computes a (2+eps)-approximate min cut inside every current
// component, removes the globally cheapest one, and stops once at least k
// components exist. Theorem 2 bounds the result by (2+eps)(2-2/k) times the
// optimum via the Gomory–Hu cut sequence of Observation 10. The splitter is
// pluggable so the same greedy loop serves the sequential reference, the
// exact Saran–Vazirani baseline (splitter = Stoer–Wagner, (2-2/k)-approx),
// and the AMPC backend.
//
// Components of one greedy pass are independent (Algorithm 4 solves them in
// parallel), so the loop fans splitter calls out on a ThreadPool and reduces
// the candidate cuts in component order. The splitter receives a 1-based
// call sequence number — the count of splitter invocations in deterministic
// (iteration, component) order — so wrappers derive per-call seeds without
// mutable state and every thread count yields bit-identical partitions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "mincut/mincut_recursive.h"

namespace ampccut {

class ThreadPool;

struct ApproxKCutResult {
  Weight weight = 0;
  std::vector<std::uint32_t> part;  // component id per vertex, in [0, >=k)
  std::uint32_t num_parts = 0;
  std::uint32_t iterations = 0;
};

// Splitter contract: given a connected component as a standalone graph
// (n >= 2) and the deterministic call sequence number, return an approximate
// (or exact) min cut with a valid side. May be invoked concurrently — any
// shared accumulation must be synchronized.
using ComponentSplitter =
    std::function<MinCutResult(const WGraph&, std::uint64_t call_seq)>;

// Greedy loop; requires 1 <= k <= g.n. With k == 1 returns the trivial
// partition. Every pass recomputes the cut of every current component and
// removes the cheapest one; `on_iteration` (when provided) fires at the end
// of each pass with the pass index — the AMPC wrapper uses it to account one
// parallel round-group per iteration (it always runs on the calling thread,
// between fan-outs). `pool` (optional) runs each pass's splitter calls as a
// task group; nullptr solves them sequentially. Results are identical either
// way.
ApproxKCutResult apx_split_k_cut(
    const WGraph& g, std::uint32_t k, const ComponentSplitter& splitter,
    const std::function<void(std::uint32_t)>& on_iteration = nullptr,
    ThreadPool* pool = nullptr);

// Convenience wrappers. Parallelism follows opt.threads (see
// ApproxMinCutOptions): the component fan-out uses the resolved pool and the
// per-component recursion shares it (threads == 1 is fully sequential).
ApproxKCutResult apx_split_k_cut_approx(const WGraph& g, std::uint32_t k,
                                        const ApproxMinCutOptions& opt = {});
// The Saran–Vazirani exact-splitter baseline ((2-2/k)-approximate). The
// splitter is Stoer–Wagner behind the kernelization front-end: with
// kopt.enabled each component is reduced before being solved (the default
// options leave the front-end off, preserving the historical behavior).
ApproxKCutResult apx_split_k_cut_exact(
    const WGraph& g, std::uint32_t k,
    const kernel::KernelOptions& kopt = {});

}  // namespace ampccut
