#include "mincut/contraction.h"

#include <algorithm>
#include <numeric>

#include "support/check.h"
#include "support/psort.h"
#include "support/rng.h"

namespace ampccut {

ContractionOrder make_contraction_order(const WGraph& g, std::uint64_t seed,
                                        ThreadPool* pool) {
  Rng rng(seed);
  const std::size_t m = g.edges.size();
  std::vector<double> clock(m);
  for (std::size_t i = 0; i < m; ++i) {
    clock[i] = rng.next_exponential(static_cast<double>(g.edges[i].w));
  }
  std::vector<EdgeId> idx(m);
  std::iota(idx.begin(), idx.end(), 0);
  // Rank by (clock, id): clocks are continuous so ties are measure-zero, but
  // the id tie-break is guaranteed anyway — the sort is stable and idx starts
  // ascending, so equal clocks keep id order at every thread count.
  // repro-lint: allow(comparator-tiebreak) stable sort over the ascending
  // idx vector supplies the (clock, id) tie-break
  psort::stable_sort_keys(pool, idx.data(), m, [&](EdgeId a, EdgeId b) {
    return clock[a] < clock[b];
  });
  ContractionOrder order;
  order.time.assign(m, 0);
  for (std::size_t r = 0; r < m; ++r) {
    order.time[idx[r]] = static_cast<TimeStep>(r + 1);
  }
  order.perm = std::move(idx);  // the sort's output IS the time order
  return order;
}

namespace {

// Minimal union-find over caller-provided arrays (union by size, path
// halving — identical policy to graph/union_find.h so partitions, and hence
// contracted graphs, match the historical output exactly).
struct FlatUnionFind {
  VertexId* parent;
  VertexId* size;

  VertexId find(VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }

  bool unite(VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size[a] < size[b]) std::swap(a, b);
    parent[b] = a;
    size[a] += size[b];
    return true;
  }
};

}  // namespace

std::vector<EdgeId> msf_edges_by_time(const WGraph& g,
                                      const ContractionOrder& order) {
  REPRO_CHECK(order.time.size() == g.edges.size());
  const EdgeId* scan;
  std::vector<EdgeId> idx;
  if (order.perm.size() == order.time.size()) {
    scan = order.perm.data();  // already time-sorted: no second sort
  } else {
    idx.resize(g.edges.size());
    std::iota(idx.begin(), idx.end(), 0);
    // Stable + ascending ids = deterministic (time, id) even when a
    // hand-built order reuses a time.
    psort::stable_sort_keys(&ThreadPool::shared(), idx,
                            // repro-lint: allow(comparator-tiebreak) stable
                            // sort + ascending idx give the (time, id) order
                            [&](EdgeId a, EdgeId b) {
                              return order.time[a] < order.time[b];
                            });
    scan = idx.data();
  }
  std::vector<VertexId> parent(g.n), size(g.n, 1);
  std::iota(parent.begin(), parent.end(), 0);
  FlatUnionFind uf{parent.data(), size.data()};
  std::vector<EdgeId> tree;
  tree.reserve(g.n > 0 ? g.n - 1 : 0);
  for (std::size_t r = 0; r < g.edges.size(); ++r) {
    const EdgeId e = scan[r];
    if (uf.unite(g.edges[e].u, g.edges[e].v)) tree.push_back(e);
  }
  return tree;
}

ContractedGraph contract_to_size(const WGraph& g, const ContractionOrder& order,
                                 VertexId target, ContractionScratch* scratch) {
  REPRO_CHECK(target >= 1);
  REPRO_CHECK(order.time.size() == g.edges.size());
  ContractionScratch local;
  ContractionScratch& s = scratch != nullptr ? *scratch : local;

  s.uf_parent.resize(g.n);
  s.uf_size.assign(g.n, 1);
  std::iota(s.uf_parent.begin(), s.uf_parent.end(), 0);
  FlatUnionFind uf{s.uf_parent.data(), s.uf_size.data()};

  if (g.n > target) {
    // Run the process directly: the successful unions in time order are
    // exactly the MSF edges, so stopping after n - target of them yields the
    // same partition as materializing the forest first.
    VertexId remaining = g.n;
    if (order.perm.size() == order.time.size()) {
      for (const EdgeId e : order.perm) {
        if (uf.unite(g.edges[e].u, g.edges[e].v) && --remaining == target) {
          break;
        }
      }
    } else {
      for (const EdgeId e : msf_edges_by_time(g, order)) {
        if (uf.unite(g.edges[e].u, g.edges[e].v) && --remaining == target) {
          break;
        }
      }
    }
  }

  ContractedGraph out;
  out.origin.assign(g.n, kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < g.n; ++v) {
    const VertexId r = uf.find(v);
    if (out.origin[r] == kInvalidVertex) out.origin[r] = next++;
  }
  for (VertexId v = 0; v < g.n; ++v) out.origin[v] = out.origin[uf.find(v)];
  out.g.n = next;

  // Merge parallel edges by canonical endpoint pair. Two stable counting
  // passes (by v, then by u) leave the survivors in ascending (u, v) order —
  // the same order the old comparison sort produced — and the duplicate-run
  // summation is order-independent, so the output graph is bit-identical.
  s.edges_a.clear();
  for (const auto& e : g.edges) {
    VertexId a = out.origin[e.u];
    VertexId b = out.origin[e.v];
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    s.edges_a.push_back({a, b, e.w});
  }
  const std::size_t m = s.edges_a.size();
  s.edges_b.resize(m);
  for (const bool by_u : {false, true}) {
    s.counts.assign(next + 1, 0);
    for (const auto& e : s.edges_a) ++s.counts[(by_u ? e.u : e.v) + 1];
    for (VertexId k = 0; k < next; ++k) s.counts[k + 1] += s.counts[k];
    for (const auto& e : s.edges_a) {
      s.edges_b[s.counts[by_u ? e.u : e.v]++] = e;
    }
    s.edges_a.swap(s.edges_b);
  }
  out.g.edges.reserve(m);
  for (const auto& e : s.edges_a) {
    if (!out.g.edges.empty() && out.g.edges.back().u == e.u &&
        out.g.edges.back().v == e.v) {
      out.g.edges.back().w += e.w;
    } else {
      out.g.edges.push_back(e);
    }
  }
  return out;
}

}  // namespace ampccut
