#include "mincut/contraction.h"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "graph/union_find.h"
#include "support/check.h"
#include "support/rng.h"

namespace ampccut {

ContractionOrder make_contraction_order(const WGraph& g, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t m = g.edges.size();
  std::vector<double> clock(m);
  for (std::size_t i = 0; i < m; ++i) {
    clock[i] = rng.next_exponential(static_cast<double>(g.edges[i].w));
  }
  std::vector<EdgeId> idx(m);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](EdgeId a, EdgeId b) {
    // Clocks are continuous so ties are measure-zero, but break them
    // deterministically anyway.
    return clock[a] != clock[b] ? clock[a] < clock[b] : a < b;
  });
  ContractionOrder order;
  order.time.assign(m, 0);
  for (std::size_t r = 0; r < m; ++r) {
    order.time[idx[r]] = static_cast<TimeStep>(r + 1);
  }
  return order;
}

std::vector<EdgeId> msf_edges_by_time(const WGraph& g,
                                      const ContractionOrder& order) {
  REPRO_CHECK(order.time.size() == g.edges.size());
  std::vector<EdgeId> idx(g.edges.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](EdgeId a, EdgeId b) {
    return order.time[a] < order.time[b];
  });
  UnionFind uf(g.n);
  std::vector<EdgeId> tree;
  tree.reserve(g.n > 0 ? g.n - 1 : 0);
  for (const EdgeId e : idx) {
    if (uf.unite(g.edges[e].u, g.edges[e].v)) tree.push_back(e);
  }
  return tree;
}

ContractedGraph contract_to_size(const WGraph& g, const ContractionOrder& order,
                                 VertexId target) {
  REPRO_CHECK(target >= 1);
  UnionFind uf(g.n);
  if (g.n > target) {
    const auto tree = msf_edges_by_time(g, order);
    VertexId remaining = g.n;
    for (const EdgeId e : tree) {
      if (remaining == target) break;
      if (uf.unite(g.edges[e].u, g.edges[e].v)) --remaining;
    }
  }
  ContractedGraph out;
  out.origin.assign(g.n, kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < g.n; ++v) {
    const VertexId r = uf.find(v);
    if (out.origin[r] == kInvalidVertex) out.origin[r] = next++;
  }
  for (VertexId v = 0; v < g.n; ++v) out.origin[v] = out.origin[uf.find(v)];
  out.g.n = next;
  // Merge parallel edges: bucket by canonical endpoint pair via sorting.
  std::vector<WEdge> scratch;
  scratch.reserve(g.edges.size());
  for (const auto& e : g.edges) {
    VertexId a = out.origin[e.u];
    VertexId b = out.origin[e.v];
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    scratch.push_back({a, b, e.w});
  }
  std::sort(scratch.begin(), scratch.end(), [](const WEdge& x, const WEdge& y) {
    return std::tie(x.u, x.v) < std::tie(y.u, y.v);
  });
  for (const auto& e : scratch) {
    if (!out.g.edges.empty() && out.g.edges.back().u == e.u &&
        out.g.edges.back().v == e.v) {
      out.g.edges.back().w += e.w;
    } else {
      out.g.edges.push_back(e);
    }
  }
  return out;
}

}  // namespace ampccut
