#include "mincut/mincut_recursive.h"

#include <algorithm>
#include <cmath>

#include "exact/stoer_wagner.h"
#include "support/check.h"
#include "support/rng.h"

namespace ampccut {

namespace {

struct Frame {
  WGraph g;
  // origin-to-here composition is applied lazily on the way back up: each
  // frame only remembers how ITS vertices map into the child (origin arrays
  // from contract_to_size), and lifts the winning child's side through it.
};

struct InstanceResult {
  Weight weight = kInfiniteWeight;
  std::vector<std::uint8_t> side;  // in the instance's own vertex ids
};

class Driver {
 public:
  Driver(const ApproxMinCutOptions& opt, const MinCutBackend& backend)
      : opt_(opt), backend_(backend) {
    c_exp_ = (opt.eps / 3.0) / (1.0 - opt.eps / 3.0);
  }

  InstanceResult run(const WGraph& g, double t_factor, std::uint32_t level,
                     Rng rng) {
    ++stats_.instances;
    stats_.depth = std::max(stats_.depth, level);
    if (g.n <= opt_.local_threshold) {
      ++stats_.local_solves;
      if (g.n < 2) return {};  // nothing to cut
      const MinCutResult r = backend_.solve_local(g, level);
      return {r.weight, r.side};
    }
    const double x = std::max(opt_.x_min, std::pow(t_factor, c_exp_));
    const auto branches = static_cast<std::uint32_t>(std::clamp<double>(
        std::ceil(std::pow(x, 1.0 - opt_.eps / 3.0)), 2.0,
        static_cast<double>(opt_.max_branch)));
    const auto target = static_cast<VertexId>(std::max<double>(
        opt_.local_threshold, std::ceil(static_cast<double>(g.n) / x)));
    backend_.on_level(level, branches);

    InstanceResult best;
    std::uint64_t level_edges = 0;
    for (std::uint32_t b = 0; b < branches; ++b) {
      Rng branch_rng = rng.split(b);
      const ContractionOrder order =
          make_contraction_order(g, branch_rng.next_u64());
      // Lemma 2 witness: the best singleton cut anywhere in this copy's full
      // contraction process.
      ++stats_.tracker_calls;
      const SingletonCutResult s = backend_.track_singleton(g, order, level);
      if (s.weight < best.weight) {
        best.weight = s.weight;
        best.side = reconstruct_bag(g, order, s.rep, s.time);
      }
      // Contract this copy and recurse (Algorithm 1 lines 6-7).
      ContractedGraph c = contract_to_size(g, order, target);
      REPRO_CHECK_MSG(c.g.n < g.n, "contraction made no progress");
      level_edges += c.g.edges.size();
      const InstanceResult sub =
          run(c.g, t_factor * x, level + 1, branch_rng.split(0x5eedULL));
      if (sub.weight < best.weight) {
        best.weight = sub.weight;
        // Lift the child's side through this contraction's origin map.
        best.side.assign(g.n, 0);
        for (VertexId v = 0; v < g.n; ++v) {
          best.side[v] = sub.side[c.origin[v]];
        }
      }
    }
    stats_.peak_level_edges = std::max(stats_.peak_level_edges, level_edges);
    return best;
  }

  RecursionStats stats_;

 private:
  const ApproxMinCutOptions& opt_;
  const MinCutBackend& backend_;
  double c_exp_;
};

}  // namespace

MinCutBackend make_sequential_backend(bool use_oracle_tracker) {
  MinCutBackend b;
  if (use_oracle_tracker) {
    b.track_singleton = [](const WGraph& g, const ContractionOrder& o,
                           std::uint32_t) {
      return min_singleton_cut_oracle(g, o);
    };
  } else {
    b.track_singleton = [](const WGraph& g, const ContractionOrder& o,
                           std::uint32_t) {
      return min_singleton_cut_interval(g, o);
    };
  }
  b.solve_local = [](const WGraph& g, std::uint32_t) {
    return stoer_wagner_min_cut(g);
  };
  b.on_level = [](std::uint32_t, std::uint64_t) {};
  return b;
}

ApproxMinCutResult approx_min_cut_with_backend(const WGraph& g,
                                               const ApproxMinCutOptions& opt,
                                               const MinCutBackend& backend) {
  REPRO_CHECK(g.n >= 2);
  REPRO_CHECK(opt.eps > 0.0 && opt.eps < 3.0);
  ApproxMinCutResult out;
  // Disconnected graphs have a zero cut along any component; the contraction
  // machinery assumes connectivity, so short-circuit here (the same guard the
  // AMPC driver applies with its O(1)-round connectivity primitive).
  const auto comp = component_labels(g);
  if (std::count(comp.begin(), comp.end(), comp[0]) !=
      static_cast<std::ptrdiff_t>(g.n)) {
    out.weight = 0;
    out.side.assign(g.n, 0);
    for (VertexId v = 0; v < g.n; ++v) out.side[v] = (comp[v] == comp[0]);
    return out;
  }

  Rng rng(opt.seed);
  Driver driver(opt, backend);
  InstanceResult best;
  for (std::uint32_t trial = 0; trial < std::max(1u, opt.trials); ++trial) {
    const InstanceResult r = driver.run(g, 1.0, 0, rng.split(trial));
    if (r.weight < best.weight) best = r;
  }
  REPRO_CHECK(best.weight != kInfiniteWeight);
  out.weight = best.weight;
  out.side = std::move(best.side);
  out.stats = driver.stats_;
  return out;
}

ApproxMinCutResult approx_min_cut(const WGraph& g,
                                  const ApproxMinCutOptions& opt) {
  return approx_min_cut_with_backend(
      g, opt, make_sequential_backend(opt.use_oracle_tracker));
}

}  // namespace ampccut
