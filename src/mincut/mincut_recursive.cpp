#include "mincut/mincut_recursive.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "exact/stoer_wagner.h"
#include "support/check.h"
#include "support/rng.h"
#include "support/threadpool.h"

namespace ampccut {

namespace {

struct InstanceResult {
  Weight weight = kInfiniteWeight;
  std::vector<std::uint8_t> side;  // in the instance's own vertex ids
};

// Stats shared across concurrent instance tasks. Every field is a
// commutative reduction (count or max), so the totals are independent of
// task interleaving and match the depth-first accumulation bit for bit.
struct SharedStats {
  std::atomic<std::uint32_t> depth{0};
  std::atomic<std::uint64_t> instances{0};
  std::atomic<std::uint64_t> tracker_calls{0};
  std::atomic<std::uint64_t> local_solves{0};
  std::atomic<std::uint64_t> peak_level_edges{0};

  template <class T>
  static void fetch_max(std::atomic<T>& slot, T value) {
    T seen = slot.load(std::memory_order_relaxed);
    while (seen < value && !slot.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] RecursionStats snapshot() const {
    RecursionStats s;
    s.depth = depth.load();
    s.instances = instances.load();
    s.tracker_calls = tracker_calls.load();
    s.local_solves = local_solves.load();
    s.peak_level_edges = peak_level_edges.load();
    return s;
  }
};

// One branch's complete outcome, parked in its slot until the deterministic
// reduce. Keeping the contraction order and origin map around lets the
// reduce reconstruct witness sides lazily — only for branches that actually
// improve the running best, exactly as the sequential loop did.
struct BranchSlot {
  SingletonCutResult s;
  ContractionOrder order;
  std::vector<VertexId> origin;
  std::uint64_t child_edges = 0;
  InstanceResult sub;
};

class Driver {
 public:
  Driver(const ApproxMinCutOptions& opt, const MinCutBackend& backend,
         ThreadPool* pool)
      : opt_(opt), backend_(backend), pool_(pool) {
    c_exp_ = (opt.eps / 3.0) / (1.0 - opt.eps / 3.0);
  }

  // `scratch` is the caller-owned contraction arena for this chain of
  // sequential control: the sequential driver threads one arena through the
  // whole DFS, the parallel driver gives each branch task its own and passes
  // it down that task's subtree.
  InstanceResult run(const WGraph& g, double t_factor, std::uint32_t level,
                     Rng rng, ContractionScratch& scratch) {
    stats_.instances.fetch_add(1, std::memory_order_relaxed);
    SharedStats::fetch_max(stats_.depth, level);
    if (g.n <= opt_.local_threshold) {
      stats_.local_solves.fetch_add(1, std::memory_order_relaxed);
      if (g.n < 2) return {};  // nothing to cut
      const MinCutResult r = backend_.solve_local(g, level);
      return {r.weight, r.side};
    }
    const double x = std::max(opt_.x_min, std::pow(t_factor, c_exp_));
    const auto branches = static_cast<std::uint32_t>(std::clamp<double>(
        std::ceil(std::pow(x, 1.0 - opt_.eps / 3.0)), 2.0,
        static_cast<double>(opt_.max_branch)));
    const auto target = static_cast<VertexId>(std::max<double>(
        opt_.local_threshold, std::ceil(static_cast<double>(g.n) / x)));
    backend_.on_level(level, branches);
    return pool_ != nullptr
               ? run_branches_parallel(g, t_factor, level, rng, x, branches,
                                       target)
               : run_branches_sequential(g, t_factor, level, rng, x, branches,
                                         target, scratch);
  }

  SharedStats stats_;

 private:
  // The historical depth-first path (threads == 1): branch results are
  // folded into `best` as they are produced.
  InstanceResult run_branches_sequential(const WGraph& g, double t_factor,
                                         std::uint32_t level, Rng rng,
                                         double x, std::uint32_t branches,
                                         VertexId target,
                                         ContractionScratch& scratch) {
    InstanceResult best;
    std::uint64_t level_edges = 0;
    for (std::uint32_t b = 0; b < branches; ++b) {
      Rng branch_rng = rng.split(b);
      const ContractionOrder order =
          make_contraction_order(g, branch_rng.next_u64());
      // Lemma 2 witness: the best singleton cut anywhere in this copy's full
      // contraction process.
      stats_.tracker_calls.fetch_add(1, std::memory_order_relaxed);
      const SingletonCutResult s = backend_.track_singleton(g, order, level);
      if (s.weight < best.weight) {
        best.weight = s.weight;
        best.side = reconstruct_bag(g, order, s.rep, s.time);
      }
      // Contract this copy and recurse (Algorithm 1 lines 6-7).
      ContractedGraph c = contract_to_size(g, order, target, &scratch);
      REPRO_CHECK_MSG(c.g.n < g.n, "contraction made no progress");
      level_edges += c.g.edges.size();
      const InstanceResult sub = run(c.g, t_factor * x, level + 1,
                                     branch_rng.split(0x5eedULL), scratch);
      if (sub.weight < best.weight) {
        best.weight = sub.weight;
        // Lift the child's side through this contraction's origin map.
        best.side.assign(g.n, 0);
        for (VertexId v = 0; v < g.n; ++v) {
          best.side[v] = sub.side[c.origin[v]];
        }
      }
    }
    SharedStats::fetch_max(stats_.peak_level_edges, level_edges);
    return best;
  }

  // Task-DAG path: all branches of this instance fan out as pool tasks (the
  // recursion inside each branch fans out further), park their outcomes in
  // per-branch slots, and the slots reduce sequentially in branch order —
  // the same fold, same tie-breaks, same reconstructions as the depth-first
  // loop, so the result is bit-identical for every thread count.
  InstanceResult run_branches_parallel(const WGraph& g, double t_factor,
                                       std::uint32_t level, Rng rng, double x,
                                       std::uint32_t branches,
                                       VertexId target) {
    std::vector<BranchSlot> slots(branches);
    ThreadPool::TaskGroup group(*pool_);
    for (std::uint32_t b = 0; b < branches; ++b) {
      group.run([this, &g, &slots, rng, t_factor, level, x, target, b] {
        BranchSlot& slot = slots[b];
        Rng branch_rng = rng.split(b);
        slot.order = make_contraction_order(g, branch_rng.next_u64());
        stats_.tracker_calls.fetch_add(1, std::memory_order_relaxed);
        slot.s = backend_.track_singleton(g, slot.order, level);
        ContractionScratch scratch;
        ContractedGraph c = contract_to_size(g, slot.order, target, &scratch);
        REPRO_CHECK_MSG(c.g.n < g.n, "contraction made no progress");
        slot.child_edges = c.g.edges.size();
        slot.origin = std::move(c.origin);
        slot.sub = run(c.g, t_factor * x, level + 1,
                       branch_rng.split(0x5eedULL), scratch);
      });
    }
    group.wait();

    InstanceResult best;
    std::uint64_t level_edges = 0;
    for (std::uint32_t b = 0; b < branches; ++b) {
      BranchSlot& slot = slots[b];
      if (slot.s.weight < best.weight) {
        best.weight = slot.s.weight;
        best.side = reconstruct_bag(g, slot.order, slot.s.rep, slot.s.time);
      }
      level_edges += slot.child_edges;
      if (slot.sub.weight < best.weight) {
        best.weight = slot.sub.weight;
        best.side.assign(g.n, 0);
        for (VertexId v = 0; v < g.n; ++v) {
          best.side[v] = slot.sub.side[slot.origin[v]];
        }
      }
    }
    SharedStats::fetch_max(stats_.peak_level_edges, level_edges);
    return best;
  }

  const ApproxMinCutOptions& opt_;
  const MinCutBackend& backend_;
  ThreadPool* pool_;  // nullptr: sequential depth-first execution
  double c_exp_;
};

}  // namespace

ThreadPool* resolve_recursion_pool(std::uint32_t threads,
                                   std::unique_ptr<ThreadPool>& owned) {
  if (threads == 1) return nullptr;
  if (threads == 0 || threads == ThreadPool::shared().num_threads()) {
    ThreadPool& pool = ThreadPool::shared();
    return pool.num_threads() > 1 ? &pool : nullptr;
  }
  owned = std::make_unique<ThreadPool>(threads);
  return owned.get();
}

MinCutBackend make_sequential_backend(bool use_oracle_tracker) {
  MinCutBackend b;
  if (use_oracle_tracker) {
    b.track_singleton = [](const WGraph& g, const ContractionOrder& o,
                           std::uint32_t) {
      return min_singleton_cut_oracle(g, o);
    };
  } else {
    b.track_singleton = [](const WGraph& g, const ContractionOrder& o,
                           std::uint32_t) {
      return min_singleton_cut_interval(g, o);
    };
  }
  b.solve_local = [](const WGraph& g, std::uint32_t) {
    return stoer_wagner_min_cut(g);
  };
  b.on_level = [](std::uint32_t, std::uint64_t) {};
  return b;
}

ApproxMinCutResult approx_min_cut_with_backend(const WGraph& g,
                                               const ApproxMinCutOptions& opt,
                                               const MinCutBackend& backend) {
  REPRO_CHECK(g.n >= 2);
  REPRO_CHECK(opt.eps > 0.0 && opt.eps < 3.0);
  ApproxMinCutResult out;
  // Disconnected graphs have a zero cut along any component; the contraction
  // machinery assumes connectivity, so short-circuit here (the same guard the
  // AMPC driver applies with its O(1)-round connectivity primitive).
  const auto comp = component_labels(g);
  if (std::count(comp.begin(), comp.end(), comp[0]) !=
      static_cast<std::ptrdiff_t>(g.n)) {
    out.weight = 0;
    out.side.assign(g.n, 0);
    for (VertexId v = 0; v < g.n; ++v) out.side[v] = (comp[v] == comp[0]);
    return out;
  }

  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = resolve_recursion_pool(opt.threads, owned);

  // Exact kernelization front-end: reduce first, recurse on the kernel,
  // unpack the witness through the lineage afterwards. The reduction runs
  // its sorts on this call's resolved pool, so the kernel — like the
  // recursion — is bit-identical at every thread count.
  kernel::KernelResult kr;
  if (opt.kernel.enabled) {
    kr = kernel::kernelize(g, opt.kernel, pool);
    if (kr.solved()) {
      // The rules resolved the instance outright; the candidate is exact.
      const MinCutResult r = kr.resolved_cut();
      REPRO_CHECK(r.weight != kInfiniteWeight);
      out.weight = r.weight;
      out.side = r.side;
      return out;
    }
  }
  const WGraph& work = opt.kernel.enabled ? kr.kernel : g;

  Rng rng(opt.seed);
  Driver driver(opt, backend, pool);
  const std::uint32_t trials = std::max(1u, opt.trials);
  InstanceResult best;
  if (pool != nullptr && trials > 1) {
    // Trials are the outermost fan-out; reduce in trial order.
    std::vector<InstanceResult> results(trials);
    ThreadPool::TaskGroup group(*pool);
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      group.run([&driver, &work, &results, &rng, trial] {
        ContractionScratch scratch;
        results[trial] = driver.run(work, 1.0, 0, rng.split(trial), scratch);
      });
    }
    group.wait();
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      if (results[trial].weight < best.weight) {
        best = std::move(results[trial]);
      }
    }
  } else {
    ContractionScratch scratch;
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      const InstanceResult r =
          driver.run(work, 1.0, 0, rng.split(trial), scratch);
      if (r.weight < best.weight) best = r;
    }
  }
  REPRO_CHECK(best.weight != kInfiniteWeight);
  if (opt.kernel.enabled) {
    const MinCutResult lifted =
        kr.map.unpack({best.weight, std::move(best.side)});
    out.weight = lifted.weight;
    out.side = lifted.side;
  } else {
    out.weight = best.weight;
    out.side = std::move(best.side);
  }
  out.stats = driver.stats_.snapshot();
  return out;
}

ApproxMinCutResult approx_min_cut(const WGraph& g,
                                  const ApproxMinCutOptions& opt) {
  return approx_min_cut_with_backend(
      g, opt, make_sequential_backend(opt.use_oracle_tracker));
}

}  // namespace ampccut
