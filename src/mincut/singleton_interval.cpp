// The paper's singleton-cut tracker (Sections 3 and 4), sequential driver.
//
// Pipeline per Lemma 9 / Algorithm 3:
//   1. MSF by contraction time (the only topology-changing edges).
//   2. Generalized low-depth decomposition of the MST (Algorithm 2).
//   3. For each level i (independently — here: thread-pool parallel):
//      components of T_i, the unique label-i leader per component
//      (Definition 1), ldr_time via the <= 2 boundary edges (Lemmas 10, 11),
//      per-edge time intervals (Lemma 12/13), and the minimum weighted
//      interval coverage over [0, ldr_time] via an endpoint sweep (Lemma 14,
//      the prefix-sum reformulation of Theorem 5).
// Joining times use the path *maximum* (DESIGN.md deviation #3).
#include <algorithm>
#include <atomic>
#include <mutex>

#include "graph/union_find.h"
#include "mincut/singleton.h"
#include "support/check.h"
#include "support/psort.h"
#include "support/threadpool.h"
#include "tree/low_depth.h"

namespace ampccut {

namespace {

struct LevelBest {
  Weight weight = kInfiniteWeight;
  VertexId rep = kInvalidVertex;
  TimeStep time = 0;
  std::uint64_t intervals = 0;
  std::uint64_t alive_vertices = 0;
  std::uint32_t max_boundary = 0;
  std::uint64_t words = 0;
};

struct Event {
  VertexId leader;
  TimeStep t;
  std::int64_t delta;  // +w when an interval opens, -w one past its close
};

// Minimum coverage of weighted intervals (already clipped to [0, cap]) over
// integer points [0, cap], given the leader's events pre-sorted by time.
// Coverage at 0 equals the leader's weighted degree.
Weight min_coverage_sorted(const Event* events, std::size_t count,
                           TimeStep cap, TimeStep* argmin) {
  std::int64_t cur = 0;
  Weight best = kInfiniteWeight;
  TimeStep best_t = 0;
  std::size_t i = 0;
  // Apply batches of events sharing a timestamp, then record the plateau
  // value. All opens are at t <= cap; closes beyond cap cannot affect [0,cap].
  while (i < count && events[i].t <= cap) {
    const TimeStep t = events[i].t;
    while (i < count && events[i].t == t) {
      cur += events[i].delta;
      ++i;
    }
    REPRO_CHECK_MSG(cur >= 0, "interval coverage went negative");
    if (static_cast<Weight>(cur) < best) {
      best = static_cast<Weight>(cur);
      best_t = t;
    }
  }
  if (argmin != nullptr) *argmin = best_t;
  return best;
}

}  // namespace

SingletonCutResult min_singleton_cut_interval(const WGraph& g,
                                              const ContractionOrder& order,
                                              IntervalTrackerStats* stats,
                                              bool parallel) {
  REPRO_CHECK(g.n >= 2);
  REPRO_CHECK(order.time.size() == g.edges.size());
  REPRO_CHECK_MSG(is_connected(g),
                  "interval tracker requires a connected graph "
                  "(the recursion driver handles disconnected inputs)");

  // 1. MST of the contraction order.
  const std::vector<EdgeId> tree_ids = msf_edges_by_time(g, order);
  REPRO_CHECK(tree_ids.size() + 1 == g.n);
  std::vector<WEdge> tree_edges;
  std::vector<TimeStep> tree_times;
  tree_edges.reserve(tree_ids.size());
  tree_times.reserve(tree_ids.size());
  TimeStep t_full = 0;  // time the graph becomes fully contracted
  for (const EdgeId e : tree_ids) {
    tree_edges.push_back(g.edges[e]);
    tree_times.push_back(order.time[e]);
    t_full = std::max(t_full, order.time[e]);
  }

  // 2. Decomposition of the MST.
  const RootedTree rt = build_rooted_tree(g.n, tree_edges, tree_times, 0);
  const HeavyLight hl = build_heavy_light(rt);
  const PathMax pm(rt, hl);
  const LowDepthDecomposition decomp = build_low_depth_decomposition(rt, hl);

  // 3. Levels in parallel.
  const std::uint32_t h = decomp.height;
  std::vector<LevelBest> per_level(h + 1);

  auto run_level = [&](std::uint32_t i) {
    LevelBest& out = per_level[i];
    if (decomp.levels[i].empty()) return;

    // Components of T_i = {v : label >= i} over tree edges.
    UnionFind uf(g.n);
    for (std::size_t k = 0; k < tree_edges.size(); ++k) {
      const auto& e = tree_edges[k];
      if (decomp.label[e.u] >= i && decomp.label[e.v] >= i) uf.unite(e.u, e.v);
    }
    // Unique leader per component (Definition 1). Dense map root -> leader.
    std::vector<VertexId> leader_of_root(g.n, kInvalidVertex);
    for (const VertexId v : decomp.levels[i]) {
      const VertexId r = uf.find(v);
      REPRO_CHECK_MSG(leader_of_root[r] == kInvalidVertex,
                      "Definition 1 violated: two leaders in one component");
      leader_of_root[r] = v;
    }
    for (VertexId v = 0; v < g.n; ++v) {
      if (decomp.label[v] >= i) ++out.alive_vertices;
    }

    // Boundary tree edges (exactly one endpoint alive) per component;
    // Lemma 10 promises at most two per component.
    struct Boundary {
      VertexId inside = kInvalidVertex;
      TimeStep time = 0;
    };
    std::vector<std::vector<Boundary>> boundary(g.n);
    for (std::size_t k = 0; k < tree_edges.size(); ++k) {
      const auto& e = tree_edges[k];
      const bool ui = decomp.label[e.u] >= i;
      const bool vi = decomp.label[e.v] >= i;
      if (ui == vi) continue;
      const VertexId inside = ui ? e.u : e.v;
      boundary[uf.find(inside)].push_back({inside, tree_times[k]});
    }

    // ldr_time per leader (Lemma 11): the bag absorbs a lower-label vertex
    // through a boundary edge at max(pathmax(leader, inside), edge time);
    // the leader reigns strictly before the earliest absorption. Leaderless
    // components are owned by other levels.
    std::vector<TimeStep> ldr(g.n, 0);  // indexed by leader vertex
    for (const VertexId v : decomp.levels[i]) {
      const VertexId r = uf.find(v);
      const auto& bnd = boundary[r];
      out.max_boundary =
          std::max(out.max_boundary, static_cast<std::uint32_t>(bnd.size()));
      REPRO_CHECK_MSG(bnd.size() <= 2, "Lemma 10 violated: >2 boundary edges");
      if (bnd.empty()) {
        // Component is the whole (connected) tree; the final bag equals V and
        // is excluded (DESIGN.md deviation #5).
        REPRO_CHECK(t_full >= 1);
        ldr[v] = t_full - 1;
      } else {
        TimeStep first_absorb = kInvalidEdge;
        for (const auto& b : bnd) {
          const TimeStep reach = std::max(pm.query(v, b.inside), b.time);
          first_absorb = std::min(first_absorb, reach);
        }
        REPRO_CHECK(first_absorb >= 1);
        ldr[v] = first_absorb - 1;
      }
    }

    // Time intervals per edge (Lemmas 12/13). Events go into one flat buffer
    // and are grouped by leader (time-sorted within a leader) afterwards by
    // two stable counting passes — no comparison sort, no per-leader vector
    // churn.
    std::vector<Event> events;
    auto add_interval = [&](VertexId leader, TimeStep lo, TimeStep hi,
                            Weight w) {
      if (lo > hi) return;
      events.push_back({leader, lo, static_cast<std::int64_t>(w)});
      events.push_back({leader, hi + 1, -static_cast<std::int64_t>(w)});
      ++out.intervals;
    };
    for (EdgeId e = 0; e < g.edges.size(); ++e) {
      const VertexId x = g.edges[e].u;
      const VertexId y = g.edges[e].v;
      const Weight w = g.edges[e].w;
      const bool xa = decomp.label[x] >= i;
      const bool ya = decomp.label[y] >= i;
      const VertexId rx = xa ? uf.find(x) : kInvalidVertex;
      const VertexId ry = ya ? uf.find(y) : kInvalidVertex;
      const VertexId lx = xa ? leader_of_root[rx] : kInvalidVertex;
      const VertexId ly = ya ? leader_of_root[ry] : kInvalidVertex;
      if (xa && ya && rx == ry) {
        // Same component (Case 3b): the edge crosses the leader's bag from
        // the first joining time until both endpoints are inside.
        if (lx == kInvalidVertex) continue;
        const TimeStep jx = pm.query(lx, x);
        const TimeStep jy = pm.query(lx, y);
        // jx == jy happens when the path maximum sits on the shared prefix:
        // both endpoints join simultaneously and the edge never crosses.
        if (jx == jy) continue;
        const TimeStep lo = std::min(jx, jy);
        const TimeStep hi = std::min<TimeStep>(std::max(jx, jy) - 1, ldr[lx]);
        add_interval(lx, lo, hi, w);
      } else {
        // Cases 2 / 3a: the far endpoint cannot enter the bag while the
        // leader reigns (the path exits the component through a lower label).
        if (lx != kInvalidVertex) {
          const TimeStep jx = pm.query(lx, x);
          if (jx <= ldr[lx]) add_interval(lx, jx, ldr[lx], w);
        }
        if (ly != kInvalidVertex) {
          const TimeStep jy = pm.query(ly, y);
          if (jy <= ldr[ly]) add_interval(ly, jy, ldr[ly], w);
        }
      }
    }

    // Group events by leader with time order inside each group: stable
    // counting sort by t (values are bounded by t_full + 1), then stable
    // counting sort by leader, both via psort::radix_rank — parallel on the
    // same pool the levels fan out on (nested parallel_for is part of the
    // pool contract), bit-identical to the old sequential passes. The sweep
    // only needs per-leader time order, so this is equivalent to the old
    // per-leader comparison sorts; the second pass's group offsets are
    // exactly the per-leader event ranges.
    ThreadPool* sort_pool = parallel ? &ThreadPool::shared() : nullptr;
    std::vector<Event> sorted(events.size());
    psort::radix_rank(sort_pool, events.data(), sorted.data(), events.size(),
                      t_full + 2,
                      [](const Event& e) { return static_cast<std::size_t>(e.t); });
    std::vector<std::size_t> loffset;
    psort::radix_rank(sort_pool, sorted.data(), events.data(), events.size(),
                      g.n,
                      [](const Event& e) { return static_cast<std::size_t>(e.leader); },
                      &loffset);

    // Sweep per leader (Lemma 14).
    for (const VertexId v : decomp.levels[i]) {
      const std::size_t begin = loffset[v];
      const std::size_t count = loffset[v + 1] - begin;
      out.words += 2 * count;
      TimeStep argmin = 0;
      const Weight w =
          min_coverage_sorted(events.data() + begin, count, ldr[v], &argmin);
      if (w < out.weight) {
        out.weight = w;
        out.rep = v;
        out.time = argmin;
      }
    }
  };

  if (parallel) {
    ThreadPool::shared().parallel_for(
        h, [&](std::size_t idx) { run_level(static_cast<std::uint32_t>(idx) + 1); });
  } else {
    for (std::uint32_t i = 1; i <= h; ++i) run_level(i);
  }

  SingletonCutResult best;
  IntervalTrackerStats st;
  st.height = h;
  for (std::uint32_t i = 1; i <= h; ++i) {
    const LevelBest& lb = per_level[i];
    st.total_intervals += lb.intervals;
    st.total_level_vertices += lb.alive_vertices;
    st.max_boundary_edges = std::max(st.max_boundary_edges, lb.max_boundary);
    st.peak_level_words = std::max(st.peak_level_words, lb.words);
    if (lb.weight < best.weight) {
      best.weight = lb.weight;
      best.rep = lb.rep;
      best.time = lb.time;
    }
  }
  if (stats != nullptr) *stats = st;
  REPRO_CHECK_MSG(best.weight != kInfiniteWeight,
                  "tracker found no proper bag on a connected graph");
  return best;
}

}  // namespace ampccut
