#include "mincut/kcut.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "exact/stoer_wagner.h"
#include "kernel/front.h"
#include "support/check.h"
#include "support/psort.h"
#include "support/rng.h"
#include "support/threadpool.h"

namespace ampccut {

namespace {

// A component extracted as a standalone graph plus the bookkeeping to map a
// cut of the component back to original edges.
struct Component {
  WGraph sub;
  std::vector<VertexId> to_orig;      // sub vertex -> original vertex
  std::vector<EdgeId> edge_to_orig;   // sub edge -> original edge id
  MinCutResult cut;                   // best split (filled for sub.n >= 2)
};

}  // namespace

ApproxKCutResult apx_split_k_cut(
    const WGraph& g, std::uint32_t k, const ComponentSplitter& splitter,
    const std::function<void(std::uint32_t)>& on_iteration, ThreadPool* pool) {
  REPRO_CHECK(k >= 1 && k <= g.n);
  std::vector<std::uint8_t> removed(g.edges.size(), 0);
  std::uint64_t splitter_calls = 0;  // across all passes, for call_seq

  ApproxKCutResult out;
  for (;;) {
    // Components of G minus the removed cut edges.
    WGraph residual;
    residual.n = g.n;
    for (EdgeId e = 0; e < g.edges.size(); ++e) {
      if (!removed[e]) residual.edges.push_back(g.edges[e]);
    }
    const auto labels = component_labels(residual);
    std::vector<VertexId> uniq(labels);
    // Scalar self-order: stable == unstable, and the psort layer picks the
    // sequential fallback on a null pool, so the uniq pass stays identical.
    psort::stable_sort_keys(pool, uniq, std::less<VertexId>{});
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    const auto num_comps = static_cast<std::uint32_t>(uniq.size());

    if (num_comps >= k) {
      out.num_parts = num_comps;
      out.part.assign(g.n, 0);
      for (VertexId v = 0; v < g.n; ++v) {
        out.part[v] = static_cast<std::uint32_t>(
            std::lower_bound(uniq.begin(), uniq.end(), labels[v]) -
            uniq.begin());
      }
      out.weight = 0;
      for (EdgeId e = 0; e < g.edges.size(); ++e) {
        if (out.part[g.edges[e].u] != out.part[g.edges[e].v]) {
          out.weight += g.edges[e].w;
        }
      }
      return out;
    }

    // Build the splittable components (Algorithm 4 lines 3-5).
    std::vector<Component> comps(num_comps);
    std::vector<std::uint32_t> dense(g.n);
    for (VertexId v = 0; v < g.n; ++v) {
      const auto c = static_cast<std::uint32_t>(
          std::lower_bound(uniq.begin(), uniq.end(), labels[v]) - uniq.begin());
      dense[v] = c;
      comps[c].to_orig.push_back(v);
    }
    std::vector<VertexId> local(g.n, kInvalidVertex);
    for (auto& c : comps) {
      c.sub.n = static_cast<VertexId>(c.to_orig.size());
      for (VertexId i = 0; i < c.sub.n; ++i) local[c.to_orig[i]] = i;
    }
    for (EdgeId e = 0; e < g.edges.size(); ++e) {
      if (removed[e]) continue;
      const auto& ed = g.edges[e];
      Component& c = comps[dense[ed.u]];
      c.sub.edges.push_back({local[ed.u], local[ed.v], ed.w});
      c.edge_to_orig.push_back(e);
    }

    // Singleton components cannot split; everything else is solved this pass
    // (model-parallel across components), with call_seq assigned in
    // component order so seed derivation is schedule-independent.
    // Concurrency audit (kcut_ampc.cpp's iteration-counter fix): tasks here
    // write only their own comps[...].cut slot; splitter_calls is captured
    // by value and advanced on the driver after the join, and every read of
    // the slots happens after group.wait() — no shared counters, nothing to
    // lock. The ParallelKCut suites run under TSan in CI to keep it that way.
    std::vector<std::size_t> splittable;
    for (std::size_t ci = 0; ci < comps.size(); ++ci) {
      if (comps[ci].sub.n >= 2) splittable.push_back(ci);
    }
    REPRO_CHECK_MSG(!splittable.empty(),
                    "no splittable component but fewer than k parts "
                    "(k > number of vertices?)");
    if (pool != nullptr && splittable.size() > 1) {
      ThreadPool::TaskGroup group(*pool);
      for (std::size_t si = 0; si < splittable.size(); ++si) {
        group.run([&comps, &splitter, &splittable, splitter_calls, si] {
          Component& c = comps[splittable[si]];
          c.cut = splitter(c.sub, splitter_calls + si + 1);
        });
      }
      group.wait();
    } else {
      for (std::size_t si = 0; si < splittable.size(); ++si) {
        Component& c = comps[splittable[si]];
        c.cut = splitter(c.sub, splitter_calls + si + 1);
      }
    }
    splitter_calls += splittable.size();

    // Pick the globally cheapest cut, first-minimum-wins in component order.
    std::size_t best_comp = comps.size();
    Weight best_weight = kInfiniteWeight;
    for (const std::size_t ci : splittable) {
      if (comps[ci].cut.weight < best_weight) {
        best_weight = comps[ci].cut.weight;
        best_comp = ci;
      }
    }

    // Remove the winning cut's crossing edges (add them to D).
    REPRO_CHECK_MSG(best_comp != comps.size(),
                    "no splitter produced a finite-weight cut");
    const Component& win = comps[best_comp];
    for (std::size_t j = 0; j < win.sub.edges.size(); ++j) {
      const auto& se = win.sub.edges[j];
      if (win.cut.side[se.u] != win.cut.side[se.v]) {
        removed[win.edge_to_orig[j]] = 1;
      }
    }
    ++out.iterations;
    if (on_iteration) on_iteration(out.iterations);
  }
}

ApproxKCutResult apx_split_k_cut_approx(const WGraph& g, std::uint32_t k,
                                        const ApproxMinCutOptions& opt) {
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = resolve_recursion_pool(opt.threads, owned);
  ApproxMinCutOptions base = opt;
  // A dedicated pool serves the component fan-out; per-component recursions
  // run sequentially inside it rather than building a pool per component.
  // (threads == 0 keeps the shared pool at both levels.)
  if (owned != nullptr) base.threads = 1;
  return apx_split_k_cut(
      g, k,
      [base](const WGraph& sub, std::uint64_t call_seq) {
        ApproxMinCutOptions o = base;
        o.seed = splitmix64(base.seed ^ call_seq);
        const ApproxMinCutResult r = approx_min_cut(sub, o);
        return MinCutResult{r.weight, r.side};
      },
      nullptr, pool);
}

ApproxKCutResult apx_split_k_cut_exact(const WGraph& g, std::uint32_t k,
                                       const kernel::KernelOptions& kopt) {
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = resolve_recursion_pool(0, owned);
  return apx_split_k_cut(
      g, k,
      [&kopt](const WGraph& sub, std::uint64_t) {
        return kernel::stoer_wagner_min_cut_kernelized(sub, kopt);
      },
      nullptr, pool);
}

}  // namespace ampccut
