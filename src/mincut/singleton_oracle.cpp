#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "graph/union_find.h"
#include "mincut/singleton.h"
#include "support/check.h"
#include "support/psort.h"

namespace ampccut {

std::vector<std::uint8_t> reconstruct_bag(const WGraph& g,
                                          const ContractionOrder& order,
                                          VertexId rep, TimeStep t) {
  REPRO_CHECK(rep < g.n);
  UnionFind uf(g.n);
  const auto tree = msf_edges_by_time(g, order);
  for (const EdgeId e : tree) {
    if (order.time[e] <= t) uf.unite(g.edges[e].u, g.edges[e].v);
  }
  std::vector<std::uint8_t> bag(g.n, 0);
  const VertexId root = uf.find(rep);
  for (VertexId v = 0; v < g.n; ++v) bag[v] = (uf.find(v) == root) ? 1 : 0;
  return bag;
}

SingletonCutResult min_singleton_cut_oracle(const WGraph& g,
                                            const ContractionOrder& order) {
  REPRO_CHECK(g.n >= 1);
  REPRO_CHECK(order.time.size() == g.edges.size());

  // Final component size per vertex, to recognize complete bags.
  std::vector<VertexId> comp_size(g.n, 0);
  {
    UnionFind all(g.n);
    for (const auto& e : g.edges) all.unite(e.u, e.v);
    for (VertexId v = 0; v < g.n; ++v) {
      comp_size[v] = static_cast<VertexId>(
          all.component_size(all.find(v)));
    }
  }

  // Per-component boundary-edge id sets, merged smaller-into-larger (by set
  // size); cutw tracks the exact weighted boundary.
  std::vector<std::unordered_set<EdgeId>> boundary(g.n);
  std::vector<Weight> cutw(g.n, 0);
  for (EdgeId e = 0; e < g.edges.size(); ++e) {
    boundary[g.edges[e].u].insert(e);
    boundary[g.edges[e].v].insert(e);
    cutw[g.edges[e].u] += g.edges[e].w;
    cutw[g.edges[e].v] += g.edges[e].w;
  }

  SingletonCutResult best;
  UnionFind uf(g.n);
  std::vector<VertexId> size(g.n, 1);
  auto consider = [&](VertexId root, TimeStep t) {
    if (size[root] >= comp_size[root]) return;  // complete bag: not a cut
    if (cutw[root] < best.weight) {
      best.weight = cutw[root];
      best.rep = root;
      best.time = t;
    }
  };
  for (VertexId v = 0; v < g.n; ++v) consider(v, 0);

  std::vector<EdgeId> idx;
  if (order.perm.size() != order.time.size()) {
    // Hand-built order without a permutation: sort once, as before. Stable
    // + ascending ids = deterministic (time, id) even when a hand-built
    // order reuses a time.
    idx.resize(g.edges.size());
    std::iota(idx.begin(), idx.end(), 0);
    psort::stable_sort_keys(&ThreadPool::shared(), idx,
                            // repro-lint: allow(comparator-tiebreak) stable
                            // sort + ascending idx give the (time, id) order
                            [&](EdgeId a, EdgeId b) {
                              return order.time[a] < order.time[b];
                            });
  }
  for (const EdgeId e : idx.empty() ? order.perm : idx) {
    VertexId a = uf.find(g.edges[e].u);
    VertexId b = uf.find(g.edges[e].v);
    if (a == b) continue;
    if (boundary[a].size() > boundary[b].size()) std::swap(a, b);
    // Move a's boundary into b: edges connecting a and b become internal.
    // repro-lint: allow(iteration-order) each edge id toggles its own
    // membership in boundary[b] exactly once; distinct ids commute
    for (const EdgeId be : boundary[a]) {
      auto it = boundary[b].find(be);
      if (it != boundary[b].end()) {
        boundary[b].erase(it);
        cutw[b] -= g.edges[be].w;
      } else {
        boundary[b].insert(be);
        cutw[b] += g.edges[be].w;
      }
    }
    boundary[a].clear();
    const VertexId merged_size = size[a] + size[b];
    uf.unite(a, b);
    const VertexId root = uf.find(a);
    // Re-home the merged state onto the union-find root.
    if (root != b) {
      boundary[root] = std::move(boundary[b]);
      cutw[root] = cutw[b];
    }
    size[root] = merged_size;
    consider(root, order.time[e]);
  }
  return best;
}

}  // namespace ampccut
