// Smallest singleton cut of a contraction process — common result type.
//
// Semantics shared by every tracker in the library (oracle, interval, AMPC,
// MPC): the minimum over all pairs (v, t) of the weighted boundary of
// bag(v, t) (Definition 6 / Observation 7), ranging over bags that are proper
// subsets of v's connected component. Bags equal to a whole component are not
// cuts of that component and are excluded; the paper implicitly assumes
// connected inputs, where this only excludes bag == V (DESIGN.md deviation
// #5). Trackers must agree *exactly* — tests enforce it.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "mincut/contraction.h"

namespace ampccut {

struct SingletonCutResult {
  Weight weight = kInfiniteWeight;
  // A witness: bag(rep, time) attains the minimum. Reconstruct the vertex set
  // with reconstruct_bag().
  VertexId rep = kInvalidVertex;
  TimeStep time = 0;
};

// Vertices of bag(rep, t): everything reachable from rep via MSF edges with
// time <= t. Marks bag members with 1.
std::vector<std::uint8_t> reconstruct_bag(const WGraph& g,
                                          const ContractionOrder& order,
                                          VertexId rep, TimeStep t);

// Exact reference tracker: Kruskal with smaller-into-larger boundary-edge
// sets, O(m log m log n) expected. Works on any graph (multigraphs,
// disconnected).
SingletonCutResult min_singleton_cut_oracle(const WGraph& g,
                                            const ContractionOrder& order);

// Per-level statistics from the interval tracker, used by the memory /
// structure benches (E3, E6).
struct IntervalTrackerStats {
  std::uint32_t height = 0;             // decomposition height used
  std::uint64_t total_intervals = 0;    // Lemma 13 objects materialized
  std::uint64_t total_level_vertices = 0;
  std::uint32_t max_boundary_edges = 0;  // Lemma 10 (must be <= 2)
  std::uint64_t peak_level_words = 0;    // memory proxy: max words per level
};

// The paper's tracker (Sections 3+4, sequential execution): low-depth
// decomposition, per-level leaders / ldr_time / edge time intervals, minimum
// interval coverage via a prefix sweep. Requires a connected graph with
// n >= 2. `parallel` runs levels on the shared thread pool.
SingletonCutResult min_singleton_cut_interval(
    const WGraph& g, const ContractionOrder& order,
    IntervalTrackerStats* stats = nullptr, bool parallel = true);

}  // namespace ampccut
