// Sharded LRU answer cache for served s-t min-cut queries (DESIGN.md
// "Cut-query serving tier").
//
// Keying discipline: the key is (epoch, normalized pair). Because the epoch
// of the snapshot that produced an answer is part of the key, a snapshot
// swap needs no cache flush and no reader/writer coordination — entries for
// a retired epoch can never satisfy a lookup for the new one and simply age
// out through LRU eviction. Queries are symmetric, so pairs are normalized
// (min, max) before keying and (s, t) / (t, s) share one entry.
//
// Sharding: a splitmix64 hash of the key picks one of `shards` independent
// LRU lists, each behind its own mutex, so concurrent readers on different
// shards never contend. Counters are plain integers guarded by the shard
// mutex and summed on read. The cache never iterates its hash maps —
// unordered containers appear only for point lookups (repro_lint's
// iteration-order invariant).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace ampccut::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

class AnswerCache {
 public:
  struct Key {
    std::uint64_t epoch = 0;
    std::uint64_t pair = 0;  // (min(s,t) << 32) | max(s,t)

    friend bool operator==(const Key&, const Key&) = default;
  };

  static Key make_key(std::uint64_t epoch, VertexId s, VertexId t);

  // `capacity` is the total entry budget, split evenly across shards (each
  // shard receives at least one slot); capacity == 0 disables the cache:
  // lookups miss without counting and inserts are dropped, so a cache-off
  // server reports all-zero cache stats. `shards` is clamped to >= 1.
  AnswerCache(std::uint32_t shards, std::size_t capacity);

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }

  // True on hit, with the cached answer in *out and the entry refreshed to
  // most-recently-used. Counts one hit or one miss when enabled.
  bool lookup(const Key& key, Weight* out);

  // Inserts (or refreshes) key -> value, evicting the shard's LRU entry when
  // the shard is at capacity. Values are derived purely from the keyed
  // snapshot, so a racing double-insert writes the same value twice.
  void insert(const Key& key, Weight value);

  // Counters summed over shards. Concurrent use keeps the per-shard counts
  // exact (they are bumped under the shard mutex); hits + misses equals the
  // number of enabled lookups.
  [[nodiscard]] CacheStats stats() const;

 private:
  struct Entry {
    Key key;
    Weight value;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front == most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    CacheStats stats;  // guarded by mu
  };

  Shard& shard_of(const Key& key);

  std::size_t capacity_ = 0;        // total, informational
  std::size_t shard_capacity_ = 0;  // per shard, >= 1 when enabled
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ampccut::serve
