// Immutable cut snapshot: one Gomory–Hu tree plus the query-side indexes,
// published by CutServer behind a SnapshotCell — an atomic shared_ptr in
// spirit; see the cell's comment below (DESIGN.md "Cut-query serving
// tier").
//
// A Snapshot is frozen at construction — every member is const after the
// constructor returns, so any number of reader threads may query one
// concurrently with no synchronization while the server builds and swaps in
// its successor. The epoch is the publication counter that makes answers
// attributable: a reader that pins a snapshot can state "answer X as of
// epoch E" even while newer epochs are being served.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "exact/stoer_wagner.h"
#include "flow/gomory_hu.h"
#include "graph/graph.h"

namespace ampccut {
class ThreadPool;
}

namespace ampccut::serve {

// Build provenance riding on every snapshot.
struct SnapshotStats {
  VertexId n = 0;
  std::uint64_t m = 0;                  // edges of the ORIGINAL graph
  std::uint64_t flow_edges = 0;         // edges the Gusfield flows ran on
  std::uint64_t merged_parallel = 0;    // kernel front-end parallel merges
  bool kernelized = false;              // the merge pass actually ran
  std::uint32_t components = 1;
  std::uint32_t build_attempts = 1;     // 1 == fault-free build
};

class Snapshot {
 public:
  // `tree` must be a Gomory–Hu tree of `graph` (serve builds it; tests may
  // construct snapshots directly). `pool` (nullable, non-owning) feeds the
  // psort inside k_cut(); it never affects results.
  Snapshot(WGraph graph, GomoryHuTree tree, std::uint64_t epoch,
           SnapshotStats stats, ThreadPool* pool);

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] VertexId n() const { return graph_.n; }
  [[nodiscard]] const WGraph& graph() const { return graph_; }
  [[nodiscard]] const GomoryHuTree& tree() const { return tree_; }
  [[nodiscard]] const SnapshotStats& stats() const { return stats_; }

  // s-t min cut in O(tree path) with zero allocation: both endpoints climb
  // toward the root by stored depth, folding the path minimum. Throws
  // InvalidQueryError on out-of-range endpoints or s == t.
  [[nodiscard]] Weight query(VertexId s, VertexId t) const;

  // The global min cut off the tree: its lightest edge (ties broken by the
  // smaller child id, so the result is deterministic), one side being that
  // child's subtree. n < 2 yields {kInfiniteWeight, {}} like stoer_wagner.
  [[nodiscard]] MinCutResult global_min_cut() const;

  // (2 - 2/k)-approximate k-cut from the published tree — no flows at query
  // time (flow/gomory_hu.h, gomory_hu_k_cut_from_tree).
  [[nodiscard]] GHKCut k_cut(std::uint32_t k) const;

 private:
  WGraph graph_;
  GomoryHuTree tree_;
  std::uint64_t epoch_;
  SnapshotStats stats_;
  ThreadPool* pool_;

  std::vector<VertexId> depth_;  // root has depth 0
  // Lightest tree edge as its child endpoint (ties -> smallest id);
  // kInvalidVertex when the tree has no edges (n < 2).
  VertexId min_cut_child_ = kInvalidVertex;
  // Children CSR of the tree, for subtree extraction in global_min_cut().
  std::vector<std::uint32_t> child_offset_;
  std::vector<VertexId> child_;
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

// Publication cell for the current snapshot — semantically a
// std::atomic<std::shared_ptr<const Snapshot>>, which libstdc++ itself
// implements as a spinlocked pointer. We spell out the spinlock because
// GCC 12's _Sp_atomic unlocks its load() path with a relaxed fetch_sub,
// leaving no release edge from a reader's pointer read to the next
// writer's lock; ThreadSanitizer flags the plain _M_ptr access pair
// (rightly, per the letter of the memory model), and this repo's TSan CI
// runs with halt_on_error=1. The critical section here is two pointer
// copies plus a refcount bump; the retired snapshot is released outside
// the lock so tree destruction never stalls readers.
class SnapshotCell {
 public:
  SnapshotCell() = default;
  SnapshotCell(const SnapshotCell&) = delete;
  SnapshotCell& operator=(const SnapshotCell&) = delete;

  [[nodiscard]] SnapshotPtr load() const {
    lock();
    SnapshotPtr out = ptr_;
    unlock();
    return out;
  }

  void store(SnapshotPtr next) {
    lock();
    ptr_.swap(next);
    unlock();
    // `next` now holds the retired snapshot; it drops out of scope (and
    // possibly destroys the old tree) after the lock is released.
  }

 private:
  void lock() const {
    while (locked_.test_and_set(std::memory_order_acquire)) {
      while (locked_.test(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() const { locked_.clear(std::memory_order_release); }

  mutable std::atomic_flag locked_;  // C++20: default-initialized clear
  SnapshotPtr ptr_;
};

}  // namespace ampccut::serve
