// Served scenarios: the example programs' workloads, promoted from one-shot
// demos into requests driven through a CutServer (DESIGN.md "Cut-query
// serving tier"). Each report carries the epoch it was served from, so a
// caller can correlate answers across concurrent rebuilds.
#pragma once

#include <cstdint>
#include <vector>

#include "ampc_algo/mincut_ampc.h"
#include "serve/cut_server.h"

namespace ampccut::serve {

// Community detection: the snapshot's global min cut (exact — the lightest
// Gomory–Hu edge) plus an AMPC-MinCut cross-check run leased from the
// server's RuntimeArena, so repeated requests amortize runtime/table pools.
struct CommunityCutReport {
  std::uint64_t epoch = 0;
  MinCutResult cut;            // served from the snapshot
  ampc::AmpcMinCutReport ampc;  // the model-cost cross-check
};
CommunityCutReport serve_community_cut(CutServer& server,
                                       ampc::AmpcMinCutOptions opt);

// Network reliability: per-pair bottleneck capacities through the batch
// query path (cache-warm on repeat), plus the global weakest cut and the
// links crossing it.
struct ReliabilityReport {
  std::uint64_t epoch = 0;
  std::vector<Weight> pair_capacity;  // one per requested pair
  MinCutResult weakest;               // global min cut of the snapshot
  std::vector<WEdge> weakest_links;   // edges crossing it, original graph
};
ReliabilityReport serve_network_reliability(CutServer& server,
                                            const std::vector<QueryPair>& pairs);

// Workload partitioning: (2 - 2/k)-approximate k-cut straight off the
// published tree — no flows at request time.
struct KCutReport {
  std::uint64_t epoch = 0;
  GHKCut cut;
  std::vector<std::uint32_t> part_sizes;  // one per partition class
};
KCutReport serve_kcut_partition(CutServer& server, std::uint32_t k);

}  // namespace ampccut::serve
