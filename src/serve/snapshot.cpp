#include "serve/snapshot.h"

#include <algorithm>

#include "support/check.h"
#include "support/errors.h"

namespace ampccut::serve {

Snapshot::Snapshot(WGraph graph, GomoryHuTree tree, std::uint64_t epoch,
                   SnapshotStats stats, ThreadPool* pool)
    : graph_(std::move(graph)),
      tree_(std::move(tree)),
      epoch_(epoch),
      stats_(stats),
      pool_(pool) {
  const VertexId n = graph_.n;
  REPRO_CHECK_MSG(tree_.parent.size() == n &&
                      tree_.parent_cut_weight.size() == n,
                  "tree does not match graph");
  if (n == 0) return;

  // Children CSR of the tree (counting sort by parent — two sequential
  // passes; no comparator, so no tie-break question arises).
  child_offset_.assign(n + 1, 0);
  for (VertexId v = 1; v < n; ++v) child_offset_[tree_.parent[v] + 1]++;
  for (VertexId v = 0; v < n; ++v) child_offset_[v + 1] += child_offset_[v];
  child_.assign(n > 0 ? n - 1 : 0, kInvalidVertex);
  {
    std::vector<std::uint32_t> next(child_offset_.begin(),
                                    child_offset_.end() - 1);
    for (VertexId v = 1; v < n; ++v) child_[next[tree_.parent[v]]++] = v;
  }

  // Depths by a root-down walk over the CSR (children always appear after
  // their parent in the BFS order, so one queue-free pass suffices).
  depth_.assign(n, 0);
  std::vector<VertexId> order;
  order.reserve(n);
  order.push_back(0);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const VertexId v = order[head];
    for (std::uint32_t i = child_offset_[v]; i < child_offset_[v + 1]; ++i) {
      const VertexId c = child_[i];
      depth_[c] = depth_[v] + 1;
      order.push_back(c);
    }
  }
  REPRO_CHECK_MSG(order.size() == n, "tree is not connected to the root");

  // Lightest tree edge; smallest child id wins ties so the published global
  // cut is independent of construction order.
  for (VertexId v = 1; v < n; ++v) {
    if (min_cut_child_ == kInvalidVertex ||
        tree_.parent_cut_weight[v] < tree_.parent_cut_weight[min_cut_child_]) {
      min_cut_child_ = v;
    }
  }
}

Weight Snapshot::query(VertexId s, VertexId t) const {
  const VertexId n = graph_.n;
  if (s >= n || t >= n) {
    throw InvalidQueryError(
        "vertex out of range (n = " + std::to_string(n) + ")", s, t);
  }
  if (s == t) throw InvalidQueryError("s == t has no separating cut", s, t);
  // Classic LCA climb: lift the deeper endpoint first, then both in lock
  // step; every traversed tree edge folds into the running minimum. O(tree
  // path), no allocation — this is the serving hot path.
  VertexId a = s;
  VertexId b = t;
  Weight best = kInfiniteWeight;
  while (a != b) {
    if (depth_[a] >= depth_[b]) {
      best = std::min(best, tree_.parent_cut_weight[a]);
      a = tree_.parent[a];
    } else {
      best = std::min(best, tree_.parent_cut_weight[b]);
      b = tree_.parent[b];
    }
  }
  return best;
}

MinCutResult Snapshot::global_min_cut() const {
  MinCutResult out;
  if (min_cut_child_ == kInvalidVertex) return out;  // n < 2: no cut exists
  out.weight = tree_.parent_cut_weight[min_cut_child_];
  out.side.assign(graph_.n, 0);
  // One side is the subtree hanging off the lightest edge's child.
  std::vector<VertexId> stack = {min_cut_child_};
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    out.side[v] = 1;
    for (std::uint32_t i = child_offset_[v]; i < child_offset_[v + 1]; ++i) {
      stack.push_back(child_[i]);
    }
  }
  return out;
}

GHKCut Snapshot::k_cut(std::uint32_t k) const {
  return gomory_hu_k_cut_from_tree(tree_, graph_, k, pool_);
}

}  // namespace ampccut::serve
