#include "serve/answer_cache.h"

#include <algorithm>

#include "support/rng.h"

namespace ampccut::serve {

AnswerCache::Key AnswerCache::make_key(std::uint64_t epoch, VertexId s,
                                       VertexId t) {
  const VertexId lo = std::min(s, t);
  const VertexId hi = std::max(s, t);
  return Key{epoch,
             (static_cast<std::uint64_t>(lo) << 32U) |
                 static_cast<std::uint64_t>(hi)};
}

std::size_t AnswerCache::KeyHash::operator()(const Key& k) const {
  // splitmix64 chain (support/rng.h): the repo's one sanctioned hash mixer.
  return static_cast<std::size_t>(splitmix64(k.pair ^ splitmix64(k.epoch)));
}

AnswerCache::AnswerCache(std::uint32_t shards, std::size_t capacity)
    : capacity_(capacity) {
  const std::uint32_t count = std::max<std::uint32_t>(1, shards);
  if (capacity_ == 0) return;  // disabled: no shards to maintain
  shard_capacity_ = std::max<std::size_t>(1, capacity_ / count);
  shards_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

AnswerCache::Shard& AnswerCache::shard_of(const Key& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

bool AnswerCache::lookup(const Key& key, Weight* out) {
  if (!enabled()) return false;
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    s.stats.misses++;
    return false;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh to MRU
  s.stats.hits++;
  *out = it->second->value;
  return true;
}

void AnswerCache::insert(const Key& key, Weight value) {
  if (!enabled()) return;
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    // Racing double-insert for the same (epoch, pair): same value (header
    // comment), just refresh recency.
    it->second->value = value;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= shard_capacity_) {
    s.index.erase(s.lru.back().key);
    s.lru.pop_back();
    s.stats.evictions++;
  }
  s.lru.push_front(Entry{key, value});
  s.index.emplace(key, s.lru.begin());
}

CacheStats AnswerCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
  }
  return total;
}

}  // namespace ampccut::serve
