#include "serve/cut_server.h"

#include <algorithm>
#include <utility>

#include "support/check.h"
#include "support/errors.h"
#include "support/rng.h"

namespace ampccut::serve {

CutServer::CutServer(WGraph g, CutServerOptions opt)
    : opt_(std::move(opt)),
      pool_(opt_.pool != nullptr ? opt_.pool : &ThreadPool::shared()),
      cache_(opt_.cache_shards, opt_.cache_capacity),
      arena_(pool_) {
  REPRO_CHECK_MSG(g.n >= 1, "CutServer needs at least one vertex");
  g.validate();
  graph_ = std::move(g);
  epoch_ = 1;
  current_.store(build_snapshot(graph_, epoch_));
}

SnapshotPtr CutServer::snapshot() const {
  return current_.load();
}

Weight CutServer::query(VertexId s, VertexId t) {
  const SnapshotPtr snap = snapshot();
  const Weight w = cached_query(*snap, s, t);
  queries_.fetch_add(1, std::memory_order_relaxed);
  return w;
}

std::vector<Weight> CutServer::query_batch(const std::vector<QueryPair>& pairs) {
  // Pin ONE snapshot for the whole batch: every answer shares an epoch no
  // matter how many swaps land while the fan-out runs.
  return query_batch_on(snapshot(), pairs);
}

std::vector<Weight> CutServer::query_batch_on(
    const SnapshotPtr& snap, const std::vector<QueryPair>& pairs) {
  REPRO_CHECK(snap != nullptr);
  std::vector<Weight> out(pairs.size());
  // Block-partitioned fan-out: disjoint result slots, deterministic content.
  const std::size_t grain = 64;
  const std::size_t blocks = (pairs.size() + grain - 1) / grain;
  pool_->parallel_for(blocks, [&](std::size_t b) {
    const std::size_t lo = b * grain;
    const std::size_t hi = std::min(lo + grain, pairs.size());
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = cached_query(*snap, pairs[i].s, pairs[i].t);
    }
  });
  batch_queries_.fetch_add(pairs.size(), std::memory_order_relaxed);
  return out;
}

Weight CutServer::cached_query(const Snapshot& snap, VertexId s, VertexId t) {
  if (!cache_.enabled()) return snap.query(s, t);
  const AnswerCache::Key key = AnswerCache::make_key(snap.epoch(), s, t);
  Weight cached = 0;
  if (cache_.lookup(key, &cached)) return cached;
  // snap.query validates (s, t); an InvalidQueryError propagates before the
  // miss can be inserted, so poison pairs never occupy cache slots. The miss
  // was already counted — a rejected query still consulted the cache.
  const Weight w = snap.query(s, t);
  cache_.insert(key, w);
  return w;
}

void CutServer::update_graph(WGraph g) {
  REPRO_CHECK_MSG(g.n >= 1, "CutServer needs at least one vertex");
  g.validate();
  std::lock_guard<std::mutex> lock(rebuild_mu_);
  // Build completely before touching any published state: a failed build
  // must leave the current snapshot exactly as it was.
  const SnapshotPtr next = build_snapshot(g, epoch_ + 1);
  graph_ = std::move(g);
  epoch_ += 1;
  current_.store(next);
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
}

void CutServer::set_fault(const ampc::FaultPlan& fault,
                          const ampc::RetryPolicy& retry) {
  std::lock_guard<std::mutex> lock(rebuild_mu_);
  opt_.fault = fault;
  opt_.retry = retry;
}

SnapshotPtr CutServer::build_snapshot(const WGraph& g, std::uint64_t epoch) {
  SnapshotStats stats;
  stats.n = g.n;
  stats.m = g.m();
  stats.components = count_components(g);

  // Merge-only kernel pass (header comment on why nothing stronger is
  // admissible here). kernelize resolves disconnected inputs into an empty
  // kernel — useless for pairwise serving — so those build on the raw graph.
  const WGraph* flow_graph = &g;
  WGraph merged;
  if (opt_.kernel.enabled && g.n >= 2 && stats.components == 1) {
    kernel::KernelOptions ko;
    ko.enabled = true;
    ko.max_passes = 1;
    ko.merge_parallel_edges = true;
    ko.remove_low_degree = false;
    ko.contract_heavy_edges = false;
    kernel::KernelResult kr = kernel::kernelize(g, ko, pool_);
    // Merge-only passes never touch the vertex set.
    REPRO_CHECK(kr.kernel.n == g.n);
    merged = std::move(kr.kernel);
    flow_graph = &merged;
    stats.merged_parallel = kr.stats.merged_parallel;
    stats.kernelized = true;
  }
  stats.flow_edges = flow_graph->m();

  const ampc::FaultInjector injector(opt_.fault);
  const bool inject = injector.plan().enabled();
  const std::uint32_t max_attempts = std::max(1U, opt_.retry.max_attempts);
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      GomoryHuTree tree = build_gomory_hu(
          *flow_graph, [&](VertexId step) {
            if (!inject) return;
            using ampc::FaultKind;
            if (injector.fires(FaultKind::kSlowMachine, epoch, step, attempt)) {
              ampc::fault_delay_spin(
                  splitmix64(opt_.fault.seed ^ (epoch << 16U) ^ step),
                  injector.plan().delay_spin);
            }
            // The rebuild path has no read/staging distinction: any failing
            // kind kills the step, and recovery discards the partial tree.
            if (injector.fires(FaultKind::kMachineCrash, epoch, step, attempt) ||
                injector.fires(FaultKind::kTableReadFail, epoch, step,
                               attempt) ||
                injector.fires(FaultKind::kStagedWriteLoss, epoch, step,
                               attempt)) {
              throw MachineFailedError(epoch, step,
                                       "injected fault on serve rebuild");
            }
          });
      stats.build_attempts = attempt + 1;
      snapshots_published_.fetch_add(1, std::memory_order_relaxed);
      // The snapshot keeps the ORIGINAL graph (scenario code lists crossing
      // edges of it); the merged copy only fed the flows.
      return std::make_shared<const Snapshot>(g, std::move(tree), epoch, stats,
                                              pool_);
    } catch (const MachineFailedError& e) {
      build_retries_.fetch_add(1, std::memory_order_relaxed);
      if (attempt + 1 >= max_attempts) {
        throw RetriesExhaustedError("serve-rebuild", epoch, max_attempts,
                                    e.what());
      }
      if (opt_.retry.backoff_spin > 0) {
        ampc::fault_delay_spin(splitmix64(opt_.fault.seed ^ epoch ^ attempt),
                               opt_.retry.backoff_spin);
      }
    }
  }
}

ServeStats CutServer::stats() const {
  ServeStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  const CacheStats c = cache_.stats();
  s.cache_hits = c.hits;
  s.cache_misses = c.misses;
  s.cache_evictions = c.evictions;
  s.rebuilds = rebuilds_.load(std::memory_order_relaxed);
  s.snapshots_published = snapshots_published_.load(std::memory_order_relaxed);
  s.build_retries = build_retries_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ampccut::serve
