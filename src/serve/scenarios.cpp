#include "serve/scenarios.h"

#include <algorithm>
#include <utility>

namespace ampccut::serve {

CommunityCutReport serve_community_cut(CutServer& server,
                                       ampc::AmpcMinCutOptions opt) {
  const SnapshotPtr snap = server.snapshot();
  CommunityCutReport report;
  report.epoch = snap->epoch();
  report.cut = snap->global_min_cut();
  // The cross-check runs on the SNAPSHOT's graph (not whatever update_graph
  // may have accepted since) and leases its runtimes from the server arena.
  opt.arena = &server.arena();
  report.ampc = ampc::ampc_approx_min_cut(snap->graph(), opt);
  return report;
}

ReliabilityReport serve_network_reliability(
    CutServer& server, const std::vector<QueryPair>& pairs) {
  // Pin ONE snapshot for the whole report: batch answers, the weakest cut,
  // and the crossing-link listing all describe the same epoch, even if
  // update_graph swaps a new one in mid-report.
  const SnapshotPtr snap = server.snapshot();
  ReliabilityReport report;
  report.epoch = snap->epoch();
  report.pair_capacity = server.query_batch_on(snap, pairs);
  report.weakest = snap->global_min_cut();
  if (!report.weakest.side.empty()) {
    for (const auto& e : snap->graph().edges) {
      if (report.weakest.side[e.u] != report.weakest.side[e.v]) {
        report.weakest_links.push_back(e);
      }
    }
  }
  return report;
}

KCutReport serve_kcut_partition(CutServer& server, std::uint32_t k) {
  const SnapshotPtr snap = server.snapshot();
  KCutReport report;
  report.epoch = snap->epoch();
  report.cut = snap->k_cut(k);
  std::uint32_t parts = 0;
  for (const auto p : report.cut.part) parts = std::max(parts, p + 1);
  report.part_sizes.assign(parts, 0);
  for (const auto p : report.cut.part) report.part_sizes[p]++;
  return report;
}

}  // namespace ampccut::serve
