// CutServer: the concurrent, queryable front over a Gomory–Hu snapshot
// (DESIGN.md "Cut-query serving tier"; the ROADMAP's "cut-query serving
// layer" item).
//
// Construction pays the heavy work once — optionally an all-pairs-safe
// kernel pass (parallel-edge merging only; see build notes below), then
// Gusfield's n-1 max-flows — and publishes the result as an immutable
// Snapshot behind a SnapshotCell (serve/snapshot.h) — semantically a
// std::atomic<std::shared_ptr>, spelled out as an acquire/release spinlock
// because GCC 12's _Sp_atomic lacks the release edge on its reader path
// (see the cell's comment). Readers pin a snapshot with one brief
// spinlocked pointer copy and answer s-t queries in O(tree path);
// update_graph() rebuilds on the calling thread and swaps the new epoch in
// with one atomic store, so readers are never blocked and every answer is
// attributable to the epoch that produced it.
//
// Why the kernel front-end is merge-only: degree peeling and certified
// heavy-edge contraction preserve the GLOBAL min cut, but a Gomory–Hu tree
// answers ALL-PAIRS s-t cuts — contracting u into v erases every cut
// separating them, which is exactly what a served query may ask for.
// Parallel-edge merging is the one rule that rewrites the graph into an
// equivalent one on the same vertex set, so it is the only rule the serving
// tier lets through, however the caller configures KernelOptions.
//
// Rebuild robustness rides the runtime's fault machinery (ampc/fault.h):
// each Gusfield step consults the FaultInjector at (round = epoch,
// machine = step, attempt); an injected failure discards the partial tree
// and replays the whole build under RetryPolicy, and exhaustion surfaces as
// RetriesExhaustedError with the previous snapshot still serving — degraded
// freshness, never a wrong answer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "ampc/fault.h"
#include "ampc/runtime.h"
#include "kernel/kernel.h"
#include "serve/answer_cache.h"
#include "serve/snapshot.h"
#include "support/threadpool.h"

namespace ampccut::serve {

// One s-t query; answers are symmetric in (s, t).
struct QueryPair {
  VertexId s = 0;
  VertexId t = 0;
};

struct CutServerOptions {
  // Kernel front-end switch. When enabled, connected inputs pass through a
  // parallel-edge merge before the flows (header comment); the per-rule
  // toggles beyond `enabled` are ignored by design.
  kernel::KernelOptions kernel;
  // Answer cache (serve/answer_cache.h). capacity == 0 disables it.
  std::uint32_t cache_shards = 8;
  std::size_t cache_capacity = 4096;
  // Pool for batch fan-out and build-time sorts (nullptr = the shared pool).
  // Never affects answers, only wall time.
  ThreadPool* pool = nullptr;
  // Rebuild-path fault injection + recovery budget (header comment).
  ampc::FaultPlan fault;
  ampc::RetryPolicy retry;
};

// Monotonic serving counters. hits + misses counts exactly the queries that
// consulted an enabled cache; queries/batch_queries count answers served.
struct ServeStats {
  std::uint64_t queries = 0;        // single-shot query() answers
  std::uint64_t batch_queries = 0;  // answers served through query_batch()
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t rebuilds = 0;             // update_graph() successes
  std::uint64_t snapshots_published = 0;  // including the constructor's
  std::uint64_t build_retries = 0;        // fault-discarded build attempts
};

class CutServer {
 public:
  // Builds and publishes epoch 1. Requires g.n >= 1 (the graph may be
  // disconnected — cross-component answers are 0). Throws
  // RetriesExhaustedError if the configured fault plan defeats the build.
  explicit CutServer(WGraph g, CutServerOptions opt = {});

  CutServer(const CutServer&) = delete;
  CutServer& operator=(const CutServer&) = delete;

  // Pins the current snapshot: one atomic load, never blocks, never null.
  [[nodiscard]] SnapshotPtr snapshot() const;

  // s-t min cut through the cache (when enabled) against the current
  // snapshot. Throws InvalidQueryError on a bad pair.
  Weight query(VertexId s, VertexId t);

  // Batch variant: fans out over the pool (ThreadPool::TaskGroup machinery
  // underneath parallel_for) with every answer resolved against ONE pinned
  // snapshot, so a batch is internally consistent even while update_graph()
  // swaps epochs mid-flight. Order of results matches `pairs`; answers are
  // bit-identical to issuing the queries sequentially.
  std::vector<Weight> query_batch(const std::vector<QueryPair>& pairs);

  // Same fan-out against a caller-pinned snapshot: scenario code that must
  // attribute its whole report to one epoch pins once and serves everything
  // — batch answers included — from that pin. Cache keying is by the pinned
  // snapshot's epoch, exactly as if the batch had raced no swap.
  std::vector<Weight> query_batch_on(const SnapshotPtr& snap,
                                     const std::vector<QueryPair>& pairs);

  // Rebuilds the tree for `g` on the calling thread and atomically swaps the
  // next epoch in. Readers keep answering on the old snapshot throughout; on
  // RetriesExhaustedError the old snapshot simply remains current.
  void update_graph(WGraph g);

  // Replaces the rebuild-path fault plan / retry budget for subsequent
  // builds (chaos tests flip injection on and off around update_graph).
  void set_fault(const ampc::FaultPlan& fault, const ampc::RetryPolicy& retry);

  [[nodiscard]] ServeStats stats() const;

  // Arena for AMPC runs driven off this server's snapshots (scenarios.h):
  // leased runtimes and their table pools stay warm across rebuilds.
  [[nodiscard]] ampc::RuntimeArena& arena() { return arena_; }

 private:
  // One full build attempt cycle under the retry policy; returns the
  // ready-to-publish snapshot for `epoch`.
  SnapshotPtr build_snapshot(const WGraph& g, std::uint64_t epoch);

  Weight cached_query(const Snapshot& snap, VertexId s, VertexId t);

  CutServerOptions opt_;
  ThreadPool* pool_;  // resolved: opt_.pool or the shared pool
  AnswerCache cache_;
  ampc::RuntimeArena arena_;

  SnapshotCell current_;
  std::mutex rebuild_mu_;  // serializes update_graph + set_fault
  WGraph graph_;           // latest accepted graph, guarded by rebuild_mu_
  std::uint64_t epoch_ = 0;  // last published epoch, guarded by rebuild_mu_

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> batch_queries_{0};
  std::atomic<std::uint64_t> rebuilds_{0};
  std::atomic<std::uint64_t> snapshots_published_{0};
  std::atomic<std::uint64_t> build_retries_{0};
};

}  // namespace ampccut::serve
