#include "tree/low_depth.h"

#include <algorithm>
#include <unordered_map>

#include "graph/union_find.h"
#include "support/check.h"
#include "tree/binarized_path.h"

namespace ampccut {

LowDepthDecomposition build_low_depth_decomposition(const RootedTree& t,
                                                    const HeavyLight& hl) {
  LowDepthDecomposition d;
  const VertexId n = t.n;
  d.label.assign(n, 0);
  d.leaf_depth.assign(n, 0);
  d.path_id = hl.path_id;
  d.pos_in_path = hl.pos_in_path;
  const std::uint32_t num_paths = hl.num_paths();
  d.path_len.assign(num_paths, 0);
  d.path_attach.assign(num_paths, kInvalidVertex);
  d.base_depth.assign(num_paths, 0);
  for (std::uint32_t p = 0; p < num_paths; ++p) {
    d.path_len[p] = static_cast<std::uint32_t>(hl.paths[p].size());
    const VertexId head = hl.paths[p].front();
    d.path_attach[p] = t.is_root(head) ? kInvalidVertex : t.parent[head];
  }

  // Base depths top-down: the binarized root of a child path hangs below the
  // attachment vertex's *leaf* node in the parent path's binarized tree.
  // t.order is BFS order, so parents' paths are resolved before children's;
  // resolve path p when visiting its head.
  for (const VertexId v : t.order) {
    const std::uint32_t p = d.path_id[v];
    if (hl.paths[p].front() != v) continue;  // only heads trigger resolution
    const VertexId attach = d.path_attach[p];
    if (attach == kInvalidVertex) {
      d.base_depth[p] = 1;
    } else {
      REPRO_DCHECK(d.leaf_depth[attach] > 0);
      d.base_depth[p] = d.leaf_depth[attach] + 1;
    }
    // Resolve every vertex of the path immediately (leaf depth + label).
    const std::uint64_t len = d.path_len[p];
    for (std::uint32_t j = 0; j < len; ++j) {
      const VertexId u = hl.paths[p][j];
      const auto leaf = binpath::leaf_index(len, j);
      d.leaf_depth[u] = d.base_depth[p] + binpath::depth(leaf) - 1;
      d.label[u] = d.base_depth[p] + binpath::leaf_label(len, leaf) - 1;
    }
  }

  d.height = 0;
  for (VertexId v = 0; v < n; ++v) {
    REPRO_CHECK_MSG(d.label[v] >= 1, "unlabeled vertex");
    d.height = std::max(d.height, d.label[v]);
  }
  d.levels.assign(d.height + 1, {});
  for (VertexId v = 0; v < n; ++v) d.levels[d.label[v]].push_back(v);
  return d;
}

bool validate_low_depth_decomposition(const RootedTree& t,
                                      const LowDepthDecomposition& d) {
  const VertexId n = t.n;
  for (std::uint32_t i = 1; i <= d.height; ++i) {
    UnionFind uf(n);
    for (VertexId v = 0; v < n; ++v) {
      if (t.is_root(v)) continue;
      const VertexId p = t.parent[v];
      if (d.label[v] >= i && d.label[p] >= i) uf.unite(v, p);
    }
    std::unordered_map<VertexId, std::uint32_t> level_count;
    for (VertexId v = 0; v < n; ++v) {
      if (d.label[v] != i) continue;
      if (++level_count[uf.find(v)] > 1) return false;
    }
  }
  return true;
}

DecompositionStats decomposition_stats(const RootedTree& t,
                                       const HeavyLight& hl,
                                       const LowDepthDecomposition& d) {
  DecompositionStats s;
  s.height = d.height;
  s.num_paths = hl.num_paths();
  // Light edges on root paths: count per vertex by walking heads via parent
  // pointers — memoized along BFS order.
  std::vector<std::uint32_t> light_above(t.n, 0);
  for (const VertexId v : t.order) {
    if (t.is_root(v)) continue;
    const VertexId p = t.parent[v];
    const bool is_light = t.heavy[p] != v;
    light_above[v] = light_above[p] + (is_light ? 1u : 0u);
    s.max_light_on_root_path = std::max(s.max_light_on_root_path,
                                        light_above[v]);
  }
  // Boundary edges per component per level (Lemma 10): O(n * height).
  for (std::uint32_t i = 1; i <= d.height; ++i) {
    UnionFind uf(t.n);
    std::uint64_t alive = 0;
    for (VertexId v = 0; v < t.n; ++v) {
      if (d.label[v] >= i) ++alive;
      if (t.is_root(v)) continue;
      const VertexId p = t.parent[v];
      if (d.label[v] >= i && d.label[p] >= i) uf.unite(v, p);
    }
    s.sum_level_vertices += alive;
    std::unordered_map<VertexId, std::uint32_t> boundary;
    for (VertexId v = 0; v < t.n; ++v) {
      if (t.is_root(v)) continue;
      const VertexId p = t.parent[v];
      const bool v_in = d.label[v] >= i;
      const bool p_in = d.label[p] >= i;
      if (v_in == p_in) continue;
      const VertexId inside = v_in ? v : p;
      ++boundary[uf.find(inside)];
    }
    // repro-lint: allow(iteration-order) commutative max over the values;
    // no order-dependent state
    for (const auto& [root, cnt] : boundary) {
      s.max_boundary_edges = std::max(s.max_boundary_edges, cnt);
    }
  }
  return s;
}

}  // namespace ampccut
