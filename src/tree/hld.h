// Rooted trees and heavy-light decomposition (Sleator–Tarjan heavy edges,
// Definition 2 of the paper), plus a path-maximum structure over edge times.
//
// The paper's Section 4 queries, for arbitrary tree pairs (u, v), the maximum
// contraction time on the tree path between them (its `mw`, see DESIGN.md
// deviation #3): a vertex x joins the bag of v exactly when the *last* edge
// on the v..x path contracts. HLD + per-position sparse table answers that in
// O(log n) segment maxima, which is the sequential mirror of the paper's
// Theorem 4 (HLD + RMQ on heavy paths in AMPC).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ampccut {

// A rooted tree over vertices 0..n-1 built from an explicit edge list with
// per-edge weights ("times"). Iterative construction, no recursion limits.
struct RootedTree {
  VertexId n = 0;
  VertexId root = 0;
  std::vector<VertexId> parent;       // parent[root] == kInvalidVertex
  std::vector<TimeStep> parent_time;  // time of edge to parent (0 for root)
  std::vector<std::uint32_t> depth;   // root has depth 0
  std::vector<std::uint32_t> subtree; // subtree sizes (incl. self)
  std::vector<VertexId> heavy;        // heavy child (kInvalidVertex at leaves)
  std::vector<VertexId> order;        // BFS order from the root

  [[nodiscard]] bool is_root(VertexId v) const { return v == root; }
};

// Builds a rooted tree from `edges` (must form a spanning tree of the n
// vertices — connected, n-1 edges). Ties in subtree size break toward the
// smaller vertex id so the decomposition is deterministic.
RootedTree build_rooted_tree(VertexId n,
                             const std::vector<WEdge>& edges,
                             const std::vector<TimeStep>& times,
                             VertexId root);

// Heavy-light decomposition: every vertex lies on exactly one heavy path
// (Observation 2). Paths are stored top-down (head first).
struct HeavyLight {
  std::vector<std::uint32_t> path_id;      // heavy path containing v
  std::vector<std::uint32_t> pos_in_path;  // 0 == head (topmost vertex)
  std::vector<std::vector<VertexId>> paths;  // path_id -> ordered vertices

  [[nodiscard]] std::uint32_t num_paths() const {
    return static_cast<std::uint32_t>(paths.size());
  }
  [[nodiscard]] std::uint32_t path_len(VertexId v) const {
    return static_cast<std::uint32_t>(paths[path_id[v]].size());
  }
  [[nodiscard]] VertexId head(VertexId v) const {
    return paths[path_id[v]].front();
  }
};

HeavyLight build_heavy_light(const RootedTree& t);

// Max contraction time on tree paths, O(log n) per query after O(n log n)
// preprocessing. pathmax(u, u) == 0 by convention (empty path).
//
// query() is the single hottest function of the interval tracker (one call
// per edge endpoint per decomposition level), so the structure is flattened
// for it: per-vertex head/depth/parent-hop arrays replace the pointer-chasing
// through RootedTree/HeavyLight, and the sparse table is one contiguous
// buffer indexed by per-level offsets.
class PathMax {
 public:
  PathMax() = default;
  PathMax(const RootedTree& t, const HeavyLight& hl);

  [[nodiscard]] TimeStep query(VertexId u, VertexId v) const;

 private:
  [[nodiscard]] TimeStep range_max(std::uint32_t lo, std::uint32_t hi) const;

  // Global position of v = path_offset[path_id[v]] + pos_in_path[v]; the base
  // array (sparse level 0) holds parent-edge times so a path segment is a
  // contiguous range.
  std::vector<std::uint32_t> gpos_;
  std::vector<VertexId> head_;          // head vertex of v's heavy path
  std::vector<std::uint32_t> depth_;    // tree depth of v
  std::vector<std::uint32_t> head_depth_;   // depth of head_[v]
  std::vector<VertexId> head_parent_;   // parent of head_[v] (next hop)
  std::vector<TimeStep> head_ptime_;    // parent-edge time of head_[v]
  std::vector<TimeStep> sparse_;        // level k at [level_off_[k], ...)
  std::vector<std::uint32_t> level_off_;
};

}  // namespace ampccut
