// Generalized low-depth tree decomposition (Definition 1, Algorithm 2).
//
// Produces a labeling l : V -> [h], h = O(log^2 n), such that for every level
// i the connected components induced on {v : l(v) >= i} contain at most one
// vertex with label exactly i. Construction: heavy-light decomposition ->
// meta tree (heavy paths contracted, Definition 4) -> binarized paths
// (Definition 5) -> labels = depths of climb-stop nodes in the expanded meta
// tree (Section 3.4).
//
// The struct retains the per-path geometry (lengths, positions, expanded base
// depths, attachment vertices) because the singleton-cut machinery of
// Section 4 navigates components *arithmetically* through this geometry.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/hld.h"

namespace ampccut {

struct LowDepthDecomposition {
  // The decomposition labeling; labels start at 1. height == max label.
  std::vector<std::uint32_t> label;
  std::uint32_t height = 0;

  // Geometry reused by the Section 4 machinery -----------------------------
  // Heavy-light data (copied views; path order is top-down).
  std::vector<std::uint32_t> path_id;
  std::vector<std::uint32_t> pos_in_path;
  std::vector<std::uint32_t> path_len;        // per path id
  std::vector<VertexId> path_attach;          // parent(head) per path id;
                                              // kInvalidVertex for the root
  // Expanded-meta-tree depth of each path's binarized root (root path: 1).
  std::vector<std::uint32_t> base_depth;      // per path id
  // Expanded depth of each vertex's own leaf node (>= label[v]).
  std::vector<std::uint32_t> leaf_depth;      // per vertex

  // Vertices bucketed by label (levels[i] = vertices with label i); index 0
  // is unused so levels[i] matches level i.
  std::vector<std::vector<VertexId>> levels;
};

// Requires a valid rooted tree + its heavy-light decomposition.
LowDepthDecomposition build_low_depth_decomposition(const RootedTree& t,
                                                    const HeavyLight& hl);

// Checks Definition 1 directly: for every level i, each connected component
// of the forest induced on {v : l(v) >= i} has at most one vertex labeled i.
// O(n * height); test/bench utility. Returns true when valid.
bool validate_low_depth_decomposition(const RootedTree& t,
                                      const LowDepthDecomposition& d);

// Structural statistics backing Observation 1/6 and Lemma 10 benches.
struct DecompositionStats {
  std::uint32_t height = 0;             // max label
  std::uint32_t num_paths = 0;          // heavy paths (= meta vertices)
  std::uint32_t max_light_on_root_path = 0;  // light edges on any v->root path
  std::uint32_t max_boundary_edges = 0;      // over all levels & components
  std::uint64_t sum_level_vertices = 0;      // total work across levels
};

DecompositionStats decomposition_stats(const RootedTree& t,
                                       const HeavyLight& hl,
                                       const LowDepthDecomposition& d);

}  // namespace ampccut
