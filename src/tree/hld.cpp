#include "tree/hld.h"

#include <algorithm>
#include <numeric>

#include "support/bits.h"
#include "support/check.h"

namespace ampccut {

RootedTree build_rooted_tree(VertexId n, const std::vector<WEdge>& edges,
                             const std::vector<TimeStep>& times,
                             VertexId root) {
  REPRO_CHECK(n >= 1 && root < n);
  REPRO_CHECK_MSG(edges.size() + 1 == n, "tree must have exactly n-1 edges");
  REPRO_CHECK(times.size() == edges.size());

  // CSR adjacency of the tree.
  std::vector<std::uint32_t> off(n + 1, 0);
  for (const auto& e : edges) {
    ++off[e.u + 1];
    ++off[e.v + 1];
  }
  std::partial_sum(off.begin(), off.end(), off.begin());
  std::vector<std::pair<VertexId, TimeStep>> adj(2 * edges.size());
  {
    std::vector<std::uint32_t> fill(off.begin(), off.end() - 1);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      adj[fill[edges[i].u]++] = {edges[i].v, times[i]};
      adj[fill[edges[i].v]++] = {edges[i].u, times[i]};
    }
  }

  RootedTree t;
  t.n = n;
  t.root = root;
  t.parent.assign(n, kInvalidVertex);
  t.parent_time.assign(n, 0);
  t.depth.assign(n, 0);
  t.subtree.assign(n, 1);
  t.heavy.assign(n, kInvalidVertex);
  t.order.clear();
  t.order.reserve(n);

  // BFS to assign parents/depths.
  std::vector<std::uint8_t> seen(n, 0);
  t.order.push_back(root);
  seen[root] = 1;
  for (std::size_t i = 0; i < t.order.size(); ++i) {
    const VertexId v = t.order[i];
    for (std::uint32_t a = off[v]; a < off[v + 1]; ++a) {
      const auto [to, tm] = adj[a];
      if (seen[to]) continue;
      seen[to] = 1;
      t.parent[to] = v;
      t.parent_time[to] = tm;
      t.depth[to] = t.depth[v] + 1;
      t.order.push_back(to);
    }
  }
  REPRO_CHECK_MSG(t.order.size() == n, "edge list does not span the tree");

  // Subtree sizes bottom-up, then heavy children (largest subtree; ties go to
  // the smaller vertex id for determinism).
  for (std::size_t i = n; i-- > 1;) {
    const VertexId v = t.order[i];
    t.subtree[t.parent[v]] += t.subtree[v];
  }
  for (std::size_t i = n; i-- > 1;) {
    const VertexId v = t.order[i];
    const VertexId p = t.parent[v];
    const VertexId h = t.heavy[p];
    if (h == kInvalidVertex || t.subtree[v] > t.subtree[h] ||
        (t.subtree[v] == t.subtree[h] && v < h)) {
      t.heavy[p] = v;
    }
  }
  return t;
}

HeavyLight build_heavy_light(const RootedTree& t) {
  HeavyLight hl;
  hl.path_id.assign(t.n, 0);
  hl.pos_in_path.assign(t.n, 0);
  // A vertex heads a heavy path iff it is the root or a light child.
  for (const VertexId v : t.order) {
    const bool is_head =
        t.is_root(v) || t.heavy[t.parent[v]] != v;
    if (!is_head) continue;
    const auto id = static_cast<std::uint32_t>(hl.paths.size());
    hl.paths.emplace_back();
    VertexId cur = v;
    while (cur != kInvalidVertex) {
      hl.path_id[cur] = id;
      hl.pos_in_path[cur] = static_cast<std::uint32_t>(hl.paths[id].size());
      hl.paths[id].push_back(cur);
      cur = t.heavy[cur];
    }
  }
  return hl;
}

PathMax::PathMax(const RootedTree& t, const HeavyLight& hl) {
  gpos_.assign(t.n, 0);
  std::vector<std::uint32_t> path_offset(hl.paths.size() + 1, 0);
  for (std::size_t p = 0; p < hl.paths.size(); ++p) {
    path_offset[p + 1] =
        path_offset[p] + static_cast<std::uint32_t>(hl.paths[p].size());
  }
  std::vector<TimeStep> base(t.n, 0);
  head_.assign(t.n, 0);
  depth_ = t.depth;
  head_depth_.assign(t.n, 0);
  head_parent_.assign(t.n, kInvalidVertex);
  head_ptime_.assign(t.n, 0);
  for (VertexId v = 0; v < t.n; ++v) {
    gpos_[v] = path_offset[hl.path_id[v]] + hl.pos_in_path[v];
    base[gpos_[v]] = t.parent_time[v];  // 0 for the root
    const VertexId h = hl.paths[hl.path_id[v]].front();
    head_[v] = h;
    head_depth_[v] = t.depth[h];
    head_parent_[v] = t.parent[h];
    head_ptime_[v] = t.parent_time[h];
  }
  // Sparse levels concatenated into one buffer: level k spans
  // [level_off_[k], level_off_[k] + n - 2^k + 1).
  const std::uint32_t levels = t.n >= 2 ? floor_log2(t.n) + 1 : 1;
  level_off_.assign(levels + 1, 0);
  for (std::uint32_t k = 0; k < levels; ++k) {
    const std::uint32_t len = (1u << k) <= t.n ? t.n - (1u << k) + 1 : 0;
    level_off_[k + 1] = level_off_[k] + len;
  }
  sparse_.resize(level_off_[levels]);
  std::copy(base.begin(), base.end(), sparse_.begin());
  for (std::uint32_t k = 1; k < levels; ++k) {
    const std::uint32_t span = 1u << k;
    if (span > t.n) break;
    const TimeStep* prev = sparse_.data() + level_off_[k - 1];
    TimeStep* cur = sparse_.data() + level_off_[k];
    for (std::uint32_t i = 0; i + span <= t.n; ++i) {
      cur[i] = std::max(prev[i], prev[i + span / 2]);
    }
  }
}

TimeStep PathMax::range_max(std::uint32_t lo, std::uint32_t hi) const {
  REPRO_DCHECK(lo <= hi);
  const std::uint32_t len = hi - lo + 1;
  const std::uint32_t k = floor_log2(len);
  const TimeStep* level = sparse_.data() + level_off_[k];
  return std::max(level[lo], level[hi + 1 - (1u << k)]);
}

TimeStep PathMax::query(VertexId u, VertexId v) const {
  REPRO_DCHECK(!gpos_.empty());
  if (u == v) return 0;
  TimeStep best = 0;
  // Climb the vertex whose path head is deeper until both share a path; the
  // parent-edge time of each vertex on a contiguous path segment lives at
  // contiguous global positions.
  while (head_[u] != head_[v]) {
    if (head_depth_[u] < head_depth_[v]) std::swap(u, v);
    best = std::max(best, range_max(gpos_[head_[u]], gpos_[u]));
    best = std::max(best, head_ptime_[u]);
    u = head_parent_[u];
    REPRO_DCHECK(u != kInvalidVertex);
  }
  if (u != v) {
    // Same heavy path: the shallower one's edge is excluded (edges are stored
    // on the child), so the range starts one position below the shallower.
    const VertexId hi = depth_[u] < depth_[v] ? u : v;
    const VertexId lo = depth_[u] < depth_[v] ? v : u;
    best = std::max(best, range_max(gpos_[hi] + 1, gpos_[lo]));
  }
  return best;
}

}  // namespace ampccut
