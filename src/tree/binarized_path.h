// Closed-form index arithmetic on binarized paths (Definition 5).
//
// A binarized path of a heavy path with L vertices is the heap-shaped
// ("almost complete", Observation 3) binary tree with 2L-1 nodes whose L
// leaves are the path vertices in pre-order = path order (top of the heavy
// path first). Nodes are heap-indexed 1..2L-1 (children of i are 2i, 2i+1),
// which makes every structural question pure arithmetic — this is what lets
// the AMPC algorithm answer decomposition queries locally in O(1) rounds
// (the paper leans on this in the proof of Lemma 10: positions "are functions
// of only the length of the path and the position of v").
//
// Key facts implemented here (each brute-force-tested in tests/tree):
//  * internal nodes are exactly 1..L-1; leaves exactly L..2L-1;
//  * left-to-right (= pre-order) leaf order: the bottom layer first
//    (indices 2^d .. 2^d+r-1 where d = floor(log2(2L-1)), r = 2L - 2^d),
//    then the leaves of the layer above (indices L .. 2^d - 1);
//  * the label rule of Algorithm 2 line 14 — "the highest ancestor u' such
//    that the leaf is the leftmost descendant of u''s right child, else the
//    leaf itself" — is "climb while left child; stop at the first right
//    child": since leaf->u'.right must be an all-left path, the candidate is
//    unique and is the parent of the first right-child ancestor.
#pragma once

#include <bit>
#include <cstdint>

#include "support/bits.h"
#include "support/check.h"

namespace ampccut::binpath {

using NodeId = std::uint64_t;

inline std::uint64_t num_nodes(std::uint64_t leaves) {
  REPRO_DCHECK(leaves >= 1);
  return 2 * leaves - 1;
}

inline bool is_leaf(std::uint64_t leaves, NodeId x) { return x >= leaves; }

inline NodeId parent(NodeId x) { return x >> 1; }
inline NodeId left_child(NodeId x) { return 2 * x; }
inline NodeId right_child(NodeId x) { return 2 * x + 1; }
inline bool is_left_child(NodeId x) { return x != 1 && (x & 1) == 0; }
inline bool is_right_child(NodeId x) { return x != 1 && (x & 1) == 1; }

// Depth within the binarized path; the root has depth 1.
inline std::uint32_t depth(NodeId x) {
  REPRO_DCHECK(x >= 1);
  return floor_log2(x) + 1;
}

// Max depth of the tree (Observation 3: floor(log2 L) + 1 for the leaf layer
// count; expressed via the last node id).
inline std::uint32_t height(std::uint64_t leaves) {
  return depth(num_nodes(leaves));
}

// Heap index of the pre-order j-th leaf (0-based j).
inline NodeId leaf_index(std::uint64_t leaves, std::uint64_t j) {
  REPRO_DCHECK(j < leaves);
  const std::uint64_t total = num_nodes(leaves);
  const std::uint32_t d = floor_log2(total);
  const std::uint64_t bottom = 2 * leaves - (1ull << d);  // bottom-layer size
  return j < bottom ? (1ull << d) + j : leaves + (j - bottom);
}

// Inverse of leaf_index: pre-order position of a leaf node.
inline std::uint64_t leaf_position(std::uint64_t leaves, NodeId x) {
  REPRO_DCHECK(is_leaf(leaves, x));
  const std::uint64_t total = num_nodes(leaves);
  const std::uint32_t d = floor_log2(total);
  const std::uint64_t bottom = 2 * leaves - (1ull << d);
  return x >= (1ull << d) ? x - (1ull << d) : bottom + (x - leaves);
}

// Leftmost / rightmost leaf of the subtree rooted at x. Closed forms — the
// descend-left walk multiplies by 2 per step, so the step count is the
// smallest k with x·2^k >= L (equivalently 2^k >= ceil(L/x)); descend-right
// maps x -> 2x+1, i.e. after k steps (x+1)·2^k - 1, stopping at the smallest
// k with that >= L. Every internal node (ids 1..L-1) has both children in
// the almost-complete heap, so the walks never fall off the tree and the
// closed forms are exact. These sit on the hot path of the Lemma 10 climbs.
inline NodeId leftmost_leaf(std::uint64_t leaves, NodeId x) {
  if (is_leaf(leaves, x)) return x;
  return x << ceil_log2(ceil_div(leaves, x));
}
inline NodeId rightmost_leaf(std::uint64_t leaves, NodeId x) {
  if (is_leaf(leaves, x)) return x;
  return ((x + 1) << ceil_log2(ceil_div(leaves + 1, x + 1))) - 1;
}

// The label of a leaf, as a depth within this binarized path (the caller
// offsets by the expanded-meta-tree base depth). Implements Algorithm 2
// line 14: climb while the current node is a left child; if a right child is
// reached its parent is u', otherwise (reached the root) u' is the leaf.
// Climbing out of left children strips trailing zero bits, so the climb is
// one countr_zero: the first right-child ancestor is leaf >> countr_zero
// (odd), whose parent has depth floor_log2(leaf) - countr_zero(leaf).
inline std::uint32_t leaf_label(std::uint64_t leaves, NodeId leaf) {
  REPRO_DCHECK(is_leaf(leaves, leaf));
  const int tz = std::countr_zero(leaf);
  const NodeId first_right = leaf >> tz;
  if (first_right == 1) return depth(leaf);  // all-left path to the root
  return floor_log2(leaf) - static_cast<std::uint32_t>(tz);
}

// Label of the pre-order j-th leaf.
inline std::uint32_t label_at(std::uint64_t leaves, std::uint64_t j) {
  return leaf_label(leaves, leaf_index(leaves, j));
}

// Label of the leftmost leaf of the subtree rooted at x. The all-left climb
// from that leaf passes through x, so the answer only depends on x's own
// continued climb (or the leaf's own depth when the climb exits at the root).
inline std::uint32_t leftmost_leaf_label(std::uint64_t leaves, NodeId x) {
  const NodeId leaf = leftmost_leaf(leaves, x);
  return leaf_label(leaves, leaf);
}

// Minimum label over the leaves of the subtree rooted at x. Every non-
// leftmost leaf stops its climb at an internal node of the subtree, and every
// internal node u of the subtree labels exactly one leaf inside with
// depth(u); depths {depth(x), depth(x)+1, ...} are all realized, so the
// internal minimum is depth(x). The leftmost leaf's label may be smaller
// (it escapes the subtree).
inline std::uint32_t min_label_in_subtree(std::uint64_t leaves, NodeId x) {
  const std::uint32_t escape = leftmost_leaf_label(leaves, x);
  if (is_leaf(leaves, x)) return escape;
  return escape < depth(x) ? escape : depth(x);
}

inline constexpr std::uint64_t kNoPosition = static_cast<std::uint64_t>(-1);

namespace detail {

// Rightmost leaf with label < bound in the subtree rooted at x; kNoPosition
// when none. O(log^2 L).
inline NodeId rightmost_leaf_with_label_below(std::uint64_t leaves, NodeId x,
                                              std::uint32_t bound) {
  if (min_label_in_subtree(leaves, x) >= bound) return kNoPosition;
  while (!is_leaf(leaves, x)) {
    const NodeId r = right_child(x);
    if (min_label_in_subtree(leaves, r) < bound) {
      x = r;
    } else {
      x = left_child(x);
      REPRO_DCHECK(min_label_in_subtree(leaves, x) < bound);
    }
  }
  return x;
}

// Leftmost leaf with label < bound in the subtree rooted at x.
inline NodeId leftmost_leaf_with_label_below(std::uint64_t leaves, NodeId x,
                                             std::uint32_t bound) {
  if (min_label_in_subtree(leaves, x) >= bound) return kNoPosition;
  while (!is_leaf(leaves, x)) {
    const NodeId l = left_child(x);
    if (min_label_in_subtree(leaves, l) < bound) {
      x = l;
    } else {
      x = right_child(x);
      REPRO_DCHECK(min_label_in_subtree(leaves, x) < bound);
    }
  }
  return x;
}

}  // namespace detail

// Nearest pre-order position strictly left of `pos` whose leaf label is
// < bound; kNoPosition when no such leaf exists. O(log^2 L) local arithmetic.
inline std::uint64_t nearest_smaller_left(std::uint64_t leaves,
                                          std::uint64_t pos,
                                          std::uint32_t bound) {
  NodeId cur = leaf_index(leaves, pos);
  while (cur != 1) {
    if (is_right_child(cur)) {
      const NodeId sib = cur - 1;  // left sibling: leaves strictly left of pos
      const NodeId hit =
          detail::rightmost_leaf_with_label_below(leaves, sib, bound);
      if (hit != kNoPosition) return leaf_position(leaves, hit);
    }
    cur = parent(cur);
  }
  return kNoPosition;
}

// Nearest pre-order position strictly right of `pos` with leaf label < bound.
inline std::uint64_t nearest_smaller_right(std::uint64_t leaves,
                                           std::uint64_t pos,
                                           std::uint32_t bound) {
  NodeId cur = leaf_index(leaves, pos);
  while (cur != 1) {
    if (is_left_child(cur)) {
      const NodeId sib = cur + 1;  // right sibling: leaves strictly right
      const NodeId hit =
          detail::leftmost_leaf_with_label_below(leaves, sib, bound);
      if (hit != kNoPosition) return leaf_position(leaves, hit);
    }
    cur = parent(cur);
  }
  return kNoPosition;
}

// Position and label of a minimum-label leaf within pre-order positions
// [lo, hi] (inclusive). Unique when the minimum equals the level being
// queried (Definition 1); ties otherwise resolve to the leftmost.
struct RangeMinLabel {
  std::uint64_t pos = kNoPosition;
  std::uint32_t label = 0;
};

RangeMinLabel min_label_in_range(std::uint64_t leaves, std::uint64_t lo,
                                 std::uint64_t hi);

namespace detail {

// Best (min-label, then leftmost) leaf in the subtree rooted at x, O(log L):
// candidates are the leftmost leaf (escaping label) and the leaf labeled
// depth(x) (the leftmost leaf of x's right child) when x is internal.
inline RangeMinLabel best_leaf_of_subtree(std::uint64_t leaves, NodeId x) {
  const NodeId lml = leftmost_leaf(leaves, x);
  RangeMinLabel best{leaf_position(leaves, lml), leaf_label(leaves, lml)};
  if (!is_leaf(leaves, x)) {
    const NodeId owned = leftmost_leaf(leaves, right_child(x));
    const std::uint32_t d = depth(x);
    if (d < best.label) {
      best = {leaf_position(leaves, owned), d};
    }
  }
  return best;
}

inline void min_label_in_range_rec(std::uint64_t leaves, NodeId x,
                                   std::uint64_t x_lo, std::uint64_t x_hi,
                                   std::uint64_t lo, std::uint64_t hi,
                                   RangeMinLabel& best) {
  if (x_hi < lo || x_lo > hi) return;
  if (lo <= x_lo && x_hi <= hi) {
    const RangeMinLabel cand = best_leaf_of_subtree(leaves, x);
    if (best.pos == kNoPosition || cand.label < best.label ||
        (cand.label == best.label && cand.pos < best.pos)) {
      best = cand;
    }
    return;
  }
  REPRO_DCHECK(!is_leaf(leaves, x));
  const NodeId l = left_child(x);
  const NodeId r = right_child(x);
  const std::uint64_t l_hi = leaf_position(leaves, rightmost_leaf(leaves, l));
  min_label_in_range_rec(leaves, l, x_lo, l_hi, lo, hi, best);
  min_label_in_range_rec(leaves, r, l_hi + 1, x_hi, lo, hi, best);
}

}  // namespace detail

inline RangeMinLabel min_label_in_range(std::uint64_t leaves, std::uint64_t lo,
                                        std::uint64_t hi) {
  REPRO_DCHECK(lo <= hi && hi < leaves);
  RangeMinLabel best;
  detail::min_label_in_range_rec(leaves, 1, 0, leaves - 1, lo, hi, best);
  REPRO_DCHECK(best.pos != kNoPosition);
  return best;
}

}  // namespace ampccut::binpath
