#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "support/bits.h"
#include "support/rng.h"
#include "tree/low_depth.h"

namespace ampccut {
namespace {

struct Fixture {
  RootedTree rt;
  HeavyLight hl;
  LowDepthDecomposition d;

  explicit Fixture(const WGraph& g, std::uint64_t seed = 1) {
    std::vector<TimeStep> times(g.edges.size());
    for (std::size_t i = 0; i < times.size(); ++i)
      times[i] = static_cast<TimeStep>(i + 1);
    Rng rng(seed);
    std::shuffle(times.begin(), times.end(), rng);
    rt = build_rooted_tree(g.n, g.edges, times, 0);
    hl = build_heavy_light(rt);
    d = build_low_depth_decomposition(rt, hl);
  }
};

TEST(LowDepth, PathOfFourMatchesHandComputation) {
  // Worked example from the paper walk-through: path a-b-c-d gets labels
  // 3,2,1,2 (a single heavy path, binarized into a 7-node tree).
  const Fixture f(gen_path(4));
  EXPECT_EQ(f.d.label[0], 3u);
  EXPECT_EQ(f.d.label[1], 2u);
  EXPECT_EQ(f.d.label[2], 1u);
  EXPECT_EQ(f.d.label[3], 2u);
  EXPECT_EQ(f.d.height, 3u);
}

TEST(LowDepth, SingleVertexAndEdge) {
  const Fixture one(gen_path(1));
  EXPECT_EQ(one.d.label[0], 1u);
  const Fixture two(gen_path(2));
  EXPECT_EQ(two.d.height, 2u);
  // The child of the root is labeled 1 (it splits first), the root 2.
  EXPECT_EQ(two.d.label[1], 1u);
  EXPECT_EQ(two.d.label[0], 2u);
}

TEST(LowDepth, ValidOnTreeFamilies) {
  for (const WGraph& g :
       {gen_path(100), gen_star(100), gen_broom(100), gen_caterpillar(25, 3),
        gen_binary_tree(127), gen_random_tree(150, 3),
        gen_random_tree(150, 4)}) {
    const Fixture f(g);
    EXPECT_TRUE(validate_low_depth_decomposition(f.rt, f.d))
        << "n=" << g.n << " family failed Definition 1";
  }
}

TEST(LowDepth, ValidOnManyRandomTrees) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const VertexId n = 2 + static_cast<VertexId>(seed * 7 % 120);
    const Fixture f(gen_random_tree(n, seed), seed);
    ASSERT_TRUE(validate_low_depth_decomposition(f.rt, f.d)) << "seed " << seed;
  }
}

TEST(LowDepth, HeightIsPolylog) {
  // Lemma 3 / Observation 6: height O(log^2 n). Check a generous constant.
  for (const VertexId n : {64u, 256u, 1024u, 4096u}) {
    for (const WGraph& g :
         {gen_path(n), gen_random_tree(n, 5), gen_broom(n)}) {
      const Fixture f(g);
      const double lg = std::log2(static_cast<double>(n));
      EXPECT_LE(f.d.height, static_cast<std::uint32_t>(lg * lg + 2 * lg + 2))
          << "n=" << n;
    }
  }
}

TEST(LowDepth, PathHeightIsSingleLog) {
  // A path is one heavy path: height = depth of one binarized path.
  const Fixture f(gen_path(1024));
  EXPECT_LE(f.d.height, 12u);
}

TEST(LowDepth, LabelsBoundedByLeafDepth) {
  const Fixture f(gen_random_tree(300, 8));
  for (VertexId v = 0; v < 300; ++v) {
    EXPECT_GE(f.d.label[v], 1u);
    EXPECT_LE(f.d.label[v], f.d.leaf_depth[v]);
  }
}

TEST(LowDepth, LevelsPartitionVertices) {
  const Fixture f(gen_random_tree(200, 9));
  std::size_t total = 0;
  for (std::uint32_t i = 1; i <= f.d.height; ++i) {
    for (const VertexId v : f.d.levels[i]) {
      EXPECT_EQ(f.d.label[v], i);
    }
    total += f.d.levels[i].size();
  }
  EXPECT_EQ(total, 200u);
}

TEST(LowDepth, StatsRespectLemma10) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const WGraph g = gen_random_tree(150, seed);
    const Fixture f(g, seed);
    const auto stats = decomposition_stats(f.rt, f.hl, f.d);
    EXPECT_LE(stats.max_boundary_edges, 2u) << "Lemma 10 violated, seed " << seed;
    EXPECT_EQ(stats.height, f.d.height);
    EXPECT_LE(stats.max_light_on_root_path, floor_log2(g.n) + 1);
  }
}

}  // namespace
}  // namespace ampccut
