// Determinism of the parallel recursion drivers (DESIGN.md "Parallel
// recursion scheduling"): for every thread count, the Karger–Stein skeleton
// and the APX-SPLIT greedy loop must return bit-identical results — weight,
// witness side, RecursionStats, and (for the model backends) every counted
// metric. threads == 1 is the historical depth-first path; threads > 1 are
// dedicated pools, so the task-DAG machinery is exercised even on a
// single-core host where the shared pool degenerates to sequential.
//
// Also holds the unit tests of the ThreadPool::TaskGroup primitive the
// drivers are built on (nested submission, help-while-wait, exception
// propagation, parallel_for reentrancy) — this suite plus
// test_runtime_concurrency is what the ThreadSanitizer CI job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "ampc_algo/kcut_ampc.h"
#include "ampc_algo/mincut_ampc.h"
#include "graph/generators.h"
#include "mincut/kcut.h"
#include "mincut/mincut_recursive.h"
#include "mpc/gn_baseline.h"
#include "support/threadpool.h"

namespace ampccut {
namespace {

constexpr std::uint32_t kThreadCounts[] = {2, 3, 5};

ApproxMinCutOptions base_opts(std::uint64_t seed) {
  ApproxMinCutOptions o;
  o.seed = seed;
  o.trials = 2;
  o.local_threshold = 16;
  return o;
}

// A multigraph with heavy parallel-edge bundles (contractions produce these;
// the radix compaction in contract_to_size must merge them identically).
WGraph gen_multigraph(VertexId n, std::uint64_t seed) {
  WGraph g = gen_random_connected(n, 3ull * n, seed);
  const std::size_t m = g.edges.size();
  for (std::size_t e = 0; e < m; e += 3) {
    g.edges.push_back(g.edges[e]);  // duplicate every third edge
    g.edges.push_back({g.edges[e].u, g.edges[e].v, g.edges[e].w + 2});
  }
  return g;
}

WGraph gen_star(VertexId n) {
  WGraph g;
  g.n = n;
  for (VertexId v = 1; v < n; ++v) g.add_edge(0, v, 1 + v % 3);
  return g;
}

void expect_same_mincut(const WGraph& g, const ApproxMinCutOptions& opt) {
  ApproxMinCutOptions seq = opt;
  seq.threads = 1;
  const ApproxMinCutResult ref = approx_min_cut(g, seq);
  EXPECT_EQ(cut_weight(g, ref.side), ref.weight);
  for (const std::uint32_t threads : kThreadCounts) {
    ApproxMinCutOptions par = opt;
    par.threads = threads;
    const ApproxMinCutResult got = approx_min_cut(g, par);
    EXPECT_EQ(got.weight, ref.weight) << "threads " << threads;
    EXPECT_EQ(got.side, ref.side) << "threads " << threads;
    EXPECT_EQ(got.stats, ref.stats) << "threads " << threads;
  }
}

TEST(ParallelRecursion, RandomGraphsMatchSequential) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const WGraph g = gen_random_connected(220, 900, seed + 3);
    expect_same_mincut(g, base_opts(seed));
  }
}

TEST(ParallelRecursion, WeightedGraphsMatchSequential) {
  WGraph g = gen_erdos_renyi(140, 0.08, 17);
  randomize_weights(g, 50, 5);
  if (!is_connected(g)) GTEST_SKIP() << "generator produced disconnected g";
  expect_same_mincut(g, base_opts(9));
}

TEST(ParallelRecursion, MultigraphMatchesSequential) {
  expect_same_mincut(gen_multigraph(150, 21), base_opts(2));
}

TEST(ParallelRecursion, StarMatchesSequential) {
  // Adversarial for the contraction schedule: every edge is a bridge to the
  // hub, so singleton bags dominate and branches collapse fast.
  expect_same_mincut(gen_star(180), base_opts(4));
}

TEST(ParallelRecursion, DisconnectedGuardMatchesSequential) {
  // The disconnected short-circuit runs before any pool is touched; the
  // zero-weight component witness must be identical for every thread count.
  expect_same_mincut(gen_two_cycles(40), base_opts(1));
}

TEST(ParallelRecursion, OracleTrackerMatchesSequential) {
  ApproxMinCutOptions o = base_opts(6);
  o.use_oracle_tracker = true;
  expect_same_mincut(gen_random_connected(180, 700, 31), o);
}

TEST(ParallelRecursion, AmpcBackendMetricsAreThreadCountIndependent) {
  const WGraph g = gen_random_connected(200, 800, 77);
  ampc::AmpcMinCutOptions seq;
  seq.recursion = base_opts(11);
  seq.recursion.threads = 1;
  const ampc::AmpcMinCutReport ref = ampc::ampc_approx_min_cut(g, seq);
  for (const std::uint32_t threads : kThreadCounts) {
    ampc::AmpcMinCutOptions par = seq;
    par.recursion.threads = threads;
    const ampc::AmpcMinCutReport got = ampc::ampc_approx_min_cut(g, par);
    EXPECT_EQ(got.weight, ref.weight);
    EXPECT_EQ(got.side, ref.side);
    EXPECT_EQ(got.stats, ref.stats);
    EXPECT_EQ(got.measured_rounds, ref.measured_rounds);
    EXPECT_EQ(got.charged_rounds, ref.charged_rounds);
    EXPECT_EQ(got.levels_used, ref.levels_used);
    EXPECT_EQ(got.dht_reads, ref.dht_reads);
    EXPECT_EQ(got.dht_writes, ref.dht_writes);
    EXPECT_EQ(got.max_machine_traffic, ref.max_machine_traffic);
    EXPECT_EQ(got.peak_table_words, ref.peak_table_words);
    EXPECT_EQ(got.budget_violations, ref.budget_violations);
  }
}

TEST(ParallelRecursion, MpcBackendMatchesSequential) {
  const WGraph g = gen_random_connected(160, 650, 51);
  mpc::MpcMinCutOptions seq;
  seq.recursion = base_opts(13);
  seq.recursion.threads = 1;
  const mpc::MpcMinCutReport ref = mpc::mpc_gn_min_cut(g, seq);
  for (const std::uint32_t threads : kThreadCounts) {
    mpc::MpcMinCutOptions par = seq;
    par.recursion.threads = threads;
    const mpc::MpcMinCutReport got = mpc::mpc_gn_min_cut(g, par);
    EXPECT_EQ(got.weight, ref.weight);
    EXPECT_EQ(got.side, ref.side);
    EXPECT_EQ(got.rounds, ref.rounds);
    EXPECT_EQ(got.messages, ref.messages);
  }
}

TEST(ParallelKCut, ApproxSplitterMatchesSequential) {
  const WGraph g = gen_communities(120, 4, 8.0 / 120, 2, 19);
  ApproxMinCutOptions seq = base_opts(23);
  seq.threads = 1;
  const ApproxKCutResult ref = apx_split_k_cut_approx(g, 4, seq);
  for (const std::uint32_t threads : kThreadCounts) {
    ApproxMinCutOptions par = seq;
    par.threads = threads;
    const ApproxKCutResult got = apx_split_k_cut_approx(g, 4, par);
    EXPECT_EQ(got.weight, ref.weight) << "threads " << threads;
    EXPECT_EQ(got.part, ref.part) << "threads " << threads;
    EXPECT_EQ(got.num_parts, ref.num_parts);
    EXPECT_EQ(got.iterations, ref.iterations);
  }
}

TEST(ParallelKCut, AmpcWrapperMatchesSequential) {
  const WGraph g = gen_communities(100, 3, 8.0 / 100, 2, 29);
  ampc::AmpcMinCutOptions seq;
  seq.recursion = base_opts(31);
  seq.recursion.trials = 1;
  seq.recursion.threads = 1;
  const ampc::AmpcKCutReport ref = ampc::ampc_apx_split_k_cut(g, 3, seq);
  for (const std::uint32_t threads : kThreadCounts) {
    ampc::AmpcMinCutOptions par = seq;
    par.recursion.threads = threads;
    const ampc::AmpcKCutReport got = ampc::ampc_apx_split_k_cut(g, 3, par);
    EXPECT_EQ(got.result.weight, ref.result.weight);
    EXPECT_EQ(got.result.part, ref.result.part);
    EXPECT_EQ(got.measured_rounds, ref.measured_rounds);
    EXPECT_EQ(got.charged_rounds, ref.charged_rounds);
  }
}

// --- TaskGroup primitive -----------------------------------------------

TEST(TaskGroup, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  ThreadPool::TaskGroup group(pool);
  for (int i = 1; i <= 100; ++i) {
    group.run([&sum, i] { sum.fetch_add(i); });
  }
  group.wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(TaskGroup, NestedSubmissionFromInsideTasks) {
  // The recursion shape: tasks spawn their own groups and wait on them while
  // running on the pool. Three levels of fan-out, counted exactly.
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    ThreadPool::TaskGroup group(pool);
    for (int b = 0; b < 3; ++b) {
      group.run([&recurse, depth] { recurse(depth - 1); });
    }
    group.wait();
  };
  recurse(3);
  EXPECT_EQ(leaves.load(), 27);
}

TEST(TaskGroup, ExceptionsPropagateToWait) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.run([i] {
      if (i == 5) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(TaskGroup, SingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  int calls = 0;
  ThreadPool::TaskGroup group(pool);
  group.run([&calls] { ++calls; });
  EXPECT_EQ(calls, 1);  // ran inline, before wait()
  group.wait();
  EXPECT_EQ(calls, 1);
}

TEST(TaskGroup, ParallelForFromInsideTasks) {
  // Tasks may issue rounds (the AMPC runtime does): parallel_for must be
  // callable from pool tasks, concurrently.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  ThreadPool::TaskGroup group(pool);
  for (int t = 0; t < 6; ++t) {
    group.run([&pool, &total] {
      pool.parallel_for(50, [&total](std::size_t) { total.fetch_add(1); });
    });
  }
  group.wait();
  EXPECT_EQ(total.load(), 300);
}

}  // namespace
}  // namespace ampccut
