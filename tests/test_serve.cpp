// The serving tier's property suite (DESIGN.md "Cut-query serving tier").
//
// The contract under test: every answer a CutServer ever returns equals the
// direct max-flow on the graph of the snapshot that served it — across the
// six-family generator zoo with weighted/multigraph/disconnected variants,
// with the kernel front-end on or off, through the single-shot path, the
// batch fan-out at any pool width, and the sharded LRU cache (whose hit/
// miss/eviction counters are asserted EXACTLY — the cache must be an
// invisible layer, not an approximation). Rebuild faults may only cost
// freshness (RetriesExhaustedError with the old epoch still serving), never
// correctness. Suite name "Serve" rides the tsan/asan CI filters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exact/brute_force.h"
#include "exact/stoer_wagner.h"
#include "flow/dinic.h"
#include "flow/gomory_hu.h"
#include "graph/generators.h"
#include "serve/cut_server.h"
#include "serve/scenarios.h"
#include "support/errors.h"
#include "support/rng.h"
#include "support/threadpool.h"

namespace ampccut {
namespace {

using serve::CutServer;
using serve::CutServerOptions;
using serve::QueryPair;

// Base zoo: the six generator families (the kernel suite's zoo, reused so
// the serving tier is pinned on the same distribution of shapes).
WGraph serve_zoo_base(std::uint64_t i) {
  const std::uint64_t seed = i * 1319 + 29;
  const VertexId n = 8 + static_cast<VertexId>(i % 8);  // 8..15
  switch (i % 6) {
    case 0:
      return gen_erdos_renyi(n, 0.4, seed);
    case 1:
      return gen_planted_cut(n, 0.75, 1 + static_cast<VertexId>(i % 3), seed);
    case 2:
      return gen_communities(3 * n, 3, 0.7, 2, seed);
    case 3:
      return gen_barbell(n);
    case 4:
      return gen_random_tree(n, seed);
    default:
      return gen_grid(3, 1 + n / 3);
  }
}

// Variant layer: 0 = as generated, 1 = random weights, 2 = multigraph
// (first three edges duplicated), 3 = disconnected (a far triangle).
WGraph serve_zoo_case(std::uint64_t i) {
  WGraph g = serve_zoo_base(i);
  const std::uint64_t seed = i * 1319 + 101;
  switch (i % 4) {
    case 1:
      randomize_weights(g, 6, seed);
      break;
    case 2:
      for (std::size_t e = 0; e < 3 && e < g.edges.size(); ++e) {
        g.edges.push_back(g.edges[e]);
      }
      break;
    case 3: {
      const VertexId base = g.n;
      g.n += 3;
      g.add_edge(base, base + 1, 2);
      g.add_edge(base + 1, base + 2, 2);
      g.add_edge(base + 2, base, 2);
      break;
    }
    default:
      break;
  }
  return g;
}

// All pairs on small graphs, a seeded sample on larger ones — the
// differential check multiplies by a Dinic run per pair.
std::vector<QueryPair> zoo_pairs(const WGraph& g, std::uint64_t seed) {
  std::vector<QueryPair> pairs;
  if (g.n <= 20) {
    for (VertexId s = 0; s < g.n; ++s) {
      for (VertexId t = s + 1; t < g.n; ++t) pairs.push_back({s, t});
    }
    return pairs;
  }
  Rng rng(seed);
  while (pairs.size() < 60) {
    const auto s = static_cast<VertexId>(rng.next_below(g.n));
    const auto t = static_cast<VertexId>(rng.next_below(g.n));
    if (s != t) pairs.push_back({s, t});
  }
  return pairs;
}

// --- Differential correctness ----------------------------------------------

TEST(Serve, ZooAnswersEqualDirectMaxFlow) {
  for (std::uint64_t i = 0; i < 24; ++i) {
    const WGraph g = serve_zoo_case(i);
    CutServerOptions opt;
    opt.kernel = kernel::enabled_defaults();
    CutServer server(g, opt);
    for (const auto& p : zoo_pairs(g, i * 7 + 5)) {
      EXPECT_EQ(server.query(p.s, p.t), st_min_cut(g, p.s, p.t))
          << "zoo " << i << " pair " << p.s << "," << p.t;
    }
  }
}

TEST(Serve, KernelOnAndOffServeBitIdenticalAnswers) {
  for (std::uint64_t i = 0; i < 24; ++i) {
    const WGraph g = serve_zoo_case(i);
    CutServerOptions on;
    on.kernel = kernel::enabled_defaults();
    CutServerOptions off;  // kernel.enabled defaults to false
    CutServer with_kernel(g, on);
    CutServer without(g, off);
    for (const auto& p : zoo_pairs(g, i * 7 + 6)) {
      EXPECT_EQ(with_kernel.query(p.s, p.t), without.query(p.s, p.t))
          << "zoo " << i;
    }
  }
}

TEST(Serve, KernelMergePassRecordsProvenance) {
  // A connected multigraph: the merge-only pass must fire, shrink the flow
  // edge count, leave the vertex set alone — and never change an answer.
  WGraph g = gen_erdos_renyi(10, 0.5, 7);
  for (std::size_t e = 0; e < 4 && e < g.edges.size(); ++e) {
    g.edges.push_back(g.edges[e]);
  }
  ASSERT_TRUE(is_connected(g));
  CutServerOptions opt;
  opt.kernel = kernel::enabled_defaults();
  CutServer server(g, opt);
  const auto snap = server.snapshot();
  EXPECT_TRUE(snap->stats().kernelized);
  EXPECT_GE(snap->stats().merged_parallel, 4U);
  EXPECT_LT(snap->stats().flow_edges, snap->stats().m);
  EXPECT_EQ(snap->n(), g.n);
  EXPECT_EQ(snap->graph().m(), g.m());  // snapshot keeps the ORIGINAL graph
  for (const auto& p : zoo_pairs(g, 99)) {
    EXPECT_EQ(server.query(p.s, p.t), st_min_cut(g, p.s, p.t));
  }
}

TEST(Serve, GlobalMinCutMatchesStoerWagner) {
  for (std::uint64_t i = 0; i < 24; ++i) {
    const WGraph g = serve_zoo_case(i);
    CutServer server(g);
    const MinCutResult got = server.snapshot()->global_min_cut();
    const MinCutResult truth = stoer_wagner_min_cut(g);
    EXPECT_EQ(got.weight, truth.weight) << "zoo " << i;
    EXPECT_EQ(cut_weight(g, got.side), got.weight) << "zoo " << i;
  }
}

// --- Batch path -------------------------------------------------------------

TEST(Serve, BatchIsBitIdenticalToSequentialAtEveryPoolWidth) {
  for (std::uint64_t i = 0; i < 24; i += 3) {
    const WGraph g = serve_zoo_case(i);
    const auto pairs = zoo_pairs(g, i * 7 + 8);

    CutServerOptions opt;
    opt.cache_capacity = 0;  // the raw tree path, no cache interleaving
    CutServer server(g, opt);
    std::vector<Weight> sequential;
    sequential.reserve(pairs.size());
    for (const auto& p : pairs) sequential.push_back(server.query(p.s, p.t));
    EXPECT_EQ(server.query_batch(pairs), sequential) << "zoo " << i;

    for (const std::uint32_t threads : {1U, 2U, 4U}) {
      ThreadPool pool(threads);
      CutServerOptions popt;
      popt.cache_capacity = 0;
      popt.pool = &pool;
      CutServer pooled(g, popt);
      EXPECT_EQ(pooled.query_batch(pairs), sequential)
          << "zoo " << i << " threads " << threads;
    }
  }
}

TEST(Serve, BatchOnPinnedSnapshotIgnoresLaterSwaps) {
  const WGraph g1 = gen_planted_cut(24, 0.6, 2, 5);
  WGraph g2 = g1;
  randomize_weights(g2, 9, 77);
  CutServer server(g1);
  const auto pin = server.snapshot();
  server.update_graph(g2);
  ASSERT_EQ(server.snapshot()->epoch(), 2U);
  const auto pairs = zoo_pairs(g1, 3);
  const auto pinned = server.query_batch_on(pin, pairs);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pinned[i], st_min_cut(g1, pairs[i].s, pairs[i].t));
  }
  const auto fresh = server.query_batch(pairs);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(fresh[i], st_min_cut(g2, pairs[i].s, pairs[i].t));
  }
}

// --- Cache semantics: counters asserted exactly -----------------------------

TEST(Serve, CacheCountsHitsAndMissesExactly) {
  const WGraph g = gen_path(6);
  CutServerOptions opt;
  opt.cache_shards = 1;
  opt.cache_capacity = 16;
  CutServer server(g, opt);

  EXPECT_EQ(server.query(0, 5), 1U);  // miss, inserted
  EXPECT_EQ(server.query(0, 5), 1U);  // hit
  EXPECT_EQ(server.query(5, 0), 1U);  // hit: (s, t) is normalized
  EXPECT_EQ(server.query(1, 4), 1U);  // miss
  auto s = server.stats();
  EXPECT_EQ(s.cache_misses, 2U);
  EXPECT_EQ(s.cache_hits, 2U);
  EXPECT_EQ(s.cache_evictions, 0U);
  EXPECT_EQ(s.queries, 4U);

  // The batch path consults the same cache: three resident pairs hit, the
  // new one misses.
  const std::vector<QueryPair> batch = {{0, 5}, {5, 0}, {1, 4}, {2, 3}};
  const auto answers = server.query_batch(batch);
  EXPECT_EQ(answers, (std::vector<Weight>{1, 1, 1, 1}));
  s = server.stats();
  EXPECT_EQ(s.cache_misses, 3U);
  EXPECT_EQ(s.cache_hits, 5U);
  EXPECT_EQ(s.batch_queries, 4U);
}

TEST(Serve, CacheEvictsLeastRecentlyUsedAndCountsIt) {
  const WGraph g = gen_path(8);
  CutServerOptions opt;
  opt.cache_shards = 1;  // one shard => one LRU list, fully predictable
  opt.cache_capacity = 2;
  CutServer server(g, opt);

  (void)server.query(0, 1);  // miss; resident {01}
  (void)server.query(1, 2);  // miss; resident {12, 01}
  (void)server.query(2, 3);  // miss; evicts 01 -> resident {23, 12}
  auto s = server.stats();
  EXPECT_EQ(s.cache_misses, 3U);
  EXPECT_EQ(s.cache_evictions, 1U);

  (void)server.query(0, 1);  // miss again (was evicted); evicts 12
  (void)server.query(2, 3);  // hit (still resident)
  s = server.stats();
  EXPECT_EQ(s.cache_misses, 4U);
  EXPECT_EQ(s.cache_hits, 1U);
  EXPECT_EQ(s.cache_evictions, 2U);
}

TEST(Serve, CacheOffServesIdenticalAnswersWithZeroCounters) {
  const WGraph g = serve_zoo_case(9);
  CutServerOptions off;
  off.cache_capacity = 0;
  CutServerOptions on;
  on.cache_capacity = 1024;
  CutServer plain(g, off);
  CutServer cached(g, on);
  const auto pairs = zoo_pairs(g, 41);
  for (int rep = 0; rep < 2; ++rep) {  // second pass = all hits on `cached`
    for (const auto& p : pairs) {
      EXPECT_EQ(plain.query(p.s, p.t), cached.query(p.s, p.t));
    }
  }
  const auto s = plain.stats();
  EXPECT_EQ(s.cache_hits, 0U);
  EXPECT_EQ(s.cache_misses, 0U);
  EXPECT_EQ(s.cache_evictions, 0U);
  const auto c = cached.stats();
  EXPECT_EQ(c.cache_misses, pairs.size());
  EXPECT_EQ(c.cache_hits, pairs.size());
}

TEST(Serve, EpochKeyedCacheNeedsNoFlushOnSwap) {
  // Same graph re-published as epoch 2: answers are unchanged, but cache
  // keys embed the epoch, so the first query after the swap is a MISS — a
  // retired epoch's entries can never serve the new one.
  const WGraph g = gen_path(5);
  CutServerOptions opt;
  opt.cache_shards = 1;
  opt.cache_capacity = 8;
  CutServer server(g, opt);
  EXPECT_EQ(server.query(0, 4), 1U);
  server.update_graph(g);
  EXPECT_EQ(server.snapshot()->epoch(), 2U);
  EXPECT_EQ(server.query(0, 4), 1U);
  const auto s = server.stats();
  EXPECT_EQ(s.cache_misses, 2U);
  EXPECT_EQ(s.cache_hits, 0U);
}

// --- Epoch discipline -------------------------------------------------------

TEST(Serve, UpdateGraphSwapsEpochWhileOldPinKeepsServing) {
  const WGraph g1 = gen_barbell(8);
  const WGraph g2 = gen_grid(4, 5);
  CutServer server(g1);
  const auto pin = server.snapshot();
  EXPECT_EQ(pin->epoch(), 1U);
  server.update_graph(g2);
  const auto now = server.snapshot();
  EXPECT_EQ(now->epoch(), 2U);
  EXPECT_EQ(now->n(), g2.n);
  // The retired snapshot is immutable and still answers for ITS graph.
  EXPECT_EQ(pin->query(0, 7), st_min_cut(g1, 0, 7));
  EXPECT_EQ(now->query(0, 19), st_min_cut(g2, 0, 19));
  const auto s = server.stats();
  EXPECT_EQ(s.rebuilds, 1U);
  EXPECT_EQ(s.snapshots_published, 2U);
}

// --- Error taxonomy ---------------------------------------------------------

TEST(Serve, InvalidPairsThrowTypedOnEveryPath) {
  const WGraph g = gen_path(4);
  CutServerOptions opt;
  opt.cache_shards = 1;
  opt.cache_capacity = 8;
  CutServer server(g, opt);

  EXPECT_THROW((void)server.query(0, 0), InvalidQueryError);
  EXPECT_THROW((void)server.query(0, 4), InvalidQueryError);
  EXPECT_THROW((void)server.query(9, 1), InvalidQueryError);
  EXPECT_THROW((void)server.query_batch({{0, 1}, {2, 2}}), InvalidQueryError);
  EXPECT_THROW((void)server.snapshot()->query(0, 7), InvalidQueryError);
  EXPECT_THROW((void)server.snapshot()->tree().min_cut(7, 0),
               InvalidQueryError);
  try {
    (void)server.query(3, 3);
    FAIL() << "expected InvalidQueryError";
  } catch (const Error& e) {  // the taxonomy root catches it too
    EXPECT_NE(std::string(e.what()).find("invalid cut query"),
              std::string::npos);
  }
  // Documented subtlety: a rejected query still consulted the cache (one
  // miss each), but a poison pair never occupies a slot — so re-asking does
  // not turn into a bogus hit.
  const auto s = server.stats();
  EXPECT_EQ(s.cache_hits, 0U);
  EXPECT_GE(s.cache_misses, 5U);
}

// --- Degenerate and extreme inputs ------------------------------------------

TEST(Serve, SingleAndTwoVertexGraphs) {
  WGraph one;
  one.n = 1;
  CutServer s1(one);
  EXPECT_EQ(s1.snapshot()->epoch(), 1U);
  EXPECT_EQ(s1.snapshot()->global_min_cut().weight, kInfiniteWeight);
  EXPECT_TRUE(s1.snapshot()->global_min_cut().side.empty());
  EXPECT_THROW((void)s1.query(0, 0), InvalidQueryError);

  WGraph two;
  two.n = 2;
  two.add_edge(0, 1, 9);
  CutServer s2(two);
  EXPECT_EQ(s2.query(0, 1), 9U);
  EXPECT_EQ(s2.query(1, 0), 9U);
  EXPECT_EQ(s2.snapshot()->global_min_cut().weight, 9U);
}

TEST(Serve, DisconnectedGraphServesZeroAcrossComponents) {
  WGraph g = gen_erdos_renyi(7, 0.8, 3);
  const VertexId base = g.n;
  g.n += 4;
  g.add_edge(base, base + 1, 5);
  g.add_edge(base + 1, base + 2, 5);
  g.add_edge(base + 2, base + 3, 5);
  ASSERT_FALSE(is_connected(g));
  CutServerOptions opt;
  opt.kernel = kernel::enabled_defaults();  // must be bypassed, not crash
  CutServer server(g, opt);
  EXPECT_EQ(server.snapshot()->stats().components, 2U);
  EXPECT_FALSE(server.snapshot()->stats().kernelized);
  for (VertexId s = 0; s < base; ++s) {
    for (VertexId t = base; t < g.n; ++t) {
      EXPECT_EQ(server.query(s, t), 0U);
    }
  }
  EXPECT_EQ(server.query(base, base + 3), 5U);  // within-component is exact
  EXPECT_EQ(server.snapshot()->global_min_cut().weight, 0U);
}

TEST(Serve, InfiniteWeightEdgesServeSaturated) {
  WGraph g;
  g.n = 5;
  g.add_edge(0, 1, kInfiniteWeight);
  g.add_edge(1, 2, 5);
  g.add_edge(2, 3, kInfiniteWeight);
  g.add_edge(3, 4, 2);
  g.add_edge(4, 0, 1);
  CutServer server(g);
  for (VertexId s = 0; s < g.n; ++s) {
    for (VertexId t = s + 1; t < g.n; ++t) {
      EXPECT_EQ(server.query(s, t), st_min_cut(g, s, t))
          << "pair " << s << "," << t;
    }
  }
  EXPECT_EQ(server.query(0, 1), kInfiniteWeight);
}

// --- Served k-cut and scenarios ---------------------------------------------

TEST(Serve, SnapshotKCutMatchesDirectConstruction) {
  const WGraph g = gen_communities(48, 4, 0.5, 2, 21);
  CutServer server(g);
  for (const std::uint32_t k : {2U, 3U, 4U}) {
    const GHKCut served = server.snapshot()->k_cut(k);
    const GHKCut direct = gomory_hu_k_cut(g, k);
    EXPECT_EQ(served.weight, direct.weight) << "k=" << k;
    EXPECT_EQ(served.part, direct.part) << "k=" << k;
    EXPECT_EQ(k_cut_weight(g, served.part), served.weight) << "k=" << k;
  }
}

TEST(Serve, ScenarioReportsAreConsistentWithDirectSolvers) {
  const WGraph g = gen_planted_cut(60, 0.4, 3, 17);
  CutServer server(g);

  ampc::AmpcMinCutOptions mopt;
  mopt.recursion.seed = 5;
  mopt.recursion.trials = 2;
  const auto community = serve::serve_community_cut(server, mopt);
  const Weight truth = stoer_wagner_min_cut(g).weight;
  EXPECT_EQ(community.epoch, 1U);
  EXPECT_EQ(community.cut.weight, truth);  // served global cut is exact
  EXPECT_EQ(cut_weight(g, community.cut.side), community.cut.weight);
  EXPECT_GE(community.ampc.weight, truth);  // the cross-check approximates

  const std::vector<QueryPair> pairs = {{0, 59}, {1, 30}, {12, 45}};
  const auto rel = serve::serve_network_reliability(server, pairs);
  ASSERT_EQ(rel.pair_capacity.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(rel.pair_capacity[i], st_min_cut(g, pairs[i].s, pairs[i].t));
  }
  EXPECT_EQ(rel.weakest.weight, truth);
  Weight crossing = 0;
  for (const auto& e : rel.weakest_links) crossing = sat_add(crossing, e.w);
  EXPECT_EQ(crossing, rel.weakest.weight);

  const auto kc = serve::serve_kcut_partition(server, 3);
  EXPECT_EQ(kc.epoch, 1U);
  EXPECT_EQ(k_cut_weight(g, kc.cut.part), kc.cut.weight);
  std::uint32_t covered = 0;
  for (const auto sz : kc.part_sizes) covered += sz;
  EXPECT_EQ(covered, g.n);
}

// --- Faulted rebuilds -------------------------------------------------------

TEST(Serve, ScheduledFaultRecoveryIsBitIdentical) {
  const WGraph g = gen_random_connected(20, 45, 31);
  CutServer clean(g);

  CutServerOptions opt;
  // Scheduled faults fire on attempt 0 only (ampc/fault.h), so recovery is
  // guaranteed within max_attempts = 3; round = epoch, machine = step.
  opt.fault.scheduled.push_back({1, 3, ampc::FaultKind::kMachineCrash});
  opt.fault.scheduled.push_back({1, 7, ampc::FaultKind::kStagedWriteLoss});
  opt.retry.max_attempts = 3;
  CutServer faulted(g, opt);

  EXPECT_EQ(faulted.stats().build_retries, 1U);  // one discarded attempt
  EXPECT_EQ(faulted.snapshot()->stats().build_attempts, 2U);
  EXPECT_EQ(clean.snapshot()->stats().build_attempts, 1U);
  // The replayed build serves answers bit-identical to the fault-free one.
  for (const auto& p : zoo_pairs(g, 13)) {
    EXPECT_EQ(faulted.query(p.s, p.t), clean.query(p.s, p.t));
  }
  EXPECT_EQ(faulted.snapshot()->tree().parent, clean.snapshot()->tree().parent);
  EXPECT_EQ(faulted.snapshot()->tree().parent_cut_weight,
            clean.snapshot()->tree().parent_cut_weight);
}

TEST(Serve, ConstructionUnderCertainFaultsThrowsRetriesExhausted) {
  const WGraph g = gen_path(6);
  CutServerOptions opt;
  opt.fault.seed = 11;
  opt.fault.crash_rate = 1.0;  // every attempt dies at the first step
  opt.retry.max_attempts = 2;
  EXPECT_THROW(CutServer server(g, opt), RetriesExhaustedError);
}

TEST(Serve, ExhaustedUpdateKeepsOldEpochServingThenRecovers) {
  const WGraph g1 = gen_barbell(6);
  const WGraph g2 = gen_grid(3, 4);
  CutServer server(g1);
  const Weight before = server.query(0, 5);

  ampc::FaultPlan certain;
  certain.seed = 4;
  certain.crash_rate = 1.0;
  ampc::RetryPolicy tight;
  tight.max_attempts = 2;
  server.set_fault(certain, tight);
  try {
    server.update_graph(g2);
    FAIL() << "expected RetriesExhaustedError";
  } catch (const RetriesExhaustedError& e) {
    EXPECT_EQ(e.round(), 2U);  // the epoch that failed to publish
    EXPECT_EQ(e.attempts(), 2U);
  }
  // Degraded freshness, never a wrong answer: epoch 1 still serves g1.
  EXPECT_EQ(server.snapshot()->epoch(), 1U);
  EXPECT_EQ(server.query(0, 5), before);
  EXPECT_EQ(server.stats().rebuilds, 0U);
  EXPECT_EQ(server.stats().build_retries, 2U);

  server.set_fault({}, {});  // chaos off; the next update must land
  server.update_graph(g2);
  EXPECT_EQ(server.snapshot()->epoch(), 2U);
  EXPECT_EQ(server.query(0, 5), st_min_cut(g2, 0, 5));
}

}  // namespace
}  // namespace ampccut
