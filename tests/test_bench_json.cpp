// The benchmark trajectory schema (support/bench_report.h, BENCHMARKS.md):
// every document the reporter emits must round-trip through the project's
// own JSON parser and satisfy the v1 schema — for an empty run, a labelled
// run, and merged suites — since tools/run_benches and CI both gate on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>

#include "bench_util.h"
#include "support/bench_report.h"
#include "support/json.h"

namespace ampccut {
namespace {

using bench::BenchReporter;
using bench::BenchResult;
using json::Value;

// dump -> parse -> dump must be a fixed point (and the parse must succeed).
Value roundtrip(const Value& v) {
  const std::string text = v.dump();
  std::string err;
  std::optional<Value> back = Value::parse(text, &err);
  EXPECT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->dump(), text);
  return std::move(*back);
}

TEST(JsonValue, ScalarsRoundTrip) {
  Value o = Value::object();
  o["u64_max"] = std::numeric_limits<std::uint64_t>::max();
  o["i64_min"] = std::numeric_limits<std::int64_t>::min();
  o["pi"] = 3.141592653589793;
  o["neg"] = -0.25;
  o["flag"] = true;
  o["none"] = Value();
  o["text"] = "quote \" backslash \\ newline \n tab \t unicode \x01";
  const Value back = roundtrip(o);
  EXPECT_EQ(back.find("u64_max")->as_uint(),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(back.find("i64_min")->as_int(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_DOUBLE_EQ(back.find("pi")->as_double(), 3.141592653589793);
  EXPECT_DOUBLE_EQ(back.find("neg")->as_double(), -0.25);
  EXPECT_TRUE(back.find("flag")->as_bool());
  EXPECT_TRUE(back.find("none")->is_null());
  EXPECT_EQ(back.find("text")->as_string(), o.find("text")->as_string());
}

TEST(JsonValue, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "{\"a\":1} trailing", "\"unterminated",
        "nan", "01x", "{\"a\" 1}"}) {
    std::string err;
    EXPECT_FALSE(Value::parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(BenchJson, EmptyRunIsSchemaValid) {
  BenchReporter rep("empty_suite");
  const Value doc = roundtrip(rep.to_json());
  EXPECT_EQ(bench::validate_bench_json(doc), "");
  std::string suite;
  std::vector<BenchResult> results;
  std::string err;
  ASSERT_TRUE(bench::parse_suite(doc, &suite, &results, &err)) << err;
  EXPECT_EQ(suite, "empty_suite");
  EXPECT_TRUE(results.empty());
}

BenchResult labelled_result() {
  BenchResult r;
  r.name = "table_put_commit";
  r.group = "ampc";
  r.params["n"] = 16384;
  r.params["eps_x10"] = 5;
  r.ns_per_op = 11.25;
  r.iterations = 5;
  r.measured_rounds = 3;
  r.charged_rounds = 2;
  r.model_rounds = 5;
  r.dht_read_words = 123;
  r.dht_write_words = 456;
  r.max_machine_traffic = 99;
  r.peak_table_words = 1u << 20;
  r.budget_violations = 1;
  r.extra["ratio"] = 1.5;
  return r;
}

TEST(BenchJson, LabelledRunRoundTripsFieldForField) {
  BenchReporter rep("micro");
  rep.add(labelled_result());
  BenchResult exact;
  exact.name = "stoer_wagner";
  exact.group = "exact";
  exact.ns_per_op = 2.5e9;
  rep.add(exact);

  const Value doc = roundtrip(rep.to_json());
  EXPECT_EQ(bench::validate_bench_json(doc), "");

  std::string suite;
  std::vector<BenchResult> results;
  std::string err;
  ASSERT_TRUE(bench::parse_suite(doc, &suite, &results, &err)) << err;
  EXPECT_EQ(suite, "micro");
  ASSERT_EQ(results.size(), 2u);
  const BenchResult& r = results[0];
  const BenchResult want = labelled_result();
  EXPECT_EQ(r.name, want.name);
  EXPECT_EQ(r.group, want.group);
  EXPECT_EQ(r.params, want.params);
  EXPECT_DOUBLE_EQ(r.ns_per_op, want.ns_per_op);
  EXPECT_EQ(r.iterations, want.iterations);
  EXPECT_EQ(r.measured_rounds, want.measured_rounds);
  EXPECT_EQ(r.charged_rounds, want.charged_rounds);
  EXPECT_EQ(r.model_rounds, want.model_rounds);
  EXPECT_EQ(r.dht_read_words, want.dht_read_words);
  EXPECT_EQ(r.dht_write_words, want.dht_write_words);
  EXPECT_EQ(r.max_machine_traffic, want.max_machine_traffic);
  EXPECT_EQ(r.peak_table_words, want.peak_table_words);
  EXPECT_EQ(r.budget_violations, want.budget_violations);
  EXPECT_EQ(r.extra, want.extra);
  EXPECT_EQ(results[1].group, "exact");
}

TEST(BenchJson, MergedSuitesFilterByGroupAndValidate) {
  BenchReporter a("suite_a");
  a.add(labelled_result());  // ampc
  BenchResult ex;
  ex.name = "karger";
  ex.group = "exact";
  a.add(ex);
  BenchReporter b("suite_b");
  BenchResult r2 = labelled_result();
  r2.name = "dense_put_commit";
  b.add(r2);
  BenchReporter c("suite_exact_only");
  BenchResult ex2;
  ex2.name = "stoer_wagner";
  ex2.group = "exact";
  c.add(ex2);

  const std::vector<Value> docs{a.to_json(), b.to_json(), c.to_json()};

  const Value ampc = roundtrip(bench::merge_suites(docs, "ampc"));
  EXPECT_EQ(bench::validate_bench_json(ampc), "");
  ASSERT_EQ(ampc.find("suites")->as_array().size(), 2u);  // exact-only drops
  for (const Value& s : ampc.find("suites")->as_array()) {
    for (const Value& r : s.find("results")->as_array()) {
      EXPECT_EQ(r.find("group")->as_string(), "ampc");
    }
  }

  const Value exact = roundtrip(bench::merge_suites(docs, "exact"));
  EXPECT_EQ(bench::validate_bench_json(exact), "");
  ASSERT_EQ(exact.find("suites")->as_array().size(), 2u);  // b drops
}

TEST(BenchJson, ValidatorRejectsSchemaViolations) {
  // Wrong schema string.
  Value doc = BenchReporter("s").to_json();
  doc["schema"] = "something-else";
  EXPECT_NE(bench::validate_bench_json(doc), "");

  // Result missing a numeric field.
  BenchReporter rep("s");
  rep.add(labelled_result());
  Value bad = rep.to_json();
  json::Object& result = bad["results"].as_array()[0].as_object();
  result.erase(std::find_if(result.begin(), result.end(), [](const auto& kv) {
    return kv.first == "ns_per_op";
  }));
  EXPECT_NE(bench::validate_bench_json(bad), "");

  // Merged doc whose result group contradicts the trajectory group.
  BenchReporter rep2("s2");
  rep2.add(labelled_result());
  Value merged = bench::merge_suites({rep2.to_json()}, "ampc");
  merged["group"] = "exact";
  EXPECT_NE(bench::validate_bench_json(merged), "");

  // Not an object at all.
  EXPECT_NE(bench::validate_bench_json(Value::array()), "");
}

// --- bench_util CLI parsing ------------------------------------------------
// A flag given as the LAST argv token has no value; arg_value must return
// nullptr instead of indexing past argv, and the callers must fail (or fall
// back) loudly rather than misbehave.

char** fake_argv(std::vector<const char*>& store) {
  return const_cast<char**>(store.data());
}

TEST(BenchUtil, ArgValueReadsFlagValue) {
  std::vector<const char*> argv{"prog", "--json", "out.json", "--threads",
                                "3"};
  const int argc = static_cast<int>(argv.size());
  EXPECT_STREQ(bench::arg_value(argc, fake_argv(argv), "--json"), "out.json");
  EXPECT_STREQ(bench::arg_value(argc, fake_argv(argv), "--threads"), "3");
  EXPECT_EQ(bench::arg_value(argc, fake_argv(argv), "--absent"), nullptr);
  EXPECT_EQ(bench::threads_of(argc, fake_argv(argv)), 3u);
}

TEST(BenchUtil, TrailingValuelessFlagYieldsNullNotOutOfBounds) {
  for (const char* flag : {"--json", "--threads"}) {
    std::vector<const char*> argv{"prog", "--smoke", flag};
    const int argc = static_cast<int>(argv.size());
    EXPECT_EQ(bench::arg_value(argc, fake_argv(argv), flag), nullptr) << flag;
  }
}

TEST(BenchUtil, ThreadsOfFallsBackOnValuelessFlag) {
  std::vector<const char*> argv{"prog", "--threads"};
  EXPECT_EQ(bench::threads_of(2, fake_argv(argv)), 0u);
}

TEST(BenchUtil, FinishFailsOnValuelessJsonFlag) {
  bench::BenchReporter rep("s");
  std::vector<const char*> with_flag{"prog", "--json"};
  EXPECT_EQ(bench::finish(2, fake_argv(with_flag), rep), 1);
  std::vector<const char*> without{"prog", "--smoke"};
  EXPECT_EQ(bench::finish(2, fake_argv(without), rep), 0);
}

}  // namespace
}  // namespace ampccut
