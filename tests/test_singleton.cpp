// The library's central correctness contract: the paper's interval tracker
// (Sections 3+4) must agree EXACTLY with the small-to-large oracle on the
// same contraction order, across graph families, weights and seeds.
#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "graph/generators.h"
#include "mincut/singleton.h"

namespace ampccut {
namespace {

void expect_trackers_agree(const WGraph& g, std::uint64_t seed) {
  const ContractionOrder o = make_contraction_order(g, seed);
  const SingletonCutResult oracle = min_singleton_cut_oracle(g, o);
  IntervalTrackerStats stats;
  const SingletonCutResult interval =
      min_singleton_cut_interval(g, o, &stats, /*parallel=*/false);
  ASSERT_EQ(interval.weight, oracle.weight)
      << "trackers disagree on n=" << g.n << " m=" << g.m()
      << " seed=" << seed;
  // The interval tracker's witness must reconstruct to a bag of that weight.
  const auto bag = reconstruct_bag(g, o, interval.rep, interval.time);
  EXPECT_EQ(cut_weight(g, bag), interval.weight);
  EXPECT_LE(stats.max_boundary_edges, 2u);  // Lemma 10
}

TEST(SingletonTrackers, AgreeOnTinyGraphs) {
  WGraph k2;
  k2.n = 2;
  k2.add_edge(0, 1, 7);
  expect_trackers_agree(k2, 0);

  WGraph tri;
  tri.n = 3;
  tri.add_edge(0, 1, 2);
  tri.add_edge(1, 2, 3);
  tri.add_edge(0, 2, 5);
  for (std::uint64_t s = 0; s < 10; ++s) expect_trackers_agree(tri, s);
}

TEST(SingletonTrackers, AgreeOnRandomUnitGraphs) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const VertexId n = 4 + static_cast<VertexId>(seed % 40);
    const WGraph g = gen_erdos_renyi(n, 0.25, seed);
    expect_trackers_agree(g, seed * 13 + 1);
  }
}

TEST(SingletonTrackers, AgreeOnRandomWeightedGraphs) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    WGraph g = gen_erdos_renyi(6 + static_cast<VertexId>(seed % 30), 0.35,
                               seed + 500);
    randomize_weights(g, 20, seed);
    expect_trackers_agree(g, seed * 7 + 3);
  }
}

TEST(SingletonTrackers, AgreeOnStructuredFamilies) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    expect_trackers_agree(gen_cycle(30), seed);
    expect_trackers_agree(gen_grid(6, 7), seed);
    expect_trackers_agree(gen_barbell(16), seed);
    expect_trackers_agree(gen_planted_cut(40, 0.4, 2, seed), seed);
    expect_trackers_agree(gen_communities(40, 4, 0.5, 2, seed), seed);
    expect_trackers_agree(gen_complete(12), seed);
    expect_trackers_agree(gen_preferential_attachment(40, 2, seed), seed);
  }
}

TEST(SingletonTrackers, AgreeOnTrees) {
  // On a tree every contraction bag is a subtree; min singleton cut relates
  // to leaf structure. Good stress for boundary/cap handling.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    expect_trackers_agree(gen_random_tree(40, seed), seed + 2);
    expect_trackers_agree(gen_path(25), seed);
    expect_trackers_agree(gen_star(25), seed);
  }
}

TEST(SingletonTrackers, AgreeOnMultigraphs) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    WGraph g;
    g.n = 8;
    // Dense multigraph with parallel edges.
    for (VertexId u = 0; u < g.n; ++u) {
      for (VertexId v = u + 1; v < g.n; ++v) {
        g.add_edge(u, v, 1 + (u + v + seed) % 4);
        if ((u + 2 * v + seed) % 3 == 0) g.add_edge(u, v, 2);
      }
    }
    expect_trackers_agree(g, seed);
  }
}

TEST(SingletonCut, UpperBoundsMinDegreeAndLowerBoundsMinCut) {
  // The process includes every t=0 singleton {v}, so the result is at most
  // the min weighted degree; and every bag is a real cut, so it is at least
  // the true min cut.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const WGraph g = gen_erdos_renyi(18, 0.4, seed);
    const ContractionOrder o = make_contraction_order(g, seed);
    const auto r = min_singleton_cut_oracle(g, o);
    EXPECT_LE(r.weight, min_singleton_degree(g));
    EXPECT_GE(r.weight, brute_force_min_cut(g).weight);
  }
}

TEST(SingletonCut, OracleWitnessReconstructs) {
  const WGraph g = gen_planted_cut(30, 0.5, 2, 3);
  const ContractionOrder o = make_contraction_order(g, 11);
  const auto r = min_singleton_cut_oracle(g, o);
  const auto bag = reconstruct_bag(g, o, r.rep, r.time);
  EXPECT_EQ(cut_weight(g, bag), r.weight);
  // Proper, non-empty side.
  const auto total = static_cast<std::size_t>(
      std::count(bag.begin(), bag.end(), 1));
  EXPECT_GE(total, 1u);
  EXPECT_LT(total, static_cast<std::size_t>(g.n));
}

TEST(SingletonCut, IntervalStatsWithinPaperBounds) {
  const WGraph g = gen_erdos_renyi(200, 0.05, 21);
  const ContractionOrder o = make_contraction_order(g, 2);
  IntervalTrackerStats stats;
  (void)min_singleton_cut_interval(g, o, &stats);
  const double lg = std::log2(200.0);
  EXPECT_LE(stats.height, static_cast<std::uint32_t>(lg * lg + 2 * lg + 2));
  // Total memory proxy O((n+m) log^2 n): intervals per level <= 2m.
  EXPECT_LE(stats.total_intervals,
            2 * g.m() * static_cast<std::uint64_t>(stats.height));
}

}  // namespace
}  // namespace ampccut
