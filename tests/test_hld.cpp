#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "support/bits.h"
#include "support/rng.h"
#include "tree/hld.h"

namespace ampccut {
namespace {

struct TreeFixture {
  VertexId n;
  std::vector<WEdge> edges;
  std::vector<TimeStep> times;
  RootedTree rt;
  HeavyLight hl;

  TreeFixture(const WGraph& g, std::uint64_t seed, VertexId root = 0) {
    n = g.n;
    edges = g.edges;
    times.resize(edges.size());
    // Unique random times via shuffled ranks.
    std::vector<TimeStep> ranks(edges.size());
    for (std::size_t i = 0; i < ranks.size(); ++i)
      ranks[i] = static_cast<TimeStep>(i + 1);
    Rng rng(seed);
    std::shuffle(ranks.begin(), ranks.end(), rng);
    times = ranks;
    rt = build_rooted_tree(n, edges, times, root);
    hl = build_heavy_light(rt);
  }
};

// Brute-force path max by walking parents.
TimeStep naive_pathmax(const RootedTree& t, VertexId u, VertexId v) {
  std::vector<VertexId> up;
  std::vector<std::uint8_t> on_u(t.n, 0);
  for (VertexId x = u; x != kInvalidVertex; x = t.parent[x]) on_u[x] = 1;
  VertexId meet = v;
  TimeStep best_v = 0;
  while (!on_u[meet]) {
    best_v = std::max(best_v, t.parent_time[meet]);
    meet = t.parent[meet];
  }
  TimeStep best_u = 0;
  for (VertexId x = u; x != meet; x = t.parent[x]) {
    best_u = std::max(best_u, t.parent_time[x]);
  }
  return std::max(best_u, best_v);
}

TEST(RootedTree, ParentsDepthsSubtrees) {
  const WGraph g = gen_binary_tree(15);
  const TreeFixture f(g, 1);
  EXPECT_EQ(f.rt.parent[0], kInvalidVertex);
  EXPECT_EQ(f.rt.subtree[0], 15u);
  for (VertexId v = 1; v < 15; ++v) {
    EXPECT_EQ(f.rt.parent[v], (v - 1) / 2);
    EXPECT_EQ(f.rt.depth[v], f.rt.depth[(v - 1) / 2] + 1);
  }
  // Subtree sizes of a complete binary tree on 15 vertices.
  EXPECT_EQ(f.rt.subtree[1], 7u);
  EXPECT_EQ(f.rt.subtree[3], 3u);
  EXPECT_EQ(f.rt.subtree[7], 1u);
}

TEST(RootedTree, RejectsNonTree) {
  WGraph g;
  g.n = 4;
  g.add_edge(0, 1);
  g.add_edge(2, 3);  // disconnected: 2 edges for n=4
  std::vector<TimeStep> times{1, 2};
  EXPECT_THROW(build_rooted_tree(4, g.edges, times, 0), std::logic_error);
}

TEST(HeavyLight, EveryVertexOnExactlyOnePath) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const WGraph g = gen_random_tree(200, seed);
    const TreeFixture f(g, seed);
    std::vector<int> seen(g.n, 0);
    for (const auto& path : f.hl.paths) {
      ASSERT_FALSE(path.empty());
      for (std::size_t i = 0; i < path.size(); ++i) {
        ++seen[path[i]];
        EXPECT_EQ(f.hl.pos_in_path[path[i]], i);
        if (i > 0) {
          // Consecutive path vertices are parent/heavy-child pairs.
          EXPECT_EQ(f.rt.parent[path[i]], path[i - 1]);
          EXPECT_EQ(f.rt.heavy[path[i - 1]], path[i]);
        }
      }
    }
    for (int s : seen) EXPECT_EQ(s, 1);  // Observation 2
  }
}

TEST(HeavyLight, PathGraphIsOnePath) {
  const WGraph g = gen_path(50);
  const TreeFixture f(g, 3);
  EXPECT_EQ(f.hl.num_paths(), 1u);
  EXPECT_EQ(f.hl.paths[0].size(), 50u);
}

TEST(HeavyLight, StarHasOneNonTrivialPath) {
  const WGraph g = gen_star(20);
  const TreeFixture f(g, 3);
  // Root + one heavy child form one path; 18 leaves are singleton paths.
  EXPECT_EQ(f.hl.num_paths(), 19u);
}

TEST(HeavyLight, LightEdgesOnRootPathLogarithmic) {
  // Observation 1: every root-to-vertex path crosses O(log n) light edges.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const WGraph g = gen_random_tree(1000, seed);
    const TreeFixture f(g, seed);
    for (VertexId v = 0; v < g.n; ++v) {
      std::uint32_t light = 0;
      for (VertexId x = v; f.rt.parent[x] != kInvalidVertex;
           x = f.rt.parent[x]) {
        if (f.rt.heavy[f.rt.parent[x]] != x) ++light;
      }
      EXPECT_LE(light, floor_log2(g.n) + 1);
    }
  }
}

TEST(PathMax, MatchesNaiveOnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const WGraph g = gen_random_tree(120, seed);
    const TreeFixture f(g, seed);
    const PathMax pm(f.rt, f.hl);
    Rng rng(seed + 77);
    for (int q = 0; q < 300; ++q) {
      const auto u = static_cast<VertexId>(rng.next_below(g.n));
      const auto v = static_cast<VertexId>(rng.next_below(g.n));
      EXPECT_EQ(pm.query(u, v), naive_pathmax(f.rt, u, v))
          << "seed=" << seed << " u=" << u << " v=" << v;
    }
  }
}

TEST(PathMax, SpecialShapes) {
  for (const WGraph& g : {gen_path(64), gen_star(64), gen_broom(64),
                          gen_caterpillar(16, 3), gen_binary_tree(63)}) {
    const TreeFixture f(g, 9);
    const PathMax pm(f.rt, f.hl);
    Rng rng(5);
    for (int q = 0; q < 100; ++q) {
      const auto u = static_cast<VertexId>(rng.next_below(g.n));
      const auto v = static_cast<VertexId>(rng.next_below(g.n));
      EXPECT_EQ(pm.query(u, v), naive_pathmax(f.rt, u, v));
    }
    EXPECT_EQ(pm.query(3, 3), 0u);
  }
}

}  // namespace
}  // namespace ampccut
