// Transport seam (src/transport/; DESIGN.md "Transport layer & multi-process
// execution").
//
// The contract under test: every committed table value, driver-return blob,
// stat and pre-existing non-traffic metric is bit-identical between
// LocalTransport and ShmTransport at 1, 2 and 4 worker processes — the shm
// drain reconstructs the same per-machine staging buffers the local path
// fills directly, and the barrier commit that follows is the identical
// two-phase machine-id-ordered commit. Also covered: the shared-memory ring
// itself, combiner aggregation under every merge policy, real
// worker-process death feeding the round-replay recovery, strict-budget
// escalation across the process boundary, and the in-worker registration
// guard. Suite name Transport* is in the tsan preset filter and the
// multiproc CI job's -R expression.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ampc/fault.h"
#include "ampc/runtime.h"
#include "support/errors.h"
#include "support/threadpool.h"
#include "transport/transport.h"
#include "transport/wire.h"

namespace ampccut::ampc {
namespace {

using transport::ShmRegion;
using transport::ShmRing;
using transport::TransportKind;

// ---------------------------------------------------------------------------
// Shared-memory ring

TEST(TransportRing, RoundTripsFramesThroughSharedMemory) {
  ShmRegion region = ShmRegion::create(ShmRing::region_bytes(1 << 12));
  ASSERT_TRUE(region.valid());
  ShmRing ring(region.data(), region.size(), /*init=*/true);
  const std::string msg = "forty-two bytes of perfectly ordinary payload";
  ring.write(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  std::vector<std::uint8_t> out;
  EXPECT_EQ(ring.read_some(&out), msg.size());
  EXPECT_EQ(std::string(out.begin(), out.end()), msg);
  EXPECT_EQ(ring.read_some(&out), 0u);  // drained
}

TEST(TransportRing, StreamsMoreThanCapacityWithConcurrentDrain) {
  // A producer thread pushes 8x the ring's capacity while the consumer
  // drains concurrently — the situation every shm round creates when a
  // machine stages more than one ring can hold.
  constexpr std::size_t kCapacity = 1 << 10;
  constexpr std::size_t kTotal = 8 * kCapacity;
  ShmRegion region = ShmRegion::create(ShmRing::region_bytes(kCapacity));
  ShmRing ring(region.data(), region.size(), /*init=*/true);
  std::vector<std::uint8_t> sent(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    sent[i] = static_cast<std::uint8_t>((i * 131) ^ (i >> 8));
  }
  std::thread producer([&] {
    // Uneven chunk sizes exercise the wrap-around split copies.
    std::size_t at = 0;
    std::size_t chunk = 1;
    while (at < kTotal) {
      const std::size_t n = std::min(chunk, kTotal - at);
      ring.write(sent.data() + at, n);
      at += n;
      chunk = (chunk * 7 + 3) % 600 + 1;
    }
  });
  std::vector<std::uint8_t> got;
  while (got.size() < kTotal) {
    ring.read_some(&got);
  }
  producer.join();
  EXPECT_EQ(got, sent);
}

TEST(TransportRing, ResetRestoresAnEmptyRing) {
  ShmRegion region = ShmRegion::create(ShmRing::region_bytes(256));
  ShmRing ring(region.data(), region.size(), /*init=*/true);
  const std::uint8_t byte = 0x5a;
  ring.write(&byte, 1);
  ring.reset();
  std::vector<std::uint8_t> out;
  EXPECT_EQ(ring.read_some(&out), 0u);
}

TEST(Transport, KindParsingRoundTrips) {
  EXPECT_EQ(transport::parse_transport_kind("local"), TransportKind::kLocal);
  EXPECT_EQ(transport::parse_transport_kind("shm"), TransportKind::kShm);
  EXPECT_FALSE(transport::parse_transport_kind("tcp").has_value());
  EXPECT_STREQ(transport::transport_kind_name(TransportKind::kLocal),
               "local");
  EXPECT_STREQ(transport::transport_kind_name(TransportKind::kShm), "shm");
}

// ---------------------------------------------------------------------------
// Local-vs-shm bit-identity on a direct-runtime workload

constexpr std::uint64_t kMachines = 8;
constexpr std::uint64_t kPerMachine = 32;
constexpr std::uint64_t kKeys = kMachines * kPerMachine;

struct WorkloadResult {
  std::vector<std::uint64_t> dense;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sparse;
  std::vector<std::vector<std::uint8_t>> returns;
  std::uint64_t rounds = 0;
  std::uint64_t dht_reads = 0;
  std::uint64_t dht_writes = 0;
  std::uint64_t max_machine_traffic = 0;
  std::uint64_t peak_table_words = 0;
  std::uint64_t budget_violations = 0;
  std::uint64_t wire_bytes_sent = 0;
  std::uint64_t flush_batches = 0;

  void expect_same_as(const WorkloadResult& other) const {
    EXPECT_EQ(dense, other.dense);
    EXPECT_EQ(sparse, other.sparse);
    EXPECT_EQ(returns, other.returns);
    EXPECT_EQ(rounds, other.rounds);
    EXPECT_EQ(dht_reads, other.dht_reads);
    EXPECT_EQ(dht_writes, other.dht_writes);
    EXPECT_EQ(max_machine_traffic, other.max_machine_traffic);
    EXPECT_EQ(peak_table_words, other.peak_table_words);
    EXPECT_EQ(budget_violations, other.budget_violations);
  }
};

// The multiproc CI job re-runs this suite at several worker counts via
// AMPC_TRANSPORT_PROCS; tests with one fixed shm process count route it
// through here so the job's sweep actually varies them. Results must not
// depend on the count — that is the invariant under test.
std::uint32_t env_procs(std::uint32_t fallback) {
  const char* v = std::getenv("AMPC_TRANSPORT_PROCS");
  if (v == nullptr) return fallback;
  const auto n = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
  return n == 0 ? fallback : n;
}

Config workload_config(TransportKind kind, std::uint32_t procs) {
  Config cfg = Config::for_problem(4096, 0.5);  // 64-word machines
  cfg.transport = kind;
  cfg.num_processes = procs;
  return cfg;
}

// Two rounds over dense + sparse tables plus a driver-side overflow write
// and a per-machine driver_return blob: every transport-visible channel in
// one workload. Same-key collisions inside a machine (the `k % 17` puts)
// exercise the shm combiner; cross-machine collisions exercise commit
// order.
WorkloadResult run_workload(const Config& cfg, ThreadPool& pool) {
  Runtime rt(cfg, &pool);
  auto dense =
      rt.lease_dense<std::uint64_t>("tr.dense", kKeys + 1, 0, Merge::kSum);
  auto sparse =
      rt.lease_table<std::uint64_t, std::uint64_t>("tr.sparse", Merge::kSum);
  dense->put(kKeys, 1000);  // driver-side: stays in the parent's overflow
  rt.round("tr.write", kMachines, [&](MachineContext& ctx) {
    const std::uint64_t m = ctx.machine_id();
    for (std::uint64_t i = 0; i < kPerMachine; ++i) {
      const std::uint64_t k = m * kPerMachine + i;
      dense->put(k, 3 * k + 1);
      dense->put(k % 17, 1);  // same-key collisions for the combiner
      sparse->put(k, k ^ 0x5aa5ull);
      sparse->put(k % 13, 2);
      (void)dense->get((k + 7) % kKeys);
    }
  });
  rt.round("tr.derive", kMachines, [&](MachineContext& ctx) {
    const std::uint64_t m = ctx.machine_id();
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < kPerMachine; ++i) {
      const std::uint64_t k = m * kPerMachine + i;
      acc += dense->get(k);
      sparse->put(kKeys + k, dense->get(k) + sparse->at(k));
    }
    std::vector<std::uint8_t> blob(sizeof(acc));
    std::memcpy(blob.data(), &acc, sizeof(acc));
    ctx.driver_return(std::move(blob));
  });
  WorkloadResult r;
  r.returns = rt.take_round_returns();
  r.dense.reserve(kKeys + 1);
  for (std::uint64_t k = 0; k <= kKeys; ++k) r.dense.push_back(dense->raw(k));
  r.sparse = sparse->snapshot();
  psort::stable_sort_keys(nullptr, r.sparse,
                          std::less<std::pair<std::uint64_t, std::uint64_t>>{});
  const Metrics& m = rt.metrics();
  r.rounds = m.rounds;
  r.dht_reads = m.dht_reads;
  r.dht_writes = m.dht_writes;
  r.max_machine_traffic = m.max_machine_traffic;
  r.peak_table_words = m.peak_table_words;
  r.budget_violations = m.budget_violations.load();
  r.wire_bytes_sent = m.wire_bytes_sent;
  r.flush_batches = m.flush_batches;
  return r;
}

TEST(Transport, ShmMatchesLocalAtEveryProcessCount) {
  ThreadPool pool(4);
  const WorkloadResult local =
      run_workload(workload_config(TransportKind::kLocal, 1), pool);
  // Sanity anchors so "identical" cannot mean "identically wrong".
  EXPECT_EQ(local.dense[kKeys], 1000u);
  EXPECT_EQ(local.rounds, 2u);
  EXPECT_EQ(local.wire_bytes_sent, 0u);  // local moves no wire bytes
  EXPECT_EQ(local.flush_batches, 0u);
  for (const std::uint32_t procs : {1u, 2u, 4u}) {
    SCOPED_TRACE("procs=" + std::to_string(procs));
    const WorkloadResult shm =
        run_workload(workload_config(TransportKind::kShm, procs), pool);
    shm.expect_same_as(local);
    EXPECT_GT(shm.wire_bytes_sent, 0u);
    EXPECT_GT(shm.flush_batches, 0u);
  }
}

TEST(Transport, ShmIsDeterministicAcrossRuns) {
  ThreadPool pool(4);
  const WorkloadResult a =
      run_workload(workload_config(TransportKind::kShm, env_procs(3)), pool);
  const WorkloadResult b =
      run_workload(workload_config(TransportKind::kShm, env_procs(3)), pool);
  b.expect_same_as(a);
  // Wire traffic is a pure function of the staged data, so it is
  // reproducible too (it is just not part of the local/shm identity set).
  EXPECT_EQ(a.wire_bytes_sent, b.wire_bytes_sent);
  EXPECT_EQ(a.flush_batches, b.flush_batches);
}

// ---------------------------------------------------------------------------
// Combiner safety across every merge policy

template <Merge policy>
std::vector<std::uint64_t> merge_workload(TransportKind kind) {
  Config cfg = workload_config(kind, env_procs(4));
  Runtime rt(cfg);
  constexpr std::uint64_t kSlots = 64;
  auto t = rt.lease_dense<std::uint64_t>(
      "tr.merge", kSlots, policy == Merge::kMin ? ~0ull : 0ull, policy);
  rt.round("tr.merge", kMachines, [&](MachineContext& ctx) {
    const std::uint64_t m = ctx.machine_id();
    for (std::uint64_t i = 0; i < 4 * kSlots; ++i) {
      // Many same-key writes per machine: the shm combiner folds these
      // before the wire; the local path commits them one by one. Values
      // depend on (m, i) so kOverwrite's last-write-wins and kMin/kMax
      // extrema differ across machines.
      t->put((i * 7 + m) % kSlots, (m * 1315423911u) ^ (i * 2654435761u));
    }
  });
  std::vector<std::uint64_t> out;
  out.reserve(kSlots);
  for (std::uint64_t i = 0; i < kSlots; ++i) out.push_back(t->raw(i));
  return out;
}

TEST(Transport, CombinerPreservesEveryMergePolicy) {
  EXPECT_EQ(merge_workload<Merge::kSum>(TransportKind::kLocal),
            merge_workload<Merge::kSum>(TransportKind::kShm));
  EXPECT_EQ(merge_workload<Merge::kMin>(TransportKind::kLocal),
            merge_workload<Merge::kMin>(TransportKind::kShm));
  EXPECT_EQ(merge_workload<Merge::kMax>(TransportKind::kLocal),
            merge_workload<Merge::kMax>(TransportKind::kShm));
  EXPECT_EQ(merge_workload<Merge::kOverwrite>(TransportKind::kLocal),
            merge_workload<Merge::kOverwrite>(TransportKind::kShm));
}

// ---------------------------------------------------------------------------
// Failure paths

TEST(Transport, ShmWorkerCrashReplaysToFaultFreeAnswer) {
  ThreadPool pool(4);
  const WorkloadResult clean =
      run_workload(workload_config(TransportKind::kLocal, 1), pool);
  // The scheduled crash kills a real worker process (exit code 86 after a
  // kWorkerError frame); the driver discards the round's staging and
  // re-forks. One crash per round keeps the count assertions exact even
  // though a dying worker skips its range's later machines.
  Config cfg = workload_config(TransportKind::kShm, env_procs(2));
  cfg.fault.scheduled = {{0, 3, FaultKind::kMachineCrash},
                         {1, 5, FaultKind::kMachineCrash}};
  Runtime rt(cfg, &pool);
  {
    auto dense =
        rt.lease_dense<std::uint64_t>("tr.dense", kKeys + 1, 0, Merge::kSum);
    auto sparse =
        rt.lease_table<std::uint64_t, std::uint64_t>("tr.sparse",
                                                     Merge::kSum);
    dense->put(kKeys, 1000);
    rt.round("tr.write", kMachines, [&](MachineContext& ctx) {
      const std::uint64_t m = ctx.machine_id();
      for (std::uint64_t i = 0; i < kPerMachine; ++i) {
        const std::uint64_t k = m * kPerMachine + i;
        dense->put(k, 3 * k + 1);
        dense->put(k % 17, 1);
        sparse->put(k, k ^ 0x5aa5ull);
        sparse->put(k % 13, 2);
        (void)dense->get((k + 7) % kKeys);
      }
    });
    rt.round("tr.derive", kMachines, [&](MachineContext& ctx) {
      const std::uint64_t m = ctx.machine_id();
      std::uint64_t acc = 0;
      for (std::uint64_t i = 0; i < kPerMachine; ++i) {
        const std::uint64_t k = m * kPerMachine + i;
        acc += dense->get(k);
        sparse->put(kKeys + k, dense->get(k) + sparse->at(k));
      }
      std::vector<std::uint8_t> blob(sizeof(acc));
      std::memcpy(blob.data(), &acc, sizeof(acc));
      ctx.driver_return(std::move(blob));
    });
    WorkloadResult faulted;
    faulted.returns = rt.take_round_returns();
    for (std::uint64_t k = 0; k <= kKeys; ++k) {
      faulted.dense.push_back(dense->raw(k));
    }
    faulted.sparse = sparse->snapshot();
    psort::stable_sort_keys(
        nullptr, faulted.sparse,
        std::less<std::pair<std::uint64_t, std::uint64_t>>{});
    const Metrics& m = rt.metrics();
    faulted.rounds = m.rounds;
    faulted.dht_reads = m.dht_reads;
    faulted.dht_writes = m.dht_writes;
    faulted.max_machine_traffic = m.max_machine_traffic;
    faulted.peak_table_words = m.peak_table_words;
    faulted.budget_violations = m.budget_violations.load();
    faulted.expect_same_as(clean);
    EXPECT_EQ(m.rounds_retried, 2u);
    EXPECT_EQ(m.faults_injected.load(), 2u);
    EXPECT_GE(m.machine_failures.load(), 2u);
  }
}

TEST(Transport, ShmStrictBudgetSurfacesAcrossTheProcessBoundary) {
  Config cfg = workload_config(TransportKind::kShm, env_procs(2));
  cfg.strict_budget = true;  // 64-word budget; the round moves far more
  Runtime rt(cfg);
  auto t = rt.lease_dense<std::uint64_t>("tr.hot", 4096);
  EXPECT_THROW(rt.round("tr.hot",
                        4,
                        [&](MachineContext& ctx) {
                          for (std::uint64_t i = 0; i < 512; ++i) {
                            t->put(ctx.machine_id() * 512 + i, i);
                          }
                        }),
               BudgetExceededError);
  // The runtime stays reusable after the deterministic failure.
  rt.round("tr.after", 2, [&](MachineContext&) {});
  EXPECT_EQ(rt.metrics().rounds, 2u);
}

TEST(Transport, TableRegistrationInsideWorkerFailsLoudly) {
  Config cfg = workload_config(TransportKind::kShm, 2);
  Runtime rt(cfg);
  // Leasing a table inside the round body would create it only in the
  // forked worker's copy-on-write memory; the guard turns that silent
  // divergence into a loud error surfaced as a transport failure.
  EXPECT_THROW(
      rt.round("tr.rogue", 2,
               [&](MachineContext&) {
                 auto rogue = rt.lease_dense<std::uint64_t>("tr.rogue", 8);
               }),
      TransportError);
}

TEST(Transport, ResetForSubproblemCanSwitchTransports) {
  ThreadPool pool(2);
  Runtime rt(workload_config(TransportKind::kLocal, 1), &pool);
  EXPECT_EQ(rt.transport_kind(), TransportKind::kLocal);
  {
    auto t = rt.lease_dense<std::uint64_t>("tr.sw", 16);
    rt.round("tr.sw", 2, [&](MachineContext& ctx) {
      t->put(ctx.machine_id(), ctx.machine_id() + 1);
    });
    EXPECT_EQ(t->raw(1), 2u);
  }
  rt.reset_for_subproblem(workload_config(TransportKind::kShm, 2));
  EXPECT_EQ(rt.transport_kind(), TransportKind::kShm);
  {
    auto t = rt.lease_dense<std::uint64_t>("tr.sw", 16);
    rt.round("tr.sw", 2, [&](MachineContext& ctx) {
      t->put(ctx.machine_id(), ctx.machine_id() + 7);
    });
    EXPECT_EQ(t->raw(1), 8u);
    EXPECT_GT(rt.metrics().wire_bytes_sent, 0u);
  }
}

}  // namespace
}  // namespace ampccut::ampc
