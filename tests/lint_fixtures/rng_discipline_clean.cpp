// Clean twin: explicit-seed Rng, wall-clock timing without seeding, and
// identifiers that merely contain banned substrings.
#include <chrono>
#include <cstdint>

#include "support/rng.h"

std::uint64_t roll_well(std::uint64_t seed) {
  ampccut::Rng rng(seed);
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t operand = rng.next_u64();
  (void)t0;
  return operand;
}
