// Allowlisted twin: a deliberately retained std engine, justified.
#include <random>

unsigned roll_allowed() {
  // repro-lint: allow(rng-discipline) fixture: engine kept for API parity
  std::mt19937 gen(999);
  return static_cast<unsigned>(gen());
}
