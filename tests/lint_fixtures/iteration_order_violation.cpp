// Seeded violations for the iteration-order check (enforced only for src/
// paths): range-for over unordered containers.
#include <unordered_map>
#include <unordered_set>

int accumulate_all(const std::unordered_map<int, int>& table,
                   const std::unordered_set<int>& keys) {
  int n = 0;
  for (const auto& [k, v] : table) {
    n += v + static_cast<int>(keys.count(k));
  }
  for (const int k : keys) {
    n -= k;
  }
  return n;
}
