// Seeded violations for the raw-sort check: every qualified std sort entry
// point and C qsort outside the psort layer must be flagged.
#include <algorithm>
#include <cstdlib>
#include <vector>

void sort_everything(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  std::stable_sort(v.begin(), v.end());
  std::partial_sort(v.begin(), v.begin() + 1, v.end());
  std::ranges::sort(v);
  qsort(v.data(), v.size(), sizeof(int), nullptr);
}
