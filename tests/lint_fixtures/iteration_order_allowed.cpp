// Allowlisted twin: commutative accumulation over an unordered container,
// with the commutativity argument in the justification.
#include <unordered_map>

int sum_values(const std::unordered_map<int, int>& table) {
  int n = 0;
  // repro-lint: allow(iteration-order) integer sum is commutative
  for (const auto& [k, v] : table) {
    n += v;
  }
  return n;
}
