// Clean twin: psort-layer calls and near-miss tokens must stay silent, as
// must sort names that only appear inside comments.
#include <algorithm>
#include <vector>

#include "support/psort.h"

void sort_through_psort(ampccut::ThreadPool* pool, std::vector<int>& v) {
  ampccut::psort::stable_sort_keys(pool, v, std::less<int>{});
  const bool ok = std::is_sorted(v.begin(), v.end());
  (void)ok;
  // mentioning std::sort( in a comment must not count
}
