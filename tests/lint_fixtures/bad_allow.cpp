// Malformed directives: unknown check, missing justification, missing close
// paren, and a non-allow verb. Each is a bad-allow finding.
int bad_one = 1;  // repro-lint: allow(made-up-check) this check does not exist
int bad_two = 2;  // repro-lint: allow(raw-sort)
int bad_three = 3;  // repro-lint: allow(raw-sort missing the close paren
int bad_four = 4;  // repro-lint: suppress everything please
