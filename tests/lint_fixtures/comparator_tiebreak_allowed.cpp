// Allowlisted twin: the single-key comparator rides a stable sort, and the
// justification says so.
#include <vector>

bool allowed_comparator(const std::vector<double>& clock) {
  // repro-lint: allow(comparator-tiebreak) fixture: stable sort supplies
  // the id tie-break
  const auto by_clock = [&](int a, int b) { return clock[a] < clock[b]; };
  return by_clock(0, 1);
}
