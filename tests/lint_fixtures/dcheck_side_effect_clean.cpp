// Clean twin: pure predicates — comparisons, negations, and const reads.
#include <vector>

#include "support/check.h"

void dcheck_pure(int x, const std::vector<int>& v) {
  REPRO_DCHECK(x > 0);
  REPRO_DCHECK(x != 3);
  REPRO_DCHECK(v.size() <= v.capacity());
  REPRO_DCHECK(!v.empty() || x >= 0);
}
