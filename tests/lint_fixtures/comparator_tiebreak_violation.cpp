// Seeded violations for the comparator-tiebreak check: two-parameter lambdas
// ordering by one projected key with no tie-break.
#include <vector>

struct Item {
  int key;
  int id;
};

bool single_key_orders(const std::vector<double>& clock) {
  const auto by_key = [](const Item& a, const Item& b) {
    return a.key < b.key;
  };
  const auto by_clock = [&](int a, int b) { return clock[a] < clock[b]; };
  return by_key(Item{0, 0}, Item{1, 1}) && by_clock(0, 1);
}
