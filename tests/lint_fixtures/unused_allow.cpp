// Well-formed directives that suppress nothing must be reported so the
// allowlist can never silently rot.
int plain = 0;  // repro-lint: allow(raw-sort) nothing on this line sorts

// repro-lint: allow(rng-discipline) dangling: no code follows
