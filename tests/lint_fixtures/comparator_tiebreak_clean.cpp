// Clean twin: composite keys, identity ordering, and explicit tie-breaks are
// all fine.
#include <tuple>
#include <vector>

struct Item {
  int key;
  int id;
};

bool tiebroken_orders(const std::vector<int>& rank) {
  const auto by_pair = [](const Item& a, const Item& b) {
    return std::tie(a.key, a.id) < std::tie(b.key, b.id);
  };
  const auto by_value = [](int a, int b) { return a < b; };
  const auto by_rank_then_id = [&](int a, int b) {
    return rank[a] != rank[b] ? rank[a] < rank[b] : a < b;
  };
  return by_pair(Item{0, 1}, Item{0, 2}) && by_value(0, 1) &&
         by_rank_then_id(0, 1);
}
