// Allowlisted twin: an intentional mutation, justified. The real tree should
// never need this; the fixture proves the escape hatch works.
#include "support/check.h"

void dcheck_allowed(int x) {
  REPRO_DCHECK(++x > 0);  // repro-lint: allow(dcheck-side-effect) fixture: demonstrates the trap
}
