// Clean twin: ordered containers and index loops are fine even when an
// unordered container is declared in the same file.
#include <map>
#include <unordered_map>
#include <vector>

int accumulate_sorted(const std::map<int, int>& table,
                      const std::unordered_map<int, int>& hist) {
  int n = 0;
  for (const auto& [k, v] : table) {
    n += v;
  }
  std::vector<int> keys;
  keys.reserve(hist.size());
  for (int k = 0; k < 10; ++k) {
    n += k;
  }
  return n + static_cast<int>(keys.size());
}
