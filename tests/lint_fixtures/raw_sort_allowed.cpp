// Allowlisted twin: the same raw sorts, suppressed once by a directive-only
// line above and once by a trailing same-line directive.
#include <algorithm>
#include <vector>

void allowed_sorts(std::vector<int>& v) {
  // repro-lint: allow(raw-sort) fixture: differential reference sort
  std::sort(v.begin(), v.end());
  std::stable_sort(v.begin(), v.end());  // repro-lint: allow(raw-sort) fixture: trailing form
}
