// Seeded violations for the rng-discipline check: a std engine, a
// time-derived seed, and C rand().
#include <cstdlib>
#include <ctime>
#include <random>

unsigned roll_badly() {
  std::mt19937 gen(12345);
  unsigned seed = static_cast<unsigned>(time(nullptr));
  return static_cast<unsigned>(gen()) + seed + static_cast<unsigned>(rand());
}
