// Seeded violations for the dcheck-side-effect check: mutations inside
// REPRO_DCHECK silently vanish under NDEBUG.
#include <vector>

#include "support/check.h"

void dcheck_mutations(int x, std::vector<int>& v) {
  REPRO_DCHECK(++x > 0);
  REPRO_DCHECK((x = 3) == 3);
  REPRO_DCHECK(v.insert(v.end(), x) != v.end());
}
