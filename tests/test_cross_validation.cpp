// Cross-validation property suite: four independent min-cut implementations
// must agree on the min-cut VALUE over a spread of random small weighted
// graphs. This is the Henzinger-et-al-style harness the benches lean on:
// when solvers with disjoint failure modes (matrix Stoer–Wagner, randomized
// contraction, exhaustive enumeration, the AMPC pipeline) all report the same
// number, the number is almost certainly the min cut.
//
// Agreement semantics per solver:
//   * brute_force_min_cut     — exact by enumeration, the final word;
//   * stoer_wagner_min_cut    — exact deterministic, must match brute force;
//   * karger_repeated         — Monte Carlo; with n <= 12 and 300 trials the
//     per-graph failure probability is well under 1e-6, and every run is
//     seed-deterministic, so a passing configuration stays passing;
//   * ampc_approx_min_cut     — the paper's (2+eps) pipeline; its recursion
//     with several trials on these sizes lands exact (asserted), and its
//     reported side must be a real cut of the claimed weight.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "ampc_algo/kcut_ampc.h"
#include "ampc_algo/mincut_ampc.h"
#include "exact/brute_force.h"
#include "exact/karger.h"
#include "exact/stoer_wagner.h"
#include "graph/generators.h"
#include "kernel/front.h"
#include "mincut/kcut.h"
#include "mpc/gn_baseline.h"

namespace ampccut {
namespace {

// One generator family per residue so the ~50 cases sweep ER graphs, fixed
// edge-count graphs, planted cuts, and structured controls.
WGraph make_case(std::uint64_t i) {
  const std::uint64_t seed = i * 977 + 13;
  const VertexId n = 6 + static_cast<VertexId>(i % 7);  // 6..12
  WGraph g;
  switch (i % 5) {
    case 0:
      g = gen_erdos_renyi(n, 0.45, seed);
      break;
    case 1:
      g = gen_random_connected(n, n + 2 + i % 5, seed);
      break;
    case 2:
      g = gen_planted_cut(n, 0.8, 1 + static_cast<VertexId>(i % 2), seed);
      break;
    case 3:
      g = gen_complete(n);
      break;
    default:
      g = gen_cycle(n);
      break;
  }
  randomize_weights(g, 6, seed + 1);
  return g;
}

TEST(CrossValidation, FourSolversAgreeOnFiftyRandomGraphs) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    const WGraph g = make_case(i);
    const auto bf = brute_force_min_cut(g);
    ASSERT_LT(bf.weight, kInfiniteWeight) << "case " << i;

    const auto sw = stoer_wagner_min_cut(g);
    EXPECT_EQ(sw.weight, bf.weight) << "stoer_wagner, case " << i;
    EXPECT_EQ(cut_weight(g, sw.side), sw.weight) << "case " << i;

    const auto ka = karger_repeated(g, 300, i);
    EXPECT_EQ(ka.weight, bf.weight) << "karger, case " << i;
    EXPECT_EQ(cut_weight(g, ka.side), ka.weight) << "case " << i;

    ampc::AmpcMinCutOptions opt;
    opt.recursion.seed = i;
    opt.recursion.trials = 6;
    opt.recursion.local_threshold = 4;
    const auto am = ampc::ampc_approx_min_cut(g, opt);
    EXPECT_EQ(am.weight, bf.weight) << "mincut_ampc, case " << i;
    EXPECT_EQ(cut_weight(g, am.side), am.weight) << "case " << i;
  }
}

TEST(CrossValidation, KCutSolversAgreeOnSmallGraphs) {
  // Same idea one level up: the recursive k-cut against brute force.
  for (std::uint64_t i = 0; i < 8; ++i) {
    const WGraph g = make_case(i * 3 + 1);
    const auto bf2 = brute_force_min_k_cut(g, 2);
    const auto bf = brute_force_min_cut(g);
    EXPECT_EQ(bf2.weight, bf.weight) << "case " << i;
    EXPECT_EQ(k_cut_weight(g, bf2.part), bf2.weight) << "case " << i;
  }
}

// ---------------------------------------------------------------------------
// Kernelization differential layer: for every zoo instance and every
// backend, kernelize -> solve -> unpack must return the same cut VALUE as
// solving the original, and the reported side must cut exactly that much in
// the original graph. Weighted, multigraph and disconnected variants ride
// along; every kernelized backend also runs at thread counts 1 and 4 and
// must produce bit-identical results.

// Base zoo: the ISSUE's six families.
WGraph kernel_zoo_base(std::uint64_t i) {
  const std::uint64_t seed = i * 1319 + 29;
  const VertexId n = 8 + static_cast<VertexId>(i % 8);  // 8..15
  switch (i % 6) {
    case 0:
      return gen_erdos_renyi(n, 0.4, seed);
    case 1:
      return gen_planted_cut(n, 0.75, 1 + static_cast<VertexId>(i % 3), seed);
    case 2:
      return gen_communities(3 * n, 3, 0.7, 2, seed);
    case 3:
      return gen_barbell(n);
    case 4:
      return gen_random_tree(n, seed);
    default:
      return gen_grid(3, 1 + n / 3);
  }
}

// Variant layer: 0 = as generated, 1 = random weights, 2 = multigraph
// (first three edges duplicated), 3 = disconnected (a far triangle).
WGraph kernel_zoo_case(std::uint64_t i) {
  WGraph g = kernel_zoo_base(i);
  const std::uint64_t seed = i * 1319 + 101;
  switch (i % 4) {
    case 1:
      randomize_weights(g, 6, seed);
      break;
    case 2:
      for (std::size_t e = 0; e < 3 && e < g.edges.size(); ++e) {
        g.edges.push_back(g.edges[e]);
      }
      break;
    case 3: {
      const VertexId base = g.n;
      g.n += 3;
      g.add_edge(base, base + 1, 2);
      g.add_edge(base + 1, base + 2, 2);
      g.add_edge(base + 2, base, 2);
      break;
    }
    default:
      break;
  }
  return g;
}

TEST(CrossValidation, KernelizedMinCutAgreesOnAllBackends) {
  for (std::uint64_t i = 0; i < 36; ++i) {
    const WGraph g = kernel_zoo_case(i);
    const Weight truth = stoer_wagner_min_cut(g).weight;

    // Exact backend behind the front-end.
    const MinCutResult sw = kernel::stoer_wagner_min_cut_kernelized(g);
    EXPECT_EQ(sw.weight, truth) << "kernelized stoer_wagner, case " << i;
    EXPECT_EQ(cut_weight(g, sw.side), sw.weight) << "case " << i;

    // AMPC backend, kernel on vs off, thread counts 1 and 4.
    ampc::AmpcMinCutOptions opt;
    opt.recursion.seed = i;
    opt.recursion.trials = 6;
    opt.recursion.local_threshold = 4;
    opt.recursion.threads = 1;
    const auto off = ampc::ampc_approx_min_cut(g, opt);
    opt.recursion.kernel = kernel::enabled_defaults();
    const auto on1 = ampc::ampc_approx_min_cut(g, opt);
    opt.recursion.threads = 4;
    const auto on4 = ampc::ampc_approx_min_cut(g, opt);
    EXPECT_EQ(off.weight, truth) << "ampc unkernelized, case " << i;
    EXPECT_EQ(on1.weight, truth) << "ampc kernelized, case " << i;
    EXPECT_EQ(cut_weight(g, on1.side), on1.weight) << "case " << i;
    // Thread-count bit-identity of the kernelized pipeline.
    EXPECT_EQ(on4.weight, on1.weight) << "case " << i;
    EXPECT_EQ(on4.side, on1.side) << "case " << i;
    EXPECT_EQ(on4.stats, on1.stats) << "case " << i;

    // MPC backend.
    mpc::MpcMinCutOptions mopt;
    mopt.recursion = opt.recursion;
    mopt.recursion.threads = 1;
    const auto mp = mpc::mpc_gn_min_cut(g, mopt);
    EXPECT_EQ(mp.weight, truth) << "mpc kernelized, case " << i;
    EXPECT_EQ(cut_weight(g, mp.side), mp.weight) << "case " << i;
  }
}

TEST(CrossValidation, KernelizedKCutAgreesOnAllBackends) {
  for (std::uint64_t i = 0; i < 12; ++i) {
    // Connected cases only: the greedy split loop counts components.
    const WGraph g = kernel_zoo_case((i % 3 == 2) ? i + 1 : i);
    const auto k = static_cast<std::uint32_t>(2 + i % 2);

    // Exact Saran–Vazirani splitter, kernel off vs on.
    const ApproxKCutResult off = apx_split_k_cut_exact(g, k);
    const ApproxKCutResult on =
        apx_split_k_cut_exact(g, k, kernel::enabled_defaults());
    EXPECT_EQ(on.weight, off.weight) << "exact k-cut, case " << i;
    EXPECT_EQ(k_cut_weight(g, on.part), on.weight) << "case " << i;
    EXPECT_GE(on.num_parts, k) << "case " << i;

    // AMPC k-cut, kernel off vs on (per-component kernels compound through
    // the shared RuntimeArena).
    ampc::AmpcMinCutOptions aopt;
    aopt.recursion.seed = i;
    aopt.recursion.trials = 6;
    aopt.recursion.local_threshold = 4;
    aopt.recursion.threads = 1;
    ampc::RuntimeArena arena;
    aopt.arena = &arena;
    const auto aoff = ampc::ampc_apx_split_k_cut(g, k, aopt);
    aopt.recursion.kernel = kernel::enabled_defaults();
    const auto aon = ampc::ampc_apx_split_k_cut(g, k, aopt);
    EXPECT_EQ(aon.result.weight, aoff.result.weight)
        << "ampc k-cut, case " << i;
    EXPECT_EQ(k_cut_weight(g, aon.result.part), aon.result.weight)
        << "case " << i;

    // MPC k-cut.
    mpc::MpcMinCutOptions mopt;
    mopt.recursion = aopt.recursion;
    const auto mon = mpc::mpc_gn_k_cut(g, k, mopt);
    EXPECT_EQ(mon.result.weight, aoff.result.weight)
        << "mpc k-cut, case " << i;
    EXPECT_EQ(k_cut_weight(g, mon.result.part), mon.result.weight)
        << "case " << i;
  }
}

// ---------------------------------------------------------------------------
// Transport differential layer (DESIGN.md "Transport layer & multi-process
// execution"): the e1 min-cut and e4 k-cut reports — results AND model
// accounting — must be bit-identical between the in-process transport and
// the forked shared-memory transport at 1, 2 and 4 worker processes, with
// the kernel front-end both off and on. This is the experiment-level form of
// the transport invariant: the numbers the benches publish cannot depend on
// how rounds were executed.

void expect_mincut_reports_equal(const ampc::AmpcMinCutReport& a,
                                 const ampc::AmpcMinCutReport& b,
                                 const std::string& what) {
  EXPECT_EQ(a.weight, b.weight) << what;
  EXPECT_EQ(a.side, b.side) << what;
  EXPECT_EQ(a.stats, b.stats) << what;
  EXPECT_EQ(a.measured_rounds, b.measured_rounds) << what;
  EXPECT_EQ(a.charged_rounds, b.charged_rounds) << what;
  EXPECT_EQ(a.levels_used, b.levels_used) << what;
  EXPECT_EQ(a.dht_reads, b.dht_reads) << what;
  EXPECT_EQ(a.dht_writes, b.dht_writes) << what;
  EXPECT_EQ(a.max_machine_traffic, b.max_machine_traffic) << what;
  EXPECT_EQ(a.peak_table_words, b.peak_table_words) << what;
  EXPECT_EQ(a.budget_violations, b.budget_violations) << what;
}

TEST(CrossValidation, MinCutReportBitIdenticalAcrossTransports) {
  for (std::uint64_t i = 0; i < 4; ++i) {
    const WGraph g = kernel_zoo_case(i * 5 + 2);
    for (const bool kernel_on : {false, true}) {
      ampc::AmpcMinCutOptions opt;
      opt.recursion.seed = i;
      opt.recursion.trials = 4;
      opt.recursion.local_threshold = 4;
      opt.recursion.threads = 1;
      if (kernel_on) opt.recursion.kernel = kernel::enabled_defaults();
      const auto local = ampc::ampc_approx_min_cut(g, opt);
      EXPECT_EQ(local.weight, stoer_wagner_min_cut(g).weight)
          << "case " << i << " kernel " << kernel_on;
      opt.transport = transport::TransportKind::kShm;
      for (const std::uint32_t procs : {1u, 2u, 4u}) {
        opt.num_processes = procs;
        const auto shm = ampc::ampc_approx_min_cut(g, opt);
        expect_mincut_reports_equal(
            shm, local,
            "case " + std::to_string(i) + " kernel " +
                std::to_string(kernel_on) + " procs " + std::to_string(procs));
      }
    }
  }
}

TEST(CrossValidation, KCutReportBitIdenticalAcrossTransports) {
  for (std::uint64_t i = 0; i < 3; ++i) {
    // Connected cases only (see KernelizedKCutAgreesOnAllBackends).
    const WGraph g = kernel_zoo_case((i % 3 == 2) ? 3 * i + 1 : 3 * i);
    const auto k = static_cast<std::uint32_t>(2 + i % 2);
    for (const bool kernel_on : {false, true}) {
      ampc::AmpcMinCutOptions opt;
      opt.recursion.seed = i;
      opt.recursion.trials = 4;
      opt.recursion.local_threshold = 4;
      opt.recursion.threads = 1;
      if (kernel_on) opt.recursion.kernel = kernel::enabled_defaults();
      const ampc::AmpcKCutReport local = ampc::ampc_apx_split_k_cut(g, k, opt);
      opt.transport = transport::TransportKind::kShm;
      for (const std::uint32_t procs : {1u, 2u, 4u}) {
        opt.num_processes = procs;
        const ampc::AmpcKCutReport shm = ampc::ampc_apx_split_k_cut(g, k, opt);
        const std::string what = "case " + std::to_string(i) + " kernel " +
                                 std::to_string(kernel_on) + " procs " +
                                 std::to_string(procs);
        EXPECT_EQ(shm.result.weight, local.result.weight) << what;
        EXPECT_EQ(shm.result.part, local.result.part) << what;
        EXPECT_EQ(shm.result.num_parts, local.result.num_parts) << what;
        EXPECT_EQ(shm.measured_rounds, local.measured_rounds) << what;
        EXPECT_EQ(shm.charged_rounds, local.charged_rounds) << what;
        EXPECT_EQ(k_cut_weight(g, shm.result.part), shm.result.weight) << what;
      }
    }
  }
}

}  // namespace
}  // namespace ampccut
