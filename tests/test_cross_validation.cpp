// Cross-validation property suite: four independent min-cut implementations
// must agree on the min-cut VALUE over a spread of random small weighted
// graphs. This is the Henzinger-et-al-style harness the benches lean on:
// when solvers with disjoint failure modes (matrix Stoer–Wagner, randomized
// contraction, exhaustive enumeration, the AMPC pipeline) all report the same
// number, the number is almost certainly the min cut.
//
// Agreement semantics per solver:
//   * brute_force_min_cut     — exact by enumeration, the final word;
//   * stoer_wagner_min_cut    — exact deterministic, must match brute force;
//   * karger_repeated         — Monte Carlo; with n <= 12 and 300 trials the
//     per-graph failure probability is well under 1e-6, and every run is
//     seed-deterministic, so a passing configuration stays passing;
//   * ampc_approx_min_cut     — the paper's (2+eps) pipeline; its recursion
//     with several trials on these sizes lands exact (asserted), and its
//     reported side must be a real cut of the claimed weight.
#include <gtest/gtest.h>

#include <cstdint>

#include "ampc_algo/mincut_ampc.h"
#include "exact/brute_force.h"
#include "exact/karger.h"
#include "exact/stoer_wagner.h"
#include "graph/generators.h"

namespace ampccut {
namespace {

// One generator family per residue so the ~50 cases sweep ER graphs, fixed
// edge-count graphs, planted cuts, and structured controls.
WGraph make_case(std::uint64_t i) {
  const std::uint64_t seed = i * 977 + 13;
  const VertexId n = 6 + static_cast<VertexId>(i % 7);  // 6..12
  WGraph g;
  switch (i % 5) {
    case 0:
      g = gen_erdos_renyi(n, 0.45, seed);
      break;
    case 1:
      g = gen_random_connected(n, n + 2 + i % 5, seed);
      break;
    case 2:
      g = gen_planted_cut(n, 0.8, 1 + static_cast<VertexId>(i % 2), seed);
      break;
    case 3:
      g = gen_complete(n);
      break;
    default:
      g = gen_cycle(n);
      break;
  }
  randomize_weights(g, 6, seed + 1);
  return g;
}

TEST(CrossValidation, FourSolversAgreeOnFiftyRandomGraphs) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    const WGraph g = make_case(i);
    const auto bf = brute_force_min_cut(g);
    ASSERT_LT(bf.weight, kInfiniteWeight) << "case " << i;

    const auto sw = stoer_wagner_min_cut(g);
    EXPECT_EQ(sw.weight, bf.weight) << "stoer_wagner, case " << i;
    EXPECT_EQ(cut_weight(g, sw.side), sw.weight) << "case " << i;

    const auto ka = karger_repeated(g, 300, i);
    EXPECT_EQ(ka.weight, bf.weight) << "karger, case " << i;
    EXPECT_EQ(cut_weight(g, ka.side), ka.weight) << "case " << i;

    ampc::AmpcMinCutOptions opt;
    opt.recursion.seed = i;
    opt.recursion.trials = 6;
    opt.recursion.local_threshold = 4;
    const auto am = ampc::ampc_approx_min_cut(g, opt);
    EXPECT_EQ(am.weight, bf.weight) << "mincut_ampc, case " << i;
    EXPECT_EQ(cut_weight(g, am.side), am.weight) << "case " << i;
  }
}

TEST(CrossValidation, KCutSolversAgreeOnSmallGraphs) {
  // Same idea one level up: the recursive k-cut against brute force.
  for (std::uint64_t i = 0; i < 8; ++i) {
    const WGraph g = make_case(i * 3 + 1);
    const auto bf2 = brute_force_min_k_cut(g, 2);
    const auto bf = brute_force_min_cut(g);
    EXPECT_EQ(bf2.weight, bf.weight) << "case " << i;
    EXPECT_EQ(k_cut_weight(g, bf2.part), bf2.weight) << "case " << i;
  }
}

}  // namespace
}  // namespace ampccut
