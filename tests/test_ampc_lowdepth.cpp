#include <gtest/gtest.h>

#include "ampc_algo/low_depth_ampc.h"
#include "ampc_algo/singleton_ampc.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "tree/low_depth.h"

namespace ampccut::ampc {
namespace {

Runtime make_rt(std::uint64_t problem, double eps = 0.5) {
  return Runtime(Config::for_problem(problem, eps));
}

struct Both {
  AmpcDecomposition ampc;
  LowDepthDecomposition seq;
};

Both build_both(const WGraph& tree_graph, std::uint64_t seed) {
  std::vector<TimeStep> times(tree_graph.edges.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    times[i] = static_cast<TimeStep>(i + 1);
  }
  Rng rng(seed);
  std::shuffle(times.begin(), times.end(), rng);
  Both b;
  Runtime rt = make_rt(tree_graph.n);
  const AmpcRootedTree at =
      ampc_root_tree(rt, tree_graph.n, tree_graph.edges, times, 0);
  b.ampc = ampc_low_depth_decomposition(rt, at);
  const RootedTree st =
      build_rooted_tree(tree_graph.n, tree_graph.edges, times, 0);
  const HeavyLight hl = build_heavy_light(st);
  b.seq = build_low_depth_decomposition(st, hl);
  return b;
}

TEST(AmpcLowDepth, MatchesSequentialLabelForLabel) {
  for (const WGraph& g :
       {gen_path(150), gen_star(150), gen_broom(151), gen_binary_tree(127),
        gen_caterpillar(30, 4), gen_random_tree(200, 3),
        gen_random_tree(200, 4), gen_random_tree(77, 5)}) {
    const Both b = build_both(g, g.n);
    ASSERT_EQ(b.ampc.height, b.seq.height) << "n=" << g.n;
    for (VertexId v = 0; v < g.n; ++v) {
      EXPECT_EQ(b.ampc.label[v], b.seq.label[v]) << "n=" << g.n << " v=" << v;
      EXPECT_EQ(b.ampc.leaf_depth[v], b.seq.leaf_depth[v]);
      EXPECT_EQ(b.ampc.pos[v], b.seq.pos_in_path[v]);
      EXPECT_EQ(b.ampc.len[v], b.seq.path_len[b.seq.path_id[v]]);
    }
  }
}

TEST(AmpcLowDepth, HeadsAreConsistent) {
  const WGraph g = gen_random_tree(300, 9);
  const Both b = build_both(g, 9);
  for (VertexId v = 0; v < g.n; ++v) {
    // head is on the same path at position 0.
    EXPECT_EQ(b.ampc.head[b.ampc.head[v]], b.ampc.head[v]);
    EXPECT_EQ(b.ampc.pos[b.ampc.head[v]], 0u);
  }
}

TEST(AmpcLowDepth, ManyRandomTreesStayValid) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const VertexId n = 2 + static_cast<VertexId>((seed * 31) % 200);
    const WGraph g = gen_random_tree(n, seed);
    const Both b = build_both(g, seed);
    for (VertexId v = 0; v < n; ++v) {
      ASSERT_EQ(b.ampc.label[v], b.seq.label[v])
          << "seed=" << seed << " n=" << n << " v=" << v;
    }
  }
}

TEST(AmpcLowDepth, RoundCountFlatAcrossSizes) {
  std::uint64_t small_rounds = 0, large_rounds = 0;
  {
    const WGraph g = gen_random_tree(1 << 8, 1);
    std::vector<TimeStep> times(g.edges.size());
    for (std::size_t i = 0; i < times.size(); ++i)
      times[i] = static_cast<TimeStep>(i + 1);
    Runtime rt = make_rt(g.n);
    const auto at = ampc_root_tree(rt, g.n, g.edges, times, 0);
    (void)ampc_low_depth_decomposition(rt, at);
    small_rounds = rt.metrics().rounds;
  }
  {
    const WGraph g = gen_random_tree(1 << 13, 1);
    std::vector<TimeStep> times(g.edges.size());
    for (std::size_t i = 0; i < times.size(); ++i)
      times[i] = static_cast<TimeStep>(i + 1);
    Runtime rt = make_rt(g.n);
    const auto at = ampc_root_tree(rt, g.n, g.edges, times, 0);
    (void)ampc_low_depth_decomposition(rt, at);
    large_rounds = rt.metrics().rounds;
  }
  EXPECT_LE(large_rounds, small_rounds + 10);
}

// ---- The AMPC tracker vs. the oracle: the central equivalence. -----------

void expect_ampc_tracker_matches(const WGraph& g, std::uint64_t seed) {
  const ContractionOrder o = make_contraction_order(g, seed);
  const SingletonCutResult oracle = min_singleton_cut_oracle(g, o);
  Runtime rt = make_rt(g.n + g.m());
  const SingletonCutResult got = ampc_min_singleton_cut(rt, g, o);
  ASSERT_EQ(got.weight, oracle.weight)
      << "AMPC tracker disagrees: n=" << g.n << " m=" << g.m()
      << " seed=" << seed;
  const auto bag = reconstruct_bag(g, o, got.rep, got.time);
  EXPECT_EQ(cut_weight(g, bag), got.weight);
}

TEST(AmpcSingleton, MatchesOracleOnTinyGraphs) {
  WGraph k2;
  k2.n = 2;
  k2.add_edge(0, 1, 7);
  expect_ampc_tracker_matches(k2, 0);
  for (std::uint64_t s = 0; s < 6; ++s) {
    expect_ampc_tracker_matches(gen_complete(4), s);
    expect_ampc_tracker_matches(gen_path(5), s);
  }
}

TEST(AmpcSingleton, MatchesOracleOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const VertexId n = 5 + static_cast<VertexId>(seed % 30);
    const WGraph g = gen_erdos_renyi(n, 0.3, seed);
    expect_ampc_tracker_matches(g, seed * 3 + 1);
  }
}

TEST(AmpcSingleton, MatchesOracleOnWeightedAndStructured) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    WGraph g = gen_erdos_renyi(25, 0.3, seed + 70);
    randomize_weights(g, 12, seed);
    expect_ampc_tracker_matches(g, seed);
    expect_ampc_tracker_matches(gen_cycle(24), seed);
    expect_ampc_tracker_matches(gen_grid(5, 6), seed);
    expect_ampc_tracker_matches(gen_planted_cut(30, 0.4, 2, seed), seed);
    expect_ampc_tracker_matches(gen_random_tree(30, seed), seed);
    expect_ampc_tracker_matches(gen_star(20), seed);
  }
}

TEST(AmpcSingleton, BoruvkaMsfVariantAgrees) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const WGraph g = gen_erdos_renyi(30, 0.25, seed + 200);
    const ContractionOrder o = make_contraction_order(g, seed);
    Runtime rt = make_rt(g.n + g.m());
    AmpcSingletonOptions opt;
    opt.use_boruvka_msf = true;
    const auto got = ampc_min_singleton_cut(rt, g, o, opt);
    EXPECT_EQ(got.weight, min_singleton_cut_oracle(g, o).weight);
    EXPECT_EQ(rt.metrics().charged_by_label.count(
                  "msf[cited Behnezhad et al. 2020]"),
              0u);
  }
}

TEST(AmpcSingleton, RoundsAreSizeIndependent) {
  // Theorem 3: O(1/eps) rounds with machine memory N^eps. Both sizes sit
  // above the simulator's 64-word memory floor so the N^eps scaling law is
  // in effect; growing N by 8x must leave rounds essentially flat.
  std::uint64_t small_rounds = 0, large_rounds = 0;
  {
    const WGraph g = gen_random_connected(1024, 3072, 1);
    const ContractionOrder o = make_contraction_order(g, 1);
    Runtime rt = make_rt(g.n + g.m());
    (void)ampc_min_singleton_cut(rt, g, o);
    small_rounds = rt.metrics().model_rounds();
  }
  {
    const WGraph g = gen_random_connected(8192, 24576, 1);
    const ContractionOrder o = make_contraction_order(g, 1);
    Runtime rt = make_rt(g.n + g.m());
    (void)ampc_min_singleton_cut(rt, g, o);
    large_rounds = rt.metrics().model_rounds();
  }
  EXPECT_LE(large_rounds, small_rounds + 12);
}

}  // namespace
}  // namespace ampccut::ampc
