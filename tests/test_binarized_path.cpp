// Brute-force validation of the binarized-path closed forms: every arithmetic
// shortcut is checked against an explicit tree walk for all path lengths up
// to a few hundred.
#include <gtest/gtest.h>

#include <vector>

#include "tree/binarized_path.h"

namespace ampccut {
namespace {

namespace bp = binpath;

// Explicit reference model of the heap-shaped tree.
struct RefTree {
  std::uint64_t leaves;
  explicit RefTree(std::uint64_t l) : leaves(l) {}

  [[nodiscard]] bool leaf(bp::NodeId x) const { return x >= leaves; }

  // Pre-order leaf list by explicit traversal.
  [[nodiscard]] std::vector<bp::NodeId> preorder_leaves() const {
    std::vector<bp::NodeId> out;
    std::vector<bp::NodeId> stack{1};
    while (!stack.empty()) {
      const bp::NodeId x = stack.back();
      stack.pop_back();
      if (leaf(x)) {
        out.push_back(x);
        continue;
      }
      stack.push_back(2 * x + 1);
      stack.push_back(2 * x);
    }
    return out;
  }

  // Label by the definitional climb (Algorithm 2 line 14): the highest
  // ancestor u' such that the leaf is the leftmost leaf-descendant of u''s
  // right child; otherwise the leaf itself.
  [[nodiscard]] std::uint32_t label_by_definition(bp::NodeId leaf_node) const {
    bp::NodeId best = leaf_node;
    for (bp::NodeId anc = leaf_node / 2; anc >= 1; anc /= 2) {
      bp::NodeId lm = 2 * anc + 1;  // right child
      while (!leaf(lm)) lm = 2 * lm;
      if (lm == leaf_node) best = anc;  // higher ancestors overwrite
      if (anc == 1) break;
    }
    return bp::depth(best);
  }
};

TEST(BinarizedPath, StructureBasics) {
  EXPECT_EQ(bp::num_nodes(1), 1u);
  EXPECT_EQ(bp::num_nodes(4), 7u);
  EXPECT_EQ(bp::depth(1), 1u);
  EXPECT_EQ(bp::depth(2), 2u);
  EXPECT_EQ(bp::depth(7), 3u);
  EXPECT_TRUE(bp::is_left_child(2));
  EXPECT_TRUE(bp::is_right_child(3));
  EXPECT_FALSE(bp::is_left_child(1));
  EXPECT_FALSE(bp::is_right_child(1));
}

TEST(BinarizedPath, LeafIndexMatchesPreorderTraversal) {
  for (std::uint64_t L = 1; L <= 300; ++L) {
    const RefTree ref(L);
    const auto leaves = ref.preorder_leaves();
    ASSERT_EQ(leaves.size(), L);
    for (std::uint64_t j = 0; j < L; ++j) {
      EXPECT_EQ(bp::leaf_index(L, j), leaves[j]) << "L=" << L << " j=" << j;
      EXPECT_EQ(bp::leaf_position(L, leaves[j]), j);
    }
  }
}

TEST(BinarizedPath, HeightIsLogarithmic) {
  for (std::uint64_t L = 1; L <= 4096; L = L * 2 + 1) {
    std::uint32_t max_leaf_depth = 0;
    for (std::uint64_t j = 0; j < L; ++j) {
      max_leaf_depth =
          std::max(max_leaf_depth, bp::depth(bp::leaf_index(L, j)));
    }
    EXPECT_EQ(max_leaf_depth, bp::height(L));
    EXPECT_LE(max_leaf_depth, floor_log2(2 * L - 1) + 1);
  }
}

TEST(BinarizedPath, LabelMatchesDefinitionalClimb) {
  for (std::uint64_t L = 1; L <= 300; ++L) {
    const RefTree ref(L);
    for (std::uint64_t j = 0; j < L; ++j) {
      const bp::NodeId leaf = bp::leaf_index(L, j);
      EXPECT_EQ(bp::leaf_label(L, leaf), ref.label_by_definition(leaf))
          << "L=" << L << " j=" << j;
    }
  }
}

TEST(BinarizedPath, LabelsFormValidDecompositionOfAPath) {
  // Definition 1 specialization on a path: for each level i, contiguous runs
  // of positions with label >= i contain at most one label-i position.
  for (std::uint64_t L = 1; L <= 200; ++L) {
    std::vector<std::uint32_t> lab(L);
    std::uint32_t h = 0;
    for (std::uint64_t j = 0; j < L; ++j) {
      lab[j] = bp::label_at(L, j);
      h = std::max(h, lab[j]);
    }
    for (std::uint32_t i = 1; i <= h; ++i) {
      int in_run = 0;
      for (std::uint64_t j = 0; j <= L; ++j) {
        if (j < L && lab[j] >= i) {
          in_run += (lab[j] == i);
          ASSERT_LE(in_run, 1) << "L=" << L << " level=" << i;
        } else {
          in_run = 0;
        }
      }
    }
  }
}

TEST(BinarizedPath, MinLabelInSubtreeMatchesBruteForce) {
  for (std::uint64_t L : {1u, 2u, 3u, 5u, 8u, 13u, 37u, 64u, 100u}) {
    const RefTree ref(L);
    for (bp::NodeId x = 1; x < bp::num_nodes(L) + 1 && x <= bp::num_nodes(L);
         ++x) {
      // Brute force: min label over leaves in x's subtree.
      std::uint32_t best = ~0u;
      std::vector<bp::NodeId> stack{x};
      while (!stack.empty()) {
        const bp::NodeId y = stack.back();
        stack.pop_back();
        if (ref.leaf(y)) {
          best = std::min(best, bp::leaf_label(L, y));
        } else {
          stack.push_back(2 * y);
          stack.push_back(2 * y + 1);
        }
      }
      EXPECT_EQ(bp::min_label_in_subtree(L, x), best) << "L=" << L << " x=" << x;
    }
  }
}

TEST(BinarizedPath, NearestSmallerMatchesBruteForce) {
  for (std::uint64_t L : {1u, 2u, 3u, 7u, 16u, 33u, 75u, 128u}) {
    std::vector<std::uint32_t> lab(L);
    std::uint32_t h = 0;
    for (std::uint64_t j = 0; j < L; ++j) {
      lab[j] = bp::label_at(L, j);
      h = std::max(h, lab[j]);
    }
    for (std::uint64_t j = 0; j < L; ++j) {
      for (std::uint32_t bound = 1; bound <= h + 1; ++bound) {
        std::uint64_t want_l = bp::kNoPosition;
        for (std::uint64_t t = 0; t < j; ++t)
          if (lab[t] < bound) want_l = t;
        std::uint64_t want_r = bp::kNoPosition;
        for (std::uint64_t t = L; t-- > j + 1;)
          if (lab[t] < bound) want_r = t;
        EXPECT_EQ(bp::nearest_smaller_left(L, j, bound), want_l)
            << "L=" << L << " j=" << j << " bound=" << bound;
        EXPECT_EQ(bp::nearest_smaller_right(L, j, bound), want_r)
            << "L=" << L << " j=" << j << " bound=" << bound;
      }
    }
  }
}

TEST(BinarizedPath, MinLabelInRangeMatchesBruteForce) {
  for (std::uint64_t L : {1u, 2u, 5u, 9u, 21u, 50u, 90u}) {
    std::vector<std::uint32_t> lab(L);
    for (std::uint64_t j = 0; j < L; ++j) lab[j] = bp::label_at(L, j);
    for (std::uint64_t lo = 0; lo < L; ++lo) {
      for (std::uint64_t hi = lo; hi < L; ++hi) {
        std::uint32_t want = ~0u;
        for (std::uint64_t t = lo; t <= hi; ++t) want = std::min(want, lab[t]);
        const auto got = bp::min_label_in_range(L, lo, hi);
        EXPECT_EQ(got.label, want);
        EXPECT_GE(got.pos, lo);
        EXPECT_LE(got.pos, hi);
        EXPECT_EQ(lab[got.pos], got.label);
      }
    }
  }
}

}  // namespace
}  // namespace ampccut
