// Parameterized property sweeps (TEST_P): the library's invariants checked
// across the full (family x seed) grid rather than hand-picked instances.
//
//  P1  tracker equivalence      — oracle == interval tracker, any graph
//  P2  decomposition validity   — Definition 1 + Lemma 10 on any tree
//  P3  approximation guarantee  — (2+eps) min cut on any connected graph
//  P4  k-cut guarantee          — (4+eps) for all k on small graphs
//  P5  Gomory-Hu correctness    — all-pairs cut encoding per seed
#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "exact/stoer_wagner.h"
#include "flow/dinic.h"
#include "flow/gomory_hu.h"
#include "graph/generators.h"
#include "mincut/kcut.h"
#include "mincut/mincut_recursive.h"
#include "mincut/singleton.h"
#include "support/rng.h"
#include "tree/low_depth.h"

namespace ampccut {
namespace {

// ---------------------------------------------------------------- P1 ------
struct GraphCase {
  std::string family;
  std::uint64_t seed;
};

void PrintTo(const GraphCase& c, std::ostream* os) {
  *os << c.family << "/seed" << c.seed;
}

WGraph make_graph(const GraphCase& c) {
  const std::uint64_t s = c.seed;
  const auto n = static_cast<VertexId>(16 + (s * 13) % 40);
  if (c.family == "er_sparse") return gen_erdos_renyi(n, 0.15, s);
  if (c.family == "er_dense") return gen_erdos_renyi(n, 0.5, s);
  if (c.family == "weighted") {
    WGraph g = gen_erdos_renyi(n, 0.3, s);
    randomize_weights(g, 25, s + 1);
    return g;
  }
  if (c.family == "planted") return gen_planted_cut(2 * n, 0.35, 1 + s % 4, s);
  if (c.family == "community")
    return gen_communities(4 * n, 2 + s % 3, 0.4, 2, s);
  if (c.family == "cycle") return gen_cycle(n);
  if (c.family == "grid") return gen_grid(4 + s % 4, 5 + s % 3);
  if (c.family == "tree") return gen_random_tree(n, s);
  if (c.family == "pa") return gen_preferential_attachment(n, 2 + s % 3, s);
  return gen_complete(10 + s % 6);
}

class TrackerEquivalenceP : public ::testing::TestWithParam<GraphCase> {};

TEST_P(TrackerEquivalenceP, OracleEqualsIntervalTracker) {
  const WGraph g = make_graph(GetParam());
  const ContractionOrder o = make_contraction_order(g, GetParam().seed * 7 + 3);
  const auto oracle = min_singleton_cut_oracle(g, o);
  const auto interval = min_singleton_cut_interval(g, o);
  ASSERT_EQ(interval.weight, oracle.weight);
  const auto bag = reconstruct_bag(g, o, interval.rep, interval.time);
  EXPECT_EQ(cut_weight(g, bag), interval.weight);
}

std::vector<GraphCase> grid_cases() {
  std::vector<GraphCase> cases;
  for (const char* family :
       {"er_sparse", "er_dense", "weighted", "planted", "community", "cycle",
        "grid", "tree", "pa", "complete"}) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      cases.push_back({family, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Families, TrackerEquivalenceP, ::testing::ValuesIn(grid_cases()),
    [](const ::testing::TestParamInfo<GraphCase>& param_info) {
      return param_info.param.family + "_" +
             std::to_string(param_info.param.seed);
    });

// ---------------------------------------------------------------- P2 ------
struct TreeCase {
  std::string family;
  VertexId n;
  std::uint64_t seed;
};

WGraph make_tree_graph(const TreeCase& c) {
  if (c.family == "path") return gen_path(c.n);
  if (c.family == "star") return gen_star(c.n);
  if (c.family == "broom") return gen_broom(std::max<VertexId>(3, c.n));
  if (c.family == "caterpillar") return gen_caterpillar(c.n / 4 + 1, 3);
  if (c.family == "binary") return gen_binary_tree(c.n);
  return gen_random_tree(c.n, c.seed);
}

class DecompositionP : public ::testing::TestWithParam<TreeCase> {};

TEST_P(DecompositionP, Definition1AndLemma10Hold) {
  const WGraph g = make_tree_graph(GetParam());
  std::vector<TimeStep> times(g.edges.size());
  for (std::size_t i = 0; i < times.size(); ++i)
    times[i] = static_cast<TimeStep>(i + 1);
  Rng rng(GetParam().seed);
  std::shuffle(times.begin(), times.end(), rng);
  const RootedTree rt = build_rooted_tree(g.n, g.edges, times, 0);
  const HeavyLight hl = build_heavy_light(rt);
  const auto d = build_low_depth_decomposition(rt, hl);
  ASSERT_TRUE(validate_low_depth_decomposition(rt, d));
  const auto stats = decomposition_stats(rt, hl, d);
  EXPECT_LE(stats.max_boundary_edges, 2u);
  const double lg = std::log2(std::max(2.0, static_cast<double>(g.n)));
  EXPECT_LE(stats.height, lg * lg + 2 * lg + 2);
  EXPECT_LE(stats.max_light_on_root_path, lg + 1);
}

std::vector<TreeCase> tree_cases() {
  std::vector<TreeCase> cases;
  for (const char* family :
       {"path", "star", "broom", "caterpillar", "binary", "random"}) {
    for (const VertexId n : {2u, 3u, 17u, 64u, 257u}) {
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        cases.push_back({family, n, seed});
        if (family != std::string("random")) break;  // deterministic shapes
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Trees, DecompositionP, ::testing::ValuesIn(tree_cases()),
    [](const ::testing::TestParamInfo<TreeCase>& param_info) {
      return param_info.param.family + "_n" +
             std::to_string(param_info.param.n) + "_s" +
             std::to_string(param_info.param.seed);
    });

// ---------------------------------------------------------------- P3 ------
class ApproxGuaranteeP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxGuaranteeP, MinCutWithinTwoPlusEps) {
  const std::uint64_t seed = GetParam();
  WGraph g = gen_erdos_renyi(40 + seed % 30, 0.2, seed + 500);
  if (seed % 2 == 1) randomize_weights(g, 15, seed);
  ApproxMinCutOptions opt;
  opt.seed = seed;
  opt.trials = 2;
  opt.local_threshold = 20;
  const auto r = approx_min_cut(g, opt);
  const auto exact = stoer_wagner_min_cut(g);
  EXPECT_EQ(cut_weight(g, r.side), r.weight);
  EXPECT_GE(r.weight, exact.weight);
  EXPECT_LE(static_cast<double>(r.weight),
            2.9 * static_cast<double>(exact.weight) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxGuaranteeP, ::testing::Range<std::uint64_t>(0, 16));

// ---------------------------------------------------------------- P4 ------
class KCutGuaranteeP
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(KCutGuaranteeP, WithinFourPlusEpsOfBruteForce) {
  const auto [k, seed] = GetParam();
  const WGraph g = gen_erdos_renyi(9 + seed % 3, 0.5, seed + 900);
  ApproxMinCutOptions opt;
  opt.seed = seed;
  opt.trials = 2;
  const auto r = apx_split_k_cut_approx(g, k, opt);
  const auto exact = brute_force_min_k_cut(g, k);
  EXPECT_GE(r.num_parts, k);
  EXPECT_EQ(k_cut_weight(g, r.part), r.weight);
  EXPECT_LE(static_cast<double>(r.weight),
            4.9 * static_cast<double>(exact.weight) + 1e-9);
  // Saran–Vazirani with exact splitters tightens to (2-2/k).
  const auto sv = apx_split_k_cut_exact(g, k);
  EXPECT_LE(static_cast<double>(sv.weight),
            (2.0 - 2.0 / k) * static_cast<double>(exact.weight) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, KCutGuaranteeP,
                         ::testing::Combine(::testing::Values(2u, 3u, 4u),
                                            ::testing::Range<std::uint64_t>(0, 5)));

// ---------------------------------------------------------------- P5 ------
class GomoryHuP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GomoryHuP, TreeEncodesAllPairsCuts) {
  const std::uint64_t seed = GetParam();
  WGraph g = gen_erdos_renyi(11, 0.45, seed + 40);
  randomize_weights(g, 9, seed);
  const GomoryHuTree tree = build_gomory_hu(g);
  for (VertexId s = 0; s < g.n; ++s) {
    for (VertexId t = s + 1; t < g.n; ++t) {
      ASSERT_EQ(tree.min_cut(s, t), st_min_cut(g, s, t))
          << "pair " << s << "," << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GomoryHuP, ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace ampccut
