#include <gtest/gtest.h>

#include "exact/stoer_wagner.h"
#include "graph/generators.h"
#include "mincut/mincut_recursive.h"

namespace ampccut {
namespace {

ApproxMinCutOptions fast_opts(std::uint64_t seed) {
  ApproxMinCutOptions o;
  o.seed = seed;
  o.trials = 2;
  o.local_threshold = 24;
  return o;
}

TEST(ApproxMinCut, ValidCutOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const WGraph g = gen_erdos_renyi(80, 0.1, seed);
    const auto r = approx_min_cut(g, fast_opts(seed));
    EXPECT_EQ(cut_weight(g, r.side), r.weight);
    const auto ones = std::count(r.side.begin(), r.side.end(), 1);
    EXPECT_GT(ones, 0);
    EXPECT_LT(ones, static_cast<long>(g.n));
  }
}

TEST(ApproxMinCut, WithinTwoPlusEpsOfExact) {
  // Theorem 1's guarantee is (2+eps) w.h.p.; empirically the result is
  // usually exact. We assert the hard 2+eps bound with eps = 0.9.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const WGraph g = gen_erdos_renyi(60, 0.15, seed + 40);
    const auto exact = stoer_wagner_min_cut(g);
    const auto r = approx_min_cut(g, fast_opts(seed));
    EXPECT_GE(r.weight, exact.weight);
    EXPECT_LE(static_cast<double>(r.weight),
              (2.0 + 0.9) * static_cast<double>(exact.weight) + 1e-9)
        << "seed " << seed;
  }
}

TEST(ApproxMinCut, FindsPlantedCutExactly) {
  // A planted sparse bridge is a singleton-cut magnet: the tracker should
  // recover it exactly.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const WGraph g = gen_planted_cut(80, 0.3, 2, seed);
    const auto exact = stoer_wagner_min_cut(g);
    const auto r = approx_min_cut(g, fast_opts(seed));
    EXPECT_EQ(r.weight, exact.weight) << "seed " << seed;
  }
}

TEST(ApproxMinCut, BarbellIsExact) {
  const WGraph g = gen_barbell(40);
  const auto r = approx_min_cut(g, fast_opts(3));
  EXPECT_EQ(r.weight, 1u);
}

TEST(ApproxMinCut, WeightedGraphs) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    WGraph g = gen_erdos_renyi(50, 0.2, seed + 7);
    randomize_weights(g, 30, seed);
    const auto exact = stoer_wagner_min_cut(g);
    const auto r = approx_min_cut(g, fast_opts(seed));
    EXPECT_EQ(cut_weight(g, r.side), r.weight);
    EXPECT_LE(static_cast<double>(r.weight),
              2.9 * static_cast<double>(exact.weight));
  }
}

TEST(ApproxMinCut, DisconnectedReturnsZero) {
  const WGraph g = gen_two_cycles(30);
  const auto r = approx_min_cut(g, fast_opts(1));
  EXPECT_EQ(r.weight, 0u);
  EXPECT_EQ(cut_weight(g, r.side), 0u);
  const auto ones = std::count(r.side.begin(), r.side.end(), 1);
  EXPECT_EQ(ones, 15);
}

TEST(ApproxMinCut, SmallInstanceGoesLocal) {
  const WGraph g = gen_complete(8);
  const auto r = approx_min_cut(g, fast_opts(1));
  EXPECT_EQ(r.weight, 7u);  // K8 min cut isolates one vertex
  EXPECT_EQ(r.stats.local_solves, r.stats.instances);
  EXPECT_EQ(r.stats.depth, 0u);
}

TEST(ApproxMinCut, RecursionDepthIsDoublyLogarithmic) {
  // The schedule contracts by x = max(4, t^c): depth should stay tiny.
  ApproxMinCutOptions o = fast_opts(5);
  o.trials = 1;
  const WGraph g = gen_random_connected(3000, 9000, 11);
  const auto r = approx_min_cut(g, o);
  EXPECT_LE(r.stats.depth, 7u);
  EXPECT_GE(r.stats.depth, 2u);
  EXPECT_GT(r.stats.tracker_calls, 0u);
}

TEST(ApproxMinCut, OracleAndIntervalBackendsAgreeInDistribution) {
  // Same seed -> same contraction orders -> identical results whichever
  // tracker is used (they compute the same function).
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const WGraph g = gen_erdos_renyi(60, 0.15, seed + 90);
    ApproxMinCutOptions a = fast_opts(seed);
    ApproxMinCutOptions b = fast_opts(seed);
    b.use_oracle_tracker = true;
    EXPECT_EQ(approx_min_cut(g, a).weight, approx_min_cut(g, b).weight);
  }
}

TEST(ApproxMinCut, RejectsDegenerateInputs) {
  WGraph g;
  g.n = 1;
  EXPECT_THROW(approx_min_cut(g, fast_opts(1)), std::logic_error);
}

}  // namespace
}  // namespace ampccut
