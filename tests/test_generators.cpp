#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"

namespace ampccut {
namespace {

TEST(Generators, ErdosRenyiConnectedAndValid) {
  const WGraph g = gen_erdos_renyi(64, 0.1, 1);
  g.validate();
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.n, 64u);
}

TEST(Generators, ErdosRenyiDeterministic) {
  const WGraph a = gen_erdos_renyi(50, 0.2, 9);
  const WGraph b = gen_erdos_renyi(50, 0.2, 9);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i)
    EXPECT_EQ(a.edges[i], b.edges[i]);
}

TEST(Generators, RandomConnectedHasExactEdgeCount) {
  const WGraph g = gen_random_connected(40, 100, 5);
  g.validate();
  EXPECT_EQ(g.m(), 100u);
  EXPECT_TRUE(is_connected(g));
  // Simple graph: no duplicate edges.
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const auto& e : g.edges) {
    auto key = std::minmax(e.u, e.v);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
}

TEST(Generators, PlantedCutHasPlantedBridges) {
  const WGraph g = gen_planted_cut(60, 0.5, 3, 7);
  g.validate();
  EXPECT_TRUE(is_connected(g));
  // Exactly 3 edges cross the planted halves.
  const VertexId half = 30;
  std::size_t crossing = 0;
  for (const auto& e : g.edges) {
    if ((e.u < half) != (e.v < half)) ++crossing;
  }
  EXPECT_EQ(crossing, 3u);
}

TEST(Generators, CommunitiesStructure) {
  const WGraph g = gen_communities(80, 4, 0.5, 2, 3);
  g.validate();
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.n, 80u);
  // Exactly k * bridges crossing edges between communities.
  std::size_t crossing = 0;
  for (const auto& e : g.edges) {
    if (e.u / 20 != e.v / 20) ++crossing;
  }
  EXPECT_EQ(crossing, 8u);
}

TEST(Generators, BarbellMinCutIsOne) {
  const WGraph g = gen_barbell(20);
  g.validate();
  EXPECT_TRUE(is_connected(g));
  std::size_t crossing = 0;
  for (const auto& e : g.edges) {
    if ((e.u < 10) != (e.v < 10)) ++crossing;
  }
  EXPECT_EQ(crossing, 1u);
}

TEST(Generators, CyclesAndComponents) {
  EXPECT_TRUE(is_connected(gen_cycle(17)));
  EXPECT_EQ(gen_cycle(17).m(), 17u);
  const WGraph two = gen_two_cycles(20);
  EXPECT_EQ(count_components(two), 2u);
  EXPECT_EQ(two.m(), 20u);
}

TEST(Generators, GridAndComplete) {
  const WGraph grid = gen_grid(4, 5);
  EXPECT_EQ(grid.n, 20u);
  EXPECT_EQ(grid.m(), 4u * 4 + 3u * 5);
  EXPECT_TRUE(is_connected(grid));
  const WGraph k5 = gen_complete(5);
  EXPECT_EQ(k5.m(), 10u);
}

TEST(Generators, TreesAreTrees) {
  for (const WGraph& t :
       {gen_path(30), gen_star(30), gen_random_tree(30, 3),
        gen_caterpillar(10, 2), gen_broom(30), gen_binary_tree(30)}) {
    t.validate();
    EXPECT_EQ(t.m(), t.n - 1) << "tree edge count";
    EXPECT_TRUE(is_connected(t));
  }
}

TEST(Generators, PreferentialAttachmentDegrees) {
  const WGraph g = gen_preferential_attachment(100, 3, 1);
  g.validate();
  EXPECT_TRUE(is_connected(g));
  // Every vertex past the seed clique contributes exactly d edges.
  EXPECT_EQ(g.m(), 6u + 96u * 3u);
}

// ---------------------------------------------------------------------------
// Degenerate parameters: every out-of-contract call must throw loudly
// (REPRO_CHECK), every in-contract corner case must produce a valid,
// deterministic graph — never hang (the bridge rejection loops) or silently
// emit garbage.

TEST(Generators, DegenerateParametersThrow) {
  EXPECT_THROW(gen_erdos_renyi(0, 0.5, 1), std::logic_error);
  EXPECT_THROW(gen_random_connected(0, 0, 1), std::logic_error);
  EXPECT_THROW(gen_random_connected(5, 3, 1), std::logic_error);   // m < n-1
  EXPECT_THROW(gen_random_connected(5, 11, 1), std::logic_error);  // m > C(5,2)
  EXPECT_THROW(gen_planted_cut(3, 0.5, 1, 1), std::logic_error);
  EXPECT_THROW(gen_communities(10, 6, 0.5, 1, 1), std::logic_error);  // k > n/2
  EXPECT_THROW(gen_communities(10, 1, 0.5, 1, 1), std::logic_error);  // k < 2
  EXPECT_THROW(gen_barbell(3), std::logic_error);
  EXPECT_THROW(gen_cycle(2), std::logic_error);
  EXPECT_THROW(gen_two_cycles(5), std::logic_error);
  EXPECT_THROW(gen_grid(0, 5), std::logic_error);
  EXPECT_THROW(gen_grid(5, 0), std::logic_error);
  EXPECT_THROW(gen_complete(1), std::logic_error);
  EXPECT_THROW(gen_path(0), std::logic_error);
  EXPECT_THROW(gen_star(0), std::logic_error);
  EXPECT_THROW(gen_random_tree(0, 1), std::logic_error);
  EXPECT_THROW(gen_caterpillar(0, 2), std::logic_error);
  EXPECT_THROW(gen_broom(2), std::logic_error);
  EXPECT_THROW(gen_binary_tree(0), std::logic_error);
  EXPECT_THROW(gen_preferential_attachment(3, 3, 1), std::logic_error);
  EXPECT_THROW(gen_preferential_attachment(5, 0, 1), std::logic_error);
  WGraph g = gen_cycle(4);
  EXPECT_THROW(randomize_weights(g, 0, 1), std::logic_error);
}

TEST(Generators, BridgeCountBeyondCrossPairsThrows) {
  // n=4 planted cut has 2*2 = 4 possible cross pairs; 5 would loop forever
  // without the guard. Same for communities with 5*5 pairs per ring link.
  EXPECT_THROW(gen_planted_cut(4, 0.5, 5, 1), std::logic_error);
  EXPECT_THROW(gen_communities(10, 2, 0.5, 26, 1), std::logic_error);
  const WGraph full = gen_planted_cut(4, 0.0, 4, 1);
  full.validate();
  EXPECT_EQ(full.m(), 2u + 4u);  // two 2-paths plus every cross pair
}

TEST(Generators, ProbabilityExtremesAndTinyGraphs) {
  // p = 0: force_connected leaves exactly the spanning path, otherwise empty.
  const WGraph path_only = gen_erdos_renyi(12, 0.0, 3);
  path_only.validate();
  EXPECT_EQ(path_only.m(), 11u);
  EXPECT_TRUE(is_connected(path_only));
  EXPECT_EQ(gen_erdos_renyi(12, 0.0, 3, false).m(), 0u);
  // p = 1: complete graph either way.
  EXPECT_EQ(gen_erdos_renyi(8, 1.0, 3).m(), 28u);
  EXPECT_EQ(gen_erdos_renyi(8, 1.0, 3, false).m(), 28u);
  // Single-vertex graphs are legal and edgeless everywhere they're allowed.
  for (const WGraph& g :
       {gen_erdos_renyi(1, 0.5, 1), gen_random_connected(1, 0, 1), gen_path(1),
        gen_star(1), gen_random_tree(1, 1), gen_binary_tree(1),
        gen_grid(1, 1)}) {
    g.validate();
    EXPECT_EQ(g.n, 1u);
    EXPECT_EQ(g.m(), 0u);
  }
}

TEST(Generators, ZeroBridgesDisconnect) {
  // bridge_edges = 0 is in contract and must cleanly produce the two (or k)
  // components rather than hanging in the bridge loop.
  const WGraph planted = gen_planted_cut(12, 0.6, 0, 5);
  planted.validate();
  EXPECT_EQ(count_components(planted), 2u);
  const WGraph comm = gen_communities(20, 4, 0.6, 0, 5);
  comm.validate();
  EXPECT_EQ(count_components(comm), 4u);
}

TEST(Generators, DegenerateCasesAreDeterministic) {
  auto edges_equal = [](const WGraph& a, const WGraph& b) {
    ASSERT_EQ(a.n, b.n);
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (std::size_t i = 0; i < a.edges.size(); ++i)
      EXPECT_EQ(a.edges[i], b.edges[i]);
  };
  edges_equal(gen_erdos_renyi(12, 0.0, 3), gen_erdos_renyi(12, 0.0, 3));
  edges_equal(gen_erdos_renyi(8, 1.0, 4), gen_erdos_renyi(8, 1.0, 4));
  edges_equal(gen_planted_cut(12, 0.6, 0, 5), gen_planted_cut(12, 0.6, 0, 5));
  edges_equal(gen_communities(20, 4, 0.6, 0, 5),
              gen_communities(20, 4, 0.6, 0, 5));
  edges_equal(gen_random_connected(1, 0, 9), gen_random_connected(1, 0, 9));
}

TEST(Generators, RandomizeWeightsInRange) {
  WGraph g = gen_cycle(50);
  randomize_weights(g, 10, 4);
  for (const auto& e : g.edges) {
    EXPECT_GE(e.w, 1u);
    EXPECT_LE(e.w, 10u);
  }
}

}  // namespace
}  // namespace ampccut
