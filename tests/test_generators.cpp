#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"

namespace ampccut {
namespace {

TEST(Generators, ErdosRenyiConnectedAndValid) {
  const WGraph g = gen_erdos_renyi(64, 0.1, 1);
  g.validate();
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.n, 64u);
}

TEST(Generators, ErdosRenyiDeterministic) {
  const WGraph a = gen_erdos_renyi(50, 0.2, 9);
  const WGraph b = gen_erdos_renyi(50, 0.2, 9);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i)
    EXPECT_EQ(a.edges[i], b.edges[i]);
}

TEST(Generators, RandomConnectedHasExactEdgeCount) {
  const WGraph g = gen_random_connected(40, 100, 5);
  g.validate();
  EXPECT_EQ(g.m(), 100u);
  EXPECT_TRUE(is_connected(g));
  // Simple graph: no duplicate edges.
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const auto& e : g.edges) {
    auto key = std::minmax(e.u, e.v);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
}

TEST(Generators, PlantedCutHasPlantedBridges) {
  const WGraph g = gen_planted_cut(60, 0.5, 3, 7);
  g.validate();
  EXPECT_TRUE(is_connected(g));
  // Exactly 3 edges cross the planted halves.
  const VertexId half = 30;
  std::size_t crossing = 0;
  for (const auto& e : g.edges) {
    if ((e.u < half) != (e.v < half)) ++crossing;
  }
  EXPECT_EQ(crossing, 3u);
}

TEST(Generators, CommunitiesStructure) {
  const WGraph g = gen_communities(80, 4, 0.5, 2, 3);
  g.validate();
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.n, 80u);
  // Exactly k * bridges crossing edges between communities.
  std::size_t crossing = 0;
  for (const auto& e : g.edges) {
    if (e.u / 20 != e.v / 20) ++crossing;
  }
  EXPECT_EQ(crossing, 8u);
}

TEST(Generators, BarbellMinCutIsOne) {
  const WGraph g = gen_barbell(20);
  g.validate();
  EXPECT_TRUE(is_connected(g));
  std::size_t crossing = 0;
  for (const auto& e : g.edges) {
    if ((e.u < 10) != (e.v < 10)) ++crossing;
  }
  EXPECT_EQ(crossing, 1u);
}

TEST(Generators, CyclesAndComponents) {
  EXPECT_TRUE(is_connected(gen_cycle(17)));
  EXPECT_EQ(gen_cycle(17).m(), 17u);
  const WGraph two = gen_two_cycles(20);
  EXPECT_EQ(count_components(two), 2u);
  EXPECT_EQ(two.m(), 20u);
}

TEST(Generators, GridAndComplete) {
  const WGraph grid = gen_grid(4, 5);
  EXPECT_EQ(grid.n, 20u);
  EXPECT_EQ(grid.m(), 4u * 4 + 3u * 5);
  EXPECT_TRUE(is_connected(grid));
  const WGraph k5 = gen_complete(5);
  EXPECT_EQ(k5.m(), 10u);
}

TEST(Generators, TreesAreTrees) {
  for (const WGraph& t :
       {gen_path(30), gen_star(30), gen_random_tree(30, 3),
        gen_caterpillar(10, 2), gen_broom(30), gen_binary_tree(30)}) {
    t.validate();
    EXPECT_EQ(t.m(), t.n - 1) << "tree edge count";
    EXPECT_TRUE(is_connected(t));
  }
}

TEST(Generators, PreferentialAttachmentDegrees) {
  const WGraph g = gen_preferential_attachment(100, 3, 1);
  g.validate();
  EXPECT_TRUE(is_connected(g));
  // Every vertex past the seed clique contributes exactly d edges.
  EXPECT_EQ(g.m(), 6u + 96u * 3u);
}

TEST(Generators, RandomizeWeightsInRange) {
  WGraph g = gen_cycle(50);
  randomize_weights(g, 10, 4);
  for (const auto& e : g.edges) {
    EXPECT_GE(e.w, 1u);
    EXPECT_LE(e.w, 10u);
  }
}

}  // namespace
}  // namespace ampccut
