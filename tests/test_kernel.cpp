// Per-rule unit tests for the exact kernelization front-end (src/kernel):
// hand-built graphs with the exact expected kernel + lineage, unpack
// round-trips asserting the certificate's cut weight recomputed on the
// ORIGINAL graph equals the kernel-side answer, and thread-count
// bit-identity of the whole KernelResult (the tsan CI job runs this file).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exact/brute_force.h"
#include "exact/stoer_wagner.h"
#include "graph/generators.h"
#include "kernel/front.h"
#include "kernel/kernel.h"
#include "support/threadpool.h"

namespace ampccut {
namespace {

using kernel::KernelOptions;
using kernel::KernelResult;
using kernel::kernelize;

KernelOptions only_merge() {
  KernelOptions o = kernel::enabled_defaults();
  o.remove_low_degree = false;
  o.contract_heavy_edges = false;
  return o;
}

KernelOptions no_heavy() {
  KernelOptions o = kernel::enabled_defaults();
  o.contract_heavy_edges = false;
  return o;
}

KernelOptions no_peel() {
  KernelOptions o = kernel::enabled_defaults();
  o.remove_low_degree = false;
  return o;
}

// The members of one original vertex set `side` as a dense side vector.
std::vector<std::uint8_t> side_of(VertexId n,
                                  const std::vector<VertexId>& members) {
  std::vector<std::uint8_t> side(n, 0);
  for (const VertexId v : members) side[v] = 1;
  return side;
}

TEST(KernelRules, ParallelEdgeMergeProducesCanonicalKernel) {
  WGraph g;
  g.n = 3;
  g.add_edge(0, 1, 2);
  g.add_edge(1, 0, 3);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 1, 4);
  g.add_edge(0, 1, 5);

  const KernelResult kr = kernelize(g, only_merge());
  ASSERT_EQ(kr.kernel.n, 3u);
  const std::vector<WEdge> expected = {{0, 1, 10}, {1, 2, 5}};
  EXPECT_EQ(kr.kernel.edges, expected);
  EXPECT_EQ(kr.stats.merged_parallel, 3u);
  EXPECT_EQ(kr.stats.removed_degree_one, 0u);
  EXPECT_EQ(kr.stats.contracted_certified, 0u);
  // Merging alone removes no vertex: the lineage is the identity.
  EXPECT_EQ(kr.map.kernel_of, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(kr.map.candidate_weight, kInfiniteWeight);
  EXPECT_FALSE(kr.solved());
}

TEST(KernelRules, DegreeOneRemovalResolvesAnEdge) {
  WGraph g;
  g.n = 2;
  g.add_edge(0, 1, 4);

  const KernelResult kr = kernelize(g, no_heavy());
  ASSERT_TRUE(kr.solved());
  EXPECT_EQ(kr.stats.removed_degree_one, 1u);
  const MinCutResult r = kr.resolved_cut();
  EXPECT_EQ(r.weight, 4u);
  EXPECT_EQ(cut_weight(g, r.side), 4u);
}

TEST(KernelRules, StarResolvesToCheapestLeaf) {
  // Star around 0 with leaf weights 5, 3, 7: the min cut is the cheapest
  // leaf's singleton. The peel cascade removes everything.
  WGraph g;
  g.n = 4;
  g.add_edge(0, 1, 5);
  g.add_edge(0, 2, 3);
  g.add_edge(0, 3, 7);

  const KernelResult kr = kernelize(g, no_heavy());
  ASSERT_TRUE(kr.solved());
  const MinCutResult r = kr.resolved_cut();
  EXPECT_EQ(r.weight, 3u);
  EXPECT_EQ(r.side, side_of(4, {2}));
  EXPECT_EQ(cut_weight(g, r.side), 3u);
  EXPECT_EQ(r.weight, stoer_wagner_min_cut(g).weight);
}

TEST(KernelRules, DegreeTwoPathContractionKeepsExactKernel) {
  // K4 minus edge (2,3), with (2,3) subdivided through vertex 4 as
  // 2 -9- 4 -2- 3. The peel contracts 4 into an edge (2, 3, 2); without the
  // certified rule nothing else fires, leaving a 4-vertex kernel whose min
  // cut equals the original's.
  WGraph g;
  g.n = 5;
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 1);
  g.add_edge(0, 3, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(1, 3, 1);
  g.add_edge(2, 4, 9);
  g.add_edge(4, 3, 2);

  const KernelResult kr = kernelize(g, no_heavy());
  ASSERT_FALSE(kr.solved());
  ASSERT_EQ(kr.kernel.n, 4u);
  const std::vector<WEdge> expected = {{0, 1, 1}, {0, 2, 1}, {0, 3, 1},
                                       {1, 2, 1}, {1, 3, 1}, {2, 3, 2}};
  EXPECT_EQ(kr.kernel.edges, expected);
  EXPECT_EQ(kr.stats.removed_degree_two, 1u);
  // Vertex 4 rides with its heavier-edge neighbor 2.
  EXPECT_EQ(kr.map.kernel_of, (std::vector<VertexId>{0, 1, 2, 3, 2}));
  EXPECT_EQ(kr.map.candidate_weight, 11u);  // the removed vertex's singleton
  EXPECT_EQ(kr.map.candidate_members, (std::vector<VertexId>{4}));

  // Unpack round-trip: solving the kernel and lifting equals solving the
  // original, and the lifted side really cuts that much in the original.
  const MinCutResult kernel_cut = stoer_wagner_min_cut(kr.kernel);
  const MinCutResult lifted = kr.map.unpack(kernel_cut);
  EXPECT_EQ(lifted.weight, kernel_cut.weight);
  EXPECT_EQ(lifted.weight, stoer_wagner_min_cut(g).weight);
  EXPECT_EQ(cut_weight(g, lifted.side), lifted.weight);
}

TEST(KernelRules, DegreeTwoParallelPairCollapses) {
  // Weighted triangle: every vertex has degree 2, so the peel alone reduces
  // it fully; the a == b case (two parallel edges after the first
  // contraction) is exercised on the way.
  WGraph g;
  g.n = 3;
  g.add_edge(0, 1, 5);
  g.add_edge(0, 2, 3);
  g.add_edge(1, 2, 2);

  const KernelResult kr = kernelize(g, no_heavy());
  ASSERT_TRUE(kr.solved());
  EXPECT_EQ(kr.stats.removed_degree_two, 2u);
  const MinCutResult r = kr.resolved_cut();
  EXPECT_EQ(r.weight, 5u);  // the two cheapest edges: 3 + 2
  EXPECT_EQ(r.side, side_of(3, {2}));
  EXPECT_EQ(cut_weight(g, r.side), 5u);
}

TEST(KernelRules, CertifiedContractionMergesHeavyPairs) {
  // 4-cycle with weights 10, 1, 10, 1: the heavy edges certify (moving one
  // endpoint across a separating cut never helps) and contract, then the
  // remaining 2-vertex kernel resolves to the true min cut of 2.
  WGraph g;
  g.n = 4;
  g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 10);
  g.add_edge(3, 0, 1);

  const KernelResult kr = kernelize(g, no_peel());
  ASSERT_TRUE(kr.solved());
  EXPECT_EQ(kr.stats.contracted_certified, 3u);
  const MinCutResult r = kr.resolved_cut();
  EXPECT_EQ(r.weight, 2u);
  EXPECT_EQ(cut_weight(g, r.side), 2u);
  EXPECT_EQ(r.weight, stoer_wagner_min_cut(g).weight);
}

TEST(KernelRules, ConnectivityCertificateFiresOnCliques) {
  // Unit K4: no single edge is heavy, but every adjacent pair has
  // 1 + 2 * min(1, 1) = 3 >= lambda = 3 edge-disjoint connecting paths, so
  // the certificate contracts the whole clique and resolves mincut = 3.
  const WGraph g = gen_complete(4);
  const KernelResult kr = kernelize(g, no_peel());
  ASSERT_TRUE(kr.solved());
  EXPECT_EQ(kr.stats.contracted_certified, 3u);
  const MinCutResult r = kr.resolved_cut();
  EXPECT_EQ(r.weight, 3u);
  EXPECT_EQ(cut_weight(g, r.side), 3u);
}

TEST(KernelRules, BarbellResolvesToBridge) {
  // Two K8 blobs joined by one edge: the certificate collapses each clique,
  // the parallel merge leaves a single bridge edge, and the final heavy rule
  // resolves the planted min cut of 1 — the VieCut showcase instance.
  const WGraph g = gen_barbell(16);
  const KernelResult kr = kernelize(g, kernel::enabled_defaults());
  ASSERT_TRUE(kr.solved());
  const MinCutResult r = kr.resolved_cut();
  EXPECT_EQ(r.weight, 1u);
  EXPECT_EQ(cut_weight(g, r.side), 1u);
}

TEST(KernelSplit, DisconnectedInputResolvesToZero) {
  WGraph g = gen_cycle(3);
  WGraph h = gen_cycle(4);
  for (const auto& e : h.edges) g.edges.push_back({e.u + 3, e.v + 3, e.w});
  g.n = 7;

  const KernelResult kr = kernelize(g, kernel::enabled_defaults());
  ASSERT_TRUE(kr.solved());
  EXPECT_EQ(kr.kernel.n, 0u);
  EXPECT_EQ(kr.stats.components, 2u);
  const MinCutResult r = kr.resolved_cut();
  EXPECT_EQ(r.weight, 0u);
  EXPECT_EQ(r.side, side_of(7, {0, 1, 2}));
  EXPECT_EQ(cut_weight(g, r.side), 0u);
}

TEST(KernelSplit, TrivialInputsPassThrough) {
  WGraph empty;
  const KernelResult k0 = kernelize(empty, kernel::enabled_defaults());
  EXPECT_TRUE(k0.solved());
  EXPECT_EQ(k0.resolved_cut().weight, kInfiniteWeight);

  WGraph one;
  one.n = 1;
  const KernelResult k1 = kernelize(one, kernel::enabled_defaults());
  EXPECT_TRUE(k1.solved());
  EXPECT_EQ(k1.kernel.n, 1u);
  EXPECT_EQ(k1.map.kernel_of, (std::vector<VertexId>{0}));
  EXPECT_EQ(k1.resolved_cut().weight, kInfiniteWeight);
}

// The zoo used by the round-trip and front-end tests below.
WGraph zoo_case(std::uint64_t i) {
  const std::uint64_t seed = i * 7919 + 3;
  const VertexId n = 8 + static_cast<VertexId>(i % 9);  // 8..16
  WGraph g;
  switch (i % 7) {
    case 0:
      g = gen_erdos_renyi(n, 0.35, seed);
      break;
    case 1:
      g = gen_planted_cut(n, 0.7, 1 + static_cast<VertexId>(i % 3), seed);
      break;
    case 2:
      g = gen_communities(3 * n, 3, 0.6, 2, seed);
      break;
    case 3:
      g = gen_barbell(n);
      break;
    case 4:
      g = gen_random_tree(n, seed);
      break;
    case 5:
      g = gen_grid(3, 1 + n / 3);
      break;
    default:
      g = gen_random_connected(n, n + 3 + i % 4, seed);
      break;
  }
  if (i % 2 == 1) randomize_weights(g, 7, seed + 1);
  return g;
}

TEST(KernelRoundTrip, UnpackedCutMatchesOriginalMinCutOnZoo) {
  for (std::uint64_t i = 0; i < 42; ++i) {
    const WGraph g = zoo_case(i);
    const Weight truth = stoer_wagner_min_cut(g).weight;
    const KernelResult kr = kernelize(g, kernel::enabled_defaults());

    MinCutResult r;
    if (kr.solved()) {
      r = kr.resolved_cut();
    } else {
      r = kr.map.unpack(stoer_wagner_min_cut(kr.kernel));
    }
    EXPECT_EQ(r.weight, truth) << "case " << i;
    // The reduction-safety property: the certificate's weight recomputed on
    // the ORIGINAL graph equals the kernel-side answer.
    EXPECT_EQ(cut_weight(g, r.side), r.weight) << "case " << i;
    // The lineage is a partition of the original vertices.
    if (!kr.solved()) {
      std::vector<std::uint64_t> bucket(kr.kernel.n, 0);
      for (VertexId v = 0; v < g.n; ++v) {
        ASSERT_LT(kr.map.kernel_of[v], kr.kernel.n) << "case " << i;
        ++bucket[kr.map.kernel_of[v]];
      }
      for (VertexId kv = 0; kv < kr.kernel.n; ++kv) {
        EXPECT_GE(bucket[kv], 1u) << "case " << i << " kernel vertex " << kv;
      }
    }
  }
}

TEST(KernelFront, StoerWagnerKernelizedMatchesPlain) {
  for (std::uint64_t i = 0; i < 42; ++i) {
    const WGraph g = zoo_case(i);
    const Weight truth = stoer_wagner_min_cut(g).weight;
    const MinCutResult r = kernel::stoer_wagner_min_cut_kernelized(g);
    EXPECT_EQ(r.weight, truth) << "case " << i;
    EXPECT_EQ(cut_weight(g, r.side), r.weight) << "case " << i;
    // Disabled options defer to the plain solver bit-for-bit.
    const MinCutResult off =
        kernel::stoer_wagner_min_cut_kernelized(g, KernelOptions{});
    const MinCutResult plain = stoer_wagner_min_cut(g);
    EXPECT_EQ(off.weight, plain.weight) << "case " << i;
    EXPECT_EQ(off.side, plain.side) << "case " << i;
  }
}

TEST(KernelFront, KargerSteinKernelizedFindsExactCut) {
  for (std::uint64_t i = 0; i < 21; ++i) {
    const WGraph g = zoo_case(i);
    const Weight truth = stoer_wagner_min_cut(g).weight;
    // Seed-deterministic: a passing configuration stays passing.
    const MinCutResult r = kernel::karger_stein_kernelized(g, 16, i + 1);
    EXPECT_EQ(r.weight, truth) << "case " << i;
    EXPECT_EQ(cut_weight(g, r.side), r.weight) << "case " << i;
  }
}

TEST(KernelDeterminism, BitIdenticalAcrossThreadCounts) {
  // Two shapes: a sparse graph that reduces heavily (peel cascades + rebuild
  // paths) and a dense one that barely reduces (the certificate scan); both
  // have enough edges to push the psort primitives onto their parallel
  // paths. The reference is the fully sequential run (pool == nullptr).
  std::vector<WGraph> graphs;
  graphs.push_back(gen_random_connected(6000, 9000, 42));
  randomize_weights(graphs.back(), 9, 43);
  graphs.push_back(gen_erdos_renyi(200, 0.5, 7));

  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const WGraph& g = graphs[gi];
    const KernelResult ref = kernelize(g, kernel::enabled_defaults(), nullptr);
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
      ThreadPool pool(threads);
      const KernelResult kr = kernelize(g, kernel::enabled_defaults(), &pool);
      EXPECT_EQ(kr.kernel.n, ref.kernel.n) << "graph " << gi << " t" << threads;
      EXPECT_EQ(kr.kernel.edges, ref.kernel.edges)
          << "graph " << gi << " t" << threads;
      EXPECT_EQ(kr.map.kernel_of, ref.map.kernel_of)
          << "graph " << gi << " t" << threads;
      EXPECT_EQ(kr.map.candidate_weight, ref.map.candidate_weight)
          << "graph " << gi << " t" << threads;
      EXPECT_EQ(kr.map.candidate_members, ref.map.candidate_members)
          << "graph " << gi << " t" << threads;
      EXPECT_EQ(kr.stats, ref.stats) << "graph " << gi << " t" << threads;
    }
  }
}

TEST(KernelDeterminism, SparseGraphActuallyReduces) {
  // Guard for the determinism fixture above and the bench families: the
  // sparse instance must kernelize substantially or the speedup story is
  // fiction.
  WGraph g = gen_random_connected(6000, 9000, 42);
  const KernelResult kr = kernelize(g, kernel::enabled_defaults());
  EXPECT_LT(kr.stats.kernel_n, kr.stats.original_n / 2);
}

}  // namespace
}  // namespace ampccut
