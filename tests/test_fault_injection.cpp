// Deterministic fault injection & round-level recovery (DESIGN.md "Fault
// injection & round-level recovery").
//
// The contract under test: with any FaultPlan whose retries succeed, every
// backend returns bit-identical results AND model metrics (excluding the
// fault counters themselves) to the fault-free run, at every thread count —
// because a failed round's staged writes are discarded while committed
// tables are untouched, replay reproduces the unfailed execution exactly.
// Runs under the tsan and asan-ubsan presets (suite name FaultInjection is
// in both CI filters); AMPC_CHAOS_RATE drives the chaos job's rate sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "ampc/fault.h"
#include "ampc/runtime.h"
#include "ampc_algo/kcut_ampc.h"
#include "ampc_algo/mincut_ampc.h"
#include "exact/stoer_wagner.h"
#include "graph/generators.h"
#include "support/errors.h"
#include "support/threadpool.h"

namespace ampccut::ampc {
namespace {

// ---------------------------------------------------------------------------
// Direct-runtime harness: two rounds over dense + sparse tables, with a
// driver-side (overflow-buffer) write staged before the first round. Every
// value is written through Merge::kSum, so a replay that double-commits (or
// a discard that loses the overflow write) shows up as a wrong sum, not just
// a wrong presence bit. Returns the run's metrics after asserting contents.
struct WorkloadMetrics {
  std::uint64_t rounds = 0;
  std::uint64_t dht_reads = 0;
  std::uint64_t dht_writes = 0;
  std::uint64_t max_machine_traffic = 0;
  std::uint64_t rounds_retried = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t machine_failures = 0;
};

constexpr std::uint64_t kMachines = 8;
constexpr std::uint64_t kPerMachine = 32;
constexpr std::uint64_t kKeys = kMachines * kPerMachine;

WorkloadMetrics run_workload(const FaultPlan& plan, const RetryPolicy& retry,
                             ThreadPool& pool) {
  Config cfg = Config::for_problem(4096, 0.5);  // 64-word machines
  cfg.fault = plan;
  cfg.retry = retry;
  Runtime rt(cfg, &pool);
  auto dense =
      rt.lease_dense<std::uint64_t>("fi.dense", kKeys + 1, 0, Merge::kSum);
  auto sparse =
      rt.lease_table<std::uint64_t, std::uint64_t>("fi.sparse", Merge::kSum);
  // Driver-side write outside any machine: lands in the overflow buffer and
  // must survive a failed first round's discard, committing exactly once.
  dense->put(kKeys, 1000);
  rt.round("fi.write", kMachines, [&](MachineContext& ctx) {
    const std::uint64_t m = ctx.machine_id();
    for (std::uint64_t i = 0; i < kPerMachine; ++i) {
      const std::uint64_t k = m * kPerMachine + i;
      dense->put(k, 3 * k + 1);
      sparse->put(k, k ^ 0x5aa5ull);
      (void)dense->get((k + 7) % kKeys);
    }
  });
  rt.round("fi.derive", kMachines, [&](MachineContext& ctx) {
    const std::uint64_t m = ctx.machine_id();
    for (std::uint64_t i = 0; i < kPerMachine; ++i) {
      const std::uint64_t k = m * kPerMachine + i;
      sparse->put(kKeys + k, dense->get(k) + sparse->at(k));
    }
  });
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(dense->raw(k), 3 * k + 1);
    EXPECT_EQ(sparse->at(k), k ^ 0x5aa5ull);
    EXPECT_EQ(sparse->at(kKeys + k), (3 * k + 1) + (k ^ 0x5aa5ull));
  }
  EXPECT_EQ(dense->raw(kKeys), 1000u);
  const Metrics& m = rt.metrics();
  return {m.rounds,
          m.dht_reads,
          m.dht_writes,
          m.max_machine_traffic,
          m.rounds_retried,
          m.faults_injected.load(),
          m.machine_failures.load()};
}

void expect_same_model_metrics(const WorkloadMetrics& a,
                               const WorkloadMetrics& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.dht_reads, b.dht_reads);
  EXPECT_EQ(a.dht_writes, b.dht_writes);
  EXPECT_EQ(a.max_machine_traffic, b.max_machine_traffic);
}

// Report comparison for the end-to-end paths: everything except the fault
// counters must be bit-identical between fault-on and fault-off runs.
void expect_reports_equal(const AmpcMinCutReport& a,
                          const AmpcMinCutReport& b) {
  EXPECT_EQ(a.weight, b.weight);
  EXPECT_EQ(a.side, b.side);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.measured_rounds, b.measured_rounds);
  EXPECT_EQ(a.charged_rounds, b.charged_rounds);
  EXPECT_EQ(a.levels_used, b.levels_used);
  EXPECT_EQ(a.dht_reads, b.dht_reads);
  EXPECT_EQ(a.dht_writes, b.dht_writes);
  EXPECT_EQ(a.max_machine_traffic, b.max_machine_traffic);
  EXPECT_EQ(a.peak_table_words, b.peak_table_words);
  EXPECT_EQ(a.budget_violations, b.budget_violations);
}

FaultPlan small_chaos_plan(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.crash_rate = 0.01;
  p.read_fail_rate = 0.002;
  p.write_loss_rate = 0.002;
  p.delay_rate = 0.01;
  p.delay_spin = 32;
  return p;
}

RetryPolicy patient_retry() {
  RetryPolicy r;
  r.max_attempts = 12;
  r.backoff_spin = 16;
  return r;
}

// ---------------------------------------------------------------------------

TEST(FaultInjection, InjectorDecisionsArePureAndAttemptIndexed) {
  FaultPlan p;
  p.seed = 42;
  p.crash_rate = 0.3;
  p.scheduled = {{5, 2, FaultKind::kTableReadFail}};
  const FaultInjector inj(p);
  // Pure in the coordinates: re-asking never changes the answer.
  std::uint64_t fired = 0;
  for (std::uint64_t round = 0; round < 16; ++round) {
    for (std::uint64_t machine = 0; machine < 16; ++machine) {
      for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
        const bool a =
            inj.fires(FaultKind::kMachineCrash, round, machine, attempt);
        EXPECT_EQ(a,
                  inj.fires(FaultKind::kMachineCrash, round, machine, attempt));
        fired += a ? 1 : 0;
      }
    }
  }
  // 768 draws at rate 0.3: the schedule is neither empty nor saturated.
  EXPECT_GT(fired, 100u);
  EXPECT_LT(fired, 500u);
  // Scheduled faults fire on attempt 0 only, so their retry always succeeds.
  EXPECT_TRUE(inj.fires(FaultKind::kTableReadFail, 5, 2, 0));
  EXPECT_FALSE(inj.fires(FaultKind::kTableReadFail, 5, 2, 1));
  EXPECT_FALSE(inj.fires(FaultKind::kTableReadFail, 5, 3, 0));
  EXPECT_FALSE(inj.fires(FaultKind::kTableReadFail, 4, 2, 0));
}

TEST(FaultInjection, EachFailureKindRecoversBitIdentically) {
  ThreadPool pool(4);
  const WorkloadMetrics base = run_workload(FaultPlan{}, RetryPolicy{}, pool);
  EXPECT_EQ(base.rounds, 2u);
  EXPECT_EQ(base.rounds_retried, 0u);
  EXPECT_EQ(base.faults_injected, 0u);
  for (const FaultKind kind :
       {FaultKind::kMachineCrash, FaultKind::kTableReadFail,
        FaultKind::kStagedWriteLoss}) {
    FaultPlan p;
    p.scheduled = {{0, 3, kind}, {1, 5, kind}};
    RetryPolicy r;
    r.max_attempts = 3;
    r.backoff_spin = 16;
    const WorkloadMetrics w = run_workload(p, r, pool);
    expect_same_model_metrics(base, w);
    EXPECT_EQ(w.rounds_retried, 2u);
    EXPECT_EQ(w.machine_failures, 2u);
    EXPECT_EQ(w.faults_injected, 2u);
    // Same plan at one thread: identical recovery, identical counters.
    ThreadPool solo(1);
    const WorkloadMetrics w1 = run_workload(p, r, solo);
    expect_same_model_metrics(base, w1);
    EXPECT_EQ(w1.rounds_retried, w.rounds_retried);
    EXPECT_EQ(w1.machine_failures, w.machine_failures);
    EXPECT_EQ(w1.faults_injected, w.faults_injected);
  }
}

TEST(FaultInjection, SlowMachineDelaysNeverChangeResults) {
  ThreadPool pool(4);
  const WorkloadMetrics base = run_workload(FaultPlan{}, RetryPolicy{}, pool);
  FaultPlan p;
  p.delay_rate = 1.0;
  p.delay_spin = 128;
  const WorkloadMetrics w = run_workload(p, RetryPolicy{}, pool);
  expect_same_model_metrics(base, w);
  EXPECT_EQ(w.rounds_retried, 0u);
  EXPECT_EQ(w.machine_failures, 0u);
  EXPECT_EQ(w.faults_injected, 2 * kMachines);  // every machine, both rounds
}

TEST(FaultInjection, RetriesExhaustedSurfacesAndRuntimeStaysUsable) {
  ThreadPool pool(4);
  Config cfg = Config::for_problem(4096, 0.5);
  cfg.fault.scheduled = {{0, 0, FaultKind::kMachineCrash}};
  cfg.retry.max_attempts = 1;  // no recovery budget at all
  Runtime rt(cfg, &pool);
  auto dense = rt.lease_dense<std::uint64_t>("fi.d", 64, 0, Merge::kSum);
  EXPECT_THROW(rt.round("fi.fail", 4,
                        [&](MachineContext& ctx) {
                          dense->put(ctx.machine_id(), 1);
                        }),
               RetriesExhaustedError);
  EXPECT_EQ(rt.metrics().machine_failures.load(), 1u);
  EXPECT_EQ(rt.metrics().rounds_retried, 0u);
  // The failed round's staging was discarded, not committed.
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(dense->raw(i), 0u);
  // The next logical round has no scheduled fault: the runtime recovered.
  rt.round("fi.ok", 4, [&](MachineContext& ctx) {
    dense->put(ctx.machine_id(), 7);
  });
  for (std::uint64_t m = 0; m < 4; ++m) EXPECT_EQ(dense->raw(m), 7u);
  // Leases stay releasable and reset_for_subproblem stays legal.
  dense.release();
  rt.reset_for_subproblem(Config::for_problem(1024, 0.5));
  EXPECT_EQ(rt.metrics().rounds, 0u);
}

TEST(FaultInjection, BodyThrownFailuresRetryAndOtherExceptionsStaySafe) {
  ThreadPool pool(4);
  Config cfg = Config::for_problem(4096, 0.5);
  cfg.retry.max_attempts = 3;  // no fault plan: real failures only
  Runtime rt(cfg, &pool);
  auto dense = rt.lease_dense<std::uint64_t>("fi.d", 64, 0, Merge::kSum);
  // A real transient failure thrown by the body is retried like an injected
  // one; kSum values prove the replayed round committed exactly once.
  std::atomic<int> boom{1};
  rt.round("fi.transient", 4, [&](MachineContext& ctx) {
    if (ctx.machine_id() == 2 && boom.exchange(0) == 1) {
      throw MachineFailedError(0, 2, "transient body failure");
    }
    dense->put(ctx.machine_id(), ctx.machine_id() + 1);
  });
  EXPECT_EQ(rt.metrics().rounds_retried, 1u);
  EXPECT_EQ(rt.metrics().machine_failures.load(), 1u);
  EXPECT_EQ(rt.metrics().faults_injected.load(), 0u);
  for (std::uint64_t m = 0; m < 4; ++m) EXPECT_EQ(dense->raw(m), m + 1);
  // Any other exception is not retried, but must leave the runtime reusable:
  // staging cleared, committed values untouched, later rounds fine.
  EXPECT_THROW(rt.round("fi.bug", 4,
                        [&](MachineContext& ctx) {
                          dense->put(ctx.machine_id(), 100);
                          if (ctx.machine_id() == 1) {
                            throw std::logic_error("actual bug");
                          }
                        }),
               std::logic_error);
  EXPECT_EQ(rt.metrics().rounds_retried, 1u);
  for (std::uint64_t m = 0; m < 4; ++m) EXPECT_EQ(dense->raw(m), m + 1);
  rt.round("fi.after", 4, [&](MachineContext& ctx) {
    dense->put(32 + ctx.machine_id(), 5);
  });
  for (std::uint64_t m = 0; m < 4; ++m) EXPECT_EQ(dense->raw(32 + m), 5u);
}

TEST(FaultInjection, StrictBudgetEscalatesToTypedError) {
  ThreadPool pool(2);
  Config cfg = Config::for_problem(4096, 0.5);  // 64-word budget
  Runtime counting(cfg, &pool);
  counting.round("fi.heavy", 2,
                 [](MachineContext& ctx) { ctx.count_read(100); });
  EXPECT_EQ(counting.metrics().budget_violations.load(), 2u);

  Config scfg = cfg;
  scfg.strict_budget = true;
  Runtime strict(scfg, &pool);
  try {
    strict.round("fi.heavy", 2,
                 [](MachineContext& ctx) { ctx.count_read(100); });
    FAIL() << "expected BudgetExceededError";
  } catch (const BudgetExceededError& e) {
    EXPECT_GT(e.traffic(), e.budget());
    EXPECT_EQ(e.budget(), 64u);
  }
  // Deterministic => never retried; the runtime stays usable.
  EXPECT_EQ(strict.metrics().rounds_retried, 0u);
  strict.round("fi.light", 2, [](MachineContext&) {});
}

TEST(FaultInjection, StrictBudgetDegradesGracefullyInTracker) {
  const WGraph g = gen_random_connected(40, 90, 7);
  AmpcMinCutOptions base;
  base.recursion.threads = 1;
  base.recursion.seed = 3;
  const AmpcMinCutReport plain = ampc_approx_min_cut(g, base);
  ASSERT_GT(plain.budget_violations, 0u);  // strict mode must have work to do
  AmpcMinCutOptions strict = base;
  strict.strict_budget = true;
  const AmpcMinCutReport degraded = ampc_approx_min_cut(g, strict);
  // Degradation reruns instances with a coarser model; the cut itself is
  // model-eps-independent, so results match the relaxed run bit for bit.
  EXPECT_EQ(degraded.weight, plain.weight);
  EXPECT_EQ(degraded.side, plain.side);
  EXPECT_EQ(degraded.stats, plain.stats);
  EXPECT_GT(degraded.budget_degradations, 0u);
}

TEST(FaultInjection, MinCutFaultOnOffBitIdentityAcrossThreadsAndKernel) {
  const WGraph g = gen_random_connected(48, 110, 11);
  const MinCutResult exact = stoer_wagner_min_cut(g);
  const FaultPlan chaos = small_chaos_plan(99);
  const RetryPolicy retry = patient_retry();
  AmpcMinCutReport faulted_t1;
  AmpcMinCutReport faulted_t4;
  for (const std::uint32_t threads : {1u, 4u}) {
    for (const bool kernel_on : {false, true}) {
      AmpcMinCutOptions off;
      off.recursion.threads = threads;
      off.recursion.seed = 5;
      off.recursion.kernel.enabled = kernel_on;
      AmpcMinCutOptions on = off;
      on.fault = chaos;
      on.retry = retry;
      const AmpcMinCutReport a = ampc_approx_min_cut(g, off);
      const AmpcMinCutReport b = ampc_approx_min_cut(g, on);
      expect_reports_equal(a, b);
      EXPECT_GE(a.weight, exact.weight);  // sanity against the exact backend
      if (!kernel_on) {
        // The kernel path may shrink the instance below the tracker's reach
        // (few rounds => the fixed-seed schedule can be empty); the unkerneled
        // runs must actually have seen and recovered from faults.
        EXPECT_GT(b.faults_injected, 0u);
        (threads == 1 ? faulted_t1 : faulted_t4) = b;
      }
    }
  }
  // Fault schedules are pure functions of (round, machine, attempt): the
  // counters themselves are thread-count invariant, not just the results.
  EXPECT_EQ(faulted_t1.faults_injected, faulted_t4.faults_injected);
  EXPECT_EQ(faulted_t1.machine_failures, faulted_t4.machine_failures);
  EXPECT_EQ(faulted_t1.rounds_retried, faulted_t4.rounds_retried);
  expect_reports_equal(faulted_t1, faulted_t4);
}

TEST(FaultInjection, KCutFaultOnOffBitIdentityAcrossThreads) {
  const WGraph g = gen_random_connected(40, 100, 13);
  const FaultPlan chaos = small_chaos_plan(7);
  const RetryPolicy retry = patient_retry();
  for (const std::uint32_t threads : {1u, 4u}) {
    AmpcMinCutOptions off;
    off.recursion.threads = threads;
    off.recursion.seed = 7;
    AmpcMinCutOptions on = off;
    on.fault = chaos;
    on.retry = retry;
    const AmpcKCutReport a = ampc_apx_split_k_cut(g, 3, off);
    const AmpcKCutReport b = ampc_apx_split_k_cut(g, 3, on);
    EXPECT_EQ(a.result.weight, b.result.weight);
    EXPECT_EQ(a.result.part, b.result.part);
    EXPECT_EQ(a.result.num_parts, b.result.num_parts);
    EXPECT_EQ(a.result.iterations, b.result.iterations);
    EXPECT_EQ(a.measured_rounds, b.measured_rounds);
    EXPECT_EQ(a.charged_rounds, b.charged_rounds);
    EXPECT_EQ(a.faults_injected, 0u);
    EXPECT_GT(b.faults_injected, 0u);
  }
}

// The CI chaos job sets AMPC_CHAOS_RATE and runs this under TSan: a rate
// sweep over the full e1 pipeline. Extreme rates may legitimately exhaust
// the retry budget — surfacing the typed error (instead of corrupting
// state) is part of the contract, so that outcome passes too.
TEST(FaultInjection, ChaosRateFromEnvironment) {
  double rate = 0.02;
  if (const char* env = std::getenv("AMPC_CHAOS_RATE")) {
    rate = std::strtod(env, nullptr);
  }
  if (rate <= 0.0) GTEST_SKIP() << "chaos disabled (AMPC_CHAOS_RATE <= 0)";
  FaultPlan p;
  p.seed = 2026;
  p.crash_rate = rate;
  p.read_fail_rate = rate / 4;
  p.write_loss_rate = rate / 4;
  p.delay_rate = rate;
  p.delay_spin = 64;
  const WGraph g = gen_random_connected(36, 80, 29);
  AmpcMinCutOptions off;
  off.recursion.threads = 4;
  off.recursion.seed = 17;
  const AmpcMinCutReport base = ampc_approx_min_cut(g, off);
  AmpcMinCutOptions on = off;
  on.fault = p;
  on.retry.max_attempts = 16;
  on.retry.backoff_spin = 32;
  try {
    const AmpcMinCutReport r = ampc_approx_min_cut(g, on);
    expect_reports_equal(base, r);
  } catch (const RetriesExhaustedError& e) {
    SUCCEED() << "retry budget exhausted (acceptable at high rates): "
              << e.what();
  }
}

}  // namespace
}  // namespace ampccut::ampc
