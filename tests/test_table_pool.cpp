// The table/runtime pooling contract (DESIGN.md "Table and runtime
// pooling"): a lease must hand back cleared, correctly-sized storage no
// matter what the previous tenant did to it; pooled and fresh-table runs
// must produce bit-identical contents, metrics, and traffic counts across
// merge policies and thread counts; and Runtime::reset_for_subproblem must
// make runtime reuse indistinguishable from fresh construction.
#include <gtest/gtest.h>

#include <algorithm>

#include "ampc/runtime.h"
#include "ampc_algo/singleton_ampc.h"
#include "graph/generators.h"
#include "mincut/contraction.h"

namespace ampccut::ampc {
namespace {

TEST(TablePool, DenseLeaseReturnsClearedCorrectlySizedStorage) {
  Runtime rt(Config::for_problem(1 << 10, 0.5));
  {
    auto t = rt.lease_dense<std::uint64_t>("first", 8, 7);
    ASSERT_EQ(t->size(), 8u);
    t->seed(3, 99);
    rt.round("dirty", 2, [&](MachineContext& ctx) {
      t->put(ctx.machine_id(), 1000 + ctx.machine_id());
    });
    EXPECT_EQ(t->raw(0), 1000u);
  }
  // Same value type: the second lease reuses the first lease's storage...
  auto t2 = rt.lease_dense<std::uint64_t>("second", 16, 3);
  EXPECT_EQ(rt.pool_stats().reuses, 1u);
  // ...but none of its contents, at the new shape and init.
  ASSERT_EQ(t2->size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(t2->raw(i), 3u);

  // Shrinking re-lease is just as clean, including a non-uniform init value
  // (exercises the assign fallback next to the memset fast path).
  t2.release();
  auto t3 = rt.lease_dense<std::uint64_t>("third", 4, 0x0102030405060708ull);
  ASSERT_EQ(t3->size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t3->raw(i), 0x0102030405060708ull);
  }
}

TEST(TablePool, HashLeaseReturnsEmptyStorageWithNewPolicy) {
  Runtime rt(Config::for_problem(1 << 10, 0.5));
  {
    auto t = rt.lease_table<std::uint64_t, std::uint64_t>("sum", Merge::kSum);
    t->seed(1, 10);
    rt.round("w", 4, [&](MachineContext&) { t->put(1, 1); });
    EXPECT_EQ(t->at(1), 14u);
  }
  auto t2 = rt.lease_table<std::uint64_t, std::uint64_t>("min", Merge::kMin);
  EXPECT_EQ(rt.pool_stats().reuses, 1u);
  EXPECT_EQ(t2->size(), 0u);
  EXPECT_FALSE(t2->contains(1));
  // The reset policy (kMin) governs, not the previous tenant's kSum.
  rt.round("w2", 4, [&](MachineContext& ctx) {
    t2->put(5, 100 + ctx.machine_id());
  });
  EXPECT_EQ(t2->at(5), 100u);
}

TEST(TablePool, PoolIsKeyedByConcreteType) {
  Runtime rt(Config::for_problem(1 << 10, 0.5));
  rt.lease_dense<std::uint64_t>("a", 8);      // released immediately
  auto t = rt.lease_dense<std::uint8_t>("b", 8);  // different value type
  EXPECT_EQ(rt.pool_stats().reuses, 0u);
  auto u = rt.lease_dense<std::uint64_t>("c", 8);  // matches the first
  EXPECT_EQ(rt.pool_stats().reuses, 1u);
}

// Everything observable about one workload run — committed contents of all
// four merge policies plus every metric the benches quote.
struct Outcome {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> min_t, max_t, sum_t,
      ovr_t;
  std::vector<std::uint64_t> dense;
  std::uint64_t rounds = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t max_traffic = 0;
  std::uint64_t peak_words = 0;
  std::uint64_t violations = 0;

  bool operator==(const Outcome&) const = default;
};

// The merge-policy workload from test_runtime_concurrency, parameterized
// over how the tables come to exist (direct construction vs leases): two
// rounds over 16 machines, shared and private keys, all four policies, a
// dense kSum table, adaptive reads, and a driver-side overflow write.
template <class MakeTables>
Outcome run_workload(Runtime& rt, MakeTables&& make) {
  auto tables = make(rt);
  auto& [tmin, tmax, tsum, tovr, dense] = tables;

  constexpr std::size_t kMachines = 16;
  rt.round("phase1", kMachines, [&](MachineContext& ctx) {
    const auto m = static_cast<std::uint64_t>(ctx.machine_id());
    for (std::uint64_t k = 0; k < 4; ++k) {
      tmin->put(k, 100 + ((m * 7 + k) % 13));
      tmax->put(k, 100 + ((m * 5 + k) % 11));
      tsum->put(k, m + k);
      tovr->put(k, m);
    }
    tovr->put(1000 + m, m);
    dense->put(m % 8, 1);
    dense->put(8 + m, m);
  });
  tovr->put(7777, 42);  // driver-side overflow write
  rt.round("phase2", kMachines, [&](MachineContext& ctx) {
    const auto m = static_cast<std::uint64_t>(ctx.machine_id());
    const auto v = tsum->at(0);
    tsum->put(4, v % 97);
    tmin->put(2, 50 + m);
    dense->put(m % 4, 2);
  });

  const auto sorted_snapshot = [](const auto& t) {
    auto snap = t->snapshot();
    // repro-lint: allow(raw-sort) canonicalizes an unordered snapshot of
    // distinct keys for comparison; pair self-order needs no tie-break
    std::sort(snap.begin(), snap.end());
    return snap;
  };
  Outcome out;
  out.min_t = sorted_snapshot(tmin);
  out.max_t = sorted_snapshot(tmax);
  out.sum_t = sorted_snapshot(tsum);
  out.ovr_t = sorted_snapshot(tovr);
  for (std::size_t i = 0; i < dense->size(); ++i) {
    out.dense.push_back(dense->raw(i));
  }
  const Metrics& m = rt.metrics();
  out.rounds = m.rounds;
  out.reads = m.dht_reads;
  out.writes = m.dht_writes;
  out.max_traffic = m.max_machine_traffic;
  out.peak_words = m.peak_table_words;
  out.violations = m.budget_violations.load();
  return out;
}

// Direct construction: the pre-pool way tables came to exist. unique_ptr so
// the tuple is movable and -> works like the lease.
auto make_fresh(Runtime& rt) {
  return std::tuple(
      std::make_unique<Table<std::uint64_t, std::uint64_t>>(rt, "min",
                                                            Merge::kMin),
      std::make_unique<Table<std::uint64_t, std::uint64_t>>(rt, "max",
                                                            Merge::kMax),
      std::make_unique<Table<std::uint64_t, std::uint64_t>>(rt, "sum",
                                                            Merge::kSum),
      std::make_unique<Table<std::uint64_t, std::uint64_t>>(rt, "ovr",
                                                            Merge::kOverwrite),
      std::make_unique<DenseTable<std::uint64_t>>(rt, "dense", 64, 5,
                                                  Merge::kSum));
}

auto make_leased(Runtime& rt) {
  return std::tuple(
      rt.lease_table<std::uint64_t, std::uint64_t>("min", Merge::kMin),
      rt.lease_table<std::uint64_t, std::uint64_t>("max", Merge::kMax),
      rt.lease_table<std::uint64_t, std::uint64_t>("sum", Merge::kSum),
      rt.lease_table<std::uint64_t, std::uint64_t>("ovr", Merge::kOverwrite),
      rt.lease_dense<std::uint64_t>("dense", 64, 5, Merge::kSum));
}

TEST(TablePool, PooledAndFreshRunsBitIdenticalAcrossThreadCounts) {
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    Runtime fresh_rt(Config::for_problem(1 << 12, 0.5), &pool);
    const Outcome fresh = run_workload(fresh_rt, make_fresh);

    Runtime lease_rt(Config::for_problem(1 << 12, 0.5), &pool);
    const Outcome first = run_workload(lease_rt, make_leased);
    EXPECT_EQ(fresh, first) << "threads=" << threads;

    // Second run on the same runtime: every lease is now a pool REUSE, and
    // nothing — contents, metrics, traffic — may differ.
    lease_rt.reset_for_subproblem(Config::for_problem(1 << 12, 0.5));
    const Outcome reused = run_workload(lease_rt, make_leased);
    EXPECT_GE(lease_rt.pool_stats().reuses, 5u);
    EXPECT_EQ(fresh, reused) << "threads=" << threads;
  }
}

TEST(TablePool, ResetForSubproblemRestoresConstructionState) {
  Runtime rt(Config::for_problem(1 << 12, 0.5));
  {
    auto t = rt.lease_dense<std::uint64_t>("t", 32, 0);
    rt.round("r", 4, [&](MachineContext& ctx) {
      t->put(ctx.machine_id(), 1);
      (void)t->get(0);
    });
    EXPECT_GT(rt.metrics().rounds, 0u);
    EXPECT_GT(rt.metrics().dht_reads, 0u);
  }
  const Config next = Config::for_problem(1 << 6, 0.5);
  rt.reset_for_subproblem(next);
  EXPECT_EQ(rt.config().machine_memory_words, next.machine_memory_words);
  EXPECT_EQ(rt.metrics().rounds, 0u);
  EXPECT_EQ(rt.metrics().dht_reads, 0u);
  EXPECT_EQ(rt.metrics().dht_writes, 0u);
  EXPECT_EQ(rt.metrics().peak_table_words, 0u);
  EXPECT_TRUE(rt.metrics().rounds_by_label.empty());
}

TEST(TablePool, ResetForSubproblemRejectsLiveTables) {
  Runtime rt(Config::for_problem(1 << 10, 0.5));
  auto t = rt.lease_dense<std::uint64_t>("live", 8);
  EXPECT_THROW(rt.reset_for_subproblem(Config::for_problem(1 << 10, 0.5)),
               std::logic_error);
}

TEST(TablePool, ArenaHandsOutDistinctRuntimesConcurrently) {
  RuntimeArena arena;
  ThreadPool pool(4);
  std::vector<std::uint64_t> sums(8, 0);
  pool.parallel_for(8, [&](std::size_t i) {
    auto rt = arena.acquire(Config::for_problem(1 << 8, 0.5));
    auto t = rt->lease_dense<std::uint64_t>("slot", 16, 0);
    rt->round("w", 4, [&](MachineContext& ctx) {
      t->put(ctx.machine_id(), i * 10 + ctx.machine_id());
    });
    std::uint64_t s = 0;
    for (std::uint64_t j = 0; j < 4; ++j) s += t->raw(j);
    sums[i] = s;
  });
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(sums[i], i * 40 + 6) << i;
  }
}

// End-to-end: the full singleton tracker re-run on a reused runtime (every
// table a pool hit) must reproduce its fresh-runtime result AND metrics —
// the pooling analogue of the determinism contract.
TEST(TablePool, SingletonTrackerBitIdenticalOnReusedRuntime) {
  const WGraph g = gen_random_connected(96, 320, 11);
  const ContractionOrder order = make_contraction_order(g, 3);
  const Config cfg = Config::for_problem(g.n + g.m(), 0.5);

  const auto run = [&](Runtime& rt) {
    const SingletonCutResult r = ampc_min_singleton_cut(rt, g, order);
    const Metrics& m = rt.metrics();
    return std::tuple(r.weight, r.rep, r.time, m.rounds, m.charged_rounds,
                      m.dht_reads, m.dht_writes, m.max_machine_traffic,
                      m.peak_table_words);
  };
  Runtime fresh(cfg);
  const auto a = run(fresh);

  Runtime reused(cfg);
  const auto b1 = run(reused);
  reused.reset_for_subproblem(cfg);
  const auto b2 = run(reused);  // all-pool-hit run
  EXPECT_GT(reused.pool_stats().reuses, 0u);
  EXPECT_EQ(a, b1);
  EXPECT_EQ(a, b2);
}

}  // namespace
}  // namespace ampccut::ampc
