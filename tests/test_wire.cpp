// Wire codec (src/transport/wire.{h,cpp}): differential round-trip coverage
// for every frame kind, plus the rejection paths — truncated buffers at every
// prefix length, unknown kinds, oversized lengths, and internally
// inconsistent batches all throw TransportError rather than reading a byte
// past what they bounds-checked. The fuzz cases are seeded-deterministic
// (SplitMix64), so a failure reproduces exactly. Suite name Wire* is part of
// the multiproc CI job's -R expression.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ampc/runtime.h"
#include "support/errors.h"
#include "transport/wire.h"

namespace ampccut::transport {
namespace {

// Local SplitMix64 keeps the fuzz inputs reproducible and independent of any
// library RNG's stream layout.
std::uint64_t mix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

FrameView decode_one(const std::vector<std::uint8_t>& buf) {
  FrameView view;
  const std::size_t used = decode_frame(buf.data(), buf.size(), &view);
  EXPECT_EQ(used, buf.size());
  return view;
}

// ---------------------------------------------------------------------------
// Frame layer

TEST(Wire, FrameRoundTripsAllKinds) {
  for (const FrameKind kind :
       {FrameKind::kPutBatch, FrameKind::kMachineDone, FrameKind::kDriverBlob,
        FrameKind::kRoundBarrier, FrameKind::kWorkerError,
        FrameKind::kReadRequest, FrameKind::kReadReply}) {
    const std::uint8_t payload[] = {1, 2, 3, 4, 5};
    std::vector<std::uint8_t> buf;
    append_frame(&buf, kind, payload, sizeof(payload));
    ASSERT_EQ(buf.size(), kFrameHeaderBytes + sizeof(payload));
    const FrameView view = decode_one(buf);
    EXPECT_EQ(view.kind, kind);
    ASSERT_EQ(view.size, sizeof(payload));
    EXPECT_EQ(std::memcmp(view.payload, payload, sizeof(payload)), 0);
  }
}

TEST(Wire, FrameDecodeReturnsZeroOnEveryPartialPrefix) {
  const std::uint8_t payload[] = {10, 20, 30};
  std::vector<std::uint8_t> buf;
  append_frame(&buf, FrameKind::kDriverBlob, payload, sizeof(payload));
  FrameView view;
  // A short read from the ring is "wait for more", never an error — for
  // every proper prefix, including the empty one.
  for (std::size_t n = 0; n < buf.size(); ++n) {
    EXPECT_EQ(decode_frame(buf.data(), n, &view), 0u) << "prefix " << n;
  }
  EXPECT_EQ(decode_frame(buf.data(), buf.size(), &view), buf.size());
}

TEST(Wire, FrameDecodeRejectsUnknownKind) {
  const std::uint8_t payload[] = {1};
  std::vector<std::uint8_t> buf;
  append_frame(&buf, FrameKind::kPutBatch, payload, sizeof(payload));
  buf[4] = 0;  // kind byte below the enum range
  FrameView view;
  EXPECT_THROW(decode_frame(buf.data(), buf.size(), &view), TransportError);
  buf[4] = 200;  // and above it
  EXPECT_THROW(decode_frame(buf.data(), buf.size(), &view), TransportError);
}

TEST(Wire, FrameDecodeRejectsOversizedLength) {
  std::vector<std::uint8_t> buf;
  const std::uint32_t len = kMaxFramePayload + 1;
  append_u32(&buf, len);
  append_u8(&buf, static_cast<std::uint8_t>(FrameKind::kPutBatch));
  FrameView view;
  // The length field is rejected before it is ever used to index memory —
  // the "payload" here doesn't even exist.
  EXPECT_THROW(decode_frame(buf.data(), buf.size(), &view), TransportError);
}

TEST(Wire, FrameStreamDecodesBackToBack) {
  std::vector<std::uint8_t> buf;
  std::vector<std::string> payloads = {"", "a", "bb", "ccc"};
  for (const std::string& p : payloads) {
    append_frame(&buf, FrameKind::kDriverBlob,
                 reinterpret_cast<const std::uint8_t*>(p.data()), p.size());
  }
  std::size_t at = 0;
  for (const std::string& p : payloads) {
    FrameView view;
    const std::size_t used =
        decode_frame(buf.data() + at, buf.size() - at, &view);
    ASSERT_GT(used, 0u);
    EXPECT_EQ(view.size, p.size());
    EXPECT_EQ(std::string(view.payload, view.payload + view.size), p);
    at += used;
  }
  EXPECT_EQ(at, buf.size());
}

// ---------------------------------------------------------------------------
// Typed payloads: round trips at the edges

TEST(Wire, PutBatchRoundTripsIncludingMaxMachineId) {
  const std::uint64_t entries[] = {7, 11, 13, 17};  // two u64/u64 pairs
  std::vector<std::uint8_t> buf;
  append_put_batch_prefix(&buf, /*table=*/0xffffffffu,
                          /*machine=*/~0ull, /*count=*/2, /*key_size=*/8,
                          /*value_size=*/8);
  append_bytes(&buf, entries, sizeof(entries));
  const PutBatch b = decode_put_batch(buf.data(), buf.size());
  EXPECT_EQ(b.table, 0xffffffffu);
  EXPECT_EQ(b.machine, ~0ull);
  EXPECT_EQ(b.count, 2u);
  EXPECT_EQ(b.key_size, 8);
  EXPECT_EQ(b.value_size, 8);
  ASSERT_EQ(b.entry_bytes(), sizeof(entries));
  EXPECT_EQ(std::memcmp(b.entries, entries, sizeof(entries)), 0);
}

TEST(Wire, PutBatchAllowsZeroValueSize) {
  // Zero-length values are legal (a set-typed table ships bare keys); only
  // a zero-size ENTRY with a nonzero count is structurally impossible.
  const std::uint32_t keys[] = {1, 2, 3};
  std::vector<std::uint8_t> buf;
  append_put_batch_prefix(&buf, 0, 0, 3, /*key_size=*/4, /*value_size=*/0);
  append_bytes(&buf, keys, sizeof(keys));
  const PutBatch b = decode_put_batch(buf.data(), buf.size());
  EXPECT_EQ(b.count, 3u);
  EXPECT_EQ(b.value_size, 0);
  EXPECT_EQ(b.entry_bytes(), sizeof(keys));
}

TEST(Wire, PutBatchRejectsCorruptShapes) {
  // Entry bytes shorter than count * entry_size.
  {
    std::vector<std::uint8_t> buf;
    append_put_batch_prefix(&buf, 0, 0, /*count=*/4, 8, 8);
    const std::uint64_t one_entry[] = {1, 2};
    append_bytes(&buf, one_entry, sizeof(one_entry));
    EXPECT_THROW(decode_put_batch(buf.data(), buf.size()), TransportError);
  }
  // Trailing bytes beyond the declared entries.
  {
    std::vector<std::uint8_t> buf;
    append_put_batch_prefix(&buf, 0, 0, /*count=*/1, 8, 8);
    const std::uint64_t entries[] = {1, 2};
    append_bytes(&buf, entries, sizeof(entries));
    append_u8(&buf, 0xee);
    EXPECT_THROW(decode_put_batch(buf.data(), buf.size()), TransportError);
  }
  // Zero-size entries with a nonzero count would make entry_bytes() == 0
  // look complete for ANY count — rejected outright.
  {
    std::vector<std::uint8_t> buf;
    append_put_batch_prefix(&buf, 0, 0, /*count=*/5, 0, 0);
    EXPECT_THROW(decode_put_batch(buf.data(), buf.size()), TransportError);
  }
  // Truncated prefix.
  {
    std::vector<std::uint8_t> buf;
    append_put_batch_prefix(&buf, 0, 0, 1, 8, 8);
    for (std::size_t n = 0; n < kPutBatchPrefixBytes; ++n) {
      EXPECT_THROW(decode_put_batch(buf.data(), n), TransportError)
          << "prefix " << n;
    }
  }
}

TEST(Wire, MachineDoneRoundTrips) {
  const MachineDone d{~0ull, 123456789ull, 987654321ull, 42};
  std::vector<std::uint8_t> buf;
  append_machine_done(&buf, d);
  const MachineDone got = decode_machine_done(buf.data(), buf.size());
  EXPECT_EQ(got.machine, d.machine);
  EXPECT_EQ(got.reads, d.reads);
  EXPECT_EQ(got.writes, d.writes);
  EXPECT_EQ(got.faults_delta, d.faults_delta);
  for (std::size_t n = 0; n < buf.size(); ++n) {
    EXPECT_THROW(decode_machine_done(buf.data(), n), TransportError);
  }
}

TEST(Wire, DriverBlobRoundTripsIncludingEmpty) {
  for (const char* text : {"", "interval"}) {
    const std::string payload = text;
    std::vector<std::uint8_t> buf;
    append_driver_blob(&buf, /*machine=*/3,
                       reinterpret_cast<const std::uint8_t*>(payload.data()),
                       payload.size());
    const DriverBlob b = decode_driver_blob(buf.data(), buf.size());
    EXPECT_EQ(b.machine, 3u);
    ASSERT_EQ(b.size, payload.size());
    EXPECT_EQ(std::string(b.data, b.data + b.size), payload);
  }
  // A size field larger than the bytes actually present must not be trusted.
  std::vector<std::uint8_t> buf;
  append_u64(&buf, 0);
  append_u64(&buf, 1 << 20);  // declared size, no data follows
  EXPECT_THROW(decode_driver_blob(buf.data(), buf.size()), TransportError);
}

TEST(Wire, RoundBarrierRoundTrips) {
  const RoundBarrier b{7, 31};
  std::vector<std::uint8_t> buf;
  append_round_barrier(&buf, b);
  const RoundBarrier got = decode_round_barrier(buf.data(), buf.size());
  EXPECT_EQ(got.worker, b.worker);
  EXPECT_EQ(got.machines_run, b.machines_run);
  EXPECT_THROW(decode_round_barrier(buf.data(), buf.size() - 1),
               TransportError);
}

TEST(Wire, WorkerErrorRoundTripsMessage) {
  WorkerError e;
  e.machine = 5;
  e.faults_delta = 1;
  e.code = kWorkerExitMachineFailed;
  e.message = "machine 5 failed on round 2 (injected)";
  std::vector<std::uint8_t> buf;
  append_worker_error(&buf, e);
  const WorkerError got = decode_worker_error(buf.data(), buf.size());
  EXPECT_EQ(got.machine, e.machine);
  EXPECT_EQ(got.faults_delta, e.faults_delta);
  EXPECT_EQ(got.code, e.code);
  EXPECT_EQ(got.message, e.message);
  for (std::size_t n = 0; n < buf.size(); ++n) {
    EXPECT_THROW(decode_worker_error(buf.data(), n), TransportError);
  }
}

TEST(Wire, ReadRequestAndReplyRoundTrip) {
  const std::uint64_t key = 0xdeadbeefcafef00dull;
  std::vector<std::uint8_t> buf;
  append_read_request(&buf, /*table=*/2, /*machine=*/9,
                      reinterpret_cast<const std::uint8_t*>(&key),
                      sizeof(key));
  const ReadRequest req = decode_read_request(buf.data(), buf.size());
  EXPECT_EQ(req.table, 2u);
  EXPECT_EQ(req.machine, 9u);
  ASSERT_EQ(req.key_size, sizeof(key));
  EXPECT_EQ(std::memcmp(req.key, &key, sizeof(key)), 0);

  const std::uint64_t value = 77;
  std::vector<std::uint8_t> rbuf;
  append_read_reply(&rbuf, true,
                    reinterpret_cast<const std::uint8_t*>(&value),
                    sizeof(value));
  const ReadReply rep = decode_read_reply(rbuf.data(), rbuf.size());
  EXPECT_TRUE(rep.found);
  ASSERT_EQ(rep.value_size, sizeof(value));
  EXPECT_EQ(std::memcmp(rep.value, &value, sizeof(value)), 0);

  std::vector<std::uint8_t> miss;
  append_read_reply(&miss, false, nullptr, 0);
  const ReadReply none = decode_read_reply(miss.data(), miss.size());
  EXPECT_FALSE(none.found);
  EXPECT_EQ(none.value_size, 0u);
}

// ---------------------------------------------------------------------------
// Differential fuzz: random batches through the SAME encoder the runtime
// uses (ampc::detail::encode_put_frames), decoded and compared entry-wise.

TEST(Wire, FuzzPutBatchEncoderDecoderAgree) {
  std::uint64_t seed = 0x5eedull;
  for (int iter = 0; iter < 200; ++iter) {
    const std::uint32_t count = static_cast<std::uint32_t>(mix(seed) % 4000);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
    pairs.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      pairs.emplace_back(mix(seed), mix(seed));
    }
    const std::uint32_t table = static_cast<std::uint32_t>(mix(seed));
    const std::uint64_t machine = mix(seed);
    std::vector<std::uint8_t> buf;
    const std::uint64_t frames =
        ampc::detail::encode_put_frames(table, machine, pairs, &buf);
    if (count == 0) {
      EXPECT_EQ(frames, 0u);
      EXPECT_TRUE(buf.empty());
      continue;
    }
    // Decode the stream back and splice the (possibly chunked) entries.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    std::uint64_t seen_frames = 0;
    std::size_t at = 0;
    while (at < buf.size()) {
      FrameView view;
      const std::size_t used =
          decode_frame(buf.data() + at, buf.size() - at, &view);
      ASSERT_GT(used, 0u);
      ASSERT_EQ(view.kind, FrameKind::kPutBatch);
      const PutBatch b = decode_put_batch(view.payload, view.size);
      EXPECT_EQ(b.table, table);
      EXPECT_EQ(b.machine, machine);
      ASSERT_EQ(b.key_size, 8);
      ASSERT_EQ(b.value_size, 8);
      for (std::uint32_t i = 0; i < b.count; ++i) {
        std::uint64_t k = 0;
        std::uint64_t v = 0;
        std::memcpy(&k, b.entries + static_cast<std::size_t>(i) * 16, 8);
        std::memcpy(&v, b.entries + static_cast<std::size_t>(i) * 16 + 8, 8);
        got.emplace_back(k, v);
      }
      ++seen_frames;
      at += used;
    }
    EXPECT_EQ(seen_frames, frames);
    EXPECT_EQ(got, pairs);
  }
}

// Truncation fuzz: every prefix of a valid multi-frame stream either
// decodes some whole frames and then reports "wait for more" (0), or — for
// payload-level corruption introduced below — throws TransportError. It
// never reads out of bounds (ASan enforces) and never mis-decodes.
TEST(Wire, FuzzTruncationNeverMisdecodes) {
  std::uint64_t seed = 0xfeedull;
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < 8; ++i) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
    for (std::uint64_t j = 0; j < 1 + mix(seed) % 50; ++j) {
      pairs.emplace_back(mix(seed), mix(seed));
    }
    ampc::detail::encode_put_frames(static_cast<std::uint32_t>(i), i, pairs,
                                    &buf);
  }
  for (std::size_t cut = 0; cut <= buf.size(); ++cut) {
    std::size_t at = 0;
    for (;;) {
      FrameView view;
      const std::size_t used = decode_frame(buf.data() + at, cut - at, &view);
      if (used == 0) break;  // clean "wait for more" at the cut
      (void)decode_put_batch(view.payload, view.size);
      at += used;
    }
    EXPECT_LE(at, cut);
  }
}

// Random-bytes fuzz on the typed decoders: arbitrary garbage either decodes
// (harmlessly — the bytes happened to form a valid payload) or throws
// TransportError; nothing else escapes, nothing reads out of bounds.
TEST(Wire, FuzzTypedDecodersRejectGarbageSafely) {
  std::uint64_t seed = 0xbadc0deull;
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::uint8_t> junk(mix(seed) % 128);
    for (std::uint8_t& b : junk) b = static_cast<std::uint8_t>(mix(seed));
    const std::uint8_t* p = junk.data();
    const std::size_t n = junk.size();
    try {
      (void)decode_put_batch(p, n);
    } catch (const TransportError&) {
    }
    try {
      (void)decode_machine_done(p, n);
    } catch (const TransportError&) {
    }
    try {
      (void)decode_driver_blob(p, n);
    } catch (const TransportError&) {
    }
    try {
      (void)decode_round_barrier(p, n);
    } catch (const TransportError&) {
    }
    try {
      (void)decode_worker_error(p, n);
    } catch (const TransportError&) {
    }
    try {
      (void)decode_read_request(p, n);
    } catch (const TransportError&) {
    }
    try {
      (void)decode_read_reply(p, n);
    } catch (const TransportError&) {
    }
  }
}

}  // namespace
}  // namespace ampccut::transport
