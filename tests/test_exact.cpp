#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "exact/karger.h"
#include "exact/stoer_wagner.h"
#include "graph/generators.h"

namespace ampccut {
namespace {

TEST(StoerWagner, Triangle) {
  WGraph g;
  g.n = 3;
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  g.add_edge(0, 2, 5);
  const auto r = stoer_wagner_min_cut(g);
  EXPECT_EQ(r.weight, 5u);  // isolate vertex 1
  EXPECT_EQ(cut_weight(g, r.side), r.weight);
}

TEST(StoerWagner, BarbellFindsBridge) {
  const WGraph g = gen_barbell(16);
  const auto r = stoer_wagner_min_cut(g);
  EXPECT_EQ(r.weight, 1u);
  EXPECT_EQ(cut_weight(g, r.side), 1u);
}

TEST(StoerWagner, DisconnectedIsZero) {
  WGraph g;
  g.n = 4;
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto r = stoer_wagner_min_cut(g);
  EXPECT_EQ(r.weight, 0u);
}

TEST(StoerWagner, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const WGraph g = gen_erdos_renyi(10, 0.4, seed);
    WGraph w = g;
    randomize_weights(w, 8, seed + 100);
    const auto sw = stoer_wagner_min_cut(w);
    const auto bf = brute_force_min_cut(w);
    EXPECT_EQ(sw.weight, bf.weight) << "seed " << seed;
    EXPECT_EQ(cut_weight(w, sw.side), sw.weight);
  }
}

TEST(StoerWagner, MergesParallelEdges) {
  WGraph g;
  g.n = 3;
  g.add_edge(0, 1, 1);
  g.add_edge(0, 1, 1);  // parallel
  g.add_edge(1, 2, 3);
  g.add_edge(0, 2, 1);
  const auto r = stoer_wagner_min_cut(g);
  EXPECT_EQ(r.weight, 3u);  // isolate vertex 0: 1+1+1
}

TEST(BruteForce, PathGraph) {
  const WGraph g = gen_path(6);
  const auto r = brute_force_min_cut(g);
  EXPECT_EQ(r.weight, 1u);
}

TEST(BruteForce, KCutOnTwoTriangles) {
  // Two triangles joined by one edge: 2-cut = 1; 3-cut must break a triangle.
  WGraph g;
  g.n = 6;
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);
  g.add_edge(2, 3);
  const auto k2 = brute_force_min_k_cut(g, 2);
  EXPECT_EQ(k2.weight, 1u);
  const auto k3 = brute_force_min_k_cut(g, 3);
  EXPECT_EQ(k3.weight, 3u);
  EXPECT_EQ(k_cut_weight(g, k3.part), k3.weight);
}

TEST(BruteForce, KCutDegenerateCases) {
  const WGraph g = gen_complete(4);
  const auto k1 = brute_force_min_k_cut(g, 1);
  EXPECT_EQ(k1.weight, 0u);
  const auto kn = brute_force_min_k_cut(g, 4);
  EXPECT_EQ(kn.weight, 6u);  // all edges cut
}

TEST(Karger, SingleRunIsValidCut) {
  const WGraph g = gen_erdos_renyi(30, 0.3, 2);
  const auto r = karger_single_run(g, 5);
  EXPECT_EQ(cut_weight(g, r.side), r.weight);
  EXPECT_GT(r.weight, 0u);
}

TEST(Karger, RepeatedFindsBarbellBridge) {
  const WGraph g = gen_barbell(20);
  const auto r = karger_repeated(g, 60, 3);
  EXPECT_EQ(r.weight, 1u);
}

TEST(KargerStein, MatchesExactOnSmallGraphs) {
  int hits = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const WGraph g = gen_erdos_renyi(24, 0.25, seed);
    const auto exact = stoer_wagner_min_cut(g);
    const auto ks = karger_stein(g, 6, seed + 1);
    EXPECT_EQ(cut_weight(g, ks.side), ks.weight);
    EXPECT_GE(ks.weight, exact.weight);
    hits += (ks.weight == exact.weight);
  }
  // Karger–Stein succeeds w.p. Omega(1/log n) per instance; 6 instances on
  // 24 vertices should almost always find the optimum.
  EXPECT_GE(hits, 8);
}

TEST(MinSingletonDegree, Simple) {
  WGraph g;
  g.n = 3;
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  g.add_edge(0, 2, 5);
  EXPECT_EQ(min_singleton_degree(g), 5u);
}

}  // namespace
}  // namespace ampccut
