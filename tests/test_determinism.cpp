// Seed-determinism regression suite (reproducibility contract).
//
// Every randomized entry point takes an explicit seed and must be a pure
// function of (input, seed): identical seeds give identical results across
// runs and across thread schedules. The library earns this by construction —
// Rng is never seeded from std::random_device or the clock, parallel
// reductions land in per-slot storage and are reduced sequentially
// (singleton_interval), and the AMPC tables merge with commutative policies
// (kMin/kMax) with at most one writer per key where order would matter
// (msf proposals, heavy-child election). These tests pin that contract so a
// future "helpful" entropy source or order-dependent reduction breaks CI
// instead of silently de-reproducing experiments.
#include <gtest/gtest.h>

#include "ampc_algo/mincut_ampc.h"
#include "ampc_algo/singleton_ampc.h"
#include "exact/karger.h"
#include "flow/gomory_hu.h"
#include "graph/generators.h"
#include "kernel/kernel.h"
#include "mincut/contraction.h"
#include "serve/cut_server.h"
#include "support/psort.h"
#include "support/threadpool.h"

namespace ampccut {
namespace {

TEST(Determinism, KargerSameSeedSameResult) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    WGraph g = gen_erdos_renyi(24, 0.25, seed + 7);
    randomize_weights(g, 9, seed + 50);
    const auto a = karger_single_run(g, seed);
    const auto b = karger_single_run(g, seed);
    EXPECT_EQ(a.weight, b.weight) << "seed " << seed;
    EXPECT_EQ(a.side, b.side) << "seed " << seed;
    const auto ra = karger_repeated(g, 20, seed);
    const auto rb = karger_repeated(g, 20, seed);
    EXPECT_EQ(ra.weight, rb.weight) << "seed " << seed;
    EXPECT_EQ(ra.side, rb.side) << "seed " << seed;
  }
}

TEST(Determinism, KargerSteinSameSeedSameResult) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const WGraph g = gen_random_connected(30, 80, seed + 3);
    const auto a = karger_stein(g, 4, seed);
    const auto b = karger_stein(g, 4, seed);
    EXPECT_EQ(a.weight, b.weight) << "seed " << seed;
    EXPECT_EQ(a.side, b.side) << "seed " << seed;
  }
}

TEST(Determinism, ContractionOrderSameSeedSameTimes) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const WGraph g = gen_erdos_renyi(40, 0.2, seed + 21);
    const ContractionOrder a = make_contraction_order(g, seed);
    const ContractionOrder b = make_contraction_order(g, seed);
    EXPECT_EQ(a.time, b.time) << "seed " << seed;
  }
}

// The AMPC singleton tracker runs rounds on the shared thread pool, so this
// additionally guards against thread-schedule-dependent results.
TEST(Determinism, SingletonAmpcSameSeedSameResult) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    WGraph g = gen_erdos_renyi(30, 0.25, seed + 11);
    randomize_weights(g, 7, seed + 90);
    const ContractionOrder o = make_contraction_order(g, seed);
    ampc::Runtime rt_a(ampc::Config::for_problem(g.n + g.m(), 0.5));
    const auto a = ampc::ampc_min_singleton_cut(rt_a, g, o);
    ampc::Runtime rt_b(ampc::Config::for_problem(g.n + g.m(), 0.5));
    const auto b = ampc::ampc_min_singleton_cut(rt_b, g, o);
    EXPECT_EQ(a.weight, b.weight) << "seed " << seed;
    EXPECT_EQ(a.rep, b.rep) << "seed " << seed;
    EXPECT_EQ(a.time, b.time) << "seed " << seed;
    // Round/traffic accounting is part of the reproducibility story: the
    // benches report these numbers as experiment results.
    EXPECT_EQ(rt_a.metrics().rounds, rt_b.metrics().rounds) << "seed " << seed;
    EXPECT_EQ(rt_a.metrics().dht_reads, rt_b.metrics().dht_reads)
        << "seed " << seed;
    EXPECT_EQ(rt_a.metrics().dht_writes, rt_b.metrics().dht_writes)
        << "seed " << seed;
  }
}

TEST(Determinism, AmpcMinCutSameSeedSameResult) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const WGraph g = gen_erdos_renyi(40, 0.15, seed + 31);
    ampc::AmpcMinCutOptions opt;
    opt.recursion.seed = seed;
    opt.recursion.trials = 1;
    opt.recursion.local_threshold = 16;
    const auto a = ampc::ampc_approx_min_cut(g, opt);
    const auto b = ampc::ampc_approx_min_cut(g, opt);
    EXPECT_EQ(a.weight, b.weight) << "seed " << seed;
    EXPECT_EQ(a.side, b.side) << "seed " << seed;
    EXPECT_EQ(a.measured_rounds, b.measured_rounds) << "seed " << seed;
    EXPECT_EQ(a.charged_rounds, b.charged_rounds) << "seed " << seed;
  }
}

// The clock ranking in make_contraction_order runs on psort's parallel
// stable sort; ContractionOrder::{perm,time} must be bit-identical at every
// thread count. The big graph (m ~ 10k > psort::kSeqCutoff) actually takes
// the parallel path; the small one pins the sequential-fallback agreement.
TEST(Determinism, ContractionOrderBitIdenticalAcrossThreadCounts) {
  for (const VertexId n : {VertexId{40}, VertexId{200}}) {
    const WGraph g = gen_erdos_renyi(n, 0.5, n + 17);
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      ThreadPool seq(1);
      const ContractionOrder ref = make_contraction_order(g, seed, &seq);
      ASSERT_EQ(ref.perm.size(), g.edges.size());
      for (const std::size_t threads : {std::size_t{2}, std::size_t{3},
                                        std::size_t{5}, std::size_t{0}}) {
        ThreadPool pool(threads);
        const ContractionOrder got = make_contraction_order(g, seed, &pool);
        ASSERT_EQ(got.perm, ref.perm)
            << "n=" << n << " seed=" << seed << " threads=" << threads;
        ASSERT_EQ(got.time, ref.time)
            << "n=" << n << " seed=" << seed << " threads=" << threads;
      }
      // The default pool (the shared one) agrees too.
      const ContractionOrder shared_pool = make_contraction_order(g, seed);
      ASSERT_EQ(shared_pool.perm, ref.perm);
      ASSERT_EQ(shared_pool.time, ref.time);
    }
  }
}

// Seed-corpus regression: pinned FNV-1a digests of ContractionOrder::perm
// for fixed (graph, seed) pairs. A future sort/primitive change that
// silently perturbs the rank order — while still producing a validly
// sorted permutation — fails HERE, loudly, instead of de-reproducing every
// downstream experiment. If a change intentionally alters the order
// (e.g. a new tie-break policy), re-pin these constants and say so in the
// PR: that is an experiment-breaking change, not a refactor.
std::uint64_t fnv1a_perm(const std::vector<EdgeId>& perm) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const EdgeId e : perm) {
    // Fold the value, not its bytes, so the digest is endianness-portable.
    h = (h ^ e) * 1099511628211ULL;  // FNV prime
  }
  return h;
}

TEST(Determinism, ContractionOrderDigestCorpus) {
  struct Pinned {
    const char* name;
    WGraph g;
    std::uint64_t seed;
    std::uint64_t digest;
  };
  WGraph weighted = gen_erdos_renyi(40, 0.4, 11);
  randomize_weights(weighted, 9, 5);
  const Pinned corpus[] = {
      {"erdos_renyi(60,0.15,101) seed=1", gen_erdos_renyi(60, 0.15, 101), 1,
       0xf360bf7e8ff5c9eeULL},
      {"random_connected(80,200,7) seed=2", gen_random_connected(80, 200, 7),
       2, 0x53cd4d8251e21fbfULL},
      {"weighted erdos_renyi(40,0.4,11) seed=5", weighted, 5,
       0xc26f97fb138378d1ULL},
  };
  for (const Pinned& p : corpus) {
    const ContractionOrder o = make_contraction_order(p.g, p.seed);
    EXPECT_EQ(fnv1a_perm(o.perm), p.digest)
        << p.name << ": ContractionOrder::perm changed. If intentional, "
        << "re-pin to 0x" << std::hex << fnv1a_perm(o.perm);
  }
}

// The kernelization front-end (src/kernel) promises a bit-identical
// KernelResult — graph, lineage, candidate, stats — at every thread count:
// its control loop is sequential and every sort runs on psort. The sparse
// graph reduces heavily (peel cascades, rebuilds), the dense one exercises
// the certificate scan, and both have enough edges for psort's parallel
// path. (test_kernel.cpp pins the same contract against pools 1/2/4; this
// corpus adds the shared-pool width.)
TEST(Determinism, KernelOutputBitIdenticalAcrossThreadCounts) {
  std::vector<WGraph> graphs;
  graphs.push_back(gen_random_connected(6000, 9000, 17));
  randomize_weights(graphs.back(), 5, 18);
  graphs.push_back(gen_erdos_renyi(200, 0.5, 19));

  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const WGraph& g = graphs[gi];
    const kernel::KernelResult ref =
        kernel::kernelize(g, kernel::enabled_defaults(), nullptr);
    for (const std::uint32_t threads : {1u, 2u, 4u, 0u}) {
      ThreadPool owned(threads == 0 ? ThreadPool::shared().num_threads()
                                    : threads);
      const kernel::KernelResult kr =
          kernel::kernelize(g, kernel::enabled_defaults(), &owned);
      EXPECT_EQ(kr.kernel.edges, ref.kernel.edges)
          << "graph " << gi << " threads " << threads;
      EXPECT_EQ(kr.map.kernel_of, ref.map.kernel_of)
          << "graph " << gi << " threads " << threads;
      EXPECT_EQ(kr.map.candidate_weight, ref.map.candidate_weight)
          << "graph " << gi << " threads " << threads;
      EXPECT_EQ(kr.map.candidate_members, ref.map.candidate_members)
          << "graph " << gi << " threads " << threads;
      EXPECT_EQ(kr.stats, ref.stats)
          << "graph " << gi << " threads " << threads;
    }
  }
}

// The serving tier publishes Gomory–Hu snapshots whose answers must not
// depend on the pool that built them: Gusfield's loop is sequential by
// construction and the kernel merge rides psort, so the tree — parents AND
// cut weights — is bit-identical at every thread count, whether built
// directly or through a CutServer (kernel merge on). The digest is pinned
// like the contraction corpus above: an intentional tie-break change must
// re-pin it in the PR, not drift silently.
std::uint64_t fnv1a_tree(const GomoryHuTree& t) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (std::size_t v = 0; v < t.parent.size(); ++v) {
    h = (h ^ t.parent[v]) * 1099511628211ULL;  // FNV prime
    h = (h ^ t.parent_cut_weight[v]) * 1099511628211ULL;
  }
  return h;
}

TEST(Determinism, GomoryHuTreeBitIdenticalAcrossThreadCounts) {
  WGraph g = gen_random_connected(120, 360, 23);
  randomize_weights(g, 7, 24);
  for (std::size_t e = 0; e < 6; ++e) g.edges.push_back(g.edges[e]);

  // The direct build on the raw multigraph.
  const GomoryHuTree direct = build_gomory_hu(g);
  const std::uint64_t direct_digest = fnv1a_tree(direct);
  EXPECT_EQ(direct_digest, 0xa3f1368fea4c2723ULL)
      << "Gomory-Hu tree changed. If intentional, re-pin to 0x" << std::hex
      << direct_digest;

  // Serve-built trees run the flows on the MERGED graph, so their shape may
  // legitimately differ from `direct` — but across pool widths they must be
  // bit-identical (Gusfield is sequential, the merge rides psort), and every
  // answer must agree with the direct tree's.
  std::uint64_t serve_digest = 0;
  for (const std::uint32_t threads : {1u, 2u, 4u, 0u}) {
    ThreadPool owned(threads == 0 ? ThreadPool::shared().num_threads()
                                  : threads);
    serve::CutServerOptions opt;
    opt.kernel = kernel::enabled_defaults();  // merge pass feeds the flows
    opt.pool = &owned;
    serve::CutServer server(g, opt);
    const GomoryHuTree& tree = server.snapshot()->tree();
    if (threads == 1) {
      serve_digest = fnv1a_tree(tree);
      EXPECT_EQ(serve_digest, 0xa3f1368fea4c2723ULL)
          << "serve-built Gomory-Hu tree changed. If intentional, re-pin to 0x"
          << std::hex << serve_digest;
      for (VertexId s = 0; s < g.n; s += 7) {
        for (VertexId t = s + 1; t < g.n; t += 5) {
          EXPECT_EQ(tree.min_cut(s, t), direct.min_cut(s, t));
        }
      }
    }
    EXPECT_EQ(fnv1a_tree(tree), serve_digest) << "threads " << threads;
  }
}

// Transport bit-identity (DESIGN.md "Transport layer & multi-process
// execution"): the full e1 pipeline must return the identical report —
// result, stats and every pre-existing non-traffic metric — whether rounds
// run as thread-pool tasks (local) or as forked worker processes over
// shared-memory rings (shm at 1, 2 and 4 processes). Only
// wire_bytes_sent/flush_batches (which describe the transport, not the
// computation) may differ, and they are not part of the report at all.
TEST(Determinism, AmpcMinCutBitIdenticalAcrossTransports) {
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    const WGraph g = gen_erdos_renyi(36, 0.2, seed + 77);
    ampc::AmpcMinCutOptions opt;
    opt.recursion.seed = seed;
    opt.recursion.trials = 2;
    opt.recursion.local_threshold = 8;
    opt.recursion.threads = 1;  // one recursion thread; procs vary below
    const auto local = ampc::ampc_approx_min_cut(g, opt);
    opt.transport = transport::TransportKind::kShm;
    for (const std::uint32_t procs : {1u, 2u, 4u}) {
      opt.num_processes = procs;
      const auto shm = ampc::ampc_approx_min_cut(g, opt);
      EXPECT_EQ(shm.weight, local.weight) << "seed " << seed << " p" << procs;
      EXPECT_EQ(shm.side, local.side) << "seed " << seed << " p" << procs;
      EXPECT_EQ(shm.stats, local.stats) << "seed " << seed << " p" << procs;
      EXPECT_EQ(shm.measured_rounds, local.measured_rounds)
          << "seed " << seed << " p" << procs;
      EXPECT_EQ(shm.charged_rounds, local.charged_rounds)
          << "seed " << seed << " p" << procs;
      EXPECT_EQ(shm.levels_used, local.levels_used)
          << "seed " << seed << " p" << procs;
      EXPECT_EQ(shm.dht_reads, local.dht_reads)
          << "seed " << seed << " p" << procs;
      EXPECT_EQ(shm.dht_writes, local.dht_writes)
          << "seed " << seed << " p" << procs;
      EXPECT_EQ(shm.max_machine_traffic, local.max_machine_traffic)
          << "seed " << seed << " p" << procs;
      EXPECT_EQ(shm.peak_table_words, local.peak_table_words)
          << "seed " << seed << " p" << procs;
      EXPECT_EQ(shm.budget_violations, local.budget_violations)
          << "seed " << seed << " p" << procs;
    }
  }
}

TEST(Determinism, DifferentSeedsEventuallyDiffer) {
  // Sanity check that the seed actually feeds through: across many seeds the
  // Karger contraction must produce at least two distinct cut sides.
  const WGraph g = gen_erdos_renyi(24, 0.3, 5);
  bool saw_difference = false;
  const auto first = karger_single_run(g, 0);
  for (std::uint64_t seed = 1; seed < 16 && !saw_difference; ++seed) {
    saw_difference = karger_single_run(g, seed).side != first.side;
  }
  EXPECT_TRUE(saw_difference);
}

}  // namespace
}  // namespace ampccut
