#include <gtest/gtest.h>

#include "ampc_algo/kcut_ampc.h"
#include "ampc_algo/mincut_ampc.h"
#include "exact/brute_force.h"
#include "exact/stoer_wagner.h"
#include "graph/generators.h"

namespace ampccut::ampc {
namespace {

AmpcMinCutOptions fast_opts(std::uint64_t seed) {
  AmpcMinCutOptions o;
  o.recursion.seed = seed;
  o.recursion.trials = 1;
  o.recursion.local_threshold = 20;
  return o;
}

TEST(AmpcMinCut, ValidAndNearExactOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const WGraph g = gen_erdos_renyi(60, 0.12, seed);
    const auto r = ampc_approx_min_cut(g, fast_opts(seed));
    EXPECT_EQ(cut_weight(g, r.side), r.weight);
    const auto exact = stoer_wagner_min_cut(g);
    EXPECT_GE(r.weight, exact.weight);
    EXPECT_LE(static_cast<double>(r.weight),
              2.9 * static_cast<double>(exact.weight) + 1e-9);
  }
}

TEST(AmpcMinCut, FindsPlantedBridge) {
  const WGraph g = gen_planted_cut(60, 0.35, 2, 4);
  const auto r = ampc_approx_min_cut(g, fast_opts(4));
  EXPECT_EQ(r.weight, stoer_wagner_min_cut(g).weight);
}

TEST(AmpcMinCut, MatchesSequentialBackendValue) {
  // Same seeds -> same contraction orders -> the AMPC and sequential
  // backends compute the same function.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const WGraph g = gen_erdos_renyi(50, 0.15, seed + 11);
    const AmpcMinCutOptions o = fast_opts(seed);
    const auto ampc_r = ampc_approx_min_cut(g, o);
    const auto seq_r = approx_min_cut(g, o.recursion);
    EXPECT_EQ(ampc_r.weight, seq_r.weight) << "seed " << seed;
  }
}

TEST(AmpcMinCut, ReportsRoundsPerLevel) {
  const WGraph g = gen_random_connected(400, 1200, 3);
  const auto r = ampc_approx_min_cut(g, fast_opts(3));
  EXPECT_GT(r.levels_used, 0u);
  EXPECT_GT(r.measured_rounds, 0u);
  EXPECT_GT(r.charged_rounds, 0u);
  EXPECT_GT(r.model_rounds(), r.measured_rounds);
  EXPECT_GT(r.dht_reads, 0u);
  // Rounds scale with levels (log log n), far below log2(n) * levels.
  EXPECT_LT(r.model_rounds(), 120u * r.levels_used);
}

TEST(AmpcMinCut, DisconnectedShortCircuits) {
  const WGraph g = gen_two_cycles(24);
  const auto r = ampc_approx_min_cut(g, fast_opts(1));
  EXPECT_EQ(r.weight, 0u);
  EXPECT_EQ(r.model_rounds(), 0u);  // no tracker calls needed
}

TEST(AmpcKCut, WithinBoundAndCountsRounds) {
  const WGraph g = gen_communities(36, 3, 0.6, 2, 5);
  AmpcMinCutOptions o = fast_opts(5);
  const auto r = ampc_apx_split_k_cut(g, 3, o);
  EXPECT_GE(r.result.num_parts, 3u);
  EXPECT_EQ(k_cut_weight(g, r.result.part), r.result.weight);
  EXPECT_LE(r.result.weight, 8u);  // 6 bridges optimal-ish, generous cap
  EXPECT_GT(r.model_rounds(), 0u);
  EXPECT_EQ(r.result.iterations, 2u);
}

TEST(AmpcKCut, ApproxFactorOnSmallGraphs) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const WGraph g = gen_erdos_renyi(10, 0.5, seed + 33);
    for (std::uint32_t k = 2; k <= 3; ++k) {
      const auto r = ampc_apx_split_k_cut(g, k, fast_opts(seed));
      const auto exact = brute_force_min_k_cut(g, k);
      EXPECT_LE(static_cast<double>(r.result.weight),
                4.9 * static_cast<double>(exact.weight) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace ampccut::ampc
