#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "support/bits.h"
#include "support/check.h"
#include "support/rng.h"
#include "support/threadpool.h"

namespace ampccut {
namespace {

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(255), 7u);
  EXPECT_EQ(floor_log2(256), 8u);
  EXPECT_EQ(floor_log2((1ull << 63) + 5), 63u);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 1), 1u);
}

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(REPRO_CHECK_MSG(false, "boom"), std::logic_error);
  EXPECT_NO_THROW(REPRO_CHECK(true));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SplitIndependence) {
  Rng base(7);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  // Different tags give different streams.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= (s1.next_u64() != s2.next_u64());
  EXPECT_TRUE(any_diff);
  // Same tag reproduces.
  Rng s1b = base.split(1);
  Rng s1c = base.split(1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(s1b.next_u64(), s1c.next_u64());
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  Rng rng(3);
  std::vector<int> hist(10, 0);
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++hist[v];
  }
  for (int c : hist) {
    EXPECT_GT(c, kTrials / 10 * 0.9);
    EXPECT_LT(c, kTrials / 10 * 1.1);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const double o = rng.next_double_open();
    EXPECT_GT(o, 0.0);
    EXPECT_LE(o, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0;
  const int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) sum += rng.next_exponential(4.0);
  EXPECT_NEAR(sum / kTrials, 0.25, 0.01);
}

TEST(ThreadPool, RunsAllIterations) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndSingle) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
  std::atomic<int> n{0};
  pool.parallel_for(1, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   100,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("task failure");
                   }),
               std::runtime_error);
  // Pool stays usable after an exception.
  std::atomic<int> n{0};
  pool.parallel_for(50, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 50);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  for (int rep = 0; rep < 50; ++rep) {
    std::atomic<long> sum{0};
    pool.parallel_for(200, [&](std::size_t i) { sum.fetch_add(long(i)); });
    EXPECT_EQ(sum.load(), 199L * 200 / 2);
  }
}

}  // namespace
}  // namespace ampccut
