#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "mincut/contraction.h"

namespace ampccut {
namespace {

TEST(ContractionOrder, TimesAreAPermutation) {
  const WGraph g = gen_erdos_renyi(30, 0.3, 1);
  const ContractionOrder o = make_contraction_order(g, 5);
  std::set<TimeStep> seen(o.time.begin(), o.time.end());
  EXPECT_EQ(seen.size(), g.m());
  EXPECT_EQ(*seen.begin(), 1u);
  EXPECT_EQ(*seen.rbegin(), static_cast<TimeStep>(g.m()));
}

TEST(ContractionOrder, WeightBiasesOrder) {
  // One heavy edge among light ones contracts early on average.
  WGraph g;
  g.n = 12;
  for (VertexId i = 0; i + 1 < g.n; ++i) g.add_edge(i, i + 1, 1);
  g.add_edge(0, 11, 1000);  // heavy
  double rank_sum = 0;
  const int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    const ContractionOrder o = make_contraction_order(g, t);
    rank_sum += o.time.back();
  }
  // The heavy edge should contract much earlier than the average rank 6.
  EXPECT_LT(rank_sum / kTrials, 2.0);
}

TEST(Msf, IsASpanningTreeMinimalByTime) {
  const WGraph g = gen_erdos_renyi(40, 0.2, 2);
  const ContractionOrder o = make_contraction_order(g, 3);
  const auto tree = msf_edges_by_time(g, o);
  EXPECT_EQ(tree.size(), g.n - 1u);
  // In increasing time order.
  for (std::size_t i = 1; i < tree.size(); ++i) {
    EXPECT_LT(o.time[tree[i - 1]], o.time[tree[i]]);
  }
  // Cycle property: every non-tree edge has larger time than the max on the
  // tree path between its endpoints — verified transitively by Kruskal, here
  // we just check the MSF weight is minimal vs a shuffled greedy.
  WGraph tree_graph;
  tree_graph.n = g.n;
  for (const EdgeId e : tree) tree_graph.add_edge(g.edges[e].u, g.edges[e].v);
  EXPECT_TRUE(is_connected(tree_graph));
}

TEST(Msf, DisconnectedGivesForest) {
  const WGraph g = gen_two_cycles(20);
  const ContractionOrder o = make_contraction_order(g, 1);
  const auto forest = msf_edges_by_time(g, o);
  EXPECT_EQ(forest.size(), g.n - 2u);
}

TEST(ContractToSize, ReachesTargetAndPreservesWeights) {
  const WGraph g = gen_erdos_renyi(50, 0.3, 4);
  const ContractionOrder o = make_contraction_order(g, 9);
  const ContractedGraph c = contract_to_size(g, o, 10);
  EXPECT_EQ(c.g.n, 10u);
  c.g.validate();
  // Total weight is preserved minus self-loop (intra-supervertex) weight.
  Weight crossing = 0;
  for (const auto& e : g.edges) {
    if (c.origin[e.u] != c.origin[e.v]) crossing += e.w;
  }
  EXPECT_EQ(c.g.total_weight(), crossing);
  // No parallel edges remain.
  std::set<std::pair<VertexId, VertexId>> pairs;
  for (const auto& e : c.g.edges) {
    EXPECT_TRUE(pairs.insert({e.u, e.v}).second);
  }
}

TEST(ContractToSize, RespectsTimeOrderPrefix) {
  // The partition after contracting to k components must equal the union-find
  // state of the first (n-k) MSF edges.
  const WGraph g = gen_erdos_renyi(30, 0.25, 7);
  const ContractionOrder o = make_contraction_order(g, 8);
  const auto tree = msf_edges_by_time(g, o);
  const ContractedGraph c = contract_to_size(g, o, 12);
  // Vertices merged iff connected via the first n-12 tree edges.
  WGraph prefix;
  prefix.n = g.n;
  for (std::size_t i = 0; i < g.n - 12u; ++i) {
    prefix.add_edge(g.edges[tree[i]].u, g.edges[tree[i]].v);
  }
  const auto labels = component_labels(prefix);
  for (VertexId u = 0; u < g.n; ++u) {
    for (VertexId v = u + 1; v < g.n; ++v) {
      EXPECT_EQ(labels[u] == labels[v], c.origin[u] == c.origin[v]);
    }
  }
}

TEST(ContractToSize, TargetAboveNIsIdentity) {
  const WGraph g = gen_cycle(8);
  const ContractionOrder o = make_contraction_order(g, 1);
  const ContractedGraph c = contract_to_size(g, o, 20);
  EXPECT_EQ(c.g.n, 8u);
  EXPECT_EQ(c.g.m(), 8u);
}

}  // namespace
}  // namespace ampccut
