#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "flow/gomory_hu.h"
#include "graph/generators.h"
#include "mincut/kcut.h"

namespace ampccut {
namespace {

ApproxMinCutOptions fast_opts(std::uint64_t seed) {
  ApproxMinCutOptions o;
  o.seed = seed;
  o.trials = 2;
  o.local_threshold = 24;
  return o;
}

void check_partition(const WGraph& g, const ApproxKCutResult& r,
                     std::uint32_t k) {
  EXPECT_GE(r.num_parts, k);
  EXPECT_EQ(r.part.size(), g.n);
  EXPECT_EQ(k_cut_weight(g, r.part), r.weight);
  // Parts are non-empty and contiguous ids.
  std::vector<int> count(r.num_parts, 0);
  for (const auto p : r.part) {
    ASSERT_LT(p, r.num_parts);
    ++count[p];
  }
  for (int c : count) EXPECT_GT(c, 0);
}

TEST(ApxSplit, ExactSplitterMatchesSaranVaziraniBound) {
  // With the exact splitter this is Saran–Vazirani: (2-2/k)-approximate.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const WGraph g = gen_erdos_renyi(10, 0.45, seed);
    for (std::uint32_t k = 2; k <= 4; ++k) {
      const auto r = apx_split_k_cut_exact(g, k);
      check_partition(g, r, k);
      const auto exact = brute_force_min_k_cut(g, k);
      EXPECT_GE(r.weight, exact.weight);
      EXPECT_LE(static_cast<double>(r.weight),
                (2.0 - 2.0 / k) * static_cast<double>(exact.weight) + 1e-9)
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(ApxSplit, ApproxSplitterWithinFourPlusEps) {
  // Theorem 2: (2+eps)(2-2/k) <= 4+eps overall.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const WGraph g = gen_erdos_renyi(10, 0.5, seed + 20);
    for (std::uint32_t k = 2; k <= 4; ++k) {
      const auto r = apx_split_k_cut_approx(g, k, fast_opts(seed));
      check_partition(g, r, k);
      const auto exact = brute_force_min_k_cut(g, k);
      EXPECT_LE(static_cast<double>(r.weight),
                4.9 * static_cast<double>(exact.weight) + 1e-9)
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(ApxSplit, CommunitiesAreSeparatedAtBridges) {
  // k communities with 2 bridges each: the optimal k-cut removes the 2k
  // bridge edges (ring topology), so the greedy result should land there
  // or very close.
  const std::uint32_t k = 4;
  const WGraph g = gen_communities(60, k, 0.6, 2, 5);
  const auto r = apx_split_k_cut_approx(g, k, fast_opts(5));
  check_partition(g, r, k);
  EXPECT_LE(r.weight, 2u * k + 2u);
}

TEST(ApxSplit, KEqualsOneIsTrivial) {
  const WGraph g = gen_cycle(12);
  const auto r = apx_split_k_cut_exact(g, 1);
  EXPECT_EQ(r.weight, 0u);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_EQ(r.num_parts, 1u);
}

TEST(ApxSplit, DisconnectedInputCountsExistingParts) {
  const WGraph g = gen_two_cycles(20);  // already 2 components
  const auto r2 = apx_split_k_cut_exact(g, 2);
  EXPECT_EQ(r2.weight, 0u);
  EXPECT_EQ(r2.iterations, 0u);
  const auto r3 = apx_split_k_cut_exact(g, 3);
  EXPECT_EQ(r3.weight, 2u);  // cut one cycle open
  check_partition(g, r3, 3);
}

TEST(ApxSplit, KEqualsNCutsEverything) {
  const WGraph g = gen_complete(6);
  const auto r = apx_split_k_cut_exact(g, 6);
  EXPECT_EQ(r.num_parts, 6u);
  EXPECT_EQ(r.weight, g.total_weight());
}

TEST(ApxSplit, MatchesGomoryHuBaselineShape) {
  // Both greedy-split (exact splitter) and the GH construction are
  // (2-2/k)-approximations; neither should beat the other by more than that
  // factor on random graphs.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const WGraph g = gen_erdos_renyi(14, 0.4, seed + 60);
    for (std::uint32_t k = 2; k <= 4; ++k) {
      const auto greedy = apx_split_k_cut_exact(g, k);
      const auto gh = gomory_hu_k_cut(g, k);
      EXPECT_LE(static_cast<double>(greedy.weight),
                2.0 * static_cast<double>(gh.weight) + 1e-9);
      EXPECT_LE(static_cast<double>(gh.weight),
                2.0 * static_cast<double>(greedy.weight) + 1e-9);
    }
  }
}

TEST(ApxSplit, WeightedCommunities) {
  WGraph g = gen_communities(40, 4, 0.7, 1, 9);
  // Make intra-community edges heavy so bridges are clearly optimal.
  const VertexId size = 10;
  for (auto& e : g.edges) {
    if (e.u / size == e.v / size) e.w = 10;
  }
  const auto r = apx_split_k_cut_approx(g, 4, fast_opts(2));
  EXPECT_EQ(r.weight, 4u);  // the 4 unit bridges
}

}  // namespace
}  // namespace ampccut
