#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "exact/stoer_wagner.h"
#include "flow/dinic.h"
#include "flow/gomory_hu.h"
#include "graph/generators.h"
#include "support/errors.h"
#include "support/rng.h"

namespace ampccut {
namespace {

TEST(Dinic, PathCapacityIsBottleneck) {
  WGraph g;
  g.n = 4;
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 7);
  EXPECT_EQ(st_min_cut(g, 0, 3), 2u);
}

TEST(Dinic, MinCutSideSeparates) {
  WGraph g = gen_planted_cut(30, 0.6, 2, 5);
  Dinic d(g.n);
  for (const auto& e : g.edges) d.add_undirected_edge(e.u, e.v, e.w);
  const Weight f = d.max_flow(0, 29);
  const auto side = d.min_cut_side();
  EXPECT_EQ(side[0], 1);
  EXPECT_EQ(side[29], 0);
  EXPECT_EQ(cut_weight(g, side), f);
}

TEST(Dinic, ReusableAcrossPairs) {
  const WGraph g = gen_erdos_renyi(20, 0.3, 3);
  Dinic d(g.n);
  for (const auto& e : g.edges) d.add_undirected_edge(e.u, e.v, e.w);
  // Run several pairs twice; results must be identical after capacity reset.
  for (VertexId t = 1; t < 6; ++t) {
    const Weight f1 = d.max_flow(0, t);
    const Weight f2 = d.max_flow(0, t);
    EXPECT_EQ(f1, f2);
  }
}

TEST(Dinic, MatchesBruteForceStCut) {
  Rng rng(17);
  for (int trial = 0; trial < 15; ++trial) {
    WGraph g = gen_erdos_renyi(9, 0.5, trial);
    randomize_weights(g, 6, trial + 50);
    // Brute-force the s-t min cut: enumerate sides with s=0 fixed.
    const VertexId t = 8;
    Weight best = kInfiniteWeight;
    for (std::uint32_t mask = 0; mask < (1u << 8); ++mask) {
      std::vector<std::uint8_t> side(9, 0);
      side[0] = 1;
      for (int v = 1; v < 9; ++v) side[v] = (mask >> (v - 1)) & 1u;
      if (side[t]) continue;
      best = std::min(best, cut_weight(g, side));
    }
    EXPECT_EQ(st_min_cut(g, 0, t), best) << "trial " << trial;
  }
}

TEST(GomoryHu, TreeEncodesAllPairs) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    WGraph g = gen_erdos_renyi(12, 0.4, seed);
    randomize_weights(g, 5, seed + 9);
    const GomoryHuTree tree = build_gomory_hu(g);
    Rng rng(seed);
    for (int q = 0; q < 20; ++q) {
      const auto s = static_cast<VertexId>(rng.next_below(g.n));
      auto t = static_cast<VertexId>(rng.next_below(g.n));
      if (s == t) t = (t + 1) % g.n;
      EXPECT_EQ(tree.min_cut(s, t), st_min_cut(g, s, t))
          << "seed " << seed << " pair " << s << "," << t;
    }
  }
}

TEST(GomoryHu, LightestTreeEdgeIsGlobalMinCut) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    WGraph g = gen_erdos_renyi(14, 0.35, seed);
    randomize_weights(g, 7, seed + 31);
    const GomoryHuTree tree = build_gomory_hu(g);
    Weight lightest = kInfiniteWeight;
    for (VertexId v = 1; v < g.n; ++v)
      lightest = std::min(lightest, tree.parent_cut_weight[v]);
    EXPECT_EQ(lightest, stoer_wagner_min_cut(g).weight);
  }
}

TEST(GomoryHuKCut, ApproximationGuarantee) {
  // Theorem 6: the GH k-cut is a (2 - 2/k)-approximation.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const WGraph g = gen_erdos_renyi(9, 0.5, seed);
    for (std::uint32_t k = 2; k <= 4; ++k) {
      const auto gh = gomory_hu_k_cut(g, k);
      const auto exact = brute_force_min_k_cut(g, k);
      EXPECT_EQ(k_cut_weight(g, gh.part), gh.weight);
      // At least k parts.
      std::uint32_t parts =
          *std::max_element(gh.part.begin(), gh.part.end()) + 1;
      EXPECT_GE(parts, k);
      EXPECT_LE(gh.weight, exact.weight * 2u);
      EXPECT_GE(gh.weight, exact.weight);
    }
  }
}

TEST(GomoryHuKCut, EqualWeightTieBreakIsDeterministic) {
  // Unweighted graphs tie parent_cut_weight constantly; the removal order is
  // pinned to (weight, id). Repeated calls must agree bit-for-bit, and the
  // partition must equal the one derived from an explicit (weight, id) sort
  // — so a future sort change that handles ties differently fails here.
  for (const std::uint64_t seed : {3ULL, 8ULL, 21ULL}) {
    const WGraph g = gen_random_connected(18, 40, seed);  // all weights 1
    for (std::uint32_t k = 2; k <= 5; ++k) {
      const auto a = gomory_hu_k_cut(g, k);
      const auto b = gomory_hu_k_cut(g, k);
      ASSERT_EQ(a.part, b.part) << "seed " << seed << " k=" << k;
      ASSERT_EQ(a.weight, b.weight);

      const GomoryHuTree tree = build_gomory_hu(g);
      std::vector<VertexId> order;
      for (VertexId v = 1; v < g.n; ++v) order.push_back(v);
      // repro-lint: allow(raw-sort) tiny n=18 oracle ranking inside the test,
      // with an explicit id tie-break — not a measured or parallel path
      std::sort(order.begin(), order.end(), [&](VertexId x, VertexId y) {
        return tree.parent_cut_weight[x] != tree.parent_cut_weight[y]
                   ? tree.parent_cut_weight[x] < tree.parent_cut_weight[y]
                   : x < y;
      });
      // The k-1 removed tree edges (the ones whose endpoints land in
      // different parts) are exactly the (weight, id)-smallest — not merely
      // a tie-equivalent set of the same total weight.
      std::vector<VertexId> expect(order.begin(), order.begin() + (k - 1));
      // repro-lint: allow(raw-sort) canonicalizes k-1 distinct vertex ids
      // for comparison; self-order needs no tie-break
      std::sort(expect.begin(), expect.end());
      std::vector<VertexId> got;
      for (VertexId v = 1; v < g.n; ++v) {
        if (a.part[v] != a.part[tree.parent[v]]) got.push_back(v);
      }
      EXPECT_EQ(got, expect) << "seed " << seed << " k=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Hardening for the serving tier (src/serve/): the tree must survive the
// inputs a server cannot refuse — disconnected graphs, trivial graphs,
// kInfiniteWeight edges — and bad query pairs must surface as typed errors.

TEST(GomoryHu, DisconnectedPairsAnswerZero) {
  // Two blobs, no edges between them: Gusfield still yields one tree rooted
  // at 0, with a 0-weight edge linking the components, so cross-component
  // path minima are 0 — exactly the direct max-flow answer.
  WGraph g = gen_erdos_renyi(6, 0.9, 4);
  const VertexId base = g.n;
  g.n += 5;
  for (VertexId v = base; v + 1 < g.n; ++v) g.add_edge(v, v + 1, 3);
  ASSERT_FALSE(is_connected(g));
  const GomoryHuTree tree = build_gomory_hu(g);
  for (VertexId s = 0; s < g.n; ++s) {
    for (VertexId t = s + 1; t < g.n; ++t) {
      EXPECT_EQ(tree.min_cut(s, t), st_min_cut(g, s, t))
          << "pair " << s << "," << t;
      if (s < base && t >= base) {
        EXPECT_EQ(tree.min_cut(s, t), 0U);
      }
    }
  }
}

TEST(GomoryHu, SingleAndTwoVertexGraphs) {
  WGraph one;
  one.n = 1;
  const GomoryHuTree t1 = build_gomory_hu(one);
  ASSERT_EQ(t1.parent.size(), 1U);
  EXPECT_EQ(t1.parent[0], kInvalidVertex);

  WGraph two;
  two.n = 2;
  two.add_edge(0, 1, 7);
  const GomoryHuTree t2 = build_gomory_hu(two);
  EXPECT_EQ(t2.min_cut(0, 1), 7U);
  EXPECT_EQ(t2.min_cut(1, 0), 7U);

  WGraph two_iso;  // two vertices, no edge: a disconnected pair
  two_iso.n = 2;
  EXPECT_EQ(build_gomory_hu(two_iso).min_cut(0, 1), 0U);
}

TEST(GomoryHu, OutOfRangeOrDegenerateQueryThrowsTyped) {
  WGraph g;
  g.n = 3;
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  const GomoryHuTree tree = build_gomory_hu(g);
  EXPECT_THROW((void)tree.min_cut(0, 3), InvalidQueryError);
  EXPECT_THROW((void)tree.min_cut(99, 1), InvalidQueryError);
  EXPECT_THROW((void)tree.min_cut(1, 1), InvalidQueryError);
  // The taxonomy root catches it too (a server maps any Error to a 4xx).
  try {
    (void)tree.min_cut(0, 3);
    FAIL() << "expected InvalidQueryError";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("invalid cut query"),
              std::string::npos);
  }
}

TEST(Dinic, InfiniteCapacityPathSaturates) {
  // A chain of kInfiniteWeight edges: the flow pins at the ceiling instead
  // of wrapping, and re-running on the same solver still works (infinite
  // arcs are never mutated, so there is nothing to restore).
  WGraph g;
  g.n = 3;
  g.add_edge(0, 1, kInfiniteWeight);
  g.add_edge(1, 2, kInfiniteWeight);
  Dinic d(g.n);
  for (const auto& e : g.edges) d.add_undirected_edge(e.u, e.v, e.w);
  EXPECT_EQ(d.max_flow(0, 2), kInfiniteWeight);
  EXPECT_EQ(d.max_flow(0, 2), kInfiniteWeight);
  const auto side = d.min_cut_side();
  EXPECT_EQ(side[0], 1);
  EXPECT_EQ(side[2], 0);
  // The degraded singleton side is still a minimum cut under saturating
  // arithmetic: every separating cut crosses an infinite edge.
  EXPECT_EQ(cut_weight(g, side), kInfiniteWeight);
}

TEST(Dinic, ParallelInfiniteEdgesDoNotWrap) {
  WGraph g;  // two infinite parallel edges: 2 * kInfiniteWeight must clamp
  g.n = 2;
  g.add_edge(0, 1, kInfiniteWeight);
  g.add_edge(0, 1, kInfiniteWeight);
  EXPECT_EQ(st_min_cut(g, 0, 1), kInfiniteWeight);
}

TEST(Dinic, InfiniteEdgeOffThePathLeavesFiniteAnswerExact) {
  // The infinite edge hangs off to the side; the s-t answer stays finite and
  // exact, and the infinite edge still serves as transit at full strength.
  WGraph g;
  g.n = 4;
  g.add_edge(0, 1, kInfiniteWeight);
  g.add_edge(1, 2, 4);
  g.add_edge(2, 3, kInfiniteWeight);
  g.add_edge(0, 3, 3);
  EXPECT_EQ(st_min_cut(g, 0, 3), 7U);
  EXPECT_EQ(st_min_cut(g, 0, 2), 7U);
  EXPECT_EQ(st_min_cut(g, 1, 2), 7U);
}

TEST(GomoryHu, InfiniteWeightEdgesServeExactly) {
  // Mixed finite/infinite graph: every pair's tree answer equals the direct
  // (saturating) max flow — including the kInfiniteWeight pairs.
  WGraph g;
  g.n = 5;
  g.add_edge(0, 1, kInfiniteWeight);
  g.add_edge(1, 2, 5);
  g.add_edge(2, 3, kInfiniteWeight);
  g.add_edge(3, 4, 2);
  g.add_edge(4, 0, 1);
  const GomoryHuTree tree = build_gomory_hu(g);
  for (VertexId s = 0; s < g.n; ++s) {
    for (VertexId t = s + 1; t < g.n; ++t) {
      EXPECT_EQ(tree.min_cut(s, t), st_min_cut(g, s, t))
          << "pair " << s << "," << t;
    }
  }
  EXPECT_EQ(tree.min_cut(0, 1), kInfiniteWeight);
}

}  // namespace
}  // namespace ampccut
