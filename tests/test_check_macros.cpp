// Release/Debug behavior parity for the check macros (DESIGN.md "Static
// analysis & invariant enforcement", dcheck-side-effect).
//
// REPRO_DCHECK compiles its argument out under NDEBUG via the sizeof trick,
// so a side-effecting argument silently changes behavior between build
// types. The repro_lint dcheck-side-effect check bans that pattern; this
// suite pins the two facts the ban rests on:
//   1. the macro evaluates its argument exactly once in Debug and never in
//      Release (demonstrated on a synthetic counting site — the one
//      deliberate violation in the tree, allowlisted as such);
//   2. code written the approved way — mutation hoisted out of the macro —
//      computes bit-identical results in both build types, so this suite
//      passing in the Release and Debug CI legs IS the parity regression.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "support/check.h"

namespace ampccut {
namespace {

TEST(CheckMacros, DcheckEvaluationCountMatchesBuildType) {
  int calls = 0;
  // repro-lint: allow(dcheck-side-effect) synthetic site: this test exists
  // to demonstrate the NDEBUG trap the check bans
  REPRO_DCHECK(++calls > 0);
#ifdef NDEBUG
  EXPECT_EQ(calls, 0) << "Release must not evaluate the DCHECK argument";
#else
  EXPECT_EQ(calls, 1) << "Debug must evaluate the DCHECK argument once";
#endif
}

// The approved rewrite of the site above: hoist the mutation, then assert on
// the already-computed value. The sequence below must be identical whether
// the assertion evaluates (Debug) or not (Release).
TEST(CheckMacros, HoistedSideEffectsGiveBuildTypeParity) {
  std::vector<std::uint64_t> trace;
  std::uint64_t acc = 0;
  for (std::uint64_t i = 1; i <= 64; ++i) {
    const std::uint64_t next = acc + i * i;  // hoisted: runs in every build
    REPRO_DCHECK(next > acc);
    acc = next;
    trace.push_back(acc);
  }
  // Closed form sum of squares 1..64 — a Release build that skipped the
  // hoisted work (or a Debug build that did it twice) could not land here.
  EXPECT_EQ(acc, 64u * 65u * 129u / 6u);
  ASSERT_EQ(trace.size(), 64u);
  EXPECT_EQ(trace.front(), 1u);
  EXPECT_EQ(trace.back(), acc);
}

TEST(CheckMacros, ReproCheckEvaluatesExactlyOnceInEveryBuild) {
  int calls = 0;
  REPRO_CHECK(++calls > 0);
  EXPECT_EQ(calls, 1);
  REPRO_CHECK_MSG(++calls == 2, "second evaluation");
  EXPECT_EQ(calls, 2);
}

TEST(CheckMacros, ReproCheckThrowsWithLocationOnFailure) {
  EXPECT_THROW(REPRO_CHECK(1 + 1 == 3), std::logic_error);
  try {
    REPRO_CHECK_MSG(false, "context message");
    FAIL() << "unreachable";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CHECK failed"), std::string::npos);
    EXPECT_NE(what.find("context message"), std::string::npos);
    EXPECT_NE(what.find("test_check_macros.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace ampccut
