#include <gtest/gtest.h>

#include <numeric>

#include "ampc_algo/list_ranking.h"
#include "ampc_algo/msf.h"
#include "ampc_algo/prefix_min.h"
#include "ampc_algo/tree_ops.h"
#include "graph/generators.h"
#include "mincut/contraction.h"
#include "support/rng.h"
#include "tree/hld.h"

namespace ampccut::ampc {
namespace {

Runtime make_rt(std::uint64_t problem, double eps = 0.5) {
  return Runtime(Config::for_problem(problem, eps));
}

// Build a random permutation list: next[] chains elements in random order.
struct RandomList {
  std::vector<std::uint64_t> next;
  std::vector<std::uint64_t> order;  // order[k] = k-th element of the chain
};
RandomList random_list(std::uint64_t n, std::uint64_t seed) {
  RandomList l;
  l.order.resize(n);
  std::iota(l.order.begin(), l.order.end(), 0);
  Rng rng(seed);
  std::shuffle(l.order.begin(), l.order.end(), rng);
  l.next.assign(n, kNoNext);
  for (std::uint64_t k = 0; k + 1 < n; ++k) l.next[l.order[k]] = l.order[k + 1];
  return l;
}

TEST(AmpcListRank, SuffixCountsOnChain) {
  for (const std::uint64_t n : {1u, 2u, 17u, 100u, 5000u}) {
    const RandomList l = random_list(n, n);
    Runtime rt = make_rt(n);
    const auto rank = list_rank(rt, l.next, std::vector<std::int64_t>(n, 1));
    for (std::uint64_t k = 0; k < n; ++k) {
      EXPECT_EQ(rank[l.order[k]], static_cast<std::int64_t>(n - k)) << n;
    }
  }
}

TEST(AmpcListRank, WeightedAndNegativeValues) {
  const std::uint64_t n = 2000;
  const RandomList l = random_list(n, 3);
  std::vector<std::int64_t> vals(n);
  Rng rng(9);
  for (auto& v : vals) v = static_cast<std::int64_t>(rng.next_below(21)) - 10;
  Runtime rt = make_rt(n);
  const auto rank = list_rank(rt, l.next, vals);
  std::int64_t suffix = 0;
  for (std::uint64_t k = n; k-- > 0;) {
    suffix += vals[l.order[k]];
    EXPECT_EQ(rank[l.order[k]], suffix);
  }
}

TEST(AmpcListRank, MultipleListsAtOnce) {
  // Three disjoint chains in one array.
  std::vector<std::uint64_t> next{1, 2, kNoNext, 4, kNoNext, kNoNext};
  std::vector<std::int64_t> vals{1, 2, 3, 4, 5, 6};
  Runtime rt = make_rt(6);
  const auto rank = list_rank(rt, next, vals);
  EXPECT_EQ(rank[0], 6);  // 1+2+3
  EXPECT_EQ(rank[1], 5);
  EXPECT_EQ(rank[2], 3);
  EXPECT_EQ(rank[3], 9);  // 4+5
  EXPECT_EQ(rank[4], 5);
  EXPECT_EQ(rank[5], 6);
}

TEST(AmpcListRank, RoundsStayFlatAcrossSizes) {
  // O(1/eps) rounds: growing n by 16x must not grow rounds proportionally.
  std::uint64_t rounds_small = 0, rounds_large = 0;
  {
    Runtime rt = make_rt(1 << 10);
    const RandomList l = random_list(1 << 10, 1);
    (void)list_rank(rt, l.next, std::vector<std::int64_t>(1 << 10, 1));
    rounds_small = rt.metrics().rounds;
  }
  {
    Runtime rt = make_rt(1 << 14);
    const RandomList l = random_list(1 << 14, 1);
    (void)list_rank(rt, l.next, std::vector<std::int64_t>(1 << 14, 1));
    rounds_large = rt.metrics().rounds;
  }
  EXPECT_LE(rounds_large, rounds_small + 6);
}

TEST(AmpcPrefix, PrefixSumsMatchScan) {
  Rng rng(5);
  for (const std::uint64_t n : {1u, 7u, 64u, 1000u}) {
    std::vector<std::int64_t> vals(n);
    for (auto& v : vals) v = static_cast<std::int64_t>(rng.next_below(19)) - 9;
    Runtime rt = make_rt(std::max<std::uint64_t>(n, 16));
    const auto ps = prefix_sums(rt, vals);
    std::int64_t acc = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      acc += vals[i];
      EXPECT_EQ(ps[i], acc) << "n=" << n << " i=" << i;
    }
  }
}

TEST(AmpcPrefix, MinPrefixSumFindsWitness) {
  std::vector<std::int64_t> vals{3, -1, -4, 2, -7, 10};
  // prefixes: 3, 2, -2, 0, -7, 3 -> min -7 at index 4
  Runtime rt = make_rt(64);
  const auto r = min_prefix_sum(rt, vals);
  EXPECT_EQ(r.min_prefix, -7);
  EXPECT_EQ(r.argmin, 4u);
}

TEST(AmpcPrefix, SegmentedMinPrefix) {
  // Segments: [1,-2] ; [] ; [5, -1, -1, -1]
  std::vector<std::int64_t> vals{1, -2, 5, -1, -1, -1};
  std::vector<std::uint64_t> offsets{0, 2, 2, 6};
  Runtime rt = make_rt(64);
  const auto r = segmented_min_prefix_sum(rt, vals, offsets);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].min_prefix, -1);
  EXPECT_EQ(r[0].argmin, 1u);
  EXPECT_EQ(r[1].min_prefix, std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(r[2].min_prefix, 2);
  EXPECT_EQ(r[2].argmin, 3u);
}

TEST(AmpcPrefix, SegmentedManyRandomSegments) {
  Rng rng(11);
  std::vector<std::int64_t> vals;
  std::vector<std::uint64_t> offsets{0};
  const int segs = 50;
  for (int s = 0; s < segs; ++s) {
    const std::uint64_t len = rng.next_below(40);
    for (std::uint64_t i = 0; i < len; ++i) {
      vals.push_back(static_cast<std::int64_t>(rng.next_below(11)) - 5);
    }
    offsets.push_back(vals.size());
  }
  Runtime rt = make_rt(256, 0.4);
  const auto got = segmented_min_prefix_sum(rt, vals, offsets);
  for (int s = 0; s < segs; ++s) {
    std::int64_t acc = 0, best = std::numeric_limits<std::int64_t>::max();
    std::uint64_t arg = 0;
    for (std::uint64_t i = offsets[s]; i < offsets[s + 1]; ++i) {
      acc += vals[i];
      if (acc < best) {
        best = acc;
        arg = i - offsets[s];
      }
    }
    EXPECT_EQ(got[s].min_prefix, best) << "segment " << s;
    if (best != std::numeric_limits<std::int64_t>::max()) {
      EXPECT_EQ(got[s].argmin, arg) << "segment " << s;
    }
  }
}

TEST(AmpcTreeOps, MatchesSequentialRooting) {
  for (const WGraph& g :
       {gen_path(200), gen_star(200), gen_broom(200), gen_binary_tree(255),
        gen_random_tree(300, 7), gen_caterpillar(40, 4)}) {
    std::vector<TimeStep> times(g.edges.size());
    for (std::size_t i = 0; i < times.size(); ++i) {
      times[i] = static_cast<TimeStep>(i + 1);
    }
    Runtime rt = make_rt(g.n);
    const AmpcRootedTree a = ampc_root_tree(rt, g.n, g.edges, times, 0);
    const RootedTree s = build_rooted_tree(g.n, g.edges, times, 0);
    for (VertexId v = 0; v < g.n; ++v) {
      EXPECT_EQ(a.parent[v], s.parent[v]) << "n=" << g.n << " v=" << v;
      EXPECT_EQ(a.parent_time[v], s.parent_time[v]);
      EXPECT_EQ(a.depth[v], s.depth[v]);
      EXPECT_EQ(a.subtree[v], s.subtree[v]);
    }
  }
}

TEST(AmpcTreeOps, PreorderIsAValidDfsNumbering) {
  const WGraph g = gen_random_tree(400, 13);
  std::vector<TimeStep> times(g.edges.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    times[i] = static_cast<TimeStep>(i + 1);
  }
  Runtime rt = make_rt(g.n);
  const AmpcRootedTree a = ampc_root_tree(rt, g.n, g.edges, times, 0);
  // Preorder is a permutation; children come after parents; a subtree
  // occupies a contiguous preorder range.
  std::vector<std::uint8_t> seen(g.n, 0);
  for (VertexId v = 0; v < g.n; ++v) {
    ASSERT_LT(a.preorder[v], g.n);
    EXPECT_FALSE(seen[a.preorder[v]]);
    seen[a.preorder[v]] = 1;
    if (a.parent[v] != kInvalidVertex) {
      EXPECT_GT(a.preorder[v], a.preorder[a.parent[v]]);
      EXPECT_LT(a.preorder[v], a.preorder[a.parent[v]] + a.subtree[a.parent[v]]);
    }
  }
}

TEST(AmpcComponents, FindsComponents) {
  WGraph g = gen_two_cycles(40);
  Runtime rt = make_rt(g.n);
  const auto label = ampc_components(rt, g);
  EXPECT_EQ(label[0], 0u);
  EXPECT_EQ(label[25], 20u);
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(label[v], 0u);
  for (VertexId v = 20; v < 40; ++v) EXPECT_EQ(label[v], 20u);
}

TEST(AmpcComponents, RoundsBeatMpcOnCycles) {
  // The adaptive walks collapse a cycle in a handful of rounds even as n
  // grows 16x (1-vs-2-cycle motivation, E7).
  std::uint64_t rounds_small = 0, rounds_large = 0;
  {
    Runtime rt = make_rt(1 << 9);
    (void)ampc_components(rt, gen_cycle(1 << 9));
    rounds_small = rt.metrics().rounds;
  }
  {
    Runtime rt = make_rt(1 << 13);
    (void)ampc_components(rt, gen_cycle(1 << 13));
    rounds_large = rt.metrics().rounds;
  }
  EXPECT_LE(rounds_large, rounds_small + 4);
}

TEST(AmpcMsf, BothVariantsMatchKruskal) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const WGraph g = gen_erdos_renyi(60, 0.15, seed);
    const ContractionOrder o = make_contraction_order(g, seed + 5);
    const auto want = msf_edges_by_time(g, o);
    Runtime rt1 = make_rt(g.n + g.m());
    EXPECT_EQ(ampc_msf_boruvka(rt1, g, o), want) << "seed " << seed;
    Runtime rt2 = make_rt(g.n + g.m());
    EXPECT_EQ(ampc_msf_cited(rt2, g, o), want);
    EXPECT_GT(rt2.metrics().charged_rounds, 0u);
  }
}

TEST(AmpcMsf, BoruvkaHandlesForests) {
  const WGraph g = gen_two_cycles(30);
  const ContractionOrder o = make_contraction_order(g, 2);
  Runtime rt = make_rt(g.n + g.m());
  const auto forest = ampc_msf_boruvka(rt, g, o);
  EXPECT_EQ(forest, msf_edges_by_time(g, o));
  EXPECT_EQ(forest.size(), g.n - 2u);
}

}  // namespace
}  // namespace ampccut::ampc
