#include <gtest/gtest.h>

#include "ampc/runtime.h"

namespace ampccut::ampc {
namespace {

Config small_config() {
  Config c = Config::for_problem(1 << 12, 0.5);
  return c;
}

TEST(AmpcConfig, MachineMemoryFollowsEps) {
  const Config c = Config::for_problem(1 << 20, 0.5);
  EXPECT_EQ(c.machine_memory_words, 1u << 10);
  const Config tight = Config::for_problem(1 << 20, 0.25);
  EXPECT_EQ(tight.machine_memory_words, 64u);  // clamped lower bound
  EXPECT_EQ(c.num_machines(1 << 20), 1u << 10);
}

TEST(AmpcRuntime, CountsRounds) {
  Runtime rt(small_config());
  rt.round("a", 4, [](MachineContext&) {});
  rt.round("b", 2, [](MachineContext&) {});
  rt.charge_rounds("cited", 3);
  EXPECT_EQ(rt.metrics().rounds, 2u);
  EXPECT_EQ(rt.metrics().charged_rounds, 3u);
  EXPECT_EQ(rt.metrics().model_rounds(), 5u);
  EXPECT_EQ(rt.metrics().rounds_by_label.at("a"), 1u);
}

TEST(AmpcRuntime, WritesInvisibleUntilBarrier) {
  Runtime rt(small_config());
  Table<std::uint64_t, std::uint64_t> t(rt, "t");
  rt.round("write", 1, [&](MachineContext&) {
    t.put(7, 42);
    // AMPC semantics: the write targets the NEXT round's hash table.
    EXPECT_FALSE(t.get(7).has_value());
  });
  // After the barrier the value is visible.
  rt.round("read", 1, [&](MachineContext&) {
    ASSERT_TRUE(t.get(7).has_value());
    EXPECT_EQ(*t.get(7), 42u);
  });
}

TEST(AmpcRuntime, MergePolicies) {
  Runtime rt(small_config());
  Table<std::uint64_t, std::uint64_t> tmin(rt, "min", Merge::kMin);
  Table<std::uint64_t, std::uint64_t> tsum(rt, "sum", Merge::kSum);
  rt.round("w", 8, [&](MachineContext& ctx) {
    tmin.put(1, 100 + ctx.machine_id());
    tsum.put(1, 1);
  });
  EXPECT_EQ(tmin.at(1), 100u);
  EXPECT_EQ(tsum.at(1), 8u);
}

TEST(AmpcRuntime, DenseTableStagedWrites) {
  Runtime rt(small_config());
  DenseTable<std::uint64_t> t(rt, "d", 16, 5);
  rt.round("w", 4, [&](MachineContext& ctx) {
    EXPECT_EQ(t.get(ctx.machine_id()), 5u);
    t.put(ctx.machine_id(), ctx.machine_id() * 10);
  });
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(t.raw(i), i * 10);
  for (std::uint64_t i = 4; i < 16; ++i) EXPECT_EQ(t.raw(i), 5u);
}

TEST(AmpcRuntime, TracksTrafficPerMachine) {
  Runtime rt(small_config());
  DenseTable<std::uint64_t> t(rt, "d", 64, 1);
  rt.round("r", 2, [&](MachineContext& ctx) {
    if (ctx.machine_id() == 0) {
      for (int i = 0; i < 10; ++i) (void)t.get(i);
    } else {
      (void)t.get(0);
    }
  });
  EXPECT_EQ(rt.metrics().dht_reads, 11u);
  EXPECT_EQ(rt.metrics().max_machine_traffic, 10u);
}

TEST(AmpcRuntime, BudgetViolationsRecorded) {
  Config c = small_config();
  c.machine_memory_words = 4;
  Runtime rt(c);
  DenseTable<std::uint64_t> t(rt, "d", 64, 1);
  rt.round("r", 1, [&](MachineContext&) {
    for (int i = 0; i < 10; ++i) (void)t.get(i);  // 10 > 4 budget
  });
  EXPECT_EQ(rt.metrics().budget_violations.load(), 1u);
}

TEST(AmpcRuntime, RoundOverItemsChunksByMemory) {
  Config c = small_config();
  c.machine_memory_words = 8;
  Runtime rt(c);
  std::atomic<std::uint64_t> total{0};
  rt.round_over_items("items", 30, [&](MachineContext&, std::uint64_t i) {
    total.fetch_add(i);
  });
  EXPECT_EQ(total.load(), 29u * 30 / 2);
  EXPECT_EQ(rt.metrics().rounds, 1u);
}

TEST(AmpcRuntime, PeakTableWordsTracked) {
  Runtime rt(small_config());
  {
    DenseTable<std::uint64_t> t(rt, "d", 1000);
    rt.round("noop", 1, [](MachineContext&) {});
  }
  EXPECT_GE(rt.metrics().peak_table_words, 1000u);
}

}  // namespace
}  // namespace ampccut::ampc
