// Property/differential suite for the deterministic parallel sort/partition
// primitives (DESIGN.md "Parallel sort & counting primitives").
//
// Contract under test: every primitive is bit-identical to its sequential
// counterpart at EVERY thread count. The suite is parameterized over pool
// widths {1, 2, 3, 5, hardware} and runs each primitive over adversarial key
// distributions (uniform, all-equal, pre-sorted, reverse, duplicate-heavy,
// sawtooth) at sizes straddling psort::kSeqCutoff, plus a randomized fuzz
// loop with arbitrary lengths. Items carry their original index so the
// equality checks also pin stable tie preservation, not just key order.
//
// The PSort* suites run under ThreadSanitizer in CI (the `tsan` preset)
// alongside the runtime/recursion/pool concurrency suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "support/psort.h"
#include "support/rng.h"
#include "support/threadpool.h"

namespace ampccut {
namespace {

struct Item {
  std::uint32_t key;
  std::uint32_t id;  // original position: equality pins stability
  bool operator==(const Item& o) const { return key == o.key && id == o.id; }
};

const char* const kShapes[] = {"uniform",   "all_equal", "sorted",
                               "reverse",   "dup_heavy", "sawtooth"};

std::vector<Item> make_items(const char* shape, std::size_t n, Rng& rng) {
  std::vector<Item> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t key = 0;
    if (shape == std::string_view("uniform")) {
      key = static_cast<std::uint32_t>(rng.next_u64());
    } else if (shape == std::string_view("all_equal")) {
      key = 42;
    } else if (shape == std::string_view("sorted")) {
      key = static_cast<std::uint32_t>(i);
    } else if (shape == std::string_view("reverse")) {
      key = static_cast<std::uint32_t>(n - i);
    } else if (shape == std::string_view("dup_heavy")) {
      key = static_cast<std::uint32_t>(rng.next_below(4));
    } else {  // sawtooth
      key = static_cast<std::uint32_t>(i % 97);
    }
    v[i] = {key, static_cast<std::uint32_t>(i)};
  }
  return v;
}

// Sizes straddling the sequential cutoff; the two above exercise one and
// multiple merge rounds, and the odd size exercises uneven split points.
const std::size_t kSizes[] = {0, 1, 7, 1000, psort::kSeqCutoff,
                              20000, 50001};

// Pool widths. 0 means hardware concurrency (ThreadPool's convention).
class PSortP : public ::testing::TestWithParam<std::size_t> {
 protected:
  ThreadPool pool_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Threads, PSortP,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 0),
                         [](const auto& info) {
                           // Built with += (not operator+) to dodge GCC 12's
                           // -Wrestrict false positive on small-string concat.
                           if (info.param == 0) return std::string("hw");
                           std::string name = "t";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST_P(PSortP, StableSortBitIdenticalToStdStableSort) {
  // repro-lint: allow(comparator-tiebreak) the single-key comparator is the
  // point: items carry their index so equality pins stable tie preservation
  const auto by_key = [](const Item& a, const Item& b) {
    return a.key < b.key;
  };
  for (const char* shape : kShapes) {
    for (const std::size_t n : kSizes) {
      Rng rng(std::hash<std::string_view>{}(std::string_view(shape)) ^ n);
      std::vector<Item> expect = make_items(shape, n, rng);
      std::vector<Item> got = expect;
      // repro-lint: allow(raw-sort) std::stable_sort IS the differential
      // reference the psort contract is stated against
      std::stable_sort(expect.begin(), expect.end(), by_key);
      psort::stable_sort_keys(&pool_, got, by_key);
      ASSERT_EQ(got, expect) << shape << " n=" << n
                             << " threads=" << pool_.num_threads();
      ASSERT_TRUE(std::is_sorted(got.begin(), got.end(), by_key));
    }
  }
}

TEST_P(PSortP, RadixRankBitIdenticalToSequential) {
  for (const char* shape : kShapes) {
    for (const std::size_t n : kSizes) {
      for (const std::size_t num_keys : {std::size_t{1}, std::size_t{4},
                                         std::size_t{257},
                                         std::max<std::size_t>(1, n)}) {
        Rng rng(std::hash<std::string_view>{}(std::string_view(shape)) ^ (n * 31) ^ num_keys);
        std::vector<Item> in = make_items(shape, n, rng);
        const auto key_of = [num_keys](const Item& it) {
          return static_cast<std::size_t>(it.key) % num_keys;
        };
        std::vector<Item> expect(n), got(n);
        std::vector<std::size_t> expect_off, got_off;
        psort::radix_rank(nullptr, in.data(), expect.data(), n, num_keys,
                          key_of, &expect_off);
        psort::radix_rank(&pool_, in.data(), got.data(), n, num_keys, key_of,
                          &got_off);
        ASSERT_EQ(got, expect) << shape << " n=" << n << " keys=" << num_keys
                               << " threads=" << pool_.num_threads();
        ASSERT_EQ(got_off, expect_off);
        // The sequential reference must itself be the stable sort by key.
        std::vector<Item> ref = in;
        // repro-lint: allow(raw-sort) differential reference for radix_rank
        std::stable_sort(ref.begin(), ref.end(),
                         [&](const Item& a, const Item& b) {
                           return key_of(a) < key_of(b);
                         });
        ASSERT_EQ(expect, ref);
        // Group offsets really delimit the key groups.
        ASSERT_EQ(expect_off.size(), num_keys + 1);
        ASSERT_EQ(expect_off.front(), 0u);
        ASSERT_EQ(expect_off.back(), n);
        for (std::size_t k = 0; k < num_keys; ++k) {
          for (std::size_t i = expect_off[k]; i < expect_off[k + 1]; ++i) {
            ASSERT_EQ(key_of(got[i]), k);
          }
        }
      }
    }
  }
}

TEST_P(PSortP, ExclusiveScanBitIdenticalToSequential) {
  for (const std::size_t n : kSizes) {
    Rng rng(n * 1234567);
    std::vector<std::uint64_t> vals(n);
    for (auto& v : vals) {
      // Mix small counts with huge values so a multi-block decomposition
      // that mishandled wraparound would be caught.
      v = rng.next_bernoulli(0.1) ? rng.next_u64() : rng.next_below(100);
    }
    std::vector<std::uint64_t> expect = vals;
    std::vector<std::uint64_t> got = vals;
    const std::uint64_t expect_total = psort::exclusive_scan(nullptr, expect);
    const std::uint64_t got_total = psort::exclusive_scan(&pool_, got);
    ASSERT_EQ(got, expect) << "n=" << n << " threads=" << pool_.num_threads();
    ASSERT_EQ(got_total, expect_total);
  }
  // uint32 accumulators wrap identically too.
  std::vector<std::uint32_t> small(20000);
  Rng rng(99);
  for (auto& v : small) v = static_cast<std::uint32_t>(rng.next_u64());
  std::vector<std::uint32_t> expect32 = small;
  std::vector<std::uint32_t> got32 = small;
  ASSERT_EQ(psort::exclusive_scan(&pool_, got32),
            psort::exclusive_scan(nullptr, expect32));
  ASSERT_EQ(got32, expect32);
}

TEST_P(PSortP, FuzzRandomLengthsAndKeySpaces) {
  Rng rng(0xf00dULL ^ GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = rng.next_below(40000);
    const std::size_t num_keys = 1 + rng.next_below(2 * n + 10);
    std::vector<Item> in(n);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = {static_cast<std::uint32_t>(rng.next_below(num_keys)),
               static_cast<std::uint32_t>(i)};
    }
    // repro-lint: allow(comparator-tiebreak) fuzz items carry their index;
    // the single-key comparator exercises stable tie preservation
    const auto by_key = [](const Item& a, const Item& b) {
      return a.key < b.key;
    };
    // Sort.
    std::vector<Item> expect = in;
    std::vector<Item> got = in;
    // repro-lint: allow(raw-sort) differential reference for the fuzz trials
    std::stable_sort(expect.begin(), expect.end(), by_key);
    psort::stable_sort_keys(&pool_, got, by_key);
    ASSERT_EQ(got, expect) << "trial " << trial;
    // Rank: must agree with the sort (a counting sort IS a stable sort).
    std::vector<Item> ranked(n);
    psort::radix_rank(&pool_, in.data(), ranked.data(), n, num_keys,
                      [](const Item& it) {
                        return static_cast<std::size_t>(it.key);
                      });
    ASSERT_EQ(ranked, expect) << "trial " << trial;
  }
}

// The split-point plan is a pure function of the input size — never of the
// pool — so every thread count walks the same block structure.
TEST(PSortPlan, SplitsArePureAndBalanced) {
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{4095}, std::size_t{8192},
        std::size_t{50001}, std::size_t{1} << 20}) {
    const std::size_t blocks = psort::plan_blocks(n);
    ASSERT_EQ(blocks, psort::plan_blocks(n));  // pure
    ASSERT_GE(blocks, 1u);
    ASSERT_EQ(blocks & (blocks - 1), 0u) << "power of two";
    std::size_t prev = 0;
    for (std::size_t b = 1; b <= blocks; ++b) {
      const std::size_t at = psort::split_point(n, blocks, b);
      ASSERT_GE(at, prev);
      ASSERT_LE(at - prev, n / blocks + 1);  // balanced
      prev = at;
    }
    ASSERT_EQ(prev, n);
    for (const std::size_t keys : {std::size_t{1}, std::size_t{100}, n + 1}) {
      const std::size_t rb = psort::plan_radix_blocks(n, keys);
      ASSERT_GE(rb, 1u);
      ASSERT_LE(rb, psort::plan_blocks(n));
    }
  }
}

}  // namespace
}  // namespace ampccut
