// Fixture-backed suite for tools/repro_lint (DESIGN.md "Static analysis &
// invariant enforcement").
//
// Every check is exercised three ways from tests/lint_fixtures/: a file of
// seeded violations (exact finding counts and file:line anchors), a clean
// twin (zero findings), and an allowlisted twin (zero findings, the allow
// entries recorded with their justification). The directive machinery's own
// findings (bad-allow / unused-allow) have dedicated fixtures, the JSON
// report round-trips through the strict json parser, and the final test
// re-lints the real tree — the same gate CI runs — and demands zero
// non-allowlisted findings.
//
// Fixtures are read from the source tree via AMPC_CUT_SOURCE_DIR and fed to
// scan_file under synthetic paths, so path-scoped behavior (iteration-order
// fires only under src/, psort.* and rng.h are exempt) is testable without
// copying files around.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "repro_lint/lint.h"
#include "support/json.h"

namespace ampccut::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path =
      std::string(AMPC_CUT_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Lints one fixture under a synthetic path (the path drives src/-scoping and
// per-file exemptions).
Report lint_as(const std::string& synthetic_path, const std::string& fixture) {
  Report r;
  scan_file(synthetic_path, read_fixture(fixture), r);
  return r;
}

std::vector<int> lines_of(const Report& r, std::string_view check) {
  std::vector<int> lines;
  for (const Finding& f : r.findings) {
    if (f.check == check) lines.push_back(f.line);
  }
  return lines;
}

std::vector<int> allowed_lines(const Report& r) {
  std::vector<int> lines;
  lines.reserve(r.allowed.size());
  for (const AllowEntry& a : r.allowed) lines.push_back(a.line);
  return lines;
}

using IntVec = std::vector<int>;

// ---------------------------------------------------------------------------
// Source stripping

TEST(ReproLintStrip, PreservesOffsetsAndBlanksNonCode) {
  const std::string src =
      "int a = 1; // trailing words\n"
      "const char* s = \"std::sort(x)\";\n"
      "/* block\n   spans lines */ int b = 2;\n"
      "char c = 'q';\n";
  const std::string out = strip_comments_and_strings(src);
  ASSERT_EQ(out.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(src[i] == '\n', out[i] == '\n') << "newline moved at " << i;
  }
  EXPECT_NE(out.find("int a = 1;"), std::string::npos);
  EXPECT_NE(out.find("int b = 2;"), std::string::npos);
  EXPECT_EQ(out.find("trailing"), std::string::npos);
  EXPECT_EQ(out.find("std::sort"), std::string::npos);
  EXPECT_EQ(out.find("spans"), std::string::npos);
  EXPECT_EQ(out.find('q'), std::string::npos);
}

TEST(ReproLintStrip, RawStringsAreBlanked) {
  const std::string src = "auto r = R\"(qsort(p, n, 1, f))\"; int c = 3;\n";
  const std::string out = strip_comments_and_strings(src);
  ASSERT_EQ(out.size(), src.size());
  EXPECT_EQ(out.find("qsort"), std::string::npos);
  EXPECT_NE(out.find("int c = 3;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// raw-sort

TEST(ReproLintRawSort, SeededViolationsAreAllFound) {
  const Report r = lint_as("tests/fixture.cpp", "raw_sort_violation.cpp");
  EXPECT_EQ(lines_of(r, kRawSort), (IntVec{8, 9, 10, 11, 12}));
  EXPECT_EQ(r.findings.size(), 5u);  // nothing else fires
  EXPECT_TRUE(r.allowed.empty());
  for (const Finding& f : r.findings) {
    EXPECT_EQ(f.file, "tests/fixture.cpp");
    EXPECT_FALSE(f.snippet.empty());
  }
}

TEST(ReproLintRawSort, CleanTwinIsSilent) {
  const Report r = lint_as("tests/fixture.cpp", "raw_sort_clean.cpp");
  EXPECT_TRUE(r.findings.empty()) << r.to_json().dump();
}

TEST(ReproLintRawSort, AllowlistedTwinSuppressesBothForms) {
  const Report r = lint_as("tests/fixture.cpp", "raw_sort_allowed.cpp");
  EXPECT_TRUE(r.findings.empty()) << r.to_json().dump();
  ASSERT_EQ(r.allowed.size(), 2u);
  EXPECT_EQ(allowed_lines(r), (IntVec{8, 9}));  // construct lines, not comment
  for (const AllowEntry& a : r.allowed) {
    EXPECT_EQ(a.check, kRawSort);
    EXPECT_FALSE(a.justification.empty());
  }
}

TEST(ReproLintRawSort, PsortLayerIsExempt) {
  const Report r =
      lint_as("src/support/psort.h", "raw_sort_violation.cpp");
  EXPECT_TRUE(r.findings.empty()) << r.to_json().dump();
}

// ---------------------------------------------------------------------------
// iteration-order

TEST(ReproLintIterationOrder, FiresOnlyUnderSrc) {
  const Report in_src =
      lint_as("src/fixture.cpp", "iteration_order_violation.cpp");
  EXPECT_EQ(lines_of(in_src, kIterationOrder), (IntVec{9, 12}));
  EXPECT_EQ(in_src.findings.size(), 2u);

  const Report in_tests =
      lint_as("tests/fixture.cpp", "iteration_order_violation.cpp");
  EXPECT_TRUE(in_tests.findings.empty()) << in_tests.to_json().dump();
}

TEST(ReproLintIterationOrder, CleanTwinIsSilent) {
  const Report r = lint_as("src/fixture.cpp", "iteration_order_clean.cpp");
  EXPECT_TRUE(r.findings.empty()) << r.to_json().dump();
}

TEST(ReproLintIterationOrder, AllowlistedTwinIsSuppressed) {
  const Report r = lint_as("src/fixture.cpp", "iteration_order_allowed.cpp");
  EXPECT_TRUE(r.findings.empty()) << r.to_json().dump();
  ASSERT_EQ(r.allowed.size(), 1u);
  EXPECT_EQ(r.allowed[0].check, kIterationOrder);
  EXPECT_EQ(r.allowed[0].line, 8);
}

// ---------------------------------------------------------------------------
// rng-discipline

TEST(ReproLintRng, SeededViolationsAreAllFound) {
  const Report r =
      lint_as("src/fixture.cpp", "rng_discipline_violation.cpp");
  EXPECT_EQ(lines_of(r, kRngDiscipline), (IntVec{8, 9, 10}));
  EXPECT_EQ(r.findings.size(), 3u);
  for (const Finding& f : r.findings) {
    if (f.line == 9) {
      EXPECT_NE(f.message.find("time-derived"), std::string::npos);
    }
  }
}

TEST(ReproLintRng, CleanTwinIsSilent) {
  const Report r = lint_as("src/fixture.cpp", "rng_discipline_clean.cpp");
  EXPECT_TRUE(r.findings.empty()) << r.to_json().dump();
}

TEST(ReproLintRng, AllowlistedTwinIsSuppressed) {
  const Report r = lint_as("src/fixture.cpp", "rng_discipline_allowed.cpp");
  EXPECT_TRUE(r.findings.empty()) << r.to_json().dump();
  ASSERT_EQ(r.allowed.size(), 1u);
  EXPECT_EQ(r.allowed[0].check, kRngDiscipline);
  EXPECT_EQ(r.allowed[0].line, 6);
}

TEST(ReproLintRng, RngHeaderIsExempt) {
  const Report r =
      lint_as("src/support/rng.h", "rng_discipline_violation.cpp");
  EXPECT_TRUE(r.findings.empty()) << r.to_json().dump();
}

// ---------------------------------------------------------------------------
// comparator-tiebreak

TEST(ReproLintComparator, SeededViolationsAreAllFound) {
  const Report r =
      lint_as("tests/fixture.cpp", "comparator_tiebreak_violation.cpp");
  EXPECT_EQ(lines_of(r, kComparatorTiebreak), (IntVec{11, 14}));
  EXPECT_EQ(r.findings.size(), 2u);
}

TEST(ReproLintComparator, CleanTwinIsSilent) {
  const Report r =
      lint_as("tests/fixture.cpp", "comparator_tiebreak_clean.cpp");
  EXPECT_TRUE(r.findings.empty()) << r.to_json().dump();
}

TEST(ReproLintComparator, AllowlistedTwinIsSuppressed) {
  const Report r =
      lint_as("tests/fixture.cpp", "comparator_tiebreak_allowed.cpp");
  EXPECT_TRUE(r.findings.empty()) << r.to_json().dump();
  ASSERT_EQ(r.allowed.size(), 1u);
  EXPECT_EQ(r.allowed[0].check, kComparatorTiebreak);
  EXPECT_EQ(r.allowed[0].line, 8);
}

// ---------------------------------------------------------------------------
// dcheck-side-effect

TEST(ReproLintDcheck, SeededViolationsAreAllFound) {
  const Report r =
      lint_as("src/fixture.cpp", "dcheck_side_effect_violation.cpp");
  EXPECT_EQ(lines_of(r, kDcheckSideEffect), (IntVec{8, 9, 10}));
  EXPECT_EQ(r.findings.size(), 3u);
}

TEST(ReproLintDcheck, CleanTwinIsSilent) {
  const Report r =
      lint_as("src/fixture.cpp", "dcheck_side_effect_clean.cpp");
  EXPECT_TRUE(r.findings.empty()) << r.to_json().dump();
}

TEST(ReproLintDcheck, AllowlistedTwinIsSuppressed) {
  const Report r =
      lint_as("src/fixture.cpp", "dcheck_side_effect_allowed.cpp");
  EXPECT_TRUE(r.findings.empty()) << r.to_json().dump();
  ASSERT_EQ(r.allowed.size(), 1u);
  EXPECT_EQ(r.allowed[0].check, kDcheckSideEffect);
  EXPECT_EQ(r.allowed[0].line, 6);
}

// ---------------------------------------------------------------------------
// Directive machinery

TEST(ReproLintDirectives, MalformedDirectivesAreFindings) {
  const Report r = lint_as("tests/fixture.cpp", "bad_allow.cpp");
  EXPECT_EQ(lines_of(r, kBadAllow), (IntVec{3, 4, 5, 6}));
  EXPECT_EQ(r.findings.size(), 4u);
  EXPECT_TRUE(r.allowed.empty());
}

TEST(ReproLintDirectives, UnusedDirectivesAreFindings) {
  const Report r = lint_as("tests/fixture.cpp", "unused_allow.cpp");
  EXPECT_EQ(lines_of(r, kUnusedAllow), (IntVec{3, 5}));
  EXPECT_EQ(r.findings.size(), 2u);
  EXPECT_TRUE(r.allowed.empty());
}

// ---------------------------------------------------------------------------
// JSON report

TEST(ReproLintJson, ReportRoundTripsThroughStrictParser) {
  Report r;
  scan_file("tests/a.cpp", read_fixture("raw_sort_violation.cpp"), r);
  scan_file("tests/b.cpp", read_fixture("raw_sort_allowed.cpp"), r);
  const std::string text = r.to_json().dump();

  std::string err;
  const auto doc = json::Value::parse(text, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  ASSERT_TRUE(doc->is_object());
  ASSERT_NE(doc->find("schema"), nullptr);
  EXPECT_EQ(doc->find("schema")->as_string(), "repro-lint-v1");
  EXPECT_EQ(doc->find("files_scanned")->as_int(), 2);
  EXPECT_EQ(doc->find("finding_count")->as_int(), 5);
  EXPECT_EQ(doc->find("allowed_count")->as_int(), 2);

  // Every check id is present in counts, zeros included.
  const json::Value* counts = doc->find("counts");
  ASSERT_NE(counts, nullptr);
  for (const std::string_view check : kAllChecks) {
    const json::Value* n = counts->find(check);
    ASSERT_NE(n, nullptr) << check;
    EXPECT_TRUE(n->is_number()) << check;
  }
  EXPECT_EQ(counts->find(kRawSort)->as_int(), 5);
  EXPECT_EQ(counts->find(kRngDiscipline)->as_int(), 0);

  const json::Value* findings = doc->find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_TRUE(findings->is_array());
  ASSERT_EQ(findings->as_array().size(), 5u);
  for (const json::Value& f : findings->as_array()) {
    EXPECT_EQ(f.find("check")->as_string(), kRawSort);
    EXPECT_EQ(f.find("file")->as_string(), "tests/a.cpp");
    EXPECT_GT(f.find("line")->as_int(), 0);
    EXPECT_FALSE(f.find("message")->as_string().empty());
    EXPECT_FALSE(f.find("snippet")->as_string().empty());
  }
  const json::Value* allowed = doc->find("allowed");
  ASSERT_NE(allowed, nullptr);
  ASSERT_EQ(allowed->as_array().size(), 2u);
  for (const json::Value& a : allowed->as_array()) {
    EXPECT_EQ(a.find("file")->as_string(), "tests/b.cpp");
    EXPECT_FALSE(a.find("justification")->as_string().empty());
  }
}

// ---------------------------------------------------------------------------
// Tree walks

TEST(ReproLintTree, MissingRootIsAnError) {
  Report r;
  std::string err;
  EXPECT_FALSE(scan_tree("/nonexistent/repro-lint-root", default_subdirs(),
                         r, &err));
  EXPECT_FALSE(err.empty());
}

// src/kernel joined the tree after the lint gate existed; pin that the walk
// actually descends into it and that the layer is clean without a single
// allow directive (its sorts are free-function key projections on psort,
// which the comparator check accepts as-is).
TEST(ReproLintTree, KernelLayerIsInScopeAndClean) {
  Report r;
  std::string err;
  ASSERT_TRUE(scan_tree(AMPC_CUT_SOURCE_DIR, {"src/kernel"}, r, &err)) << err;
  EXPECT_GE(r.files_scanned, 4);  // kernel.{h,cpp}, front.{h,cpp}
  std::string diag;
  for (const Finding& f : r.findings) {
    diag += f.file + ':' + std::to_string(f.line) + ' ' + f.message + '\n';
  }
  EXPECT_TRUE(r.findings.empty()) << diag;
  EXPECT_TRUE(r.allowed.empty()) << "kernel layer should need no allowlist";
}

// The fault-injection/recovery layer and the error taxonomy are pinned
// in-walk and clean: the retry loop replays round bodies, so any hidden
// nondeterminism there (raw sorts, unordered iteration, non-rng randomness)
// would break the recovery bit-identity contract mechanically.
TEST(ReproLintTree, FaultLayerIsInScopeAndClean) {
  Report r;
  std::string err;
  ASSERT_TRUE(scan_tree(AMPC_CUT_SOURCE_DIR, {"src/ampc"}, r, &err)) << err;
  EXPECT_GE(r.files_scanned, 4);  // fault.{h,cpp}, runtime.{h,cpp}
  std::string diag;
  for (const Finding& f : r.findings) {
    diag += f.file + ':' + std::to_string(f.line) + ' ' + f.message + '\n';
  }
  EXPECT_TRUE(r.findings.empty()) << diag;
  EXPECT_TRUE(r.allowed.empty()) << "fault layer should need no allowlist";

  // The taxonomy header rides the same gate (error construction happens on
  // the recovery path, so it must be as deterministic as the runtime).
  std::ifstream in(std::string(AMPC_CUT_SOURCE_DIR) + "/src/support/errors.h",
                   std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  Report er;
  scan_file("src/support/errors.h", buf.str(), er);
  EXPECT_TRUE(er.findings.empty());
  EXPECT_TRUE(er.allowed.empty());
}

// The transport layer reconstructs staging buffers from wire bytes and runs
// the combiner's sort — exactly the kind of code the lint exists for — so it
// is pinned in-walk with zero findings AND zero allow directives (the
// combiner earns determinism with a full-pair comparator, not an allowlist
// entry).
TEST(ReproLintTree, TransportLayerIsInScopeAndClean) {
  Report r;
  std::string err;
  ASSERT_TRUE(scan_tree(AMPC_CUT_SOURCE_DIR, {"src/transport"}, r, &err))
      << err;
  // transport.h, local.cpp, shm.cpp, wire.h, wire.cpp.
  EXPECT_GE(r.files_scanned, 5);
  std::string diag;
  for (const Finding& f : r.findings) {
    diag += f.file + ':' + std::to_string(f.line) + ' ' + f.message + '\n';
  }
  EXPECT_TRUE(r.findings.empty()) << diag;
  EXPECT_TRUE(r.allowed.empty()) << "transport layer should need no allowlist";
}

// The serving tier answers external queries off shared snapshots — its LRU
// lists, shard hashing, and batch fan-out must all be free of hidden
// nondeterminism (the batch-vs-sequential bit-identity contract in
// tests/test_serve.cpp depends on it). Pin src/serve in-walk and clean with
// zero allow directives.
TEST(ReproLintTree, ServeLayerIsInScopeAndClean) {
  Report r;
  std::string err;
  ASSERT_TRUE(scan_tree(AMPC_CUT_SOURCE_DIR, {"src/serve"}, r, &err)) << err;
  // answer_cache, cut_server, scenarios, snapshot — each .h + .cpp.
  EXPECT_GE(r.files_scanned, 8);
  std::string diag;
  for (const Finding& f : r.findings) {
    diag += f.file + ':' + std::to_string(f.line) + ' ' + f.message + '\n';
  }
  EXPECT_TRUE(r.findings.empty()) << diag;
  EXPECT_TRUE(r.allowed.empty()) << "serve layer should need no allowlist";
}

// The gate CI enforces: the real tree has zero non-allowlisted findings, and
// the fixture directory is excluded from the walk.
TEST(ReproLintTree, RealTreeHasZeroFindings) {
  Report r;
  std::string err;
  ASSERT_TRUE(scan_tree(AMPC_CUT_SOURCE_DIR, default_subdirs(), r, &err))
      << err;
  EXPECT_GT(r.files_scanned, 50);
  std::string diag;
  for (const Finding& f : r.findings) {
    diag += f.file;
    diag += ':';
    diag += std::to_string(f.line);
    diag += " [";
    diag += f.check;
    diag += "] ";
    diag += f.message;
    diag += '\n';
  }
  EXPECT_TRUE(r.findings.empty()) << diag;
  EXPECT_FALSE(r.allowed.empty()) << "the tree carries a curated allowlist";
  for (const AllowEntry& a : r.allowed) {
    EXPECT_EQ(a.file.find("lint_fixtures"), std::string::npos) << a.file;
    EXPECT_FALSE(a.justification.empty()) << a.file << ':' << a.line;
  }
}

}  // namespace
}  // namespace ampccut::lint
