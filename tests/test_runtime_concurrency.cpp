// The staged write path's concurrency contract (DESIGN.md "Runtime
// concurrency & staging"): committed table contents and every metric the
// benches report must be identical whether the virtual machines ran on one
// thread or many, for all four Merge policies — including kOverwrite, whose
// same-key races resolve deterministically by machine id.
#include <gtest/gtest.h>

#include <algorithm>

#include "ampc/runtime.h"

namespace ampccut::ampc {
namespace {

// Everything observable about one workload run, for cross-pool comparison.
struct Outcome {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> min_t, max_t, sum_t,
      ovr_t;
  std::vector<std::uint64_t> dense;
  std::uint64_t rounds = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t max_traffic = 0;
  std::uint64_t peak_words = 0;
  std::uint64_t violations = 0;

  bool operator==(const Outcome&) const = default;
};

std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted_snapshot(
    const Table<std::uint64_t, std::uint64_t>& t) {
  auto snap = t.snapshot();
  // repro-lint: allow(raw-sort) canonicalizes an unordered snapshot of
  // distinct keys for comparison; pair self-order needs no tie-break
  std::sort(snap.begin(), snap.end());
  return snap;
}

// Two rounds over 16 machines hammering shared and private keys through all
// four merge policies plus a dense kSum table; also a driver-side put
// (overflow slot) between the rounds.
Outcome run_workload(ThreadPool& pool) {
  Config cfg = Config::for_problem(1 << 12, 0.5);
  Runtime rt(cfg, &pool);
  Table<std::uint64_t, std::uint64_t> tmin(rt, "min", Merge::kMin);
  Table<std::uint64_t, std::uint64_t> tmax(rt, "max", Merge::kMax);
  Table<std::uint64_t, std::uint64_t> tsum(rt, "sum", Merge::kSum);
  Table<std::uint64_t, std::uint64_t> tovr(rt, "ovr", Merge::kOverwrite);
  DenseTable<std::uint64_t> dense(rt, "dense", 64, 5, Merge::kSum);

  constexpr std::size_t kMachines = 16;
  rt.round("phase1", kMachines, [&](MachineContext& ctx) {
    const auto m = static_cast<std::uint64_t>(ctx.machine_id());
    for (std::uint64_t k = 0; k < 4; ++k) {
      tmin.put(k, 100 + ((m * 7 + k) % 13));
      tmax.put(k, 100 + ((m * 5 + k) % 11));
      tsum.put(k, m + k);
      tovr.put(k, m);  // same-key overwrite race across all machines
    }
    tovr.put(1000 + m, m);  // private key, no race
    dense.put(m % 8, 1);
    dense.put(8 + m, m);
  });

  // Driver-side write outside any machine: staged in the overflow slot,
  // visible after the next barrier.
  tovr.put(7777, 42);

  rt.round("phase2", kMachines, [&](MachineContext& ctx) {
    const auto m = static_cast<std::uint64_t>(ctx.machine_id());
    // Adaptive reads of phase-1 commits, then more merging writes.
    const auto v = tsum.at(0);
    tsum.put(4, v % 97);
    tmin.put(2, 50 + m);
    dense.put(m % 4, 2);
  });

  Outcome out;
  out.min_t = sorted_snapshot(tmin);
  out.max_t = sorted_snapshot(tmax);
  out.sum_t = sorted_snapshot(tsum);
  out.ovr_t = sorted_snapshot(tovr);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    out.dense.push_back(dense.raw(i));
  }
  const Metrics& m = rt.metrics();
  out.rounds = m.rounds;
  out.reads = m.dht_reads;
  out.writes = m.dht_writes;
  out.max_traffic = m.max_machine_traffic;
  out.peak_words = m.peak_table_words;
  out.violations = m.budget_violations.load();
  return out;
}

TEST(RuntimeConcurrency, OneThreadAndManyThreadsAgreeExactly) {
  ThreadPool one(1);
  ThreadPool many(4);
  const Outcome a = run_workload(one);
  const Outcome b = run_workload(many);
  const Outcome c = run_workload(many);  // repeatability on the same pool
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(RuntimeConcurrency, OverwriteResolvesToHighestMachineId) {
  ThreadPool many(4);
  Runtime rt(Config::for_problem(1 << 12, 0.5), &many);
  Table<std::uint64_t, std::uint64_t> t(rt, "ovr", Merge::kOverwrite);
  rt.round("race", 32, [&](MachineContext& ctx) {
    t.put(9, static_cast<std::uint64_t>(ctx.machine_id()));
  });
  // Buffers commit in machine-id order, so the last writer wins
  // deterministically — machine 31 here, regardless of thread schedule.
  EXPECT_EQ(t.at(9), 31u);
}

TEST(RuntimeConcurrency, MergePoliciesThroughStagedPath) {
  ThreadPool many(4);
  Runtime rt(Config::for_problem(1 << 12, 0.5), &many);
  Table<std::uint64_t, std::uint64_t> tmin(rt, "min", Merge::kMin);
  Table<std::uint64_t, std::uint64_t> tmax(rt, "max", Merge::kMax);
  Table<std::uint64_t, std::uint64_t> tsum(rt, "sum", Merge::kSum);
  Table<std::uint64_t, std::uint64_t> tovr(rt, "ovr", Merge::kOverwrite);
  rt.round("w", 8, [&](MachineContext& ctx) {
    const auto m = static_cast<std::uint64_t>(ctx.machine_id());
    tmin.put(1, 100 + m);
    tmax.put(1, 100 + m);
    tsum.put(1, 1);
    tovr.put(1, m);
  });
  EXPECT_EQ(tmin.at(1), 100u);
  EXPECT_EQ(tmax.at(1), 107u);
  EXPECT_EQ(tsum.at(1), 8u);
  EXPECT_EQ(tovr.at(1), 7u);
}

TEST(RuntimeConcurrency, LargeRoundTakesParallelCommitPath) {
  // Above the inline-commit threshold (4096 staged entries) the two-phase
  // commit fans out over the pool; contents must match the 1-thread run.
  constexpr std::uint64_t kItems = 1 << 14;
  const auto run = [&](ThreadPool& pool) {
    Config cfg = Config::for_problem(kItems, 0.5);
    Runtime rt(cfg, &pool);
    DenseTable<std::uint64_t> d(rt, "d", kItems, 0, Merge::kSum);
    Table<std::uint64_t, std::uint64_t> t(rt, "t", Merge::kMin, 8);
    rt.round_over_items("bulk", kItems, [&](MachineContext&, std::uint64_t i) {
      d.put(i, i * 3 + 1);
      t.put(i % 1024, i);
    });
    std::vector<std::uint64_t> out;
    for (std::uint64_t i = 0; i < kItems; ++i) out.push_back(d.raw(i));
    for (std::uint64_t k = 0; k < 1024; ++k) out.push_back(t.at(k));
    out.push_back(rt.metrics().dht_writes);
    out.push_back(rt.metrics().peak_table_words);
    return out;
  };
  ThreadPool one(1);
  ThreadPool many(4);
  EXPECT_EQ(run(one), run(many));
}

TEST(RuntimeConcurrency, BudgetViolationCountingUnchanged) {
  const auto violations = [](ThreadPool& pool) {
    Config cfg = Config::for_problem(1 << 12, 0.5);
    cfg.machine_memory_words = 4;
    Runtime rt(cfg, &pool);
    DenseTable<std::uint64_t> t(rt, "d", 64, 1);
    rt.round("r", 6, [&](MachineContext& ctx) {
      // Machines 0/2/4 read 10 words (over the 4-word budget); odd machines
      // stay under it.
      const int reads = ctx.machine_id() % 2 == 0 ? 10 : 2;
      for (int i = 0; i < reads; ++i) (void)t.get(static_cast<std::uint64_t>(i));
    });
    return rt.metrics().budget_violations.load();
  };
  ThreadPool one(1);
  ThreadPool many(4);
  EXPECT_EQ(violations(one), 3u);
  EXPECT_EQ(violations(many), 3u);
}

TEST(RuntimeConcurrency, DriverWritesCommitLastEvenWhenRoundsGrow) {
  // A driver-side put staged between rounds must commit AFTER every machine
  // buffer of the next round — including machines that did not exist in the
  // previous round (the overflow buffer must not be repurposed as a machine
  // buffer when begin_round grows the buffer vector).
  ThreadPool many(4);
  Runtime rt(Config::for_problem(1 << 12, 0.5), &many);
  Table<std::uint64_t, std::uint64_t> t(rt, "ovr", Merge::kOverwrite);
  rt.round("small", 4, [&](MachineContext& ctx) {
    t.put(100 + ctx.machine_id(), 1);
  });
  t.put(5, 999);  // driver-side, staged for the next barrier
  rt.round("grown", 8, [&](MachineContext& ctx) {
    t.put(5, static_cast<std::uint64_t>(ctx.machine_id()));
  });
  EXPECT_EQ(t.at(5), 999u);  // driver write wins: overflow commits last
}

TEST(RuntimeConcurrency, TableRegisteredMidRoundStagesCorrectly) {
  // A table constructed inside a round body (machine 0 only) must still get
  // machine-indexed staging buffers via register_table.
  ThreadPool many(4);
  Runtime rt(Config::for_problem(1 << 12, 0.5), &many);
  std::optional<DenseTable<std::uint64_t>> late;
  rt.round("create", 1, [&](MachineContext&) {
    late.emplace(rt, "late", 8, 0);
    late->put(3, 30);
  });
  EXPECT_EQ(late->raw(3), 30u);
}

}  // namespace
}  // namespace ampccut::ampc
