#include <gtest/gtest.h>

#include <numeric>

#include "exact/brute_force.h"
#include "exact/stoer_wagner.h"
#include "graph/generators.h"
#include "mpc/gn_baseline.h"
#include "mpc/primitives.h"
#include "support/bits.h"
#include "support/rng.h"

namespace ampccut::mpc {
namespace {

TEST(MpcRuntime, DeliversMessagesNextRound) {
  Runtime rt(Config{}, 4);
  rt.round("send", [](std::uint64_t m, const std::vector<Message>& inbox,
                      const std::function<void(Message)>& send) {
    EXPECT_TRUE(inbox.empty());
    send({(m + 1) % 4, {m}});
  });
  rt.round("recv", [](std::uint64_t m, const std::vector<Message>& inbox,
                      const std::function<void(Message)>&) {
    ASSERT_EQ(inbox.size(), 1u);
    EXPECT_EQ(inbox[0].payload[0], (m + 3) % 4);
  });
  EXPECT_EQ(rt.metrics().rounds, 2u);
  EXPECT_EQ(rt.metrics().messages, 8u);  // 4 messages x (1 word + header)
}

TEST(MpcListRank, MatchesSuffixSums) {
  const std::uint64_t n = 500;
  std::vector<std::uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(3);
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<std::uint64_t> next(n, kNoNext);
  for (std::uint64_t k = 0; k + 1 < n; ++k) next[order[k]] = order[k + 1];
  std::vector<std::int64_t> vals(n);
  for (auto& v : vals) v = static_cast<std::int64_t>(rng.next_below(9)) - 4;

  Runtime rt(Config{}, 16);
  const auto rank = mpc_list_rank(rt, next, vals);
  std::int64_t suffix = 0;
  for (std::uint64_t k = n; k-- > 0;) {
    suffix += vals[order[k]];
    EXPECT_EQ(rank[order[k]], suffix);
  }
  // Theta(log n) doubling steps, 3 rounds each.
  EXPECT_GE(rt.metrics().rounds, 2u * ceil_log2(n));
}

TEST(MpcListRank, RoundsGrowWithLogN) {
  std::uint64_t small = 0, large = 0;
  {
    Runtime rt(Config{}, 8);
    std::vector<std::uint64_t> next(1 << 6, kNoNext);
    for (std::uint64_t i = 0; i + 1 < next.size(); ++i) next[i] = i + 1;
    (void)mpc_list_rank(rt, next, std::vector<std::int64_t>(1 << 6, 1));
    small = rt.metrics().rounds;
  }
  {
    Runtime rt(Config{}, 8);
    std::vector<std::uint64_t> next(1 << 12, kNoNext);
    for (std::uint64_t i = 0; i + 1 < next.size(); ++i) next[i] = i + 1;
    (void)mpc_list_rank(rt, next, std::vector<std::int64_t>(1 << 12, 1));
    large = rt.metrics().rounds;
  }
  // log grew by 6 doubling steps -> >= 12 extra rounds. This is the
  // separation AMPC removes (test_ampc_primitives asserts flatness there).
  EXPECT_GE(large, small + 12);
}

TEST(MpcComponents, CorrectOnCyclesAndForests) {
  {
    Runtime rt(Config{}, 8);
    const auto label = mpc_components(rt, gen_two_cycles(40));
    for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(label[v], 0u);
    for (VertexId v = 20; v < 40; ++v) EXPECT_EQ(label[v], 20u);
  }
  {
    Runtime rt(Config{}, 8);
    const auto label = mpc_components(rt, gen_cycle(64));
    for (VertexId v = 0; v < 64; ++v) EXPECT_EQ(label[v], 0u);
  }
}

TEST(MpcMsf, MatchesKruskal) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const WGraph g = gen_erdos_renyi(50, 0.15, seed);
    const ContractionOrder o = make_contraction_order(g, seed + 4);
    Runtime rt(Config{}, 16);
    EXPECT_EQ(mpc_msf_boruvka(rt, g, o), msf_edges_by_time(g, o))
        << "seed " << seed;
  }
}

TEST(MpcMsf, TiedTimesForestOrderIsDeterministic) {
  // Hand-built orders (perm left empty) may reuse times; the forest must
  // come back in (time, id) order — the documented contraction.cpp
  // tie-break — and identically on every run, not in whatever order an
  // unstable sort left tied edges.
  WGraph g;
  g.n = 6;  // path: every edge is a forest edge
  for (VertexId v = 0; v + 1 < g.n; ++v) g.add_edge(v, v + 1, 1);
  ContractionOrder order;
  order.time = {2, 1, 2, 1, 2};
  Runtime rt_a(Config{}, 8);
  const auto a = mpc_msf_boruvka(rt_a, g, order);
  Runtime rt_b(Config{}, 8);
  const auto b = mpc_msf_boruvka(rt_b, g, order);
  const std::vector<EdgeId> expect = {1, 3, 0, 2, 4};  // time 1 ids, time 2 ids
  EXPECT_EQ(a, expect);
  EXPECT_EQ(b, expect);
}

TEST(GnBaseline, CutQualityMatchesSequential) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const WGraph g = gen_erdos_renyi(50, 0.15, seed + 21);
    MpcMinCutOptions o;
    o.recursion.seed = seed;
    o.recursion.trials = 1;
    o.recursion.local_threshold = 20;
    const auto r = mpc_gn_min_cut(g, o);
    EXPECT_EQ(cut_weight(g, r.side), r.weight);
    EXPECT_EQ(r.weight, approx_min_cut(g, o.recursion).weight);
    EXPECT_GT(r.rounds, 0u);
  }
}

TEST(GnBaseline, KCutRunsAndCounts) {
  const WGraph g = gen_communities(30, 3, 0.6, 2, 7);
  MpcMinCutOptions o;
  o.recursion.seed = 7;
  o.recursion.trials = 1;
  o.recursion.local_threshold = 16;
  const auto r = mpc_gn_k_cut(g, 3, o);
  EXPECT_GE(r.result.num_parts, 3u);
  EXPECT_EQ(k_cut_weight(g, r.result.part), r.result.weight);
  EXPECT_GT(r.rounds, 0u);
}

}  // namespace
}  // namespace ampccut::mpc
