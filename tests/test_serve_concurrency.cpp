// Concurrency contract of the serving tier (DESIGN.md "Cut-query serving
// tier"), written to run under TSan (the tsan preset and CI job filter on
// the "Serve" suite-name prefix): N reader threads hammer queries while a
// writer swaps snapshots, and every answer must be attributable to a
// published epoch — a pinned snapshot answers for ITS graph forever, a
// batch is internally consistent with exactly one epoch, and a chaotic
// rebuild either lands or throws RetriesExhaustedError with the old epoch
// still serving. Torn state of any kind is a failure; so is an answer that
// matches no published epoch's truth table.
//
// The two alternating graphs are built so that EVERY query pair has a
// different answer on epoch-odd vs epoch-even — any cross-epoch mixup,
// stale-cache hit, or torn read lands on a value the checker rejects.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "flow/dinic.h"
#include "graph/generators.h"
#include "serve/cut_server.h"
#include "support/errors.h"
#include "support/threadpool.h"

namespace ampccut {
namespace {

using serve::CutServer;
using serve::CutServerOptions;
using serve::QueryPair;

constexpr VertexId kN = 12;

// Epoch-odd graph: a unit-weight path. Every s-t answer is 1.
WGraph odd_graph() {
  return gen_path(kN);
}

// Epoch-even graph: the same path with every edge at weight 5. Every s-t
// answer is 5 — disjoint from the odd graph's on every pair.
WGraph even_graph() {
  WGraph g;
  g.n = kN;
  for (VertexId v = 0; v + 1 < kN; ++v) g.add_edge(v, v + 1, 5);
  return g;
}

std::vector<QueryPair> all_pairs() {
  std::vector<QueryPair> pairs;
  for (VertexId s = 0; s < kN; ++s) {
    for (VertexId t = s + 1; t < kN; ++t) pairs.push_back({s, t});
  }
  return pairs;
}

// Ground truth per parity, computed by direct max-flow up front.
struct Truth {
  std::vector<Weight> odd;
  std::vector<Weight> even;
};

Truth truth_tables(const std::vector<QueryPair>& pairs) {
  Truth t;
  const WGraph go = odd_graph();
  const WGraph ge = even_graph();
  for (const auto& p : pairs) {
    t.odd.push_back(st_min_cut(go, p.s, p.t));
    t.even.push_back(st_min_cut(ge, p.s, p.t));
    EXPECT_NE(t.odd.back(), t.even.back());  // the detector's precondition
  }
  return t;
}

Weight expected_for_epoch(const Truth& t, std::uint64_t epoch,
                          std::size_t pair_index) {
  return (epoch % 2 == 1) ? t.odd[pair_index] : t.even[pair_index];
}

TEST(ServeConcurrency, PinnedSnapshotsAnswerTheirOwnEpochDuringSwaps) {
  const auto pairs = all_pairs();
  const Truth truth = truth_tables(pairs);
  CutServerOptions opt;
  opt.cache_capacity = 0;  // raw snapshot reads; the cache gets its own test
  CutServer server(odd_graph(), opt);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> checked{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = server.snapshot();  // pin once, then read a lot
        const std::uint64_t epoch = snap->epoch();
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          const Weight got = snap->query(pairs[i].s, pairs[i].t);
          if (got != expected_for_epoch(truth, epoch, i)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          checked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int swap = 0; swap < 24; ++swap) {
    server.update_graph(swap % 2 == 0 ? even_graph() : odd_graph());
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(mismatches.load(), 0U);
  EXPECT_GT(checked.load(), 0U);
  EXPECT_EQ(server.snapshot()->epoch(), 25U);
  EXPECT_EQ(server.stats().rebuilds, 24U);
}

TEST(ServeConcurrency, CachedQueriesMatchSomePublishedEpochAndCountExactly) {
  const auto pairs = all_pairs();
  const Truth truth = truth_tables(pairs);
  CutServerOptions opt;
  opt.cache_shards = 4;
  opt.cache_capacity = 256;  // small enough to also exercise eviction
  CutServer server(odd_graph(), opt);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> issued{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      std::size_t i = static_cast<std::size_t>(r);  // stagger the walks
      while (!stop.load(std::memory_order_acquire)) {
        i = (i + 1) % pairs.size();
        const Weight got = server.query(pairs[i].s, pairs[i].t);
        // query() pins internally; the answer must match one of the two
        // truth tables — a cross-epoch cache hit would land between them.
        if (got != truth.odd[i] && got != truth.even[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        issued.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int swap = 0; swap < 16; ++swap) {
    server.update_graph(swap % 2 == 0 ? even_graph() : odd_graph());
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(mismatches.load(), 0U);
  const auto s = server.stats();
  EXPECT_EQ(s.queries, issued.load());
  // Every valid query consulted the enabled cache exactly once.
  EXPECT_EQ(s.cache_hits + s.cache_misses, issued.load());
}

TEST(ServeConcurrency, ConcurrentBatchesAreInternallyOneEpoch) {
  const auto pairs = all_pairs();
  const Truth truth = truth_tables(pairs);
  CutServerOptions opt;
  opt.cache_capacity = 0;
  CutServer server(odd_graph(), opt);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> inconsistent{0};
  std::atomic<std::uint64_t> batches{0};
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto answers = server.query_batch(pairs);
        // Infer the serving parity from answer 0; every other slot must
        // agree with it. Answers differ across parities on EVERY pair, so a
        // batch mixing epochs cannot sneak through.
        const bool odd = answers[0] == truth.odd[0];
        for (std::size_t i = 0; i < answers.size(); ++i) {
          if (answers[i] != (odd ? truth.odd[i] : truth.even[i])) {
            inconsistent.fetch_add(1, std::memory_order_relaxed);
          }
        }
        batches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int swap = 0; swap < 16; ++swap) {
    server.update_graph(swap % 2 == 0 ? even_graph() : odd_graph());
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(inconsistent.load(), 0U);
  EXPECT_GT(batches.load(), 0U);
}

// The CI chaos job sets AMPC_CHAOS_RATE and runs this under TSan: rebuilds
// under rate-based injection either publish the next epoch or surface
// RetriesExhaustedError with the previous epoch untouched — readers racing
// the whole time must never observe an answer outside the truth tables.
TEST(ServeConcurrency, ChaoticRebuildsDegradeToTypedErrorsNeverWrongAnswers) {
  double rate = 0.02;
  if (const char* env = std::getenv("AMPC_CHAOS_RATE")) {
    rate = std::strtod(env, nullptr);
  }
  if (rate <= 0.0) GTEST_SKIP() << "chaos disabled (AMPC_CHAOS_RATE <= 0)";

  const auto pairs = all_pairs();
  const Truth truth = truth_tables(pairs);
  CutServer server(odd_graph());

  ampc::FaultPlan plan;
  plan.seed = 2026;
  plan.crash_rate = rate;
  plan.read_fail_rate = rate / 4;
  plan.write_loss_rate = rate / 4;
  plan.delay_rate = rate;
  plan.delay_spin = 64;
  ampc::RetryPolicy retry;
  retry.max_attempts = 3;
  server.set_fault(plan, retry);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mismatches{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = server.snapshot();
      const std::uint64_t epoch = snap->epoch();
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        if (snap->query(pairs[i].s, pairs[i].t) !=
            expected_for_epoch(truth, epoch, i)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::uint64_t published = 1;  // the constructor's epoch
  std::uint64_t exhausted = 0;
  for (int swap = 0; swap < 20; ++swap) {
    const std::uint64_t before = server.snapshot()->epoch();
    try {
      // The NEXT epoch's parity decides which graph keeps the truth tables
      // valid, regardless of how many earlier updates were lost to chaos.
      server.update_graph(before % 2 == 1 ? even_graph() : odd_graph());
      published += 1;
      ASSERT_EQ(server.snapshot()->epoch(), before + 1);
    } catch (const RetriesExhaustedError&) {
      exhausted += 1;
      ASSERT_EQ(server.snapshot()->epoch(), before);  // old epoch intact
    }
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(mismatches.load(), 0U);
  EXPECT_EQ(server.snapshot()->epoch(), published);
  EXPECT_EQ(server.stats().rebuilds, published - 1);
  // Not asserted > 0: at low rates all 20 rebuilds may survive the chaos.
  (void)exhausted;
}

}  // namespace
}  // namespace ampccut
