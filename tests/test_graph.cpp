#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph.h"
#include "graph/io.h"
#include "graph/union_find.h"
#include "support/errors.h"

namespace ampccut {
namespace {

WGraph triangle() {
  WGraph g;
  g.n = 3;
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  g.add_edge(0, 2, 5);
  return g;
}

TEST(Graph, BasicAccounting) {
  const WGraph g = triangle();
  EXPECT_EQ(g.m(), 3u);
  EXPECT_EQ(g.total_weight(), 10u);
  const auto deg = g.weighted_degrees();
  EXPECT_EQ(deg[0], 7u);
  EXPECT_EQ(deg[1], 5u);
  EXPECT_EQ(deg[2], 8u);
}

TEST(Graph, RejectsSelfLoopAndRange) {
  WGraph g;
  g.n = 2;
  EXPECT_THROW(g.add_edge(0, 0), std::logic_error);
  EXPECT_THROW(g.add_edge(0, 5), std::logic_error);
}

TEST(Graph, AdjacencyIsSymmetric) {
  const WGraph g = triangle();
  const Adjacency adj(g);
  EXPECT_EQ(adj.degree(0), 2u);
  EXPECT_EQ(adj.degree(1), 2u);
  EXPECT_EQ(adj.degree(2), 2u);
  // Each edge appears once from each side with consistent ids.
  std::size_t arcs = 0;
  for (VertexId v = 0; v < g.n; ++v) {
    for (const auto& a : adj.neighbors(v)) {
      ++arcs;
      const auto& e = g.edges[a.edge];
      EXPECT_TRUE((e.u == v && e.v == a.to) || (e.v == v && e.u == a.to));
      EXPECT_EQ(e.w, a.w);
    }
  }
  EXPECT_EQ(arcs, 2 * g.m());
}

TEST(Graph, ComponentsAndConnectivity) {
  WGraph g;
  g.n = 5;
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(count_components(g), 3u);
  EXPECT_FALSE(is_connected(g));
  const auto lab = component_labels(g);
  EXPECT_EQ(lab[0], lab[1]);
  EXPECT_EQ(lab[2], lab[3]);
  EXPECT_NE(lab[0], lab[2]);
  EXPECT_NE(lab[4], lab[0]);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Graph, CutWeight) {
  const WGraph g = triangle();
  EXPECT_EQ(cut_weight(g, {1, 0, 0}), 7u);
  EXPECT_EQ(cut_weight(g, {0, 1, 0}), 5u);
  EXPECT_EQ(cut_weight(g, {1, 1, 0}), 8u);
  EXPECT_EQ(cut_weight(g, {0, 0, 0}), 0u);
}

TEST(UnionFind, MergesAndCounts) {
  UnionFind uf(6);
  EXPECT_EQ(uf.num_components(), 6u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_EQ(uf.num_components(), 3u);
  EXPECT_TRUE(uf.same(1, 2));
  EXPECT_FALSE(uf.same(1, 4));
  EXPECT_EQ(uf.component_size(uf.find(0)), 4u);
}

TEST(GraphIo, RoundTrips) {
  const WGraph g = triangle();
  std::stringstream ss;
  write_edge_list(ss, g);
  const WGraph h = read_edge_list(ss);
  EXPECT_EQ(h.n, g.n);
  ASSERT_EQ(h.edges.size(), g.edges.size());
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    EXPECT_EQ(h.edges[i], g.edges[i]);
  }
}

TEST(GraphIo, DefaultWeightAndComments) {
  std::stringstream ss("# a comment\n3 2\n0 1\n1 2 7\n");
  const WGraph g = read_edge_list(ss);
  EXPECT_EQ(g.n, 3u);
  EXPECT_EQ(g.edges[0].w, 1u);
  EXPECT_EQ(g.edges[1].w, 7u);
}

TEST(GraphIo, RejectsMalformed) {
  std::stringstream missing_header("0 1 2\n");
  EXPECT_THROW(read_edge_list(missing_header), GraphIoError);
  std::stringstream wrong_count("3 5\n0 1\n");
  EXPECT_THROW(read_edge_list(wrong_count), GraphIoError);
}

// Every malformed-input failure path must be loud — the typed GraphIoError
// (support/errors.h) — never a silently wrapped or truncated value.
TEST(GraphIo, RejectsTruncatedHeader) {
  std::stringstream one_token("3\n");
  EXPECT_THROW(read_edge_list(one_token), GraphIoError);
  std::stringstream empty_input("");
  EXPECT_THROW(read_edge_list(empty_input), GraphIoError);
  std::stringstream comments_only("# nothing\n# here\n");
  EXPECT_THROW(read_edge_list(comments_only), GraphIoError);
}

TEST(GraphIo, RejectsNonNumericTokens) {
  std::stringstream bad_n("x 1\n0 1\n");
  EXPECT_THROW(read_edge_list(bad_n), GraphIoError);
  std::stringstream bad_endpoint("3 1\n0 one\n");
  EXPECT_THROW(read_edge_list(bad_endpoint), GraphIoError);
  std::stringstream bad_weight("3 1\n0 1 heavy\n");
  EXPECT_THROW(read_edge_list(bad_weight), GraphIoError);
  std::stringstream hex_weight("3 1\n0 1 0x10\n");
  EXPECT_THROW(read_edge_list(hex_weight), GraphIoError);
}

TEST(GraphIo, RejectsNegativeNumbers) {
  // operator>> into an unsigned would silently wrap these; the token parser
  // must refuse the sign outright.
  std::stringstream neg_n("-3 1\n0 1\n");
  EXPECT_THROW(read_edge_list(neg_n), GraphIoError);
  std::stringstream neg_endpoint("3 1\n0 -1\n");
  EXPECT_THROW(read_edge_list(neg_endpoint), GraphIoError);
  std::stringstream neg_weight("3 1\n0 1 -5\n");
  EXPECT_THROW(read_edge_list(neg_weight), GraphIoError);
}

TEST(GraphIo, RejectsOverflow) {
  // 2^32 does not fit VertexId; 2^64 - 1 is the kInfiniteWeight sentinel;
  // 40 digits overflow any 64-bit accumulator.
  std::stringstream big_n("4294967296 0\n");
  EXPECT_THROW(read_edge_list(big_n), GraphIoError);
  std::stringstream big_m("3 18446744073709551615\n");
  EXPECT_THROW(read_edge_list(big_m), GraphIoError);
  std::stringstream sentinel_weight("3 1\n0 1 18446744073709551615\n");
  EXPECT_THROW(read_edge_list(sentinel_weight), GraphIoError);
  std::stringstream huge("3 1\n0 1 9999999999999999999999999999999999999999\n");
  EXPECT_THROW(read_edge_list(huge), GraphIoError);
}

TEST(GraphIo, RejectsSelfLoopsAndRangeViolations) {
  std::stringstream self_loop("3 1\n1 1\n");
  EXPECT_THROW(read_edge_list(self_loop), std::logic_error);
  std::stringstream out_of_range("3 1\n0 3\n");
  EXPECT_THROW(read_edge_list(out_of_range), std::logic_error);
}

TEST(GraphIo, RejectsTrailingGarbage) {
  std::stringstream extra_header_token("3 1 9\n0 1\n");
  EXPECT_THROW(read_edge_list(extra_header_token), GraphIoError);
  std::stringstream extra_edge_token("3 1\n0 1 7 8\n");
  EXPECT_THROW(read_edge_list(extra_edge_token), GraphIoError);
  std::stringstream extra_edge_line("3 1\n0 1\n1 2\n");
  EXPECT_THROW(read_edge_list(extra_edge_line), GraphIoError);
}

TEST(GraphIo, AcceptsBoundaryValuesAndCrLf) {
  // Maximum representable weight below the sentinel, CRLF line endings, and
  // interior comment lines are all fine.
  std::stringstream ok("3 2\r\n# mid comment\r\n0 1 18446744073709551614\r\n"
                       "1 2\r\n");
  const WGraph g = read_edge_list(ok);
  EXPECT_EQ(g.n, 3u);
  ASSERT_EQ(g.edges.size(), 2u);
  EXPECT_EQ(g.edges[0].w, kInfiniteWeight - 1);
  EXPECT_EQ(g.edges[1].w, 1u);
}

}  // namespace
}  // namespace ampccut
