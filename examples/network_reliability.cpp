// Network reliability as a SERVED scenario: link weights encode capacity,
// and a CutServer answers "what is the bottleneck between these two
// routers?" in O(tree path) per pair off one Gomory–Hu snapshot — the
// all-pairs structure one precomputation buys. The batch path fans the pair
// list over the thread pool, and re-asking the same pairs is answered from
// the sharded LRU cache (watch the hit counters).
#include <cstdio>

#include "graph/generators.h"
#include "serve/scenarios.h"

int main() {
  using namespace ampccut;

  // A backbone: grid core with randomized capacities plus a fragile
  // two-link attachment of a remote region.
  WGraph g = gen_grid(12, 12);  // 144-node core
  randomize_weights(g, 20, 5);
  const VertexId core = g.n;
  g.n += 16;  // remote region: a ring of 16 routers
  for (VertexId i = 0; i < 16; ++i) {
    g.add_edge(core + i, core + (i + 1) % 16, 10);
  }
  g.add_edge(0, core, 2);        // two thin uplinks
  g.add_edge(13, core + 8, 3);

  std::printf("backbone: n=%u m=%zu, remote region attached by capacity "
              "2+3 uplinks\n", g.n, g.m());

  serve::CutServer server(g);

  // The NOC's standing question list: core-to-remote bottlenecks plus a few
  // intra-core sanity pairs.
  std::vector<serve::QueryPair> pairs = {
      {0, core}, {13, core + 8}, {5, core + 4}, {70, core + 12},
      {0, 143},  {12, 131},      {40, 103},
  };
  const auto report = serve::serve_network_reliability(server, pairs);

  std::printf("served epoch          : %llu\n",
              static_cast<unsigned long long>(report.epoch));
  std::printf("pair bottlenecks (batch, one snapshot):\n");
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    std::printf("  %3u <-> %3u : capacity %llu\n", pairs[i].s, pairs[i].t,
                static_cast<unsigned long long>(report.pair_capacity[i]));
  }
  std::printf("weakest cut capacity  : %llu\n",
              static_cast<unsigned long long>(report.weakest.weight));
  std::printf("links to reinforce    : every edge crossing the weakest cut\n");
  for (const auto& e : report.weakest_links) {
    std::printf("  link %u-%u (capacity %llu)\n", e.u, e.v,
                static_cast<unsigned long long>(e.w));
  }

  // The same dashboard refreshes: the second batch is all cache hits.
  (void)serve::serve_network_reliability(server, pairs);
  const auto stats = server.stats();
  std::printf("cache after refresh   : %llu hits / %llu misses "
              "(%llu answers served)\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              static_cast<unsigned long long>(stats.batch_queries));
  return 0;
}
