// Network reliability scenario: weighted min cut as a bottleneck detector.
// Link weights encode capacity; the global min cut is the cheapest set of
// links whose failure partitions the backbone — exactly weighted Min Cut,
// which the paper's algorithm approximates within 2+eps.
#include <cstdio>

#include "exact/stoer_wagner.h"
#include "graph/generators.h"
#include "mincut/mincut_recursive.h"

int main() {
  using namespace ampccut;

  // A backbone: grid core with randomized capacities plus a fragile
  // two-link attachment of a remote region.
  WGraph g = gen_grid(12, 12);  // 144-node core
  randomize_weights(g, 20, 5);
  const VertexId core = g.n;
  g.n += 16;  // remote region: a ring of 16 routers
  for (VertexId i = 0; i < 16; ++i) {
    g.add_edge(core + i, core + (i + 1) % 16, 10);
  }
  g.add_edge(0, core, 2);        // two thin uplinks
  g.add_edge(13, core + 8, 3);

  std::printf("backbone: n=%u m=%zu, remote region attached by capacity "
              "2+3 uplinks\n", g.n, g.m());

  ApproxMinCutOptions opt;
  opt.seed = 21;
  opt.trials = 3;
  const auto cut = approx_min_cut(g, opt);
  const auto exact = stoer_wagner_min_cut(g);

  std::printf("weakest cut capacity  : %llu (exact %llu)\n",
              static_cast<unsigned long long>(cut.weight),
              static_cast<unsigned long long>(exact.weight));
  std::size_t remote_side = 0;
  for (VertexId v = core; v < g.n; ++v) remote_side += cut.side[v];
  const bool isolates_remote = remote_side == 16 || remote_side == 0;
  std::printf("cut isolates remote?  : %s (uplinks are the bottleneck)\n",
              isolates_remote ? "yes" : "no");
  std::printf("links to reinforce    : every edge crossing the returned "
              "side bitmap\n");
  for (const auto& e : g.edges) {
    if (cut.side[e.u] != cut.side[e.v]) {
      std::printf("  link %u-%u (capacity %llu)\n", e.u, e.v,
                  static_cast<unsigned long long>(e.w));
    }
  }
  return 0;
}
