// Min k-Cut as a SERVED scenario (Section 5): the CutServer's snapshot
// answers (2 - 2/k)-approximate k-cut requests straight off the published
// Gomory–Hu tree (Observation 10) — no flows at request time — while the
// APX-SPLIT greedy with approximate splitters (Theorem 2) and the exact
// Saran–Vazirani baseline run per-request for comparison.
#include <cstdio>

#include "exact/brute_force.h"
#include "graph/generators.h"
#include "mincut/kcut.h"
#include "serve/scenarios.h"

int main() {
  using namespace ampccut;

  const std::uint32_t k = 4;
  const WGraph g = gen_communities(/*n=*/240, k, /*p_in=*/0.2,
                                   /*bridge_edges=*/3, /*seed=*/13);
  std::printf("workload graph: n=%u m=%zu, %u planted clusters, 3 bridges "
              "between neighbors\n", g.n, g.m(), k);

  serve::CutServer server(g);
  const auto served = serve::serve_kcut_partition(server, k);

  ApproxMinCutOptions mopt;
  mopt.seed = 9;
  mopt.trials = 2;
  const auto ours = apx_split_k_cut_approx(g, k, mopt);
  const auto sv = apx_split_k_cut_exact(g, k);  // Saran-Vazirani baseline

  std::printf("served Gomory-Hu k-cut    : weight %llu (epoch %llu, no "
              "flows at request time)\n",
              static_cast<unsigned long long>(served.cut.weight),
              static_cast<unsigned long long>(served.epoch));
  std::printf("APX-SPLIT (2+eps splitter): weight %llu in %u iterations\n",
              static_cast<unsigned long long>(ours.weight), ours.iterations);
  std::printf("Saran-Vazirani (exact)    : weight %llu\n",
              static_cast<unsigned long long>(sv.weight));

  std::printf("\ncluster recovery (served partition sizes):");
  for (const auto s : served.part_sizes) std::printf(" %u", s);
  std::printf("\nvalid partition: %s\n",
              k_cut_weight(g, served.cut.part) == served.cut.weight ? "yes"
                                                                    : "no");
  return 0;
}
