// Min k-Cut scenario (Section 5): partition a clustered workload graph into
// k parts cutting minimal edge weight — APX-SPLIT greedy with approximate
// splitters (Theorem 2) against the Gomory-Hu and exact-splitter baselines.
#include <cstdio>

#include "exact/brute_force.h"
#include "flow/gomory_hu.h"
#include "graph/generators.h"
#include "mincut/kcut.h"

int main() {
  using namespace ampccut;

  const std::uint32_t k = 4;
  const WGraph g = gen_communities(/*n=*/240, k, /*p_in=*/0.2,
                                   /*bridge_edges=*/3, /*seed=*/13);
  std::printf("workload graph: n=%u m=%zu, %u planted clusters, 3 bridges "
              "between neighbors\n", g.n, g.m(), k);

  ApproxMinCutOptions mopt;
  mopt.seed = 9;
  mopt.trials = 2;
  const auto ours = apx_split_k_cut_approx(g, k, mopt);
  const auto sv = apx_split_k_cut_exact(g, k);  // Saran-Vazirani baseline
  const auto gh = gomory_hu_k_cut(g, k);        // Observation 10 baseline

  std::printf("APX-SPLIT (2+eps splitter): weight %llu in %u iterations\n",
              static_cast<unsigned long long>(ours.weight), ours.iterations);
  std::printf("Saran-Vazirani (exact)    : weight %llu\n",
              static_cast<unsigned long long>(sv.weight));
  std::printf("Gomory-Hu construction    : weight %llu\n",
              static_cast<unsigned long long>(gh.weight));

  std::printf("\ncluster recovery (partition sizes):");
  std::vector<int> sizes(ours.num_parts, 0);
  for (const auto p : ours.part) ++sizes[p];
  for (const int s : sizes) std::printf(" %d", s);
  std::printf("\nvalid partition: %s\n",
              k_cut_weight(g, ours.part) == ours.weight ? "yes" : "no");
  return 0;
}
