// Quickstart: build a graph, run the (2+eps)-approximate min cut, inspect
// the witness. This is the 20-line tour of the library's main entry point.
#include <cstdio>

#include "exact/stoer_wagner.h"
#include "graph/generators.h"
#include "mincut/mincut_recursive.h"

int main() {
  using namespace ampccut;

  // A graph with a planted sparse cut: two dense halves, 3 bridge edges.
  const WGraph g = gen_planted_cut(/*n=*/200, /*p_in=*/0.2,
                                   /*bridge_edges=*/3, /*seed=*/42);
  std::printf("graph: n=%u m=%zu\n", g.n, g.m());

  // The paper's algorithm (sequential execution of the same pipeline the
  // AMPC backend runs; see examples/community_cut.cpp for the model run).
  ApproxMinCutOptions opt;
  opt.seed = 7;
  opt.trials = 2;
  const ApproxMinCutResult cut = approx_min_cut(g, opt);

  std::printf("approx min cut weight : %llu\n",
              static_cast<unsigned long long>(cut.weight));
  std::printf("recursion depth       : %u (doubly logarithmic in n)\n",
              cut.stats.depth);
  std::printf("tracker calls         : %llu\n",
              static_cast<unsigned long long>(cut.stats.tracker_calls));

  // The witness is a vertex bitmap; verify it like any cut.
  std::printf("witness verifies      : %s\n",
              cut_weight(g, cut.side) == cut.weight ? "yes" : "no");

  // Compare against exact Stoer-Wagner (feasible at this size).
  const MinCutResult exact = stoer_wagner_min_cut(g);
  std::printf("exact min cut         : %llu  (ratio %.3f, bound %.1f)\n",
              static_cast<unsigned long long>(exact.weight),
              double(cut.weight) / double(exact.weight), 2.9);
  return 0;
}
